// Figure 2(a) of the paper: critical sections under inconsistent locks.
// Two blocks update one shared counter — block 0 under lock L1, block 1
// under lock L2 (or both under L1 with --samelock). HAccRG's Bloom-filter
// lockset intersection exposes the empty common lockset.
//
//   $ ./examples/lockset_discipline [--samelock]
#include <cstdio>
#include <cstring>

#include "isa/builder.hpp"
#include "sim/gpu.hpp"

using namespace haccrg;

namespace {

sim::SimResult run(bool same_lock) {
  arch::GpuConfig gpu_config;
  gpu_config.num_sms = 2;
  gpu_config.device_mem_bytes = 1024 * 1024;
  rd::HaccrgConfig detector;
  detector.enable_global = true;

  sim::Gpu gpu(gpu_config, detector);
  const Addr locks = gpu.allocator().alloc(2 * 4, "locks");
  const Addr counter = gpu.allocator().alloc(4, "counter");
  gpu.memory().fill(locks, 8, 0);
  gpu.memory().fill(counter, 4, 0);

  isa::KernelBuilder kb("fig2a");
  isa::Reg bid = kb.special(isa::SpecialReg::kCtaId);
  isa::Reg tid = kb.special(isa::SpecialReg::kTid);
  isa::Reg plocks = kb.param(0);
  isa::Reg pcounter = kb.param(1);
  isa::Pred thread0 = kb.pred();
  kb.setp(thread0, isa::CmpOp::kEq, tid, 0u);
  kb.if_(thread0, [&] {
    isa::Reg lock_index = kb.reg();
    if (same_lock)
      kb.mov(lock_index, 0u);
    else
      kb.mov(lock_index, isa::Operand(bid));
    isa::Reg lock_addr = kb.addr(plocks, lock_index, 4);
    kb.with_lock(lock_addr, [&] {
      isa::Reg v = kb.reg();
      kb.ld_global(v, pcounter);
      kb.add(v, v, 1u);
      kb.st_global(pcounter, v);
    });
  });
  isa::Program program = kb.build();

  sim::LaunchConfig launch;
  launch.program = &program;
  launch.grid_dim = 2;
  launch.block_dim = 32;
  launch.params = {locks, counter};
  return gpu.launch(launch);
}

}  // namespace

int main(int argc, char** argv) {
  const bool same_lock = argc > 1 && std::strcmp(argv[1], "--samelock") == 0;
  sim::SimResult result = run(same_lock);
  if (!result.completed) {
    std::fprintf(stderr, "launch failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("Critical sections under %s:\n%s\n", same_lock ? "a common lock" : "different locks",
              result.races.summary().c_str());
  const u64 lockset_races = result.races.count(rd::RaceMechanism::kLockset);
  if (same_lock) return lockset_races == 0 ? 0 : 1;
  return lockset_races > 0 ? 0 : 1;
}
