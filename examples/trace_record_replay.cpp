// Record a kernel's access trace, then replay it through the race
// detectors without the timing simulator and show both runs report the
// same races. This is the library-level version of what the
// `haccrg-trace` CLI does (`haccrg-trace record` / `replay` / `diff`).
//
//   $ ./examples/trace_record_replay
#include <cstdio>

#include "kernels/common.hpp"
#include "sim/gpu.hpp"
#include "trace/replay.hpp"

using namespace haccrg;

int main() {
  // A machine small enough to run instantly, with combined detection on.
  arch::GpuConfig gpu_config;
  gpu_config.num_sms = 4;
  gpu_config.device_mem_bytes = 16 * 1024 * 1024;
  rd::HaccrgConfig detector;
  detector.enable_shared = true;
  detector.enable_global = true;
  detector.shared_granularity = 16;
  detector.global_granularity = 4;

  // 1. Record: set SimConfig::trace_path (or the HACCRG_TRACE env var)
  // and every memory/sync event the SMs retire lands in the file.
  const char* path = "example_reduce.trc";
  sim::SimConfig sim_config;
  sim_config.trace_path = path;
  sim::Gpu gpu(gpu_config, detector, sim_config);
  gpu.set_trace_label("REDUCE");
  kernels::PreparedKernel prep =
      kernels::find_benchmark("REDUCE")->prepare(gpu, kernels::BenchOptions{});
  const sim::SimResult live = gpu.launch(prep.launch());
  if (!live.completed) {
    std::fprintf(stderr, "live run failed: %s\n", live.error.c_str());
    return 1;
  }
  std::printf("live run:   %llu cycles, %llu unique races, trace -> %s\n",
              static_cast<unsigned long long>(live.cycles),
              static_cast<unsigned long long>(live.races.unique()), path);

  // 2. Replay: stream the trace straight into SharedRdu/GlobalRdu. No
  // pipeline, caches, or DRAM model — just the detection work.
  const trace::ReplayResult replayed = trace::replay_trace(path);
  if (!replayed.ok) {
    std::fprintf(stderr, "replay failed: %s\n", replayed.error.c_str());
    return 1;
  }
  const trace::KernelReplay& k = replayed.kernels.front();
  std::printf("replay:     %llu events, %llu unique races (%llu shared + %llu global checks)\n",
              static_cast<unsigned long long>(k.events),
              static_cast<unsigned long long>(k.races.unique()),
              static_cast<unsigned long long>(k.shared_checks),
              static_cast<unsigned long long>(k.global_checks));

  // 3. The guarantee the subsystem is built around: identical race sets.
  if (replayed.race_set() != trace::race_identity_set(live.races)) {
    std::printf("RACE SETS DIFFER — this is a bug, please report it\n");
    return 1;
  }
  std::printf("race sets identical — replay reproduced the live detection exactly\n");
  for (const trace::RaceKey& key : replayed.race_set())
    std::printf("  %s\n", trace::race_key_line(key).c_str());
  std::remove(path);
  return 0;
}
