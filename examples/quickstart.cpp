// Quickstart: build a tiny kernel with the structured assembler, run it
// on the simulated GPU with HAccRG enabled, and print what the detector
// found. The kernel deliberately omits a __syncthreads between writing
// and reading shared memory, so HAccRG reports shared-memory races.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "isa/builder.hpp"
#include "sim/gpu.hpp"

using namespace haccrg;

int main() {
  // 1. Configure the GPU (Table I defaults) and the detector.
  arch::GpuConfig gpu_config;
  gpu_config.num_sms = 4;  // a small machine is plenty for this demo
  gpu_config.device_mem_bytes = 4 * 1024 * 1024;

  rd::HaccrgConfig detector;
  detector.enable_shared = true;
  detector.enable_global = true;

  sim::Gpu gpu(gpu_config, detector);

  // 2. Allocate and fill device memory (the cudaMalloc/cudaMemcpy step).
  const u32 n = 128;
  const Addr out = gpu.allocator().alloc(n * 4, "out");

  // 3. Write the kernel. Each thread stores its id to shared memory and
  //    then reads its neighbor's slot — without a barrier in between.
  isa::KernelBuilder kb("missing_barrier_demo");
  isa::Reg tid = kb.special(isa::SpecialReg::kTid);
  isa::Reg pout = kb.param(0);
  isa::Reg slot = kb.reg();
  kb.mul(slot, tid, 4u);
  kb.st_shared(slot, tid);
  // kb.barrier();   <-- the missing __syncthreads
  isa::Reg neighbor = kb.reg();
  kb.add(neighbor, tid, 32u);      // read the next warp's slot
  kb.rem(neighbor, neighbor, n);
  kb.mul(neighbor, neighbor, 4u);
  isa::Reg value = kb.reg();
  kb.ld_shared(value, neighbor);
  isa::Reg dst = kb.addr(pout, tid, 4);
  kb.st_global(dst, value);
  isa::Program program = kb.build();

  std::printf("Kernel listing:\n%s\n", program.disassemble().c_str());

  // 4. Launch.
  sim::LaunchConfig launch;
  launch.program = &program;
  launch.grid_dim = 1;
  launch.block_dim = n;
  launch.shared_mem_bytes = n * 4;
  launch.params = {out};
  sim::SimResult result = gpu.launch(launch);

  if (!result.completed) {
    std::fprintf(stderr, "launch failed: %s\n", result.error.c_str());
    return 1;
  }

  // 5. Inspect the results.
  std::printf("Executed %llu warp instructions in %llu cycles.\n",
              static_cast<unsigned long long>(result.warp_instructions),
              static_cast<unsigned long long>(result.cycles));
  std::printf("\nHAccRG report: %s\n", result.races.summary().c_str());
  std::printf("(add the barrier back and the report is empty)\n");
  return result.races.empty() ? 1 : 0;  // the demo *expects* races
}
