// Section IV-C's accuracy/overhead tradeoff, live: run the HIST benchmark
// (1-byte elements — the paper's pathological case) across shadow
// tracking granularities and watch false positives appear as granules
// coarsen while the shadow footprint shrinks.
//
//   $ ./examples/granularity_tradeoff
#include <cstdio>

#include "common/table.hpp"
#include "haccrg/global_rdu.hpp"
#include "kernels/common.hpp"

using namespace haccrg;

int main() {
  arch::GpuConfig gpu_config;
  gpu_config.num_sms = 8;
  gpu_config.device_mem_bytes = 16 * 1024 * 1024;

  std::printf("HIST under shared-memory detection at different tracking granularities.\n"
              "The kernel is race-free; everything reported is a granularity artifact of\n"
              "its one-byte counters interleaved across warps (Section IV-C / Table III).\n\n");

  TablePrinter table({"Granularity", "FalseRaces", "ShadowBytesPerSM", "ShadowBytes(16KB smem)"});
  for (u32 gran : {4u, 8u, 16u, 32u, 64u}) {
    rd::HaccrgConfig det;
    det.enable_shared = true;
    det.shared_granularity = gran;

    sim::Gpu gpu(gpu_config, det);
    kernels::PreparedKernel prep = kernels::find_benchmark("HIST")->prepare(gpu, {});
    sim::SimResult result = gpu.launch(prep.launch());
    if (!result.completed) {
      std::fprintf(stderr, "HIST failed: %s\n", result.error.c_str());
      return 1;
    }
    const u32 entries = gpu_config.shared_mem_per_sm / gran;
    table.add_row({std::to_string(gran) + " B", std::to_string(result.races.total()),
                   std::to_string(entries * 2), std::to_string(entries) + " entries"});
  }
  table.print();
  std::printf("\nThe paper picks 16 B for shared memory (7/10 benchmarks false-positive\n"
              "free there) and 4 B for the roomier global memory.\n");
  return 0;
}
