// Figure 1 of the paper: a kernel where every thread updates out[tid] in
// a loop, the last thread to pass an atomic counter sums the array, and
// the missing barrier lets the other threads overwrite the array while
// the summing thread is still reading it. HAccRG flags the global-memory
// races; inserting the barrier silences them.
//
//   $ ./examples/figure1_missing_sync [--fixed]
#include <cstdio>
#include <cstring>

#include "isa/builder.hpp"
#include "sim/gpu.hpp"

using namespace haccrg;

namespace {

sim::SimResult run(bool with_barrier) {
  arch::GpuConfig gpu_config;
  gpu_config.num_sms = 4;
  gpu_config.device_mem_bytes = 4 * 1024 * 1024;
  rd::HaccrgConfig detector;
  detector.enable_global = true;

  sim::Gpu gpu(gpu_config, detector);
  const u32 block = 64;
  const u32 iters = 4;  // the paper's kernel loops 32 times
  const Addr out = gpu.allocator().alloc(block * 4, "out");
  const Addr count = gpu.allocator().alloc(4, "count");
  gpu.memory().fill(out, block * 4, 0);
  gpu.memory().fill(count, 4, 0);

  isa::KernelBuilder kb("race_example");
  isa::Reg tid = kb.special(isa::SpecialReg::kTid);
  isa::Reg pout = kb.param(0);
  isa::Reg pcount = kb.param(1);
  isa::Reg dst = kb.addr(pout, tid, 4);

  isa::Reg i = kb.reg();
  kb.for_range(i, 0u, iters, 1u, [&] {
    // out[tid] = foo(in, tid, i): a stand-in computation.
    isa::Reg v = kb.reg();
    kb.mul(v, tid, 3u);
    kb.add(v, v, isa::Operand(i));
    kb.st_global(dst, v);

    // if (blockDim-1 == atomicInc(&count, blockDim)) { sum; count = 0; }
    isa::Reg limit = kb.imm(block - 1);
    isa::Reg old = kb.reg();
    kb.atom_global(old, isa::AtomicOp::kInc, pcount, limit);
    isa::Pred last = kb.pred();
    kb.setp(last, isa::CmpOp::kEq, old, isa::Operand(limit));
    kb.if_(last, [&] {
      isa::Reg sum = kb.imm(0);
      isa::Reg j = kb.reg();
      kb.for_range(j, 0u, block, 1u, [&] {
        isa::Reg src = kb.addr(pout, j, 4);
        isa::Reg e = kb.reg();
        kb.ld_global(e, src);
        kb.add(sum, sum, isa::Operand(e));
      });
      isa::Reg first = kb.addr(pout, kb.imm(0), 4);
      kb.st_global(first, sum);
    });
    if (with_barrier) kb.barrier();  // the fix for the line-12 race
  });
  isa::Program program = kb.build();

  sim::LaunchConfig launch;
  launch.program = &program;
  launch.grid_dim = 1;
  launch.block_dim = block;
  launch.params = {out, count};
  return gpu.launch(launch);
}

}  // namespace

int main(int argc, char** argv) {
  const bool fixed = argc > 1 && std::strcmp(argv[1], "--fixed") == 0;
  sim::SimResult result = run(fixed);
  if (!result.completed) {
    std::fprintf(stderr, "launch failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("Figure-1 kernel (%s):\n%s\n", fixed ? "with barrier" : "missing barrier",
              result.races.summary().c_str());
  if (fixed) return result.races.empty() ? 0 : 1;
  return result.races.empty() ? 1 : 0;
}
