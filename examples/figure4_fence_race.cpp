// Figure 4 of the paper: a producer/consumer pair synchronized through an
// atomic flag. Without a __threadfence between the producer's data write
// and the flag update, the consumer can read the data before it is
// visible — HAccRG flags the read by comparing the writer warp's fence
// epoch against the one stored in the shadow entry. With the fence, the
// epochs differ and the read is safe.
//
//   $ ./examples/figure4_fence_race [--fenced]
#include <cstdio>
#include <cstring>

#include "isa/builder.hpp"
#include "sim/gpu.hpp"

using namespace haccrg;

namespace {

sim::SimResult run(bool with_fence) {
  arch::GpuConfig gpu_config;
  gpu_config.num_sms = 2;
  gpu_config.device_mem_bytes = 1024 * 1024;
  rd::HaccrgConfig detector;
  detector.enable_global = true;

  sim::Gpu gpu(gpu_config, detector);
  const Addr x = gpu.allocator().alloc(4, "X");
  const Addr flag = gpu.allocator().alloc(4, "A");
  const Addr sink = gpu.allocator().alloc(4, "sink");
  gpu.memory().fill(x, 12, 0);

  isa::KernelBuilder kb("fig4");
  isa::Reg bid = kb.special(isa::SpecialReg::kCtaId);
  isa::Reg tid = kb.special(isa::SpecialReg::kTid);
  isa::Reg px = kb.param(0);
  isa::Reg pflag = kb.param(1);
  isa::Reg psink = kb.param(2);
  isa::Pred thread0 = kb.pred();
  kb.setp(thread0, isa::CmpOp::kEq, tid, 0u);
  isa::Pred producer = kb.pred();
  kb.setp(producer, isa::CmpOp::kEq, bid, 0u);

  kb.if_(thread0, [&] {
    kb.if_else(
        producer,
        [&] {
          // T0: store X, (fence), atomic A = 1.
          isa::Reg v = kb.imm(1234);
          kb.st_global(px, v);
          if (with_fence) kb.memfence();
          isa::Reg one = kb.imm(1);
          isa::Reg old = kb.reg();
          kb.atom_global(old, isa::AtomicOp::kExch, pflag, one);
        },
        [&] {
          // T1: spin on the atomic flag, then load X.
          isa::Reg seen = kb.reg();
          isa::Pred unset = kb.pred();
          kb.do_while([&] { kb.ld_global(seen, pflag); },
                      [&] {
                        kb.setp(unset, isa::CmpOp::kEq, seen, 0u);
                        return unset;
                      });
          isa::Reg v = kb.reg();
          kb.ld_global(v, px);
          kb.st_global(psink, v);
        });
  });
  isa::Program program = kb.build();

  sim::LaunchConfig launch;
  launch.program = &program;
  launch.grid_dim = 2;
  launch.block_dim = 32;
  launch.params = {x, flag, sink};
  return gpu.launch(launch);
}

}  // namespace

int main(int argc, char** argv) {
  const bool fenced = argc > 1 && std::strcmp(argv[1], "--fenced") == 0;
  sim::SimResult result = run(fenced);
  if (!result.completed) {
    std::fprintf(stderr, "launch failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("Figure-4 producer/consumer (%s):\n%s\n", fenced ? "with fence" : "missing fence",
              result.races.summary().c_str());
  const u64 fence_races =
      result.races.count(rd::RaceMechanism::kFence) + result.races.count(rd::RaceMechanism::kL1Stale);
  if (fenced) return fence_races == 0 ? 0 : 1;
  return fence_races > 0 ? 0 : 1;
}
