// Static race-analysis lint report: run the compile-time analyzer over
// every registry benchmark and print the annotated disassembly — each
// memory access classified as provably safe / may-race / definite race,
// plus structural lints (divergent barriers, atomics outside critical
// sections). No simulation happens; this is the front-end alone.
//
//   $ ./examples/static_analysis_report            # summaries only
//   $ ./examples/static_analysis_report SCAN       # full annotated listing
#include <cstdio>
#include <string>

#include "analysis/static_race.hpp"
#include "isa/builder.hpp"
#include "kernels/common.hpp"

using namespace haccrg;

int main(int argc, char** argv) {
  const std::string only = argc > 1 ? argv[1] : "";

  // Also demonstrate the lint layer on a deliberately broken kernel: a
  // barrier under a thread-dependent branch plus an unconditional
  // all-thread store to one shared word.
  {
    isa::KernelBuilder kb("lint_demo");
    isa::Reg tid = kb.special(isa::SpecialReg::kTid);
    isa::Reg zero = kb.imm(0);
    kb.st_shared(zero, tid);  // every thread stores to word 0
    isa::Pred low = kb.pred();
    kb.setp(low, isa::CmpOp::kLtU, tid, 16u);
    kb.if_(low, [&] { kb.barrier(); });  // divergent barrier
    isa::Program prog = kb.build();
    analysis::StaticRaceReport rep = analysis::analyze(prog);
    std::printf("=== lint_demo (deliberately broken) ===\n%s\n\n",
                rep.annotate(prog).c_str());
  }

  arch::GpuConfig gpu_config;
  gpu_config.device_mem_bytes = 64u * 1024u * 1024u;
  sim::Gpu gpu(gpu_config, rd::HaccrgConfig{});
  kernels::BenchOptions opts;  // scale 1: analysis only depends on the program
  bool matched = false;
  for (const auto& info : kernels::all_benchmarks()) {
    if (!only.empty() && info.name != only) continue;
    matched = true;
    kernels::PreparedKernel prep = info.prepare(gpu, opts);
    analysis::StaticRaceReport rep = analysis::analyze(prep.program);
    if (only.empty()) {
      std::printf("%-8s %s\n", info.name.c_str(), rep.summary().c_str());
    } else {
      std::printf("=== %s ===\n%s\n", info.name.c_str(), rep.annotate(prep.program).c_str());
    }
  }
  if (only.empty()) {
    std::printf("\n(pass a benchmark name for its full annotated listing)\n");
  } else if (!matched) {
    std::fprintf(stderr, "unknown benchmark '%s'; known names:", only.c_str());
    for (const auto& info : kernels::all_benchmarks())
      std::fprintf(stderr, " %s", info.name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  return 0;
}
