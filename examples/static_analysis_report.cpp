// Static race-verifier tour: run the loop-aware analyzer over every
// registry benchmark and print the annotated disassembly — each memory
// access classified as provably safe / may-race / definite race with a
// concrete witness where one exists — then demonstrate the error
// pipeline (dedup, suppressions, stable JSON) and close the loop by
// replaying a witness through the hardware detectors. No full kernel
// simulation happens; only the two-access witness traces are replayed.
//
//   $ ./examples/static_analysis_report            # summaries only
//   $ ./examples/static_analysis_report SCAN       # full annotated listing
//   $ ./examples/static_analysis_report --json     # machine-readable report
#include <cstdio>
#include <string>

#include "analysis/report.hpp"
#include "analysis/static_race.hpp"
#include "isa/builder.hpp"
#include "kernels/common.hpp"
#include "trace/witness_check.hpp"

using namespace haccrg;

namespace {

/// A deliberately broken kernel for the lint layer: a barrier under a
/// thread-dependent branch plus an unconditional all-thread store to one
/// shared word.
isa::Program lint_demo() {
  isa::KernelBuilder kb("lint_demo");
  isa::Reg tid = kb.special(isa::SpecialReg::kTid);
  isa::Reg zero = kb.imm(0);
  kb.st_shared(zero, tid);  // every thread stores to word 0
  isa::Pred low = kb.pred();
  kb.setp(low, isa::CmpOp::kLtU, tid, 16u);
  kb.if_(low, [&] { kb.barrier(); });  // divergent barrier
  return kb.build();
}

/// A loop-carried race: every thread walks the same shared accumulator
/// array a[i] for i in [0, 8) with no synchronization. Iteration
/// disjointness does not help — distinct threads collide on every
/// element. Contrast with the strided twin a[8*tid + i] in the same
/// kernel, which the loop-aware dependence test proves safe.
isa::Program loop_carried_demo() {
  isa::KernelBuilder kb("loop_carried");
  isa::Reg tid = kb.special(isa::SpecialReg::kTid);
  isa::Reg i = kb.reg();
  kb.for_range(i, 0u, 8u, 1u, [&] {
    isa::Reg addr = kb.reg();
    kb.mul(addr, i, 4u);
    isa::Reg v = kb.reg();
    kb.ld_shared(v, addr);
    kb.add(v, v, tid);
    kb.st_shared(addr, v);  // read-modify-write, raced by all threads
  });
  // The safe variant: per-thread 32-byte stripes, same loop shape. The
  // barrier separates it from the racy loop's accesses; within its own
  // interval the stripes are iteration- and thread-disjoint.
  kb.barrier();
  isa::Reg stripe = kb.reg();
  kb.mul(stripe, tid, 32u);
  isa::Reg j = kb.reg();
  kb.for_range(j, 0u, 8u, 1u, [&] {
    isa::Reg off = kb.reg();
    kb.mul(off, j, 4u);
    isa::Reg addr = kb.reg();
    kb.add(addr, stripe, off);
    kb.st_shared(addr, tid);
  });
  return kb.build();
}

/// Replay one rdu-visible witness from `rep` through the hardware
/// detectors (the same validation `haccrg-analyze soundness` runs).
void replay_first_witness(const analysis::StaticRaceReport& rep, u32 block_dim) {
  for (const analysis::StaticAccess& a : rep.accesses) {
    if (!a.witness.found || !a.witness.rdu_visible || a.is_atomic) continue;
    const analysis::StaticAccess* other = rep.access_at(a.witness.other_pc);
    if (other == nullptr || other->is_atomic) continue;
    trace::WitnessSpec spec;
    spec.shared_space = a.shared_space;
    spec.pc1 = a.witness.pc;
    spec.pc2 = a.witness.other_pc;
    spec.store1 = a.is_store;
    spec.store2 = other->is_store;
    spec.width1 = a.width;
    spec.width2 = other->width;
    spec.tid1 = a.witness.tid1;
    spec.cta1 = a.witness.cta1;
    spec.tid2 = a.witness.tid2;
    spec.cta2 = a.witness.cta2;
    spec.addr1 = a.witness.addr1;
    spec.addr2 = a.witness.addr2;
    spec.block_dim = block_dim;
    spec.granularity =
        a.shared_space ? rep.options.shared_granularity : rep.options.global_granularity;
    trace::WitnessCheckResult result;
    const std::string scratch = "/tmp/haccrg-example-witness.trace";
    const Status st = trace::check_witness(spec, scratch, result);
    std::remove(scratch.c_str());
    if (!st.ok()) {
      std::printf("witness replay error: %s\n", st.to_string().c_str());
      return;
    }
    std::printf("witness %s\n  -> replayed through the hardware detectors: %s (%s)\n",
                a.witness.describe().c_str(), result.reproduced ? "REPRODUCED" : "not reproduced",
                result.detail.c_str());
    return;
  }
  std::printf("(no hardware-visible witness to replay)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string only;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json = true;
    } else {
      only = argv[i];
    }
  }

  if (!json) {
    isa::Program lint_prog = lint_demo();
    analysis::StaticRaceReport rep = analysis::analyze(lint_prog);
    std::printf("=== lint_demo (deliberately broken) ===\n%s\n\n",
                rep.annotate(lint_prog).c_str());

    // The loop-carried race next to its iteration-disjoint twin, with a
    // concrete witness and its replay validation.
    isa::Program lc_prog = loop_carried_demo();
    analysis::AnalyzeOptions lc_opts;
    lc_opts.block_dim = 64;
    analysis::StaticRaceReport lc_rep = analysis::analyze(lc_prog, lc_opts);
    std::printf("=== loop_carried (racy loop + safe strided twin) ===\n%s\n",
                lc_rep.annotate(lc_prog).c_str());
    replay_first_witness(lc_rep, lc_opts.block_dim);

    // The suppression pipeline: dedup the findings, mute the may-races
    // by name, and show what remains active.
    analysis::ErrorReport errors = analysis::build_error_report(lc_rep);
    std::vector<analysis::Suppression> sups;
    const std::string supp_text =
        "# examples/static_analysis_report.cpp demo suppression\n"
        "{\n"
        "  loop-carried-known\n"
        "  kernel:loop_carried\n"
        "  kind:may-race\n"
        "}\n";
    if (analysis::parse_suppressions(supp_text, sups).ok()) {
      const u32 muted = analysis::apply_suppressions(errors, sups, lc_rep.kernel);
      std::printf("\nsuppressions: %u finding(s) muted by 'loop-carried-known', %u active\n\n",
                  muted, errors.active());
    }
  }

  arch::GpuConfig gpu_config;
  gpu_config.device_mem_bytes = 64u * 1024u * 1024u;
  sim::Gpu gpu(gpu_config, rd::HaccrgConfig{});
  kernels::BenchOptions opts;  // scale 1: analysis only depends on the program
  bool matched = false;
  bool first = true;
  if (json) std::printf("[");
  for (const auto& info : kernels::all_benchmarks()) {
    if (!only.empty() && info.name != only) continue;
    matched = true;
    kernels::PreparedKernel prep = info.prepare(gpu, opts);
    analysis::AnalyzeOptions aopts;
    aopts.block_dim = prep.block_dim;  // geometry enables the loop-aware tests
    aopts.grid_dim = prep.grid_dim;
    analysis::StaticRaceReport rep = analysis::analyze(prep.program, aopts);
    if (json) {
      analysis::ErrorReport errors = analysis::build_error_report(rep);
      std::printf("%s%s", first ? "" : ",\n", analysis::to_json(rep, errors).c_str());
      first = false;
    } else if (only.empty()) {
      std::printf("%-8s %s\n", info.name.c_str(), rep.summary().c_str());
    } else {
      std::printf("=== %s ===\n%s\n", info.name.c_str(), rep.annotate(prep.program).c_str());
    }
  }
  if (json) std::printf("]\n");
  if (only.empty() && !json) {
    std::printf("\n(pass a benchmark name for its full annotated listing, --json for the\n"
                " machine-readable report haccrg-analyze emits)\n");
  } else if (!matched && !only.empty()) {
    std::fprintf(stderr, "unknown benchmark '%s'; known names:", only.c_str());
    for (const auto& info : kernels::all_benchmarks())
      std::fprintf(stderr, " %s", info.name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  return 0;
}
