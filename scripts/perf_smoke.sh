#!/usr/bin/env bash
# Perf smoke test: run the live hot-path benchmark (bench_hotpath) against
# the checked-in baseline and fail when the geometric-mean KIPS regresses
# by more than 25%. The baseline (scripts/perf_baseline.json) was recorded
# on the CI/reference host; absolute KIPS are host-dependent, so treat a
# failure on unfamiliar hardware as a prompt to investigate (or to re-record
# with `bench_hotpath --write-baseline scripts/perf_baseline.json`), not as
# proof of a regression by itself.
#
#   scripts/perf_smoke.sh [build-dir]    # default build dir: build/
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${1:-build}"
bin="$build_dir/bench/bench_hotpath"

if [[ ! -x "$bin" ]]; then
  echo "perf_smoke: $bin not built; building it" >&2
  cmake -B "$build_dir" -S . >/dev/null
  cmake --build "$build_dir" --target bench_hotpath -j "$(nproc 2>/dev/null || echo 2)"
fi

if [[ ! -f scripts/perf_baseline.json ]]; then
  echo "perf_smoke: scripts/perf_baseline.json missing; recording one now" >&2
  "$bin" --json BENCH_hotpath.json --write-baseline scripts/perf_baseline.json
  exit 0
fi

"$bin" --json BENCH_hotpath.json \
       --baseline scripts/perf_baseline.json \
       --max-regress 0.25

# Warn (never fail) when the run oversubscribed the host: every
# BENCH_*.json writer embeds an "oversubscribed" flag when the engine
# thread count exceeds hardware_concurrency, and KIPS measured that way
# quantifies scheduler contention, not the simulator.
if grep -q '"oversubscribed": true' BENCH_hotpath.json; then
  echo "perf_smoke: WARNING — BENCH_hotpath.json was recorded with more engine" >&2
  echo "perf_smoke: threads than this host's hardware concurrency; its KIPS" >&2
  echo "perf_smoke: numbers are not comparable to the baseline." >&2
fi
