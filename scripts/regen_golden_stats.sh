#!/usr/bin/env bash
# Regenerate the golden-stats snapshot files under tests/golden/.
#
# Run after an INTENTIONAL change to timing, detection, or stat plumbing,
# then review `git diff tests/golden/` — every changed counter should be
# explainable by the change you made — and commit the new files together
# with the code.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
if [[ ! -x "$BUILD_DIR/tests/test_golden_stats" ]]; then
  echo "building test_golden_stats..."
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target test_golden_stats -j >/dev/null
fi

HACCRG_REGEN_GOLDEN=1 "$BUILD_DIR/tests/test_golden_stats" \
    --gtest_filter='GoldenStats.Reduce:GoldenStats.Psum'
echo "regenerated:"
git -c color.status=always status --short tests/golden/ || true
