#!/usr/bin/env bash
# Pre-merge gate: the tier-1 build plus two stricter builds — one that
# promotes warnings to errors and runs the whole test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer, and one that runs it
# under ThreadSanitizer with the parallel engine forced on
# (HACCRG_THREADS > 1) so data races in the simulator itself are caught
# pre-merge, not just determinism violations.
#
#   scripts/check.sh            # all three builds + ctest runs
#   scripts/check.sh --tier1    # only the tier-1 build + test run
#   scripts/check.sh --strict   # only the -Werror + ASan/UBSan build
#   scripts/check.sh --tsan     # only the ThreadSanitizer build
#
# Build trees: build/ (tier-1), build-strict/ and build-tsan/ (gates).
# All are incremental — safe to re-run.
set -euo pipefail

cd "$(dirname "$0")/.."

run_tier1=1
run_strict=1
run_tsan=1
if [[ "${1:-}" == "--tier1" ]]; then
  run_strict=0
  run_tsan=0
elif [[ "${1:-}" == "--strict" ]]; then
  run_tier1=0
  run_tsan=0
elif [[ "${1:-}" == "--tsan" ]]; then
  run_tier1=0
  run_strict=0
fi

jobs=$(nproc 2>/dev/null || echo 2)

# Trace-equivalence gate: record a racy kernel (REDUCE with its barrier
# removed) and a race-free one (PSUM), replay each trace through the
# detectors, and require the replayed race set to equal the live run's.
# `haccrg-trace diff` exits 1 on a mismatch, which fails the gate.
trace_equivalence() {
  local cli="$1/src/trace/haccrg-trace"
  local tmp
  tmp=$(mktemp -d)
  "$cli" record --kernel REDUCE --inject barrier:0 \
    --out "$tmp/reduce.trc" --races "$tmp/reduce.live.txt" >/dev/null
  "$cli" record --kernel PSUM \
    --out "$tmp/psum.trc" --races "$tmp/psum.live.txt" >/dev/null
  for k in reduce psum; do
    "$cli" replay "$tmp/$k.trc" --races "$tmp/$k.replay.txt" >/dev/null
    "$cli" diff "$tmp/$k.trc" "$tmp/$k.live.txt"
    "$cli" diff "$tmp/$k.replay.txt" "$tmp/$k.live.txt"
  done
  rm -rf "$tmp"
}

# Static-soundness gate: every registry kernel plus the 41-case
# injection suite — no provably-safe access may appear in a dynamic
# race set, and every hardware-visible witness must reproduce under
# trace replay. haccrg-analyze exits 1 on any violation.
static_soundness() {
  "$1/src/analysis/haccrg-analyze" soundness --seeds "${2:-1}"
}

# Static-precision gate: the loop-aware dependence tests must never
# lose a PR-1 proof (monotone) and must strictly reduce instrumented
# sites AND cycles on every kernel they improve. Writes BENCH_static.json
# into a scratch dir — the checked-in copy is regenerated explicitly.
static_precision() {
  local tmp
  tmp=$(mktemp -d)
  "$1/bench/bench_static" --json "$tmp/BENCH_static.json" >/dev/null
  rm -rf "$tmp"
}

# Fault-campaign smoke: one low-rate pass per fault site over a sample
# of the injection campaign. bench_resilience exits non-zero if a
# zero-rate FaultPlan perturbs the baseline, if any point misses a race
# without reporting coverage_lost, or if coverage drops below the floor.
fault_smoke() {
  local tmp
  tmp=$(mktemp -d)
  "$1/bench/bench_resilience" --smoke --min-coverage 0.5 \
    --json "$tmp/BENCH_resilience_smoke.json" >/dev/null
  rm -rf "$tmp"
}

# Fuzz smoke: a fixed-seed campaign of generated kernels through every
# detector (soundness vs the ground-truth oracle, differential
# agreement, determinism at HACCRG_THREADS 1/2/8, trace replay, sampled
# fault feeds). haccrg-fuzz exits 1 on any violation and prints the
# auto-shrunk repro. The per-build budget is fixed so merges pay a
# known cost; the nightly CI job runs the extended campaign.
fuzz_smoke() {
  "$1/src/fuzz/haccrg-fuzz" run --seed 1 --count "$2" --progress 50 | tail -n 3
}

# CLI exit-code contracts: run the damaged-input suites for the
# haccrg-trace and haccrg-analyze CLIs against this build explicitly.
# ctest already covers them, but sanitizer builds are where an abort
# hides behind a documented exit code — keep them visible as a named
# gate rather than two lines in a 300-test run.
cli_contracts() {
  local tmp
  tmp=$(mktemp -d)
  bash tests/test_trace_cli.sh "$1/src/trace/haccrg-trace" "$tmp/trace_cli"
  bash tests/test_analyze_cli.sh "$1/src/analysis/haccrg-analyze" "$tmp/analyze_cli"
  rm -rf "$tmp"
}

# Serving smoke: a haccrg-served round trip on a golden recorded trace
# (in-process `once` plus the socket/stdio transports via the CLI
# contract suite) and bench_serving --smoke, which fails on its own if
# served reports diverge from the live race sets, if overload is never
# rejected, or if a drained job loses its result.
serving_smoke() {
  local tmp
  tmp=$(mktemp -d)
  bash tests/test_serve_cli.sh "$1/src/serve/haccrg-served" \
    "$1/src/trace/haccrg-trace" "$tmp/serve_cli"
  "$1/src/trace/haccrg-trace" record --kernel REDUCE --inject barrier:0 \
    --index --out "$tmp/golden.trc" >/dev/null
  "$1/src/serve/haccrg-served" once --trace "$tmp/golden.trc" --workers 8 \
    > "$tmp/report.json"
  grep -q '"unique_races"' "$tmp/report.json"
  "$1/bench/bench_serving" --smoke --json "$tmp/BENCH_serving_smoke.json" >/dev/null
  rm -rf "$tmp"
}

# Chaos smoke: bench_chaos --smoke runs the serving fault campaign —
# zero-rate identity across worker counts, bounded deadline overrun,
# quarantine, timed drain, and seeded storms through all five serve_*
# fault sites — and exits non-zero if any terminal-state, no-loss, or
# stats-reconciliation invariant breaks.
chaos_smoke() {
  local tmp
  tmp=$(mktemp -d)
  "$1/bench/bench_chaos" --smoke --json "$tmp/BENCH_chaos_smoke.json" >/dev/null
  rm -rf "$tmp"
}

if [[ $run_tier1 == 1 ]]; then
  echo "=== tier-1 build (build/) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  # --schedule-random shuffles test order to flush hidden inter-test
  # state; until-pass:1 keeps it strict (a failure is a failure, no
  # retry masking).
  ctest --test-dir build --output-on-failure -j "$jobs" \
    --schedule-random --repeat until-pass:1
  # Perf smoke is warn-only: absolute KIPS depend on the host, and a loaded
  # or slower machine must not fail the correctness gate. Investigate any
  # warning before merging; re-record the baseline on the reference host
  # with `bench_hotpath --write-baseline scripts/perf_baseline.json`.
  echo "--- perf smoke (warn-only, >25% geomean KIPS regression) ---"
  if ! scripts/perf_smoke.sh build; then
    echo "WARNING: perf smoke reported a hot-path regression (non-fatal here)."
  fi
  echo "--- static-soundness gate (tier-1 build) ---"
  static_soundness build 1
  echo "--- static-precision gate (tier-1 build) ---"
  static_precision build
  echo "--- fuzz smoke (tier-1 build, 200 kernels) ---"
  fuzz_smoke build 200
  echo "--- serving smoke (tier-1 build) ---"
  serving_smoke build
  # Tidy is warn-only: findings are cleanup candidates, not gate failures
  # (and the reference toolchain may lack clang-tidy entirely).
  echo "--- clang-tidy (warn-only) ---"
  if ! scripts/tidy.sh build; then
    echo "WARNING: clang-tidy reported findings (non-fatal here)."
  fi
fi

if [[ $run_strict == 1 ]]; then
  echo "=== strict build (-Werror + ASan/UBSan, build-strict/) ==="
  cmake -B build-strict -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-Werror -fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
  cmake --build build-strict -j "$jobs"
  ctest --test-dir build-strict --output-on-failure -j "$jobs" \
    --schedule-random --repeat until-pass:1
  echo "--- trace equivalence (strict build) ---"
  trace_equivalence build-strict
  echo "--- CLI exit-code contracts (strict build) ---"
  cli_contracts build-strict
  echo "--- fault-campaign smoke (strict build) ---"
  fault_smoke build-strict
  echo "--- fuzz smoke (strict build, 40 kernels) ---"
  fuzz_smoke build-strict 40
  echo "--- serving smoke (strict build) ---"
  serving_smoke build-strict
  echo "--- chaos smoke (strict build) ---"
  chaos_smoke build-strict
  echo "--- static-soundness gate (strict build, 3 seeds) ---"
  static_soundness build-strict 3
fi

if [[ $run_tsan == 1 ]]; then
  echo "=== ThreadSanitizer build (HACCRG_THREADS=2, build-tsan/) ==="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
  cmake --build build-tsan -j "$jobs"
  # Force every Gpu constructed without an explicit SimConfig onto the
  # parallel engine so TSan sees the worker pool on the whole suite.
  # halt_on_error: a simulator data race is a gate failure, not a warning.
  HACCRG_THREADS=2 TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    --schedule-random --repeat until-pass:1
  echo "--- trace equivalence (TSan build, HACCRG_THREADS=2) ---"
  HACCRG_THREADS=2 TSAN_OPTIONS="halt_on_error=1" trace_equivalence build-tsan
  echo "--- fault-campaign smoke (TSan build, HACCRG_THREADS=2) ---"
  HACCRG_THREADS=2 TSAN_OPTIONS="halt_on_error=1" fault_smoke build-tsan
  echo "--- fuzz smoke (TSan build, 20 kernels) ---"
  TSAN_OPTIONS="halt_on_error=1" fuzz_smoke build-tsan 20
  echo "--- serving smoke (TSan build) ---"
  TSAN_OPTIONS="halt_on_error=1" serving_smoke build-tsan
  echo "--- chaos smoke (TSan build) ---"
  TSAN_OPTIONS="halt_on_error=1" chaos_smoke build-tsan
  echo "--- static-soundness gate (TSan build, HACCRG_THREADS=2) ---"
  HACCRG_THREADS=2 TSAN_OPTIONS="halt_on_error=1" static_soundness build-tsan 1
  # Second thread count for the sharded commit barrier: 4 workers split
  # both the shard sweep and the per-SM merge differently than 2, so the
  # determinism and commit-phase suites get a distinct interleaving
  # schedule under TSan without re-running everything.
  echo "--- targeted determinism/commit suites (TSan build, HACCRG_THREADS=4) ---"
  HACCRG_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'Determinism|Commit' --schedule-random --repeat until-pass:1
fi

echo "=== all checks passed ==="
