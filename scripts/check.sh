#!/usr/bin/env bash
# Pre-merge gate: the tier-1 build plus a second, stricter build that
# promotes warnings to errors and runs the whole test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer.
#
#   scripts/check.sh            # both builds + both ctest runs
#   scripts/check.sh --strict   # only the -Werror + sanitizer build
#
# Build trees: build/ (tier-1) and build-strict/ (gate). Both are
# incremental — safe to re-run.
set -euo pipefail

cd "$(dirname "$0")/.."

run_tier1=1
if [[ "${1:-}" == "--strict" ]]; then
  run_tier1=0
fi

jobs=$(nproc 2>/dev/null || echo 2)

if [[ $run_tier1 == 1 ]]; then
  echo "=== tier-1 build (build/) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
fi

echo "=== strict build (-Werror + ASan/UBSan, build-strict/) ==="
cmake -B build-strict -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-Werror -fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
cmake --build build-strict -j "$jobs"
ctest --test-dir build-strict --output-on-failure -j "$jobs"

echo "=== all checks passed ==="
