#!/usr/bin/env bash
# clang-tidy sweep over the first-party sources, driven by the checked-in
# .clang-tidy profile. Warn-only by design: scripts/check.sh runs this
# but does not fail the gate on findings — the sanitizer builds are the
# hard gates; tidy surfaces candidates for cleanup.
#
#   scripts/tidy.sh [BUILD_DIR]   # default: build/
#
# Exits 0 when clang-tidy is unavailable (prints a notice) so the gate
# stays runnable on minimal toolchains; exits 1 only on findings, which
# callers may ignore.
set -uo pipefail

cd "$(dirname "$0")/.."
build_dir=${1:-build}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy: clang-tidy not found on PATH — skipping (warn-only check)"
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "tidy: no compile_commands.json in $build_dir — skipping"
  exit 0
fi

mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'bench/*.cpp' 'examples/*.cpp')
echo "tidy: ${#sources[@]} files against $build_dir/compile_commands.json"
status=0
clang-tidy -p "$build_dir" --quiet "${sources[@]}" || status=1
exit $status
