#!/usr/bin/env bash
# Regenerate the golden access trace under tests/golden/.
#
# The golden trace is REDUCE with its barrier removed (injected race),
# recorded on the default experiment machine; trace_reduce_races.txt is
# the live run's race set, which TraceReplayGolden asserts the replay
# engine still reproduces. Recording is deterministic, so rerunning this
# script without a detector/format change is a no-op diff.
#
# Run after an INTENTIONAL change to the trace format, the recorder, or
# the detectors, then review `git diff tests/golden/` and commit the new
# files together with the code. Bump trace::kFormatVersion when the wire
# format itself changes.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
CLI="$BUILD_DIR/src/trace/haccrg-trace"
if [[ ! -x "$CLI" ]]; then
  echo "building haccrg-trace..."
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target haccrg-trace -j >/dev/null
fi

"$CLI" record --kernel REDUCE --inject barrier:0 \
  --out tests/golden/trace_reduce.trc \
  --races tests/golden/trace_reduce_races.txt
echo "regenerated:"
git -c color.status=always status --short tests/golden/ || true
