// Static race-analysis front-end: CFG construction, affine address
// classification, lint diagnostics, and the soundness contract of the
// three consumers (sw instrumentation pruning and the hardware static
// filter must never lose a race the unpruned configuration detects).
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "analysis/cfg.hpp"
#include "analysis/static_race.hpp"
#include "isa/builder.hpp"
#include "kernels/injection.hpp"
#include "swrace/grace.hpp"
#include "swrace/sw_haccrg.hpp"

namespace haccrg {
namespace {

using analysis::AccessClass;
using analysis::AnalyzeOptions;
using analysis::LintKind;
using analysis::StaticRaceReport;
using kernels::BenchOptions;
using kernels::InjectionCase;
using kernels::InjectionKind;
using kernels::PreparedKernel;
using kernels::all_injection_cases;
using kernels::find_benchmark;
using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Program;
using isa::Reg;

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 32 * 1024 * 1024;
  return cfg;
}

// --- CFG ---------------------------------------------------------------------

TEST(Cfg, StraightLineIsOneBlock) {
  KernelBuilder kb("line");
  Reg a = kb.imm(1);
  Reg b = kb.reg();
  kb.add(b, a, a);
  Program prog = kb.build();
  analysis::Cfg cfg(prog);
  EXPECT_EQ(cfg.num_blocks(), 1u);
  EXPECT_TRUE(cfg.dominates(0, 0));
  EXPECT_TRUE(cfg.postdominates(0, 0));
}

TEST(Cfg, LoopHasBackEdgeAndHeaderDominatesBody) {
  KernelBuilder kb("loop");
  Reg i = kb.reg();
  kb.for_range(i, 0u, 4u, 1u, [&] {
    Reg t = kb.reg();
    kb.add(t, i, 1u);
  });
  Program prog = kb.build();
  analysis::Cfg cfg(prog);
  ASSERT_GT(cfg.num_blocks(), 1u);
  // Find the block containing the back-edge kJump and its target (the
  // loop header holding the kSetp/kBreakIfNot pair).
  u32 jump_pc = prog.size();
  for (u32 pc = 0; pc < prog.size(); ++pc) {
    if (prog.at(pc).op == isa::Opcode::kJump) jump_pc = pc;
  }
  ASSERT_LT(jump_pc, prog.size());
  const u32 body = cfg.block_of(jump_pc);
  const u32 header = cfg.block_of(prog.at(jump_pc).imm);
  EXPECT_TRUE(cfg.dominates(header, body));
  EXPECT_FALSE(cfg.dominates(body, header));
  // The header is re-entered from the body: it must list two preds.
  EXPECT_EQ(cfg.blocks()[header].preds.size(), 2u);
}

TEST(Cfg, EntryDominatesEverything) {
  KernelBuilder kb("nest");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Pred p = kb.pred();
  kb.setp(p, CmpOp::kLtU, tid, 8u);
  kb.if_(p, [&] {
    Reg i = kb.reg();
    kb.for_range(i, 0u, 4u, 1u, [&] { kb.add(i, i, 0u); });
  });
  Program prog = kb.build();
  analysis::Cfg cfg(prog);
  const u32 entry = cfg.block_of(0);
  for (u32 b = 0; b < cfg.num_blocks(); ++b) EXPECT_TRUE(cfg.dominates(entry, b));
}

// --- Affine classification on hand-built kernels -----------------------------

TEST(StaticRace, TidLinearStoreLoadWithBarrierIsSafe) {
  KernelBuilder kb("safe");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg slot = kb.reg();
  kb.mul(slot, tid, 4u);
  kb.st_shared(slot, tid);
  kb.barrier();
  Reg v = kb.reg();
  kb.ld_shared(v, slot);
  Program prog = kb.build();
  StaticRaceReport rep = analysis::analyze(prog);
  EXPECT_EQ(rep.count(AccessClass::kProvablySafe), 2u);
  EXPECT_EQ(rep.count(AccessClass::kMayRace), 0u);
}

TEST(StaticRace, MissingBarrierNeighborReadMayRace) {
  // The quickstart demo kernel: store 4*tid, read 4*((tid+32)%n) with no
  // barrier in between.
  KernelBuilder kb("racy");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg slot = kb.reg();
  kb.mul(slot, tid, 4u);
  kb.st_shared(slot, tid);
  Reg neighbor = kb.reg();
  kb.add(neighbor, tid, 32u);
  kb.rem(neighbor, neighbor, 128u);
  kb.mul(neighbor, neighbor, 4u);
  Reg v = kb.reg();
  kb.ld_shared(v, neighbor);
  Program prog = kb.build();
  StaticRaceReport rep = analysis::analyze(prog);
  EXPECT_GE(rep.count(AccessClass::kMayRace), 2u);
  EXPECT_EQ(rep.count(AccessClass::kProvablySafe), 0u);
}

TEST(StaticRace, AllThreadsStoreSameWordIsDefinite) {
  KernelBuilder kb("definite");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg zero = kb.imm(0);
  kb.st_shared(zero, tid);
  Program prog = kb.build();
  StaticRaceReport rep = analysis::analyze(prog);
  EXPECT_EQ(rep.count(AccessClass::kDefiniteRace), 1u);
  bool linted = false;
  for (const auto& lint : rep.lints) linted |= lint.kind == LintKind::kDefiniteRace;
  EXPECT_TRUE(linted);
}

TEST(StaticRace, UniqueThreadStoreIsExempt) {
  // Only thread 0 stores to word 0: launch-fixed single thread, no race.
  KernelBuilder kb("unique");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Pred is0 = kb.pred();
  kb.setp(is0, CmpOp::kEq, tid, 0u);
  kb.if_(is0, [&] {
    Reg zero = kb.imm(0);
    kb.st_shared(zero, tid);
  });
  Program prog = kb.build();
  StaticRaceReport rep = analysis::analyze(prog);
  EXPECT_EQ(rep.count(AccessClass::kDefiniteRace), 0u);
  EXPECT_EQ(rep.count(AccessClass::kMayRace), 0u);
}

TEST(StaticRace, DivergentBarrierIsLinted) {
  KernelBuilder kb("divbar");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Pred low = kb.pred();
  kb.setp(low, CmpOp::kLtU, tid, 16u);
  kb.if_(low, [&] { kb.barrier(); });
  Program prog = kb.build();
  StaticRaceReport rep = analysis::analyze(prog);
  EXPECT_EQ(rep.num_divergent_barriers, 1u);
  bool linted = false;
  for (const auto& lint : rep.lints) linted |= lint.kind == LintKind::kDivergentBarrier;
  EXPECT_TRUE(linted);
}

TEST(StaticRace, UniformBarrierIsNotLinted) {
  KernelBuilder kb("unibar");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg slot = kb.reg();
  kb.mul(slot, tid, 4u);
  kb.st_shared(slot, tid);
  kb.barrier();
  Program prog = kb.build();
  StaticRaceReport rep = analysis::analyze(prog);
  EXPECT_EQ(rep.num_barriers, 1u);
  EXPECT_EQ(rep.num_divergent_barriers, 0u);
}

TEST(StaticRace, AtomicOutsideCriticalSectionIsLinted) {
  KernelBuilder kb("atom");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg zero = kb.imm(0);
  Reg old = kb.reg();
  kb.atom_shared(old, isa::AtomicOp::kAdd, zero, tid);
  Program prog = kb.build();
  StaticRaceReport rep = analysis::analyze(prog);
  bool linted = false;
  for (const auto& lint : rep.lints) linted |= lint.kind == LintKind::kAtomicOutsideCritical;
  EXPECT_TRUE(linted);
  // The atomic itself is never a checkable race.
  EXPECT_EQ(rep.count(AccessClass::kMayRace), 0u);
}

TEST(StaticRace, CoarseGranularityDemotesStride4Shared) {
  // 4*tid stores are disjoint at 4-byte granules but collide within a
  // 16-byte granule, so the hardware-granularity report must keep them
  // may-race while the word-granularity report proves them safe.
  KernelBuilder kb("stride");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg slot = kb.reg();
  kb.mul(slot, tid, 4u);
  kb.st_shared(slot, tid);
  Program prog = kb.build();
  AnalyzeOptions word;
  StaticRaceReport fine = analysis::analyze(prog, word);
  AnalyzeOptions hw;
  hw.shared_granularity = 16;
  StaticRaceReport coarse = analysis::analyze(prog, hw);
  EXPECT_EQ(fine.count(AccessClass::kProvablySafe), 1u);
  EXPECT_EQ(coarse.count(AccessClass::kProvablySafe), 0u);
  EXPECT_EQ(coarse.count(AccessClass::kMayRace), 1u);
}

// --- Registry kernels --------------------------------------------------------

TEST(StaticRace, AnalyzesEveryRegistryKernel) {
  sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
  for (const auto& info : kernels::all_benchmarks()) {
    PreparedKernel prep = info.prepare(gpu, BenchOptions{});
    StaticRaceReport rep = analysis::analyze(prep.program);
    EXPECT_EQ(rep.classes.size(), prep.program.size()) << info.name;
    EXPECT_FALSE(rep.accesses.empty()) << info.name;
    EXPECT_FALSE(rep.summary().empty()) << info.name;
    // The annotated listing has one line per instruction plus header/lints.
    EXPECT_GE(rep.annotate(prep.program).size(), prep.program.disassemble().size()) << info.name;
  }
}

TEST(StaticRace, RaceFreeKernelsHaveTidLinearSafeAccesses) {
  sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
  for (const char* name : {"REDUCE", "SCAN", "PSUM"}) {
    BenchOptions opts;
    opts.single_block = true;  // the race-free configuration
    PreparedKernel prep = find_benchmark(name)->prepare(gpu, opts);
    StaticRaceReport rep = analysis::analyze(prep.program);
    bool tid_linear_safe = false;
    for (const auto& acc : rep.accesses) {
      if (acc.shared_space && !acc.addr.top && acc.addr.c_tid != 0 &&
          acc.cls == AccessClass::kProvablySafe) {
        tid_linear_safe = true;
      }
    }
    EXPECT_TRUE(tid_linear_safe) << name;
  }
}

TEST(StaticRace, BarrierRemovalLeavesMayRaceSharedAccess) {
  sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
  for (const auto& test : all_injection_cases()) {
    if (test.injection.kind != InjectionKind::kRemoveBarrier) continue;
    BenchOptions opts;
    opts.injection = test.injection;
    PreparedKernel prep = find_benchmark(test.benchmark)->prepare(gpu, opts);
    StaticRaceReport rep = analysis::analyze(prep.program);
    u32 shared_may_race = 0;
    for (const auto& acc : rep.accesses) {
      if (acc.shared_space && acc.cls != AccessClass::kProvablySafe) ++shared_may_race;
    }
    EXPECT_GE(shared_may_race, 1u) << test.label();
  }
}

// --- Consumer soundness ------------------------------------------------------

// Software pruning: on every injection case, the pruned instrumentation
// must still detect whenever the unpruned instrumentation does. Counts
// are timing-sensitive, so the contract is detection, not equality.
class SwPruneSoundness : public ::testing::TestWithParam<size_t> {};

TEST_P(SwPruneSoundness, PrunedSwHaccrgStillDetects) {
  const auto cases = all_injection_cases();
  ASSERT_LT(GetParam(), cases.size());
  const InjectionCase& test = cases[GetParam()];
  const kernels::BenchmarkInfo* info = find_benchmark(test.benchmark);
  ASSERT_NE(info, nullptr);
  BenchOptions opts;
  opts.injection = test.injection;
  if (info->real_race_multiblock && test.injection.kind == InjectionKind::kRemoveBarrier) {
    opts.single_block = true;
  }

  {
    sim::Gpu probe_gpu(test_gpu(), rd::HaccrgConfig{});
    PreparedKernel probe = info->prepare(probe_gpu, opts);
    if (!swrace::sw_haccrg_fits(probe.program)) {
      GTEST_SKIP() << test.label() << " leaves no register headroom for instrumentation";
    }
  }

  auto run = [&](bool prune) {
    sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
    PreparedKernel prep = info->prepare(gpu, opts);
    swrace::InstrumentOptions iopts;
    iopts.static_prune = prune;
    swrace::InstrumentStats stats;
    swrace::attach_sw_haccrg(gpu, prep, iopts, &stats);
    sim::SimResult r = gpu.launch(prep.launch());
    EXPECT_TRUE(r.completed) << test.label() << ": " << r.error;
    return std::make_pair(swrace::sw_haccrg_race_count(gpu, prep), stats);
  };
  const auto [unpruned, full_stats] = run(false);
  const auto [pruned, pruned_stats] = run(true);
  if (unpruned > 0) {
    EXPECT_GT(pruned, 0u) << test.label() << " — pruning lost the injected race";
  }
  EXPECT_LE(pruned_stats.sites_instrumented, full_stats.sites_instrumented) << test.label();
}

INSTANTIATE_TEST_SUITE_P(AllFortyOne, SwPruneSoundness, ::testing::Range<size_t>(0, 41),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           auto cases = all_injection_cases();
                           std::string label = cases[info.param].label();
                           for (char& c : label) {
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return label;
                         });

TEST(SwPruneSoundness, PrunedGraceStillDetectsBarrierRemovals) {
  // GRace instruments shared accesses only; run the shared-space
  // (barrier-removal) cases on the benchmarks it applies to.
  for (const auto& test : all_injection_cases()) {
    if (test.injection.kind != InjectionKind::kRemoveBarrier) continue;
    const kernels::BenchmarkInfo* info = find_benchmark(test.benchmark);
    BenchOptions opts;
    opts.injection = test.injection;
    if (info->real_race_multiblock) opts.single_block = true;
    {
      sim::Gpu probe_gpu(test_gpu(), rd::HaccrgConfig{});
      PreparedKernel probe = info->prepare(probe_gpu, opts);
      if (!swrace::grace_fits(probe.program)) continue;
    }
    auto run = [&](bool prune) {
      sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
      PreparedKernel prep = info->prepare(gpu, opts);
      swrace::InstrumentOptions iopts;
      iopts.static_prune = prune;
      swrace::attach_grace(gpu, prep, iopts, nullptr);
      sim::SimResult r = gpu.launch(prep.launch());
      EXPECT_TRUE(r.completed) << test.label() << ": " << r.error;
      return swrace::grace_race_count(gpu, prep);
    };
    const u64 unpruned = run(false);
    if (unpruned > 0) {
      EXPECT_GT(run(true), 0u) << test.label() << " — pruning lost the injected race";
    }
  }
}

// Hardware static filter: on every injection case, the filtered run must
// still detect the injected race whenever the unfiltered run does.
// (Exact location sets are not compared: filtering shifts memory timing,
// and cross-block race observation is arrival-order dependent, so the
// boundary granules of a racy window can differ between the two runs.)
class HwFilterSoundness : public ::testing::TestWithParam<size_t> {};

TEST_P(HwFilterSoundness, FilteredRunStillDetects) {
  const auto cases = all_injection_cases();
  ASSERT_LT(GetParam(), cases.size());
  const InjectionCase& test = cases[GetParam()];
  const kernels::BenchmarkInfo* info = find_benchmark(test.benchmark);
  ASSERT_NE(info, nullptr);

  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.enable_global = true;
  det.shared_granularity = 4;
  det.global_granularity = 4;

  BenchOptions opts;
  opts.injection = test.injection;
  if (info->real_race_multiblock && test.injection.kind == InjectionKind::kRemoveBarrier) {
    opts.single_block = true;
  }

  auto detected = [&](const sim::SimResult& r) {
    if (test.injection.kind == InjectionKind::kRogueCritical)
      return r.races.count(rd::RaceMechanism::kLockset) > 0;
    if (test.injection.kind == InjectionKind::kRemoveFence)
      return r.races.count(rd::RaceMechanism::kFence) + r.races.count(rd::RaceMechanism::kL1Stale) >
             0;
    return r.races.count(test.expected_space) > 0;
  };

  auto run = [&](bool filter) {
    rd::HaccrgConfig cfg = det;
    cfg.static_filter = filter;
    sim::Gpu gpu(test_gpu(), cfg);
    PreparedKernel prep = info->prepare(gpu, opts);
    if (filter) {
      AnalyzeOptions aopts;
      aopts.shared_granularity = cfg.shared_granularity;
      aopts.global_granularity = cfg.global_granularity;
      prep.static_report = std::make_shared<const StaticRaceReport>(
          analysis::analyze(prep.program, aopts));
    }
    sim::SimResult r = gpu.launch(prep.launch());
    EXPECT_TRUE(r.completed) << test.label() << ": " << r.error;
    return std::make_pair(detected(r), r.stats.get("rd.static_filtered"));
  };
  const auto [base_detected, base_filtered] = run(false);
  const auto [filt_detected, filt_filtered] = run(true);
  EXPECT_EQ(base_filtered, 0u);
  if (base_detected) {
    EXPECT_TRUE(filt_detected) << test.label() << " — static filter lost the injected race";
  }
}

INSTANTIATE_TEST_SUITE_P(AllFortyOne, HwFilterSoundness, ::testing::Range<size_t>(0, 41),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           auto cases = all_injection_cases();
                           std::string label = cases[info.param].label();
                           for (char& c : label) {
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return label;
                         });

// The filter actually removes check work on a race-free kernel.
TEST(HwFilter, FiltersChecksOnRaceFreeReduce) {
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.enable_global = true;
  det.shared_granularity = 4;  // word granularity so tid-linear shared filters too
  det.global_granularity = 4;
  det.static_filter = true;
  sim::Gpu gpu(test_gpu(), det);
  PreparedKernel prep = find_benchmark("REDUCE")->prepare(gpu, BenchOptions{});
  AnalyzeOptions aopts;
  aopts.shared_granularity = det.shared_granularity;
  aopts.global_granularity = det.global_granularity;
  prep.static_report =
      std::make_shared<const StaticRaceReport>(analysis::analyze(prep.program, aopts));
  sim::SimResult r = gpu.launch(prep.launch());
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_GT(r.stats.get("rd.static_filtered"), 0u);
  EXPECT_EQ(r.races.total(), 0u);
}

}  // namespace
}  // namespace haccrg
