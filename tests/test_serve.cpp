// Server-level contract of the trace-replay detection service: the job
// lifecycle (submit / status / result / cancel), bounded-queue overload
// rejection with kUnavailable, concurrent-job isolation (N jobs over
// the same and different traces, sharded worker counts {1, 2, 8}, all
// reports byte-identical to each other and across worker counts),
// shutdown-under-load draining with no lost or duplicated results, the
// index-less (v1) kernel-slice fallback, and the wire protocol's
// request/response round trip through handle_frame.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "kernels/common.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/gpu.hpp"
#include "trace/index.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"

namespace haccrg {
namespace {

using serve::JobInfo;
using serve::JobState;
using serve::Request;
using serve::Response;
using serve::Server;
using serve::ServerConfig;
using serve::Verb;

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 32 * 1024 * 1024;
  return cfg;
}

rd::HaccrgConfig detection_combined() {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  cfg.shared_granularity = 16;
  cfg.global_granularity = 4;
  return cfg;
}

/// Record one kernel and return the trace file image. `with_index`
/// selects v2 (indexed) or v1 (linear-fallback) output.
std::vector<u8> record_trace(const std::string& name, bool with_index, const std::string& tag) {
  const std::string path = "test_serve_" + tag + ".trc";
  {
    sim::SimConfig sim_cfg;
    sim_cfg.trace_path = path;
    sim_cfg.trace_index = with_index;
    sim::Gpu gpu(test_gpu(), detection_combined(), sim_cfg);
    gpu.set_trace_label(name);
    kernels::PreparedKernel prep = kernels::find_benchmark(name)->prepare(gpu, {});
    const sim::SimResult live = gpu.launch(prep.launch());
    EXPECT_TRUE(live.completed) << tag << ": " << live.error;
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());
  const std::string bytes = buf.str();
  return std::vector<u8>(bytes.begin(), bytes.end());
}

/// Traces are recorded once; every test slices this fixture.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    reduce_trace_ = new std::vector<u8>(record_trace("REDUCE", true, "reduce"));
    hist_trace_ = new std::vector<u8>(record_trace("HIST", true, "hist"));
    reduce_v1_trace_ = new std::vector<u8>(record_trace("REDUCE", false, "reduce_v1"));
  }
  static void TearDownTestSuite() {
    delete reduce_trace_;
    delete hist_trace_;
    delete reduce_v1_trace_;
    reduce_trace_ = hist_trace_ = reduce_v1_trace_ = nullptr;
  }
  static const std::vector<u8>& reduce_trace() { return *reduce_trace_; }
  static const std::vector<u8>& hist_trace() { return *hist_trace_; }
  static const std::vector<u8>& reduce_v1_trace() { return *reduce_v1_trace_; }

 private:
  static std::vector<u8>* reduce_trace_;
  static std::vector<u8>* hist_trace_;
  static std::vector<u8>* reduce_v1_trace_;
};

std::vector<u8>* ServeTest::reduce_trace_ = nullptr;
std::vector<u8>* ServeTest::hist_trace_ = nullptr;
std::vector<u8>* ServeTest::reduce_v1_trace_ = nullptr;

// --- Lifecycle ---------------------------------------------------------------

TEST_F(ServeTest, SubmitResultLifecycle) {
  ServerConfig cfg;
  cfg.workers = 2;
  Server server(cfg);

  u64 id = 0;
  ASSERT_TRUE(server.submit(reduce_trace(), 2, -1, id).ok());
  EXPECT_GT(id, 0u);

  std::string report;
  ASSERT_TRUE(server.result(id, /*wait=*/true, report).ok());
  EXPECT_NE(report.find("\"unique_races\""), std::string::npos);

  JobInfo info;
  ASSERT_TRUE(server.status(id, info).ok());
  EXPECT_EQ(info.state, JobState::kDone);

  // A settled job cannot be cancelled, and its result stays queryable.
  EXPECT_EQ(server.cancel(id).code(), StatusCode::kInvalidArgument);
  std::string again;
  ASSERT_TRUE(server.result(id, false, again).ok());
  EXPECT_EQ(again, report);
}

TEST_F(ServeTest, UnknownJobsAndBadSubmissions) {
  Server server(ServerConfig{});
  JobInfo info;
  std::string report;
  EXPECT_EQ(server.status(999, info).code(), StatusCode::kNotFound);
  EXPECT_EQ(server.result(999, false, report).code(), StatusCode::kNotFound);
  EXPECT_EQ(server.cancel(999).code(), StatusCode::kNotFound);

  u64 id = 0;
  EXPECT_EQ(server.submit({}, 1, -1, id).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.submit(reduce_trace(), 0, -1, id).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.submit(reduce_trace(), 65, -1, id).code(), StatusCode::kInvalidArgument);

  ServerConfig tiny;
  tiny.max_trace_bytes = 16;
  Server small(tiny);
  EXPECT_EQ(small.submit(reduce_trace(), 1, -1, id).code(), StatusCode::kInvalidArgument);

  // Garbage bytes are accepted into the queue and fail at decode time —
  // a per-job failure, never a worker casualty.
  std::vector<u8> garbage(256, 0x5a);
  ASSERT_TRUE(server.submit(garbage, 1, -1, id).ok());
  EXPECT_FALSE(server.result(id, true, report).ok());
  ASSERT_TRUE(server.status(id, info).ok());
  EXPECT_EQ(info.state, JobState::kFailed);
}

TEST_F(ServeTest, CancelQueuedJob) {
  // One worker + replay jobs: later submissions stay queued long enough
  // to cancel. If the race is lost anyway, the job must settle normally
  // — cancellation is best-effort on a live queue, never corrupting.
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.memoize = false;
  Server server(cfg);
  std::vector<u64> ids(6);
  for (u64& id : ids) ASSERT_TRUE(server.submit(hist_trace(), 1, -1, id).ok());

  const Status cancelled = server.cancel(ids.back());
  std::string report;
  const Status got = server.result(ids.back(), true, report);
  if (cancelled.ok()) {
    EXPECT_EQ(got.code(), StatusCode::kInvalidArgument) << "cancelled job served a result";
  } else {
    EXPECT_TRUE(got.ok()) << got.message();
  }
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    EXPECT_TRUE(server.result(ids[i], true, report).ok()) << "job " << ids[i];
  }
}

// --- Overload ---------------------------------------------------------------

TEST_F(ServeTest, OverloadRejectsWithUnavailable) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_queue = 2;
  cfg.memoize = false;  // every job replays; the queue genuinely backs up
  Server server(cfg);

  u32 accepted = 0;
  u32 rejected = 0;
  std::vector<u64> ids;
  for (u32 i = 0; i < 24; ++i) {
    u64 id = 0;
    const Status st = server.submit(reduce_trace(), 1, -1, id);
    if (st.ok()) {
      ids.push_back(id);
      ++accepted;
    } else {
      ASSERT_EQ(st.code(), StatusCode::kUnavailable) << st.message();
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u) << "a 2-deep queue absorbed 24 replay jobs";
  EXPECT_GT(accepted, 0u);

  // Every accepted job still completes and yields the same report.
  std::string reference;
  for (size_t i = 0; i < ids.size(); ++i) {
    std::string report;
    ASSERT_TRUE(server.result(ids[i], true, report).ok());
    if (i == 0) reference = report;
    EXPECT_EQ(report, reference);
  }
}

// --- Concurrent-job isolation ------------------------------------------------

TEST_F(ServeTest, ConcurrentJobsAreIsolatedAcrossWorkerCounts) {
  // Memoization off: identical reports must come from genuinely
  // independent replays, not from one replay served N times.
  ServerConfig cfg;
  cfg.workers = 4;
  cfg.max_queue = 64;
  cfg.memoize = false;
  Server server(cfg);

  struct Submitted {
    u64 id;
    const char* kernel;
    u32 workers;
  };
  std::vector<Submitted> jobs;
  for (const u32 workers : {1u, 2u, 8u}) {
    for (int n = 0; n < 3; ++n) {
      u64 id = 0;
      ASSERT_TRUE(server.submit(reduce_trace(), workers, -1, id).ok());
      jobs.push_back({id, "REDUCE", workers});
      ASSERT_TRUE(server.submit(hist_trace(), workers, -1, id).ok());
      jobs.push_back({id, "HIST", workers});
    }
  }

  // Per kernel, one report must emerge — across interleavings, worker
  // counts, and queue positions (the sharding determinism contract).
  std::map<std::string, std::string> reference;
  for (const Submitted& job : jobs) {
    std::string report;
    ASSERT_TRUE(server.result(job.id, true, report).ok()) << job.kernel;
    auto [it, inserted] = reference.emplace(job.kernel, report);
    EXPECT_EQ(report, it->second)
        << job.kernel << " with " << job.workers << " workers diverged";
  }
  EXPECT_NE(reference["REDUCE"], reference["HIST"])
      << "different traces produced the same report — jobs are bleeding state";
}

// --- Shutdown under load -----------------------------------------------------

TEST_F(ServeTest, ShutdownDrainsWithoutLosingResults) {
  ServerConfig cfg;
  cfg.workers = 4;
  cfg.max_queue = 64;
  cfg.memoize = false;
  Server server(cfg);

  std::vector<u64> ids(24);
  for (size_t i = 0; i < ids.size(); ++i)
    ASSERT_TRUE(server.submit(i % 2 ? hist_trace() : reduce_trace(), 2, -1, ids[i]).ok());

  server.shutdown();  // drain: every accepted job runs to completion

  u64 id = 0;
  EXPECT_EQ(server.submit(reduce_trace(), 1, -1, id).code(), StatusCode::kUnavailable);

  // No lost results: every job settled kDone with a report. No
  // duplicated results: job ids are unique and each maps to exactly one
  // report matching its kernel.
  std::map<u64, std::string> results;
  for (size_t i = 0; i < ids.size(); ++i) {
    std::string report;
    ASSERT_TRUE(server.result(ids[i], false, report).ok()) << "job " << ids[i] << " lost";
    ASSERT_TRUE(results.emplace(ids[i], std::move(report)).second)
        << "job id " << ids[i] << " duplicated";
  }
  for (size_t i = 2; i < ids.size(); ++i)
    EXPECT_EQ(results[ids[i]], results[ids[i % 2]]) << "job " << ids[i];
}

// --- Kernel slices and the v1 fallback ---------------------------------------

TEST_F(ServeTest, KernelSliceWorksOnV1TracesViaLinearFallback) {
  ServerConfig cfg;
  cfg.workers = 1;
  Server server(cfg);

  // Indexed (v2) and index-less (v1) images of the same recording must
  // serve byte-identical slice reports; the v1 path must bump the
  // index_missing counter instead of failing.
  u64 v2_id = 0;
  u64 v1_id = 0;
  ASSERT_TRUE(server.submit(reduce_trace(), 1, 0, v2_id).ok());
  const u64 missing_before = trace::index_missing_count();
  ASSERT_TRUE(server.submit(reduce_v1_trace(), 1, 0, v1_id).ok());

  std::string v2_report;
  std::string v1_report;
  ASSERT_TRUE(server.result(v2_id, true, v2_report).ok());
  ASSERT_TRUE(server.result(v1_id, true, v1_report).ok());
  EXPECT_EQ(v1_report, v2_report);
  EXPECT_GT(trace::index_missing_count(), missing_before)
      << "v1 slice decode did not count its linear-scan fallback";

  // A slice past the end is a per-job not-found, not a server failure.
  u64 bad_id = 0;
  ASSERT_TRUE(server.submit(reduce_trace(), 1, 5000, bad_id).ok());
  std::string report;
  EXPECT_EQ(server.result(bad_id, true, report).code(), StatusCode::kNotFound);
}

// --- Memoization -------------------------------------------------------------

TEST_F(ServeTest, MemoizedResubmissionMatchesFirstReport) {
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.memoize = true;
  Server server(cfg);

  u64 first = 0;
  ASSERT_TRUE(server.submit(reduce_trace(), 1, -1, first).ok());
  std::string reference;
  ASSERT_TRUE(server.result(first, true, reference).ok());

  // Resubmissions are answered from the memo — and because reports are
  // worker-count independent, a different worker count still hits.
  for (const u32 workers : {1u, 2u, 8u}) {
    u64 id = 0;
    ASSERT_TRUE(server.submit(reduce_trace(), workers, -1, id).ok());
    std::string report;
    ASSERT_TRUE(server.result(id, true, report).ok());
    EXPECT_EQ(report, reference);
  }
  const std::string stats = server.stats_json();
  EXPECT_NE(stats.find("\"memo_hits\": 3"), std::string::npos) << stats;
}

// --- Protocol round trip through handle_frame --------------------------------

TEST_F(ServeTest, ProtocolRoundTripOverFrames) {
  ServerConfig cfg;
  cfg.workers = 2;
  Server server(cfg);

  auto roundtrip = [&server](const Request& request, Response& response) {
    std::vector<u8> payload;
    serve::encode_request(request, payload);
    std::vector<u8> reply;
    server.handle_frame(payload.data(), payload.size(), reply);
    Response parsed;
    ASSERT_TRUE(serve::parse_response(reply.data(), reply.size(), parsed).ok());
    response = parsed;
  };

  Request submit;
  submit.verb = Verb::kSubmit;
  submit.workers = 2;
  submit.trace = reduce_trace();
  Response response;
  roundtrip(submit, response);
  ASSERT_TRUE(response.ok);
  const u64 id = response.job_id;
  EXPECT_GT(id, 0u);

  Request result;
  result.verb = Verb::kResult;
  result.job_id = id;
  result.wait = true;
  roundtrip(result, response);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.state, "done");
  EXPECT_NE(response.body.find("\"unique_races\""), std::string::npos);

  Request status;
  status.verb = Verb::kStatus;
  status.job_id = id;
  roundtrip(status, response);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.state, "done");

  Request stats;
  stats.verb = Verb::kStats;
  roundtrip(stats, response);
  ASSERT_TRUE(response.ok);
  EXPECT_NE(response.body.find("\"queue_depth\""), std::string::npos);

  // Malformed frames come back as parseable ERR responses.
  const char garbage[] = "NONSENSE\r\n\r\n";
  std::vector<u8> reply;
  server.handle_frame(reinterpret_cast<const u8*>(garbage), sizeof garbage - 1, reply);
  Response err;
  ASSERT_TRUE(serve::parse_response(reply.data(), reply.size(), err).ok());
  EXPECT_FALSE(err.ok);

  Request shutdown;
  shutdown.verb = Verb::kShutdown;
  roundtrip(shutdown, response);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.state, "drained");
}

// --- Deadlines and the watchdog ----------------------------------------------

TEST_F(ServeTest, DeadlineTimesOutStalledJobsAndWorkersSurvive) {
  // Every job stalls (injected, 50ms) under a 5ms default deadline: the
  // watchdog cancels at the deadline, the stall loop observes the token,
  // and the replay aborts at its first batch boundary — kTimedOut, with
  // the worker alive to serve the next job.
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.memoize = false;
  cfg.default_deadline_ms = 5;
  cfg.deadline_grace_ms = 200;
  cfg.watchdog_interval_ms = 2;
  cfg.fault_stall_ms = 50;
  cfg.faults.seed = 3;
  cfg.faults.rate_ppm[static_cast<u32>(fault::FaultSite::kServeWorkerStall)] = 1'000'000;
  Server server(cfg);

  std::vector<u64> ids(4);
  for (u64& id : ids) ASSERT_TRUE(server.submit(reduce_trace(), 1, -1, id).ok());
  for (const u64 id : ids) {
    std::string report;
    EXPECT_EQ(server.result(id, true, report).code(), StatusCode::kDeadlineExceeded);
    JobInfo info;
    ASSERT_TRUE(server.status(id, info).ok());
    EXPECT_EQ(info.state, JobState::kTimedOut);
  }
  const std::string stats = server.stats_json();
  EXPECT_NE(stats.find("\"timed_out\": 4"), std::string::npos) << stats;

  // The pool is healthy: a job with a generous per-SUBMIT deadline
  // overrides the tight default and completes.
  u64 ok_id = 0;
  ASSERT_TRUE(server.submit(reduce_trace(), 1, -1, /*deadline_ms=*/60'000, ok_id).ok());
  std::string report;
  EXPECT_TRUE(server.result(ok_id, true, report).ok());
}

TEST_F(ServeTest, CancelledReplayOverrunIsBoundedToOneBatch) {
  trace::TraceReader reader(reduce_trace());
  trace::DecodedTrace decoded;
  ASSERT_TRUE(trace::decode_trace(reader, decoded).ok());
  trace::CancelToken token;
  token.cancel();
  trace::ReplayOptions opts;
  opts.cancel = &token;
  const trace::ReplayResult r = trace::replay_decoded(decoded, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, StatusCode::kDeadlineExceeded);
  EXPECT_LE(r.total_events, trace::kCancelCheckInterval);
}

// --- Quarantine --------------------------------------------------------------

TEST_F(ServeTest, RepeatedlyFailingImageIsQuarantined) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.quarantine_threshold = 2;
  Server server(cfg);

  std::vector<u8> poison = reduce_trace();
  poison.resize(poison.size() / 2);  // truncated mid-stream: decode always fails

  for (u32 i = 0; i < cfg.quarantine_threshold; ++i) {
    u64 id = 0;
    ASSERT_TRUE(server.submit(poison, 1, -1, id).ok()) << "attempt " << i;
    std::string report;
    EXPECT_FALSE(server.result(id, true, report).ok());
    JobInfo info;
    ASSERT_TRUE(server.status(id, info).ok());
    EXPECT_EQ(info.state, JobState::kFailed);
  }

  // The image is now a poison pill: rejected at submit time, no queueing.
  u64 id = 0;
  EXPECT_EQ(server.submit(poison, 1, -1, id).code(), StatusCode::kCorrupt);
  EXPECT_EQ(server.submit(poison, 1, -1, id).code(), StatusCode::kCorrupt);

  // Quarantine is per image: the intact trace still serves.
  ASSERT_TRUE(server.submit(reduce_trace(), 1, -1, id).ok());
  std::string report;
  EXPECT_TRUE(server.result(id, true, report).ok());

  const std::string stats = server.stats_json();
  EXPECT_NE(stats.find("\"quarantined\": 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"quarantine_rejected\": 2"), std::string::npos) << stats;
}

// --- LRU bounds on the memo and decode cache ---------------------------------

TEST_F(ServeTest, MemoAndDecodeCacheEvictUnderByteBound) {
  // A budget far below one decoded trace: every new job evicts the
  // previous entries, and the counters say so. Results stay correct —
  // eviction costs recomputation, never answers.
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_memo_bytes = 4096;
  Server server(cfg);

  std::string first_report;
  for (int round = 0; round < 2; ++round) {
    u64 a = 0, b = 0;
    ASSERT_TRUE(server.submit(reduce_trace(), 1, -1, a).ok());
    ASSERT_TRUE(server.submit(hist_trace(), 1, -1, b).ok());
    std::string ra, rb;
    ASSERT_TRUE(server.result(a, true, ra).ok());
    ASSERT_TRUE(server.result(b, true, rb).ok());
    EXPECT_NE(ra, rb);
    if (round == 0) first_report = ra;
    else EXPECT_EQ(ra, first_report) << "re-replay after eviction diverged";
  }
  const std::string stats = server.stats_json();
  auto count = [&stats](const char* key) {
    const std::string needle = std::string("\"") + key + "\": ";
    const size_t pos = stats.find(needle);
    return pos == std::string::npos
               ? -1ll
               : std::strtoll(stats.c_str() + pos + needle.size(), nullptr, 10);
  };
  EXPECT_GT(count("cache_evictions") + count("memo_evictions"), 0) << stats;
  EXPECT_LE(count("memo_bytes"), 4096) << stats;
}

// --- Drain timeout -----------------------------------------------------------

TEST_F(ServeTest, DrainTimeoutCancelsQueuedJobsOnly) {
  // One worker, every job stalls 50ms, six jobs, a 10ms drain budget:
  // whatever is still queued when the budget expires settles kCancelled;
  // nothing is lost, nothing keeps running after shutdown returns.
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.memoize = false;
  cfg.fault_stall_ms = 50;
  cfg.faults.seed = 5;
  cfg.faults.rate_ppm[static_cast<u32>(fault::FaultSite::kServeWorkerStall)] = 1'000'000;
  Server server(cfg);

  std::vector<u64> ids(6);
  for (u64& id : ids) ASSERT_TRUE(server.submit(reduce_trace(), 1, -1, id).ok());
  server.shutdown(/*drain_timeout_ms=*/10);

  u32 done = 0, cancelled = 0;
  for (const u64 id : ids) {
    JobInfo info;
    ASSERT_TRUE(server.status(id, info).ok());
    ASSERT_TRUE(info.state == JobState::kDone || info.state == JobState::kCancelled)
        << "job " << id << " is " << job_state_name(info.state);
    info.state == JobState::kDone ? ++done : ++cancelled;
  }
  EXPECT_GT(done, 0u) << "the running job should have finished";
  EXPECT_GT(cancelled, 0u) << "a 10ms budget against 50ms stalls cancelled nothing";
  const std::string stats = server.stats_json();
  EXPECT_NE(stats.find("\"drain_cancelled\": " + std::to_string(cancelled)),
            std::string::npos)
      << stats;
}

// --- Client retry/backoff ----------------------------------------------------

TEST_F(ServeTest, ClientRetriesUnavailableWithDeterministicBackoff) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_queue = 1;
  cfg.memoize = false;
  Server server(cfg);

  serve::ClientConfig ccfg;
  ccfg.seed = 42;
  ccfg.max_attempts = 8;
  ccfg.base_backoff_ms = 4;
  ccfg.max_backoff_ms = 64;
  std::vector<u32> slept;
  ccfg.sleep_ms = [&slept](u32 ms) {
    slept.push_back(ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  serve::Client client = serve::Client::in_process(server, ccfg);

  // A 1-deep queue with one worker: a burst of submissions forces
  // retries, and every job is eventually accepted or honestly rejected
  // as kUnavailable after the attempt budget.
  std::vector<u64> ids;
  u32 exhausted = 0;
  for (u32 i = 0; i < 12; ++i) {
    u64 id = 0;
    const Status st = client.submit(reduce_trace(), 1, -1, 0, id);
    if (st.ok()) ids.push_back(id);
    else {
      EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.message();
      ++exhausted;
    }
  }
  EXPECT_GT(client.retries(), 0u);
  EXPECT_EQ(client.retries(), slept.size());
  for (size_t i = 0; i < slept.size(); ++i) {
    EXPECT_GE(slept[i], ccfg.base_backoff_ms / 2) << "jitter floor violated at " << i;
    EXPECT_LE(slept[i], ccfg.max_backoff_ms) << "backoff cap violated at " << i;
  }
  for (const u64 id : ids) {
    std::string report;
    EXPECT_TRUE(client.result(id, true, report).ok()) << "job " << id;
  }

  // Same seed, same transport behavior => same jitter sequence.
  SplitMix64 a(42), b(42);
  EXPECT_EQ(a.next(), b.next());
}

TEST_F(ServeTest, ClientSurfacesTerminalErrorsWithoutRetry) {
  ServerConfig cfg;
  cfg.workers = 1;
  Server server(cfg);
  u32 sleeps = 0;
  serve::ClientConfig ccfg;
  ccfg.sleep_ms = [&sleeps](u32) { ++sleeps; };
  serve::Client client = serve::Client::in_process(server, ccfg);

  u64 id = 0;
  EXPECT_EQ(client.submit({}, 1, -1, 0, id).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client.submit(reduce_trace(), 0, -1, 0, id).code(),
            StatusCode::kInvalidArgument);
  std::string json;
  EXPECT_EQ(client.result(999, false, json).code(), StatusCode::kNotFound);
  EXPECT_EQ(sleeps, 0u) << "terminal errors must not burn retry budget";
  EXPECT_EQ(client.retries(), 0u);

  // The happy path through the same client still works end to end.
  ASSERT_TRUE(client.submit(reduce_trace(), 1, -1, 0, id).ok());
  EXPECT_TRUE(client.result(id, true, json).ok());
  EXPECT_NE(json.find("\"unique_races\""), std::string::npos);
}

// --- Frame-level fault injection ---------------------------------------------

TEST_F(ServeTest, MangledFramesYieldErrResponsesNeverCrashes) {
  // Truncate or corrupt every incoming frame: requests fail as ERR
  // responses while the server — queried through the direct API, which
  // rolls no dice — stays fully functional.
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.faults.seed = 9;
  cfg.faults.rate_ppm[static_cast<u32>(fault::FaultSite::kServeFrameTruncate)] = 1'000'000;
  cfg.faults.rate_ppm[static_cast<u32>(fault::FaultSite::kServeFrameCorrupt)] = 1'000'000;
  Server server(cfg);

  for (u32 i = 0; i < 16; ++i) {
    Request request;
    request.verb = Verb::kStats;
    std::vector<u8> payload;
    serve::encode_request(request, payload);
    std::vector<u8> reply;
    server.handle_frame(payload.data(), payload.size(), reply);
    Response response;
    ASSERT_TRUE(serve::parse_response(reply.data(), reply.size(), response).ok())
        << "frame " << i << ": response unparseable";
  }
  const std::string stats = server.stats_json();
  EXPECT_NE(stats.find("\"fault.serve_frame_truncate\""), std::string::npos) << stats;

  u64 id = 0;
  ASSERT_TRUE(server.submit(reduce_trace(), 1, -1, id).ok());
  std::string report;
  EXPECT_TRUE(server.result(id, true, report).ok());
}

}  // namespace
}  // namespace haccrg
