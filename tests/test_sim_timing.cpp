// Timing-model behavior tests: the simulator's cycle counts must respond
// to the architectural effects HAccRG's evaluation depends on — bank
// conflicts, coalescing quality, latency hiding across warps, barrier
// reset costs, and detection-config perturbations.
#include <gtest/gtest.h>

#include "isa/builder.hpp"
#include "sim/gpu.hpp"

namespace haccrg {
namespace {

using isa::KernelBuilder;
using isa::Operand;
using isa::Reg;
using sim::Gpu;
using sim::LaunchConfig;
using sim::SimResult;

arch::GpuConfig one_sm() {
  arch::GpuConfig cfg;
  cfg.num_sms = 1;
  cfg.device_mem_bytes = 4 * 1024 * 1024;
  return cfg;
}

/// Kernel doing `reps` shared loads with a given word stride per lane.
SimResult shared_stride_kernel(u32 stride_words, u32 reps) {
  Gpu gpu(one_sm(), rd::HaccrgConfig{});
  KernelBuilder kb("stride");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg addr = kb.reg();
  kb.mul(addr, tid, stride_words * 4);
  kb.rem(addr, addr, 8192u);
  Reg v = kb.reg();
  Reg i = kb.reg();
  kb.for_range(i, 0u, reps, 1u, [&] { kb.ld_shared(v, addr); });
  isa::Program prog = kb.build();
  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 1;
  launch.block_dim = 32;
  launch.shared_mem_bytes = 8192;
  SimResult r = gpu.launch(launch);
  EXPECT_TRUE(r.completed) << r.error;
  return r;
}

TEST(Timing, BankConflictsSlowSharedAccesses) {
  const Cycle unit = shared_stride_kernel(1, 64).cycles;
  const Cycle conflicted = shared_stride_kernel(16, 64).cycles;  // all lanes bank 0
  EXPECT_GT(conflicted, unit + 64);  // each access serializes over the bank
}

/// Kernel doing `reps` global loads with a given element stride per lane.
SimResult global_stride_kernel(u32 stride_words, u32 reps) {
  Gpu gpu(one_sm(), rd::HaccrgConfig{});
  const Addr buf = gpu.allocator().alloc(1024 * 1024, "buf");
  KernelBuilder kb("gstride");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg base = kb.param(0);
  Reg offset = kb.reg();
  kb.mul(offset, tid, stride_words * 4);
  Reg addr = kb.reg();
  kb.add(addr, base, Operand(offset));
  Reg v = kb.reg();
  Reg i = kb.reg();
  kb.for_range(i, 0u, reps, 1u, [&] {
    kb.ld_global(v, addr);
    kb.add(addr, addr, 32 * stride_words * 4);  // fresh lines each round
  });
  isa::Program prog = kb.build();
  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 1;
  launch.block_dim = 32;
  launch.params = {buf};
  SimResult r = gpu.launch(launch);
  EXPECT_TRUE(r.completed) << r.error;
  return r;
}

TEST(Timing, UncoalescedGlobalAccessesCostMore) {
  // A single warp is latency-bound, so scatter costs ~1.5-2x rather than
  // the bandwidth-bound 32x; require a solid margin without over-fitting.
  const sim::SimResult coalesced = global_stride_kernel(1, 32);
  const sim::SimResult scattered = global_stride_kernel(64, 32);  // 32 transactions each
  EXPECT_GT(scattered.cycles, coalesced.cycles * 5 / 4);
  EXPECT_GT(scattered.stats.get("icnt.request_packets"),
            coalesced.stats.get("icnt.request_packets") * 8);
}

TEST(Timing, MoreWarpsHideMemoryLatency) {
  // Same total work split across 1 vs 8 warps on one SM: the 8-warp
  // version overlaps memory latency and finishes in far fewer cycles.
  auto run = [](u32 block_dim, u32 reps) {
    Gpu gpu(one_sm(), rd::HaccrgConfig{});
    const Addr buf = gpu.allocator().alloc(2 * 1024 * 1024, "buf");
    KernelBuilder kb("warps");
    Reg gid = kb.special(isa::SpecialReg::kGTid);
    Reg base = kb.param(0);
    Reg addr = kb.reg();
    kb.mul(addr, gid, 128u);  // one line per lane
    kb.add(addr, addr, Operand(base));
    Reg v = kb.reg();
    Reg i = kb.reg();
    kb.for_range(i, 0u, reps, 1u, [&] {
      kb.ld_global(v, addr);
      kb.add(addr, addr, 256u * 128u);
      kb.rem(addr, addr, 2u * 1024u * 1024u);
      kb.add(addr, addr, Operand(base));
      kb.rem(addr, addr, 4u * 1024u * 1024u);
    });
    isa::Program prog = kb.build();
    LaunchConfig launch;
    launch.program = &prog;
    launch.grid_dim = 1;
    launch.block_dim = block_dim;
    launch.params = {buf};
    SimResult r = gpu.launch(launch);
    EXPECT_TRUE(r.completed) << r.error;
    return r.cycles;
  };
  const Cycle narrow = run(32, 64);   // 64 rounds, 1 warp
  const Cycle wide = run(256, 8);     // 8 rounds, 8 warps (same lane count)
  EXPECT_LT(wide, narrow);
}

TEST(Timing, SharedDetectionChargesBarrierResets) {
  auto run = [](bool detect) {
    rd::HaccrgConfig det;
    det.enable_shared = detect;
    det.shared_granularity = 4;  // many entries -> visible reset cost
    Gpu gpu(one_sm(), det);
    KernelBuilder kb("barriers");
    Reg tid = kb.special(isa::SpecialReg::kTid);
    Reg saddr = kb.reg();
    kb.mul(saddr, tid, 4u);
    Reg i = kb.reg();
    kb.for_range(i, 0u, 64u, 1u, [&] {
      kb.st_shared(saddr, i);
      kb.barrier();
    });
    isa::Program prog = kb.build();
    LaunchConfig launch;
    launch.program = &prog;
    launch.grid_dim = 1;
    launch.block_dim = 64;
    launch.shared_mem_bytes = 16 * 1024;  // full scratchpad -> 4096 entries
    SimResult r = gpu.launch(launch);
    EXPECT_TRUE(r.completed) << r.error;
    return r;
  };
  const SimResult off = run(false);
  const SimResult on = run(true);
  EXPECT_GT(on.cycles, off.cycles);
  EXPECT_GT(on.stats.get("sm.barrier_reset_cycles"), 0u);
  EXPECT_EQ(off.stats.get("sm.barrier_reset_cycles"), 0u);
}

TEST(Timing, GlobalDetectionGeneratesShadowTraffic) {
  auto run = [](bool detect) {
    rd::HaccrgConfig det;
    det.enable_global = detect;
    Gpu gpu(one_sm(), det);
    const Addr buf = gpu.allocator().alloc(256 * 1024, "buf");
    KernelBuilder kb("stream");
    Reg gid = kb.special(isa::SpecialReg::kGTid);
    Reg base = kb.param(0);
    Reg addr = kb.addr(base, gid, 4);
    Reg v = kb.reg();
    Reg i = kb.reg();
    kb.for_range(i, 0u, 32u, 1u, [&] {
      kb.ld_global(v, addr);
      kb.add(addr, addr, 256u * 4u);
    });
    isa::Program prog = kb.build();
    LaunchConfig launch;
    launch.program = &prog;
    launch.grid_dim = 2;
    launch.block_dim = 128;
    launch.params = {buf};
    SimResult r = gpu.launch(launch);
    EXPECT_TRUE(r.completed) << r.error;
    return r;
  };
  const SimResult off = run(false);
  const SimResult on = run(true);
  EXPECT_EQ(off.stats.get("partition.shadow_packets"), 0u);
  EXPECT_GT(on.stats.get("partition.shadow_packets"), 0u);
  // The shadow traffic rides the same interconnect/partition path as the
  // application's. (Total cycles may move either way by a few percent in
  // a latency-bound kernel — pacing effects — so assert on traffic.)
  EXPECT_GT(on.stats.get("icnt.request_packets"), off.stats.get("icnt.request_packets"));
}

TEST(Timing, WatchdogCatchesRunawayKernels) {
  Gpu gpu(one_sm(), rd::HaccrgConfig{});
  gpu.set_max_cycles(10000);
  const Addr flag = gpu.allocator().alloc(4, "flag");
  gpu.memory().fill(flag, 4, 0);
  KernelBuilder kb("spin_forever");
  Reg pflag = kb.param(0);
  Reg v = kb.reg();
  isa::Pred never = kb.pred();
  kb.do_while([&] { kb.ld_global(v, pflag); },
              [&] {
                kb.setp(never, isa::CmpOp::kEq, v, 0u);
                return never;  // flag is never set: spins forever
              });
  isa::Program prog = kb.build();
  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 1;
  launch.block_dim = 32;
  launch.params = {flag};
  SimResult r = gpu.launch(launch);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("watchdog"), std::string::npos);
}

TEST(Timing, LaunchValidationRejectsBadConfigs) {
  Gpu gpu(one_sm(), rd::HaccrgConfig{});
  KernelBuilder kb("ok");
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = nullptr;
  EXPECT_FALSE(gpu.launch(launch).completed);

  launch.program = &prog;
  launch.block_dim = 0;
  EXPECT_FALSE(gpu.launch(launch).completed);

  launch.block_dim = 4096;  // beyond max threads per SM
  EXPECT_FALSE(gpu.launch(launch).completed);

  launch.block_dim = 32;
  launch.shared_mem_bytes = 1024 * 1024;  // beyond the scratchpad
  EXPECT_FALSE(gpu.launch(launch).completed);

  launch.shared_mem_bytes = 0;
  EXPECT_TRUE(gpu.launch(launch).completed);
}

TEST(Timing, BlocksBeyondCapacityRunInWaves) {
  // 64 blocks on 1 SM with 8 slots: the CTA scheduler must drain them in
  // waves and still complete every block.
  Gpu gpu(one_sm(), rd::HaccrgConfig{});
  const Addr out = gpu.allocator().alloc(64 * 4, "out");
  KernelBuilder kb("waves");
  Reg bid = kb.special(isa::SpecialReg::kCtaId);
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg pout = kb.param(0);
  isa::Pred is0 = kb.pred();
  kb.setp(is0, isa::CmpOp::kEq, tid, 0u);
  kb.if_(is0, [&] {
    Reg dst = kb.addr(pout, bid, 4);
    Reg v = kb.reg();
    kb.add(v, bid, 1000u);
    kb.st_global(dst, v);
  });
  isa::Program prog = kb.build();
  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 64;
  launch.block_dim = 32;
  launch.params = {out};
  SimResult r = gpu.launch(launch);
  ASSERT_TRUE(r.completed) << r.error;
  for (u32 b = 0; b < 64; ++b) EXPECT_EQ(gpu.memory().read_u32(out + b * 4), 1000 + b);
}

}  // namespace
}  // namespace haccrg
