// The static race verifier as a standalone subsystem: loop-nest
// recognition, loop-aware symbolic addresses, the dependence tests
// (iteration disjointness, pure-gtid self pairs, warp-synchronous
// confinement), witness generation + replay validation, the
// AnalyzeOptions/HaccrgConfig compatibility contract, and the
// Valgrind-grade error pipeline (dedup, suppressions, stable JSON).
//
// The two soundness properties at the end are the subsystem's contract:
// no kProvablySafe access ever shows up in a dynamic race set (kernels +
// the 41-case injection suite, three workload seeds), and every
// rdu-visible witness reproduces under synthesized-trace replay.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/dependence.hpp"
#include "analysis/loops.hpp"
#include "analysis/report.hpp"
#include "analysis/static_race.hpp"
#include "isa/builder.hpp"
#include "kernels/injection.hpp"
#include "trace/witness_check.hpp"

namespace haccrg {
namespace {

using analysis::AccessClass;
using analysis::AnalyzeOptions;
using analysis::StaticAccess;
using analysis::StaticRaceReport;
using kernels::BenchOptions;
using kernels::InjectionCase;
using kernels::InjectionKind;
using kernels::PreparedKernel;
using kernels::all_injection_cases;
using kernels::find_benchmark;
using isa::KernelBuilder;
using isa::Program;
using isa::Reg;
using isa::SpecialReg;

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 32 * 1024 * 1024;
  return cfg;
}

std::string scratch_trace(const char* tag) {
  return ::testing::TempDir() + "witness_" + tag + ".trace";
}

// --- Loop-nest recognition ---------------------------------------------------

TEST(LoopNest, ForRangeYieldsGuardedInductionVariable) {
  KernelBuilder kb("iv");
  Reg i = kb.reg();
  kb.for_range(i, 0u, 8u, 2u, [&] {
    Reg t = kb.reg();
    kb.add(t, i, 1u);
  });
  Program prog = kb.build();
  analysis::LoopNest nest(prog);
  ASSERT_EQ(nest.size(), 1u);
  const analysis::Loop& loop = nest.loop(0);
  EXPECT_EQ(loop.parent, -1);
  EXPECT_EQ(loop.depth, 0u);
  const analysis::LoopIv* iv = loop.iv_of(i.idx);
  ASSERT_NE(iv, nullptr);
  EXPECT_EQ(iv->step, 2);
  EXPECT_TRUE(loop.has_guard);
  EXPECT_EQ(loop.guard_iv, i.idx);
  ASSERT_TRUE(loop.guard_bound_is_imm);
  EXPECT_EQ(loop.guard_bound_imm, 8u);
}

TEST(LoopNest, NestedLoopsRecordParentAndDepth) {
  KernelBuilder kb("nest");
  Reg i = kb.reg();
  Reg j = kb.reg();
  kb.for_range(i, 0u, 4u, 1u, [&] {
    kb.for_range(j, 0u, 2u, 1u, [&] {
      Reg t = kb.reg();
      kb.add(t, j, i);
    });
  });
  Program prog = kb.build();
  analysis::LoopNest nest(prog);
  ASSERT_EQ(nest.size(), 2u);
  EXPECT_EQ(nest.loop(0).parent, -1);
  EXPECT_EQ(nest.loop(1).parent, 0);
  EXPECT_EQ(nest.loop(1).depth, 1u);
  EXPECT_TRUE(nest.loop(0).contains(nest.loop(1).begin_pc));
  // The outer loop sees the inner loop's writes (j is written inside).
  EXPECT_TRUE(nest.loop(0).writes(j.idx));
  // innermost_at resolves to the inner loop inside its body.
  EXPECT_EQ(nest.innermost_at(nest.loop(1).begin_pc + 3), 1);
}

// --- Loop-aware symbolic addresses -------------------------------------------

TEST(SymbolicAddresses, StridedLoopStoreCarriesIterTerm) {
  // addr = 32*tid + 4*i, i in [0, 8): per-thread 32-byte stripes.
  KernelBuilder kb("stripes");
  Reg tid = kb.special(SpecialReg::kTid);
  Reg stripe = kb.reg();
  kb.mul(stripe, tid, 32u);
  Reg i = kb.reg();
  kb.for_range(i, 0u, 8u, 1u, [&] {
    Reg off = kb.reg();
    kb.mul(off, i, 4u);
    Reg addr = kb.reg();
    kb.add(addr, stripe, off);
    kb.st_shared(addr, tid);
  });
  Program prog = kb.build();
  u32 store_pc = prog.size();
  for (u32 pc = 0; pc < prog.size(); ++pc) {
    if (prog.at(pc).op == isa::Opcode::kStShared) store_pc = pc;
  }
  ASSERT_LT(store_pc, prog.size());

  analysis::Cfg cfg(prog);
  analysis::LoopNest nest(prog);
  analysis::AffineAnalysis affine(prog, cfg);
  analysis::SymbolicAddresses sym(prog, nest, affine);
  const analysis::SymAddr& s = sym.address_of(store_pc);
  EXPECT_FALSE(s.top);
  EXPECT_EQ(s.c_tid, 32);
  ASSERT_EQ(s.iters.size(), 1u);
  EXPECT_EQ(s.iters[0].coeff, 4);
  EXPECT_EQ(s.iters[0].trip, 8);
  // The plain affine domain widens the loop-varying offset to an
  // unknown uniform term — it cannot express the iteration bound.
  EXPECT_TRUE(affine.address_of(store_pc).uniform_unknown || affine.address_of(store_pc).top);

  // Loop-aware analysis proves the stripes disjoint; the PR-1
  // straight-line test cannot (the address is top for it).
  StaticRaceReport aware = analysis::analyze(prog);
  EXPECT_TRUE(aware.is_safe(store_pc)) << aware.annotate(prog);
  AnalyzeOptions pr1;
  pr1.loop_aware = false;
  StaticRaceReport straight = analysis::analyze(prog, pr1);
  EXPECT_FALSE(straight.is_safe(store_pc));
}

TEST(StaticRace, LoopCarriedUniformStoreIsNotSafe) {
  // Every thread stores a[4*i] for i in [0, 4): same granule from all
  // threads at every iteration — a loop-carried definite conflict.
  KernelBuilder kb("carried");
  Reg i = kb.reg();
  kb.for_range(i, 0u, 4u, 1u, [&] {
    Reg addr = kb.reg();
    kb.mul(addr, i, 4u);
    kb.st_shared(addr, i);
  });
  Program prog = kb.build();
  StaticRaceReport rep = analysis::analyze(prog);
  EXPECT_EQ(rep.count(AccessClass::kProvablySafe), 0u) << rep.annotate(prog);
}

TEST(StaticRace, PureGtidGlobalStoreSelfPairIsSafe) {
  // out[gtid]: folding gtid into (tid, cta) defeats the independent
  // interval/GCD tests; the single-variable gtid system proves it.
  KernelBuilder kb("gtid");
  Reg gtid = kb.special(SpecialReg::kGTid);
  Reg base = kb.param(0);
  Reg off = kb.reg();
  kb.mul(off, gtid, 4u);
  Reg addr = kb.reg();
  kb.add(addr, base, off);
  kb.st_global(addr, gtid);
  Program prog = kb.build();
  AnalyzeOptions opts;
  opts.block_dim = 256;
  opts.grid_dim = 4;
  StaticRaceReport rep = analysis::analyze(prog, opts);
  EXPECT_EQ(rep.count(AccessClass::kProvablySafe), 1u) << rep.annotate(prog);
}

TEST(StaticRace, WarpSynchronousConfinesIntraWarpSharedPair) {
  // word[tid] store + load at the 16-byte RDU granularity: threads
  // 4t..4t+3 share a granule, so collisions stay inside one aligned
  // group of four lanes — SIMD-ordered, invisible to the shared RDU.
  KernelBuilder kb("warp");
  Reg tid = kb.special(SpecialReg::kTid);
  Reg slot = kb.reg();
  kb.mul(slot, tid, 4u);
  kb.st_shared(slot, tid);
  Reg v = kb.reg();
  kb.ld_shared(v, slot);
  Program prog = kb.build();

  AnalyzeOptions sw;
  sw.block_dim = 64;
  sw.shared_granularity = 16;
  StaticRaceReport sw_rep = analysis::analyze(prog, sw);
  EXPECT_EQ(sw_rep.count(AccessClass::kMayRace), 2u) << sw_rep.annotate(prog);

  AnalyzeOptions hw = sw;
  hw.warp_synchronous = true;
  StaticRaceReport hw_rep = analysis::analyze(prog, hw);
  EXPECT_EQ(hw_rep.count(AccessClass::kProvablySafe), 2u) << hw_rep.annotate(prog);

  // Shift the load one granule row up: collisions now cross group
  // boundaries, so warp-synchronous mode must NOT filter them.
  KernelBuilder kb2("warp2");
  Reg tid2 = kb2.special(SpecialReg::kTid);
  Reg slot2 = kb2.reg();
  kb2.mul(slot2, tid2, 4u);
  kb2.st_shared(slot2, tid2);
  Reg v2 = kb2.reg();
  kb2.ld_shared(v2, slot2, 16);
  Program prog2 = kb2.build();
  StaticRaceReport cross_rep = analysis::analyze(prog2, hw);
  EXPECT_EQ(cross_rep.count(AccessClass::kMayRace), 2u) << cross_rep.annotate(prog2);
}

// --- Witness generation + replay validation ----------------------------------

Program neighbor_read_kernel() {
  KernelBuilder kb("neighbor");
  Reg tid = kb.special(SpecialReg::kTid);
  Reg slot = kb.reg();
  kb.mul(slot, tid, 4u);
  kb.st_shared(slot, tid);
  Reg v = kb.reg();
  kb.ld_shared(v, slot, 4);
  return kb.build();
}

TEST(Witness, MayRacePairCarriesConcreteWitness) {
  Program prog = neighbor_read_kernel();
  AnalyzeOptions opts;
  opts.block_dim = 64;
  StaticRaceReport rep = analysis::analyze(prog, opts);
  u32 with_witness = 0;
  for (const StaticAccess& a : rep.accesses) {
    if (a.cls == AccessClass::kProvablySafe) continue;
    ASSERT_TRUE(a.witness.found) << "pc " << a.pc << ": " << a.reason;
    const analysis::RaceWitness& w = a.witness;
    // Distinct threads colliding on one granule of the shared window.
    EXPECT_TRUE(w.tid1 != w.tid2 || w.cta1 != w.cta2) << w.describe();
    EXPECT_EQ(w.addr1 / opts.shared_granularity, w.addr2 / opts.shared_granularity)
        << w.describe();
    EXPECT_EQ(w.granule, w.addr1 - w.addr1 % opts.shared_granularity) << w.describe();
    EXPECT_LT(w.tid1, opts.block_dim);
    EXPECT_LT(w.tid2, opts.block_dim);
    ++with_witness;
  }
  EXPECT_EQ(with_witness, 2u);
}

TEST(Witness, RduVisibleWitnessesReproduceUnderReplay) {
  Program prog = neighbor_read_kernel();
  AnalyzeOptions opts;
  opts.block_dim = 64;
  StaticRaceReport rep = analysis::analyze(prog, opts);
  u32 checked = 0;
  for (const StaticAccess& a : rep.accesses) {
    if (a.cls == AccessClass::kProvablySafe || !a.witness.found) continue;
    if (!a.witness.rdu_visible || a.is_atomic) continue;
    const StaticAccess* other = rep.access_at(a.witness.other_pc);
    ASSERT_NE(other, nullptr);
    if (other->is_atomic) continue;
    trace::WitnessSpec spec;
    spec.shared_space = a.shared_space;
    spec.pc1 = a.witness.pc;
    spec.pc2 = a.witness.other_pc;
    spec.store1 = a.is_store;
    spec.store2 = other->is_store;
    spec.width1 = a.width;
    spec.width2 = other->width;
    spec.tid1 = a.witness.tid1;
    spec.cta1 = a.witness.cta1;
    spec.tid2 = a.witness.tid2;
    spec.cta2 = a.witness.cta2;
    spec.addr1 = a.witness.addr1;
    spec.addr2 = a.witness.addr2;
    spec.block_dim = opts.block_dim;
    spec.granularity = opts.shared_granularity;
    trace::WitnessCheckResult result;
    Status st = trace::check_witness(spec, scratch_trace("mayrace"), result);
    ASSERT_TRUE(st.ok()) << st.to_string();
    EXPECT_TRUE(result.reproduced) << a.witness.describe() << " — " << result.detail;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(Witness, DefiniteRaceWitnessReproducesUnderReplay) {
  // Every thread of the block stores granule 0: a definite race whose
  // trivial witness (lockstep same-pc WAW) the intra-warp check catches.
  KernelBuilder kb("uniform");
  Reg tid = kb.special(SpecialReg::kTid);
  Reg addr = kb.imm(0);
  kb.st_shared(addr, tid);
  Program prog = kb.build();
  AnalyzeOptions opts;
  opts.block_dim = 64;
  StaticRaceReport rep = analysis::analyze(prog, opts);
  ASSERT_EQ(rep.count(AccessClass::kDefiniteRace), 1u) << rep.annotate(prog);
  const StaticAccess& a = rep.accesses[0];
  ASSERT_TRUE(a.witness.found);
  ASSERT_TRUE(a.witness.rdu_visible);
  trace::WitnessSpec spec;
  spec.shared_space = true;
  spec.pc1 = a.witness.pc;
  spec.pc2 = a.witness.other_pc;
  spec.tid1 = a.witness.tid1;
  spec.tid2 = a.witness.tid2;
  spec.addr1 = a.witness.addr1;
  spec.addr2 = a.witness.addr2;
  spec.block_dim = opts.block_dim;
  trace::WitnessCheckResult result;
  Status st = trace::check_witness(spec, scratch_trace("definite"), result);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_TRUE(result.reproduced) << a.witness.describe() << " — " << result.detail;
}

TEST(Witness, CheckRejectsUnhostableSpecs) {
  trace::WitnessSpec spec;
  spec.tid1 = 40;  // >= block_dim
  spec.tid2 = 1;
  spec.block_dim = 32;
  trace::WitnessCheckResult result;
  EXPECT_FALSE(trace::check_witness(spec, scratch_trace("bad"), result).ok());

  trace::WitnessSpec same;
  same.tid1 = same.tid2 = 3;  // one thread cannot race with itself
  EXPECT_FALSE(trace::check_witness(same, scratch_trace("bad"), result).ok());
}

// --- AnalyzeOptions / HaccrgConfig compatibility -----------------------------

TEST(FilterCompat, OptionsForCopiesDetectorGranularities) {
  rd::HaccrgConfig cfg;
  cfg.shared_granularity = 16;
  cfg.global_granularity = 64;
  AnalyzeOptions opts = analysis::options_for(cfg, 128, 4);
  EXPECT_EQ(opts.shared_granularity, 16u);
  EXPECT_EQ(opts.global_granularity, 64u);
  EXPECT_EQ(opts.block_dim, 128u);
  EXPECT_EQ(opts.grid_dim, 4u);
  EXPECT_TRUE(analysis::filter_compatible(opts, cfg, 128, 4).ok());
}

TEST(FilterCompat, RejectsGranularityMismatchPerEnabledSpace) {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  cfg.shared_granularity = 16;
  cfg.global_granularity = 4;
  AnalyzeOptions opts = analysis::options_for(cfg);
  opts.shared_granularity = 4;
  Status st = analysis::filter_compatible(opts, cfg);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("granularity"), std::string::npos) << st.message();

  // A mismatch in a disabled space is fine: the detector never checks it.
  cfg.enable_shared = false;
  EXPECT_TRUE(analysis::filter_compatible(opts, cfg).ok());
}

TEST(FilterCompat, RejectsWarpSynchronousUnderWarpRegrouping) {
  rd::HaccrgConfig cfg;
  cfg.warp_regrouping = true;
  AnalyzeOptions opts = analysis::options_for(cfg);
  opts.warp_synchronous = true;
  EXPECT_FALSE(analysis::filter_compatible(opts, cfg).ok());
  cfg.warp_regrouping = false;
  EXPECT_TRUE(analysis::filter_compatible(opts, cfg).ok());
}

TEST(FilterCompat, RejectsGeometryContradictingTheLaunch) {
  rd::HaccrgConfig cfg;
  AnalyzeOptions opts = analysis::options_for(cfg, 128, 8);
  EXPECT_TRUE(analysis::filter_compatible(opts, cfg, 128, 8).ok());
  EXPECT_FALSE(analysis::filter_compatible(opts, cfg, 256, 8).ok());
  EXPECT_FALSE(analysis::filter_compatible(opts, cfg, 128, 16).ok());
  // Geometry-free reports and geometry-free checks always pass.
  EXPECT_TRUE(analysis::filter_compatible(opts, cfg, 0, 0).ok());
  EXPECT_TRUE(analysis::filter_compatible(analysis::options_for(cfg), cfg, 256, 16).ok());
}

TEST(FilterCompat, LaunchRejectsIncompatibleStaticReport) {
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.shared_granularity = 16;
  det.static_filter = true;
  sim::Gpu gpu(test_gpu(), det);
  PreparedKernel prep = find_benchmark("REDUCE")->prepare(gpu, BenchOptions{});
  AnalyzeOptions wrong;
  wrong.shared_granularity = 4;  // finer than the detector — unsound to prune with
  prep.static_report =
      std::make_shared<const StaticRaceReport>(analysis::analyze(prep.program, wrong));
  sim::SimResult r = gpu.launch(prep.launch());
  ASSERT_FALSE(r.completed);
  EXPECT_NE(r.error.find("incompatible static report"), std::string::npos) << r.error;
}

// --- Error pipeline: dedup, suppressions, JSON -------------------------------

TEST(ErrorReport, DedupsPairsByPcPairSpaceAndClass) {
  Program prog = neighbor_read_kernel();
  StaticRaceReport rep = analysis::analyze(prog);
  analysis::ErrorReport errors = analysis::build_error_report(rep);
  // The store/load pair appears once, not once per side.
  u32 may_race = 0;
  for (const analysis::Issue& i : errors.issues)
    if (i.kind == "may-race") ++may_race;
  EXPECT_EQ(may_race, 1u);
  EXPECT_EQ(errors.active(), static_cast<u32>(errors.issues.size()));
}

TEST(ErrorReport, GlobMatch) {
  EXPECT_TRUE(analysis::glob_match("*", "anything"));
  EXPECT_TRUE(analysis::glob_match("hist*", "histogram"));
  EXPECT_FALSE(analysis::glob_match("hist*", "whist"));
  EXPECT_TRUE(analysis::glob_match("may-race", "may-race"));
  EXPECT_TRUE(analysis::glob_match("lint:?ivergent-barrier", "lint:divergent-barrier"));
  EXPECT_FALSE(analysis::glob_match("", "x"));
  EXPECT_TRUE(analysis::glob_match("", ""));
}

TEST(ErrorReport, ParseAndApplySuppressions) {
  const std::string text =
      "# comment\n"
      "{\n"
      "  neighbor-benign\n"
      "  kernel:neigh*\n"
      "  kind:may-race\n"
      "}\n"
      "{\n"
      "  elsewhere\n"
      "  kernel:other\n"
      "}\n";
  std::vector<analysis::Suppression> sups;
  ASSERT_TRUE(analysis::parse_suppressions(text, sups).ok());
  ASSERT_EQ(sups.size(), 2u);
  EXPECT_EQ(sups[0].name, "neighbor-benign");
  EXPECT_EQ(sups[0].kernel_glob, "neigh*");
  EXPECT_EQ(sups[0].kind_glob, "may-race");
  EXPECT_EQ(sups[0].pc, "*");

  Program prog = neighbor_read_kernel();
  StaticRaceReport rep = analysis::analyze(prog);
  analysis::ErrorReport errors = analysis::build_error_report(rep);
  const u32 before = errors.active();
  ASSERT_GT(before, 0u);
  const u32 muted = analysis::apply_suppressions(errors, sups, "neighbor");
  EXPECT_GT(muted, 0u);
  EXPECT_EQ(errors.active(), before - muted);
  for (const analysis::Issue& i : errors.issues) {
    if (i.suppressed) {
      EXPECT_EQ(i.suppressed_by, "neighbor-benign");
    }
  }
  // Wrong kernel name: nothing matches.
  analysis::ErrorReport fresh = analysis::build_error_report(rep);
  EXPECT_EQ(analysis::apply_suppressions(fresh, sups, "unrelated"), 0u);
}

TEST(ErrorReport, ParseRejectsMalformedSuppressionText) {
  std::vector<analysis::Suppression> out;
  EXPECT_FALSE(analysis::parse_suppressions("{\n  unclosed\n", out).ok());
  EXPECT_FALSE(analysis::parse_suppressions("{\n}\n", out).ok());  // nameless block
  EXPECT_FALSE(analysis::parse_suppressions("stray line\n", out).ok());
  EXPECT_TRUE(out.empty());  // failed parses never half-fill the output
}

TEST(ErrorReport, JsonIsStableAndStructured) {
  Program prog = neighbor_read_kernel();
  StaticRaceReport rep = analysis::analyze(prog);
  analysis::ErrorReport errors = analysis::build_error_report(rep);
  const std::string a = analysis::to_json(rep, errors);
  const std::string b = analysis::to_json(rep, errors);
  EXPECT_EQ(a, b);
  for (const char* key : {"\"kernel\"", "\"options\"", "\"accesses\"", "\"issues\"",
                          "\"witness\"", "\"kind\":\"may-race\""}) {
    EXPECT_NE(a.find(key), std::string::npos) << "missing " << key;
  }
}

// --- The soundness gate: static claims vs dynamic race sets ------------------

/// Dynamic race pcs of one run under the word-granularity detectors.
std::set<u32> dynamic_race_pcs(const sim::SimResult& r) {
  std::set<u32> pcs;
  for (const rd::RaceRecord& rec : r.races.races()) pcs.insert(rec.pc);
  return pcs;
}

rd::HaccrgConfig word_detector() {
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.enable_global = true;
  det.shared_granularity = 4;
  det.global_granularity = 4;
  return det;
}

/// One gate run: analyze `prep`'s program with geometry, run it live, and
/// assert no dynamically racing pc was classified kProvablySafe.
void expect_no_safe_pc_races(const kernels::BenchmarkInfo* info, const BenchOptions& opts,
                             const std::string& label) {
  sim::Gpu gpu(test_gpu(), word_detector());
  PreparedKernel prep = info->prepare(gpu, opts);
  AnalyzeOptions aopts = analysis::options_for(word_detector(), prep.block_dim, prep.grid_dim);
  StaticRaceReport rep = analysis::analyze(prep.program, aopts);
  sim::SimResult r = gpu.launch(prep.launch());
  ASSERT_TRUE(r.completed) << label << ": " << r.error;
  for (u32 pc : dynamic_race_pcs(r)) {
    EXPECT_FALSE(rep.is_safe(pc))
        << label << ": pc " << pc << " raced dynamically but was classified provably safe";
  }
}

TEST(StaticSoundness, SafePcsNeverRaceOnRegistryKernels) {
  for (const auto& info : kernels::all_benchmarks()) {
    for (u32 seed : {0u, 1u, 2u}) {
      BenchOptions opts;
      opts.seed = seed;
      expect_no_safe_pc_races(&info, opts, std::string(info.name) + "/seed" + std::to_string(seed));
    }
  }
}

class StaticSoundnessInjection : public ::testing::TestWithParam<size_t> {};

TEST_P(StaticSoundnessInjection, SafePcsNeverRaceUnderInjection) {
  const auto cases = all_injection_cases();
  ASSERT_LT(GetParam(), cases.size());
  const InjectionCase& test = cases[GetParam()];
  const kernels::BenchmarkInfo* info = find_benchmark(test.benchmark);
  ASSERT_NE(info, nullptr);
  for (u32 seed : {0u, 1u, 2u}) {
    BenchOptions opts;
    opts.seed = seed;
    opts.injection = test.injection;
    if (info->real_race_multiblock && test.injection.kind == InjectionKind::kRemoveBarrier) {
      opts.single_block = true;
    }
    expect_no_safe_pc_races(info, opts, test.label() + "/seed" + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(AllFortyOne, StaticSoundnessInjection, ::testing::Range<size_t>(0, 41),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           auto cases = all_injection_cases();
                           std::string label = cases[info.param].label();
                           for (char& c : label) {
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return label;
                         });

}  // namespace
}  // namespace haccrg
