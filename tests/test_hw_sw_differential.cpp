// Differential checks between the two HAccRG implementations and their
// static-filter variants:
//
//  1. Hardware HAccRG with the static RDU filter on vs off must report
//     the identical racy (space, granule) location set — the filter only
//     removes checks the analysis proved cannot race.
//  2. The software HAccRG (instrumented kernel) with static pruning on
//     vs off must agree on its race counter.
//  3. Hardware vs software verdicts agree on the kernels whose sharing
//     the software scheme models faithfully, and the divergence on the
//     rest is pinned: the sw scheme tags shadow words per *thread*, so
//     warp-synchronized sharing (HIST/REDUCE/PSUM/HASH) is flagged as
//     racy even though the hardware RDUs correctly dismiss it. That
//     over-reporting is exactly the motivation the paper gives for
//     hardware support, so we assert it rather than hide it.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>

#include "analysis/static_race.hpp"
#include "kernels/common.hpp"
#include "swrace/sw_haccrg.hpp"

namespace haccrg {
namespace {

using kernels::BenchOptions;
using kernels::PreparedKernel;
using kernels::find_benchmark;

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 32 * 1024 * 1024;
  return cfg;
}

rd::HaccrgConfig detection_word(bool static_filter) {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  cfg.shared_granularity = 4;
  cfg.global_granularity = 4;
  cfg.static_filter = static_filter;
  return cfg;
}

/// (space, sm, granule) triples of every unique recorded race. Shared
/// granules are SM-local addresses, so the SM id disambiguates them.
using LocationSet = std::set<std::tuple<int, u32, Addr>>;

struct HwRun {
  bool completed = false;
  LocationSet locations;
  std::set<u32> race_pcs;
  u64 unique_races = 0;
  u64 filtered_checks = 0;
};

HwRun run_hw(const std::string& name, bool static_filter) {
  sim::Gpu gpu(test_gpu(), detection_word(static_filter));
  PreparedKernel prep = find_benchmark(name)->prepare(gpu, BenchOptions{});
  if (static_filter) {
    // options_for + launch geometry: the filtered leg runs the full
    // loop-aware analysis and passes the launch-time compatibility check.
    const analysis::AnalyzeOptions aopts =
        analysis::options_for(detection_word(true), prep.block_dim, prep.grid_dim);
    prep.static_report =
        std::make_shared<analysis::StaticRaceReport>(analysis::analyze(prep.program, aopts));
  }
  sim::SimResult r = gpu.launch(prep.launch());

  HwRun run;
  run.completed = r.completed;
  run.unique_races = r.races.unique();
  run.filtered_checks = r.stats.get("rd.static_filtered");
  for (const rd::RaceRecord& race : r.races.races()) {
    const u32 sm = race.space == rd::MemSpace::kShared ? race.sm_id : 0;
    run.locations.insert({static_cast<int>(race.space), sm, race.granule_addr});
    run.race_pcs.insert(race.pc);
  }
  return run;
}

u64 run_sw(const std::string& name, bool static_prune) {
  sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
  PreparedKernel prep = find_benchmark(name)->prepare(gpu, BenchOptions{});
  swrace::InstrumentOptions opts;
  opts.static_prune = static_prune;
  swrace::attach_sw_haccrg(gpu, prep, opts);
  sim::SimResult r = gpu.launch(prep.launch());
  EXPECT_TRUE(r.completed) << name << ": " << r.error;
  return swrace::sw_haccrg_race_count(gpu, prep);
}

class HwSwDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(HwSwDifferential, StaticFilterPreservesHwLocations) {
  const std::string name = GetParam();
  const HwRun unfiltered = run_hw(name, false);
  const HwRun filtered = run_hw(name, true);
  ASSERT_TRUE(unfiltered.completed);
  ASSERT_TRUE(filtered.completed);
  EXPECT_EQ(unfiltered.locations, filtered.locations)
      << name << ": the static filter changed which locations are reported racy";
  EXPECT_EQ(unfiltered.unique_races, filtered.unique_races) << name;
  EXPECT_EQ(unfiltered.filtered_checks, 0u) << name << ": filter fired while disabled";
}

TEST_P(HwSwDifferential, StaticSafePcsNeverInHwRaceSet) {
  // The static verifier's core claim, checked against the hardware
  // implementation directly: a kProvablySafe pc never triggers a race.
  const std::string name = GetParam();
  sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
  PreparedKernel prep = find_benchmark(name)->prepare(gpu, BenchOptions{});
  const analysis::AnalyzeOptions aopts =
      analysis::options_for(detection_word(false), prep.block_dim, prep.grid_dim);
  const analysis::StaticRaceReport report = analysis::analyze(prep.program, aopts);
  const HwRun hw = run_hw(name, false);
  ASSERT_TRUE(hw.completed);
  for (u32 pc : hw.race_pcs) {
    EXPECT_FALSE(report.is_safe(pc))
        << name << ": pc " << pc << " raced in hardware but was classified provably safe";
  }
}

TEST_P(HwSwDifferential, StaticPrunePreservesSwVerdict) {
  const std::string name = GetParam();
  const u64 unpruned = run_sw(name, false);
  const u64 pruned = run_sw(name, true);
  EXPECT_EQ(unpruned > 0, pruned > 0)
      << name << ": static pruning flipped the software race verdict ("
      << unpruned << " vs " << pruned << ")";
}

INSTANTIATE_TEST_SUITE_P(AllKernels, HwSwDifferential,
                         ::testing::Values("MCARLO", "SCAN", "FWALSH", "HIST", "SORTNW", "REDUCE",
                                           "PSUM", "OFFT", "KMEANS", "HASH"));

// Kernels whose sharing patterns the per-thread software tags model
// faithfully: the boolean race verdict must match the hardware's.
class HwSwVerdictAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(HwSwVerdictAgreement, SameVerdict) {
  const std::string name = GetParam();
  const HwRun hw = run_hw(name, false);
  ASSERT_TRUE(hw.completed);
  const u64 sw = run_sw(name, true);
  EXPECT_EQ(hw.unique_races > 0, sw > 0)
      << name << ": hw found " << hw.unique_races << " unique races, sw found " << sw;
}

INSTANTIATE_TEST_SUITE_P(FaithfulKernels, HwSwVerdictAgreement,
                         ::testing::Values("MCARLO", "SCAN", "FWALSH", "SORTNW", "OFFT", "KMEANS"));

// Kernels built around warp-synchronized sharing: the software scheme's
// per-thread word tags flag sibling lanes of the same warp, which the
// hardware RDUs (correctly) never report. Pinning the divergence keeps
// it a documented property instead of a silent surprise.
class KnownSwOverReporting : public ::testing::TestWithParam<const char*> {};

TEST_P(KnownSwOverReporting, SwFlagsWhatHwDismisses) {
  const std::string name = GetParam();
  const HwRun hw = run_hw(name, false);
  ASSERT_TRUE(hw.completed);
  EXPECT_EQ(hw.unique_races, 0u) << name << ": hardware now reports races here — if that is an "
                                 << "intentional detection change, move this kernel to the "
                                 << "agreement suite";
  EXPECT_GT(run_sw(name, true), 0u)
      << name << ": sw scheme no longer over-reports — move this kernel to the agreement suite";
}

INSTANTIATE_TEST_SUITE_P(WarpSynchronizedKernels, KnownSwOverReporting,
                         ::testing::Values("HIST", "REDUCE", "PSUM", "HASH"));

// The three benchmarks with documented real multi-block races must be
// flagged by BOTH implementations — agreement on the positive side.
class RealRaceAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(RealRaceAgreement, BothDetect) {
  const std::string name = GetParam();
  const HwRun hw = run_hw(name, false);
  ASSERT_TRUE(hw.completed);
  EXPECT_GT(hw.unique_races, 0u) << name;
  EXPECT_GT(run_sw(name, true), 0u) << name;
}

INSTANTIATE_TEST_SUITE_P(DocumentedRaces, RealRaceAgreement,
                         ::testing::Values("SCAN", "KMEANS", "OFFT"));

}  // namespace
}  // namespace haccrg
