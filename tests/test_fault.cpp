// Fault-injection framework and graceful-degradation tests: FaultPlan
// parsing, per-site RNG stream independence, strict config validation
// (HaccrgConfig::validate / SimConfig::parse_env), the finite shadow
// table's eviction accounting, RaceLog saturation, and the end-to-end
// coverage-accounting invariant — every lost detection opportunity shows
// up in rd.coverage_lost, never silently.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "fault/fault.hpp"
#include "haccrg/options.hpp"
#include "haccrg/race.hpp"
#include "kernels/common.hpp"
#include "sim/gpu.hpp"
#include "sim/sim_config.hpp"

namespace haccrg {
namespace {

using fault::FaultPlan;
using fault::FaultSite;
using fault::FaultStream;

// --- FaultPlan parsing -------------------------------------------------------

TEST(FaultPlanParse, EmptyStringIsNoFaultPlan) {
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::parse("", plan).ok());
  EXPECT_FALSE(plan.any());
  EXPECT_EQ(plan.seed, 0u);
}

TEST(FaultPlanParse, FullPlanRoundTrips) {
  FaultPlan plan;
  const std::string text =
      "seed=7,shared_flip=100,global_flip=200,bloom_flip=300,racereg_drop=400,"
      "icnt_drop=500,icnt_dup=600,icnt_delay=700,dram_flip=800,trace_corrupt=900,"
      "retry_timeout=32,max_retries=8";
  ASSERT_TRUE(FaultPlan::parse(text, plan).ok());
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_EQ(plan.rate(FaultSite::kSharedShadowFlip), 100u);
  EXPECT_EQ(plan.rate(FaultSite::kGlobalShadowFlip), 200u);
  EXPECT_EQ(plan.rate(FaultSite::kBloomFlip), 300u);
  EXPECT_EQ(plan.rate(FaultSite::kRaceRegDrop), 400u);
  EXPECT_EQ(plan.rate(FaultSite::kIcntDrop), 500u);
  EXPECT_EQ(plan.rate(FaultSite::kIcntDup), 600u);
  EXPECT_EQ(plan.rate(FaultSite::kIcntDelay), 700u);
  EXPECT_EQ(plan.rate(FaultSite::kDramShadowFlip), 800u);
  EXPECT_EQ(plan.rate(FaultSite::kTraceCorrupt), 900u);
  EXPECT_EQ(plan.retry_timeout, 32u);
  EXPECT_EQ(plan.max_retries, 8u);
  EXPECT_TRUE(plan.any());

  // describe() re-parses to the same plan (the campaign-log contract).
  FaultPlan back;
  ASSERT_TRUE(FaultPlan::parse(plan.describe(), back).ok());
  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_EQ(back.rate_ppm, plan.rate_ppm);
  EXPECT_EQ(back.retry_timeout, plan.retry_timeout);
  EXPECT_EQ(back.max_retries, plan.max_retries);
}

TEST(FaultPlanParse, TrailingAndDoubledCommasTolerated) {
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::parse("seed=3,,icnt_drop=10,", plan).ok());
  EXPECT_EQ(plan.seed, 3u);
  EXPECT_EQ(plan.rate(FaultSite::kIcntDrop), 10u);
}

TEST(FaultPlanParse, RejectionsLeavePlanUntouched) {
  const char* bad[] = {
      "bogus_key=1",          // unknown key
      "seed",                 // no '='
      "seed=abc",             // non-numeric
      "seed=",                // empty value
      "shared_flip=1000001",  // over 100% in ppm
      "retry_timeout=0",      // zero timeout would spin
      "retry_timeout=1000001",
      "max_retries=1025",
      "seed=99999999999999999999999",  // u64 overflow
  };
  for (const char* text : bad) {
    FaultPlan plan;
    plan.seed = 123;  // sentinel: must survive a failed parse
    const Status status = FaultPlan::parse(text, plan);
    EXPECT_FALSE(status.ok()) << text;
    EXPECT_FALSE(status.message().empty()) << text;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << text;
    EXPECT_EQ(plan.seed, 123u) << text << ": rejected parse clobbered the plan";
  }
}

// --- FaultStream discipline --------------------------------------------------

TEST(FaultStream, ZeroRateNeverAdvances) {
  // A disarmed site must not consume randomness: its stream position —
  // and thus every other draw made from an identically keyed stream —
  // is unchanged by any number of zero-rate rolls.
  FaultStream a(99, FaultSite::kIcntDrop, 0);
  FaultStream b(99, FaultSite::kIcntDrop, 0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(a.roll(0));
  EXPECT_EQ(a.injected(), 0u);
  EXPECT_EQ(a.draw(), b.draw());
}

TEST(FaultStream, FullRateAlwaysHits) {
  FaultStream s(1, FaultSite::kSharedShadowFlip, 0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(s.roll(1'000'000));
  EXPECT_EQ(s.injected(), 100u);
}

TEST(FaultStream, DistinctSitesAndUnitsAreIndependent) {
  FaultStream site_a(5, FaultSite::kIcntDrop, 0);
  FaultStream site_b(5, FaultSite::kIcntDup, 0);
  FaultStream unit_b(5, FaultSite::kIcntDrop, 1);
  EXPECT_NE(site_a.draw(), site_b.draw());
  FaultStream site_a2(5, FaultSite::kIcntDrop, 0);
  EXPECT_NE(site_a2.draw(), unit_b.draw());
}

// --- HaccrgConfig::validate --------------------------------------------------

TEST(HaccrgConfigValidate, DefaultAndTypicalConfigsPass) {
  EXPECT_TRUE(rd::HaccrgConfig{}.validate().ok());
  rd::HaccrgConfig combined;
  combined.enable_shared = true;
  combined.enable_global = true;
  combined.shared_granularity = 16;
  combined.global_granularity = 4;
  EXPECT_TRUE(combined.validate().ok());
}

TEST(HaccrgConfigValidate, RejectsBadGranularity) {
  for (u32 bad : {0u, 3u, 5000u}) {
    rd::HaccrgConfig cfg;
    cfg.shared_granularity = bad;
    EXPECT_FALSE(cfg.validate().ok()) << "shared_granularity=" << bad;
    rd::HaccrgConfig cfg2;
    cfg2.global_granularity = bad;
    EXPECT_FALSE(cfg2.validate().ok()) << "global_granularity=" << bad;
  }
}

TEST(HaccrgConfigValidate, RejectsBadBloomGeometry) {
  rd::HaccrgConfig cfg;
  cfg.bloom_bits = 0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = rd::HaccrgConfig{};
  cfg.bloom_bits = 64;  // wider than a signature word
  EXPECT_FALSE(cfg.validate().ok());
  cfg = rd::HaccrgConfig{};
  cfg.bloom_bins = 3;  // 16 bits / 3 bins is not a power-of-two bin
  EXPECT_FALSE(cfg.validate().ok());
}

TEST(HaccrgConfigValidate, RejectsBadRaceLogLimits) {
  rd::HaccrgConfig cfg;
  cfg.max_recorded_races = 0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = rd::HaccrgConfig{};
  cfg.max_unique_races = cfg.max_recorded_races - 1;  // cap below the log size
  EXPECT_FALSE(cfg.validate().ok());
  cfg = rd::HaccrgConfig{};
  cfg.max_unique_races = 0;  // 0 = unbounded is allowed
  EXPECT_TRUE(cfg.validate().ok());
}

TEST(HaccrgConfigValidate, RejectsStaticFilterWithRegrouping) {
  rd::HaccrgConfig cfg;
  cfg.static_filter = true;
  cfg.warp_regrouping = true;
  const Status status = cfg.validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.to_string().find("static"), std::string::npos);
}

// --- SimConfig::parse_env ----------------------------------------------------

struct EnvGuard {
  // Restores both variables at scope exit so tests cannot leak state.
  ~EnvGuard() {
    unsetenv("HACCRG_THREADS");
    unsetenv("HACCRG_FAULTS");
  }
};

TEST(SimConfigParseEnv, AcceptsCleanEnvironment) {
  EnvGuard guard;
  unsetenv("HACCRG_THREADS");
  unsetenv("HACCRG_FAULTS");
  sim::SimConfig cfg;
  EXPECT_TRUE(sim::SimConfig::parse_env(cfg).ok());
  EXPECT_FALSE(cfg.faults.any());
}

TEST(SimConfigParseEnv, ParsesValidValues) {
  EnvGuard guard;
  setenv("HACCRG_THREADS", "4", 1);
  setenv("HACCRG_FAULTS", "seed=11,icnt_drop=250", 1);
  sim::SimConfig cfg;
  ASSERT_TRUE(sim::SimConfig::parse_env(cfg).ok());
  EXPECT_EQ(cfg.num_threads, 4u);
  EXPECT_EQ(cfg.faults.seed, 11u);
  EXPECT_EQ(cfg.faults.rate(FaultSite::kIcntDrop), 250u);
}

TEST(SimConfigParseEnv, RejectsBadThreads) {
  EnvGuard guard;
  for (const char* bad : {"", "zero", "-1", "0", "65", "4x"}) {
    setenv("HACCRG_THREADS", bad, 1);
    sim::SimConfig cfg;
    cfg.num_threads = 7;  // sentinel
    const Status status = sim::SimConfig::parse_env(cfg);
    EXPECT_FALSE(status.ok()) << "'" << bad << "'";
    EXPECT_NE(status.to_string().find("HACCRG_THREADS"), std::string::npos) << bad;
    EXPECT_EQ(cfg.num_threads, 7u) << bad << ": rejected parse clobbered the config";
  }
}

TEST(SimConfigParseEnv, RejectsBadFaults) {
  EnvGuard guard;
  setenv("HACCRG_FAULTS", "shared_flip=oops", 1);
  sim::SimConfig cfg;
  const Status status = sim::SimConfig::parse_env(cfg);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.to_string().find("HACCRG_FAULTS"), std::string::npos);
}

// --- RaceLog saturation ------------------------------------------------------

rd::RaceRecord sample_race(Addr granule) {
  rd::RaceRecord r;
  r.type = rd::RaceType::kWaw;
  r.mechanism = rd::RaceMechanism::kIntraWarpWaw;
  r.space = rd::MemSpace::kShared;
  r.granule_addr = granule;
  return r;
}

TEST(RaceLogSaturation, CapsUniqueRacesAndCounts) {
  rd::RaceLog log(64);
  log.set_max_unique(2);
  EXPECT_TRUE(log.record(sample_race(0x10)));
  EXPECT_TRUE(log.record(sample_race(0x20)));
  EXPECT_EQ(log.saturated(), 0u);
  // A third *distinct* race saturates; a repeat of a known race does not.
  EXPECT_FALSE(log.record(sample_race(0x30)));
  EXPECT_EQ(log.saturated(), 1u);
  log.record(sample_race(0x10));
  EXPECT_EQ(log.saturated(), 1u);
  EXPECT_EQ(log.unique(), 2u);
  log.clear();
  EXPECT_EQ(log.saturated(), 0u);
  EXPECT_TRUE(log.record(sample_race(0x30)));
}

// --- End-to-end degradation accounting ---------------------------------------

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 32 * 1024 * 1024;
  return cfg;
}

sim::SimResult run_kernel(const std::string& name, const rd::HaccrgConfig& det,
                          const FaultPlan& faults = {}) {
  sim::SimConfig sim;
  sim.faults = faults;
  sim::Gpu gpu(test_gpu(), det, sim);
  kernels::PreparedKernel prep =
      kernels::find_benchmark(name)->prepare(gpu, kernels::BenchOptions{});
  sim::SimResult r = gpu.launch(prep.launch());
  EXPECT_TRUE(r.completed) << r.error;
  return r;
}

TEST(Degradation, InvalidConfigFailsLaunchWithStatusMessage) {
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.shared_granularity = 3;  // not a power of two
  sim::Gpu gpu(test_gpu(), det, sim::SimConfig{});
  kernels::PreparedKernel prep =
      kernels::find_benchmark("REDUCE")->prepare(gpu, kernels::BenchOptions{});
  sim::SimResult r = gpu.launch(prep.launch());
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("invalid haccrg config"), std::string::npos) << r.error;
}

TEST(Degradation, FiniteShadowTableCountsEvictions) {
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.shared_granularity = 4;
  det.shared_shadow_capacity = 8;  // far smaller than the working set
  const sim::SimResult r = run_kernel("HIST", det);
  EXPECT_GT(r.stats.get("rd.evictions"), 0u);
  // The coverage invariant: every eviction is counted as lost coverage.
  EXPECT_GE(r.stats.get("rd.coverage_lost"), r.stats.get("rd.evictions"));

  // A fully provisioned table records no evictions and no lost coverage.
  det.shared_shadow_capacity = 0;
  const sim::SimResult full = run_kernel("HIST", det);
  EXPECT_FALSE(full.stats.has("rd.evictions"));
  EXPECT_FALSE(full.stats.has("rd.coverage_lost"));
}

TEST(Degradation, DetectorFaultsAreCountedNeverSilent) {
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.enable_global = true;
  det.shared_granularity = 16;
  det.global_granularity = 4;

  FaultPlan plan;
  plan.seed = 7;
  plan.set_rate(FaultSite::kSharedShadowFlip, 50'000);
  plan.set_rate(FaultSite::kGlobalShadowFlip, 50'000);
  plan.set_rate(FaultSite::kBloomFlip, 20'000);
  plan.set_rate(FaultSite::kRaceRegDrop, 20'000);
  plan.set_rate(FaultSite::kDramShadowFlip, 50'000);
  const sim::SimResult r = run_kernel("HIST", det, plan);

  const u64 state_faults =
      r.stats.get("fault.shared_flip") + r.stats.get("fault.global_flip") +
      r.stats.get("fault.bloom_flip") + r.stats.get("fault.racereg_drop") +
      r.stats.get("fault.dram_flip");
  EXPECT_GT(state_faults, 0u) << "campaign injected nothing; rates or wiring dead";
  // Every state injection is accounted as potentially lost coverage —
  // along with evictions and saturation (zero here).
  EXPECT_EQ(r.stats.get("rd.coverage_lost"),
            state_faults + r.stats.get("rd.evictions") +
                r.stats.get("rd.race_log_saturated"));
}

TEST(Degradation, IcntFaultsPerturbTimingNotResults) {
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.enable_global = true;
  det.shared_granularity = 16;
  det.global_granularity = 4;

  const sim::SimResult clean = run_kernel("REDUCE", det);
  FaultPlan plan;
  plan.seed = 3;
  plan.set_rate(FaultSite::kIcntDrop, 100'000);
  plan.set_rate(FaultSite::kIcntDelay, 100'000);
  plan.retry_timeout = 16;
  const sim::SimResult faulty = run_kernel("REDUCE", det, plan);

  // Packets are data-less: drops/delays perturb timing (either way —
  // retry batching can even shorten a run) but the kernel still
  // completes with the same race verdict (REDUCE has none), and
  // timing-only faults do not claim lost coverage.
  EXPECT_NE(faulty.cycles, clean.cycles);
  EXPECT_GT(faulty.stats.get("icnt.fault_drops") + faulty.stats.get("icnt.fault_delays"), 0u);
  EXPECT_EQ(faulty.races.unique(), clean.races.unique());
  EXPECT_FALSE(faulty.stats.has("rd.coverage_lost"));
}

TEST(Degradation, MaxRetriesBoundsWorstCaseUnderFullDropRate) {
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.enable_global = true;
  det.shared_granularity = 16;
  det.global_granularity = 4;

  FaultPlan plan;
  plan.seed = 1;
  plan.set_rate(FaultSite::kIcntDrop, 1'000'000);  // every packet, every time
  plan.retry_timeout = 8;
  plan.max_retries = 2;
  const sim::SimResult r = run_kernel("REDUCE", det, plan);
  // Every packet is eventually forced through — the run terminates and
  // says how often the bound fired.
  EXPECT_GT(r.stats.get("icnt.fault_forced"), 0u);
}

}  // namespace
}  // namespace haccrg
