// The injected-race campaign of Section VI-A: 23 removed barriers, 13
// rogue cross-block stores, 3 removed fences, 2 critical-section rogues
// — 41 in total, every one of which HAccRG must detect.
#include <gtest/gtest.h>

#include "kernels/injection.hpp"

namespace haccrg {
namespace {

using kernels::InjectionCase;
using kernels::InjectionKind;
using kernels::all_injection_cases;
using kernels::run_injection_case;

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 16 * 1024 * 1024;
  return cfg;
}

TEST(InjectionSuite, HasFortyOneCases) {
  const auto cases = all_injection_cases();
  EXPECT_EQ(cases.size(), 41u);
  u32 counts[5] = {};
  for (const auto& c : cases) counts[static_cast<u32>(c.injection.kind)]++;
  EXPECT_EQ(counts[static_cast<u32>(InjectionKind::kRemoveBarrier)], 23u);
  EXPECT_EQ(counts[static_cast<u32>(InjectionKind::kRogueCrossBlock)], 13u);
  EXPECT_EQ(counts[static_cast<u32>(InjectionKind::kRemoveFence)], 3u);
  EXPECT_EQ(counts[static_cast<u32>(InjectionKind::kRogueCritical)], 2u);
}

class InjectionDetection : public ::testing::TestWithParam<size_t> {};

TEST_P(InjectionDetection, InjectedRaceIsDetected) {
  const auto cases = all_injection_cases();
  ASSERT_LT(GetParam(), cases.size());
  const InjectionCase& test = cases[GetParam()];
  const auto result = run_injection_case(test, test_gpu());
  EXPECT_TRUE(result.detected) << test.label() << " — races in expected space: "
                               << result.races_in_space << ", total: " << result.races_total;
}

INSTANTIATE_TEST_SUITE_P(AllFortyOne, InjectionDetection, ::testing::Range<size_t>(0, 41),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           auto cases = all_injection_cases();
                           std::string label = cases[info.param].label();
                           for (char& c : label) {
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return label;
                         });

}  // namespace
}  // namespace haccrg
