// Golden-stats snapshots: REDUCE and PSUM runs under the combined
// detection config are compared byte-for-byte against checked-in
// expected files. Any change to timing, detection, or counter plumbing
// that moves a number shows up as a readable diff of named counters
// instead of a silent drift. The parallel engine's determinism guarantee
// is what makes a byte-exact snapshot viable at all — the files are
// valid for every HACCRG_THREADS setting.
//
// To update after an intentional behavior change:
//   scripts/regen_golden_stats.sh    (then review the diff and commit)
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "kernels/common.hpp"
#include "sim/gpu.hpp"

namespace haccrg {
namespace {

using kernels::BenchOptions;
using kernels::PreparedKernel;
using kernels::find_benchmark;

// The snapshot config is pinned explicitly (not shared with other tests)
// so unrelated test-config edits cannot invalidate the golden files.
arch::GpuConfig golden_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 32 * 1024 * 1024;
  return cfg;
}

rd::HaccrgConfig golden_detection() {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  cfg.shared_granularity = 16;
  cfg.global_granularity = 4;
  return cfg;
}

std::string golden_path(const std::string& name) {
  return std::string(HACCRG_SOURCE_DIR) + "/tests/golden/" + name + ".txt";
}

std::string snapshot(const std::string& name) {
  sim::Gpu gpu(golden_gpu(), golden_detection());
  PreparedKernel prep = find_benchmark(name)->prepare(gpu, BenchOptions{});
  sim::SimResult r = gpu.launch(prep.launch());
  EXPECT_TRUE(r.completed) << r.error;
  std::string out;
  out += "benchmark " + name + "\n";
  out += "cycles " + std::to_string(r.cycles) + "\n";
  out += "races.total " + std::to_string(r.races.total()) + "\n";
  out += "races.unique " + std::to_string(r.races.unique()) + "\n";
  out += r.stats.serialize();
  return out;
}

void check_against_golden(const std::string& name) {
  const std::string actual = snapshot(name);
  const std::string path = golden_path(name);

  if (std::getenv("HACCRG_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run scripts/regen_golden_stats.sh";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual)
      << name << " stats drifted from the checked-in snapshot. If the change is intentional, "
      << "regenerate with scripts/regen_golden_stats.sh and commit the diff.";
}

TEST(GoldenStats, Reduce) { check_against_golden("REDUCE"); }
TEST(GoldenStats, Psum) { check_against_golden("PSUM"); }

// The snapshot must be identical when produced by the parallel engine.
TEST(GoldenStats, SnapshotIsThreadCountInvariant) {
  sim::SimConfig sim;
  sim.num_threads = 4;
  sim::Gpu gpu(golden_gpu(), golden_detection(), sim);
  PreparedKernel prep = find_benchmark("REDUCE")->prepare(gpu, BenchOptions{});
  sim::SimResult r = gpu.launch(prep.launch());
  ASSERT_TRUE(r.completed) << r.error;
  std::string parallel;
  parallel += "benchmark REDUCE\n";
  parallel += "cycles " + std::to_string(r.cycles) + "\n";
  parallel += "races.total " + std::to_string(r.races.total()) + "\n";
  parallel += "races.unique " + std::to_string(r.races.unique()) + "\n";
  parallel += r.stats.serialize();
  EXPECT_EQ(snapshot("REDUCE"), parallel);
}

}  // namespace
}  // namespace haccrg
