// Unit tests for the common utility layer: bit helpers, RNGs, statistics,
// and the table printer.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace haccrg {
namespace {

TEST(BitOps, Pow2Predicates) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1000));
}

TEST(BitOps, Log2OfPow2) {
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(2), 1u);
  EXPECT_EQ(log2_pow2(128), 7u);
  EXPECT_EQ(log2_pow2(1u << 20), 20u);
}

TEST(BitOps, AlignUp) {
  EXPECT_EQ(align_up(0, 16), 0u);
  EXPECT_EQ(align_up(1, 16), 16u);
  EXPECT_EQ(align_up(16, 16), 16u);
  EXPECT_EQ(align_up(17, 256), 256u);
}

TEST(BitOps, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(BitOps, FloatBitCasts) {
  EXPECT_EQ(as_f32(as_u32(1.5f)), 1.5f);
  EXPECT_EQ(as_u32(0.0f), 0u);
  EXPECT_EQ(as_f32(0x3f800000u), 1.0f);
}

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMixBelowRespectsBound) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(37), 37u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, SplitMixF32InUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const f32 v = rng.next_f32();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Rng, Lcg32MatchesRecurrence) {
  Lcg32 rng(123);
  u32 state = 123;
  for (int i = 0; i < 50; ++i) {
    state = state * Lcg32::kMul + Lcg32::kAdd;
    EXPECT_EQ(rng.next(), state);
  }
}

TEST(Stats, MeanGeomeanStddev) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_NEAR(stddev({1.0, 3.0}), std::sqrt(2.0), 1e-12);
}

TEST(Stats, StatSetAccumulatesAndMerges) {
  StatSet a;
  a.add("x");
  a.add("x", 4);
  a.set("y", 7);
  EXPECT_EQ(a.get("x"), 5u);
  EXPECT_EQ(a.get("y"), 7u);
  EXPECT_EQ(a.get("missing"), 0u);

  StatSet b;
  b.add("x", 10);
  a.merge(b, "sub.");
  EXPECT_EQ(a.get("sub.x"), 10u);
  EXPECT_EQ(a.get("x"), 5u);
}

TEST(Table, RendersAlignedColumns) {
  TablePrinter t({"Name", "Value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "23456"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, NumericFormatters) {
  EXPECT_EQ(TablePrinter::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(TablePrinter::pct(0.27, 1), "27.0%");
  EXPECT_EQ(TablePrinter::pct(1.0, 0), "100%");
}

TEST(Table, ShortRowsArePadded) {
  TablePrinter t({"A", "B", "C"});
  t.add_row({"only-one"});
  EXPECT_NE(t.render().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace haccrg
