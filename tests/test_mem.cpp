// Unit tests for the memory subsystem: device memory + allocator, the
// set-associative cache, the coalescer, banked shared memory, the DRAM
// channel, the interconnect pipes, and the memory partition.
#include <gtest/gtest.h>

#include "arch/config.hpp"
#include "mem/cache.hpp"
#include "mem/coalescer.hpp"
#include "mem/device_memory.hpp"
#include "mem/dram.hpp"
#include "mem/interconnect.hpp"
#include "mem/partition.hpp"
#include "mem/shared_memory.hpp"

namespace haccrg {
namespace {

using namespace mem;

// --- DeviceMemory / allocator ------------------------------------------------

TEST(DeviceMemory, ReadWriteRoundTrip) {
  DeviceMemory memory(4096);
  memory.write_u32(0, 0xdeadbeef);
  EXPECT_EQ(memory.read_u32(0), 0xdeadbeefu);
  memory.write_u8(100, 0x7f);
  EXPECT_EQ(memory.read_u8(100), 0x7f);
  memory.write_u64(200, 0x0123456789abcdefULL);
  EXPECT_EQ(memory.read_u64(200), 0x0123456789abcdefULL);
  memory.write_f32(300, 2.5f);
  EXPECT_EQ(memory.read_f32(300), 2.5f);
}

TEST(DeviceMemory, UnalignedWordAccessSnapsDown) {
  DeviceMemory memory(64);
  memory.write_u32(4, 0x11223344);
  EXPECT_EQ(memory.read_u32(6), 0x11223344u);  // same word
}

TEST(DeviceMemory, FillAndCopy) {
  DeviceMemory memory(256);
  memory.fill(0, 256, 0xab);
  EXPECT_EQ(memory.read_u8(255), 0xab);
  u32 host[4] = {1, 2, 3, 4};
  memory.copy_in(16, host, sizeof(host));
  u32 back[4] = {};
  memory.copy_out(back, 16, sizeof(back));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(back[i], host[i]);
}

TEST(Allocator, AlignsTo256AndTracksNames) {
  DeviceMemory memory(64 * 1024);
  DeviceAllocator alloc(memory);
  const Addr a = alloc.alloc(100, "a");
  const Addr b = alloc.alloc(8, "b");
  EXPECT_EQ(a % 256, 0u);
  EXPECT_EQ(b % 256, 0u);
  EXPECT_GT(b, a);
  EXPECT_EQ(alloc.allocations().size(), 2u);
  EXPECT_EQ(alloc.allocations()[0].name, "a");
  EXPECT_EQ(alloc.heap_top(), b + 8);
  alloc.reset();
  EXPECT_EQ(alloc.heap_top(), 0u);
}

// --- Cache ----------------------------------------------------------------------

TEST(Cache, HitAfterFill) {
  Cache cache("t", 1024, 2, 64, WritePolicy::kWriteBackAllocate);
  EXPECT_FALSE(cache.access(0, false).hit);
  EXPECT_TRUE(cache.access(0, false).hit);
  EXPECT_TRUE(cache.access(32, false).hit);  // same line
  EXPECT_FALSE(cache.access(64, false).hit);
}

TEST(Cache, LruEvictsOldest) {
  // 1024 B, 2-way, 64 B lines -> 8 sets. Addresses 0, 512, 1024 share set 0.
  Cache cache("t", 1024, 2, 64, WritePolicy::kWriteBackAllocate);
  cache.access(0, false);
  cache.access(512, false);
  cache.access(0, false);      // touch 0 -> 512 is LRU
  cache.access(1024, false);   // evicts 512
  EXPECT_TRUE(cache.probe(0));
  EXPECT_FALSE(cache.probe(512));
  EXPECT_TRUE(cache.probe(1024));
}

TEST(Cache, WriteThroughDoesNotAllocate) {
  Cache cache("t", 1024, 2, 64, WritePolicy::kWriteThroughNoAllocate);
  EXPECT_FALSE(cache.access(0, true).hit);
  EXPECT_FALSE(cache.probe(0));  // no line allocated
  cache.access(0, false);        // read allocates
  EXPECT_TRUE(cache.probe(0));
  cache.access(0, true);  // write hit keeps the line clean
  EXPECT_TRUE(cache.probe(0));
}

TEST(Cache, WriteBackReportsDirtyVictim) {
  Cache cache("t", 128, 1, 64, WritePolicy::kWriteBackAllocate);  // 2 sets
  cache.access(0, true);  // dirty line in set 0
  CacheAccessResult r = cache.access(128, false);  // same set, evicts
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.victim_addr, 0u);
}

TEST(Cache, FillTimeTracksAllocationCycle) {
  Cache cache("t", 1024, 2, 64, WritePolicy::kWriteBackAllocate);
  cache.access(0, false, 123);
  EXPECT_EQ(cache.fill_time(0), 123u);
  EXPECT_EQ(cache.fill_time(64), 0u);  // absent line
  cache.access(0, false, 999);         // hit does not re-stamp
  EXPECT_EQ(cache.fill_time(0), 123u);
}

TEST(Cache, InvalidateAll) {
  Cache cache("t", 1024, 2, 64, WritePolicy::kWriteBackAllocate);
  cache.access(0, false);
  cache.access(64, false);
  cache.invalidate_all();
  EXPECT_FALSE(cache.probe(0));
  EXPECT_FALSE(cache.probe(64));
}

TEST(Cache, MissRateAccounting) {
  Cache cache("t", 1024, 2, 64, WritePolicy::kWriteBackAllocate);
  cache.access(0, false);
  cache.access(0, false);
  cache.access(0, false);
  cache.access(64, false);
  EXPECT_EQ(cache.accesses(), 4u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_DOUBLE_EQ(cache.miss_rate(), 0.5);
}

// --- Coalescer -------------------------------------------------------------------

TEST(Coalescer, UnitStrideWarpIsOneSegment) {
  std::vector<LaneAccess> accesses;
  for (u32 lane = 0; lane < 32; ++lane) accesses.push_back({lane, lane * 4, 4});
  auto segments = coalesce(accesses, 128);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].addr, 0u);
  EXPECT_EQ(segments[0].lanes.size(), 32u);
}

TEST(Coalescer, StridedAccessSplits) {
  std::vector<LaneAccess> accesses;
  for (u32 lane = 0; lane < 32; ++lane) accesses.push_back({lane, lane * 128, 4});
  auto segments = coalesce(accesses, 128);
  EXPECT_EQ(segments.size(), 32u);
}

TEST(Coalescer, MisalignedAccessSpansTwoSegments) {
  std::vector<LaneAccess> accesses{{0, 126, 4}};
  auto segments = coalesce(accesses, 128);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].addr, 0u);
  EXPECT_EQ(segments[1].addr, 128u);
}

TEST(Coalescer, SameLineLanesDeduplicated) {
  std::vector<LaneAccess> accesses{{0, 0, 4}, {1, 0, 4}, {2, 4, 4}};
  auto segments = coalesce(accesses, 128);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].lanes.size(), 3u);
}

TEST(Coalescer, IntraWarpWawDetectsSameGranuleWriters) {
  std::vector<LaneAccess> accesses{{0, 0, 4}, {1, 0, 4}, {2, 8, 4}};
  auto conflicts = intra_warp_waw(accesses, 4);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].lane_a, 0u);
  EXPECT_EQ(conflicts[0].lane_b, 1u);
  EXPECT_EQ(conflicts[0].granule_addr, 0u);
}

TEST(Coalescer, IntraWarpWawQuietOnDistinctWords) {
  std::vector<LaneAccess> accesses;
  for (u32 lane = 0; lane < 32; ++lane) accesses.push_back({lane, lane * 4, 4});
  EXPECT_TRUE(intra_warp_waw(accesses, 4).empty());
  // At coarse granularity the same pattern aliases.
  EXPECT_FALSE(intra_warp_waw(accesses, 16).empty());
}

// --- Shared memory bank conflicts --------------------------------------------------

TEST(SharedMemoryBanks, UnitStrideIsConflictFree) {
  SharedMemory smem(16 * 1024, 16);
  std::vector<u32> addrs;
  for (u32 lane = 0; lane < 32; ++lane) addrs.push_back(lane * 4);
  EXPECT_EQ(smem.conflict_cycles(addrs), 2u);  // 32 lanes over 16 banks
}

TEST(SharedMemoryBanks, StrideOfBankCountSerializes) {
  SharedMemory smem(16 * 1024, 16);
  std::vector<u32> addrs;
  for (u32 lane = 0; lane < 16; ++lane) addrs.push_back(lane * 16 * 4);  // all bank 0
  EXPECT_EQ(smem.conflict_cycles(addrs), 16u);
}

TEST(SharedMemoryBanks, BroadcastIsFree) {
  SharedMemory smem(16 * 1024, 16);
  std::vector<u32> addrs(32, 64u);  // everyone reads the same word
  EXPECT_EQ(smem.conflict_cycles(addrs), 1u);
}

TEST(SharedMemoryBanks, Storage) {
  SharedMemory smem(1024, 16);
  smem.write_u32(16, 0x12345678);
  EXPECT_EQ(smem.read_u32(16), 0x12345678u);
  smem.write_u8(3, 0x9a);
  EXPECT_EQ(smem.read_u8(3), 0x9a);
  smem.clear(0, 1024);
  EXPECT_EQ(smem.read_u32(16), 0u);
}

// --- DRAM channel -------------------------------------------------------------------

TEST(Dram, RespectsLatencyAndBurst) {
  DramChannel dram(8, 100, 12);
  Packet pkt;
  pkt.addr = 0;
  dram.push(0, pkt);
  // Not ready before the access latency elapses.
  for (Cycle t = 0; t < 100; ++t) EXPECT_FALSE(dram.cycle(t).has_value()) << t;
  EXPECT_TRUE(dram.cycle(100).has_value());
  EXPECT_EQ(dram.busy_cycles(), 12u);
}

TEST(Dram, BurstSerializesBackToBackRequests) {
  DramChannel dram(8, 10, 12);
  Packet pkt;
  dram.push(0, pkt);
  dram.push(0, pkt);
  Cycle first = 0, second = 0;
  for (Cycle t = 0; t < 100; ++t) {
    if (dram.cycle(t)) {
      if (first == 0)
        first = t;
      else if (second == 0)
        second = t;
    }
  }
  EXPECT_EQ(first, 10u);
  EXPECT_GE(second, first + 12);  // bus busy for the burst
}

TEST(Dram, QueueCapacity) {
  DramChannel dram(2, 10, 4);
  Packet pkt;
  EXPECT_TRUE(dram.can_accept());
  dram.push(0, pkt);
  dram.push(0, pkt);
  EXPECT_FALSE(dram.can_accept());
}

TEST(Dram, UtilizationFraction) {
  DramChannel dram(8, 10, 10);
  Packet pkt;
  dram.push(0, pkt);
  for (Cycle t = 0; t <= 20; ++t) dram.cycle(t);
  EXPECT_DOUBLE_EQ(dram.utilization(100), 0.1);
}

// --- Interconnect -----------------------------------------------------------------

TEST(Interconnect, DeliversAfterLatency) {
  Interconnect icnt(2, 2, 8, 1);
  Packet pkt;
  pkt.addr = 0x40;
  icnt.send_request(1, 0, pkt);
  for (Cycle t = 0; t < 8; ++t) EXPECT_FALSE(icnt.recv_request(1, t).has_value());
  auto got = icnt.recv_request(1, 8);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->addr, 0x40u);
}

TEST(Interconnect, RateLimitsPerCycle) {
  Interconnect icnt(1, 1, 4, 1);
  Packet pkt;
  EXPECT_TRUE(icnt.can_send_request(0, 5));
  icnt.send_request(0, 5, pkt);
  EXPECT_FALSE(icnt.can_send_request(0, 5));  // one per cycle
  EXPECT_TRUE(icnt.can_send_request(0, 6));
}

TEST(Interconnect, ResponsesAreIndependentOfRequests) {
  Interconnect icnt(2, 2, 4, 1);
  icnt.send_response(0, 0, Response{PacketKind::kLoad, 0, 3});
  auto rsp = icnt.recv_response(0, 4);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->warp_slot, 3u);
  EXPECT_TRUE(icnt.idle());
}

// --- Memory partition ----------------------------------------------------------------

arch::GpuConfig tiny_config() {
  arch::GpuConfig cfg;
  cfg.l2_slice_size = 4 * 1024;
  cfg.l2_latency = 5;
  cfg.dram_latency = 20;
  cfg.dram_burst_cycles = 4;
  return cfg;
}

TEST(Partition, MissGoesThroughDramThenHits) {
  MemoryPartition part(0, tiny_config());
  Packet pkt;
  pkt.kind = PacketKind::kLoad;
  pkt.addr = 0;
  pkt.sm_id = 0;
  ASSERT_TRUE(part.accept(pkt));

  Cycle first_done = 0;
  for (Cycle t = 0; t < 200 && first_done == 0; ++t) {
    if (part.cycle(t)) first_done = t;
  }
  EXPECT_GE(first_done, 20u);  // paid the DRAM latency

  // Same line again: L2 hit, much faster.
  ASSERT_TRUE(part.accept(pkt));
  Cycle start = first_done + 1;
  Cycle second_done = 0;
  for (Cycle t = start; t < start + 100 && second_done == 0; ++t) {
    if (part.cycle(t)) second_done = t;
  }
  EXPECT_LE(second_done - start, 10u);  // ~l2_latency
}

TEST(Partition, AtomicPaysExtraLatency) {
  MemoryPartition part(0, tiny_config());
  Packet load;
  load.kind = PacketKind::kLoad;
  load.addr = 0;
  part.accept(load);
  Cycle load_done = 0;
  for (Cycle t = 0; t < 300 && load_done == 0; ++t)
    if (part.cycle(t)) load_done = t;

  MemoryPartition part2(0, tiny_config());
  Packet atomic;
  atomic.kind = PacketKind::kAtomic;
  atomic.addr = 0;
  part2.accept(atomic);
  Cycle atomic_done = 0;
  for (Cycle t = 0; t < 500 && atomic_done == 0; ++t)
    if (part2.cycle(t)) atomic_done = t;

  EXPECT_GT(atomic_done, load_done);
}

TEST(Partition, ShadowPacketsAreCounted) {
  MemoryPartition part(0, tiny_config());
  Packet shadow;
  shadow.kind = PacketKind::kShadow;
  shadow.addr = 0x80;
  shadow.shadow_write = true;
  part.accept(shadow);
  StatSet stats;
  part.export_stats(stats);
  EXPECT_EQ(stats.get("partition.shadow_packets"), 1u);
  EXPECT_EQ(stats.get("partition.data_packets"), 0u);
}

TEST(Config, ValidationCatchesBadGeometry) {
  arch::GpuConfig cfg;
  EXPECT_EQ(cfg.validate(), "");
  cfg.warp_size = 33;
  EXPECT_NE(cfg.validate(), "");
  cfg = arch::GpuConfig{};
  cfg.simd_width = 5;
  EXPECT_NE(cfg.validate(), "");
  cfg = arch::GpuConfig{};
  cfg.l1_size = 1000;  // not divisible by ways*line
  EXPECT_NE(cfg.validate(), "");
  cfg = arch::GpuConfig{};
  cfg.num_mem_partitions = 0;
  EXPECT_NE(cfg.validate(), "");
}

TEST(Config, PartitionInterleavingCoversAllSlices) {
  arch::GpuConfig cfg;
  std::vector<bool> seen(cfg.num_mem_partitions, false);
  for (Addr a = 0; a < cfg.num_mem_partitions * cfg.l2_line; a += cfg.l2_line) {
    seen[cfg.partition_of(a)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace haccrg
