// The sharded commit's accounting contracts:
//  - WorkerPool::chunk_bounds hands out balanced contiguous chunks (the
//    10-jobs-over-4-workers case that motivated replacing the ceil-chunk
//    split), covers [0, count) exactly, and never overlaps.
//  - PhaseProfiler exports "prof.commit.*" as the whole commit barrier:
//    on the sharded path the legacy kCommit bucket stays empty and the
//    three sub-phases sum to the commit total, with one call per engine
//    step; on the fault-campaign fallback the sub-phases stay empty and
//    the legacy bucket carries everything.
//  - SimConfig reads HACCRG_COMMIT_SHARDS (lenient clamp + strict parse).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "kernels/common.hpp"
#include "sim/gpu.hpp"
#include "sim/sim_config.hpp"
#include "sim/thread_pool.hpp"

namespace haccrg {
namespace {

using kernels::BenchOptions;
using kernels::PreparedKernel;
using kernels::find_benchmark;

// --- WorkerPool::chunk_bounds ------------------------------------------------

void expect_partition(u32 num_threads, u32 count) {
  u32 covered = 0;
  u32 prev_end = 0;
  u32 max_chunk = 0, min_chunk = ~0u;
  for (u32 w = 0; w < num_threads; ++w) {
    const auto [begin, end] = sim::WorkerPool::chunk_bounds(w, num_threads, count);
    EXPECT_EQ(begin, prev_end) << num_threads << " threads, " << count << " jobs, worker " << w;
    EXPECT_LE(begin, end);
    prev_end = end;
    covered += end - begin;
    max_chunk = std::max(max_chunk, end - begin);
    min_chunk = std::min(min_chunk, end - begin);
  }
  EXPECT_EQ(prev_end, count);
  EXPECT_EQ(covered, count);
  // Balanced: chunk sizes differ by at most one.
  EXPECT_LE(max_chunk - min_chunk, 1u) << num_threads << " threads, " << count << " jobs";
}

TEST(ChunkBounds, TenSmsOverFourWorkersIsBalanced) {
  // The motivating case: the old ceil-chunk split gave 3,3,3,1 and the
  // barrier waited on worker 0's oversized chunk every cycle.
  u32 sizes[4];
  for (u32 w = 0; w < 4; ++w) {
    const auto [begin, end] = sim::WorkerPool::chunk_bounds(w, 4, 10);
    sizes[w] = end - begin;
  }
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 3u);
  EXPECT_EQ(sizes[2], 2u);
  EXPECT_EQ(sizes[3], 3u);
}

TEST(ChunkBounds, AwkwardCountsPartitionExactly) {
  for (u32 threads : {1u, 2u, 3u, 4u, 7u, 8u, 64u}) {
    for (u32 count : {0u, 1u, 2u, 3u, 7u, 8u, 10u, 41u, 63u, 64u, 65u, 1000u}) {
      expect_partition(threads, count);
    }
  }
}

TEST(ChunkBounds, FewerJobsThanWorkersLeavesTailIdle) {
  // 3 jobs over 8 workers: every job lands somewhere, some workers idle,
  // and no worker gets more than one.
  u32 busy = 0;
  for (u32 w = 0; w < 8; ++w) {
    const auto [begin, end] = sim::WorkerPool::chunk_bounds(w, 8, 3);
    EXPECT_LE(end - begin, 1u);
    busy += end - begin;
  }
  EXPECT_EQ(busy, 3u);
}

// --- Profiler sub-phase accounting -------------------------------------------

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 32 * 1024 * 1024;
  return cfg;
}

rd::HaccrgConfig detection_combined() {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  return cfg;
}

sim::SimResult profiled_run(const sim::SimConfig& sim) {
  sim::Gpu gpu(test_gpu(), detection_combined(), sim);
  BenchOptions opts;
  PreparedKernel prep = find_benchmark("HIST")->prepare(gpu, opts);
  return gpu.launch(prep.launch());
}

TEST(CommitPhaseProfile, SubPhasesSumToCommitTotal) {
  sim::SimConfig sim;
  sim.num_threads = 2;
  sim.profile = true;
  const sim::SimResult r = profiled_run(sim);
  ASSERT_TRUE(r.completed) << r.error;

  const u64 sharded = r.stats.get("prof.commit_sharded.ns");
  const u64 merge = r.stats.get("prof.commit_merge.ns");
  const u64 serial = r.stats.get("prof.commit_serial.ns");
  // Sharded path: legacy bucket untouched, so the exported commit total
  // is exactly the sub-phase sum.
  EXPECT_EQ(r.stats.get("prof.commit.ns"), sharded + merge + serial);
  EXPECT_GT(sharded + merge + serial, 0u);

  // The sharded scope opens every engine step (it owns the ordinal
  // prefix sum); merge and serial open only on cycles with commit work,
  // so their call counts are bounded by — and on a busy kernel below —
  // the step count. The step loop runs once per cycle plus the final
  // drain step, and the exported commit.calls tracks the sharded scope.
  const u64 steps = r.cycles + 1;
  EXPECT_EQ(r.stats.get("prof.commit_sharded.calls"), steps);
  EXPECT_EQ(r.stats.get("prof.commit.calls"), steps);
  const u64 merge_calls = r.stats.get("prof.commit_merge.calls");
  const u64 serial_calls = r.stats.get("prof.commit_serial.calls");
  EXPECT_GT(merge_calls, 0u);
  // Every merge cycle has deferred ops, hence serial work too.
  EXPECT_LE(merge_calls, serial_calls);
  EXPECT_LE(serial_calls, steps);
}

TEST(CommitPhaseProfile, FaultCampaignUsesLegacySerialBucket) {
  sim::SimConfig sim;
  sim.num_threads = 2;
  sim.profile = true;
  sim.faults.seed = 7;
  sim.faults.set_rate(fault::FaultSite::kGlobalShadowFlip, 2000);
  const sim::SimResult r = profiled_run(sim);
  ASSERT_TRUE(r.completed) << r.error;

  // The order-dependent fault stream forces the serial fallback: the
  // sub-phase buckets never run and the legacy bucket carries the whole
  // barrier.
  EXPECT_EQ(r.stats.get("prof.commit_sharded.calls"), 0u);
  EXPECT_EQ(r.stats.get("prof.commit_merge.calls"), 0u);
  EXPECT_EQ(r.stats.get("prof.commit_serial.calls"), 0u);
  EXPECT_EQ(r.stats.get("prof.commit.calls"), r.cycles + 1);
  EXPECT_GT(r.stats.get("prof.commit.ns"), 0u);
}

TEST(CommitPhaseProfile, FaultCampaignIsShardCountInvariant) {
  // The serial fallback makes the shard knob inert under faults: the
  // injected stream is order-dependent, so a campaign must produce
  // bit-identical detection results whatever HACCRG_COMMIT_SHARDS says.
  // Guards against a future "fast path for low fault rates" silently
  // reintroducing shard-dependent fault placement.
  u64 reference = 0;
  bool have_reference = false;
  for (const u32 shards : {1u, 2u, 8u}) {
    sim::SimConfig sim;
    sim.num_threads = 2;
    sim.commit_shards = shards;
    sim.faults.seed = 11;
    sim.faults.set_rate(fault::FaultSite::kGlobalShadowFlip, 2000);
    sim.faults.set_rate(fault::FaultSite::kIcntDelay, 1000);
    const sim::SimResult r = profiled_run(sim);
    ASSERT_TRUE(r.completed) << "shards=" << shards << ": " << r.error;
    const u64 fp = r.stats.fingerprint();
    if (!have_reference) {
      reference = fp;
      have_reference = true;
    } else {
      EXPECT_EQ(fp, reference) << "shards=" << shards
                               << ": fault campaign diverged from shards=1";
    }
  }
}

// --- HACCRG_COMMIT_SHARDS plumbing -------------------------------------------

TEST(CommitShardsEnv, LenientAndStrictParse) {
  ASSERT_EQ(setenv("HACCRG_COMMIT_SHARDS", "8", 1), 0);
  EXPECT_EQ(sim::SimConfig::from_env().commit_shards, 8u);
  sim::SimConfig strict;
  EXPECT_TRUE(sim::SimConfig::parse_env(strict).ok());
  EXPECT_EQ(strict.commit_shards, 8u);

  // Lenient entry point clamps an oversized value; strict rejects it.
  ASSERT_EQ(setenv("HACCRG_COMMIT_SHARDS", "100000", 1), 0);
  EXPECT_EQ(sim::SimConfig::from_env().commit_shards, sim::SimConfig::kMaxCommitShards);
  EXPECT_FALSE(sim::SimConfig::parse_env(strict).ok());

  ASSERT_EQ(setenv("HACCRG_COMMIT_SHARDS", "abc", 1), 0);
  EXPECT_EQ(sim::SimConfig::from_env().commit_shards, 0u);  // ignored -> auto
  EXPECT_FALSE(sim::SimConfig::parse_env(strict).ok());

  ASSERT_EQ(unsetenv("HACCRG_COMMIT_SHARDS"), 0);
  EXPECT_EQ(sim::SimConfig::from_env().commit_shards, 0u);
}

}  // namespace
}  // namespace haccrg
