// Wire-format tests for the access-trace subsystem: varint/zigzag edge
// values, header and event round-trips, canonical re-encoding (the same
// records always produce the same bytes), and rejection of truncated or
// corrupted inputs. The randomized suite drives the encoder/decoder pair
// with PRNG-built event streams so field combinations no registry kernel
// happens to produce are still covered.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/format.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"

namespace haccrg {
namespace {

using trace::DecodeCursor;
using trace::Event;
using trace::EventKind;
using trace::TraceHeader;
using trace::TraceLane;

/// SplitMix64: tiny, deterministic, seedable — all this suite needs.
struct Rng {
  u64 state;
  explicit Rng(u64 seed) : state(seed) {}
  u64 next() {
    state += 0x9e3779b97f4a7c15ULL;
    u64 z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  u32 below(u32 bound) { return bound == 0 ? 0 : static_cast<u32>(next() % bound); }
  bool chance(u32 percent) { return below(100) < percent; }
};

TraceHeader sample_header() {
  TraceHeader h;
  h.num_sms = 8;
  h.warp_size = 32;
  h.max_blocks_per_sm = 8;
  h.max_threads_per_sm = 1024;
  h.shared_mem_per_sm = 16 * 1024;
  h.shared_mem_banks = 32;
  h.l1_line = 128;
  h.device_mem_bytes = 32ull * 1024 * 1024;
  h.enable_shared = true;
  h.enable_global = true;
  h.shared_granularity = 16;
  h.global_granularity = 4;
  h.bloom_bits = 16;
  h.bloom_bins = 2;
  h.max_recorded_races = 4096;
  return h;
}

TEST(TraceVarint, EdgeValuesRoundTrip) {
  const u64 values[] = {0,     1,          127,        128,       255,  300, 16383,
                        16384, 0xffffffff, 1ull << 32, ~0ull >> 1, ~0ull};
  for (u64 v : values) {
    std::vector<u8> buf;
    trace::put_varint(buf, v);
    ASSERT_LE(buf.size(), 10u) << v;
    DecodeCursor cursor{buf.data(), buf.size(), 0, {}};
    u64 back = 0;
    ASSERT_TRUE(cursor.get_varint(back)) << v;
    EXPECT_EQ(back, v);
    EXPECT_TRUE(cursor.at_end()) << v;
  }
}

TEST(TraceVarint, TruncatedVarintFails) {
  std::vector<u8> buf;
  trace::put_varint(buf, 1ull << 40);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    DecodeCursor cursor{buf.data(), cut, 0, {}};
    u64 out = 0;
    EXPECT_FALSE(cursor.get_varint(out)) << cut;
    EXPECT_TRUE(cursor.failed());
  }
}

TEST(TraceVarint, OverlongVarintRejected) {
  // Eleven continuation bytes cannot be a valid LEB128 u64.
  std::vector<u8> buf(11, 0x80);
  DecodeCursor cursor{buf.data(), buf.size(), 0, {}};
  u64 out = 0;
  EXPECT_FALSE(cursor.get_varint(out));
  EXPECT_NE(cursor.error.find("varint"), std::string::npos);
}

TEST(TraceZigzag, EdgeValuesRoundTrip) {
  const i64 values[] = {0, 1, -1, 2, -2, 1 << 20, -(1 << 20), INT64_MAX, INT64_MIN};
  for (i64 v : values) EXPECT_EQ(trace::zigzag_decode(trace::zigzag_encode(v)), v);
  // Small magnitudes must stay small on the wire (the point of zigzag).
  EXPECT_EQ(trace::zigzag_encode(-1), 1u);
  EXPECT_EQ(trace::zigzag_encode(1), 2u);
}

TEST(TraceHeaderFormat, RoundTrips) {
  const TraceHeader h = sample_header();
  std::vector<u8> buf;
  trace::encode_header(h, buf);
  DecodeCursor cursor{buf.data(), buf.size(), 0, {}};
  TraceHeader back;
  ASSERT_TRUE(trace::decode_header(cursor, back)) << cursor.error;
  EXPECT_EQ(back, h);
  EXPECT_TRUE(cursor.at_end());
}

TEST(TraceHeaderFormat, BadMagicRejected) {
  std::vector<u8> buf;
  trace::encode_header(sample_header(), buf);
  buf[3] ^= 0xff;
  trace::TraceReader reader(buf);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("magic"), std::string::npos);
}

TEST(TraceHeaderFormat, WrongVersionRejected) {
  std::vector<u8> buf;
  trace::encode_header(sample_header(), buf);
  buf[8] = 0x7f;  // version low byte
  trace::TraceReader reader(buf);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("version"), std::string::npos);
}

TEST(TraceHeaderFormat, ImplausibleGeometryRejected) {
  TraceHeader h = sample_header();
  h.warp_size = 33;
  std::vector<u8> buf;
  trace::encode_header(h, buf);
  trace::TraceReader reader(buf);
  EXPECT_FALSE(reader.ok());
}

TEST(TraceHeaderFormat, EveryTruncationRejected) {
  std::vector<u8> buf;
  trace::encode_header(sample_header(), buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    trace::TraceReader reader(std::vector<u8>(buf.begin(), buf.begin() + cut));
    EXPECT_FALSE(reader.ok()) << "prefix of " << cut << " bytes parsed as a header";
  }
}

// --- Randomized event streams -----------------------------------------------

/// Build a random event that satisfies the encoder's invariants and only
/// sets fields its kind encodes (so decode(encode(e)) == e holds).
Event random_event(Rng& rng, Cycle& cycle) {
  Event e;
  const u8 kind = static_cast<u8>(trace::kMinEventKind + rng.below(trace::kMaxEventKind));
  e.kind = static_cast<EventKind>(kind);
  cycle += rng.below(5000);
  e.cycle = cycle;

  auto fill_lanes = [&](bool addrs, bool hits) {
    const u32 count = rng.below(33);
    Addr addr = rng.next() & 0xffffff;
    for (u32 i = 0; i < count; ++i) {
      TraceLane lane;
      lane.lane = static_cast<u8>(rng.below(32));
      if (addrs) {
        // Mix ascending, equal, and descending deltas.
        addr = rng.chance(30) ? static_cast<Addr>(rng.next() & 0xffffff)
                              : addr + rng.below(64) - 16;
        lane.addr = addr;
      }
      if (hits && rng.chance(40)) {
        lane.l1_hit = true;
        lane.l1_fill = e.cycle - rng.below(static_cast<u32>(std::min<Cycle>(e.cycle, 100000)) + 1);
      }
      e.lanes.push_back(lane);
    }
  };

  switch (e.kind) {
    case EventKind::kKernelBegin:
      e.cycle = 0;  // decode pins kernel-begin cycles to the reset base
      cycle = 0;
      e.grid_dim = 1 + rng.below(4096);
      e.block_dim = 1 + rng.below(1024);
      e.shared_mem_bytes = rng.below(16 * 1024);
      e.app_heap_bytes = rng.below(1 << 24);
      e.shadow_base = rng.below(1 << 24);
      e.label.assign(rng.below(64), 'k');
      break;
    case EventKind::kKernelEnd:
      break;
    case EventKind::kBlockLaunch:
      e.sm = rng.below(64);
      e.block_slot = rng.below(8);
      e.block_id = rng.below(1 << 20);
      e.warp_base = rng.below(32);
      e.num_warps = 1 + rng.below(32);
      e.thread_base = rng.below(1024);
      e.smem_base = rng.below(16 * 1024);
      e.smem_bytes = rng.below(16 * 1024);
      break;
    case EventKind::kBlockFinish:
    case EventKind::kBarrierRelease:
      e.sm = rng.below(64);
      e.block_slot = rng.below(8);
      e.smem_base = rng.below(16 * 1024);
      e.smem_bytes = rng.below(16 * 1024);
      break;
    case EventKind::kBarrierArrive:
      e.sm = rng.below(64);
      e.block_slot = rng.below(8);
      e.warp_slot = rng.below(32);
      break;
    case EventKind::kFence:
    case EventKind::kFenceCommit:
      e.sm = rng.below(64);
      e.warp_slot = rng.below(32);
      break;
    case EventKind::kLockAcquire:
    case EventKind::kLockRelease:
      e.sm = rng.below(64);
      e.block_slot = rng.below(8);
      e.warp_slot = rng.below(32);
      e.warp_in_block = rng.below(32);
      e.pc = rng.below(4096);
      fill_lanes(/*addrs=*/e.kind == EventKind::kLockAcquire, /*hits=*/false);
      break;
    default:  // the six memory-access kinds
      e.sm = rng.below(64);
      e.block_slot = rng.below(8);
      e.warp_slot = rng.below(32);
      e.warp_in_block = rng.below(32);
      e.pc = rng.below(4096);
      e.width = static_cast<u8>(1u << rng.below(4));
      e.checked = rng.chance(70);
      fill_lanes(/*addrs=*/true, /*hits=*/e.kind == EventKind::kGlobalLoad);
      break;
  }
  return e;
}

TEST(TraceProperty, RandomStreamsRoundTripAndReencodeByteExact) {
  for (u64 seed = 0; seed < 20; ++seed) {
    Rng rng(seed * 0x1234567 + 99);
    const TraceHeader header = sample_header();
    std::vector<Event> events;
    Cycle cycle = 0;
    const u32 count = 1 + rng.below(400);
    for (u32 i = 0; i < count; ++i) events.push_back(random_event(rng, cycle));

    std::vector<u8> encoded;
    trace::encode_header(header, encoded);
    Cycle last = 0;
    for (const Event& e : events) trace::encode_event(e, last, encoded);

    trace::TraceReader reader(encoded);
    ASSERT_TRUE(reader.ok()) << "seed " << seed << ": " << reader.error();
    EXPECT_EQ(reader.header(), header);

    std::vector<u8> reencoded;
    trace::encode_header(reader.header(), reencoded);
    Cycle relast = 0;
    Event back;
    size_t i = 0;
    while (reader.next(back)) {
      ASSERT_LT(i, events.size()) << "seed " << seed;
      EXPECT_EQ(back, events[i]) << "seed " << seed << " event " << i;
      trace::encode_event(back, relast, reencoded);
      ++i;
    }
    EXPECT_EQ(reader.error(), "");
    EXPECT_EQ(i, events.size()) << "seed " << seed;
    EXPECT_EQ(reencoded, encoded) << "seed " << seed << ": canonical encoding violated";
  }
}

TEST(TraceProperty, EveryTruncationFailsCleanly) {
  Rng rng(42);
  const TraceHeader header = sample_header();
  std::vector<u8> encoded;
  trace::encode_header(header, encoded);
  Cycle cycle = 0;
  Cycle last = 0;
  for (u32 i = 0; i < 40; ++i) trace::encode_event(random_event(rng, cycle), last, encoded);

  // Any strict prefix must either stop with an error or decode only whole
  // events — never crash, never loop, never fabricate trailing records.
  for (size_t cut = 0; cut < encoded.size(); cut += 3) {
    trace::TraceReader reader(std::vector<u8>(encoded.begin(), encoded.begin() + cut));
    if (!reader.ok()) continue;  // header itself truncated
    Event e;
    u64 seen = 0;
    while (reader.next(e)) ++seen;
    EXPECT_LE(seen, 40u);
    // A mid-event cut must be reported unless the cut landed exactly on
    // an event boundary.
    if (!reader.error().empty()) {
      EXPECT_NE(reader.error().find("truncated"), std::string::npos) << reader.error();
    }
  }
}

TEST(TraceProperty, BitFlipsNeverCrash) {
  Rng rng(7);
  const TraceHeader header = sample_header();
  std::vector<u8> encoded;
  trace::encode_header(header, encoded);
  Cycle cycle = 0;
  Cycle last = 0;
  for (u32 i = 0; i < 60; ++i) trace::encode_event(random_event(rng, cycle), last, encoded);

  Rng flips(1234);
  for (u32 trial = 0; trial < 200; ++trial) {
    std::vector<u8> mutated = encoded;
    mutated[flips.below(static_cast<u32>(mutated.size()))] ^=
        static_cast<u8>(1u << flips.below(8));
    trace::TraceReader reader(std::move(mutated));
    if (!reader.ok()) continue;
    Event e;
    u64 seen = 0;
    while (reader.next(e) && seen < 10000) ++seen;
    EXPECT_LT(seen, 10000u) << "decoder failed to terminate on corrupt input";
  }
}

TEST(TraceProperty, BitFlipCorpusResyncsOrFailsCleanly) {
  // Seeded multi-bit-flip corpus: every mutated stream must produce
  // either a structured Status error or a successful resync — never a
  // crash, a hang, or an unreported loss. Stronger than BitFlipsNeverCrash
  // above: it drives the recovery path, not just the failure path.
  Rng rng(29);
  const TraceHeader header = sample_header();
  std::vector<u8> encoded;
  trace::encode_header(header, encoded);
  Cycle cycle = 0;
  Cycle last = 0;
  for (u32 i = 0; i < 60; ++i) trace::encode_event(random_event(rng, cycle), last, encoded);

  Rng flips(0xfeedbeef);
  for (u32 trial = 0; trial < 300; ++trial) {
    std::vector<u8> mutated = encoded;
    const u32 num_flips = 1 + flips.below(4);
    for (u32 f = 0; f < num_flips; ++f)
      mutated[flips.below(static_cast<u32>(mutated.size()))] ^=
          static_cast<u8>(1u << flips.below(8));
    trace::TraceReader reader(std::move(mutated));
    if (!reader.ok()) {
      EXPECT_NE(reader.status().code(), StatusCode::kOk) << "trial " << trial;
      EXPECT_FALSE(reader.status().to_string().empty());
      continue;
    }
    Event e;
    u64 seen = 0;
    while (seen < 20000) {
      if (reader.next(e)) {
        ++seen;
        continue;
      }
      if (reader.error().empty()) break;  // clean end of stream
      EXPECT_NE(reader.status().code(), StatusCode::kOk) << "trial " << trial;
      if (!reader.resync()) break;  // unrecoverable: reported, not silent
    }
    EXPECT_LT(seen, 20000u) << "trial " << trial << ": reader failed to terminate";
    if (reader.resyncs() != 0) {
      EXPECT_GT(reader.bytes_skipped(), 0u) << "trial " << trial << ": silent resync";
    }
  }
}

TEST(TraceProperty, BitFlipReplayFailsCleanly) {
  // The same corpus through the full replay engine: a damaged stream must
  // end in ReplayResult{ok=false, structured code} or succeed — the
  // detectors may see garbage events but must never index out of range
  // (replay bounds-checks every identifier) or over-allocate (the
  // kernel-begin footprint cap).
  Rng rng(31);
  const TraceHeader header = sample_header();
  std::vector<u8> encoded;
  trace::encode_header(header, encoded);
  Cycle cycle = 0;
  Cycle last = 0;
  for (u32 i = 0; i < 40; ++i) trace::encode_event(random_event(rng, cycle), last, encoded);

  Rng flips(0xabcd1234);
  for (u32 trial = 0; trial < 120; ++trial) {
    std::vector<u8> mutated = encoded;
    const u32 num_flips = 1 + flips.below(3);
    for (u32 f = 0; f < num_flips; ++f)
      mutated[flips.below(static_cast<u32>(mutated.size()))] ^=
          static_cast<u8>(1u << flips.below(8));
    trace::TraceReader reader(std::move(mutated));
    const trace::ReplayResult result = trace::replay_events(reader, trace::ReplayOptions{});
    if (!result.ok) {
      EXPECT_FALSE(result.error.empty()) << "trial " << trial;
      EXPECT_NE(result.status().code(), StatusCode::kOk) << "trial " << trial;
    }
  }
}

TEST(TraceResync, RecoversAfterDamagedRecord) {
  // Deterministic recovery: clobber one whole record in the middle of a
  // stream of well-formed events and check the reader resynchronizes,
  // loses only a bounded region, and reports exactly what it skipped.
  const TraceHeader header = sample_header();
  std::vector<u8> encoded;
  trace::encode_header(header, encoded);
  std::vector<size_t> starts;
  Cycle last = 0;
  const u32 kEvents = 60;
  for (u32 i = 0; i < kEvents; ++i) {
    Event e;
    e.kind = EventKind::kSharedStore;
    e.cycle = 10 * (i + 1);
    e.sm = i % 8;
    e.block_slot = i % 4;
    e.warp_slot = i % 16;
    e.warp_in_block = i % 4;
    e.pc = 100 + i;
    e.width = 4;
    e.checked = true;
    for (u32 lane = 0; lane < 4; ++lane) e.lanes.push_back({static_cast<u8>(lane),
                                                            0x100u + 4 * lane, false, 0});
    starts.push_back(encoded.size());
    trace::encode_event(e, last, encoded);
  }
  // Stomp the 30th record (and nothing after it) with 0xff bytes.
  const size_t victim = starts[30];
  const size_t victim_end = starts[31];
  for (size_t pos = victim; pos < victim_end; ++pos) encoded[pos] = 0xff;

  trace::TraceReader reader(encoded);
  ASSERT_TRUE(reader.ok()) << reader.error();
  Event e;
  u64 seen = 0;
  u64 rounds = 0;
  while (rounds < 100) {
    if (reader.next(e)) {
      ++seen;
      continue;
    }
    if (reader.error().empty()) break;
    ++rounds;
    if (!reader.resync()) break;
  }
  EXPECT_TRUE(reader.error().empty()) << reader.error();
  EXPECT_GE(reader.resyncs(), 1u);
  EXPECT_GT(reader.bytes_skipped(), 0u);
  // At most a handful of records around the damage are lost.
  EXPECT_GE(seen, kEvents - 5);
  EXPECT_LT(seen, kEvents);
}

TEST(TraceWriterReader, FileRoundTrip) {
  const std::string path = "test_trace_roundtrip.trc";
  const TraceHeader header = sample_header();
  Rng rng(5);
  std::vector<Event> events;
  Cycle cycle = 0;
  for (u32 i = 0; i < 50; ++i) events.push_back(random_event(rng, cycle));
  {
    trace::TraceWriter writer(path);
    ASSERT_TRUE(writer.ok()) << writer.error();
    writer.write_header(header);
    for (const Event& e : events) writer.write_event(e);
    ASSERT_TRUE(writer.finish()) << writer.error();
    EXPECT_EQ(writer.events_written(), events.size());
  }
  trace::TraceReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.header(), header);
  Event back;
  size_t i = 0;
  while (reader.next(back)) {
    ASSERT_LT(i, events.size());
    EXPECT_EQ(back, events[i]) << "event " << i;
    ++i;
  }
  EXPECT_EQ(reader.error(), "");
  EXPECT_EQ(i, events.size());

  // Rewind re-reads the same stream.
  reader.rewind();
  u64 again = 0;
  while (reader.next(back)) ++again;
  EXPECT_EQ(again, events.size());
  std::remove(path.c_str());
}

TEST(TraceWriterReader, MissingFileReportsError) {
  trace::TraceReader reader(std::string("does_not_exist.trc"));
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.error().empty());
}

}  // namespace
}  // namespace haccrg
