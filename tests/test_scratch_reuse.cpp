// Cross-launch reuse: one Gpu instance runs several kernels back to
// back, reusing its device memory, allocator, and any persistent scratch
// the hot-path arenas keep between launches. Every launch must produce
// byte-identical stats to the same kernel run on a fresh Gpu — leftover
// shadow state, race-log contents, or un-reset pooled buffers would all
// surface as a fingerprint mismatch here.
//
// The fresh comparators replay the shared instance's *allocation*
// sequence (prepare both kernels, launch one) so heap layout — and with
// it every device address in the stats — is identical by construction;
// the only remaining difference is the prior kernel's execution.
#include <gtest/gtest.h>

#include <string>

#include "kernels/common.hpp"
#include "sim/gpu.hpp"

namespace haccrg {
namespace {

using kernels::BenchOptions;
using kernels::PreparedKernel;
using kernels::find_benchmark;

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 32 * 1024 * 1024;
  return cfg;
}

rd::HaccrgConfig test_detection() {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  cfg.shared_granularity = 16;
  cfg.global_granularity = 4;
  return cfg;
}

std::string snapshot(const std::string& name, const sim::SimResult& r) {
  EXPECT_TRUE(r.completed) << r.error;
  std::string out;
  out += "benchmark " + name + "\n";
  out += "cycles " + std::to_string(r.cycles) + "\n";
  out += "races.total " + std::to_string(r.races.total()) + "\n";
  out += "races.unique " + std::to_string(r.races.unique()) + "\n";
  out += r.stats.serialize();
  return out;
}

TEST(ScratchReuse, BackToBackKernelsMatchFreshRuns) {
  // Shared instance: prepare both kernels, then launch both in sequence.
  sim::Gpu shared_gpu(test_gpu(), test_detection());
  PreparedKernel k1 = find_benchmark("REDUCE")->prepare(shared_gpu, BenchOptions{});
  PreparedKernel k2 = find_benchmark("PSUM")->prepare(shared_gpu, BenchOptions{});
  const std::string shared_first = snapshot("REDUCE", shared_gpu.launch(k1.launch()));
  const std::string shared_second = snapshot("PSUM", shared_gpu.launch(k2.launch()));

  // Fresh instance, same allocations, REDUCE only.
  {
    sim::Gpu fresh(test_gpu(), test_detection());
    PreparedKernel f1 = find_benchmark("REDUCE")->prepare(fresh, BenchOptions{});
    (void)find_benchmark("PSUM")->prepare(fresh, BenchOptions{});
    EXPECT_EQ(shared_first, snapshot("REDUCE", fresh.launch(f1.launch())));
  }

  // Fresh instance, same allocations, PSUM only: nothing REDUCE's run
  // did on the shared instance may leak into PSUM's stats.
  {
    sim::Gpu fresh(test_gpu(), test_detection());
    (void)find_benchmark("REDUCE")->prepare(fresh, BenchOptions{});
    PreparedKernel f2 = find_benchmark("PSUM")->prepare(fresh, BenchOptions{});
    EXPECT_EQ(shared_second, snapshot("PSUM", fresh.launch(f2.launch())));
  }
}

TEST(ScratchReuse, RelaunchingSameKernelIsIdentical) {
  // REDUCE is data-oblivious (no branches on loaded values) and writes
  // its outputs from unchanged inputs, so relaunching it on the same
  // device memory must reproduce the first run exactly — including the
  // detection stats, which depend on per-launch shadow/race state being
  // rebuilt from scratch.
  sim::Gpu gpu(test_gpu(), test_detection());
  PreparedKernel prep = find_benchmark("REDUCE")->prepare(gpu, BenchOptions{});
  const std::string first = snapshot("REDUCE", gpu.launch(prep.launch()));
  const std::string second = snapshot("REDUCE", gpu.launch(prep.launch()));
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace haccrg
