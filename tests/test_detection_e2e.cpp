// End-to-end race-detection tests: small kernels containing the paper's
// bug patterns (Figures 1, 2, 4) run with HAccRG enabled, checking both
// that real races are reported in the right category and that the
// race-free variants stay silent.
#include <gtest/gtest.h>

#include "isa/builder.hpp"
#include "sim/gpu.hpp"

namespace haccrg {
namespace {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;
using sim::Gpu;
using sim::LaunchConfig;
using sim::SimResult;

arch::GpuConfig small_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 4;
  cfg.device_mem_bytes = 8 * 1024 * 1024;
  return cfg;
}

rd::HaccrgConfig full_detection() {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  cfg.shared_granularity = 4;
  cfg.global_granularity = 4;
  return cfg;
}

/// Kernel: threads write s[tid], then (optionally without a barrier) read
/// the neighbor warp's element s[(tid+32) % n] — the canonical missing-
/// barrier shared-memory race.
SimResult run_neighbor_exchange(bool with_barrier, rd::HaccrgConfig det) {
  Gpu gpu(small_gpu(), det);
  const u32 n = 128;
  const Addr out = gpu.allocator().alloc(n * 4, "out");

  KernelBuilder kb("neighbor");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg pout = kb.param(0);
  Reg saddr = kb.reg();
  kb.mul(saddr, tid, 4u);
  kb.st_shared(saddr, tid);
  if (with_barrier) kb.barrier();
  Reg other = kb.reg();
  kb.add(other, tid, 32u);
  kb.rem(other, other, n);
  kb.mul(other, other, 4u);
  Reg v = kb.reg();
  kb.ld_shared(v, other);
  Reg dst = kb.addr(pout, tid, 4);
  kb.st_global(dst, v);
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 1;
  launch.block_dim = n;
  launch.shared_mem_bytes = n * 4;
  launch.params = {out};
  SimResult r = gpu.launch(launch);
  EXPECT_TRUE(r.completed) << r.error;
  return r;
}

TEST(DetectionE2E, MissingBarrierSharedRace) {
  SimResult racy = run_neighbor_exchange(false, full_detection());
  EXPECT_GT(racy.races.count(rd::MemSpace::kShared), 0u);
  EXPECT_GT(racy.races.count(rd::RaceMechanism::kBarrier), 0u);
}

TEST(DetectionE2E, BarrierOrdersSharedAccesses) {
  SimResult safe = run_neighbor_exchange(true, full_detection());
  EXPECT_TRUE(safe.races.empty()) << safe.races.summary();
}

TEST(DetectionE2E, DisabledDetectionReportsNothing) {
  SimResult racy = run_neighbor_exchange(false, rd::HaccrgConfig{});
  EXPECT_TRUE(racy.races.empty());
}

TEST(DetectionE2E, SharedOnlyConfigIgnoresGlobalRaces) {
  // Cross-block global WAW with only shared detection on: silent.
  rd::HaccrgConfig det;
  det.enable_shared = true;
  Gpu gpu(small_gpu(), det);
  const Addr buf = gpu.allocator().alloc(64 * 4, "buf");

  KernelBuilder kb("waw");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg pbuf = kb.param(0);
  Reg dst = kb.addr(pbuf, tid, 4);  // indexed by tid, not gtid: blocks collide
  kb.st_global(dst, tid);
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 4;
  launch.block_dim = 64;
  launch.params = {buf};
  SimResult r = gpu.launch(launch);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_TRUE(r.races.empty());
}

TEST(DetectionE2E, CrossBlockGlobalWawDetected) {
  Gpu gpu(small_gpu(), full_detection());
  const Addr buf = gpu.allocator().alloc(64 * 4, "buf");

  KernelBuilder kb("waw");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg pbuf = kb.param(0);
  Reg dst = kb.addr(pbuf, tid, 4);
  kb.st_global(dst, tid);
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 4;
  launch.block_dim = 64;
  launch.params = {buf};
  SimResult r = gpu.launch(launch);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_GT(r.races.count(rd::RaceType::kWaw), 0u);
  EXPECT_GT(r.races.count(rd::MemSpace::kGlobal), 0u);
}

/// Figure 4 producer/consumer: block 0's thread writes X then signals via
/// an atomic; block 1 polls the flag and reads X. With a fence between
/// write and signal the read is safe; without it, a fence race.
SimResult run_producer_consumer(bool with_fence) {
  Gpu gpu(small_gpu(), full_detection());
  const Addr x = gpu.allocator().alloc(4, "x");
  const Addr flag = gpu.allocator().alloc(4, "flag");
  gpu.memory().fill(x, 4, 0);
  gpu.memory().fill(flag, 4, 0);

  KernelBuilder kb("prodcons");
  Reg bid = kb.special(isa::SpecialReg::kCtaId);
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg px = kb.param(0);
  Reg pflag = kb.param(1);
  Pred is_producer = kb.pred();
  Pred is_thread0 = kb.pred();
  kb.setp(is_thread0, CmpOp::kEq, tid, 0u);
  kb.setp(is_producer, CmpOp::kEq, bid, 0u);

  kb.if_(is_thread0, [&] {
    kb.if_else(
        is_producer,
        [&] {
          Reg val = kb.imm(42);
          kb.st_global(px, val);
          if (with_fence) kb.memfence();
          Reg one = kb.imm(1);
          Reg old = kb.reg();
          kb.atom_global(old, isa::AtomicOp::kExch, pflag, one);
        },
        [&] {
          // Consumer: poll the flag, then read X.
          Reg seen = kb.reg();
          Pred not_set = kb.pred();
          kb.do_while([&] { kb.ld_global(seen, pflag); },
                      [&] {
                        kb.setp(not_set, CmpOp::kEq, seen, 0u);
                        return not_set;
                      });
          Reg v = kb.reg();
          kb.ld_global(v, px);
          kb.st_global(pflag, v, 4 - 4);  // keep v live: store back to flag
        });
  });
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 2;
  launch.block_dim = 32;
  launch.params = {x, flag};
  Gpu* g = &gpu;
  SimResult r = g->launch(launch);
  EXPECT_TRUE(r.completed) << r.error;
  return r;
}

TEST(DetectionE2E, MissingFenceRaceDetected) {
  SimResult racy = run_producer_consumer(false);
  // The unfenced write to X consumed by the other block must be flagged
  // as a fence (or stale-L1) RAW race.
  EXPECT_GT(racy.races.count(rd::RaceMechanism::kFence) +
                racy.races.count(rd::RaceMechanism::kL1Stale),
            0u)
      << racy.races.summary();
}

TEST(DetectionE2E, FencePublishesUpdate) {
  SimResult safe = run_producer_consumer(true);
  for (const auto& race : safe.races.races()) {
    // X must not be reported once the producer fences. (The polling flag
    // itself is accessed atomically and is never checked.)
    EXPECT_NE(race.mechanism, rd::RaceMechanism::kFence) << race.describe();
  }
}

/// Two threads in different blocks access the same location under
/// different locks (Figure 2a): lockset race. With the same lock: safe.
SimResult run_lock_discipline(bool same_lock) {
  Gpu gpu(small_gpu(), full_detection());
  const Addr locks = gpu.allocator().alloc(2 * 4, "locks");
  const Addr data = gpu.allocator().alloc(4, "data");
  gpu.memory().fill(locks, 8, 0);
  gpu.memory().fill(data, 4, 0);

  KernelBuilder kb("locks");
  Reg bid = kb.special(isa::SpecialReg::kCtaId);
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg plocks = kb.param(0);
  Reg pdata = kb.param(1);
  Pred is0 = kb.pred();
  kb.setp(is0, CmpOp::kEq, tid, 0u);
  Reg lock_index = kb.reg();
  if (same_lock)
    kb.mov(lock_index, 0u);
  else
    kb.mov(lock_index, isa::Operand(bid));
  Reg lock_addr = kb.addr(plocks, lock_index, 4);
  kb.if_(is0, [&] {
    kb.with_lock(lock_addr, [&] {
      Reg v = kb.reg();
      kb.ld_global(v, pdata);
      kb.add(v, v, 1u);
      kb.st_global(pdata, v);
    });
  });
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 2;
  launch.block_dim = 32;
  launch.params = {locks, data};
  SimResult r = gpu.launch(launch);
  EXPECT_TRUE(r.completed) << r.error;
  return r;
}

TEST(DetectionE2E, DifferentLocksRace) {
  SimResult racy = run_lock_discipline(false);
  EXPECT_GT(racy.races.count(rd::RaceMechanism::kLockset), 0u) << racy.races.summary();
}

TEST(DetectionE2E, CommonLockIsSafe) {
  SimResult safe = run_lock_discipline(true);
  EXPECT_EQ(safe.races.count(rd::RaceMechanism::kLockset), 0u) << safe.races.summary();
}

TEST(DetectionE2E, UnprotectedAccessToLockedDataRaces) {
  Gpu gpu(small_gpu(), full_detection());
  const Addr lock = gpu.allocator().alloc(4, "lock");
  const Addr data = gpu.allocator().alloc(4, "data");
  gpu.memory().fill(lock, 4, 0);
  gpu.memory().fill(data, 4, 0);

  KernelBuilder kb("mixed");
  Reg bid = kb.special(isa::SpecialReg::kCtaId);
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg plock = kb.param(0);
  Reg pdata = kb.param(1);
  Pred is0 = kb.pred();
  kb.setp(is0, CmpOp::kEq, tid, 0u);
  Pred protected_block = kb.pred();
  kb.setp(protected_block, CmpOp::kEq, bid, 0u);
  kb.if_(is0, [&] {
    kb.if_else(
        protected_block,
        [&] {
          kb.with_lock(plock, [&] {
            Reg v = kb.reg();
            kb.ld_global(v, pdata);
            kb.add(v, v, 1u);
            kb.st_global(pdata, v);
          });
        },
        [&] {
          // Unprotected write to the same data.
          Reg v = kb.imm(99);
          kb.st_global(pdata, v);
        });
  });
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 2;
  launch.block_dim = 32;
  launch.params = {lock, data};
  SimResult r = gpu.launch(launch);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_GT(r.races.count(rd::RaceMechanism::kLockset) + r.races.count(rd::RaceMechanism::kBarrier),
            0u)
      << r.races.summary();
}

TEST(DetectionE2E, IntraWarpWawCaughtBeforeIssue) {
  Gpu gpu(small_gpu(), full_detection());
  const Addr buf = gpu.allocator().alloc(64 * 4, "buf");

  KernelBuilder kb("intrawaw");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg pbuf = kb.param(0);
  Reg half = kb.reg();
  kb.shr(half, tid, 1u);  // lanes 2k and 2k+1 write the same word
  Reg dst = kb.addr(pbuf, half, 4);
  kb.st_global(dst, tid);
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 1;
  launch.block_dim = 32;
  launch.params = {buf};
  SimResult r = gpu.launch(launch);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_GT(r.races.count(rd::RaceMechanism::kIntraWarpWaw), 0u) << r.races.summary();
}

TEST(DetectionE2E, BarrierEpochSeparatesGlobalAccessesWithinBlock) {
  // Same block, same location, write then (after a barrier) read by a
  // different warp: the sync-ID check must treat them as ordered.
  Gpu gpu(small_gpu(), full_detection());
  const Addr buf = gpu.allocator().alloc(64 * 4, "buf");
  const Addr out = gpu.allocator().alloc(64 * 4, "out");

  KernelBuilder kb("epochs");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg pbuf = kb.param(0);
  Reg pout = kb.param(1);
  Reg dst = kb.addr(pbuf, tid, 4);
  kb.st_global(dst, tid);
  kb.barrier();
  // Post-barrier: read another warp's pre-barrier write (ordered by the
  // sync ID) and store to a private output slot.
  Reg other = kb.reg();
  kb.add(other, tid, 32u);
  kb.rem(other, other, 64u);
  Reg src = kb.addr(pbuf, other, 4);
  Reg v = kb.reg();
  kb.ld_global(v, src);
  kb.add(v, v, 1u);
  Reg dst2 = kb.addr(pout, tid, 4);
  kb.st_global(dst2, v);
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 1;
  launch.block_dim = 64;
  launch.params = {buf, out};
  SimResult r = gpu.launch(launch);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_TRUE(r.races.empty()) << r.races.summary();
}

}  // namespace
}  // namespace haccrg
