// The ten CUDA benchmarks: functional correctness (host reference
// verification) and the paper's Section VI-A effectiveness findings —
// races in SCAN/KMEANS (multi-block bugs) and OFFT (address bug), no
// global-memory races elsewhere, and silence in single-block mode.
#include <gtest/gtest.h>

#include "kernels/common.hpp"

namespace haccrg {
namespace {

using kernels::BenchOptions;
using kernels::PreparedKernel;
using kernels::all_benchmarks;
using kernels::find_benchmark;

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 16 * 1024 * 1024;
  return cfg;
}

rd::HaccrgConfig word_detection() {
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.enable_global = true;
  det.shared_granularity = 4;
  det.global_granularity = 4;
  return det;
}

class BenchmarkCorrectness : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkCorrectness, ProducesReferenceOutput) {
  const auto* info = find_benchmark(GetParam());
  ASSERT_NE(info, nullptr);
  sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
  PreparedKernel prep = info->prepare(gpu, BenchOptions{});
  sim::SimResult result = gpu.launch(prep.launch());
  ASSERT_TRUE(result.completed) << result.error;
  ASSERT_TRUE(prep.verify != nullptr);
  std::string msg;
  EXPECT_TRUE(prep.verify(gpu.memory(), &msg)) << msg;
  EXPECT_GT(result.warp_instructions, 0u);
}

TEST_P(BenchmarkCorrectness, CorrectUnderFullDetection) {
  // Detection must never change architectural results.
  const auto* info = find_benchmark(GetParam());
  ASSERT_NE(info, nullptr);
  sim::Gpu gpu(test_gpu(), word_detection());
  PreparedKernel prep = info->prepare(gpu, BenchOptions{});
  sim::SimResult result = gpu.launch(prep.launch());
  ASSERT_TRUE(result.completed) << result.error;
  std::string msg;
  EXPECT_TRUE(prep.verify(gpu.memory(), &msg)) << msg;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkCorrectness,
                         ::testing::Values("MCARLO", "SCAN", "FWALSH", "HIST", "SORTNW", "REDUCE",
                                           "PSUM", "OFFT", "KMEANS", "HASH"));

struct RaceExpectation {
  std::string name;
  bool expect_global_race;
};

class BenchmarkRaces : public ::testing::TestWithParam<RaceExpectation> {};

TEST_P(BenchmarkRaces, GlobalRacesMatchPaper) {
  const auto& expect = GetParam();
  const auto* info = find_benchmark(expect.name);
  ASSERT_NE(info, nullptr);
  sim::Gpu gpu(test_gpu(), word_detection());
  PreparedKernel prep = info->prepare(gpu, BenchOptions{});
  sim::SimResult result = gpu.launch(prep.launch());
  ASSERT_TRUE(result.completed) << result.error;
  const u64 global_races = result.races.count(rd::MemSpace::kGlobal);
  if (expect.expect_global_race) {
    EXPECT_GT(global_races, 0u) << expect.name;
  } else {
    EXPECT_EQ(global_races, 0u) << expect.name << ": " << result.races.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paper, BenchmarkRaces,
    ::testing::Values(RaceExpectation{"MCARLO", false}, RaceExpectation{"SCAN", true},
                      RaceExpectation{"FWALSH", false}, RaceExpectation{"HIST", false},
                      RaceExpectation{"SORTNW", false}, RaceExpectation{"REDUCE", false},
                      RaceExpectation{"PSUM", false}, RaceExpectation{"OFFT", true},
                      RaceExpectation{"KMEANS", true}, RaceExpectation{"HASH", false}),
    [](const ::testing::TestParamInfo<RaceExpectation>& info) { return info.param.name; });

TEST(BenchmarkRacesSingleBlock, ScanIsCleanWithOneBlock) {
  const auto* info = find_benchmark("SCAN");
  sim::Gpu gpu(test_gpu(), word_detection());
  BenchOptions opts;
  opts.single_block = true;
  PreparedKernel prep = info->prepare(gpu, opts);
  sim::SimResult result = gpu.launch(prep.launch());
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(result.races.count(rd::MemSpace::kGlobal), 0u) << result.races.summary();
}

TEST(BenchmarkRacesSingleBlock, KmeansIsCleanWithOneBlock) {
  const auto* info = find_benchmark("KMEANS");
  sim::Gpu gpu(test_gpu(), word_detection());
  BenchOptions opts;
  opts.single_block = true;
  PreparedKernel prep = info->prepare(gpu, opts);
  sim::SimResult result = gpu.launch(prep.launch());
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(result.races.count(rd::MemSpace::kGlobal), 0u) << result.races.summary();
}

TEST(BenchmarkMeta, RegistryIsComplete) {
  EXPECT_EQ(all_benchmarks().size(), 10u);
  u32 barriers = 0, cross = 0, fences = 0, critical = 0;
  for (const auto& info : all_benchmarks()) {
    barriers += info.sites.barriers;
    cross += info.sites.cross_block;
    fences += info.sites.fences;
    critical += info.sites.critical;
  }
  // The paper's 41 injected races: 23 + 13 + 3 + 2.
  EXPECT_EQ(barriers, 23u);
  EXPECT_EQ(cross, 13u);
  EXPECT_EQ(fences, 3u);
  EXPECT_EQ(critical, 2u);
}

}  // namespace
}  // namespace haccrg
