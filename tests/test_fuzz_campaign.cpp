// End-to-end fuzz campaign smoke: a seeded batch of generated kernels
// runs through every detector with zero oracle violations, the
// violation/class predicates behave, and the FUZZ registry entry is
// reachable by name without appearing in the paper suites.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "fuzz/campaign.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/spec.hpp"
#include "kernels/common.hpp"
#include "sim/gpu.hpp"

namespace haccrg::fuzz {
namespace {

CampaignConfig fast_config() {
  CampaignConfig config;
  // No scratch dir: replay checks (the only filesystem users) are
  // exercised by the CLI smoke gate; keep the unit test hermetic.
  config.scratch_dir = "";
  config.check_replay = false;
  config.fault_every = 4;
  return config;
}

TEST(FuzzCampaign, SeededBatchHasZeroViolations) {
  const CampaignSummary summary = run_campaign(1, 12, FuzzConfig{}, fast_config());
  EXPECT_EQ(summary.cases, 12u);
  for (const FailedCase& failed : summary.failed) {
    for (const std::string& v : failed.violations)
      ADD_FAILURE() << failed.spec.name << ": " << v;
  }
  EXPECT_TRUE(summary.ok());
}

TEST(FuzzCampaign, RacyOnlyBatchCoversDetectionClasses) {
  FuzzConfig racy;
  racy.safe_fragments = false;
  const CampaignSummary summary = run_campaign(100, 10, racy, fast_config());
  EXPECT_TRUE(summary.ok());
  u64 total_pairs = 0;
  for (u32 c = 0; c < kNumOracleClasses; ++c) total_pairs += summary.class_pairs[c];
  EXPECT_GT(total_pairs, 0u);
}

TEST(FuzzCampaign, ViolationPredicateIsFalseOnAPassingSpec) {
  const KernelSpec spec = spec_from_seed(1);
  EXPECT_FALSE(violation_predicate(fast_config())(spec));
}

TEST(FuzzCampaign, ClassPredicateSeesTheSharedEpochRace) {
  KernelSpec spec;
  FragmentSpec frag;
  frag.kind = FragmentKind::kSharedWaw;
  spec.fragments.push_back(frag);
  EXPECT_TRUE(detects_class_predicate(OracleClass::kSharedEpoch)(spec));
  EXPECT_FALSE(detects_class_predicate(OracleClass::kLockset)(spec));
}

TEST(FuzzCampaign, FuzzRegistryEntryIsNameOnly) {
  const kernels::BenchmarkInfo* info = kernels::find_benchmark("FUZZ");
  ASSERT_NE(info, nullptr);
  for (const kernels::BenchmarkInfo& listed : kernels::all_benchmarks())
    EXPECT_NE(listed.name, "FUZZ") << "FUZZ must not join the paper suites";

  // The registry entry reproduces the generator's kernel for the same seed.
  arch::GpuConfig gc;
  rd::HaccrgConfig det;
  sim::Gpu gpu(gc, det);
  kernels::BenchOptions opts;
  opts.seed = 42;
  kernels::PreparedKernel prep = info->prepare(gpu, opts);
  const GeneratedKernel direct = generate(spec_from_seed(42));
  EXPECT_EQ(prep.program.disassemble(), direct.program.disassemble());
  EXPECT_EQ(prep.grid_dim, direct.grid_dim);
  EXPECT_EQ(prep.block_dim, direct.block_dim);
  EXPECT_EQ(prep.shared_mem_bytes, direct.shared_mem_bytes);
}

}  // namespace
}  // namespace haccrg::fuzz
