// Unit tests for the ISA layer: kernel builder, program validation, and
// the disassembler.
#include <gtest/gtest.h>

#include "isa/builder.hpp"

namespace haccrg {
namespace {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Opcode;
using isa::Pred;
using isa::Program;
using isa::Reg;

TEST(Builder, EmptyKernelGetsImplicitExit) {
  KernelBuilder kb("empty");
  Program prog = kb.build();
  ASSERT_EQ(prog.size(), 1u);
  EXPECT_EQ(prog.at(0).op, Opcode::kExit);
  EXPECT_EQ(prog.validate(), "");
}

TEST(Builder, RegisterAllocationIsLinear) {
  KernelBuilder kb("regs");
  Reg a = kb.reg();
  Reg b = kb.reg();
  EXPECT_EQ(a.idx, 0);
  EXPECT_EQ(b.idx, 1);
  Reg c = kb.imm(5);
  EXPECT_EQ(c.idx, 2);
  EXPECT_EQ(kb.regs_used(), 3u);
}

TEST(Builder, ImmediateOperandsEncode) {
  KernelBuilder kb("imm");
  Reg a = kb.reg();
  kb.add(a, a, 42u);
  Program prog = kb.build();
  EXPECT_EQ(prog.at(0).op, Opcode::kAdd);
  EXPECT_TRUE(prog.at(0).src1_is_imm);
  EXPECT_EQ(prog.at(0).imm, 42u);
}

TEST(Builder, IfElseEmitsBalancedScopes) {
  KernelBuilder kb("ifelse");
  Reg a = kb.imm(0);
  Pred p = kb.pred();
  kb.setp(p, CmpOp::kEq, a, 0u);
  kb.if_else(p, [&] { kb.mov(a, 1u); }, [&] { kb.mov(a, 2u); });
  Program prog = kb.build();
  EXPECT_EQ(prog.validate(), "");
  u32 ifs = prog.count_if([](const isa::Instr& i) { return i.op == Opcode::kIf; });
  u32 elses = prog.count_if([](const isa::Instr& i) { return i.op == Opcode::kElse; });
  u32 endifs = prog.count_if([](const isa::Instr& i) { return i.op == Opcode::kEndIf; });
  EXPECT_EQ(ifs, 1u);
  EXPECT_EQ(elses, 1u);
  EXPECT_EQ(endifs, 1u);
}

TEST(Builder, WhileLoopJumpTargetsAreConsistent) {
  KernelBuilder kb("loop");
  Reg i = kb.imm(0);
  Pred p = kb.pred();
  kb.while_(
      [&] {
        kb.setp(p, CmpOp::kLtU, i, 10u);
        return p;
      },
      [&] { kb.add(i, i, 1u); });
  Program prog = kb.build();
  EXPECT_EQ(prog.validate(), "");

  // Find the break and verify it targets the loop end.
  u32 brk_pc = ~0u, end_pc = ~0u, jump_pc = ~0u;
  for (u32 pc = 0; pc < prog.size(); ++pc) {
    if (prog.at(pc).op == Opcode::kBreakIfNot) brk_pc = pc;
    if (prog.at(pc).op == Opcode::kLoopEnd) end_pc = pc;
    if (prog.at(pc).op == Opcode::kJump) jump_pc = pc;
  }
  ASSERT_NE(brk_pc, ~0u);
  ASSERT_NE(end_pc, ~0u);
  ASSERT_NE(jump_pc, ~0u);
  EXPECT_EQ(prog.at(brk_pc).imm, end_pc);
  EXPECT_LT(prog.at(jump_pc).imm, brk_pc);  // back-edge to the condition
}

TEST(Builder, NestedLoopsValidate) {
  KernelBuilder kb("nested");
  Reg i = kb.reg();
  Reg j = kb.reg();
  Reg acc = kb.imm(0);
  kb.for_range(i, 0u, 4u, 1u,
               [&] { kb.for_range(j, 0u, 4u, 1u, [&] { kb.add(acc, acc, 1u); }); });
  Program prog = kb.build();
  EXPECT_EQ(prog.validate(), "");
}

TEST(Builder, MemoryEncodings) {
  KernelBuilder kb("mem");
  Reg addr = kb.imm(0x100);
  Reg v = kb.reg();
  kb.ld_global(v, addr, 8, 1);
  kb.st_shared(addr, v, 4, 4);
  Program prog = kb.build();
  const isa::Instr& ld = prog.at(1);
  EXPECT_EQ(ld.op, Opcode::kLdGlobal);
  EXPECT_EQ(ld.imm, 8u);
  EXPECT_EQ(ld.width(), 1u);
  const isa::Instr& st = prog.at(2);
  EXPECT_EQ(st.op, Opcode::kStShared);
  EXPECT_EQ(st.imm, 4u);
  EXPECT_EQ(st.width(), 4u);
}

TEST(Builder, AtomicCasEncodesCompareRegister) {
  KernelBuilder kb("cas");
  Reg addr = kb.imm(0);
  Reg cmp = kb.imm(0);
  Reg val = kb.imm(1);
  Reg old = kb.reg();
  kb.atom_global_cas(old, addr, cmp, val);
  Program prog = kb.build();
  const isa::Instr& cas = prog.at(3);
  EXPECT_EQ(cas.op, Opcode::kAtomGlobal);
  EXPECT_EQ(cas.atomic(), isa::AtomicOp::kCas);
  EXPECT_EQ(cas.src2, cmp.idx);
  EXPECT_EQ(cas.src1, val.idx);
}

TEST(Builder, WithLockEmitsMarkers) {
  KernelBuilder kb("lock");
  Reg lock = kb.imm(0x40);
  kb.with_lock(lock, [&] {});
  Program prog = kb.build();
  EXPECT_EQ(prog.validate(), "");
  EXPECT_EQ(prog.count_if([](const isa::Instr& i) { return i.op == Opcode::kLockAcqMark; }), 1u);
  EXPECT_EQ(prog.count_if([](const isa::Instr& i) { return i.op == Opcode::kLockRelMark; }), 1u);
  EXPECT_EQ(prog.count_if([](const isa::Instr& i) { return i.op == Opcode::kMemBar; }), 1u);
}

TEST(Program, ValidateRejectsBadJump) {
  std::vector<isa::Instr> code;
  code.push_back({.op = Opcode::kJump, .imm = 99});
  code.push_back({.op = Opcode::kExit});
  Program prog("bad", std::move(code), 1, 0);
  EXPECT_NE(prog.validate(), "");
}

TEST(Program, ValidateRejectsJumpPastFinalExit) {
  // pc 2 is past the final kExit: a warp taking the branch would run off
  // the instruction that retires it.
  std::vector<isa::Instr> code;
  code.push_back({.op = Opcode::kJump, .imm = 2});
  code.push_back({.op = Opcode::kExit});
  code.push_back({.op = Opcode::kNop});
  Program prog("bad", std::move(code), 1, 0);
  EXPECT_NE(prog.validate(), "");
}

TEST(Program, ValidateRejectsSetpPredOutOfRange) {
  std::vector<isa::Instr> code;
  isa::Instr setp;
  setp.op = Opcode::kSetp;
  setp.dst = isa::kMaxPreds;  // predicate index, not a register
  code.push_back(setp);
  code.push_back({.op = Opcode::kExit});
  Program prog("bad", std::move(code), 1, 0);
  EXPECT_NE(prog.validate(), "");
}

TEST(Program, ValidateRejectsSelPredOutOfRange) {
  std::vector<isa::Instr> code;
  isa::Instr sel;
  sel.op = Opcode::kSel;
  sel.aux = isa::kMaxPreds;
  code.push_back(sel);
  code.push_back({.op = Opcode::kExit});
  Program prog("bad", std::move(code), 1, 0);
  EXPECT_NE(prog.validate(), "");
}

TEST(Program, ValidateRejectsIfPredOutOfRange) {
  std::vector<isa::Instr> code;
  isa::Instr iff;
  iff.op = Opcode::kIf;
  iff.aux = isa::kMaxPreds;
  code.push_back(iff);
  code.push_back({.op = Opcode::kEndIf});
  code.push_back({.op = Opcode::kExit});
  Program prog("bad", std::move(code), 1, 0);
  EXPECT_NE(prog.validate(), "");
}

TEST(Program, ValidateRejectsBreakPredOutOfRange) {
  for (const Opcode op : {Opcode::kBreakIf, Opcode::kBreakIfNot}) {
    std::vector<isa::Instr> code;
    isa::Instr brk;
    brk.op = op;
    brk.aux = isa::kMaxPreds;
    brk.imm = 1;
    code.push_back(brk);
    code.push_back({.op = Opcode::kExit});
    Program prog("bad", std::move(code), 1, 0);
    EXPECT_NE(prog.validate(), "") << isa::opcode_name(op);
  }
}

TEST(Program, ValidateRejectsUnbalancedScopes) {
  std::vector<isa::Instr> code;
  code.push_back({.op = Opcode::kIf});
  code.push_back({.op = Opcode::kExit});
  Program prog("bad", std::move(code), 1, 0);
  EXPECT_NE(prog.validate(), "");
}

TEST(Program, ValidateRejectsBadWidth) {
  std::vector<isa::Instr> code;
  isa::Instr ld;
  ld.op = Opcode::kLdGlobal;
  ld.aux = 3;  // only 1 and 4 are legal
  code.push_back(ld);
  code.push_back({.op = Opcode::kExit});
  Program prog("bad", std::move(code), 1, 0);
  EXPECT_NE(prog.validate(), "");
}

TEST(Program, DisassemblyMentionsEveryOpcode) {
  KernelBuilder kb("disasm");
  Reg a = kb.imm(1);
  Reg b = kb.reg();
  kb.add(b, a, a);
  kb.fadd(b, b, a);
  Pred p = kb.pred();
  kb.setp(p, CmpOp::kLtU, b, 10u);
  kb.if_(p, [&] { kb.barrier(); });
  kb.ld_global(b, a);
  kb.st_global(a, b);
  Program prog = kb.build();
  const std::string text = prog.disassemble();
  for (const char* token : {"mov", "add", "fadd", "setp.lt.u", "if", "bar.sync", "ld.global",
                            "st.global", "exit"}) {
    EXPECT_NE(text.find(token), std::string::npos) << token;
  }
}

}  // namespace
}  // namespace haccrg
