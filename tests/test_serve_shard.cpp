// Sharded-replay determinism: address-sharded parallel replay must
// produce byte-identical race reports to serial replay for any worker
// count. This is the serving subsystem's core correctness claim (see
// DESIGN.md "Serving architecture"): each granule has exactly one owner
// shard, the owner executes exactly the serial per-granule check
// sequence, and replay_sharded merges the disjoint per-shard sets in
// shard order. Covered here over every registry kernel and the full
// 41-case injection campaign, for worker counts {1, 2, 8}, plus the
// replay-arena clear-don't-free path (reused contexts must not leak
// state between kernels or jobs).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "kernels/common.hpp"
#include "kernels/injection.hpp"
#include "sim/gpu.hpp"
#include "trace/replay.hpp"

namespace haccrg {
namespace {

using kernels::BenchOptions;
using kernels::PreparedKernel;
using kernels::find_benchmark;

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 32 * 1024 * 1024;
  return cfg;
}

rd::HaccrgConfig detection_combined() {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  cfg.shared_granularity = 16;
  cfg.global_granularity = 4;
  return cfg;
}

/// Record `name` under `opts` and decode the whole trace.
void record_decoded(const std::string& name, const BenchOptions& opts, const std::string& tag,
                    trace::DecodedTrace& out) {
  const std::string path = "test_shard_" + tag + ".trc";
  {
    sim::SimConfig sim_cfg;
    sim_cfg.trace_path = path;
    sim::Gpu gpu(test_gpu(), detection_combined(), sim_cfg);
    gpu.set_trace_label(name);
    PreparedKernel prep = find_benchmark(name)->prepare(gpu, opts);
    const sim::SimResult live = gpu.launch(prep.launch());
    ASSERT_TRUE(live.completed) << tag << ": " << live.error;
  }
  trace::TraceReader reader(path);
  const Status decode = trace::decode_trace(reader, out);
  std::remove(path.c_str());
  ASSERT_TRUE(decode.ok()) << tag << ": " << decode.message();
}

/// The byte-level report: every race identity line, in canonical order,
/// plus the check counters the serving report also carries.
std::vector<std::string> report_lines(const trace::ReplayResult& result) {
  std::vector<std::string> lines;
  for (const trace::RaceKey& key : result.race_set()) lines.push_back(trace::race_key_line(key));
  for (const trace::KernelReplay& k : result.kernels) {
    lines.push_back("kernel " + k.label + " unique=" + std::to_string(k.races.unique()) +
                    " shared_checks=" + std::to_string(k.shared_checks) +
                    " global_checks=" + std::to_string(k.global_checks));
  }
  return lines;
}

void expect_sharded_identical(const trace::DecodedTrace& decoded, const std::string& tag,
                              trace::ReplayArena* arena = nullptr) {
  trace::ReplayOptions opts;
  opts.arena = arena;
  const trace::ReplayResult serial = trace::replay_sharded(decoded, 1, opts);
  ASSERT_TRUE(serial.ok) << tag << ": " << serial.error;
  const std::vector<std::string> want = report_lines(serial);
  for (u32 workers : {2u, 8u}) {
    const trace::ReplayResult sharded = trace::replay_sharded(decoded, workers, opts);
    ASSERT_TRUE(sharded.ok) << tag << " w=" << workers << ": " << sharded.error;
    EXPECT_EQ(report_lines(sharded), want)
        << tag << ": sharded replay with " << workers << " workers diverged from serial";
  }
}

class ShardedReplayAllKernels : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardedReplayAllKernels, ByteIdenticalToSerial) {
  trace::DecodedTrace decoded;
  record_decoded(GetParam(), BenchOptions{}, GetParam(), decoded);
  if (::testing::Test::HasFatalFailure()) return;
  expect_sharded_identical(decoded, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Registry, ShardedReplayAllKernels,
                         ::testing::Values("MCARLO", "SCAN", "FWALSH", "HIST", "SORTNW", "REDUCE",
                                           "PSUM", "OFFT", "KMEANS", "HASH"));

TEST(ShardedReplayInjection, FullCampaignByteIdentical) {
  const auto cases = kernels::all_injection_cases();
  ASSERT_EQ(cases.size(), 41u);
  for (size_t i = 0; i < cases.size(); ++i) {
    BenchOptions opts;
    opts.injection = cases[i].injection;
    trace::DecodedTrace decoded;
    record_decoded(cases[i].benchmark, opts, "inj" + std::to_string(i), decoded);
    if (::testing::Test::HasFatalFailure()) return;
    expect_sharded_identical(decoded, cases[i].label());
    if (::testing::Test::HasFailure()) return;  // one diagnosis is enough
  }
}

TEST(ShardedReplayArena, ReusedContextsMatchFreshOnes) {
  trace::DecodedTrace reduce;
  trace::DecodedTrace hist;
  record_decoded("REDUCE", BenchOptions{}, "arena_reduce", reduce);
  record_decoded("HIST", BenchOptions{}, "arena_hist", hist);
  if (::testing::Test::HasFatalFailure()) return;

  trace::ReplayArena arena;
  // Interleave two different kernels through the same arena, repeatedly:
  // a clear-don't-free bug (leaked shadow state, stale ID registers)
  // shows up as a report diff against the arena-less baseline.
  for (int round = 0; round < 3; ++round) {
    expect_sharded_identical(reduce, "arena REDUCE round " + std::to_string(round), &arena);
    expect_sharded_identical(hist, "arena HIST round " + std::to_string(round), &arena);
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_GT(arena.reuses(), 0u) << "arena never reused a context — reset_for always refused?";
  EXPECT_GT(arena.builds(), 0u);
}

}  // namespace
}  // namespace haccrg
