// Unit tests for the dual-translation TLB models (Section IV-B).
#include <gtest/gtest.h>

#include "mem/tlb.hpp"

namespace haccrg {
namespace {

using mem::DualTlb;
using mem::TlbMode;

TEST(DualTlb, HitsAfterFirstTouch) {
  DualTlb tlb(TlbMode::kSeparateShadowTlb, 16, 4, 8);
  tlb.access(0x1000, 0x100000, true);
  tlb.access(0x1000, 0x100000, true);
  EXPECT_EQ(tlb.stats().app_accesses, 2u);
  EXPECT_EQ(tlb.stats().app_hits, 1u);
  EXPECT_EQ(tlb.stats().shadow_hits, 1u);
}

TEST(DualTlb, AppAndShadowPagesDoNotAliasInUnifiedMode) {
  // Same page number as app and shadow page: the appended bit keeps them
  // distinct entries.
  DualTlb tlb(TlbMode::kAppendedBit, 16, 4, 0);
  tlb.access(0x1000, 0x1000, true);
  tlb.access(0x1000, 0x1000, true);
  EXPECT_EQ(tlb.stats().app_hits, 1u);
  EXPECT_EQ(tlb.stats().shadow_hits, 1u);
}

TEST(DualTlb, ShadowTranslationsConsumeUnifiedCapacity) {
  // Working set of 8 app pages in an 8-entry fully-assoc TLB: fits alone,
  // thrashes when shadow pages double the demand in unified mode.
  auto run = [](TlbMode mode) {
    DualTlb tlb(mode, 8, 8, 8);
    for (int rep = 0; rep < 50; ++rep) {
      for (Addr page = 0; page < 8; ++page) {
        tlb.access(page * 4096, 0x800000 + page * 4096, true);
      }
    }
    return tlb.stats().app_hit_rate();
  };
  const f64 unified = run(TlbMode::kAppendedBit);
  const f64 separate = run(TlbMode::kSeparateShadowTlb);
  EXPECT_GT(separate, 0.9);
  EXPECT_LT(unified, separate);
}

TEST(DualTlb, ShadowDisabledAccessesSkipShadowStats) {
  DualTlb tlb(TlbMode::kSeparateShadowTlb, 16, 4, 8);
  tlb.access(0x1000, 0x100000, false);
  EXPECT_EQ(tlb.stats().shadow_accesses, 0u);
  EXPECT_EQ(tlb.stats().app_accesses, 1u);
}

TEST(DualTlb, DescribeNamesTheScheme) {
  DualTlb a(TlbMode::kAppendedBit, 16, 4, 0);
  DualTlb b(TlbMode::kSeparateShadowTlb, 16, 4, 8);
  EXPECT_NE(a.describe().find("appended-bit"), std::string::npos);
  EXPECT_NE(b.describe().find("shadow TLB"), std::string::npos);
}

}  // namespace
}  // namespace haccrg
