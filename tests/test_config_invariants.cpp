// Cross-configuration invariants: knobs that must change timing but
// never architectural results or detection verdicts.
#include <gtest/gtest.h>

#include "kernels/common.hpp"

namespace haccrg {
namespace {

using kernels::BenchOptions;
using kernels::PreparedKernel;
using kernels::find_benchmark;

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 16 * 1024 * 1024;
  return cfg;
}

sim::SimResult run(const std::string& name, const rd::HaccrgConfig& det) {
  sim::Gpu gpu(test_gpu(), det);
  PreparedKernel prep = find_benchmark(name)->prepare(gpu, BenchOptions{});
  sim::SimResult r = gpu.launch(prep.launch());
  EXPECT_TRUE(r.completed) << r.error;
  if (prep.verify) {
    std::string msg;
    EXPECT_TRUE(prep.verify(gpu.memory(), &msg)) << name << ": " << msg;
  }
  return r;
}

class PlacementInvariance : public ::testing::TestWithParam<std::string> {};

TEST_P(PlacementInvariance, SwSharedShadowAgreesOnRacePresence) {
  // Placement changes timing, which can reorder scheduling-dependent
  // races (different granules/classifications); the verdict — whether a
  // space has races at all — must not change.
  rd::HaccrgConfig hw;
  hw.enable_shared = true;
  hw.enable_global = true;
  rd::HaccrgConfig sw = hw;
  sw.shared_shadow = rd::SharedShadowPlacement::kGlobalMemory;

  sim::SimResult hw_run = run(GetParam(), hw);
  sim::SimResult sw_run = run(GetParam(), sw);
  EXPECT_EQ(hw_run.races.count(rd::MemSpace::kShared) > 0,
            sw_run.races.count(rd::MemSpace::kShared) > 0)
      << GetParam();
  EXPECT_EQ(hw_run.races.count(rd::MemSpace::kGlobal) > 0,
            sw_run.races.count(rd::MemSpace::kGlobal) > 0)
      << GetParam();
}

TEST_P(PlacementInvariance, DetectionDoesNotChangeInstructionCounts) {
  // Holds for kernels without timing-dependent retry loops (HASH's CAS
  // spin legitimately varies with timing, so it is not in this list).
  sim::SimResult off = run(GetParam(), rd::HaccrgConfig{});
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.enable_global = true;
  sim::SimResult on = run(GetParam(), det);
  if (GetParam() != "HASH") {
    EXPECT_EQ(off.warp_instructions, on.warp_instructions) << GetParam();
    EXPECT_EQ(off.lane_instructions, on.lane_instructions) << GetParam();
  }
  EXPECT_EQ(off.barriers, on.barriers) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Suite, PlacementInvariance,
                         ::testing::Values("SCAN", "HIST", "REDUCE", "OFFT", "HASH"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(DeterminismInvariant, RepeatedRunsAreBitIdentical) {
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.enable_global = true;
  sim::SimResult a = run("REDUCE", det);
  sim::SimResult b = run("REDUCE", det);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.races.unique(), b.races.unique());
  EXPECT_EQ(a.races.total(), b.races.total());
  EXPECT_EQ(a.stats.get("icnt.request_packets"), b.stats.get("icnt.request_packets"));
}

TEST(DescribeStrings, AreInformative) {
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.shared_shadow = rd::SharedShadowPlacement::kGlobalMemory;
  const std::string text = det.describe();
  EXPECT_NE(text.find("shared=on"), std::string::npos);
  EXPECT_NE(text.find("global-mem"), std::string::npos);

  arch::GpuConfig gpu;
  EXPECT_NE(gpu.describe().find("Round Robin"), std::string::npos);
}

}  // namespace
}  // namespace haccrg
