#!/usr/bin/env bash
# Exit-code and round-trip contract test for the haccrg-served CLI.
#
#   0 success    1 job/request failed    2 usage    3 transport/io error
#
# Covers the `once` in-process path, a full submit/status/result/stats/
# shutdown round trip against a socket daemon, and the error paths
# (missing files, dead sockets, bad arguments). Every failure must be a
# clean diagnosed exit — no aborts, no uncaught throws, and a non-empty
# stderr diagnosis on every non-zero path.
set -u

BIN=$1        # haccrg-served
TRACE_BIN=$2  # haccrg-trace (records the input trace)
WORK=${3:-$(mktemp -d)}
# The test runs from inside $WORK, so relative binary paths (as
# scripts/check.sh passes) must be anchored to the caller's cwd first.
case "$BIN" in /*) ;; *) BIN="$PWD/$BIN" ;; esac
case "$TRACE_BIN" in /*) ;; *) TRACE_BIN="$PWD/$TRACE_BIN" ;; esac
mkdir -p "$WORK"
cd "$WORK" || exit 99

fails=0

expect_exit() {
  local want=$1
  shift
  "$@" >cli_stdout.txt 2>cli_stderr.txt
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: expected exit $want, got $got: $*"
    sed 's/^/  stderr: /' cli_stderr.txt
    fails=$((fails + 1))
    return 1
  fi
  if [ "$want" -ne 0 ] && [ ! -s cli_stderr.txt ]; then
    echo "FAIL: exit $want with empty stderr: $*"
    fails=$((fails + 1))
    return 1
  fi
  return 0
}

expect_stdout() {
  if ! grep -q "$1" cli_stdout.txt; then
    echo "FAIL: stdout missing '$1' after: $2"
    sed 's/^/  stdout: /' cli_stdout.txt
    fails=$((fails + 1))
  fi
}

# --- Usage errors (2) --------------------------------------------------------
expect_exit 2 "$BIN"
expect_exit 2 "$BIN" frobnicate
expect_exit 2 "$BIN" serve
expect_exit 2 "$BIN" serve --socket sock.s --stdio
expect_exit 2 "$BIN" once
expect_exit 2 "$BIN" once --trace x.trc --bogus
expect_exit 2 "$BIN" client
expect_exit 2 "$BIN" client --socket sock.s frobnicate
expect_exit 2 "$BIN" client --socket sock.s submit

# --- A recorded trace to serve ----------------------------------------------
expect_exit 0 "$TRACE_BIN" record --kernel REDUCE --out good.trc

# --- once: in-process round trip ---------------------------------------------
expect_exit 0 "$BIN" once --trace good.trc --workers 2
expect_stdout '"unique_races"' "once --trace good.trc"
expect_exit 3 "$BIN" once --trace ./does_not_exist.trc
expect_exit 1 "$BIN" once --trace good.trc --kernel 5000   # no such slice
printf 'not a haccrg trace\n' > garbage.trc
expect_exit 1 "$BIN" once --trace garbage.trc              # decode fails

# --- client against a dead socket (3) ----------------------------------------
expect_exit 3 "$BIN" client --socket ./no_daemon.s stats

# --- socket daemon round trip ------------------------------------------------
"$BIN" serve --socket daemon.s --workers 2 >daemon_out.txt 2>daemon_err.txt &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [ -S daemon.s ] && break
  sleep 0.1
done
if [ ! -S daemon.s ]; then
  echo "FAIL: daemon never created its socket"
  sed 's/^/  daemon: /' daemon_err.txt
  kill "$DAEMON_PID" 2>/dev/null
  exit 1
fi

expect_exit 0 "$BIN" client --socket daemon.s submit good.trc --workers 2
expect_stdout 'job: ' "client submit"
JOB=$(sed -n 's/^job: //p' cli_stdout.txt)
if [ -z "$JOB" ]; then
  echo "FAIL: submit did not return a job id"
  fails=$((fails + 1))
  JOB=1
fi

expect_exit 0 "$BIN" client --socket daemon.s result "$JOB" --wait
expect_stdout '"unique_races"' "client result --wait"
expect_exit 0 "$BIN" client --socket daemon.s status "$JOB"
expect_stdout 'state: done' "client status"
expect_exit 1 "$BIN" client --socket daemon.s cancel "$JOB"   # already done
expect_exit 1 "$BIN" client --socket daemon.s result 424242   # no such job
expect_exit 0 "$BIN" client --socket daemon.s stats
expect_stdout '"queue_depth"' "client stats"

# --- transport death mid-request must not kill the daemon --------------------
# Half a SUBMIT frame, then the connection dies: the daemon must drop the
# connection and keep serving.
expect_exit 0 "$BIN" client --socket daemon.s abort-mid-submit good.trc
expect_exit 0 "$BIN" client --socket daemon.s stats
expect_stdout '"queue_depth"' "stats after abort-mid-submit"

# RESULT --wait sent, then the client vanishes before the reply: the
# daemon's write hits EPIPE (not SIGPIPE) and the job stays served.
expect_exit 0 "$BIN" client --socket daemon.s abort-mid-result "$JOB"
expect_exit 0 "$BIN" client --socket daemon.s status "$JOB"
expect_stdout 'state: done' "status after abort-mid-result"

# --- per-job deadline over the wire ------------------------------------------
expect_exit 0 "$BIN" client --socket daemon.s submit good.trc --deadline-ms 60000
JOBD=$(sed -n 's/^job: //p' cli_stdout.txt)
expect_exit 0 "$BIN" client --socket daemon.s result "${JOBD:-3}" --wait
expect_stdout '"unique_races"' "result of deadlined submit"

# A memoized resubmission must serve the identical report.
expect_exit 0 "$BIN" client --socket daemon.s submit good.trc
JOB2=$(sed -n 's/^job: //p' cli_stdout.txt)
expect_exit 0 "$BIN" client --socket daemon.s result "${JOB2:-2}" --wait
tail -n +3 cli_stdout.txt > report2.txt   # drop the job:/state: lines
expect_exit 0 "$BIN" client --socket daemon.s result "$JOB" --wait
tail -n +3 cli_stdout.txt > report1.txt
if ! cmp -s report1.txt report2.txt; then
  echo "FAIL: resubmitted trace served a different report"
  fails=$((fails + 1))
fi

expect_exit 0 "$BIN" client --socket daemon.s shutdown
expect_stdout 'state: drained' "client shutdown"
wait "$DAEMON_PID"
DAEMON_EXIT=$?
if [ "$DAEMON_EXIT" -ne 0 ]; then
  echo "FAIL: daemon exited $DAEMON_EXIT after shutdown"
  sed 's/^/  daemon: /' daemon_err.txt
  fails=$((fails + 1))
fi
if [ -S daemon.s ]; then
  echo "FAIL: daemon left its socket behind"
  fails=$((fails + 1))
fi

# --- usage: a malformed fault plan is a usage error, not a crash -------------
expect_exit 2 "$BIN" serve --socket bad.s --faults "not_a_plan"

# --- deadlines + timed drain under injected stalls ---------------------------
# Every job stalls 100ms (injected) against a 5ms default deadline: jobs
# settle timed-out; result --wait reports the deadline error as a job
# failure (exit 1). A 50ms drain budget bounds shutdown even with jobs
# still queued behind the single stalled worker.
"$BIN" serve --socket slow.s --workers 1 --deadline-ms 5 --drain-timeout 50 \
  --faults "serve_worker_stall=1000000,seed=7" >slow_out.txt 2>slow_err.txt &
SLOW_PID=$!
for _ in $(seq 1 100); do
  [ -S slow.s ] && break
  sleep 0.1
done
if [ ! -S slow.s ]; then
  echo "FAIL: fault-injected daemon never created its socket"
  sed 's/^/  daemon: /' slow_err.txt
  kill "$SLOW_PID" 2>/dev/null
  exit 1
fi

expect_exit 0 "$BIN" client --socket slow.s submit good.trc
SJOB=$(sed -n 's/^job: //p' cli_stdout.txt)
expect_exit 1 "$BIN" client --socket slow.s result "${SJOB:-1}" --wait
expect_exit 0 "$BIN" client --socket slow.s status "${SJOB:-1}"
expect_stdout 'state: timed-out' "status of a deadlined stall"

# Queue a few more, then shut down: the drain budget cancels what the
# stalled worker cannot reach, and the daemon still exits cleanly.
expect_exit 0 "$BIN" client --socket slow.s submit good.trc
expect_exit 0 "$BIN" client --socket slow.s submit good.trc
expect_exit 0 "$BIN" client --socket slow.s shutdown
wait "$SLOW_PID"
if [ $? -ne 0 ]; then
  echo "FAIL: fault-injected daemon exited non-zero after timed drain"
  sed 's/^/  daemon: /' slow_err.txt
  fails=$((fails + 1))
fi

# --- stdio transport ---------------------------------------------------------
# One STATS frame over stdin: 4-byte LE length prefix + "STATS\n\n".
printf '\x07\x00\x00\x00STATS\n\n' | "$BIN" serve --stdio >stdio_out.bin 2>/dev/null
if [ $? -ne 0 ]; then
  echo "FAIL: stdio serve exited non-zero"
  fails=$((fails + 1))
fi
if ! grep -aq '"queue_depth"' stdio_out.bin; then
  echo "FAIL: stdio STATS reply missing stats JSON"
  fails=$((fails + 1))
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed"
  exit 1
fi
echo "all serve CLI checks passed"
exit 0
