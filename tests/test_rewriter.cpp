// Unit tests for the instrumentation rewriter: jump-target remapping
// across insertions, scratch allocation above the original high-water
// marks, and functional equivalence of rewritten loop programs.
#include <gtest/gtest.h>

#include "isa/builder.hpp"
#include "sim/gpu.hpp"
#include "swrace/rewriter.hpp"

namespace haccrg {
namespace {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Opcode;
using isa::Pred;
using isa::Program;
using isa::Reg;
using swrace::Rewriter;

Program loop_kernel() {
  KernelBuilder kb("loop");
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg pout = kb.param(0);
  Reg acc = kb.imm(0);
  Reg i = kb.reg();
  kb.for_range(i, 0u, 10u, 1u, [&] { kb.add(acc, acc, 3u); });
  Reg dst = kb.addr(pout, gid, 4);
  kb.st_global(dst, acc);
  return kb.build();
}

TEST(Rewriter, IdentityRewritePreservesProgram) {
  Program original = loop_kernel();
  Rewriter rw(original);
  Program copy = rw.rewrite({}, "+id");
  ASSERT_EQ(copy.size(), original.size());
  for (u32 pc = 0; pc < copy.size(); ++pc) {
    EXPECT_EQ(copy.at(pc).op, original.at(pc).op) << pc;
    EXPECT_EQ(copy.at(pc).imm, original.at(pc).imm) << pc;
  }
  EXPECT_EQ(copy.validate(), "");
}

TEST(Rewriter, InsertionRemapsJumpTargets) {
  Program original = loop_kernel();
  Rewriter rw(original);
  Rewriter::Hooks hooks;
  // Insert two NOPs before every ALU add: shifts everything downstream.
  hooks.before = [](Rewriter& r, const isa::Instr& ins) {
    if (ins.op == Opcode::kAdd) {
      r.emit(isa::Instr{.op = Opcode::kNop});
      r.emit(isa::Instr{.op = Opcode::kNop});
    }
    return true;
  };
  Program rewritten = rw.rewrite(hooks, "+nops");
  EXPECT_EQ(rewritten.validate(), "");
  EXPECT_GT(rewritten.size(), original.size());
  // Every jump still lands on the right opcode class.
  for (u32 pc = 0; pc < rewritten.size(); ++pc) {
    const isa::Instr& ins = rewritten.at(pc);
    if (ins.op == Opcode::kBreakIfNot) {
      EXPECT_EQ(rewritten.at(ins.imm).op, Opcode::kLoopEnd);
    }
    if (ins.op == Opcode::kJump) {
      EXPECT_LT(ins.imm, pc);  // back-edge
    }
  }
}

TEST(Rewriter, RewrittenLoopStillComputesCorrectly) {
  Program original = loop_kernel();
  Rewriter rw(original);
  Rewriter::Hooks hooks;
  hooks.before = [](Rewriter& r, const isa::Instr& ins) {
    if (ins.op == Opcode::kStGlobal) r.emit(isa::Instr{.op = Opcode::kNop});
    return true;
  };
  hooks.after = [](Rewriter& r, const isa::Instr& ins) {
    if (ins.op == Opcode::kAdd) r.emit(isa::Instr{.op = Opcode::kNop});
    return;
  };
  Program rewritten = rw.rewrite(hooks, "+pad");
  ASSERT_EQ(rewritten.validate(), "");

  arch::GpuConfig cfg;
  cfg.num_sms = 1;
  cfg.device_mem_bytes = 1024 * 1024;
  sim::Gpu gpu(cfg, rd::HaccrgConfig{});
  const Addr out = gpu.allocator().alloc(64 * 4, "out");
  sim::LaunchConfig launch;
  launch.program = &rewritten;
  launch.grid_dim = 1;
  launch.block_dim = 64;
  launch.params = {out};
  sim::SimResult r = gpu.launch(launch);
  ASSERT_TRUE(r.completed) << r.error;
  for (u32 t = 0; t < 64; ++t) EXPECT_EQ(gpu.memory().read_u32(out + t * 4), 30u);
}

TEST(Rewriter, ScratchAllocationStartsAboveOriginal) {
  Program original = loop_kernel();
  Rewriter rw(original);
  isa::Reg r1 = rw.scratch_reg();
  isa::Reg r2 = rw.scratch_reg();
  EXPECT_EQ(r1.idx, original.regs_used());
  EXPECT_EQ(r2.idx, original.regs_used() + 1);
  isa::Pred p = rw.scratch_pred();
  EXPECT_EQ(p.idx, original.preds_used());
}

TEST(Rewriter, SuppressedInstructionIsDropped) {
  Program original = loop_kernel();
  Rewriter rw(original);
  Rewriter::Hooks hooks;
  hooks.before = [](Rewriter& r, const isa::Instr& ins) {
    if (ins.op == Opcode::kStGlobal) {
      r.emit(isa::Instr{.op = Opcode::kNop});
      return false;  // drop the store
    }
    return true;
  };
  Program rewritten = rw.rewrite(hooks, "+drop");
  EXPECT_EQ(rewritten.count_if([](const isa::Instr& i) { return i.op == Opcode::kStGlobal; }),
            0u);
  EXPECT_EQ(rewritten.validate(), "");
}

}  // namespace
}  // namespace haccrg
