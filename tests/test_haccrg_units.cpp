// Unit tests for the remaining core pieces: Bloom signatures, the race
// log, the per-SM ID registers, both RDUs, and the hardware cost model.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "haccrg/bloom.hpp"
#include "haccrg/global_rdu.hpp"
#include "haccrg/hardware_cost.hpp"
#include "haccrg/id_regs.hpp"
#include "haccrg/race.hpp"
#include "haccrg/shared_rdu.hpp"

namespace haccrg {
namespace {

using rd::BloomGeometry;
using rd::BloomSignature;

// --- Bloom signatures -----------------------------------------------------------

TEST(Bloom, GeometryValidity) {
  EXPECT_TRUE((BloomGeometry{16, 2}.valid()));
  EXPECT_TRUE((BloomGeometry{8, 2}.valid()));
  EXPECT_TRUE((BloomGeometry{32, 4}.valid()));
  EXPECT_FALSE((BloomGeometry{16, 3}.valid()));  // 16 % 3 != 0
  EXPECT_FALSE((BloomGeometry{0, 2}.valid()));
  EXPECT_FALSE((BloomGeometry{48, 2}.valid()));  // 24 bits/bin not pow2
}

TEST(Bloom, InsertSetsOneBitPerBin) {
  const BloomGeometry geom{16, 2};
  BloomSignature sig;
  sig.insert(0x1000, geom);
  EXPECT_EQ(std::popcount(sig.bits()), 2);
}

TEST(Bloom, SelfIntersectionNeverNull) {
  const BloomGeometry geom{16, 2};
  SplitMix64 rng(11);
  for (int i = 0; i < 500; ++i) {
    BloomSignature sig;
    sig.insert(static_cast<Addr>(rng.next()), geom);
    EXPECT_FALSE(BloomSignature::intersection_null(sig, sig, geom));
  }
}

TEST(Bloom, SupersetAlwaysIntersects) {
  // No false negatives for genuinely shared locks: if both signatures
  // contain lock L, the intersection is never null.
  const BloomGeometry geom{16, 2};
  SplitMix64 rng(12);
  for (int i = 0; i < 500; ++i) {
    const Addr shared_lock = static_cast<Addr>(rng.next());
    BloomSignature a, b;
    a.insert(shared_lock, geom);
    a.insert(static_cast<Addr>(rng.next()), geom);
    b.insert(shared_lock, geom);
    b.insert(static_cast<Addr>(rng.next()), geom);
    EXPECT_FALSE(BloomSignature::intersection_null(a, b, geom));
  }
}

TEST(Bloom, ClearEmpties) {
  const BloomGeometry geom{16, 2};
  BloomSignature sig;
  sig.insert(0x40, geom);
  EXPECT_FALSE(sig.empty());
  sig.clear();
  EXPECT_TRUE(sig.empty());
}

TEST(Bloom, AdjacentWordsAreDistinguished) {
  const BloomGeometry geom{16, 2};
  BloomSignature a, b;
  a.insert(0x1000, geom);
  b.insert(0x1004, geom);
  EXPECT_TRUE(BloomSignature::intersection_null(a, b, geom));
}

TEST(Bloom, MissRateMatchesDirectIndexTheory) {
  // With direct low-order-bit indexing, two uniform addresses collide
  // with probability 1/bits_per_bin (Section VI-A2's 25/12.5/6.25%).
  for (u32 bits : {8u, 16u, 32u}) {
    const BloomGeometry geom{bits, 2};
    SplitMix64 rng(bits);
    u32 missed = 0;
    const u32 trials = 200000;
    for (u32 i = 0; i < trials; ++i) {
      BloomSignature a, b;
      a.insert(static_cast<Addr>(rng.next()) << 2, geom);
      b.insert(static_cast<Addr>(rng.next()) << 2, geom);
      if (!BloomSignature::intersection_null(a, b, geom)) ++missed;
    }
    const f64 expect = 1.0 / geom.bits_per_bin();
    EXPECT_NEAR(static_cast<f64>(missed) / trials, expect, expect * 0.15) << bits;
  }
}

// --- Race log ------------------------------------------------------------------

rd::RaceRecord make_record(Addr granule, rd::RaceType type, u32 pc) {
  rd::RaceRecord r;
  r.type = type;
  r.mechanism = rd::RaceMechanism::kBarrier;
  r.space = rd::MemSpace::kGlobal;
  r.granule_addr = granule;
  r.pc = pc;
  return r;
}

TEST(RaceLog, DeduplicatesByLocationAndSite) {
  rd::RaceLog log;
  EXPECT_TRUE(log.record(make_record(0x40, rd::RaceType::kWaw, 7)));
  EXPECT_FALSE(log.record(make_record(0x40, rd::RaceType::kWaw, 7)));
  EXPECT_TRUE(log.record(make_record(0x44, rd::RaceType::kWaw, 7)));
  EXPECT_TRUE(log.record(make_record(0x40, rd::RaceType::kWar, 7)));
  EXPECT_TRUE(log.record(make_record(0x40, rd::RaceType::kWaw, 8)));
  EXPECT_EQ(log.unique(), 4u);
  EXPECT_EQ(log.total(), 5u);
}

TEST(RaceLog, CountsByDimension) {
  rd::RaceLog log;
  log.record(make_record(0x40, rd::RaceType::kWaw, 1));
  log.record(make_record(0x44, rd::RaceType::kWar, 2));
  log.record(make_record(0x48, rd::RaceType::kWar, 3));
  EXPECT_EQ(log.count(rd::RaceType::kWar), 2u);
  EXPECT_EQ(log.count(rd::RaceType::kWaw), 1u);
  EXPECT_EQ(log.count(rd::MemSpace::kGlobal), 3u);
  EXPECT_EQ(log.count(rd::MemSpace::kShared), 0u);
  EXPECT_EQ(log.count(rd::RaceMechanism::kBarrier), 3u);
}

TEST(RaceLog, RecordingCapBoundsMemory) {
  rd::RaceLog log(4);
  for (u32 i = 0; i < 100; ++i) log.record(make_record(i * 4, rd::RaceType::kWaw, 1));
  EXPECT_EQ(log.races().size(), 4u);
  EXPECT_EQ(log.total(), 100u);
}

TEST(RaceLog, DescribeIsHumanReadable) {
  rd::RaceRecord r = make_record(0x40, rd::RaceType::kRaw, 9);
  const std::string text = r.describe();
  EXPECT_NE(text.find("RAW"), std::string::npos);
  EXPECT_NE(text.find("0x40"), std::string::npos);
}

// --- ID registers -----------------------------------------------------------------

TEST(IdRegs, SyncIdBumpsOnlyAfterGlobalAccess) {
  rd::SmIdRegisters ids(8, 32, 1024);
  const u8 start = ids.sync_id(0);
  ids.on_barrier(0);  // no global access since launch
  EXPECT_EQ(ids.sync_id(0), start);
  ids.note_global_access(0);
  ids.on_barrier(0);
  EXPECT_EQ(ids.sync_id(0), static_cast<u8>(start + 1));
  ids.on_barrier(0);  // flag was consumed
  EXPECT_EQ(ids.sync_id(0), static_cast<u8>(start + 1));
}

TEST(IdRegs, BlockLaunchStartsFreshEpoch) {
  rd::SmIdRegisters ids(8, 32, 1024);
  const u8 before = ids.sync_id(3);
  ids.on_block_launch(3);
  EXPECT_NE(ids.sync_id(3), before);
}

TEST(IdRegs, FenceIdsArePerWarp) {
  rd::SmIdRegisters ids(8, 32, 1024);
  ids.on_fence(2);
  ids.on_fence(2);
  ids.on_fence(5);
  EXPECT_EQ(ids.fence_id(2), 2);
  EXPECT_EQ(ids.fence_id(5), 1);
  EXPECT_EQ(ids.fence_id(0), 0);
}

TEST(IdRegs, AtomicIdNestingClearsAtOutermostRelease) {
  rd::SmIdRegisters ids(8, 32, 1024);
  const BloomGeometry geom{16, 2};
  ids.on_lock_acquired(7, 0x100, geom);
  ids.on_lock_acquired(7, 0x200, geom);
  EXPECT_TRUE(ids.in_cs(7));
  EXPECT_FALSE(ids.sig(7).empty());
  ids.on_lock_releasing(7);
  EXPECT_TRUE(ids.in_cs(7));       // still nested
  EXPECT_FALSE(ids.sig(7).empty());  // cleared only at depth 0
  ids.on_lock_releasing(7);
  EXPECT_FALSE(ids.in_cs(7));
  EXPECT_TRUE(ids.sig(7).empty());
}

TEST(IdRegs, ThreadResetClearsLockState) {
  rd::SmIdRegisters ids(8, 32, 1024);
  const BloomGeometry geom{16, 2};
  ids.on_lock_acquired(9, 0x100, geom);
  ids.reset_thread(9);
  EXPECT_FALSE(ids.in_cs(9));
  EXPECT_TRUE(ids.sig(9).empty());
}

// --- Shared RDU -----------------------------------------------------------------

rd::DetectPolicy default_policy() {
  rd::DetectPolicy p;
  p.warp_size = 32;
  p.bloom = {16, 2};
  return p;
}

rd::HaccrgConfig shared_config(u32 gran) {
  rd::HaccrgConfig c;
  c.enable_shared = true;
  c.shared_granularity = gran;
  return c;
}

rd::AccessInfo lane(u16 slot, Addr addr, bool write) {
  rd::AccessInfo a;
  a.thread_slot = slot;
  a.warp_in_sm = slot / 32;
  a.addr = addr;
  a.size = 4;
  a.is_write = write;
  return a;
}

TEST(SharedRdu, DetectsCrossWarpConflictAndLogs) {
  rd::RaceStaging log;
  rd::SharedRdu rdu(0, 16 * 1024, shared_config(4), default_policy(), log);
  rdu.check(lane(0, 0x100, true));
  rdu.check(lane(40, 0x100, false));
  EXPECT_EQ(log.records().size(), 1u);
  EXPECT_EQ(rdu.races_found(), 1u);
}

TEST(SharedRdu, GranularityAliasing) {
  rd::RaceStaging log;
  rd::SharedRdu rdu(0, 16 * 1024, shared_config(16), default_policy(), log);
  rdu.check(lane(0, 0x100, true));
  rdu.check(lane(40, 0x10c, true));  // different word, same 16B granule
  EXPECT_EQ(log.records().size(), 1u);
}

TEST(SharedRdu, ResetRegionCostScalesWithEntries) {
  rd::RaceStaging log;
  rd::SharedRdu rdu(0, 16 * 1024, shared_config(16), default_policy(), log);
  // 4 KB region at 16 B granularity = 256 entries over 16 banks.
  EXPECT_EQ(rdu.reset_region(0, 4096, 16), 16u);
  EXPECT_EQ(rdu.reset_region(0, 0, 16), 0u);
}

TEST(SharedRdu, ResetClearsOnlyTheRegion) {
  rd::RaceStaging log;
  rd::SharedRdu rdu(0, 16 * 1024, shared_config(4), default_policy(), log);
  rdu.check(lane(0, 0x100, true));   // region A
  rdu.check(lane(0, 0x2000, true));  // region B
  rdu.reset_region(0, 0x1000, 16);   // clears A only
  EXPECT_TRUE(rdu.entry_at(0x100).m && rdu.entry_at(0x100).s);   // initial again
  EXPECT_TRUE(rdu.entry_at(0x2000).m && !rdu.entry_at(0x2000).s);  // still owned
}

TEST(SharedRdu, ShadowLineMapping) {
  rd::RaceStaging log;
  rd::SharedRdu rdu(0, 16 * 1024, shared_config(16), default_policy(), log);
  // Granule i has a 2-byte sw entry; a 128 B line holds 64 entries, i.e.
  // covers 1 KB of scratchpad.
  auto lines = rdu.shadow_lines({0u, 512u, 1024u, 2048u}, 128);
  EXPECT_EQ(lines.size(), 3u);  // 0 and 512 share line 0; 1024 -> 1; 2048 -> 2
}

// --- Global RDU -----------------------------------------------------------------

TEST(GlobalRdu, ShadowSizingAndAddressing) {
  EXPECT_EQ(rd::GlobalRdu::shadow_bytes_for(4096, 4), 8192u);
  EXPECT_EQ(rd::GlobalRdu::shadow_bytes_for(4096, 16), 2048u);
  EXPECT_EQ(rd::GlobalRdu::shadow_bytes_for(1, 4), 8u);

  mem::DeviceMemory memory(64 * 1024);
  rd::RaceLog log;
  rd::HaccrgConfig cfg;
  cfg.enable_global = true;
  rd::GlobalRdu rdu(memory, cfg, default_policy(), log, [](u32, u32) -> u8 { return 0; });
  rdu.init_shadow(32 * 1024, 4096);
  std::vector<Addr> lines;
  rd::AccessInfo a = lane(0, 0x100, true);
  rdu.check(a, lines);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 32 * 1024 + (0x100 / 4) * 8);
  EXPECT_TRUE(rdu.entry_at(0x100).m);
}

TEST(GlobalRdu, OutOfHeapAccessesIgnored) {
  mem::DeviceMemory memory(64 * 1024);
  rd::RaceLog log;
  rd::HaccrgConfig cfg;
  cfg.enable_global = true;
  rd::GlobalRdu rdu(memory, cfg, default_policy(), log, [](u32, u32) -> u8 { return 0; });
  rdu.init_shadow(32 * 1024, 4096);
  std::vector<Addr> lines;
  rdu.check(lane(0, 8192, true), lines);  // beyond the tracked heap
  EXPECT_TRUE(lines.empty());
  EXPECT_EQ(rdu.checks(), 0u);
}

TEST(GlobalRdu, StaleL1QualificationUsesFillTime) {
  mem::DeviceMemory memory(64 * 1024);
  rd::RaceLog log;
  rd::HaccrgConfig cfg;
  cfg.enable_global = true;
  rd::GlobalRdu rdu(memory, cfg, default_policy(), log, [](u32, u32) -> u8 { return 5; });
  rdu.init_shadow(32 * 1024, 4096);
  std::vector<Addr> lines;

  // Writer on SM 0 at cycle 100 (its warp has fenced since: stored 0 vs
  // current 5 -> the fence gate alone would call the read safe).
  rd::AccessInfo w = lane(0, 0x100, true);
  w.sm_id = 0;
  w.cycle = 100;
  w.fence_id = 0;
  rdu.check(w, lines);

  // Reader on SM 1 whose L1 line was filled BEFORE the write: stale.
  rd::AccessInfo r1 = lane(0, 0x100, false);
  r1.sm_id = 1;
  r1.l1_hit = true;
  r1.l1_fill_cycle = 50;
  r1.cycle = 200;
  rdu.check(r1, lines);
  EXPECT_EQ(log.count(rd::RaceMechanism::kL1Stale), 1u);

  // Fresh shadow + a reader whose line was filled AFTER the write: safe.
  rdu.init_shadow(32 * 1024, 4096);
  log.clear();
  rdu.check(w, lines);
  rd::AccessInfo r2 = r1;
  r2.l1_fill_cycle = 150;
  rdu.check(r2, lines);
  EXPECT_EQ(log.count(rd::RaceMechanism::kL1Stale), 0u);
}

// --- Hardware cost model ------------------------------------------------------------

TEST(HardwareCost, MatchesPaperReferencePoints) {
  arch::GpuConfig gpu;
  rd::HaccrgConfig det;
  det.shared_granularity = 16;
  det.global_granularity = 4;
  det.bloom_bits = 16;
  const rd::HardwareCost cost = rd::compute_hardware_cost(gpu, det);
  EXPECT_EQ(cost.shared_comparators_per_sm, 8u);        // paper: 8 x 12-bit
  EXPECT_EQ(cost.shared_comparator_bits, 12u);
  EXPECT_EQ(cost.global_comparators_per_slice, 32u);    // paper: 32 x 28-bit
  EXPECT_EQ(cost.global_comparator_bits, 28u);
  EXPECT_EQ(cost.global_id_comparators_per_slice, 16u); // paper: 16 x 24-bit
  EXPECT_EQ(cost.global_id_comparator_bits, 24u);
}

TEST(HardwareCost, SharedStorageScalesWithScratchpad) {
  arch::GpuConfig gpu;
  rd::HaccrgConfig det;
  det.shared_granularity = 16;
  gpu.shared_mem_per_sm = 48 * 1024;  // a Fermi SM
  const rd::HardwareCost cost = rd::compute_hardware_cost(gpu, det);
  EXPECT_EQ(cost.shared_shadow_bytes_per_sm, 4608u);  // the paper's 4.5 KB
}

}  // namespace
}  // namespace haccrg
