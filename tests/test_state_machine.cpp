// Exhaustive unit tests of the Figure-3 shadow state machine for shared
// memory and its global-memory extension (sync IDs, fence gating,
// lockset priority, stale-L1 rule), plus pack/unpack round-trip
// properties of both shadow encodings.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "haccrg/shadow.hpp"

namespace haccrg {
namespace {

using rd::AccessInfo;
using rd::BloomGeometry;
using rd::BloomSignature;
using rd::CheckOutcome;
using rd::DetectPolicy;
using rd::GlobalShadowEntry;
using rd::RaceMechanism;
using rd::RaceType;
using rd::SharedShadowEntry;

DetectPolicy policy() {
  DetectPolicy p;
  p.warp_size = 32;
  p.bloom = {16, 2};
  return p;
}

AccessInfo access(u16 thread_slot, bool is_write, Addr addr = 0x40) {
  AccessInfo a;
  a.addr = addr;
  a.size = 4;
  a.is_write = is_write;
  a.thread_slot = thread_slot;
  a.warp_in_sm = thread_slot / 32;
  return a;
}

// --- Shared-memory state machine (Figure 3) -----------------------------------

TEST(SharedStateMachine, FirstReadEntersState2) {
  SharedShadowEntry entry;  // initial: M=1, S=1
  auto out = rd::check_shared_access(entry, access(5, false), policy());
  EXPECT_FALSE(out.race.has_value());
  EXPECT_FALSE(entry.m);
  EXPECT_FALSE(entry.s);
  EXPECT_EQ(entry.tid, 5);
}

TEST(SharedStateMachine, FirstWriteEntersState3) {
  SharedShadowEntry entry;
  auto out = rd::check_shared_access(entry, access(5, true), policy());
  EXPECT_FALSE(out.race.has_value());
  EXPECT_TRUE(entry.m);
  EXPECT_FALSE(entry.s);
}

TEST(SharedStateMachine, SameThreadReadAfterReadIsQuiet) {
  SharedShadowEntry entry;
  rd::check_shared_access(entry, access(5, false), policy());
  auto out = rd::check_shared_access(entry, access(5, false), policy());
  EXPECT_FALSE(out.race.has_value());
  EXPECT_FALSE(out.entry_changed);
}

TEST(SharedStateMachine, CrossWarpSecondReaderSetsShared) {
  SharedShadowEntry entry;
  rd::check_shared_access(entry, access(5, false), policy());
  auto out = rd::check_shared_access(entry, access(40, false), policy());  // warp 1
  EXPECT_FALSE(out.race.has_value());
  EXPECT_TRUE(entry.s);
  EXPECT_FALSE(entry.m);
}

TEST(SharedStateMachine, SameWarpSecondReaderDoesNotSetShared) {
  SharedShadowEntry entry;
  rd::check_shared_access(entry, access(5, false), policy());
  auto out = rd::check_shared_access(entry, access(6, false), policy());  // same warp
  EXPECT_FALSE(out.race.has_value());
  EXPECT_FALSE(entry.s);
}

TEST(SharedStateMachine, OwnerUpgradeReadToWrite) {
  SharedShadowEntry entry;
  rd::check_shared_access(entry, access(5, false), policy());
  auto out = rd::check_shared_access(entry, access(5, true), policy());
  EXPECT_FALSE(out.race.has_value());
  EXPECT_TRUE(entry.m);
}

TEST(SharedStateMachine, CrossWarpWriteAfterReadIsWar) {
  SharedShadowEntry entry;
  rd::check_shared_access(entry, access(5, false), policy());
  auto out = rd::check_shared_access(entry, access(40, true), policy());
  ASSERT_TRUE(out.race.has_value());
  EXPECT_EQ(out.race->type, RaceType::kWar);
  EXPECT_EQ(out.race->mechanism, RaceMechanism::kBarrier);
}

TEST(SharedStateMachine, CrossWarpReadAfterWriteIsRaw) {
  SharedShadowEntry entry;
  rd::check_shared_access(entry, access(5, true), policy());
  auto out = rd::check_shared_access(entry, access(40, false), policy());
  ASSERT_TRUE(out.race.has_value());
  EXPECT_EQ(out.race->type, RaceType::kRaw);
}

TEST(SharedStateMachine, CrossWarpWriteAfterWriteIsWaw) {
  SharedShadowEntry entry;
  rd::check_shared_access(entry, access(5, true), policy());
  auto out = rd::check_shared_access(entry, access(40, true), policy());
  ASSERT_TRUE(out.race.has_value());
  EXPECT_EQ(out.race->type, RaceType::kWaw);
}

TEST(SharedStateMachine, SameWarpWriteAfterWriteIsOrdered) {
  SharedShadowEntry entry;
  rd::check_shared_access(entry, access(5, true), policy());
  auto out = rd::check_shared_access(entry, access(6, true), policy());
  EXPECT_FALSE(out.race.has_value());
  EXPECT_EQ(entry.tid, 6);  // ownership moves to the later writer
}

TEST(SharedStateMachine, State4AnyWriteIsWar) {
  SharedShadowEntry entry;
  rd::check_shared_access(entry, access(5, false), policy());
  rd::check_shared_access(entry, access(40, false), policy());  // S=1
  // Even the original reader's write races against "some other reader".
  auto out = rd::check_shared_access(entry, access(5, true), policy());
  ASSERT_TRUE(out.race.has_value());
  EXPECT_EQ(out.race->type, RaceType::kWar);
}

TEST(SharedStateMachine, State4ReadsStayQuiet) {
  SharedShadowEntry entry;
  rd::check_shared_access(entry, access(5, false), policy());
  rd::check_shared_access(entry, access(40, false), policy());
  auto out = rd::check_shared_access(entry, access(70, false), policy());
  EXPECT_FALSE(out.race.has_value());
}

TEST(SharedStateMachine, WarpRegroupingDisablesWarpFilter) {
  DetectPolicy regroup = policy();
  regroup.warp_regrouping = true;
  SharedShadowEntry entry;
  rd::check_shared_access(entry, access(5, true), regroup);
  auto out = rd::check_shared_access(entry, access(6, true), regroup);  // same warp
  ASSERT_TRUE(out.race.has_value());
  EXPECT_EQ(out.race->type, RaceType::kWaw);
}

TEST(SharedStateMachine, BarrierResetRestartsTracking) {
  SharedShadowEntry entry;
  rd::check_shared_access(entry, access(5, true), policy());
  entry = SharedShadowEntry{};  // RDU barrier reset
  auto out = rd::check_shared_access(entry, access(40, false), policy());
  EXPECT_FALSE(out.race.has_value());
}

TEST(SharedShadowPacking, RoundTripsAllFieldCombos) {
  for (u16 tid : {0u, 1u, 511u, 1023u}) {
    for (bool m : {false, true}) {
      for (bool s : {false, true}) {
        SharedShadowEntry e;
        e.m = m;
        e.s = s;
        e.tid = tid;
        SharedShadowEntry r = SharedShadowEntry::unpack(e.pack());
        EXPECT_EQ(r.m, m);
        EXPECT_EQ(r.s, s);
        EXPECT_EQ(r.tid, tid);
      }
    }
  }
}

TEST(SharedShadowPacking, ZeroIsInitialState) {
  SharedShadowEntry e = SharedShadowEntry::unpack(0);
  EXPECT_TRUE(e.m);
  EXPECT_TRUE(e.s);
}

// --- Global-memory state machine -----------------------------------------------

AccessInfo global_access(u16 thread_slot, bool is_write, u32 block_slot, u32 sm_id,
                         u8 sync_id = 0, u8 fence_id = 0) {
  AccessInfo a = access(thread_slot, is_write);
  a.block_slot = block_slot;
  a.sm_id = sm_id;
  a.sync_id = sync_id;
  a.fence_id = fence_id;
  return a;
}

rd::FenceIdReader static_fences(u8 value) {
  return [value](u32, u32) { return value; };
}

TEST(GlobalStateMachine, SyncIdMismatchWithinBlockIsOrdered) {
  GlobalShadowEntry entry;
  rd::check_global_access(entry, global_access(5, true, 0, 0, /*sync=*/1), policy(),
                          static_fences(0));
  // Same block, later epoch, different warp: ordered by the barrier.
  auto out = rd::check_global_access(entry, global_access(40, false, 0, 0, /*sync=*/2), policy(),
                                     static_fences(0));
  EXPECT_FALSE(out.race.has_value());
  EXPECT_EQ(entry.tid, 40);
}

TEST(GlobalStateMachine, SameSyncIdWithinBlockRaces) {
  GlobalShadowEntry entry;
  rd::check_global_access(entry, global_access(5, true, 0, 0, 1), policy(), static_fences(0));
  auto out =
      rd::check_global_access(entry, global_access(40, true, 0, 0, 1), policy(), static_fences(0));
  ASSERT_TRUE(out.race.has_value());
  EXPECT_EQ(out.race->type, RaceType::kWaw);
}

TEST(GlobalStateMachine, CrossBlockSkipsSyncCheck) {
  GlobalShadowEntry entry;
  rd::check_global_access(entry, global_access(5, true, 0, 0, 1), policy(), static_fences(0));
  // Different block, different sync id — still a race: barriers have
  // block scope only.
  auto out =
      rd::check_global_access(entry, global_access(5, true, 1, 0, 9), policy(), static_fences(0));
  ASSERT_TRUE(out.race.has_value());
}

TEST(GlobalStateMachine, FenceGateSuppressesRawWhenWriterFenced) {
  GlobalShadowEntry entry;
  // Writer (warp 0) wrote with fence id 3.
  rd::check_global_access(entry, global_access(5, true, 0, 0, 0, /*fence=*/3), policy(),
                          static_fences(3));
  // Reader in another block; the writer's warp has since fenced (current
  // fence id 4 != stored 3): safe consumption.
  auto out = rd::check_global_access(entry, global_access(5, false, 1, 1), policy(),
                                     static_fences(4));
  EXPECT_FALSE(out.race.has_value());
}

TEST(GlobalStateMachine, UnfencedWriteReadCrossBlockIsFenceRace) {
  GlobalShadowEntry entry;
  rd::check_global_access(entry, global_access(5, true, 0, 0, 0, 3), policy(), static_fences(3));
  auto out = rd::check_global_access(entry, global_access(5, false, 1, 1), policy(),
                                     static_fences(3));
  ASSERT_TRUE(out.race.has_value());
  EXPECT_EQ(out.race->mechanism, RaceMechanism::kFence);
  EXPECT_EQ(out.race->type, RaceType::kRaw);
}

TEST(GlobalStateMachine, StaleL1HitIsRaceEvenWithFence) {
  GlobalShadowEntry entry;
  rd::check_global_access(entry, global_access(5, true, 0, 0, 0, 3), policy(), static_fences(3));
  AccessInfo read = global_access(5, false, 1, 1);
  read.l1_hit = true;  // the reader's L1 served (potentially stale) data
  auto out = rd::check_global_access(entry, read, policy(), static_fences(4));
  ASSERT_TRUE(out.race.has_value());
  EXPECT_EQ(out.race->mechanism, RaceMechanism::kL1Stale);
}

TEST(GlobalStateMachine, L1HitSameSmIsNotStale) {
  GlobalShadowEntry entry;
  rd::check_global_access(entry, global_access(5, true, 0, 0, 0, 3), policy(), static_fences(3));
  AccessInfo read = global_access(70, false, 1, 0);  // same SM, other block
  read.l1_hit = true;
  auto out = rd::check_global_access(entry, read, policy(), static_fences(4));
  // Same-SM L1 is coherent with its own writes: the fence gate applies
  // instead, and the writer fenced, so no race.
  EXPECT_FALSE(out.race.has_value());
}

TEST(GlobalStateMachine, LocksetCommonLockIsSafe) {
  BloomGeometry geom{16, 2};
  BloomSignature lock;
  lock.insert(0x1000, geom);

  GlobalShadowEntry entry;
  AccessInfo a = global_access(5, true, 0, 0);
  a.in_cs = true;
  a.sig = lock;
  rd::check_global_access(entry, a, policy(), static_fences(0));

  AccessInfo b = global_access(5, true, 1, 1);
  b.in_cs = true;
  b.sig = lock;
  auto out = rd::check_global_access(entry, b, policy(), static_fences(0));
  EXPECT_FALSE(out.race.has_value());
}

TEST(GlobalStateMachine, LocksetDifferentLocksRace) {
  BloomGeometry geom{16, 2};
  BloomSignature la, lb;
  la.insert(0x1000, geom);
  lb.insert(0x1004, geom);  // adjacent word: different direct-index bit

  GlobalShadowEntry entry;
  AccessInfo a = global_access(5, true, 0, 0);
  a.in_cs = true;
  a.sig = la;
  rd::check_global_access(entry, a, policy(), static_fences(0));

  AccessInfo b = global_access(5, true, 1, 1);
  b.in_cs = true;
  b.sig = lb;
  auto out = rd::check_global_access(entry, b, policy(), static_fences(0));
  ASSERT_TRUE(out.race.has_value());
  EXPECT_EQ(out.race->mechanism, RaceMechanism::kLockset);
}

TEST(GlobalStateMachine, LocksetProtectedUnprotectedMixRaces) {
  BloomGeometry geom{16, 2};
  BloomSignature lock;
  lock.insert(0x1000, geom);

  GlobalShadowEntry entry;
  AccessInfo a = global_access(5, true, 0, 0);
  a.in_cs = true;
  a.sig = lock;
  rd::check_global_access(entry, a, policy(), static_fences(0));

  // Unprotected write by another thread.
  AccessInfo b = global_access(5, true, 1, 1);
  auto out = rd::check_global_access(entry, b, policy(), static_fences(0));
  ASSERT_TRUE(out.race.has_value());
  EXPECT_EQ(out.race->mechanism, RaceMechanism::kLockset);
}

TEST(GlobalStateMachine, LocksetReadsUnderDifferentLocksAreSafe) {
  BloomGeometry geom{16, 2};
  BloomSignature la, lb;
  la.insert(0x1000, geom);
  lb.insert(0x1004, geom);

  GlobalShadowEntry entry;
  AccessInfo a = global_access(5, false, 0, 0);
  a.in_cs = true;
  a.sig = la;
  rd::check_global_access(entry, a, policy(), static_fences(0));

  AccessInfo b = global_access(5, false, 1, 1);
  b.in_cs = true;
  b.sig = lb;
  auto out = rd::check_global_access(entry, b, policy(), static_fences(0));
  // No write anywhere: not a race even with disjoint locksets.
  EXPECT_FALSE(out.race.has_value());
}

TEST(GlobalStateMachine, LocksetIntersectionAccumulates) {
  BloomGeometry geom{16, 2};
  BloomSignature l1, l2, both;
  l1.insert(0x1000, geom);
  l2.insert(0x1004, geom);
  both.insert(0x1000, geom);
  both.insert(0x1004, geom);

  GlobalShadowEntry entry;
  AccessInfo a = global_access(5, true, 0, 0);
  a.in_cs = true;
  a.sig = both;  // holds both locks
  rd::check_global_access(entry, a, policy(), static_fences(0));

  AccessInfo b = global_access(5, true, 1, 1);
  b.in_cs = true;
  b.sig = l1;  // common lock l1
  auto out = rd::check_global_access(entry, b, policy(), static_fences(0));
  EXPECT_FALSE(out.race.has_value());
  // The stored signature shrank to the intersection.
  EXPECT_EQ(entry.sig, l1.bits() & both.bits());
}

TEST(GlobalShadowPacking, RoundTripsAllFields) {
  SplitMix64 rng(0xabc);
  for (int i = 0; i < 200; ++i) {
    GlobalShadowEntry e;
    e.m = (rng.next() & 1) != 0;
    e.s = (rng.next() & 1) != 0;
    e.tid = static_cast<u16>(rng.next() & 0x3ff);
    e.bid = static_cast<u8>(rng.next() & 0x7);
    e.sid = static_cast<u8>(rng.next() & 0x1f);
    e.sync_id = static_cast<u8>(rng.next());
    e.fence_id = static_cast<u8>(rng.next());
    e.sig = static_cast<u16>(rng.next());
    e.cs_seen = (rng.next() & 1) != 0;
    GlobalShadowEntry r = GlobalShadowEntry::unpack(e.pack());
    EXPECT_EQ(r.m, e.m);
    EXPECT_EQ(r.s, e.s);
    EXPECT_EQ(r.tid, e.tid);
    EXPECT_EQ(r.bid, e.bid);
    EXPECT_EQ(r.sid, e.sid);
    EXPECT_EQ(r.sync_id, e.sync_id);
    EXPECT_EQ(r.fence_id, e.fence_id);
    EXPECT_EQ(r.sig, e.sig);
    EXPECT_EQ(r.cs_seen, e.cs_seen);
  }
}

TEST(GlobalShadowPacking, ZeroIsInitialState) {
  GlobalShadowEntry e = GlobalShadowEntry::unpack(0);
  EXPECT_TRUE(e.m);
  EXPECT_TRUE(e.s);
  EXPECT_EQ(e.sig, 0);
  EXPECT_FALSE(e.cs_seen);
}

// Property sweep: randomized access sequences never report a race between
// accesses of the same thread, and reads alone never race.
class StateMachineProperties : public ::testing::TestWithParam<u64> {};

TEST_P(StateMachineProperties, SingleThreadNeverRacesWithItself) {
  SplitMix64 rng(GetParam());
  SharedShadowEntry entry;
  const u16 tid = static_cast<u16>(rng.next() & 0x3ff);
  for (int i = 0; i < 200; ++i) {
    auto out = rd::check_shared_access(entry, access(tid, (rng.next() & 1) != 0), policy());
    EXPECT_FALSE(out.race.has_value());
  }
}

TEST_P(StateMachineProperties, ReadsAloneNeverRace) {
  SplitMix64 rng(GetParam() ^ 0x5555);
  SharedShadowEntry entry;
  for (int i = 0; i < 200; ++i) {
    const u16 tid = static_cast<u16>(rng.next() & 0x3ff);
    auto out = rd::check_shared_access(entry, access(tid, false), policy());
    EXPECT_FALSE(out.race.has_value());
  }
}

TEST_P(StateMachineProperties, GlobalReadsAloneNeverRace) {
  SplitMix64 rng(GetParam() ^ 0xaaaa);
  GlobalShadowEntry entry;
  for (int i = 0; i < 200; ++i) {
    auto a = global_access(static_cast<u16>(rng.next() & 0x3ff), false,
                           static_cast<u32>(rng.next() & 7), static_cast<u32>(rng.next() & 31));
    auto out = rd::check_global_access(entry, a, policy(), static_fences(0));
    EXPECT_FALSE(out.race.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateMachineProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace haccrg
