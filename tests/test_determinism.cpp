// Determinism harness for the parallel epoch engine: for every registry
// kernel (and the full injection campaign), running under any worker
// thread count {1, 2, 8} crossed with any commit shard count {1, 2, 8}
// must produce byte-identical results — cycle counts, the full
// serialized stat set, and the exact race list — across three different
// workload seeds. The engine commits all cross-SM effects at per-cycle
// barriers in SM-id order, and the sharded commit's merge re-creates the
// serial effect order exactly, so any divergence here is a bug in that
// staging/merging, not acceptable jitter.
#include <gtest/gtest.h>

#include <string>

#include "kernels/common.hpp"
#include "kernels/injection.hpp"
#include "sim/gpu.hpp"
#include "sim/sim_config.hpp"

namespace haccrg {
namespace {

using kernels::BenchOptions;
using kernels::PreparedKernel;
using kernels::find_benchmark;

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 32 * 1024 * 1024;
  return cfg;
}

rd::HaccrgConfig detection_combined() {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  cfg.shared_granularity = 16;
  cfg.global_granularity = 4;
  return cfg;
}

/// Everything a run produces that must not depend on the thread count.
struct Signature {
  bool completed = false;
  std::string error;
  Cycle cycles = 0;
  std::string stats;  ///< StatSet::serialize()
  std::string races;  ///< every record, in log order, fully spelled out
  bool verified = false;
};

std::string race_signature(const rd::RaceLog& log) {
  std::string sig = "total=" + std::to_string(log.total()) + "\n";
  for (const rd::RaceRecord& r : log.races()) {
    sig += r.describe();
    sig += " granule=" + std::to_string(r.granule_addr);
    sig += " cycle=" + std::to_string(r.cycle);
    sig += " threads=" + std::to_string(r.first_thread) + "/" + std::to_string(r.second_thread);
    sig += "\n";
  }
  return sig;
}

Signature run_once(const std::string& name, u32 num_threads, u32 seed,
                   const fault::FaultPlan& faults = {}, u32 commit_shards = 0) {
  sim::SimConfig sim;
  sim.num_threads = num_threads;
  sim.commit_shards = commit_shards;
  sim.faults = faults;
  sim::Gpu gpu(test_gpu(), detection_combined(), sim);
  BenchOptions opts;
  opts.seed = seed;
  PreparedKernel prep = find_benchmark(name)->prepare(gpu, opts);
  sim::SimResult r = gpu.launch(prep.launch());

  Signature sig;
  sig.completed = r.completed;
  sig.error = r.error;
  sig.cycles = r.cycles;
  sig.stats = r.stats.serialize();
  sig.races = race_signature(r.races);
  std::string msg;
  sig.verified = prep.verify ? prep.verify(gpu.memory(), &msg) : true;
  EXPECT_TRUE(sig.verified) << name << " seed " << seed << ": " << msg;
  return sig;
}

class Determinism : public ::testing::TestWithParam<const char*> {};

TEST_P(Determinism, ThreadAndShardCountsAreInvisible) {
  const std::string name = GetParam();
  for (u32 seed : {0u, 1u, 2u}) {
    const Signature base = run_once(name, 1, seed, {}, 1);
    ASSERT_TRUE(base.completed) << base.error;
    for (u32 threads : {1u, 2u, 8u}) {
      for (u32 shards : {1u, 2u, 8u}) {
        if (threads == 1 && shards == 1) continue;  // that's the base run
        const Signature par = run_once(name, threads, seed, {}, shards);
        ASSERT_TRUE(par.completed) << par.error;
        const std::string cfg = name + " seed " + std::to_string(seed) + ": drift at " +
                                std::to_string(threads) + " threads / " +
                                std::to_string(shards) + " shards";
        EXPECT_EQ(base.cycles, par.cycles) << cfg << " (cycle count)";
        EXPECT_EQ(base.stats, par.stats) << cfg << " (stats)";
        EXPECT_EQ(base.races, par.races) << cfg << " (race log)";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, Determinism,
                         ::testing::Values("MCARLO", "SCAN", "FWALSH", "HIST", "SORTNW", "REDUCE",
                                           "PSUM", "OFFT", "KMEANS", "HASH"));

// Seeds must actually change the workload (otherwise the three-seed sweep
// above tests the same run three times). HASH mixes the seed into every
// key, so the probe sequences — and with them cycles or the stat set —
// must move. (Kernels like REDUCE only reseed data *values*, which never
// touch the address stream, so they are the wrong probe here.)
TEST(DeterminismSeeds, SeedChangesWorkload) {
  const Signature s0 = run_once("HASH", 1, 0);
  const Signature s1 = run_once("HASH", 1, 1);
  ASSERT_TRUE(s0.completed && s1.completed);
  EXPECT_TRUE(s0.stats != s1.stats || s0.cycles != s1.cycles)
      << "seed 1 produced the identical run; seed plumbing is dead";
}

// The full 41-case injection campaign: the detected/undetected verdict
// and the exact race counts must be invariant under every thread-count ×
// shard-count combination. Each case is a small kernel, so the full
// cross is cheap; it is also the sweep most likely to catch a merge bug,
// because each case plants one specific race the log must still carry.
TEST(DeterminismInjection, AllCasesThreadAndShardInvariant) {
  const auto cases = kernels::all_injection_cases();
  ASSERT_EQ(cases.size(), 41u);
  for (const auto& c : cases) {
    sim::SimConfig serial;
    serial.commit_shards = 1;
    const auto base = kernels::run_injection_case(c, test_gpu(), serial);
    for (u32 threads : {1u, 2u, 8u}) {
      for (u32 shards : {1u, 2u, 8u}) {
        if (threads == 1 && shards == 1) continue;
        sim::SimConfig sim;
        sim.num_threads = threads;
        sim.commit_shards = shards;
        const auto par = kernels::run_injection_case(c, test_gpu(), sim);
        const std::string cfg = c.label() + " at " + std::to_string(threads) + " threads / " +
                                std::to_string(shards) + " shards";
        EXPECT_EQ(base.detected, par.detected) << cfg;
        EXPECT_EQ(base.races_in_space, par.races_in_space) << cfg;
        EXPECT_EQ(base.races_total, par.races_total) << cfg;
      }
    }
  }
}

// --- Fault campaigns ---------------------------------------------------------
//
// The fault injector draws from one RNG stream per (site, unit), and
// cross-SM sites roll only in serial engine phases, so an identical
// FaultPlan seed must reproduce the identical campaign — same stats
// fingerprint, same race set — at any worker-thread count.

fault::FaultPlan sample_plan(u64 seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.set_rate(fault::FaultSite::kSharedShadowFlip, 2000);
  plan.set_rate(fault::FaultSite::kGlobalShadowFlip, 2000);
  plan.set_rate(fault::FaultSite::kBloomFlip, 1000);
  plan.set_rate(fault::FaultSite::kRaceRegDrop, 1000);
  plan.set_rate(fault::FaultSite::kIcntDrop, 20000);
  plan.set_rate(fault::FaultSite::kIcntDup, 10000);
  plan.set_rate(fault::FaultSite::kIcntDelay, 20000);
  plan.set_rate(fault::FaultSite::kDramShadowFlip, 5000);
  return plan;
}

class FaultDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultDeterminism, CampaignThreadInvariant) {
  const std::string name = GetParam();
  for (u64 fault_seed : {42ull, 1337ull}) {
    const Signature base = run_once(name, 1, 0, sample_plan(fault_seed));
    ASSERT_TRUE(base.completed) << base.error;
    for (u32 threads : {2u, 8u}) {
      const Signature par = run_once(name, threads, 0, sample_plan(fault_seed));
      ASSERT_TRUE(par.completed) << par.error;
      EXPECT_EQ(base.cycles, par.cycles)
          << name << " fault seed " << fault_seed << ": drift at " << threads << " threads";
      EXPECT_EQ(base.stats, par.stats)
          << name << " fault seed " << fault_seed << ": drift at " << threads << " threads";
      EXPECT_EQ(base.races, par.races)
          << name << " fault seed " << fault_seed << ": drift at " << threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sample, FaultDeterminism, ::testing::Values("REDUCE", "HIST", "HASH"));

TEST(FaultDeterminism, FaultSeedChangesCampaign) {
  // Different fault seeds must place injections differently (otherwise
  // the seed is dead plumbing and the sweep in bench_resilience is one
  // campaign repeated).
  const Signature a = run_once("REDUCE", 1, 0, sample_plan(1));
  const Signature b = run_once("REDUCE", 1, 0, sample_plan(2));
  ASSERT_TRUE(a.completed && b.completed);
  EXPECT_TRUE(a.stats != b.stats || a.cycles != b.cycles || a.races != b.races)
      << "fault seed does not reach the injector";
}

TEST(FaultDeterminism, ZeroRatePlanIsByteIdenticalToNoPlan) {
  // A plan whose rates are all zero must not perturb anything — not one
  // stat, not one cycle — even with a nonzero seed. This is the
  // "zero-fault config stays golden" guarantee.
  fault::FaultPlan zero;
  zero.seed = 0xdeadbeef;
  for (const char* name : {"REDUCE", "HASH"}) {
    const Signature plain = run_once(name, 2, 0);
    const Signature armed = run_once(name, 2, 0, zero);
    ASSERT_TRUE(plain.completed && armed.completed);
    EXPECT_EQ(plain.cycles, armed.cycles) << name;
    EXPECT_EQ(plain.stats, armed.stats) << name;
    EXPECT_EQ(plain.races, armed.races) << name;
  }
}

}  // namespace
}  // namespace haccrg
