#!/usr/bin/env bash
# Exit-code contract test for the haccrg-analyze CLI.
#
#   0 clean / all findings suppressed    3 I/O failure
#   1 unsuppressed findings remain       4 malformed suppression file
#   2 usage error                        5 unknown kernel
#
# Every failure must be a clean diagnosed exit — no aborts, no uncaught
# throws (exit codes >= 128 would betray a signal), and a non-empty
# stderr diagnosis on the usage/I-O/suppression/kernel paths.
set -u

BIN=$1
WORK=${2:-$(mktemp -d)}
# The test runs from inside $WORK, so a relative binary path (as
# scripts/check.sh passes) must be anchored to the caller's cwd first.
case "$BIN" in /*) ;; *) BIN="$PWD/$BIN" ;; esac
mkdir -p "$WORK"
cd "$WORK" || exit 99

fails=0

expect_exit() {
  local want=$1
  shift
  "$@" >cli_stdout.txt 2>cli_stderr.txt
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: expected exit $want, got $got: $*"
    sed 's/^/  stderr: /' cli_stderr.txt
    fails=$((fails + 1))
    return
  fi
  # Findings (1) are reported on stdout; every other non-zero path must
  # carry a stderr diagnosis.
  if [ "$want" -ge 2 ] && [ ! -s cli_stderr.txt ]; then
    echo "FAIL: exit $want with empty stderr: $*"
    fails=$((fails + 1))
  fi
}

# --- Usage errors (2) --------------------------------------------------------
expect_exit 2 "$BIN"
expect_exit 2 "$BIN" frobnicate
expect_exit 2 "$BIN" analyze --bogus-flag
expect_exit 2 "$BIN" analyze --block-dim notanumber
expect_exit 2 "$BIN" analyze --suppressions
expect_exit 2 "$BIN" annotate
expect_exit 2 "$BIN" diff
expect_exit 2 "$BIN" soundness --seeds 0

# --- Unknown kernel (5) ------------------------------------------------------
expect_exit 5 "$BIN" analyze --kernel NOSUCH
expect_exit 5 "$BIN" annotate --kernel NOSUCH
expect_exit 5 "$BIN" diff --kernel NOSUCH

# --- Findings (1) and clean runs (0) -----------------------------------------
# HIST's histogram update is a real may-race: findings -> 1.
expect_exit 1 "$BIN" analyze --kernel HIST
# Annotation and static-vs-dynamic diff are informational on sound kernels.
expect_exit 0 "$BIN" annotate --kernel REDUCE
expect_exit 0 "$BIN" diff --kernel REDUCE

# JSON mode emits a machine-readable array even when findings exist.
expect_exit 1 "$BIN" analyze --kernel HIST --json
head -c1 cli_stdout.txt | grep -q '\[' || {
  echo "FAIL: --json did not emit a JSON array"
  fails=$((fails + 1))
}

# --- Suppressions: missing (3), malformed (4), catch-all (0) -----------------
expect_exit 3 "$BIN" analyze --kernel HIST --suppressions ./does_not_exist.supp
printf '{\n  unclosed block\n' > bad.supp
expect_exit 4 "$BIN" analyze --kernel HIST --suppressions bad.supp
printf '# mute everything\n{\n  catch-all\n}\n' > all.supp
expect_exit 0 "$BIN" analyze --kernel HIST --suppressions all.supp
grep -q "suppressed" cli_stdout.txt || {
  echo "FAIL: catch-all suppression not reported in the text output"
  fails=$((fails + 1))
}

# --- The soundness gate itself (0) -------------------------------------------
expect_exit 0 "$BIN" soundness --seeds 1
grep -q "0 violations" cli_stdout.txt || {
  echo "FAIL: soundness summary missing '0 violations'"
  sed 's/^/  stdout: /' cli_stdout.txt | tail -5
  fails=$((fails + 1))
}

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed"
  exit 1
fi
echo "all exit-code checks passed"
exit 0
