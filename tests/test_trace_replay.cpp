// Replay-vs-live equivalence: for every registry kernel (and a sample of
// the injection campaign), recording a trace and replaying it through the
// detectors must reproduce the live run's race-location set exactly. Also
// covers: recording is byte-identical across engine thread counts (the
// trace is written only in serial phases), the software-emulator replays
// agree with the instrumented live runs on the race verdict, and the
// checked-in golden trace still replays to its recorded race set.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/static_race.hpp"
#include "kernels/common.hpp"
#include "sim/gpu.hpp"
#include "swrace/grace.hpp"
#include "swrace/sw_haccrg.hpp"
#include "trace/replay.hpp"

namespace haccrg {
namespace {

using kernels::BenchOptions;
using kernels::PreparedKernel;
using kernels::find_benchmark;

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 32 * 1024 * 1024;
  return cfg;
}

rd::HaccrgConfig detection_combined() {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  cfg.shared_granularity = 16;
  cfg.global_granularity = 4;
  return cfg;
}

rd::HaccrgConfig detection_word() {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  cfg.shared_granularity = 4;
  cfg.global_granularity = 4;
  return cfg;
}

std::string trace_file(const std::string& tag) { return "test_trace_" + tag + ".trc"; }

/// Record `name` with tracing on; return the live result via `live_out`.
void record(const std::string& name, const rd::HaccrgConfig& det, const BenchOptions& opts,
            const std::string& path, sim::SimResult& live_out) {
  sim::SimConfig sim_cfg;
  sim_cfg.trace_path = path;
  sim::Gpu gpu(test_gpu(), det, sim_cfg);
  gpu.set_trace_label(name);
  PreparedKernel prep = find_benchmark(name)->prepare(gpu, opts);
  live_out = gpu.launch(prep.launch());
  ASSERT_TRUE(live_out.completed) << name << ": " << live_out.error;
}

void expect_replay_matches(const std::string& name, const rd::HaccrgConfig& det,
                           const BenchOptions& opts, const std::string& tag) {
  const std::string path = trace_file(tag);
  sim::SimResult live;
  record(name, det, opts, path, live);
  if (::testing::Test::HasFatalFailure()) return;

  const trace::ReplayResult replayed = trace::replay_trace(path);
  ASSERT_TRUE(replayed.ok) << tag << ": " << replayed.error;
  ASSERT_EQ(replayed.kernels.size(), 1u);
  EXPECT_EQ(replayed.kernels[0].label, name);
  EXPECT_EQ(replayed.kernels[0].cycles, live.cycles);
  EXPECT_EQ(replayed.race_set(), trace::race_identity_set(live.races))
      << tag << ": replay race set diverged from the live run";
  EXPECT_EQ(replayed.kernels[0].races.unique(), live.races.unique()) << tag;
  std::remove(path.c_str());
}

class TraceReplayAllKernels : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceReplayAllKernels, ReproducesLiveRaceSetCombined) {
  expect_replay_matches(GetParam(), detection_combined(), BenchOptions{},
                        std::string(GetParam()) + "_combined");
}

TEST_P(TraceReplayAllKernels, ReproducesLiveRaceSetWordGranularity) {
  expect_replay_matches(GetParam(), detection_word(), BenchOptions{},
                        std::string(GetParam()) + "_word");
}

INSTANTIATE_TEST_SUITE_P(Registry, TraceReplayAllKernels,
                         ::testing::Values("MCARLO", "SCAN", "FWALSH", "HIST", "SORTNW", "REDUCE",
                                           "PSUM", "OFFT", "KMEANS", "HASH"));

TEST(TraceReplayInjection, SampledCampaignAcrossSeeds) {
  struct Case {
    const char* kernel;
    kernels::InjectionKind kind;
  };
  const Case cases[] = {
      {"REDUCE", kernels::InjectionKind::kRemoveBarrier},
      {"PSUM", kernels::InjectionKind::kRogueCrossBlock},
      {"OFFT", kernels::InjectionKind::kRemoveFence},
      {"HASH", kernels::InjectionKind::kRogueCritical},
  };
  for (const Case& c : cases) {
    for (u32 seed : {0u, 1u, 2u}) {
      BenchOptions opts;
      opts.seed = seed;
      opts.injection.kind = c.kind;
      opts.injection.site = 0;
      expect_replay_matches(c.kernel, detection_combined(), opts,
                            std::string(c.kernel) + "_inj_s" + std::to_string(seed));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(TraceReplayRecording, ByteIdenticalAcrossThreadCounts) {
  // The writer only runs in the engine's serial phases, so the file must
  // not depend on the worker-thread count — same guarantee as the
  // simulation results themselves.
  auto record_bytes = [&](u32 threads, const std::string& path) {
    {
      // Scoped so the Gpu (and its TraceWriter) flushes before we read.
      sim::SimConfig sim_cfg;
      sim_cfg.num_threads = threads;
      sim_cfg.trace_path = path;
      sim::Gpu gpu(test_gpu(), detection_combined(), sim_cfg);
      gpu.set_trace_label("REDUCE");
      PreparedKernel prep = find_benchmark("REDUCE")->prepare(gpu, BenchOptions{});
      const sim::SimResult r = gpu.launch(prep.launch());
      EXPECT_TRUE(r.completed) << r.error;
    }
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  };
  const std::vector<char> t1 = record_bytes(1, trace_file("threads1"));
  const std::vector<char> t2 = record_bytes(2, trace_file("threads2"));
  const std::vector<char> t8 = record_bytes(8, trace_file("threads8"));
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  for (const char* tag : {"threads1", "threads2", "threads8"})
    std::remove(trace_file(tag).c_str());
}

/// Live software-detector verdict for an instrumented run.
u64 live_sw_races(const std::string& name, bool grace) {
  sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
  PreparedKernel prep = find_benchmark(name)->prepare(gpu, BenchOptions{});
  if (grace)
    swrace::attach_grace(gpu, prep);
  else
    swrace::attach_sw_haccrg(gpu, prep);
  const sim::SimResult r = gpu.launch(prep.launch());
  EXPECT_TRUE(r.completed) << name << ": " << r.error;
  return grace ? swrace::grace_race_count(gpu, prep) : swrace::sw_haccrg_race_count(gpu, prep);
}

TEST(TraceReplaySoftware, EmulatorsAgreeWithInstrumentedRunsOnVerdict) {
  // The emulators follow the exact instrumented algorithms but replay the
  // uninstrumented access stream (see sw_replay.hpp for the two
  // documented approximations), so the comparison is on the verdict —
  // does the detector fire at all — not on raw counter values.
  for (const char* name : {"SCAN", "REDUCE", "HIST", "MCARLO"}) {
    const std::string path = trace_file(std::string("sw_") + name);
    sim::SimResult live;
    record(name, rd::HaccrgConfig{}, BenchOptions{}, path, live);
    if (::testing::Test::HasFatalFailure()) return;

    sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
    PreparedKernel prep = find_benchmark(name)->prepare(gpu, BenchOptions{});
    const analysis::StaticRaceReport report = analysis::analyze(prep.program);

    trace::ReplayOptions opts;
    opts.hw = false;
    opts.sw_haccrg = true;
    opts.grace = true;
    opts.sw_is_safe = [&report](u32 pc) { return report.is_safe(pc); };
    const trace::ReplayResult replayed = trace::replay_trace(path, opts);
    ASSERT_TRUE(replayed.ok) << name << ": " << replayed.error;
    ASSERT_EQ(replayed.kernels.size(), 1u);

    EXPECT_EQ(replayed.kernels[0].sw_haccrg_races > 0, live_sw_races(name, false) > 0) << name;
    EXPECT_EQ(replayed.kernels[0].grace_races > 0, live_sw_races(name, true) > 0) << name;
    std::remove(path.c_str());
  }
}

TEST(TraceReplayGolden, CheckedInTraceStillReplaysToItsRaceSet) {
  const std::string golden = std::string(HACCRG_SOURCE_DIR) + "/tests/golden/trace_reduce.trc";
  const std::string expected_path =
      std::string(HACCRG_SOURCE_DIR) + "/tests/golden/trace_reduce_races.txt";
  const trace::ReplayResult replayed = trace::replay_trace(golden);
  ASSERT_TRUE(replayed.ok) << replayed.error
                           << " (regenerate with scripts/regen_golden_trace.sh)";
  std::vector<std::string> got;
  for (const trace::RaceKey& key : replayed.race_set()) got.push_back(trace::race_key_line(key));
  std::sort(got.begin(), got.end());

  std::ifstream in(expected_path);
  ASSERT_TRUE(in.good()) << expected_path;
  std::vector<std::string> want;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    want.push_back(line);
  }
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want) << "golden trace race set drifted; if the detector change is "
                          "intentional, run scripts/regen_golden_trace.sh";
}

}  // namespace
}  // namespace haccrg
