// End-to-end smoke tests of the simulator: functional correctness of
// simple kernels, divergence handling, barrier semantics, and that the
// baseline (detection off) reports no races.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "isa/builder.hpp"
#include "sim/gpu.hpp"

namespace haccrg {
namespace {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;
using sim::Gpu;
using sim::LaunchConfig;
using sim::SimResult;

arch::GpuConfig small_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 4;
  cfg.device_mem_bytes = 8 * 1024 * 1024;
  return cfg;
}

TEST(SimBasic, VectorAdd) {
  Gpu gpu(small_gpu(), rd::HaccrgConfig{});
  const u32 n = 1024;
  const Addr a = gpu.allocator().alloc(n * 4, "a");
  const Addr b = gpu.allocator().alloc(n * 4, "b");
  const Addr c = gpu.allocator().alloc(n * 4, "c");
  for (u32 i = 0; i < n; ++i) {
    gpu.memory().write_u32(a + i * 4, i);
    gpu.memory().write_u32(b + i * 4, 1000 + i);
  }

  KernelBuilder kb("vecadd");
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg pa = kb.param(0);
  Reg pb = kb.param(1);
  Reg pc = kb.param(2);
  Reg addr_a = kb.addr(pa, gid, 4);
  Reg addr_b = kb.addr(pb, gid, 4);
  Reg addr_c = kb.addr(pc, gid, 4);
  Reg va = kb.reg();
  Reg vb = kb.reg();
  kb.ld_global(va, addr_a);
  kb.ld_global(vb, addr_b);
  kb.add(va, va, vb);
  kb.st_global(addr_c, va);
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = n / 128;
  launch.block_dim = 128;
  launch.params = {a, b, c};
  SimResult result = gpu.launch(launch);

  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_GT(result.cycles, 0u);
  for (u32 i = 0; i < n; ++i) {
    EXPECT_EQ(gpu.memory().read_u32(c + i * 4), 1000 + 2 * i) << "at " << i;
  }
  EXPECT_TRUE(result.races.empty());
}

TEST(SimBasic, DivergentIfElse) {
  Gpu gpu(small_gpu(), rd::HaccrgConfig{});
  const u32 n = 64;
  const Addr out = gpu.allocator().alloc(n * 4, "out");

  KernelBuilder kb("diverge");
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg pout = kb.param(0);
  Reg dst = kb.addr(pout, gid, 4);
  Reg parity = kb.reg();
  kb.and_(parity, gid, 1u);
  Pred odd = kb.pred();
  kb.setp(odd, CmpOp::kEq, parity, 1u);
  Reg value = kb.reg();
  kb.if_else(
      odd, [&] { kb.mov(value, 111u); }, [&] { kb.mov(value, 222u); });
  kb.st_global(dst, value);
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 1;
  launch.block_dim = n;
  launch.params = {out};
  SimResult result = gpu.launch(launch);

  ASSERT_TRUE(result.completed) << result.error;
  for (u32 i = 0; i < n; ++i) {
    EXPECT_EQ(gpu.memory().read_u32(out + i * 4), (i & 1) ? 111u : 222u);
  }
}

TEST(SimBasic, PerLaneLoopTripCounts) {
  // Each thread loops `tid % 7` times; exercises divergent loop exits.
  Gpu gpu(small_gpu(), rd::HaccrgConfig{});
  const u32 n = 96;
  const Addr out = gpu.allocator().alloc(n * 4, "out");

  KernelBuilder kb("loops");
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg pout = kb.param(0);
  Reg dst = kb.addr(pout, gid, 4);
  Reg bound = kb.reg();
  kb.rem(bound, gid, 7u);
  Reg acc = kb.imm(0);
  Reg i = kb.reg();
  kb.for_range(i, 0u, isa::Operand(bound), 1u, [&] { kb.add(acc, acc, 5u); });
  kb.st_global(dst, acc);
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 3;
  launch.block_dim = 32;
  launch.params = {out};
  SimResult result = gpu.launch(launch);

  ASSERT_TRUE(result.completed) << result.error;
  for (u32 i2 = 0; i2 < n; ++i2) {
    EXPECT_EQ(gpu.memory().read_u32(out + i2 * 4), (i2 % 7) * 5) << "thread " << i2;
  }
}

TEST(SimBasic, SharedMemoryReductionWithBarriers) {
  Gpu gpu(small_gpu(), rd::HaccrgConfig{});
  const u32 block = 128;
  const u32 blocks = 4;
  const u32 n = block * blocks;
  const Addr in = gpu.allocator().alloc(n * 4, "in");
  const Addr out = gpu.allocator().alloc(blocks * 4, "out");
  u32 expected[4] = {0, 0, 0, 0};
  for (u32 i = 0; i < n; ++i) {
    gpu.memory().write_u32(in + i * 4, i * 3 + 1);
    expected[i / block] += i * 3 + 1;
  }

  KernelBuilder kb("reduce_smoke");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg bid = kb.special(isa::SpecialReg::kCtaId);
  Reg pin = kb.param(0);
  Reg pout = kb.param(1);
  Reg src = kb.addr(pin, gid, 4);
  Reg v = kb.reg();
  kb.ld_global(v, src);
  Reg saddr = kb.reg();
  kb.mul(saddr, tid, 4u);
  kb.st_shared(saddr, v);
  kb.barrier();

  // Tree reduction: stride halves each step.
  Reg stride = kb.imm(block / 2);
  Pred more = kb.pred();
  kb.while_(
      [&] {
        kb.setp(more, CmpOp::kGtU, stride, 0u);
        return more;
      },
      [&] {
        Pred lower = kb.pred();
        kb.setp(lower, CmpOp::kLtU, tid, isa::Operand(stride));
        kb.if_(lower, [&] {
          Reg other = kb.reg();
          kb.add(other, tid, isa::Operand(stride));
          kb.mul(other, other, 4u);
          Reg mine = kb.reg();
          Reg theirs = kb.reg();
          kb.ld_shared(mine, saddr);
          kb.ld_shared(theirs, other);
          kb.add(mine, mine, theirs);
          kb.st_shared(saddr, mine);
        });
        kb.shr(stride, stride, 1u);
        kb.barrier();
      });

  Pred is0 = kb.pred();
  kb.setp(is0, CmpOp::kEq, tid, 0u);
  kb.if_(is0, [&] {
    Reg sum = kb.reg();
    Reg zero = kb.imm(0);
    kb.ld_shared(sum, zero);
    Reg dst = kb.addr(pout, bid, 4);
    kb.st_global(dst, sum);
  });
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = blocks;
  launch.block_dim = block;
  launch.shared_mem_bytes = block * 4;
  launch.params = {in, out};
  SimResult result = gpu.launch(launch);

  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(result.barriers > 0, true);
  for (u32 b = 0; b < blocks; ++b) {
    EXPECT_EQ(gpu.memory().read_u32(out + b * 4), expected[b]) << "block " << b;
  }
}

TEST(SimBasic, GlobalAtomicsSumAndHistogram) {
  Gpu gpu(small_gpu(), rd::HaccrgConfig{});
  const u32 n = 512;
  const Addr sum = gpu.allocator().alloc(4, "sum");
  const Addr hist = gpu.allocator().alloc(8 * 4, "hist");
  gpu.memory().fill(sum, 4, 0);
  gpu.memory().fill(hist, 8 * 4, 0);

  KernelBuilder kb("atomics");
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg psum = kb.param(0);
  Reg phist = kb.param(1);
  Reg one = kb.imm(1);
  Reg old = kb.reg();
  kb.atom_global(old, isa::AtomicOp::kAdd, psum, one);
  Reg bucket = kb.reg();
  kb.rem(bucket, gid, 8u);
  Reg baddr = kb.addr(phist, bucket, 4);
  kb.atom_global(old, isa::AtomicOp::kAdd, baddr, one);
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 4;
  launch.block_dim = 128;
  launch.params = {sum, hist};
  SimResult result = gpu.launch(launch);

  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(gpu.memory().read_u32(sum), n);
  for (u32 b = 0; b < 8; ++b) EXPECT_EQ(gpu.memory().read_u32(hist + b * 4), n / 8);
  EXPECT_EQ(result.global_atomics, 2u * (n / 32));  // two atomics per warp inst
}

TEST(SimBasic, SpinLockCriticalSection) {
  // 256 threads increment a shared counter under a lock; the final value
  // must be exact — a lost update means the lock idiom is broken.
  Gpu gpu(small_gpu(), rd::HaccrgConfig{});
  const Addr lock = gpu.allocator().alloc(4, "lock");
  const Addr counter = gpu.allocator().alloc(4, "counter");
  gpu.memory().fill(lock, 4, 0);
  gpu.memory().fill(counter, 4, 0);

  KernelBuilder kb("locked_inc");
  Reg plock = kb.param(0);
  Reg pcounter = kb.param(1);
  kb.with_lock(plock, [&] {
    Reg v = kb.reg();
    kb.ld_global(v, pcounter);
    kb.add(v, v, 1u);
    kb.st_global(pcounter, v);
  });
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 4;
  launch.block_dim = 64;
  launch.params = {lock, counter};
  SimResult result = gpu.launch(launch);

  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(gpu.memory().read_u32(counter), 256u);
  EXPECT_EQ(gpu.memory().read_u32(lock), 0u);
}

TEST(SimBasic, ByteAccessWidths) {
  Gpu gpu(small_gpu(), rd::HaccrgConfig{});
  const u32 n = 256;
  const Addr in = gpu.allocator().alloc(n, "in");
  const Addr out = gpu.allocator().alloc(n, "out");
  for (u32 i = 0; i < n; ++i) gpu.memory().write_u8(in + i, static_cast<u8>(i * 7));

  KernelBuilder kb("bytes");
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg pin = kb.param(0);
  Reg pout = kb.param(1);
  Reg src = kb.reg();
  kb.add(src, gid, isa::Operand(pin));
  Reg dst = kb.reg();
  kb.add(dst, gid, isa::Operand(pout));
  Reg v = kb.reg();
  kb.ld_global(v, src, 0, 1);
  kb.add(v, v, 1u);
  kb.st_global(dst, v, 0, 1);
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 2;
  launch.block_dim = 128;
  launch.params = {in, out};
  SimResult result = gpu.launch(launch);

  ASSERT_TRUE(result.completed) << result.error;
  for (u32 i = 0; i < n; ++i) {
    EXPECT_EQ(gpu.memory().read_u8(out + i), static_cast<u8>(i * 7 + 1));
  }
}

TEST(SimBasic, FenceCompletesAndCountsAreSane) {
  Gpu gpu(small_gpu(), rd::HaccrgConfig{});
  const u32 n = 128;
  const Addr buf = gpu.allocator().alloc(n * 4, "buf");

  KernelBuilder kb("fence");
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg pbuf = kb.param(0);
  Reg dst = kb.addr(pbuf, gid, 4);
  kb.st_global(dst, gid);
  kb.memfence();
  Reg v = kb.reg();
  kb.ld_global(v, dst);
  kb.add(v, v, 1u);
  kb.st_global(dst, v);
  isa::Program prog = kb.build();

  LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 1;
  launch.block_dim = n;
  launch.params = {buf};
  SimResult result = gpu.launch(launch);

  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(result.fences, n / 32);
  for (u32 i = 0; i < n; ++i) EXPECT_EQ(gpu.memory().read_u32(buf + i * 4), i + 1);
}

}  // namespace
}  // namespace haccrg
