// Fuzz generator invariants: fragment traits pinned against the
// builder's actual allocation, spec serialization round-trips, seeded
// generation is deterministic, every generated program leaves room for
// both instrumentation schemes, the oracle agrees with the traits
// table, and the shrinker only ever returns valid specs that still
// satisfy the predicate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/spec.hpp"
#include "swrace/grace.hpp"
#include "swrace/sw_haccrg.hpp"

namespace haccrg::fuzz {
namespace {

KernelSpec single(FragmentKind kind, u32 grid = 4, u32 block = 128, u32 a0 = 7, u32 a1 = 3) {
  KernelSpec spec;
  spec.name = std::string("t-") + std::string(fragment_kind_name(kind));
  spec.grid_dim = grid;
  spec.block_dim = block;
  FragmentSpec frag;
  frag.kind = kind;
  frag.arg = {a0, a1};
  spec.fragments.push_back(frag);
  return spec;
}

std::vector<FragmentKind> all_kinds() {
  std::vector<FragmentKind> kinds;
  for (u32 i = 0; i < kNumFragmentKinds; ++i) kinds.push_back(static_cast<FragmentKind>(i));
  return kinds;
}

// --- Traits pinned against the builder ---------------------------------------

// The packing budget assumes every emitter stays within its declared
// register/predicate cost. Measure the real cost of each kind as the
// delta over a minimal one-fragment baseline and require the traits to
// dominate it — a drifting emitter fails here, not as a register-file
// overflow under instrumentation.
TEST(FuzzTraits, DominateActualBuilderAllocation) {
  // lane_mask_barrier allocates the least on top of the shared prologue.
  const GeneratedKernel base = generate(single(FragmentKind::kLaneMaskBarrier));
  for (FragmentKind kind : all_kinds()) {
    KernelSpec spec = single(kind);
    // Worst-case args: loop trips and masks saturate at small moduli,
    // so any byte exercises the max register shape.
    spec.fragments[0].arg = {0xff, 0xff};
    const GeneratedKernel one = generate(spec);
    const FragmentTraits& t = fragment_traits(kind);
    // The prologue (arena/tid/bid/gtid/lane/zero/one) is shared across
    // fragments; 7 registers + the baseline fragment's 2 bound it.
    EXPECT_LE(one.program.regs_used(), t.regs + 9)
        << fragment_kind_name(kind) << " exceeds its register trait";
    EXPECT_LE(one.program.preds_used(), t.preds + 1)
        << fragment_kind_name(kind) << " exceeds its predicate trait";
    (void)base;
  }
}

TEST(FuzzTraits, EveryProgramFitsBothInstrumentationSchemes) {
  for (FragmentKind kind : all_kinds()) {
    const GeneratedKernel one = generate(single(kind));
    EXPECT_TRUE(swrace::sw_haccrg_fits(one.program)) << fragment_kind_name(kind);
    EXPECT_TRUE(swrace::grace_fits(one.program)) << fragment_kind_name(kind);
  }
  // Seeded multi-fragment kernels respect the same headroom: the spec
  // budget (48 regs / 10 preds) plus the prologue stays under the
  // register file minus the larger scratch claim.
  for (u64 seed = 1; seed <= 64; ++seed) {
    const GeneratedKernel kernel = generate(spec_from_seed(seed));
    EXPECT_TRUE(swrace::sw_haccrg_fits(kernel.program)) << "seed " << seed;
    EXPECT_TRUE(swrace::grace_fits(kernel.program)) << "seed " << seed;
  }
}

TEST(FuzzTraits, OracleAgreesWithRacyFlag) {
  for (FragmentKind kind : all_kinds()) {
    const GeneratedKernel one = generate(single(kind));
    const FragmentTraits& t = fragment_traits(kind);
    EXPECT_EQ(!one.oracle.pairs.empty(), t.racy) << fragment_kind_name(kind);
    EXPECT_EQ(one.oracle.sw_expected, t.sw_flags) << fragment_kind_name(kind);
    EXPECT_EQ(one.oracle.grace_expected, t.shared_store) << fragment_kind_name(kind);
    for (const OraclePair& pair : one.oracle.pairs) {
      EXPECT_FALSE(pair.pcs.empty());
      EXPECT_EQ(pair.hw_visible, pair.cls != OracleClass::kAtomicBlind);
      for (u32 pc : pair.pcs) EXPECT_LT(pc, one.program.size());
    }
  }
}

TEST(FuzzTraits, SharedFootprintFitsTheScratchpad) {
  // Worst case: six copies of the hungriest shared fragment at block 128
  // must fit the 16 KB per-SM scratchpad.
  u32 worst = 0;
  for (FragmentKind kind : all_kinds())
    worst = std::max(worst, fragment_traits(kind).shared_words);
  EXPECT_LE(kMaxFragmentsPerKernel * worst * 4, 16u * 1024u);
}

// --- Spec serialization ------------------------------------------------------

TEST(FuzzSpec, SerializeParseRoundTrips) {
  for (u64 seed = 1; seed <= 32; ++seed) {
    const KernelSpec spec = spec_from_seed(seed);
    KernelSpec back;
    ASSERT_TRUE(KernelSpec::parse(spec.serialize(), back).ok()) << spec.serialize();
    EXPECT_EQ(back.serialize(), spec.serialize());
  }
}

TEST(FuzzSpec, ParseRejectsMalformedInput) {
  const char* cases[] = {
      "",                                                        // no header
      "haccrg-fuzz-spec v2\nend\n",                              // wrong version
      "haccrg-fuzz-spec v1\n",                                   // missing end
      "haccrg-fuzz-spec v1\nend\n",                              // no fragments
      "haccrg-fuzz-spec v1\nfragment nope 0 0\nend\n",           // unknown kind
      "haccrg-fuzz-spec v1\nfragment shared_waw 0\nend\n",       // short fragment
      "haccrg-fuzz-spec v1\ngrid 3\nfragment shared_waw 0 0\nend\n",   // bad geometry
      "haccrg-fuzz-spec v1\nblock 13\nfragment shared_waw 0 0\nend\n", // bad geometry
      "haccrg-fuzz-spec v1\nbogus 1\nend\n",                     // unknown directive
  };
  for (const char* text : cases) {
    KernelSpec out;
    out.name = "sentinel";
    EXPECT_FALSE(KernelSpec::parse(text, out).ok()) << text;
    EXPECT_EQ(out.name, "sentinel") << "out must be untouched on error";
  }
}

TEST(FuzzSpec, ValidateEnforcesPackingBudget) {
  KernelSpec spec;
  // fence_publish costs 14 regs; four of them blow the 48-reg budget.
  for (int i = 0; i < 4; ++i) {
    FragmentSpec frag;
    frag.kind = FragmentKind::kFencePublish;
    spec.fragments.push_back(frag);
  }
  EXPECT_FALSE(spec.validate().ok());
  spec.fragments.resize(3);
  EXPECT_TRUE(spec.validate().ok());
}

TEST(FuzzSpec, SeededSpecsAreDeterministicAndValid) {
  for (u64 seed = 1; seed <= 128; ++seed) {
    const KernelSpec a = spec_from_seed(seed);
    const KernelSpec b = spec_from_seed(seed);
    EXPECT_EQ(a.serialize(), b.serialize());
    EXPECT_TRUE(a.validate().ok()) << a.serialize();
  }
}

TEST(FuzzSpec, GenerationIsDeterministic) {
  for (u64 seed = 1; seed <= 16; ++seed) {
    const GeneratedKernel a = generate(spec_from_seed(seed));
    const GeneratedKernel b = generate(spec_from_seed(seed));
    EXPECT_EQ(a.program.disassemble(), b.program.disassemble());
    EXPECT_EQ(a.shared_mem_bytes, b.shared_mem_bytes);
    EXPECT_EQ(a.arena_words, b.arena_words);
    ASSERT_EQ(a.oracle.pairs.size(), b.oracle.pairs.size());
    for (size_t i = 0; i < a.oracle.pairs.size(); ++i)
      EXPECT_EQ(a.oracle.pairs[i].pcs, b.oracle.pairs[i].pcs);
  }
}

TEST(FuzzSpec, ConfigRestrictsTheLibrary) {
  FuzzConfig safe_only;
  safe_only.racy_fragments = false;
  FuzzConfig racy_only;
  racy_only.safe_fragments = false;
  for (u64 seed = 1; seed <= 32; ++seed) {
    for (const FragmentSpec& f : spec_from_seed(seed, safe_only).fragments)
      EXPECT_FALSE(fragment_traits(f.kind).racy);
    for (const FragmentSpec& f : spec_from_seed(seed, racy_only).fragments)
      EXPECT_TRUE(fragment_traits(f.kind).racy);
  }
}

// --- Oracle helpers ----------------------------------------------------------

TEST(FuzzOracle, MechanismMapping) {
  EXPECT_TRUE(mechanism_matches(OracleClass::kSharedEpoch, rd::RaceMechanism::kBarrier));
  EXPECT_TRUE(mechanism_matches(OracleClass::kGlobalEpoch, rd::RaceMechanism::kBarrier));
  EXPECT_TRUE(mechanism_matches(OracleClass::kFence, rd::RaceMechanism::kFence));
  EXPECT_TRUE(mechanism_matches(OracleClass::kFence, rd::RaceMechanism::kL1Stale));
  EXPECT_TRUE(mechanism_matches(OracleClass::kLockset, rd::RaceMechanism::kLockset));
  EXPECT_TRUE(mechanism_matches(OracleClass::kIntraWarpWaw, rd::RaceMechanism::kIntraWarpWaw));
  EXPECT_FALSE(mechanism_matches(OracleClass::kSharedEpoch, rd::RaceMechanism::kLockset));
  EXPECT_FALSE(mechanism_matches(OracleClass::kAtomicBlind, rd::RaceMechanism::kBarrier));
  EXPECT_FALSE(mechanism_matches(OracleClass::kAtomicBlind, rd::RaceMechanism::kFence));
}

TEST(FuzzOracle, CompletenessFlagsAnEmptyLog) {
  const GeneratedKernel racy = generate(single(FragmentKind::kSharedWaw));
  ASSERT_TRUE(racy.oracle.any_hw_visible());
  rd::RaceLog empty;
  EXPECT_FALSE(racy.oracle.check_hw_complete(empty).empty());
  EXPECT_TRUE(racy.oracle.check_hw_precise(empty).empty());
}

TEST(FuzzOracle, PrecisionFlagsAForeignRecord) {
  const GeneratedKernel safe = generate(single(FragmentKind::kGlobalAffine));
  rd::RaceLog log;
  rd::RaceRecord record;
  record.space = rd::MemSpace::kGlobal;
  record.mechanism = rd::RaceMechanism::kBarrier;
  record.pc = 2;
  log.record(record);
  EXPECT_FALSE(safe.oracle.check_hw_precise(log).empty());
}

// --- Shrinking ---------------------------------------------------------------

TEST(FuzzShrink, ReducesToTheSmallestSpecSatisfyingThePredicate) {
  // Start big; the property is "contains a shared_waw fragment".
  KernelSpec spec;
  spec.grid_dim = 4;
  spec.block_dim = 128;
  for (FragmentKind kind : {FragmentKind::kReduceTree, FragmentKind::kSharedWaw,
                            FragmentKind::kGlobalAffine, FragmentKind::kBroadcastRead}) {
    FragmentSpec frag;
    frag.kind = kind;
    frag.arg = {9, 9};
    spec.fragments.push_back(frag);
  }
  const SpecPredicate has_waw = [](const KernelSpec& s) {
    for (const FragmentSpec& f : s.fragments)
      if (f.kind == FragmentKind::kSharedWaw) return true;
    return false;
  };
  const ShrinkResult result = shrink(spec, has_waw);
  EXPECT_TRUE(has_waw(result.spec));
  EXPECT_TRUE(result.spec.validate().ok());
  EXPECT_EQ(result.spec.fragments.size(), 1u);
  EXPECT_EQ(result.spec.grid_dim, 2u);
  EXPECT_EQ(result.spec.block_dim, 64u);
  EXPECT_EQ(result.spec.fragments[0].arg[0], 0u);
  EXPECT_EQ(result.spec.fragments[0].arg[1], 0u);
  EXPECT_GE(result.steps, 3u);
  EXPECT_GE(result.evaluations, result.steps);
}

TEST(FuzzShrink, FixpointOnAnAlreadyMinimalSpec) {
  const KernelSpec minimal = single(FragmentKind::kSharedWaw, 2, 64, 0, 0);
  const ShrinkResult result = shrink(minimal, [](const KernelSpec&) { return true; });
  EXPECT_EQ(result.spec.serialize(), minimal.serialize());
  EXPECT_EQ(result.steps, 0u);
}

}  // namespace
}  // namespace haccrg::fuzz
