#!/usr/bin/env bash
# Exit-code contract test for the haccrg-trace CLI.
#
#   0 success            3 missing/unreadable file   5 version mismatch
#   1 diff mismatch      4 bad magic                 6 corrupt/truncated
#   2 usage/other error
#
# Every failure must be a clean diagnosed exit — no aborts, no uncaught
# throws (exit codes >= 128 would betray a signal), and a non-empty
# stderr diagnosis on every non-zero path.
set -u

BIN=$1
WORK=${2:-$(mktemp -d)}
# The test runs from inside $WORK, so a relative binary path (as
# scripts/check.sh passes) must be anchored to the caller's cwd first.
case "$BIN" in /*) ;; *) BIN="$PWD/$BIN" ;; esac
mkdir -p "$WORK"
cd "$WORK" || exit 99

fails=0

# expect_exit WANT [--quiet-ok] CMD...: run CMD, check the exit code, and
# on non-zero codes check stderr carries a diagnosis.
expect_exit() {
  local want=$1
  shift
  "$@" >cli_stdout.txt 2>cli_stderr.txt
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: expected exit $want, got $got: $*"
    sed 's/^/  stderr: /' cli_stderr.txt
    fails=$((fails + 1))
    return
  fi
  # diff's mismatch verdict (1) is reported on stdout; every other
  # failure must carry a stderr diagnosis.
  if [ "$want" -ge 2 ] && [ ! -s cli_stderr.txt ]; then
    echo "FAIL: exit $want with empty stderr: $*"
    fails=$((fails + 1))
  fi
}

# patch_byte FILE OFFSET HEXBYTE: overwrite one byte in place.
patch_byte() {
  printf "$(printf '\\x%s' "$3")" |
    dd of="$1" bs=1 seek="$2" count=1 conv=notrunc status=none
}

# --- Usage errors (2) --------------------------------------------------------
expect_exit 2 "$BIN"
expect_exit 2 "$BIN" frobnicate
expect_exit 2 "$BIN" info
expect_exit 2 "$BIN" dump good.trc --bogus-flag

# --- Missing file (3) --------------------------------------------------------
expect_exit 3 "$BIN" info ./does_not_exist.trc
expect_exit 3 "$BIN" dump ./does_not_exist.trc
expect_exit 3 "$BIN" replay ./does_not_exist.trc

# --- A good recording to mutate ----------------------------------------------
expect_exit 0 "$BIN" record --kernel REDUCE --out good.trc
expect_exit 0 "$BIN" info good.trc
expect_exit 0 "$BIN" dump good.trc --limit 5
expect_exit 0 "$BIN" replay good.trc
expect_exit 0 "$BIN" diff good.trc good.trc

# --- Bad magic (4) -----------------------------------------------------------
printf 'this is not a haccrg trace at all\n' > notatrace.trc
expect_exit 4 "$BIN" info notatrace.trc
expect_exit 4 "$BIN" replay notatrace.trc

# --- Version mismatch (5) ----------------------------------------------------
cp good.trc version.trc
patch_byte version.trc 8 63  # version low byte (magic is 8 bytes)
expect_exit 5 "$BIN" info version.trc
expect_exit 5 "$BIN" dump version.trc

# --- Corrupt / truncated stream (6) ------------------------------------------
size=$(wc -c < good.trc)
head -c $((size - 4)) good.trc > truncated.trc
expect_exit 6 "$BIN" info truncated.trc
expect_exit 6 "$BIN" replay truncated.trc

# Stomp a 16-byte run in the middle of the event stream: dump fails with
# the corruption code, dump --resync skips the damage, reports the loss
# on stderr, and exits 0.
cp good.trc damaged.trc
mid=$((size / 2))
for i in $(seq 0 15); do patch_byte damaged.trc $((mid + i)) ff; done
expect_exit 6 "$BIN" dump damaged.trc
expect_exit 0 "$BIN" dump damaged.trc --resync
if ! grep -q "recovered" cli_stderr.txt; then
  echo "FAIL: dump --resync did not report its recovery"
  fails=$((fails + 1))
fi

# --- diff: readable inputs, differing race sets (1) --------------------------
printf '# race set A\n' > races_a.txt
printf '# race set B\nspace=0 type=1 mech=0 granule=0x10 sm=0 first=1 second=2 pc=3 cycle=4\n' \
  > races_b.txt
expect_exit 0 "$BIN" diff races_a.txt races_a.txt
expect_exit 1 "$BIN" diff races_a.txt races_b.txt
expect_exit 3 "$BIN" replay ./still_missing.trc

# --- Env validation on the record path (2) -----------------------------------
expect_exit 2 env HACCRG_FAULTS="bogus_key=1" "$BIN" record --kernel REDUCE --out env.trc
if ! grep -q "HACCRG_FAULTS" cli_stderr.txt; then
  echo "FAIL: bad HACCRG_FAULTS not diagnosed by name"
  fails=$((fails + 1))
fi
expect_exit 2 env HACCRG_THREADS="notanumber" "$BIN" record --kernel REDUCE --out env.trc

# A valid fault plan on the record path must still produce a recording
# (possibly a damaged one when trace_corrupt is armed — that is the point).
expect_exit 0 env HACCRG_FAULTS="seed=5,icnt_delay=1000" \
  "$BIN" record --kernel REDUCE --out faulty.trc
expect_exit 0 "$BIN" info faulty.trc

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed"
  exit 1
fi
echo "all exit-code checks passed"
exit 0
