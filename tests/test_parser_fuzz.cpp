// Table-driven + seeded-mutation malformed-input suite for every
// Status-returning parser a user can feed bytes into: HACCRG_FAULTS
// plans, suppression files, the strict environment parser, analyze-
// options compatibility, and the fuzz spec format. The contract under
// test is uniform: never crash, never abort, and on failure leave the
// out-parameter untouched. Mutations reuse the fuzzer's seed machinery
// (SplitMix64), so a failing case is reproducible from its seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/static_race.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "fuzz/spec.hpp"
#include "haccrg/options.hpp"
#include "serve/protocol.hpp"
#include "sim/sim_config.hpp"

namespace haccrg {
namespace {

/// One seeded byte-level mutation: replace, insert, or delete at a
/// random position (the classic dumb-fuzz trio).
std::string mutate(const std::string& input, SplitMix64& rng) {
  std::string s = input;
  const u64 roll = rng.next();
  const size_t pos = s.empty() ? 0 : rng.next() % s.size();
  const char byte = static_cast<char>(rng.next() & 0xff);
  switch (roll % 3) {
    case 0:
      if (!s.empty()) s[pos] = byte;
      break;
    case 1: s.insert(pos, 1, byte); break;
    default:
      if (!s.empty()) s.erase(pos, 1);
      break;
  }
  return s;
}

// --- FaultPlan::parse --------------------------------------------------------

TEST(ParserFuzzFaultPlan, MalformedTable) {
  const char* cases[] = {
      "seed",             // no '='
      "seed=",            // empty value
      "seed=abc",         // non-numeric
      "=5",               // empty key
      "bogus=1",          // unknown key
      "shared_flip=-1",   // negative
      "shared_flip=1000001",  // > 1e6 ppm
      "seed=1 icnt_drop=5",   // wrong separator
      "shared_flip=999999999999999999999",  // overflow
  };
  for (const char* text : cases) {
    fault::FaultPlan plan;
    plan.seed = 123;
    plan.set_rate(fault::FaultSite::kIcntDup, 77);
    EXPECT_FALSE(fault::FaultPlan::parse(text, plan).ok()) << text;
    EXPECT_EQ(plan.seed, 123u) << "out must be untouched: " << text;
    EXPECT_EQ(plan.rate(fault::FaultSite::kIcntDup), 77u) << text;
  }
}

TEST(ParserFuzzFaultPlan, EmptyPairsAreTolerated) {
  // Documented leniency: "a=1,,b=2" and trailing commas parse.
  fault::FaultPlan plan;
  ASSERT_TRUE(fault::FaultPlan::parse("seed=1,,icnt_drop=5,", plan).ok());
  EXPECT_EQ(plan.seed, 1u);
  EXPECT_EQ(plan.rate(fault::FaultSite::kIcntDrop), 5u);
}

TEST(ParserFuzzFaultPlan, ServeSitesParse) {
  // The serving chaos sites share the plan grammar and the ppm range
  // check with the simulator sites.
  fault::FaultPlan plan;
  ASSERT_TRUE(fault::FaultPlan::parse(
                  "seed=3,serve_worker_stall=1000000,serve_queue_reject=250000", plan)
                  .ok());
  EXPECT_EQ(plan.rate(fault::FaultSite::kServeWorkerStall), 1'000'000u);
  EXPECT_EQ(plan.rate(fault::FaultSite::kServeQueueReject), 250'000u);

  fault::FaultPlan untouched;
  untouched.seed = 55;
  EXPECT_FALSE(fault::FaultPlan::parse("serve_frame_corrupt=1000001", untouched).ok());
  EXPECT_EQ(untouched.seed, 55u);
}

TEST(ParserFuzzFaultPlan, SeededMutationsNeverCrash) {
  const std::string valid =
      "seed=7,shared_flip=100,global_flip=200,bloom_flip=300,racereg_drop=400,"
      "icnt_drop=500,icnt_dup=600,icnt_delay=700,dram_flip=800,trace_corrupt=900,"
      "serve_frame_truncate=50,serve_frame_corrupt=60,serve_decode_corrupt=70,"
      "serve_worker_stall=80,serve_queue_reject=90";
  SplitMix64 rng(0x66757a7aULL);
  for (int i = 0; i < 2000; ++i) {
    std::string text = valid;
    const u32 rounds = 1 + static_cast<u32>(rng.next() % 4);
    for (u32 r = 0; r < rounds; ++r) text = mutate(text, rng);
    fault::FaultPlan plan;
    plan.seed = 31337;
    const Status st = fault::FaultPlan::parse(text, plan);
    if (!st.ok()) {
      EXPECT_EQ(plan.seed, 31337u) << "iteration " << i << ": " << text;
    }
  }
}

// --- Suppression files -------------------------------------------------------

TEST(ParserFuzzSuppressions, MalformedTable) {
  const char* cases[] = {
      "{",                          // unterminated block
      "}",                          // close without open
      "{\n}\n",                     // block without a name
      "{\n{\n",                     // nested open
      "stray content\n",            // content outside a block
      "{\nname\nkernel:\n}\n",      // empty value
      "{\nname\npc: 12x\n}\n",      // non-decimal pc
      "{\nname\nsecond name\n}\n",  // two names
  };
  for (const char* text : cases) {
    std::vector<analysis::Suppression> out(1);
    EXPECT_FALSE(analysis::parse_suppressions(text, out).ok()) << text;
    EXPECT_EQ(out.size(), 1u) << "out must be untouched: " << text;
  }
}

TEST(ParserFuzzSuppressions, ValidFileAppends) {
  const std::string text =
      "# comment\n{\nknown-hist-race\nkernel: HIST\nkind: may-race\npc: 12\n}\n"
      "{\ncatch-all\n}\n";
  std::vector<analysis::Suppression> out(1);
  ASSERT_TRUE(analysis::parse_suppressions(text, out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].name, "known-hist-race");
  EXPECT_EQ(out[1].kernel_glob, "HIST");
  EXPECT_EQ(out[1].pc, "12");
  EXPECT_EQ(out[2].kernel_glob, "*");
}

TEST(ParserFuzzSuppressions, SeededMutationsNeverCrash) {
  const std::string valid = "{\nname-1\nkernel: SCAN\nkind: lint:*\npc: 3\n}\n";
  SplitMix64 rng(0x73757070ULL);
  for (int i = 0; i < 2000; ++i) {
    std::string text = valid;
    const u32 rounds = 1 + static_cast<u32>(rng.next() % 4);
    for (u32 r = 0; r < rounds; ++r) text = mutate(text, rng);
    std::vector<analysis::Suppression> out(2);
    const Status st = analysis::parse_suppressions(text, out);
    if (!st.ok()) {
      EXPECT_EQ(out.size(), 2u) << "iteration " << i << ": " << text;
    }
  }
}

TEST(ParserFuzzSuppressions, LoadMissingFileIsNotFound) {
  std::vector<analysis::Suppression> out;
  const Status st = analysis::load_suppressions("/nonexistent/suppressions.supp", out);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_TRUE(out.empty());
}

// --- SimConfig::parse_env ----------------------------------------------------

class ParserFuzzSimEnv : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("HACCRG_THREADS");
    unsetenv("HACCRG_FAULTS");
  }
};

TEST_F(ParserFuzzSimEnv, MalformedThreadsTable) {
  const char* cases[] = {"0", "abc", "-3", "65", "1e3", "999999999999"};
  for (const char* value : cases) {
    setenv("HACCRG_THREADS", value, 1);
    sim::SimConfig out;
    out.num_threads = 31;
    EXPECT_FALSE(sim::SimConfig::parse_env(out).ok()) << value;
    EXPECT_EQ(out.num_threads, 31u) << "out must be untouched: " << value;
  }
}

TEST_F(ParserFuzzSimEnv, MalformedFaultsRejected) {
  setenv("HACCRG_THREADS", "2", 1);
  setenv("HACCRG_FAULTS", "seed=oops", 1);
  sim::SimConfig out;
  EXPECT_FALSE(sim::SimConfig::parse_env(out).ok());
  setenv("HACCRG_FAULTS", "seed=9,icnt_drop=100", 1);
  ASSERT_TRUE(sim::SimConfig::parse_env(out).ok());
  EXPECT_EQ(out.num_threads, 2u);
  EXPECT_EQ(out.faults.seed, 9u);
}

// --- filter_compatible (AnalyzeOptions vs detector config) -------------------

TEST(ParserFuzzFilterCompat, RejectsIncompatibleReports) {
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.enable_global = true;
  det.shared_granularity = 16;
  det.global_granularity = 4;

  analysis::AnalyzeOptions matching = analysis::options_for(det, 64, 2);
  EXPECT_TRUE(analysis::filter_compatible(matching, det, 64, 2).ok());

  analysis::AnalyzeOptions wrong_gran = matching;
  wrong_gran.shared_granularity = 4;
  EXPECT_FALSE(analysis::filter_compatible(wrong_gran, det, 64, 2).ok());

  analysis::AnalyzeOptions wrong_geom = matching;
  wrong_geom.block_dim = 128;
  EXPECT_FALSE(analysis::filter_compatible(wrong_geom, det, 64, 2).ok());

  rd::HaccrgConfig regrouped = det;
  regrouped.warp_regrouping = true;
  analysis::AnalyzeOptions warp_sync = matching;
  warp_sync.warp_synchronous = true;
  EXPECT_FALSE(analysis::filter_compatible(warp_sync, regrouped, 64, 2).ok());
}

// --- serve protocol: parse_request / parse_response --------------------------

/// A sentinel-filled request whose every field must survive a failed
/// parse untouched (the serve parser's documented contract).
serve::Request sentinel_request() {
  serve::Request r;
  r.verb = serve::Verb::kCancel;
  r.job_id = 424242;
  r.workers = 17;
  r.kernel = 99;
  r.wait = true;
  r.deadline_ms = 31337;
  r.trace = {0xde, 0xad};
  return r;
}

void expect_request_untouched(const serve::Request& r, const std::string& what) {
  EXPECT_EQ(r.verb, serve::Verb::kCancel) << what;
  EXPECT_EQ(r.job_id, 424242u) << what;
  EXPECT_EQ(r.workers, 17u) << what;
  EXPECT_EQ(r.kernel, 99) << what;
  EXPECT_TRUE(r.wait) << what;
  EXPECT_EQ(r.deadline_ms, 31337u) << what;
  EXPECT_EQ(r.trace, (std::vector<u8>{0xde, 0xad})) << what;
}

TEST(ParserFuzzServeRequest, MalformedTable) {
  const char* cases[] = {
      "",                                // empty payload
      "\n",                              // no verb
      "FROBNICATE\n\n",                  // unknown verb
      "SUBMIT\n\n",                      // SUBMIT without a body
      "SUBMIT\nworkers: 0\n\nxx",        // workers below range
      "SUBMIT\nworkers: 65\n\nxx",       // workers above range
      "SUBMIT\nworkers: -2\n\nxx",       // signed number
      "SUBMIT\nworkers: 2\nworkers: 2\n\nxx",  // duplicate field
      "SUBMIT\nkernel: 9999999\n\nxx",   // kernel over the cap
      "SUBMIT\njob: 5\n\nxx",            // field of another verb
      "RESULT\n\n",                      // job verbs need a job id
      "RESULT\njob: 0\n\n",              // job ids start at 1
      "RESULT\njob: abc\n\n",            // non-numeric
      "RESULT\njob: 1\nwait: 2\n\n",     // wait is 0/1
      "RESULT\njob: 1\n\ntrailing",      // body on a bodiless verb
      "STATS\nbogus: 1\n\n",             // unknown field
      "STATS\nbogus 1\n\n",              // field without ': '
      "STATS\n",                         // missing blank-line terminator
      "CANCEL\njob: 1\x01\n\n",          // non-printable byte in the head
      "SUBMIT\ndeadline_ms: 0\n\nxx",        // deadlines start at 1ms
      "SUBMIT\ndeadline_ms: 86400001\n\nxx", // above the 24h cap
      "SUBMIT\ndeadline_ms: abc\n\nxx",      // non-numeric deadline
      "SUBMIT\ndeadline_ms: -5\n\nxx",       // signed deadline
      "RESULT\njob: 1\ndeadline_ms: 5\n\n",  // deadline is SUBMIT-only
  };
  for (const char* text : cases) {
    serve::Request out = sentinel_request();
    EXPECT_FALSE(
        serve::parse_request(reinterpret_cast<const u8*>(text), std::strlen(text), out).ok())
        << text;
    expect_request_untouched(out, text);
  }
}

TEST(ParserFuzzServeRequest, SeededMutationsNeverCrash) {
  serve::Request valid;
  valid.verb = serve::Verb::kSubmit;
  valid.workers = 4;
  valid.kernel = 2;
  valid.deadline_ms = 1500;
  valid.trace = {0x10, 0x20, 0x30, 0x40, 0x50};
  std::vector<u8> encoded;
  serve::encode_request(valid, encoded);
  const std::string base(encoded.begin(), encoded.end());

  SplitMix64 rng(0x73657276ULL);
  u32 accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string text = base;
    const u32 rounds = 1 + static_cast<u32>(rng.next() % 4);
    for (u32 r = 0; r < rounds; ++r) text = mutate(text, rng);
    serve::Request out = sentinel_request();
    const Status st =
        serve::parse_request(reinterpret_cast<const u8*>(text.data()), text.size(), out);
    if (st.ok()) {
      ++accepted;  // a mutated body is still a valid SUBMIT
    } else {
      expect_request_untouched(out, "iteration " + std::to_string(i));
    }
  }
  // Body bytes are opaque, so plenty of mutants must still parse.
  EXPECT_GT(accepted, 0u);
}

TEST(ParserFuzzServeResponse, SeededMutationsNeverCrash) {
  serve::Response valid;
  valid.ok = true;
  valid.job_id = 12;
  valid.state = "done";
  valid.body = "{\"unique_races\": 3}";
  std::vector<u8> encoded;
  serve::encode_response(valid, encoded);
  const std::string base(encoded.begin(), encoded.end());

  SplitMix64 rng(0x72657370ULL);
  for (int i = 0; i < 2000; ++i) {
    std::string text = base;
    const u32 rounds = 1 + static_cast<u32>(rng.next() % 4);
    for (u32 r = 0; r < rounds; ++r) text = mutate(text, rng);
    serve::Response out;
    out.job_id = 777;
    out.state = "sentinel";
    const Status st =
        serve::parse_response(reinterpret_cast<const u8*>(text.data()), text.size(), out);
    if (!st.ok()) {
      EXPECT_EQ(out.job_id, 777u) << "iteration " << i;
      EXPECT_EQ(out.state, "sentinel") << "iteration " << i;
    }
  }
}

// --- fuzz::KernelSpec::parse -------------------------------------------------

TEST(ParserFuzzKernelSpec, SeededMutationsNeverCrashAndRoundTrip) {
  const std::string valid = fuzz::spec_from_seed(5).serialize();
  SplitMix64 rng(0x73706563ULL);
  u32 accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string text = valid;
    const u32 rounds = 1 + static_cast<u32>(rng.next() % 4);
    for (u32 r = 0; r < rounds; ++r) text = mutate(text, rng);
    fuzz::KernelSpec out;
    out.name = "sentinel";
    const Status st = fuzz::KernelSpec::parse(text, out);
    if (st.ok()) {
      // Whatever survived mutation must re-serialize losslessly and
      // stay inside the validated envelope.
      ++accepted;
      EXPECT_TRUE(out.validate().ok());
      fuzz::KernelSpec again;
      ASSERT_TRUE(fuzz::KernelSpec::parse(out.serialize(), again).ok());
      EXPECT_EQ(again.serialize(), out.serialize());
    } else {
      EXPECT_EQ(out.name, "sentinel") << "iteration " << i << ": " << text;
    }
  }
  // The format is line-oriented and forgiving of whitespace, so some
  // mutants must still parse — otherwise the harness tests nothing.
  EXPECT_GT(accepted, 0u);
}

}  // namespace
}  // namespace haccrg
