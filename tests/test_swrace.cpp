// Software race-detection baselines: the instrumented kernels must still
// compute correct results, pay a large slowdown, and the software HAccRG
// must flag the same buggy benchmarks the hardware does.
#include <gtest/gtest.h>

#include "kernels/common.hpp"
#include "swrace/grace.hpp"
#include "swrace/sw_haccrg.hpp"

namespace haccrg {
namespace {

using kernels::BenchOptions;
using kernels::PreparedKernel;
using kernels::find_benchmark;

arch::GpuConfig test_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 32 * 1024 * 1024;
  return cfg;
}

Cycle run_baseline(const std::string& name, bool single_block = false) {
  sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
  BenchOptions opts;
  opts.single_block = single_block;
  PreparedKernel prep = find_benchmark(name)->prepare(gpu, opts);
  sim::SimResult r = gpu.launch(prep.launch());
  EXPECT_TRUE(r.completed) << r.error;
  return r.cycles;
}

TEST(SwHaccrg, InstrumentedScanStillCorrect) {
  sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
  BenchOptions opts;
  opts.single_block = true;  // avoid the documented racy mode for the check
  PreparedKernel prep = find_benchmark("SCAN")->prepare(gpu, opts);
  swrace::attach_sw_haccrg(gpu, prep);
  sim::SimResult r = gpu.launch(prep.launch());
  ASSERT_TRUE(r.completed) << r.error;
  std::string msg;
  EXPECT_TRUE(prep.verify(gpu.memory(), &msg)) << msg;
}

TEST(SwHaccrg, DetectsScanMultiBlockRaces) {
  sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
  PreparedKernel prep = find_benchmark("SCAN")->prepare(gpu, BenchOptions{});
  swrace::attach_sw_haccrg(gpu, prep);
  sim::SimResult r = gpu.launch(prep.launch());
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_GT(swrace::sw_haccrg_race_count(gpu, prep), 0u);
}

TEST(SwHaccrg, QuietOnRaceFreeSingleBlockScan) {
  sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
  BenchOptions opts;
  opts.single_block = true;
  PreparedKernel prep = find_benchmark("SCAN")->prepare(gpu, opts);
  swrace::attach_sw_haccrg(gpu, prep);
  sim::SimResult r = gpu.launch(prep.launch());
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(swrace::sw_haccrg_race_count(gpu, prep), 0u);
}

TEST(SwHaccrg, SlowdownIsLarge) {
  const Cycle base = run_baseline("SCAN");
  sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
  PreparedKernel prep = find_benchmark("SCAN")->prepare(gpu, BenchOptions{});
  swrace::attach_sw_haccrg(gpu, prep);
  sim::SimResult r = gpu.launch(prep.launch());
  ASSERT_TRUE(r.completed) << r.error;
  // The paper reports 6.6x for software detection on SCAN; require at
  // least 2x here to catch regressions without over-fitting.
  EXPECT_GT(r.cycles, base * 2);
}

TEST(Grace, InstrumentedScanStillCorrect) {
  sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
  BenchOptions opts;
  opts.single_block = true;
  PreparedKernel prep = find_benchmark("SCAN")->prepare(gpu, opts);
  swrace::attach_grace(gpu, prep);
  sim::SimResult r = gpu.launch(prep.launch());
  ASSERT_TRUE(r.completed) << r.error;
  std::string msg;
  EXPECT_TRUE(prep.verify(gpu.memory(), &msg)) << msg;
}

TEST(Grace, SlowerThanSwHaccrg) {
  sim::Gpu gpu1(test_gpu(), rd::HaccrgConfig{});
  PreparedKernel prep1 = find_benchmark("SCAN")->prepare(gpu1, BenchOptions{});
  swrace::attach_sw_haccrg(gpu1, prep1);
  sim::SimResult sw = gpu1.launch(prep1.launch());
  ASSERT_TRUE(sw.completed) << sw.error;

  sim::Gpu gpu2(test_gpu(), rd::HaccrgConfig{});
  PreparedKernel prep2 = find_benchmark("SCAN")->prepare(gpu2, BenchOptions{});
  swrace::attach_grace(gpu2, prep2);
  sim::SimResult gr = gpu2.launch(prep2.launch());
  ASSERT_TRUE(gr.completed) << gr.error;

  EXPECT_GT(gr.cycles, sw.cycles);
}

TEST(SwHaccrg, InstrumentedProgramsValidate) {
  for (const char* name : {"MCARLO", "SCAN", "HIST", "KMEANS", "HASH"}) {
    sim::Gpu gpu(test_gpu(), rd::HaccrgConfig{});
    PreparedKernel prep = find_benchmark(name)->prepare(gpu, BenchOptions{});
    isa::Program instrumented = swrace::instrument_sw_haccrg(prep.program);
    EXPECT_EQ(instrumented.validate(), "") << name;
    EXPECT_GT(instrumented.size(), prep.program.size()) << name;
  }
}

}  // namespace
}  // namespace haccrg
