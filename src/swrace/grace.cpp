#include "swrace/grace.hpp"

#include "swrace/rewriter.hpp"

namespace haccrg::swrace {

using isa::AtomicOp;
using isa::CmpOp;
using isa::Instr;
using isa::Opcode;
using isa::Operand;
using isa::Pred;
using isa::Program;
using isa::Reg;
using isa::SpecialReg;

namespace {

struct Ctx {
  Reg bitmap;   ///< this block's bitmap table base (write bitmap; the
                ///< read bitmap follows at +kBitmapWords words)
  Reg counter;
  Reg warp_id;
  Reg t0, t1, t2, t3, acc;
  Pred p0, p1;
};

void emit_preamble(Rewriter& rw, Ctx& ctx) {
  ctx.bitmap = rw.scratch_reg();
  ctx.counter = rw.scratch_reg();
  ctx.warp_id = rw.scratch_reg();
  ctx.t0 = rw.scratch_reg();
  ctx.t1 = rw.scratch_reg();
  ctx.t2 = rw.scratch_reg();
  ctx.t3 = rw.scratch_reg();
  ctx.acc = rw.scratch_reg();
  ctx.p0 = rw.scratch_pred();
  ctx.p1 = rw.scratch_pred();

  rw.emit_param(ctx.bitmap, GraceLayout::kBitmapParam);
  rw.emit_param(ctx.counter, GraceLayout::kCounterParam);
  rw.emit_special(ctx.t0, SpecialReg::kCtaId);
  // Two tables (write + read) of kBitmapWords words per block.
  rw.emit_alu(Opcode::kMul, ctx.t0, ctx.t0.idx, Operand(GraceLayout::kBitmapWords * 2 * 4));
  rw.emit_alu(Opcode::kAdd, ctx.bitmap, ctx.bitmap.idx, Operand(ctx.t0));
  rw.emit_special(ctx.warp_id, SpecialReg::kWarpId);
}

void emit_grace_check(Rewriter& rw, Ctx& ctx, const Instr& ins) {
  const bool is_write = ins.op == Opcode::kStShared;

  // Bitmap word/bit of the accessed shared address.
  rw.emit_mov_reg(ctx.t0, ins.src0);
  if (ins.imm != 0) rw.emit_alu(Opcode::kAdd, ctx.t0, ctx.t0.idx, Operand(ins.imm));
  rw.emit_alu(Opcode::kShr, ctx.t0, ctx.t0.idx, Operand(2u));  // word index
  rw.emit_alu(Opcode::kShr, ctx.t1, ctx.t0.idx, Operand(5u));  // bitmap word
  rw.emit_alu(Opcode::kRem, ctx.t1, ctx.t1.idx, Operand(GraceLayout::kBitmapWords));
  rw.emit_alu(Opcode::kAnd, ctx.t2, ctx.t0.idx, Operand(31u));
  rw.emit_mov(ctx.t3, 1);
  rw.emit_alu(Opcode::kShl, ctx.t3, ctx.t3.idx, Operand(ctx.t2));  // bit mask

  // Set our bit in the appropriate table (write table at +0, read at
  // +kBitmapWords*4), via a device-memory atomic.
  rw.emit_alu(Opcode::kMul, ctx.t2, ctx.t1.idx, Operand(4u));
  rw.emit_alu(Opcode::kAdd, ctx.t2, ctx.t2.idx, Operand(ctx.bitmap));
  if (!is_write) rw.emit_alu(Opcode::kAdd, ctx.t2, ctx.t2.idx,
                             Operand(GraceLayout::kBitmapWords * 4));
  rw.emit_atomic_global(ctx.t0, AtomicOp::kOr, ctx.t2, ctx.t3);

  // Diagnosis scan: read kScanWords of the *write* bitmap and accumulate.
  rw.emit_mov(ctx.acc, 0);
  for (u32 j = 0; j < GraceLayout::kScanWords; ++j) {
    rw.emit_ld_global(ctx.t0, ctx.bitmap, j * 4);
    rw.emit_alu(Opcode::kOr, ctx.acc, ctx.acc.idx, Operand(ctx.t0));
  }
  // Overlap with our bit (by someone else having set it first) counts as
  // a potential race.
  rw.emit_alu(Opcode::kAnd, ctx.acc, ctx.acc.idx, Operand(ctx.t3));
  rw.emit_setp(ctx.p0, CmpOp::kNe, ctx.acc, Operand(0u));
  if (is_write) {
    rw.emit_if(ctx.p0);
    rw.emit_mov(ctx.t0, 1);
    rw.emit_atomic_global(ctx.t0, AtomicOp::kAdd, ctx.counter, ctx.t0);
    rw.emit_endif();
  }
}

void emit_barrier_clear(Rewriter& rw, Ctx& ctx) {
  // Each thread clears a slice of both tables (tid-strided words).
  rw.emit_special(ctx.t0, SpecialReg::kTid);
  rw.emit_alu(Opcode::kRem, ctx.t0, ctx.t0.idx, Operand(GraceLayout::kBitmapWords));
  rw.emit_alu(Opcode::kMul, ctx.t0, ctx.t0.idx, Operand(4u));
  rw.emit_alu(Opcode::kAdd, ctx.t0, ctx.t0.idx, Operand(ctx.bitmap));
  rw.emit_mov(ctx.t1, 0);
  rw.emit_st_global(ctx.t0, ctx.t1, 0);
  rw.emit_st_global(ctx.t0, ctx.t1, GraceLayout::kBitmapWords * 4);
}

}  // namespace

Program instrument_grace(const Program& program, const InstrumentOptions& opts,
                         InstrumentStats* stats) {
  Rewriter rw(program);
  auto ctx = std::make_shared<Ctx>();

  // Static pruning: accesses the analyzer proves word-disjoint across
  // threads within their barrier interval carry no bitmap traffic.
  analysis::StaticRaceReport local_report;
  const analysis::StaticRaceReport* report = opts.report;
  if (opts.static_prune && report == nullptr) {
    local_report = analysis::analyze(program, opts.analyze);
    report = &local_report;
  }

  Rewriter::Hooks hooks;
  hooks.preamble = [ctx](Rewriter& r, const Instr&) { emit_preamble(r, *ctx); };
  hooks.before = [ctx, report, prune = opts.static_prune, stats](Rewriter& r, const Instr& ins) {
    if (ins.op == Opcode::kLdShared || ins.op == Opcode::kStShared) {
      if (stats) ++stats->sites_total;
      if (prune && report && report->is_safe(r.current_pc())) {
        if (stats) ++stats->sites_pruned;
      } else {
        if (stats) ++stats->sites_instrumented;
        emit_grace_check(r, *ctx, ins);
      }
    }
    return true;
  };
  hooks.after = [ctx](Rewriter& r, const Instr& ins) {
    if (ins.op == Opcode::kBar) emit_barrier_clear(r, *ctx);
  };
  return rw.rewrite(hooks, "+grace");
}

void attach_grace(sim::Gpu& gpu, kernels::PreparedKernel& prep, const InstrumentOptions& opts,
                  InstrumentStats* stats) {
  const u32 bitmap_bytes = prep.grid_dim * GraceLayout::kBitmapWords * 2 * 4;
  const Addr bitmap = gpu.allocator().alloc(bitmap_bytes, "grace.bitmap");
  const Addr counter = gpu.allocator().alloc(4, "grace.counter");
  gpu.memory().fill(bitmap, bitmap_bytes, 0);
  gpu.memory().fill(counter, 4, 0);

  prep.params[GraceLayout::kBitmapParam] = bitmap;
  prep.params[GraceLayout::kCounterParam] = counter;
  prep.program = instrument_grace(prep.program, opts, stats);
}

u64 grace_race_count(const sim::Gpu& gpu, const kernels::PreparedKernel& prep) {
  return gpu.memory().read_u32(prep.params[GraceLayout::kCounterParam]);
}

}  // namespace haccrg::swrace
