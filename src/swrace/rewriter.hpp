// Program rewriter: rebuilds a kernel Program while letting an
// instrumentation pass inject instruction sequences before/after selected
// instructions. Jump targets are remapped so the structured control flow
// survives arbitrary insertions; scratch registers and predicates are
// allocated above the original program's high-water marks.
#pragma once

#include <functional>
#include <vector>

#include "isa/builder.hpp"
#include "isa/program.hpp"

namespace haccrg::swrace {

class Rewriter {
 public:
  explicit Rewriter(const isa::Program& original);

  /// Scratch register/predicate allocation (above the original's usage).
  isa::Reg scratch_reg();
  isa::Pred scratch_pred();

  /// Emit an instrumentation instruction at the current position.
  void emit(isa::Instr ins);

  // Convenience emitters mirroring KernelBuilder's encodings.
  void emit_mov(isa::Reg dst, u32 imm);
  void emit_mov_reg(isa::Reg dst, u8 src);
  void emit_alu(isa::Opcode op, isa::Reg dst, u8 src0, isa::Operand b);
  void emit_setp(isa::Pred p, isa::CmpOp cmp, isa::Reg a, isa::Operand b);
  void emit_if(isa::Pred p);
  void emit_endif();
  void emit_ld_global(isa::Reg dst, isa::Reg addr, u32 offset = 0);
  void emit_st_global(isa::Reg addr, isa::Reg value, u32 offset = 0);
  void emit_atomic_global(isa::Reg dst, isa::AtomicOp op, isa::Reg addr, isa::Reg operand);
  void emit_special(isa::Reg dst, isa::SpecialReg which);
  void emit_param(isa::Reg dst, u32 slot);

  /// Hooks: called for each original instruction. `before` runs with the
  /// original instruction not yet emitted; returning false suppresses the
  /// original (rare). `after` runs just after it.
  struct Hooks {
    std::function<void(Rewriter&, const isa::Instr&)> preamble;  ///< once, at pc 0
    std::function<bool(Rewriter&, const isa::Instr&)> before;
    std::function<void(Rewriter&, const isa::Instr&)> after;
  };

  /// Run the rewrite and produce the instrumented program.
  isa::Program rewrite(const Hooks& hooks, const std::string& name_suffix);

  /// Original-program pc of the instruction the hooks are currently
  /// visiting (valid inside `before`/`after`; lets passes consult
  /// per-pc analysis results such as the static race report).
  u32 current_pc() const { return current_pc_; }

 private:
  const isa::Program* original_;
  std::vector<isa::Instr> out_;
  std::vector<u32> new_pc_;  // old pc -> new pc of the original instruction
  u32 next_reg_;
  u32 next_pred_;
  u32 current_pc_ = 0;
};

}  // namespace haccrg::swrace
