// GRace-add baseline (Zheng et al., modelled from its published design):
// an instrumentation-based shared-memory race detector that keeps
// per-block bitmap tables in device memory. After every shared-memory
// access the inserted code sets the address's bit in the block's
// read/write bitmap (a global atomic) and then scans a window of the
// opposite bitmap looking for overlapping accesses by other warps. The
// scan — a burst of device-memory loads on every shared access — is what
// makes GRace-add orders of magnitude slower than the software HAccRG,
// matching the paper's comparison. Barriers clear the thread's bitmap
// slice.
#pragma once

#include "kernels/common.hpp"
#include "sim/gpu.hpp"

namespace haccrg::swrace {

struct GraceLayout {
  static constexpr u32 kBitmapParam = 12;   ///< per-block bitmap tables base
  static constexpr u32 kCounterParam = 14;  ///< race counter address
  /// Bitmap words scanned per instrumented access (the diagnosis pass
  /// walks the whole table, as GRace-add's per-statement check does).
  static constexpr u32 kScanWords = 128;
  /// Bitmap words per block table (16 KB scratchpad / 4 B / 32 bits).
  static constexpr u32 kBitmapWords = 128;
};

isa::Program instrument_grace(const isa::Program& program);

/// Allocate the bitmap/counter buffers and swap in the instrumented
/// program (call after prepare()).
void attach_grace(sim::Gpu& gpu, kernels::PreparedKernel& prep);

u64 grace_race_count(const sim::Gpu& gpu, const kernels::PreparedKernel& prep);

}  // namespace haccrg::swrace
