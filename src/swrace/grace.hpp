// GRace-add baseline (Zheng et al., modelled from its published design):
// an instrumentation-based shared-memory race detector that keeps
// per-block bitmap tables in device memory. After every shared-memory
// access the inserted code sets the address's bit in the block's
// read/write bitmap (a global atomic) and then scans a window of the
// opposite bitmap looking for overlapping accesses by other warps. The
// scan — a burst of device-memory loads on every shared access — is what
// makes GRace-add orders of magnitude slower than the software HAccRG,
// matching the paper's comparison. Barriers clear the thread's bitmap
// slice.
#pragma once

#include "kernels/common.hpp"
#include "sim/gpu.hpp"
#include "swrace/prune.hpp"

namespace haccrg::swrace {

struct GraceLayout {
  static constexpr u32 kBitmapParam = 12;   ///< per-block bitmap tables base
  static constexpr u32 kCounterParam = 14;  ///< race counter address
  /// Bitmap words scanned per instrumented access (the diagnosis pass
  /// walks the whole table, as GRace-add's per-statement check does).
  static constexpr u32 kScanWords = 128;
  /// Bitmap words per block table (16 KB scratchpad / 4 B / 32 bits).
  static constexpr u32 kBitmapWords = 128;
};

/// Scratch state the instrumentation claims from the program's register
/// file (allocated once, reused across check sites).
constexpr u32 kGraceScratchRegs = 8;
constexpr u32 kGraceScratchPreds = 2;

/// Does `program` leave enough register headroom to be instrumented?
/// (instrument_grace aborts when it does not.)
inline bool grace_fits(const isa::Program& program) {
  return program.regs_used() + kGraceScratchRegs <= isa::kMaxRegs &&
         program.preds_used() + kGraceScratchPreds <= isa::kMaxPreds;
}

/// Instrument `program`. Accesses the static race analysis proves safe
/// are skipped by default (InstrumentOptions::static_prune); `stats`
/// reports the site counts when non-null.
isa::Program instrument_grace(const isa::Program& program, const InstrumentOptions& opts = {},
                              InstrumentStats* stats = nullptr);

/// Allocate the bitmap/counter buffers and swap in the instrumented
/// program (call after prepare()).
void attach_grace(sim::Gpu& gpu, kernels::PreparedKernel& prep,
                  const InstrumentOptions& opts = {}, InstrumentStats* stats = nullptr);

u64 grace_race_count(const sim::Gpu& gpu, const kernels::PreparedKernel& prep);

}  // namespace haccrg::swrace
