// Software implementation of HAccRG (Section VI-B): the same
// per-location shadow tracking performed entirely by inserted kernel
// code instead of hardware RDUs. Every shared/global load/store is
// wrapped with an instruction sequence that claims the location's shadow
// tag word with an atomic exchange, decodes the previous owner, and bumps
// a race counter when a conflicting same-epoch access by another thread
// is found. This is the instrumentation cost the paper measures at
// 6.6x/12.4x/18.1x for SCAN/HIST/KMEANS.
//
// Tag word layout: [gtid:20 | epoch:10 | rw:2], where rw is 01 for reads
// and 10 for writes and epoch is the block's barrier count (so accesses
// separated by a barrier never alias as racing).
#pragma once

#include "kernels/common.hpp"
#include "sim/gpu.hpp"
#include "swrace/prune.hpp"

namespace haccrg::swrace {

/// Parameter slots the instrumented kernel reads (kept clear of the
/// benchmarks, which use slots 0..7).
struct SwHaccrgLayout {
  static constexpr u32 kGlobalShadowParam = 12;  ///< global shadow base
  static constexpr u32 kSharedShadowParam = 13;  ///< per-block shared shadow base
  static constexpr u32 kCounterParam = 14;       ///< race counter address
};

/// Scratch state the instrumentation claims from the program's register
/// file (allocated once, reused across check sites).
constexpr u32 kSwHaccrgScratchRegs = 9;
constexpr u32 kSwHaccrgScratchPreds = 3;

/// Does `program` leave enough register headroom to be instrumented?
/// (instrument_sw_haccrg aborts when it does not.)
inline bool sw_haccrg_fits(const isa::Program& program) {
  return program.regs_used() + kSwHaccrgScratchRegs <= isa::kMaxRegs &&
         program.preds_used() + kSwHaccrgScratchPreds <= isa::kMaxPreds;
}

/// Instrument `program`. Accesses the static race analysis proves safe
/// are skipped by default (InstrumentOptions::static_prune); `stats`
/// reports the site counts when non-null.
isa::Program instrument_sw_haccrg(const isa::Program& program, const InstrumentOptions& opts = {},
                                  InstrumentStats* stats = nullptr);

/// Allocate the shadow/counter buffers for an already-prepared benchmark
/// and swap in the instrumented program. Must be called after prepare()
/// (the global shadow covers the heap at that point).
void attach_sw_haccrg(sim::Gpu& gpu, kernels::PreparedKernel& prep,
                      const InstrumentOptions& opts = {}, InstrumentStats* stats = nullptr);

/// Races the software detector recorded (the counter value).
u64 sw_haccrg_race_count(const sim::Gpu& gpu, const kernels::PreparedKernel& prep);

}  // namespace haccrg::swrace
