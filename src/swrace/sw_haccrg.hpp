// Software implementation of HAccRG (Section VI-B): the same
// per-location shadow tracking performed entirely by inserted kernel
// code instead of hardware RDUs. Every shared/global load/store is
// wrapped with an instruction sequence that claims the location's shadow
// tag word with an atomic exchange, decodes the previous owner, and bumps
// a race counter when a conflicting same-epoch access by another thread
// is found. This is the instrumentation cost the paper measures at
// 6.6x/12.4x/18.1x for SCAN/HIST/KMEANS.
//
// Tag word layout: [gtid:20 | epoch:10 | rw:2], where rw is 01 for reads
// and 10 for writes and epoch is the block's barrier count (so accesses
// separated by a barrier never alias as racing).
#pragma once

#include "kernels/common.hpp"
#include "sim/gpu.hpp"

namespace haccrg::swrace {

/// Parameter slots the instrumented kernel reads (kept clear of the
/// benchmarks, which use slots 0..7).
struct SwHaccrgLayout {
  static constexpr u32 kGlobalShadowParam = 12;  ///< global shadow base
  static constexpr u32 kSharedShadowParam = 13;  ///< per-block shared shadow base
  static constexpr u32 kCounterParam = 14;       ///< race counter address
};

/// Instrument `program`. `shared_shadow_words_per_block` is the size of
/// one block's shared shadow region (scratchpad words).
isa::Program instrument_sw_haccrg(const isa::Program& program);

/// Allocate the shadow/counter buffers for an already-prepared benchmark
/// and swap in the instrumented program. Must be called after prepare()
/// (the global shadow covers the heap at that point).
void attach_sw_haccrg(sim::Gpu& gpu, kernels::PreparedKernel& prep);

/// Races the software detector recorded (the counter value).
u64 sw_haccrg_race_count(const sim::Gpu& gpu, const kernels::PreparedKernel& prep);

}  // namespace haccrg::swrace
