// Shared knobs for the software instrumentation passes: both GRace and
// software HAccRG consult the static race analysis and skip accesses it
// proved race-free. Pruning is on by default — it only removes checks
// for accesses that cannot participate in any detectable pair at the
// detectors' 4-byte word granularity, so detection results are
// unchanged while the instrumentation overhead drops.
#pragma once

#include "analysis/static_race.hpp"

namespace haccrg::swrace {

struct InstrumentOptions {
  /// Skip instrumentation for accesses the static analysis classifies
  /// as kProvablySafe. Turn off to reproduce the un-pruned baseline.
  bool static_prune = true;
  /// Precomputed report for the *original* program; when null and
  /// pruning is enabled, the pass runs the analysis itself.
  const analysis::StaticRaceReport* report = nullptr;
  /// Options for the self-run analysis when `report` is null. The
  /// defaults (4-byte granularity, no geometry) match the software
  /// detectors; callers that know the launch shape can pass block_dim/
  /// grid_dim for sharper pruning. warp_synchronous must stay false:
  /// the software detectors do report intra-warp pairs.
  analysis::AnalyzeOptions analyze{};
};

/// Site counts produced during one instrumentation pass.
struct InstrumentStats {
  u32 sites_total = 0;         ///< accesses the pass would normally wrap
  u32 sites_instrumented = 0;  ///< accesses actually wrapped
  u32 sites_pruned = 0;        ///< accesses skipped as provably safe
};

}  // namespace haccrg::swrace
