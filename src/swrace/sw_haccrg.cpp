#include "swrace/sw_haccrg.hpp"

#include "swrace/rewriter.hpp"

namespace haccrg::swrace {

using isa::AtomicOp;
using isa::CmpOp;
using isa::Opcode;
using isa::Operand;
using isa::Pred;
using isa::Program;
using isa::Reg;
using isa::SpecialReg;

namespace {

/// State threaded through the rewrite: scratch registers holding values
/// that are computed once in the preamble.
struct Ctx {
  Reg gtid;           ///< global thread id (race tag identity)
  Reg epoch;          ///< per-block barrier epoch (bumped after each kBar)
  Reg global_shadow;  ///< base of the global shadow region
  Reg shared_shadow;  ///< base of this block's shared shadow region
  Reg counter;        ///< race counter address
  Reg t0, t1, t2, t3; ///< per-access scratch
  Pred p0, p1, p2;
};

void emit_preamble(Rewriter& rw, Ctx& ctx) {
  ctx.gtid = rw.scratch_reg();
  ctx.epoch = rw.scratch_reg();
  ctx.global_shadow = rw.scratch_reg();
  ctx.shared_shadow = rw.scratch_reg();
  ctx.counter = rw.scratch_reg();
  ctx.t0 = rw.scratch_reg();
  ctx.t1 = rw.scratch_reg();
  ctx.t2 = rw.scratch_reg();
  ctx.t3 = rw.scratch_reg();
  ctx.p0 = rw.scratch_pred();
  ctx.p1 = rw.scratch_pred();
  ctx.p2 = rw.scratch_pred();

  rw.emit_special(ctx.gtid, SpecialReg::kGTid);
  rw.emit_mov(ctx.epoch, 0);
  rw.emit_param(ctx.global_shadow, SwHaccrgLayout::kGlobalShadowParam);
  rw.emit_param(ctx.counter, SwHaccrgLayout::kCounterParam);
  // shared_shadow = param + ctaid * <block region>; the region size is
  // baked into the parameter by attach_sw_haccrg (slot holds the base and
  // the stride is in the upper... simpler: the stride equals the shared
  // region's shadow words * 4 passed via the base's low bits is fragile,
  // so attach passes base and we compute ctaid*stride with a fixed stride
  // equal to the maximum scratchpad (16 KB -> 4096 words).
  rw.emit_param(ctx.shared_shadow, SwHaccrgLayout::kSharedShadowParam);
  rw.emit_special(ctx.t0, SpecialReg::kCtaId);
  rw.emit_alu(Opcode::kMul, ctx.t0, ctx.t0.idx, Operand(16384u));
  rw.emit_alu(Opcode::kAdd, ctx.shared_shadow, ctx.shared_shadow.idx, Operand(ctx.t0));
}

/// The per-access check: claim the shadow word, compare the old tag.
///   tag  = gtid<<12 | epoch<<2 | rw_bits
///   race = old != 0 && old>>12 != gtid && old_epoch == epoch
///          && ((old | tag) & 2) != 0
void emit_check(Rewriter& rw, Ctx& ctx, const isa::Instr& ins, bool shared_space) {
  const bool is_write = ins.op == Opcode::kStGlobal || ins.op == Opcode::kStShared;

  // t0 = accessed address (address register + offset), then granule.
  rw.emit_mov_reg(ctx.t0, ins.src0);
  if (ins.imm != 0) rw.emit_alu(Opcode::kAdd, ctx.t0, ctx.t0.idx, Operand(ins.imm));
  rw.emit_alu(Opcode::kShr, ctx.t0, ctx.t0.idx, Operand(2u));  // word granule
  rw.emit_alu(Opcode::kShl, ctx.t0, ctx.t0.idx, Operand(2u));  // shadow byte offset
  rw.emit_alu(Opcode::kAdd, ctx.t0, ctx.t0.idx,
              Operand(shared_space ? ctx.shared_shadow : ctx.global_shadow));

  // t1 = my tag.
  rw.emit_alu(Opcode::kShl, ctx.t1, ctx.gtid.idx, Operand(12u));
  rw.emit_alu(Opcode::kAnd, ctx.t2, ctx.epoch.idx, Operand(0x3ffu));
  rw.emit_alu(Opcode::kShl, ctx.t2, ctx.t2.idx, Operand(2u));
  rw.emit_alu(Opcode::kOr, ctx.t1, ctx.t1.idx, Operand(ctx.t2));
  rw.emit_alu(Opcode::kOr, ctx.t1, ctx.t1.idx, Operand(is_write ? 2u : 1u));

  // t2 = old tag (atomic claim).
  rw.emit_atomic_global(ctx.t2, AtomicOp::kExch, ctx.t0, ctx.t1);

  // Race check, short-circuited with nested ifs.
  rw.emit_setp(ctx.p0, CmpOp::kNe, ctx.t2, Operand(0u));
  rw.emit_if(ctx.p0);
  {
    // Same epoch?
    rw.emit_alu(Opcode::kXor, ctx.t3, ctx.t2.idx, Operand(ctx.t1));
    rw.emit_alu(Opcode::kShr, ctx.t3, ctx.t3.idx, Operand(2u));
    rw.emit_alu(Opcode::kAnd, ctx.t3, ctx.t3.idx, Operand(0x3ffu));
    rw.emit_setp(ctx.p1, CmpOp::kEq, ctx.t3, Operand(0u));
    rw.emit_if(ctx.p1);
    {
      // Different thread, and a write involved?
      rw.emit_alu(Opcode::kShr, ctx.t3, ctx.t2.idx, Operand(12u));
      rw.emit_setp(ctx.p2, CmpOp::kNe, ctx.t3, Operand(ctx.gtid));
      rw.emit_if(ctx.p2);
      {
        rw.emit_alu(Opcode::kOr, ctx.t3, ctx.t2.idx, Operand(ctx.t1));
        rw.emit_alu(Opcode::kAnd, ctx.t3, ctx.t3.idx, Operand(2u));
        rw.emit_setp(ctx.p2, CmpOp::kNe, ctx.t3, Operand(0u));
        rw.emit_if(ctx.p2);
        rw.emit_mov(ctx.t3, 1);
        rw.emit_atomic_global(ctx.t3, AtomicOp::kAdd, ctx.counter, ctx.t3);
        rw.emit_endif();
      }
      rw.emit_endif();
    }
    rw.emit_endif();
  }
  rw.emit_endif();
}

}  // namespace

Program instrument_sw_haccrg(const Program& program, const InstrumentOptions& opts,
                             InstrumentStats* stats) {
  Rewriter rw(program);
  auto ctx = std::make_shared<Ctx>();

  // Static pruning: skip the shadow exchange for accesses the analyzer
  // proves cannot pair with any conflicting access at word granularity.
  analysis::StaticRaceReport local_report;
  const analysis::StaticRaceReport* report = opts.report;
  if (opts.static_prune && report == nullptr) {
    local_report = analysis::analyze(program, opts.analyze);
    report = &local_report;
  }

  Rewriter::Hooks hooks;
  hooks.preamble = [ctx](Rewriter& r, const isa::Instr&) { emit_preamble(r, *ctx); };
  hooks.before = [ctx, report, prune = opts.static_prune, stats](Rewriter& r,
                                                                 const isa::Instr& ins) {
    switch (ins.op) {
      case Opcode::kLdGlobal:
      case Opcode::kStGlobal:
      case Opcode::kLdShared:
      case Opcode::kStShared: {
        if (stats) ++stats->sites_total;
        if (prune && report && report->is_safe(r.current_pc())) {
          if (stats) ++stats->sites_pruned;
          break;
        }
        if (stats) ++stats->sites_instrumented;
        const bool shared_space =
            ins.op == Opcode::kLdShared || ins.op == Opcode::kStShared;
        emit_check(r, *ctx, ins, shared_space);
        break;
      }
      default:
        break;
    }
    return true;
  };
  hooks.after = [ctx](Rewriter& r, const isa::Instr& ins) {
    if (ins.op == Opcode::kBar) {
      r.emit_alu(Opcode::kAdd, ctx->epoch, ctx->epoch.idx, Operand(1u));
    }
  };
  return rw.rewrite(hooks, "+swrd");
}

void attach_sw_haccrg(sim::Gpu& gpu, kernels::PreparedKernel& prep,
                      const InstrumentOptions& opts, InstrumentStats* stats) {
  const u32 heap = gpu.allocator().heap_top();
  const Addr global_shadow = gpu.allocator().alloc(heap, "swrd.global_shadow");
  const Addr shared_shadow =
      gpu.allocator().alloc(prep.grid_dim * 16384, "swrd.shared_shadow");
  const Addr counter = gpu.allocator().alloc(4, "swrd.counter");
  gpu.memory().fill(global_shadow, heap, 0);
  gpu.memory().fill(shared_shadow, prep.grid_dim * 16384, 0);
  gpu.memory().fill(counter, 4, 0);

  prep.params[SwHaccrgLayout::kGlobalShadowParam] = global_shadow;
  prep.params[SwHaccrgLayout::kSharedShadowParam] = shared_shadow;
  prep.params[SwHaccrgLayout::kCounterParam] = counter;
  prep.program = instrument_sw_haccrg(prep.program, opts, stats);
}

u64 sw_haccrg_race_count(const sim::Gpu& gpu, const kernels::PreparedKernel& prep) {
  return gpu.memory().read_u32(prep.params[SwHaccrgLayout::kCounterParam]);
}

}  // namespace haccrg::swrace
