#include "swrace/rewriter.hpp"

#include <cstdio>
#include <cstdlib>

namespace haccrg::swrace {

using isa::Instr;
using isa::Opcode;

Rewriter::Rewriter(const isa::Program& original)
    : original_(&original), next_reg_(original.regs_used()), next_pred_(original.preds_used()) {}

isa::Reg Rewriter::scratch_reg() {
  if (next_reg_ >= isa::kMaxRegs) {
    std::fprintf(stderr, "Rewriter: out of scratch registers\n");
    std::abort();
  }
  return isa::Reg{static_cast<u8>(next_reg_++)};
}

isa::Pred Rewriter::scratch_pred() {
  if (next_pred_ >= isa::kMaxPreds) {
    std::fprintf(stderr, "Rewriter: out of scratch predicates\n");
    std::abort();
  }
  return isa::Pred{static_cast<u8>(next_pred_++)};
}

void Rewriter::emit(Instr ins) { out_.push_back(ins); }

void Rewriter::emit_mov(isa::Reg dst, u32 imm) {
  Instr ins;
  ins.op = Opcode::kMov;
  ins.dst = dst.idx;
  ins.src1_is_imm = true;
  ins.imm = imm;
  emit(ins);
}

void Rewriter::emit_mov_reg(isa::Reg dst, u8 src) {
  Instr ins;
  ins.op = Opcode::kMov;
  ins.dst = dst.idx;
  ins.src0 = src;
  emit(ins);
}

void Rewriter::emit_alu(Opcode op, isa::Reg dst, u8 src0, isa::Operand b) {
  Instr ins;
  ins.op = op;
  ins.dst = dst.idx;
  ins.src0 = src0;
  if (b.is_imm) {
    ins.src1_is_imm = true;
    ins.imm = b.imm;
  } else {
    ins.src1 = b.reg;
  }
  emit(ins);
}

void Rewriter::emit_setp(isa::Pred p, isa::CmpOp cmp, isa::Reg a, isa::Operand b) {
  Instr ins;
  ins.op = Opcode::kSetp;
  ins.dst = p.idx;
  ins.src0 = a.idx;
  ins.aux = static_cast<u8>(cmp);
  if (b.is_imm) {
    ins.src1_is_imm = true;
    ins.imm = b.imm;
  } else {
    ins.src1 = b.reg;
  }
  emit(ins);
}

void Rewriter::emit_if(isa::Pred p) {
  Instr ins;
  ins.op = Opcode::kIf;
  ins.aux = p.idx;
  emit(ins);
}

void Rewriter::emit_endif() { emit(Instr{.op = Opcode::kEndIf}); }

void Rewriter::emit_ld_global(isa::Reg dst, isa::Reg addr, u32 offset) {
  Instr ins;
  ins.op = Opcode::kLdGlobal;
  ins.dst = dst.idx;
  ins.src0 = addr.idx;
  ins.imm = offset;
  ins.aux = 4;
  emit(ins);
}

void Rewriter::emit_st_global(isa::Reg addr, isa::Reg value, u32 offset) {
  Instr ins;
  ins.op = Opcode::kStGlobal;
  ins.src0 = addr.idx;
  ins.src1 = value.idx;
  ins.imm = offset;
  ins.aux = 4;
  emit(ins);
}

void Rewriter::emit_atomic_global(isa::Reg dst, isa::AtomicOp op, isa::Reg addr,
                                  isa::Reg operand) {
  Instr ins;
  ins.op = Opcode::kAtomGlobal;
  ins.dst = dst.idx;
  ins.src0 = addr.idx;
  ins.src1 = operand.idx;
  ins.aux = static_cast<u8>(op);
  emit(ins);
}

void Rewriter::emit_special(isa::Reg dst, isa::SpecialReg which) {
  Instr ins;
  ins.op = Opcode::kSpecial;
  ins.dst = dst.idx;
  ins.imm = static_cast<u32>(which);
  emit(ins);
}

void Rewriter::emit_param(isa::Reg dst, u32 slot) {
  Instr ins;
  ins.op = Opcode::kParam;
  ins.dst = dst.idx;
  ins.imm = slot;
  emit(ins);
}

isa::Program Rewriter::rewrite(const Hooks& hooks, const std::string& name_suffix) {
  const auto& code = original_->code();
  out_.clear();
  new_pc_.assign(code.size(), 0);

  if (hooks.preamble) hooks.preamble(*this, code.empty() ? Instr{} : code.front());

  for (u32 pc = 0; pc < code.size(); ++pc) {
    const Instr& ins = code[pc];
    current_pc_ = pc;
    new_pc_[pc] = static_cast<u32>(out_.size());
    bool keep = true;
    if (hooks.before) keep = hooks.before(*this, ins);
    if (keep) out_.push_back(ins);
    if (hooks.after) hooks.after(*this, ins);
  }

  // Remap jump targets. Instrumentation never emits pc-relative branches,
  // so every target in `out_` that came from the original maps cleanly.
  for (Instr& ins : out_) {
    switch (ins.op) {
      case Opcode::kJump:
      case Opcode::kBreakIf:
      case Opcode::kBreakIfNot:
        ins.imm = new_pc_[ins.imm];
        break;
      default:
        break;
    }
  }

  return isa::Program(original_->name() + name_suffix, std::move(out_), next_reg_, next_pred_);
}

}  // namespace haccrg::swrace
