// Benchmark framework: each of the paper's ten CUDA applications is a
// factory that allocates its workload on a Gpu, builds its kernel with
// the structured assembler, and returns a verifier that replays the
// computation on the host. Race injection (Section VI-A: 41 injected
// races) is driven by flags interpreted inside the kernel builders.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/static_race.hpp"
#include "isa/builder.hpp"
#include "sim/gpu.hpp"

namespace haccrg::kernels {

/// The four injection classes of Section VI-A.
enum class InjectionKind : u8 {
  kNone,
  kRemoveBarrier,    ///< drop one barrier call (23 sites suite-wide)
  kRogueCrossBlock,  ///< add a store across thread-block boundaries (13)
  kRemoveFence,      ///< drop one memory-fence call (3)
  kRogueCritical,    ///< add an access in/around critical sections (2)
};

struct Injection {
  InjectionKind kind = InjectionKind::kNone;
  u32 site = 0;  ///< which static site within the benchmark

  bool removes_barrier(u32 s) const { return kind == InjectionKind::kRemoveBarrier && site == s; }
  bool rogue_cross_block(u32 s) const {
    return kind == InjectionKind::kRogueCrossBlock && site == s;
  }
  bool removes_fence(u32 s) const { return kind == InjectionKind::kRemoveFence && site == s; }
  bool rogue_critical(u32 s) const { return kind == InjectionKind::kRogueCritical && site == s; }
};

struct BenchOptions {
  bool single_block = false;  ///< run SCAN/KMEANS as designed (one block)
  u32 scale = 1;              ///< input-size multiplier
  u32 seed = 0;               ///< workload-data seed (0 == the paper runs)
  Injection injection;
};

/// Stream-splitting mix of BenchOptions::seed into a kernel's fixed base
/// seed; seed 0 reproduces the historical workloads exactly.
inline u64 mix_seed(u64 base, u32 seed) {
  return base ^ (u64{seed} * 0x9e3779b97f4a7c15ULL);
}

/// A benchmark instance ready to launch: the owned program plus launch
/// geometry and a host-side verifier.
struct PreparedKernel {
  isa::Program program;
  u32 grid_dim = 1;
  u32 block_dim = 32;
  u32 shared_mem_bytes = 0;
  std::array<u32, isa::kMaxParams> params{};

  /// Host verification against a reference; returns false and fills *msg
  /// on mismatch. Null for injected runs (rogue stores corrupt outputs).
  std::function<bool(const mem::DeviceMemory&, std::string* msg)> verify;

  /// Optional static race report for `program`, plumbed into the launch
  /// for the HaccrgConfig::static_filter ablation. Shared ownership so a
  /// PreparedKernel stays copyable.
  std::shared_ptr<const analysis::StaticRaceReport> static_report;

  sim::LaunchConfig launch() const {
    sim::LaunchConfig cfg;
    cfg.program = &program;
    cfg.grid_dim = grid_dim;
    cfg.block_dim = block_dim;
    cfg.shared_mem_bytes = shared_mem_bytes;
    cfg.params = params;
    cfg.static_report = static_report.get();
    return cfg;
  }
};

/// Number of injection sites a benchmark exposes, per kind.
struct InjectionSites {
  u32 barriers = 0;
  u32 cross_block = 0;
  u32 fences = 0;
  u32 critical = 0;
};

using PrepareFn = PreparedKernel (*)(sim::Gpu&, const BenchOptions&);

struct BenchmarkInfo {
  std::string name;         ///< paper's name (MCARLO, SCAN, ...)
  std::string description;
  PrepareFn prepare = nullptr;
  InjectionSites sites{};
  bool uses_shared = false;
  bool uses_fences = false;
  bool uses_locks = false;
  /// Has a documented real race when run multi-block (SCAN, KMEANS, OFFT).
  bool real_race_multiblock = false;
};

// --- Shared builder helpers ------------------------------------------------

/// Emit a barrier unless this site is injection-removed.
inline void maybe_barrier(isa::KernelBuilder& kb, const BenchOptions& opts, u32 site) {
  if (!opts.injection.removes_barrier(site)) kb.barrier();
}

/// Emit a device fence unless this site is injection-removed.
inline void maybe_fence(isa::KernelBuilder& kb, const BenchOptions& opts, u32 site) {
  if (!opts.injection.removes_fence(site)) kb.memfence();
}

/// If this rogue site is active, thread 0 of every block stores a junk
/// value into the word at `base + neighbor_block*block_words*4`, i.e.
/// into memory owned by the next block — a guaranteed cross-block race.
void emit_rogue_cross_block(isa::KernelBuilder& kb, const BenchOptions& opts, u32 site,
                            isa::Reg base, u32 block_words);

/// Per-benchmark factories.
PreparedKernel prepare_mcarlo(sim::Gpu& gpu, const BenchOptions& opts);
PreparedKernel prepare_scan(sim::Gpu& gpu, const BenchOptions& opts);
PreparedKernel prepare_fwalsh(sim::Gpu& gpu, const BenchOptions& opts);
PreparedKernel prepare_hist(sim::Gpu& gpu, const BenchOptions& opts);
PreparedKernel prepare_sortnw(sim::Gpu& gpu, const BenchOptions& opts);
PreparedKernel prepare_reduce(sim::Gpu& gpu, const BenchOptions& opts);
PreparedKernel prepare_psum(sim::Gpu& gpu, const BenchOptions& opts);
PreparedKernel prepare_offt(sim::Gpu& gpu, const BenchOptions& opts);
PreparedKernel prepare_kmeans(sim::Gpu& gpu, const BenchOptions& opts);
PreparedKernel prepare_hash(sim::Gpu& gpu, const BenchOptions& opts);

/// Seeded fuzz kernel (src/fuzz): BenchOptions::seed selects the spec.
PreparedKernel prepare_fuzz(sim::Gpu& gpu, const BenchOptions& opts);

/// Registry of all ten benchmarks, in the paper's order. Deliberately
/// excludes the extended entries: every golden-stats snapshot, bench
/// table, and injection campaign iterates this list.
const std::vector<BenchmarkInfo>& all_benchmarks();
/// Name-addressable extras (FUZZ) — reachable through find_benchmark
/// for the CLIs, never enumerated by the paper suites.
const std::vector<BenchmarkInfo>& extended_benchmarks();
const BenchmarkInfo* find_benchmark(const std::string& name);

}  // namespace haccrg::kernels
