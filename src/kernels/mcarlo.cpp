// MCARLO: Monte Carlo option pricing (CUDA SDK MonteCarlo, scaled down).
// Each thread simulates `paths` price samples with an in-register LCG,
// accumulates the payoff, then the block tree-reduces the per-thread sums
// in shared memory and writes one partial result per block. The host
// verifier replays the identical f32 arithmetic, so results compare
// bit-exactly.
//
// Injection sites: barriers {0: after the shared store, 1: inside the
// reduction loop, 2: after the first pairwise-sum step}; cross-block
// rogue {0: partial-results array}.
#include <cmath>

#include "common/rng.hpp"
#include "kernels/common.hpp"

namespace haccrg::kernels {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {

constexpr u32 kBlockDim = 256;
constexpr u32 kPathsPerThread = 16;
constexpr f32 kSpot = 40.0f;
constexpr f32 kStrike = 38.0f;
constexpr f32 kVol = 0.4f;

/// Exactly the payoff loop the kernel runs, for one thread.
f32 host_thread_sum(u32 gid, u32 lcg_base) {
  u32 state = lcg_base + gid;
  f32 acc = 0.0f;
  for (u32 p = 0; p < kPathsPerThread; ++p) {
    state = state * Lcg32::kMul + Lcg32::kAdd;
    const f32 u = static_cast<f32>(state >> 8) * (1.0f / 16777216.0f);
    const f32 s = kSpot * (1.0f + kVol * (u - 0.5f));
    const f32 payoff = s - kStrike;
    acc = acc + (payoff > 0.0f ? payoff : 0.0f);
  }
  return acc;
}

}  // namespace

PreparedKernel prepare_mcarlo(sim::Gpu& gpu, const BenchOptions& opts) {
  const u32 blocks = 8 * opts.scale;
  const Addr out = gpu.allocator().alloc(blocks * 4, "mcarlo.out");
  gpu.memory().fill(out, blocks * 4, 0);

  KernelBuilder kb("mcarlo");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg bid = kb.special(isa::SpecialReg::kCtaId);
  Reg pout = kb.param(0);

  // Per-thread LCG Monte Carlo loop, all in registers.
  const u32 lcg_base = 1234567u + opts.seed * 2654435761u;
  Reg state = kb.reg();
  kb.add(state, gid, lcg_base);
  Reg acc = kb.fimm(0.0f);
  Reg spot = kb.fimm(kSpot);
  Reg strike = kb.fimm(kStrike);
  Reg vol = kb.fimm(kVol);
  Reg half = kb.fimm(0.5f);
  Reg inv24 = kb.fimm(1.0f / 16777216.0f);
  Reg fzero = kb.fimm(0.0f);
  Reg one = kb.fimm(1.0f);
  Reg p = kb.reg();
  kb.for_range(p, 0u, kPathsPerThread, 1u, [&] {
    kb.mul(state, state, Lcg32::kMul);
    kb.add(state, state, Lcg32::kAdd);
    Reg u = kb.reg();
    kb.shr(u, state, 8u);
    kb.i2f(u, u);
    kb.fmul(u, u, isa::Operand(inv24));
    kb.fsub(u, u, isa::Operand(half));   // u - 0.5
    kb.fmul(u, u, isa::Operand(vol));    // vol*(u-0.5)
    kb.fadd(u, u, isa::Operand(one));    // 1 + ...
    kb.fmul(u, u, isa::Operand(spot));   // s
    kb.fsub(u, u, isa::Operand(strike)); // payoff
    kb.fmax(u, u, isa::Operand(fzero));
    kb.fadd(acc, acc, isa::Operand(u));
  });

  // Block tree reduction in shared memory. The first pairwise step sums
  // s[t] + s[t+64] into a second buffer (cross-warp reads), then the tree
  // reduces that buffer.
  constexpr u32 kStage2 = kBlockDim * 4;  // byte offset of the 64-entry buffer
  Reg saddr = kb.reg();
  kb.mul(saddr, tid, 4u);
  kb.st_shared(saddr, acc);
  maybe_barrier(kb, opts, 0);

  Pred first_half = kb.pred();
  kb.setp(first_half, CmpOp::kLtU, tid, kBlockDim / 2);
  kb.if_(first_half, [&] {
    Reg mine = kb.reg();
    Reg theirs = kb.reg();
    kb.ld_shared(mine, saddr);
    kb.ld_shared(theirs, saddr, (kBlockDim / 2) * 4);
    kb.fadd(mine, mine, isa::Operand(theirs));
    kb.st_shared(saddr, mine, kStage2);
  });
  maybe_barrier(kb, opts, 2);

  Reg stride = kb.imm(kBlockDim / 4);
  Pred more = kb.pred();
  kb.while_(
      [&] {
        kb.setp(more, CmpOp::kGtU, stride, 0u);
        return more;
      },
      [&] {
        Pred lower = kb.pred();
        kb.setp(lower, CmpOp::kLtU, tid, isa::Operand(stride));
        kb.if_(lower, [&] {
          Reg other = kb.reg();
          kb.add(other, tid, isa::Operand(stride));
          kb.mul(other, other, 4u);
          Reg mine = kb.reg();
          Reg theirs = kb.reg();
          kb.ld_shared(mine, saddr, kStage2);
          kb.ld_shared(theirs, other, kStage2);
          kb.fadd(mine, mine, isa::Operand(theirs));
          kb.st_shared(saddr, mine, kStage2);
        });
        kb.shr(stride, stride, 1u);
        maybe_barrier(kb, opts, 1);
      });

  Pred is0 = kb.pred();
  kb.setp(is0, CmpOp::kEq, tid, 0u);
  kb.if_(is0, [&] {
    Reg sum = kb.reg();
    Reg zero = kb.imm(0);
    kb.ld_shared(sum, zero, kStage2);
    Reg dst = kb.addr(pout, bid, 4);
    kb.st_global(dst, sum);
  });

  emit_rogue_cross_block(kb, opts, 0, kb.param(0), 1);

  PreparedKernel prep;
  prep.program = kb.build();
  prep.grid_dim = blocks;
  prep.block_dim = kBlockDim;
  prep.shared_mem_bytes = kBlockDim * 4 + (kBlockDim / 2) * 4;
  prep.params = {out};
  if (opts.injection.kind == InjectionKind::kNone) {
    prep.verify = [out, blocks, lcg_base](const mem::DeviceMemory& memory, std::string* msg) {
      for (u32 b = 0; b < blocks; ++b) {
        // Replay the pairwise step + tree reduction in kernel order.
        f32 vals[kBlockDim];
        for (u32 t = 0; t < kBlockDim; ++t) vals[t] = host_thread_sum(b * kBlockDim + t, lcg_base);
        for (u32 t = 0; t < kBlockDim / 2; ++t) vals[t] = vals[t] + vals[t + kBlockDim / 2];
        for (u32 stride = kBlockDim / 4; stride > 0; stride /= 2) {
          for (u32 t = 0; t < stride; ++t) vals[t] = vals[t] + vals[t + stride];
        }
        const f32 got = memory.read_f32(out + b * 4);
        if (std::fabs(got - vals[0]) > 1e-3f * std::fabs(vals[0])) {
          if (msg) *msg = "mcarlo block " + std::to_string(b) + ": got " + std::to_string(got) +
                          " want " + std::to_string(vals[0]);
          return false;
        }
      }
      return true;
    };
  }
  return prep;
}

}  // namespace haccrg::kernels
