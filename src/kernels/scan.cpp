// SCAN: per-block parallel prefix sum (Hillis-Steele with a ping-pong
// shared buffer), after the CUDA SDK scan sample.
//
// Documented bug (Section VI-A): the kernel is written for a single
// thread-block — it indexes global memory by `tid`, not by the global
// thread id — but the workload launches multiple blocks, so every block
// reads and writes the same `in[0..n)` / `out[0..n)` words, producing
// cross-block WAW/WAR races in global memory. With single_block=true no
// race exists. All blocks compute identical values, so the output still
// verifies either way.
//
// Injection sites: barriers {0: after load, 1: scan loop}; cross-block
// rogue {0: output array}.
#include <vector>

#include "common/rng.hpp"
#include "kernels/common.hpp"

namespace haccrg::kernels {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {
constexpr u32 kN = 256;  // elements (= threads per block)
}

PreparedKernel prepare_scan(sim::Gpu& gpu, const BenchOptions& opts) {
  const u32 blocks = opts.single_block ? 1 : 4 * opts.scale;
  const Addr in = gpu.allocator().alloc(kN * 4, "scan.in");
  const Addr out = gpu.allocator().alloc(kN * 4, "scan.out");
  std::vector<u32> host_in(kN);
  SplitMix64 rng(mix_seed(0x5ca11u, opts.seed));
  for (u32 i = 0; i < kN; ++i) {
    host_in[i] = static_cast<u32>(rng.next() & 0xffff);
    gpu.memory().write_u32(in + i * 4, host_in[i]);
  }
  gpu.memory().fill(out, kN * 4, 0);

  KernelBuilder kb("scan");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg pin = kb.param(0);
  Reg pout = kb.param(1);

  // The single-block design bug: global addresses use tid directly.
  Reg src = kb.addr(pin, tid, 4);
  Reg v = kb.reg();
  kb.ld_global(v, src);

  // Ping-pong buffers at shared offsets 0 and kN*4.
  Reg ping = kb.imm(0);          // byte offset of the read buffer
  Reg pong = kb.imm(kN * 4);     // byte offset of the write buffer
  Reg my_off = kb.reg();
  kb.mul(my_off, tid, 4u);
  Reg waddr = kb.reg();
  kb.add(waddr, ping, isa::Operand(my_off));
  kb.st_shared(waddr, v);
  maybe_barrier(kb, opts, 0);

  Reg offset = kb.imm(1);
  Pred more = kb.pred();
  kb.while_(
      [&] {
        kb.setp(more, CmpOp::kLtU, offset, kN);
        return more;
      },
      [&] {
        Reg raddr = kb.reg();
        kb.add(raddr, ping, isa::Operand(my_off));
        Reg mine = kb.reg();
        kb.ld_shared(mine, raddr);
        Pred has_left = kb.pred();
        kb.setp(has_left, CmpOp::kGeU, tid, isa::Operand(offset));
        kb.if_(has_left, [&] {
          Reg left = kb.reg();
          kb.sub(left, tid, isa::Operand(offset));
          kb.mul(left, left, 4u);
          kb.add(left, left, isa::Operand(ping));
          Reg lv = kb.reg();
          kb.ld_shared(lv, left);
          kb.add(mine, mine, isa::Operand(lv));
        });
        Reg wp = kb.reg();
        kb.add(wp, pong, isa::Operand(my_off));
        kb.st_shared(wp, mine);
        maybe_barrier(kb, opts, 1);
        // Swap ping/pong.
        Reg tmp = kb.reg();
        kb.mov(tmp, isa::Operand(ping));
        kb.mov(ping, isa::Operand(pong));
        kb.mov(pong, isa::Operand(tmp));
        kb.shl(offset, offset, 1u);
      });

  Reg final_addr = kb.reg();
  kb.add(final_addr, ping, isa::Operand(my_off));
  Reg result = kb.reg();
  kb.ld_shared(result, final_addr);
  Reg dst = kb.addr(pout, tid, 4);  // same bug: tid-indexed output
  kb.st_global(dst, result);

  emit_rogue_cross_block(kb, opts, 0, kb.param(1), 8);

  PreparedKernel prep;
  prep.program = kb.build();
  prep.grid_dim = blocks;
  prep.block_dim = kN;
  prep.shared_mem_bytes = 2 * kN * 4;
  prep.params = {in, out};
  if (opts.injection.kind == InjectionKind::kNone) {
    prep.verify = [out, host_in](const mem::DeviceMemory& memory, std::string* msg) {
      u32 running = 0;
      for (u32 i = 0; i < kN; ++i) {
        running += host_in[i];
        const u32 got = memory.read_u32(out + i * 4);
        if (got != running) {
          if (msg) *msg = "scan[" + std::to_string(i) + "]: got " + std::to_string(got) +
                          " want " + std::to_string(running);
          return false;
        }
      }
      return true;
    };
  }
  return prep;
}

}  // namespace haccrg::kernels
