// REDUCE: single-kernel parallel reduction with the threadfence pattern
// from the CUDA programming guide. Every block grid-strides over the
// input, tree-reduces its accumulators in shared memory, writes a partial
// sum, fences, and atomically counts finished blocks; the last block to
// finish re-reads all partials and produces the final value. The fence is
// what makes the cross-block partial-sum consumption safe — removing it
// (injection) is a fence race HAccRG must flag.
//
// Injection sites: barriers {0: after shared store, 1: reduction loop,
// 2: after the first pairwise-sum step}; fences {0: the pre-count fence};
// cross-block rogue {0: partials array}.
#include <vector>

#include "common/rng.hpp"
#include "kernels/common.hpp"

namespace haccrg::kernels {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {
constexpr u32 kBlockDim = 256;
constexpr u32 kElemsPerThread = 8;
}

PreparedKernel prepare_reduce(sim::Gpu& gpu, const BenchOptions& opts) {
  const u32 blocks = 16 * opts.scale;
  const u32 n = blocks * kBlockDim * kElemsPerThread;
  const Addr in = gpu.allocator().alloc(n * 4, "reduce.in");
  const Addr partials = gpu.allocator().alloc(blocks * 4, "reduce.partials");
  const Addr counter = gpu.allocator().alloc(4, "reduce.counter");
  const Addr result = gpu.allocator().alloc(4, "reduce.result");
  u64 host_sum = 0;
  SplitMix64 rng(mix_seed(0x2ed0ceu, opts.seed));
  for (u32 i = 0; i < n; ++i) {
    const u32 v = static_cast<u32>(rng.next() & 0xfff);
    gpu.memory().write_u32(in + i * 4, v);
    host_sum += v;
  }
  gpu.memory().fill(partials, blocks * 4, 0);
  gpu.memory().fill(counter, 4, 0);
  gpu.memory().fill(result, 4, 0);

  KernelBuilder kb("reduce");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg bid = kb.special(isa::SpecialReg::kCtaId);
  Reg nblocks = kb.special(isa::SpecialReg::kNCtaId);
  Reg pin = kb.param(0);
  Reg ppart = kb.param(1);
  Reg pcount = kb.param(2);
  Reg pres = kb.param(3);

  // Grid-stride accumulation: thread handles elements gid, gid+stride, ...
  Reg total_threads = kb.reg();
  kb.mul(total_threads, nblocks, kBlockDim);
  Reg acc = kb.imm(0);
  Reg idx = kb.reg();
  kb.mov(idx, isa::Operand(gid));
  Pred in_range = kb.pred();
  kb.while_(
      [&] {
        kb.setp(in_range, CmpOp::kLtU, idx, n);
        return in_range;
      },
      [&] {
        Reg src = kb.addr(pin, idx, 4);
        Reg v = kb.reg();
        kb.ld_global(v, src);
        kb.add(acc, acc, isa::Operand(v));
        kb.add(idx, idx, isa::Operand(total_threads));
      });

  constexpr u32 kStage2 = kBlockDim * 4;
  Reg saddr = kb.reg();
  kb.mul(saddr, tid, 4u);
  kb.st_shared(saddr, acc);
  maybe_barrier(kb, opts, 0);

  // First pairwise step into a second buffer (cross-warp reads), then the
  // tree reduces that buffer.
  Pred first_half = kb.pred();
  kb.setp(first_half, CmpOp::kLtU, tid, kBlockDim / 2);
  kb.if_(first_half, [&] {
    Reg mine = kb.reg();
    Reg theirs = kb.reg();
    kb.ld_shared(mine, saddr);
    kb.ld_shared(theirs, saddr, (kBlockDim / 2) * 4);
    kb.add(mine, mine, isa::Operand(theirs));
    kb.st_shared(saddr, mine, kStage2);
  });
  maybe_barrier(kb, opts, 2);

  Reg stride = kb.imm(kBlockDim / 4);
  Pred more = kb.pred();
  kb.while_(
      [&] {
        kb.setp(more, CmpOp::kGtU, stride, 0u);
        return more;
      },
      [&] {
        Pred lower = kb.pred();
        kb.setp(lower, CmpOp::kLtU, tid, isa::Operand(stride));
        kb.if_(lower, [&] {
          Reg other = kb.reg();
          kb.add(other, tid, isa::Operand(stride));
          kb.mul(other, other, 4u);
          Reg mine = kb.reg();
          Reg theirs = kb.reg();
          kb.ld_shared(mine, saddr, kStage2);
          kb.ld_shared(theirs, other, kStage2);
          kb.add(mine, mine, isa::Operand(theirs));
          kb.st_shared(saddr, mine, kStage2);
        });
        kb.shr(stride, stride, 1u);
        maybe_barrier(kb, opts, 1);
      });

  Pred is0 = kb.pred();
  kb.setp(is0, CmpOp::kEq, tid, 0u);
  kb.if_(is0, [&] {
    Reg sum = kb.reg();
    Reg zero = kb.imm(0);
    kb.ld_shared(sum, zero, kStage2);
    Reg dst = kb.addr(ppart, bid, 4);
    kb.st_global(dst, sum);
    maybe_fence(kb, opts, 0);  // publish the partial before signalling

    Reg limit = kb.reg();
    kb.sub(limit, nblocks, 1u);
    Reg old = kb.reg();
    kb.atom_global(old, isa::AtomicOp::kInc, pcount, limit);
    Pred last = kb.pred();
    kb.setp(last, CmpOp::kEq, old, isa::Operand(limit));
    kb.if_(last, [&] {
      Reg final_sum = kb.imm(0);
      Reg b = kb.reg();
      kb.for_range(b, 0u, isa::Operand(nblocks), 1u, [&] {
        Reg src = kb.addr(ppart, b, 4);
        Reg v = kb.reg();
        kb.ld_global(v, src);
        kb.add(final_sum, final_sum, isa::Operand(v));
      });
      kb.st_global(pres, final_sum);
    });
  });

  emit_rogue_cross_block(kb, opts, 0, kb.param(1), 1);

  PreparedKernel prep;
  prep.program = kb.build();
  prep.grid_dim = blocks;
  prep.block_dim = kBlockDim;
  prep.shared_mem_bytes = kBlockDim * 4 + (kBlockDim / 2) * 4;
  prep.params = {in, partials, counter, result};
  if (opts.injection.kind == InjectionKind::kNone) {
    prep.verify = [result, host_sum](const mem::DeviceMemory& memory, std::string* msg) {
      const u32 got = memory.read_u32(result);
      const u32 want = static_cast<u32>(host_sum);  // mod 2^32, same as device
      if (got != want) {
        if (msg) *msg = "reduce: got " + std::to_string(got) + " want " + std::to_string(want);
        return false;
      }
      return true;
    };
  }
  return prep;
}

}  // namespace haccrg::kernels
