// HASH: microbenchmark where every thread atomically updates a hash
// table (Section V). Keys are staged per block in shared memory (with a
// barrier), then each thread inserts its keys into lock-protected
// buckets: a fine-grained lock per bucket, the critical section delimited
// by the HAccRG acquire/release markers, the table update a plain
// read-modify-write under the lock.
//
// Injection sites: barriers {0: after key staging, 1: after the summary
// staging}; cross-block rogue {0: per-bucket counters}; critical rogues
// {0: a CS write under different locks to one shared word, 1: an
// unprotected write to the lock-protected table}.
#include <vector>

#include "common/rng.hpp"
#include "kernels/common.hpp"

namespace haccrg::kernels {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {
constexpr u32 kBlockDim = 64;
constexpr u32 kBuckets = 512;
constexpr u32 kKeysPerThread = 4;

constexpr u32 hash_key(u32 key) { return (key * 2654435761u) >> 7; }
}  // namespace

PreparedKernel prepare_hash(sim::Gpu& gpu, const BenchOptions& opts) {
  const u32 blocks = 8 * opts.scale;
  const u32 threads = blocks * kBlockDim;
  const Addr table = gpu.allocator().alloc(kBuckets * 4, "hash.table");    // counts
  const Addr keysum = gpu.allocator().alloc(kBuckets * 4, "hash.keysum");  // xor of keys
  const Addr locks = gpu.allocator().alloc(kBuckets * 4, "hash.locks");
  const Addr aux = gpu.allocator().alloc(64 * 4, "hash.aux");  // rogue-injection target
  const Addr summary = gpu.allocator().alloc(threads * 4, "hash.summary");
  gpu.memory().fill(table, kBuckets * 4, 0);
  gpu.memory().fill(keysum, kBuckets * 4, 0);
  gpu.memory().fill(locks, kBuckets * 4, 0);
  gpu.memory().fill(aux, 64 * 4, 0);
  gpu.memory().fill(summary, threads * 4, 0);

  KernelBuilder kb("hash");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg ptable = kb.param(0);
  Reg pkeysum = kb.param(1);
  Reg plocks = kb.param(2);
  Reg paux = kb.param(3);

  // Stage this block's base keys in shared memory; each thread then reads
  // its neighbor's staged key as the mixing salt (needs the barrier).
  const u32 key_mix = opts.seed * 0x85ebca6bu;
  Reg my_key = kb.reg();
  kb.mul(my_key, gid, 2246822519u);
  kb.add(my_key, my_key, key_mix);
  Reg saddr = kb.reg();
  kb.mul(saddr, tid, 4u);
  kb.st_shared(saddr, my_key);
  maybe_barrier(kb, opts, 0);
  Reg neighbor = kb.reg();
  kb.add(neighbor, tid, 1u);
  kb.rem(neighbor, neighbor, kBlockDim);
  kb.mul(neighbor, neighbor, 4u);
  Reg salt = kb.reg();
  kb.ld_shared(salt, neighbor);

  Reg k = kb.reg();
  kb.for_range(k, 0u, kKeysPerThread, 1u, [&] {
    Reg key = kb.reg();
    kb.mul(key, k, 374761393u);
    kb.add(key, key, isa::Operand(my_key));
    kb.xor_(key, key, isa::Operand(salt));
    Reg bucket = kb.reg();
    kb.mul(bucket, key, 2654435761u);
    kb.shr(bucket, bucket, 7u);
    kb.rem(bucket, bucket, kBuckets);
    Reg lock_addr = kb.addr(plocks, bucket, 4);
    Reg count_addr = kb.addr(ptable, bucket, 4);
    Reg sum_addr = kb.addr(pkeysum, bucket, 4);
    kb.with_lock(lock_addr, [&] {
      Reg count = kb.reg();
      kb.ld_global(count, count_addr);
      kb.add(count, count, 1u);
      kb.st_global(count_addr, count);
      Reg sum = kb.reg();
      kb.ld_global(sum, sum_addr);
      kb.xor_(sum, sum, isa::Operand(key));
      kb.st_global(sum_addr, sum);
      if (opts.injection.rogue_critical(0)) {
        // A write to aux[bucket % 61] while holding this bucket's lock:
        // threads holding *different* bucket locks collide on the same
        // aux word -> lockset "no common lock" race. The modulus is
        // coprime with the Bloom bin size so colliding aux slots do not
        // imply colliding lock signatures.
        Reg aux_idx = kb.reg();
        kb.rem(aux_idx, bucket, 61u);
        Reg aux_dst = kb.addr(paux, aux_idx, 4);
        kb.st_global(aux_dst, count);
      }
    });
    if (opts.injection.rogue_critical(1)) {
      // An unprotected write to the lock-protected table entry.
      Reg junk = kb.imm(0x5eeded);
      kb.st_global(count_addr, junk);
    }
  });

  // Summary phase: each thread publishes its last inserted bucket; the
  // previous lane (cross-warp at the wrap-around) reads it and records it
  // globally.
  Reg last_b = kb.reg();
  {
    // Recompute the bucket of key index kKeysPerThread-1.
    Reg key = kb.reg();
    kb.mov(key, (kKeysPerThread - 1) * 374761393u);
    kb.add(key, key, isa::Operand(my_key));
    kb.xor_(key, key, isa::Operand(salt));
    kb.mul(last_b, key, 2654435761u);
    kb.shr(last_b, last_b, 7u);
    kb.rem(last_b, last_b, kBuckets);
  }
  kb.barrier();  // all salt reads complete before the staging slot is reused
  kb.st_shared(saddr, last_b);
  maybe_barrier(kb, opts, 1);
  Reg prev = kb.reg();
  kb.add(prev, tid, kBlockDim - 1);
  kb.rem(prev, prev, kBlockDim);
  kb.mul(prev, prev, 4u);
  Reg prev_bucket = kb.reg();
  kb.ld_shared(prev_bucket, prev);
  Reg summary_dst = kb.addr(kb.param(4), gid, 4);
  kb.st_global(summary_dst, prev_bucket);

  emit_rogue_cross_block(kb, opts, 0, kb.param(0), 4);

  PreparedKernel prep;
  prep.program = kb.build();
  prep.grid_dim = blocks;
  prep.block_dim = kBlockDim;
  prep.shared_mem_bytes = kBlockDim * 4;
  prep.params = {table, keysum, locks, aux, summary};
  if (opts.injection.kind == InjectionKind::kNone) {
    prep.verify = [=](const mem::DeviceMemory& memory, std::string* msg) {
      std::vector<u32> ref_count(kBuckets, 0), ref_sum(kBuckets, 0);
      for (u32 t = 0; t < threads; ++t) {
        const u32 base = t * 2246822519u + key_mix;
        const u32 block = t / kBlockDim;
        const u32 neighbor_tid = (t % kBlockDim + 1) % kBlockDim;
        const u32 salt_v = (block * kBlockDim + neighbor_tid) * 2246822519u + key_mix;
        for (u32 kk = 0; kk < kKeysPerThread; ++kk) {
          const u32 key = (kk * 374761393u + base) ^ salt_v;
          const u32 bucket = hash_key(key) % kBuckets;
          ++ref_count[bucket];
          ref_sum[bucket] ^= key;
        }
      }
      for (u32 b = 0; b < kBuckets; ++b) {
        const u32 got_count = memory.read_u32(table + b * 4);
        const u32 got_sum = memory.read_u32(keysum + b * 4);
        if (got_count != ref_count[b] || got_sum != ref_sum[b]) {
          if (msg) *msg = "hash bucket " + std::to_string(b) + ": count " +
                          std::to_string(got_count) + "/" + std::to_string(ref_count[b]) +
                          " sum " + std::to_string(got_sum) + "/" + std::to_string(ref_sum[b]);
          return false;
        }
      }
      // Summary: thread t records the previous lane's last bucket.
      for (u32 t = 0; t < threads; ++t) {
        const u32 block = t / kBlockDim;
        const u32 prev_tid = (t % kBlockDim + kBlockDim - 1) % kBlockDim;
        const u32 prev_gid = block * kBlockDim + prev_tid;
        const u32 base = prev_gid * 2246822519u + key_mix;
        const u32 neigh = block * kBlockDim + (prev_tid + 1) % kBlockDim;
        const u32 salt_v = neigh * 2246822519u + key_mix;
        const u32 key = ((kKeysPerThread - 1) * 374761393u + base) ^ salt_v;
        const u32 want = hash_key(key) % kBuckets;
        const u32 got = memory.read_u32(summary + t * 4);
        if (got != want) {
          if (msg) *msg = "hash summary[" + std::to_string(t) + "]: got " + std::to_string(got) +
                          " want " + std::to_string(want);
          return false;
        }
      }
      return true;
    };
  }
  return prep;
}

}  // namespace haccrg::kernels
