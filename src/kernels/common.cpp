#include "kernels/common.hpp"

namespace haccrg::kernels {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

void emit_rogue_cross_block(KernelBuilder& kb, const BenchOptions& opts, u32 site, Reg base,
                            u32 block_words) {
  if (!opts.injection.rogue_cross_block(site)) return;
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg bid = kb.special(isa::SpecialReg::kCtaId);
  Reg nblocks = kb.special(isa::SpecialReg::kNCtaId);
  Pred is0 = kb.pred();
  kb.setp(is0, CmpOp::kEq, tid, 0u);
  kb.if_(is0, [&] {
    Reg neighbor = kb.reg();
    kb.add(neighbor, bid, 1u);
    kb.rem(neighbor, neighbor, isa::Operand(nblocks));
    Reg dst = kb.addr(base, neighbor, block_words * 4);
    Reg junk = kb.imm(0xDEADBEEF);
    kb.st_global(dst, junk);
  });
}

}  // namespace haccrg::kernels
