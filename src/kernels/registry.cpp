#include "kernels/common.hpp"

namespace haccrg::kernels {

const std::vector<BenchmarkInfo>& all_benchmarks() {
  static const std::vector<BenchmarkInfo> registry = [] {
    std::vector<BenchmarkInfo> list;
    auto add = [&](BenchmarkInfo info) { list.push_back(std::move(info)); };

    add({.name = "MCARLO",
         .description = "Monte Carlo option pricing (CUDA SDK)",
         .prepare = &prepare_mcarlo,
         .sites = {.barriers = 3, .cross_block = 1, .fences = 0, .critical = 0},
         .uses_shared = true});
    add({.name = "SCAN",
         .description = "parallel prefix sum (CUDA SDK); documented single-block bug",
         .prepare = &prepare_scan,
         .sites = {.barriers = 2, .cross_block = 1, .fences = 0, .critical = 0},
         .uses_shared = true,
         .real_race_multiblock = true});
    add({.name = "FWALSH",
         .description = "fast Walsh transform (CUDA SDK)",
         .prepare = &prepare_fwalsh,
         .sites = {.barriers = 2, .cross_block = 2, .fences = 0, .critical = 0},
         .uses_shared = true});
    add({.name = "HIST",
         .description = "64-bin byte histogram (CUDA SDK histogram64)",
         .prepare = &prepare_hist,
         .sites = {.barriers = 3, .cross_block = 1, .fences = 0, .critical = 0},
         .uses_shared = true});
    add({.name = "SORTNW",
         .description = "bitonic sorting networks (CUDA SDK)",
         .prepare = &prepare_sortnw,
         .sites = {.barriers = 2, .cross_block = 2, .fences = 0, .critical = 0},
         .uses_shared = true});
    add({.name = "REDUCE",
         .description = "parallel reduction with the threadfence pattern",
         .prepare = &prepare_reduce,
         .sites = {.barriers = 3, .cross_block = 1, .fences = 1, .critical = 0},
         .uses_shared = true,
         .uses_fences = true});
    add({.name = "PSUM",
         .description = "threadfence example from the CUDA programming guide",
         .prepare = &prepare_psum,
         .sites = {.barriers = 2, .cross_block = 1, .fences = 1, .critical = 0},
         .uses_shared = true,
         .uses_fences = true});
    add({.name = "OFFT",
         .description = "ocean FFT spectrum generation; documented WAR bug",
         .prepare = &prepare_offt,
         .sites = {.barriers = 3, .cross_block = 2, .fences = 0, .critical = 0},
         .uses_shared = true,
         .real_race_multiblock = true});
    add({.name = "KMEANS",
         .description = "parallel k-means clustering; documented single-block bug",
         .prepare = &prepare_kmeans,
         .sites = {.barriers = 1, .cross_block = 1, .fences = 1, .critical = 0},
         .uses_shared = true,
         .uses_fences = true,
         .real_race_multiblock = true});
    add({.name = "HASH",
         .description = "lock-protected hash table updates",
         .prepare = &prepare_hash,
         .sites = {.barriers = 2, .cross_block = 1, .fences = 0, .critical = 2},
         .uses_shared = true,
         .uses_locks = true});
    return list;
  }();
  return registry;
}

const std::vector<BenchmarkInfo>& extended_benchmarks() {
  static const std::vector<BenchmarkInfo> registry = [] {
    std::vector<BenchmarkInfo> list;
    list.push_back({.name = "FUZZ",
                    .description = "seeded fuzz kernel (spec from the workload seed; src/fuzz)",
                    .prepare = &prepare_fuzz,
                    .uses_shared = true,
                    .uses_fences = true,
                    .uses_locks = true});
    return list;
  }();
  return registry;
}

const BenchmarkInfo* find_benchmark(const std::string& name) {
  for (const auto& info : all_benchmarks()) {
    if (info.name == name) return &info;
  }
  for (const auto& info : extended_benchmarks()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

}  // namespace haccrg::kernels
