// HIST: 64-bin byte histogram in the style of the CUDA SDK histogram64.
// Each thread owns a column of 64 one-byte counters in shared memory; the
// classic bank-conflict-avoiding thread-position shuffle interleaves the
// byte columns of different warps inside the same 32-bit words. That
// interleaving is exactly why the paper calls HIST out in the granularity
// study: one-byte elements from multiple warps map onto the same shadow
// granule, so coarse tracking reports false shared-memory races.
//
// The interleaving keeps each 32-bit word single-warp (so word-granularity
// tracking stays clean, matching the paper's "no shared races detected")
// while adjacent words belong to different warps — so any granule of 8
// bytes or more spans two warps and false positives explode, exactly the
// HIST behavior Table III reports.
//
// After the counting phase a barrier separates the merge phase, where each
// thread sums one bin's row (word loads, byte extraction) and atomically
// adds it to the global histogram.
//
// Injection sites: barriers {0: after counter zeroing, 1: between count
// and merge, 2: after staging the per-bin totals}; cross-block rogue
// {0: the input array}.
#include <vector>

#include "common/rng.hpp"
#include "kernels/common.hpp"

namespace haccrg::kernels {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {
constexpr u32 kBlockDim = 64;
constexpr u32 kBins = 64;
constexpr u32 kBytesPerThread = 256;

/// Bank-spreading byte-column shuffle: lanes 4k..4k+3 of warp w own the
/// four bytes of word 2k+w, i.e. words alternate between the two warps.
constexpr u32 thread_pos(u32 tid) {
  const u32 warp = tid >> 5;
  const u32 idx = tid & 31u;
  return ((idx >> 2) << 3) | (warp << 2) | (idx & 3u);
}
}  // namespace

PreparedKernel prepare_hist(sim::Gpu& gpu, const BenchOptions& opts) {
  const u32 blocks = 8 * opts.scale;
  const u32 n = blocks * kBlockDim * kBytesPerThread;
  const Addr in = gpu.allocator().alloc(n, "hist.in");
  const Addr hist = gpu.allocator().alloc(kBins * 4, "hist.out");
  const Addr check = gpu.allocator().alloc(blocks * kBlockDim * 4, "hist.check");
  std::vector<u8> host_in(n);
  SplitMix64 rng(mix_seed(0x4157u, opts.seed));
  for (u32 i = 0; i < n; ++i) {
    host_in[i] = static_cast<u8>(rng.next());
    gpu.memory().write_u8(in + i, host_in[i]);
  }
  gpu.memory().fill(hist, kBins * 4, 0);
  gpu.memory().fill(check, blocks * kBlockDim * 4, 0);

  KernelBuilder kb("hist");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg pin = kb.param(0);
  Reg phist = kb.param(1);

  // Zero this thread's 64 byte counters (16 word stores at its column...
  // the byte layout is bin*64 + thread_pos, so zero by words of the
  // whole array cooperatively: thread t zeroes words t, t+64, ...).
  Reg zero = kb.imm(0);
  Reg w = kb.reg();
  kb.for_range(w, 0u, kBins * kBlockDim / 4, kBlockDim, [&] {
    Reg word_idx = kb.reg();
    kb.add(word_idx, w, isa::Operand(tid));
    Reg a = kb.reg();
    kb.mul(a, word_idx, 4u);
    kb.st_shared(a, zero);
  });
  maybe_barrier(kb, opts, 0);

  // Counting phase: each thread processes kBytesPerThread input bytes.
  Reg pos = kb.reg();  // shuffled byte column of this thread
  {
    Reg warp = kb.reg();
    kb.shr(warp, tid, 5u);
    kb.shl(warp, warp, 2u);
    Reg idx = kb.reg();
    kb.and_(idx, tid, 31u);
    Reg hi = kb.reg();
    kb.shr(hi, idx, 2u);
    kb.shl(hi, hi, 3u);
    Reg lo = kb.reg();
    kb.and_(lo, idx, 3u);
    kb.or_(pos, hi, isa::Operand(warp));
    kb.or_(pos, pos, isa::Operand(lo));
  }
  // Stride-interleaved input walk (thread t reads bytes t, t+N, t+2N, ...)
  // so each warp load coalesces into one transaction, as in the SDK.
  Reg nblocks = kb.special(isa::SpecialReg::kNCtaId);
  Reg total_threads = kb.reg();
  kb.mul(total_threads, nblocks, kBlockDim);
  Reg base_in = kb.reg();
  kb.add(base_in, gid, isa::Operand(pin));
  Reg i = kb.reg();
  kb.for_range(i, 0u, kBytesPerThread, 1u, [&] {
    Reg stride = kb.reg();
    kb.mul(stride, i, isa::Operand(total_threads));
    Reg src = kb.reg();
    kb.add(src, base_in, isa::Operand(stride));
    Reg byte = kb.reg();
    kb.ld_global(byte, src, 0, 1);
    Reg bin = kb.reg();
    kb.and_(bin, byte, kBins - 1);
    Reg caddr = kb.reg();
    kb.mul(caddr, bin, kBlockDim);
    kb.add(caddr, caddr, isa::Operand(pos));
    Reg count = kb.reg();
    kb.ld_shared(count, caddr, 0, 1);
    kb.add(count, count, 1u);
    kb.st_shared(caddr, count, 0, 1);
  });
  maybe_barrier(kb, opts, 1);

  // Merge phase: thread t sums bin t's 64-byte row and adds it globally.
  Reg row = kb.reg();
  kb.mul(row, tid, kBlockDim);  // byte offset of bin t's row
  Reg total = kb.imm(0);
  Reg wofs = kb.reg();
  kb.for_range(wofs, 0u, kBlockDim, 4u, [&] {
    Reg a = kb.reg();
    kb.add(a, row, isa::Operand(wofs));
    Reg word = kb.reg();
    kb.ld_shared(word, a);
    Reg b0 = kb.reg();
    kb.and_(b0, word, 0xffu);
    kb.add(total, total, isa::Operand(b0));
    kb.shr(b0, word, 8u);
    kb.and_(b0, b0, 0xffu);
    kb.add(total, total, isa::Operand(b0));
    Reg b2 = kb.reg();
    kb.shr(b2, word, 16u);
    kb.and_(b2, b2, 0xffu);
    kb.add(total, total, isa::Operand(b2));
    kb.shr(b2, word, 24u);
    kb.add(total, total, isa::Operand(b2));
  });
  Reg dst = kb.addr(phist, tid, 4);
  Reg old = kb.reg();
  kb.atom_global(old, isa::AtomicOp::kAdd, dst, total);

  // Stage each bin's block-local total and let the neighboring thread
  // record it (a per-block cross-check output the host can verify).
  constexpr u32 kTotalsBase = kBins * kBlockDim;  // after the byte counters
  Reg taddr = kb.reg();
  kb.mul(taddr, tid, 4u);
  kb.st_shared(taddr, total, kTotalsBase);
  maybe_barrier(kb, opts, 2);
  Reg prev = kb.reg();
  kb.add(prev, tid, kBlockDim - 1);
  kb.rem(prev, prev, kBlockDim);
  kb.mul(prev, prev, 4u);
  Reg prev_total = kb.reg();
  kb.ld_shared(prev_total, prev, kTotalsBase);
  Reg pcheck = kb.param(2);
  Reg cdst = kb.addr(pcheck, gid, 4);
  kb.st_global(cdst, prev_total);

  // Rogue target is the *input* array (read by every thread with plain
  // loads); the global histogram itself is only touched by unchecked
  // atomics, so a store there would not be a checkable race.
  emit_rogue_cross_block(kb, opts, 0, kb.param(0), kBlockDim * kBytesPerThread / 4);

  PreparedKernel prep;
  prep.program = kb.build();
  prep.grid_dim = blocks;
  prep.block_dim = kBlockDim;
  prep.shared_mem_bytes = kBins * kBlockDim + kBlockDim * 4;  // counters + totals row
  prep.params = {in, hist, check};
  if (opts.injection.kind == InjectionKind::kNone) {
    prep.verify = [hist, check, host_in, blocks](const mem::DeviceMemory& memory,
                                                 std::string* msg) {
      u32 ref[kBins] = {};
      for (u8 byte : host_in) ++ref[byte & (kBins - 1)];
      for (u32 b = 0; b < kBins; ++b) {
        const u32 got = memory.read_u32(hist + b * 4);
        if (got != ref[b]) {
          if (msg) *msg = "hist bin " + std::to_string(b) + ": got " + std::to_string(got) +
                          " want " + std::to_string(ref[b]);
          return false;
        }
      }
      // Neighbor totals: thread t of block blk records the block-local
      // total of bin (t + kBlockDim - 1) % kBlockDim.
      const u32 total_threads = blocks * kBlockDim;
      for (u32 blk = 0; blk < blocks; ++blk) {
        u32 block_bins[kBins] = {};
        for (u32 t = 0; t < kBlockDim; ++t) {
          const u32 gid = blk * kBlockDim + t;
          for (u32 i = 0; i < kBytesPerThread; ++i) {
            ++block_bins[host_in[gid + i * total_threads] & (kBins - 1)];
          }
        }
        for (u32 t = 0; t < kBlockDim; ++t) {
          const u32 want = block_bins[(t + kBlockDim - 1) % kBlockDim];
          const u32 got = memory.read_u32(check + (blk * kBlockDim + t) * 4);
          if (got != want) {
            if (msg) *msg = "hist check block " + std::to_string(blk) + " thread " +
                            std::to_string(t) + ": got " + std::to_string(got) + " want " +
                            std::to_string(want);
            return false;
          }
        }
      }
      return true;
    };
  }
  return prep;
}

}  // namespace haccrg::kernels
