// Enumeration of the 41 injected races (Section VI-A): 23 removed
// barriers, 13 rogue cross-block accesses, 3 removed fences, and 2 rogue
// accesses around critical sections, spread over the ten benchmarks
// according to each benchmark's declared injection sites.
#pragma once

#include <string>
#include <vector>

#include "kernels/common.hpp"

namespace haccrg::kernels {

/// One entry of the injected-race campaign.
struct InjectionCase {
  std::string benchmark;
  Injection injection;
  /// Memory space the injected race is expected to appear in.
  rd::MemSpace expected_space = rd::MemSpace::kGlobal;
  /// Human-readable label, e.g. "SCAN -barrier#1".
  std::string label() const;
};

/// All injection cases, derived from the registry's site counts.
/// Totals: 23 + 13 + 3 + 2 = 41.
std::vector<InjectionCase> all_injection_cases();

/// Run one case and report whether HAccRG (shared+global, word/16-byte
/// default granularities) detects a race in the expected space.
struct InjectionResult {
  InjectionCase test;
  bool detected = false;
  u64 races_in_space = 0;
  u64 races_total = 0;
};

InjectionResult run_injection_case(const InjectionCase& test, const arch::GpuConfig& gpu_config,
                                   const sim::SimConfig& sim_config = sim::SimConfig::from_env());

}  // namespace haccrg::kernels
