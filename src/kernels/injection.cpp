#include "kernels/injection.hpp"

namespace haccrg::kernels {

std::string InjectionCase::label() const {
  const char* kind = "";
  switch (injection.kind) {
    case InjectionKind::kNone: kind = "none"; break;
    case InjectionKind::kRemoveBarrier: kind = "-barrier"; break;
    case InjectionKind::kRogueCrossBlock: kind = "+crossblock"; break;
    case InjectionKind::kRemoveFence: kind = "-fence"; break;
    case InjectionKind::kRogueCritical: kind = "+critical"; break;
  }
  return benchmark + " " + kind + "#" + std::to_string(injection.site);
}

std::vector<InjectionCase> all_injection_cases() {
  std::vector<InjectionCase> cases;
  for (const auto& info : all_benchmarks()) {
    for (u32 s = 0; s < info.sites.barriers; ++s) {
      // Removed barriers expose unordered shared-memory accesses.
      cases.push_back({info.name,
                       {InjectionKind::kRemoveBarrier, s},
                       rd::MemSpace::kShared});
    }
    for (u32 s = 0; s < info.sites.cross_block; ++s) {
      cases.push_back({info.name,
                       {InjectionKind::kRogueCrossBlock, s},
                       rd::MemSpace::kGlobal});
    }
    for (u32 s = 0; s < info.sites.fences; ++s) {
      cases.push_back({info.name,
                       {InjectionKind::kRemoveFence, s},
                       rd::MemSpace::kGlobal});
    }
    for (u32 s = 0; s < info.sites.critical; ++s) {
      cases.push_back({info.name,
                       {InjectionKind::kRogueCritical, s},
                       rd::MemSpace::kGlobal});
    }
  }
  return cases;
}

InjectionResult run_injection_case(const InjectionCase& test, const arch::GpuConfig& gpu_config,
                                   const sim::SimConfig& sim_config) {
  const BenchmarkInfo* info = find_benchmark(test.benchmark);
  InjectionResult result;
  result.test = test;
  if (info == nullptr) return result;

  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.enable_global = true;
  det.shared_granularity = 4;  // word granularity, as in the paper's
  det.global_granularity = 4;  // effectiveness study

  BenchOptions opts;
  opts.injection = test.injection;
  // SCAN and KMEANS have pre-existing *global* races when multi-block; run
  // their barrier-removal cases single-block so the only shared-memory
  // race present is the injected one.
  if (info->real_race_multiblock && test.injection.kind == InjectionKind::kRemoveBarrier) {
    opts.single_block = true;
  }

  sim::Gpu gpu(gpu_config, det, sim_config);
  PreparedKernel prep = info->prepare(gpu, opts);
  sim::SimResult run = gpu.launch(prep.launch());
  if (!run.completed) return result;

  result.races_total = run.races.unique();
  result.races_in_space = run.races.count(test.expected_space);
  // For the lockset rogues, require the lockset mechanism specifically.
  if (test.injection.kind == InjectionKind::kRogueCritical) {
    result.detected = run.races.count(rd::RaceMechanism::kLockset) > 0;
  } else if (test.injection.kind == InjectionKind::kRemoveFence) {
    result.detected = run.races.count(rd::RaceMechanism::kFence) +
                          run.races.count(rd::RaceMechanism::kL1Stale) >
                      0;
  } else {
    result.detected = result.races_in_space > 0;
  }
  return result;
}

}  // namespace haccrg::kernels
