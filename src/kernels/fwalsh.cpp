// FWALSH: fast Walsh-Hadamard transform. Each block transforms its own
// 2*blockDim-element chunk entirely in shared memory (the CUDA SDK
// fastWalshTransform's shared-memory stage), with a barrier between
// butterfly stages. Integer data keeps host verification exact.
//
// Injection sites: barriers {0: after load, 1: stage loop}; cross-block
// rogue {0: output chunk, 1: input chunk}.
#include <vector>

#include "common/rng.hpp"
#include "kernels/common.hpp"

namespace haccrg::kernels {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {
constexpr u32 kBlockDim = 128;
constexpr u32 kChunk = 2 * kBlockDim;  // 256 elements per block
}

PreparedKernel prepare_fwalsh(sim::Gpu& gpu, const BenchOptions& opts) {
  const u32 blocks = 8 * opts.scale;
  const u32 n = blocks * kChunk;
  const Addr in = gpu.allocator().alloc(n * 4, "fwalsh.in");
  const Addr out = gpu.allocator().alloc(n * 4, "fwalsh.out");
  std::vector<u32> host_in(n);
  SplitMix64 rng(mix_seed(0xfa15e, opts.seed));
  for (u32 i = 0; i < n; ++i) {
    host_in[i] = static_cast<u32>(rng.next() & 0xff);
    gpu.memory().write_u32(in + i * 4, host_in[i]);
  }

  KernelBuilder kb("fwalsh");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg bid = kb.special(isa::SpecialReg::kCtaId);
  Reg pin = kb.param(0);
  Reg pout = kb.param(1);

  // Load two elements per thread: chunk base + {tid, tid+blockDim}.
  Reg chunk_base = kb.reg();
  kb.mul(chunk_base, bid, kChunk * 4);
  Reg g0 = kb.reg();
  kb.mul(g0, tid, 4u);
  kb.add(g0, g0, isa::Operand(chunk_base));
  kb.add(g0, g0, isa::Operand(pin));
  Reg v0 = kb.reg();
  Reg v1 = kb.reg();
  kb.ld_global(v0, g0);
  kb.ld_global(v1, g0, kBlockDim * 4);
  Reg s0 = kb.reg();
  kb.mul(s0, tid, 4u);
  kb.st_shared(s0, v0);
  kb.st_shared(s0, v1, kBlockDim * 4);
  maybe_barrier(kb, opts, 0);

  // Butterfly stages: for h = 1, 2, ..., kChunk/2, each thread handles
  // the pair (i, i+h) with i = (tid/h)*2h + tid%h.
  Reg h = kb.imm(1);
  Pred more = kb.pred();
  kb.while_(
      [&] {
        kb.setp(more, CmpOp::kLtU, h, kChunk);
        return more;
      },
      [&] {
        Reg q = kb.reg();
        kb.div(q, tid, isa::Operand(h));
        Reg r = kb.reg();
        kb.rem(r, tid, isa::Operand(h));
        Reg i = kb.reg();
        kb.mul(i, q, isa::Operand(h));
        kb.shl(i, i, 1u);
        kb.add(i, i, isa::Operand(r));
        Reg ia = kb.reg();
        kb.mul(ia, i, 4u);
        Reg ib = kb.reg();
        kb.add(ib, i, isa::Operand(h));
        kb.mul(ib, ib, 4u);
        Reg a = kb.reg();
        Reg b2 = kb.reg();
        kb.ld_shared(a, ia);
        kb.ld_shared(b2, ib);
        Reg sum = kb.reg();
        kb.add(sum, a, isa::Operand(b2));
        Reg diff = kb.reg();
        kb.sub(diff, a, isa::Operand(b2));
        kb.st_shared(ia, sum);
        kb.st_shared(ib, diff);
        kb.shl(h, h, 1u);
        maybe_barrier(kb, opts, 1);
      });

  Reg d0 = kb.reg();
  kb.mul(d0, tid, 4u);
  kb.add(d0, d0, isa::Operand(chunk_base));
  kb.add(d0, d0, isa::Operand(pout));
  Reg r0 = kb.reg();
  Reg r1 = kb.reg();
  kb.ld_shared(r0, s0);
  kb.ld_shared(r1, s0, kBlockDim * 4);
  kb.st_global(d0, r0);
  kb.st_global(d0, r1, kBlockDim * 4);

  emit_rogue_cross_block(kb, opts, 0, kb.param(1), kChunk);
  emit_rogue_cross_block(kb, opts, 1, kb.param(0), kChunk);

  PreparedKernel prep;
  prep.program = kb.build();
  prep.grid_dim = blocks;
  prep.block_dim = kBlockDim;
  prep.shared_mem_bytes = kChunk * 4;
  prep.params = {in, out};
  if (opts.injection.kind == InjectionKind::kNone) {
    prep.verify = [out, host_in, blocks](const mem::DeviceMemory& memory, std::string* msg) {
      for (u32 b = 0; b < blocks; ++b) {
        u32 ref[kChunk];
        for (u32 i = 0; i < kChunk; ++i) ref[i] = host_in[b * kChunk + i];
        for (u32 h = 1; h < kChunk; h *= 2) {
          for (u32 i = 0; i < kChunk; i += 2 * h) {
            for (u32 j = i; j < i + h; ++j) {
              const u32 a = ref[j];
              const u32 c = ref[j + h];
              ref[j] = a + c;
              ref[j + h] = a - c;
            }
          }
        }
        for (u32 i = 0; i < kChunk; ++i) {
          const u32 got = memory.read_u32(out + (b * kChunk + i) * 4);
          if (got != ref[i]) {
            if (msg) *msg = "fwalsh[" + std::to_string(b * kChunk + i) + "]: got " +
                            std::to_string(got) + " want " + std::to_string(ref[i]);
            return false;
          }
        }
      }
      return true;
    };
  }
  return prep;
}

}  // namespace haccrg::kernels
