// FUZZ: the seeded fuzz generator as a registry kernel. The workload
// seed (BenchOptions::seed) is the fuzz seed — `haccrg-trace record
// --kernel FUZZ --seed N` records exactly the kernel `haccrg-fuzz
// generate --seed N` describes. Lives in the extended registry only:
// the golden-stats suites, bench tables, and injection campaigns
// iterate all_benchmarks() and must not grow a seed-dependent entry.
#include "fuzz/generator.hpp"
#include "fuzz/spec.hpp"
#include "kernels/common.hpp"

namespace haccrg::kernels {

PreparedKernel prepare_fuzz(sim::Gpu& gpu, const BenchOptions& opts) {
  const fuzz::KernelSpec spec = fuzz::spec_from_seed(opts.seed);
  return fuzz::prepare_generated(gpu, fuzz::generate(spec));
}

}  // namespace haccrg::kernels
