// OFFT: the ocean-simulation spectrum-generation kernel (after the CUDA
// SDK oceanFFT demo). Each thread accumulates a spectrum value into its
// own output cell; a per-block twiddle table lives in shared memory and
// is read with a large stride (the banked access pattern the paper's
// Figure 8 blames for OFFT's software-shadow slowdown).
//
// Documented real race (Section VI-A): the mirror-address computation of
// the Hermitian boundary column is wrong — threads in column x==0 write
// to `row*W + W`, which is the next row's x==0 cell, i.e. a neighboring
// thread's output that the neighbor has already read and written: a
// write-after-read data race in global memory. `single_block=false` has
// no bearing here; the bug is present whenever W>1 (as published).
//
// Injection sites: barriers {0: after the twiddle-table store, 1: after
// the first strided read, 2: after the second-phase store}; cross-block
// rogue {0: output rows, 1: input rows}.
#include <vector>

#include "common/rng.hpp"
#include "kernels/common.hpp"

namespace haccrg::kernels {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {
constexpr u32 kW = 64;          // mesh width
constexpr u32 kBlockDim = 128;  // 2 rows per block
constexpr u32 kTwiddleStride = 33;  // strided shared reads (bank sweep)
}

PreparedKernel prepare_offt(sim::Gpu& gpu, const BenchOptions& opts) {
  const u32 rows = 16 * opts.scale;  // mesh height
  const u32 n = rows * kW;
  const u32 blocks = n / kBlockDim;
  const Addr in = gpu.allocator().alloc(n * 4, "offt.in");
  const Addr out = gpu.allocator().alloc((n + kW) * 4, "offt.out");  // +kW: buggy overflow row
  std::vector<u32> host_in(n);
  SplitMix64 rng(mix_seed(0x0feau, opts.seed));
  for (u32 i = 0; i < n; ++i) {
    host_in[i] = static_cast<u32>(rng.next() & 0x3ff);
    gpu.memory().write_u32(in + i * 4, host_in[i]);
  }
  gpu.memory().fill(out, (n + kW) * 4, 0);

  KernelBuilder kb("offt");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg pin = kb.param(0);
  Reg pout = kb.param(1);

  // Build the per-block twiddle table: s_tw[t] = (t*2654435761) >> 16.
  Reg tw = kb.reg();
  kb.mul(tw, tid, 2654435761u);
  kb.shr(tw, tw, 16u);
  Reg saddr = kb.reg();
  kb.mul(saddr, tid, 4u);
  kb.st_shared(saddr, tw);
  maybe_barrier(kb, opts, 0);

  // Strided twiddle read: lane t reads s_tw[(t*kTwiddleStride) % blockDim].
  Reg tw_idx = kb.reg();
  kb.mul(tw_idx, tid, kTwiddleStride);
  kb.rem(tw_idx, tw_idx, kBlockDim);
  kb.mul(tw_idx, tw_idx, 4u);
  Reg twiddle = kb.reg();
  kb.ld_shared(twiddle, tw_idx);
  maybe_barrier(kb, opts, 1);

  // Second mixing phase: write the gathered value back and gather again
  // with a different stride (the two-pass twiddle mix of the SDK demo).
  kb.st_shared(saddr, twiddle);
  maybe_barrier(kb, opts, 2);
  Reg tw_idx2 = kb.reg();
  kb.mul(tw_idx2, tid, 97u);
  kb.rem(tw_idx2, tw_idx2, kBlockDim);
  kb.mul(tw_idx2, tw_idx2, 4u);
  kb.ld_shared(twiddle, tw_idx2);

  // Spectrum accumulation: out[i] += f(in[i], twiddle). Read-then-write
  // so the buggy mirror store below produces a WAR.
  Reg x = kb.reg();
  kb.rem(x, gid, kW);
  Reg y = kb.reg();
  kb.div(y, gid, kW);
  Reg src = kb.addr(pin, gid, 4);
  Reg h0 = kb.reg();
  kb.ld_global(h0, src);
  Reg value = kb.reg();
  kb.mul(value, h0, 3u);
  kb.add(value, value, isa::Operand(twiddle));
  Reg dst = kb.addr(pout, gid, 4);
  Reg old = kb.reg();
  kb.ld_global(old, dst);
  kb.add(value, value, isa::Operand(old));
  kb.st_global(dst, value);

  // The buggy Hermitian mirror write: for x == 0 the mirror column is
  // computed as W - x = W instead of (W - x) % W = 0, so the store lands
  // on the next row's first cell — another thread's output.
  Pred boundary = kb.pred();
  kb.setp(boundary, CmpOp::kEq, x, 0u);
  kb.if_(boundary, [&] {
    Reg mirror = kb.reg();
    kb.mul(mirror, y, kW);
    kb.add(mirror, mirror, kW);  // y*W + W  ==  (y+1)*W + 0
    Reg mdst = kb.addr(pout, mirror, 4);
    Reg conj = kb.reg();
    kb.xor_(conj, value, 0x80000000u);
    kb.st_global(mdst, conj);
  });

  emit_rogue_cross_block(kb, opts, 0, kb.param(1), kBlockDim);
  emit_rogue_cross_block(kb, opts, 1, kb.param(0), kBlockDim);

  PreparedKernel prep;
  prep.program = kb.build();
  prep.grid_dim = blocks;
  prep.block_dim = kBlockDim;
  prep.shared_mem_bytes = kBlockDim * 4;
  prep.params = {in, out};
  if (opts.injection.kind == InjectionKind::kNone) {
    prep.verify = [out, host_in](const mem::DeviceMemory& memory, std::string* msg) {
      // Cells in column 0 are racy (the documented bug), so verify only
      // the interior columns, which are single-writer.
      const u32 n_local = static_cast<u32>(host_in.size());
      for (u32 i = 0; i < n_local; ++i) {
        if (i % kW == 0) continue;
        const u32 t = i % kBlockDim;
        const u32 t1 = (t * 97u) % kBlockDim;              // second gather
        const u32 t2 = (t1 * kTwiddleStride) % kBlockDim;  // first gather
        const u32 twiddle = (t2 * 2654435761u) >> 16;
        const u32 want = host_in[i] * 3u + twiddle;
        const u32 got = memory.read_u32(out + i * 4);
        if (got != want) {
          if (msg) *msg = "offt[" + std::to_string(i) + "]: got " + std::to_string(got) +
                          " want " + std::to_string(want);
          return false;
        }
      }
      return true;
    };
  }
  return prep;
}

}  // namespace haccrg::kernels
