// KMEANS: one iteration of parallel k-means clustering (2-D integer
// points, K centroids). Centroids are staged in shared memory; each
// thread assigns its points to the nearest centroid, blocks accumulate
// per-block sums/counts in shared memory and publish them with the
// threadfence pattern; the last block computes the new centroids.
//
// Documented bug (Section VI-A): like SCAN, the kernel is written for a
// single thread-block — its point loop strides by blockDim, not by the
// grid size — so when the workload launches several blocks, every block
// processes (and writes the assignment of) every point: cross-block WAW
// races on the assignment array. single_block=true removes them.
//
// Injection sites: barriers {0: after centroid staging, 1: before
// publishing block sums}; fences {0}; cross-block rogue {0: assignments}.
#include <vector>

#include "common/rng.hpp"
#include "kernels/common.hpp"

namespace haccrg::kernels {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {
constexpr u32 kBlockDim = 128;
constexpr u32 kK = 8;       // clusters
constexpr u32 kPoints = 2048;
}

PreparedKernel prepare_kmeans(sim::Gpu& gpu, const BenchOptions& opts) {
  const u32 blocks = opts.single_block ? 1 : 4 * opts.scale;
  const Addr px = gpu.allocator().alloc(kPoints * 4, "kmeans.px");
  const Addr py = gpu.allocator().alloc(kPoints * 4, "kmeans.py");
  const Addr centroids = gpu.allocator().alloc(kK * 2 * 4, "kmeans.centroids");
  const Addr assign = gpu.allocator().alloc(kPoints * 4, "kmeans.assign");
  const Addr block_sums = gpu.allocator().alloc(16 * kK * 3 * 4, "kmeans.block_sums");
  const Addr counter = gpu.allocator().alloc(4, "kmeans.counter");
  const Addr new_centroids = gpu.allocator().alloc(kK * 2 * 4, "kmeans.new_centroids");

  std::vector<u32> host_px(kPoints), host_py(kPoints);
  std::vector<u32> host_cx(kK), host_cy(kK);
  SplitMix64 rng(mix_seed(0x42eau, opts.seed));
  for (u32 i = 0; i < kPoints; ++i) {
    host_px[i] = rng.next_below(1024);
    host_py[i] = rng.next_below(1024);
    gpu.memory().write_u32(px + i * 4, host_px[i]);
    gpu.memory().write_u32(py + i * 4, host_py[i]);
  }
  for (u32 c = 0; c < kK; ++c) {
    host_cx[c] = rng.next_below(1024);
    host_cy[c] = rng.next_below(1024);
    gpu.memory().write_u32(centroids + (c * 2 + 0) * 4, host_cx[c]);
    gpu.memory().write_u32(centroids + (c * 2 + 1) * 4, host_cy[c]);
  }
  gpu.memory().fill(assign, kPoints * 4, 0);
  gpu.memory().fill(block_sums, 16 * kK * 3 * 4, 0);
  gpu.memory().fill(counter, 4, 0);
  gpu.memory().fill(new_centroids, kK * 2 * 4, 0);

  KernelBuilder kb("kmeans");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg bid = kb.special(isa::SpecialReg::kCtaId);
  Reg nblocks = kb.special(isa::SpecialReg::kNCtaId);
  Reg ppx = kb.param(0);
  Reg ppy = kb.param(1);
  Reg pcent = kb.param(2);
  Reg passign = kb.param(3);
  Reg psums = kb.param(4);
  Reg pcount = kb.param(5);
  Reg pnew = kb.param(6);

  // Shared layout: [0, kK*2) centroid words; [kK*2, kK*2 + kK*3) block
  // accumulators (sum_x, sum_y, count per cluster).
  constexpr u32 kAccBase = kK * 2 * 4;

  // Stage centroids and zero the accumulators (first kK*5 threads).
  Pred stager = kb.pred();
  kb.setp(stager, CmpOp::kLtU, tid, kK * 2);
  kb.if_(stager, [&] {
    Reg src = kb.addr(pcent, tid, 4);
    Reg v = kb.reg();
    kb.ld_global(v, src);
    Reg sa = kb.reg();
    kb.mul(sa, tid, 4u);
    kb.st_shared(sa, v);
  });
  Pred zeroer = kb.pred();
  kb.setp(zeroer, CmpOp::kLtU, tid, kK * 3);
  kb.if_(zeroer, [&] {
    Reg zero = kb.imm(0);
    Reg sa = kb.reg();
    kb.mul(sa, tid, 4u);
    kb.st_shared(sa, zero, kAccBase);
  });
  maybe_barrier(kb, opts, 0);

  // Point loop with the single-block design bug: i = tid; i += blockDim.
  Reg i = kb.reg();
  kb.mov(i, isa::Operand(tid));
  Pred in_range = kb.pred();
  kb.while_(
      [&] {
        kb.setp(in_range, CmpOp::kLtU, i, kPoints);
        return in_range;
      },
      [&] {
        Reg xsrc = kb.addr(ppx, i, 4);
        Reg ysrc = kb.addr(ppy, i, 4);
        Reg x = kb.reg();
        Reg y = kb.reg();
        kb.ld_global(x, xsrc);
        kb.ld_global(y, ysrc);

        Reg best = kb.imm(0);
        Reg best_dist = kb.imm(0xffffffffu);
        Reg c = kb.reg();
        kb.for_range(c, 0u, kK, 1u, [&] {
          Reg ca = kb.reg();
          kb.mul(ca, c, 8u);
          Reg cx = kb.reg();
          Reg cy = kb.reg();
          kb.ld_shared(cx, ca);
          kb.ld_shared(cy, ca, 4);
          Reg dx = kb.reg();
          kb.sub(dx, x, isa::Operand(cx));
          kb.mul(dx, dx, isa::Operand(dx));
          Reg dy = kb.reg();
          kb.sub(dy, y, isa::Operand(cy));
          kb.mul(dy, dy, isa::Operand(dy));
          kb.add(dx, dx, isa::Operand(dy));
          Pred closer = kb.pred();
          kb.setp(closer, CmpOp::kLtU, dx, isa::Operand(best_dist));
          kb.if_(closer, [&] {
            kb.mov(best_dist, isa::Operand(dx));
            kb.mov(best, isa::Operand(c));
          });
        });

        // The bug: every block writes assign[i] for every point.
        Reg adst = kb.addr(passign, i, 4);
        kb.st_global(adst, best);

        // Accumulate into the block's shared sums with shared atomics.
        Reg acc = kb.reg();
        kb.mul(acc, best, 12u);
        kb.add(acc, acc, kAccBase);
        Reg old = kb.reg();
        kb.atom_shared(old, isa::AtomicOp::kAdd, acc, x);
        Reg acc_y = kb.reg();
        kb.add(acc_y, acc, 4u);
        kb.atom_shared(old, isa::AtomicOp::kAdd, acc_y, y);
        Reg acc_n = kb.reg();
        kb.add(acc_n, acc, 8u);
        Reg one = kb.imm(1);
        kb.atom_shared(old, isa::AtomicOp::kAdd, acc_n, one);

        kb.add(i, i, kBlockDim);
      });

  maybe_barrier(kb, opts, 1);

  // Publish block sums (plain stores), fence, count, last block reduces.
  Pred publisher = kb.pred();
  kb.setp(publisher, CmpOp::kLtU, tid, kK * 3);
  kb.if_(publisher, [&] {
    Reg sa = kb.reg();
    kb.mul(sa, tid, 4u);
    Reg v = kb.reg();
    kb.ld_shared(v, sa, kAccBase);
    Reg slot = kb.reg();
    kb.mul(slot, bid, kK * 3);
    kb.add(slot, slot, isa::Operand(tid));
    Reg dst = kb.addr(psums, slot, 4);
    kb.st_global(dst, v);
  });
  maybe_fence(kb, opts, 0);

  Pred is0 = kb.pred();
  kb.setp(is0, CmpOp::kEq, tid, 0u);
  kb.if_(is0, [&] {
    Reg limit = kb.reg();
    kb.sub(limit, nblocks, 1u);
    Reg old = kb.reg();
    kb.atom_global(old, isa::AtomicOp::kInc, pcount, limit);
    Pred last = kb.pred();
    kb.setp(last, CmpOp::kEq, old, isa::Operand(limit));
    kb.if_(last, [&] {
      Reg c = kb.reg();
      kb.for_range(c, 0u, kK, 1u, [&] {
        Reg sx = kb.imm(0);
        Reg sy = kb.imm(0);
        Reg sn = kb.imm(0);
        Reg b = kb.reg();
        kb.for_range(b, 0u, isa::Operand(nblocks), 1u, [&] {
          Reg slot = kb.reg();
          kb.mul(slot, b, kK * 3);
          Reg coff = kb.reg();
          kb.mul(coff, c, 3u);
          kb.add(slot, slot, isa::Operand(coff));
          Reg src = kb.addr(psums, slot, 4);
          Reg v = kb.reg();
          kb.ld_global(v, src);
          kb.add(sx, sx, isa::Operand(v));
          kb.ld_global(v, src, 4);
          kb.add(sy, sy, isa::Operand(v));
          kb.ld_global(v, src, 8);
          kb.add(sn, sn, isa::Operand(v));
        });
        Reg nx = kb.reg();
        kb.div(nx, sx, isa::Operand(sn));
        Reg ny = kb.reg();
        kb.div(ny, sy, isa::Operand(sn));
        Reg dst = kb.addr(pnew, c, 8);
        kb.st_global(dst, nx);
        kb.st_global(dst, ny, 4);
      });
    });
  });

  emit_rogue_cross_block(kb, opts, 0, kb.param(3), 16);

  PreparedKernel prep;
  prep.program = kb.build();
  prep.grid_dim = blocks;
  prep.block_dim = kBlockDim;
  prep.shared_mem_bytes = kAccBase + kK * 3 * 4;
  prep.params = {px, py, centroids, assign, block_sums, counter, new_centroids};
  if (opts.injection.kind == InjectionKind::kNone) {
    prep.verify = [=](const mem::DeviceMemory& memory, std::string* msg) {
      // Host reference assignment + centroid update. With the multi-block
      // bug every block computes the same values, so sums are scaled by
      // the block count but the means are unchanged... except they are
      // not scaled: each block accumulates only into its own slot and the
      // final reduce adds every block's identical full sums, so counts
      // and sums are all multiplied by `blocks` — the means still match.
      std::vector<u64> sx(kK, 0), sy(kK, 0), sn(kK, 0);
      for (u32 p = 0; p < kPoints; ++p) {
        u32 best = 0;
        u64 best_dist = ~0ull;
        for (u32 c = 0; c < kK; ++c) {
          const i64 dx = static_cast<i64>(host_px[p]) - host_cx[c];
          const i64 dy = static_cast<i64>(host_py[p]) - host_cy[c];
          const u64 d = static_cast<u64>(dx * dx + dy * dy);
          if (d < best_dist) {
            best_dist = d;
            best = c;
          }
        }
        const u32 got = memory.read_u32(assign + p * 4);
        if (got != best) {
          if (msg) *msg = "kmeans assign[" + std::to_string(p) + "]: got " + std::to_string(got) +
                          " want " + std::to_string(best);
          return false;
        }
        sx[best] += host_px[p];
        sy[best] += host_py[p];
        ++sn[best];
      }
      for (u32 c = 0; c < kK; ++c) {
        if (sn[c] == 0) continue;
        const u32 want_x = static_cast<u32>(sx[c] / sn[c]);
        const u32 want_y = static_cast<u32>(sy[c] / sn[c]);
        const u32 got_x = memory.read_u32(new_centroids + (c * 2 + 0) * 4);
        const u32 got_y = memory.read_u32(new_centroids + (c * 2 + 1) * 4);
        if (got_x != want_x || got_y != want_y) {
          if (msg) *msg = "kmeans centroid " + std::to_string(c) + " mismatch";
          return false;
        }
      }
      return true;
    };
  }
  return prep;
}

}  // namespace haccrg::kernels
