// SORTNW: bitonic sorting network (CUDA SDK sortingNetworks). Each block
// sorts its own 2*blockDim-element tile in shared memory; the two nested
// stage loops synchronize with a barrier before every compare-exchange
// sweep, exactly as the SDK kernel does.
//
// Injection sites: barriers {0: after load, 1: inner stage loop (after
// each sweep)}; cross-block rogue {0: output tile, 1: input tile}.
#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "kernels/common.hpp"

namespace haccrg::kernels {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {
constexpr u32 kBlockDim = 128;
constexpr u32 kTile = 2 * kBlockDim;  // 256 keys per block
}

PreparedKernel prepare_sortnw(sim::Gpu& gpu, const BenchOptions& opts) {
  const u32 blocks = 8 * opts.scale;
  const u32 n = blocks * kTile;
  const Addr in = gpu.allocator().alloc(n * 4, "sortnw.in");
  const Addr out = gpu.allocator().alloc(n * 4, "sortnw.out");
  std::vector<u32> host_in(n);
  SplitMix64 rng(mix_seed(0x50127u, opts.seed));
  for (u32 i = 0; i < n; ++i) {
    host_in[i] = static_cast<u32>(rng.next() & 0xffffff);
    gpu.memory().write_u32(in + i * 4, host_in[i]);
  }

  KernelBuilder kb("sortnw");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg bid = kb.special(isa::SpecialReg::kCtaId);
  Reg pin = kb.param(0);
  Reg pout = kb.param(1);

  Reg tile_base = kb.reg();
  kb.mul(tile_base, bid, kTile * 4);
  Reg g0 = kb.reg();
  kb.mul(g0, tid, 4u);
  kb.add(g0, g0, isa::Operand(tile_base));
  kb.add(g0, g0, isa::Operand(pin));
  Reg v0 = kb.reg();
  Reg v1 = kb.reg();
  kb.ld_global(v0, g0);
  kb.ld_global(v1, g0, kBlockDim * 4);
  Reg s0 = kb.reg();
  kb.mul(s0, tid, 4u);
  kb.st_shared(s0, v0);
  kb.st_shared(s0, v1, kBlockDim * 4);
  maybe_barrier(kb, opts, 0);

  // for (size = 2; size <= kTile; size <<= 1)
  //   for (stride = size/2; stride > 0; stride >>= 1)
  //     compare-exchange pairs (i, i+stride) with direction (i & size).
  Reg size = kb.imm(2);
  Pred size_more = kb.pred();
  kb.while_(
      [&] {
        kb.setp(size_more, CmpOp::kLeU, size, kTile);
        return size_more;
      },
      [&] {
        Reg stride = kb.reg();
        kb.shr(stride, size, 1u);
        Pred stride_more = kb.pred();
        kb.while_(
            [&] {
              kb.setp(stride_more, CmpOp::kGtU, stride, 0u);
              return stride_more;
            },
            [&] {
              // i = 2*stride*(tid/stride) + tid%stride
              Reg q = kb.reg();
              kb.div(q, tid, isa::Operand(stride));
              Reg r = kb.reg();
              kb.rem(r, tid, isa::Operand(stride));
              Reg i = kb.reg();
              kb.mul(i, q, isa::Operand(stride));
              kb.shl(i, i, 1u);
              kb.add(i, i, isa::Operand(r));
              // Ascending iff (i & size) == 0.
              Reg dirbit = kb.reg();
              kb.and_(dirbit, i, isa::Operand(size));
              Pred ascending = kb.pred();
              kb.setp(ascending, CmpOp::kEq, dirbit, 0u);
              Reg ia = kb.reg();
              kb.mul(ia, i, 4u);
              Reg ib = kb.reg();
              kb.add(ib, i, isa::Operand(stride));
              kb.mul(ib, ib, 4u);
              Reg a = kb.reg();
              Reg b2 = kb.reg();
              kb.ld_shared(a, ia);
              kb.ld_shared(b2, ib);
              Reg lo = kb.reg();
              kb.umin(lo, a, isa::Operand(b2));
              Reg hi = kb.reg();
              kb.umax(hi, a, isa::Operand(b2));
              Reg first = kb.reg();
              Reg second = kb.reg();
              kb.sel(first, ascending, lo, hi);
              kb.sel(second, ascending, hi, lo);
              kb.st_shared(ia, first);
              kb.st_shared(ib, second);
              kb.shr(stride, stride, 1u);
              maybe_barrier(kb, opts, 1);
            });
        kb.shl(size, size, 1u);
      });

  // No barrier needed here: the final sweep's trailing barrier already
  // orders the write-back reads.
  Reg d0 = kb.reg();
  kb.mul(d0, tid, 4u);
  kb.add(d0, d0, isa::Operand(tile_base));
  kb.add(d0, d0, isa::Operand(pout));
  Reg r0 = kb.reg();
  Reg r1 = kb.reg();
  kb.ld_shared(r0, s0);
  kb.ld_shared(r1, s0, kBlockDim * 4);
  kb.st_global(d0, r0);
  kb.st_global(d0, r1, kBlockDim * 4);

  emit_rogue_cross_block(kb, opts, 0, kb.param(1), kTile);
  emit_rogue_cross_block(kb, opts, 1, kb.param(0), kTile);

  PreparedKernel prep;
  prep.program = kb.build();
  prep.grid_dim = blocks;
  prep.block_dim = kBlockDim;
  prep.shared_mem_bytes = kTile * 4;
  prep.params = {in, out};
  if (opts.injection.kind == InjectionKind::kNone) {
    prep.verify = [out, host_in, blocks](const mem::DeviceMemory& memory, std::string* msg) {
      for (u32 b = 0; b < blocks; ++b) {
        std::vector<u32> ref(host_in.begin() + b * kTile, host_in.begin() + (b + 1) * kTile);
        std::sort(ref.begin(), ref.end());
        for (u32 i = 0; i < kTile; ++i) {
          const u32 got = memory.read_u32(out + (b * kTile + i) * 4);
          if (got != ref[i]) {
            if (msg) *msg = "sortnw tile " + std::to_string(b) + " index " + std::to_string(i) +
                            ": got " + std::to_string(got) + " want " + std::to_string(ref[i]);
            return false;
          }
        }
      }
      return true;
    };
  }
  return prep;
}

}  // namespace haccrg::kernels
