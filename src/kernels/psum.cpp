// PSUM: microbenchmark based on the threadfence example in the CUDA
// programming guide — the sum of an array computed in one kernel launch.
// Each block reduces one tile; thread 0 stores the partial result, fences,
// and atomically counts finished blocks; the last block adds up the
// partials. Structurally the guide's example, smaller and simpler than
// REDUCE (one element per thread, no grid-stride loop).
//
// Injection sites: barriers {0: after shared store, 1: reduction loop};
// fences {0}; cross-block rogue {0: partials array}.
#include "common/rng.hpp"
#include "kernels/common.hpp"

namespace haccrg::kernels {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

namespace {
constexpr u32 kBlockDim = 128;
}

PreparedKernel prepare_psum(sim::Gpu& gpu, const BenchOptions& opts) {
  const u32 blocks = 16 * opts.scale;
  const u32 n = blocks * kBlockDim;
  const Addr in = gpu.allocator().alloc(n * 4, "psum.in");
  const Addr partials = gpu.allocator().alloc(blocks * 4, "psum.partials");
  const Addr counter = gpu.allocator().alloc(4, "psum.counter");
  const Addr result = gpu.allocator().alloc(4, "psum.result");
  u64 host_sum = 0;
  SplitMix64 rng(mix_seed(0x9505u, opts.seed));
  for (u32 i = 0; i < n; ++i) {
    const u32 v = static_cast<u32>(rng.next() & 0xffff);
    gpu.memory().write_u32(in + i * 4, v);
    host_sum += v;
  }
  gpu.memory().fill(partials, blocks * 4, 0);
  gpu.memory().fill(counter, 4, 0);
  gpu.memory().fill(result, 4, 0);

  KernelBuilder kb("psum");
  Reg tid = kb.special(isa::SpecialReg::kTid);
  Reg gid = kb.special(isa::SpecialReg::kGTid);
  Reg bid = kb.special(isa::SpecialReg::kCtaId);
  Reg nblocks = kb.special(isa::SpecialReg::kNCtaId);
  Reg pin = kb.param(0);
  Reg ppart = kb.param(1);
  Reg pcount = kb.param(2);
  Reg pres = kb.param(3);

  Reg src = kb.addr(pin, gid, 4);
  Reg v = kb.reg();
  kb.ld_global(v, src);
  Reg saddr = kb.reg();
  kb.mul(saddr, tid, 4u);
  kb.st_shared(saddr, v);
  maybe_barrier(kb, opts, 0);

  Reg stride = kb.imm(kBlockDim / 2);
  Pred more = kb.pred();
  kb.while_(
      [&] {
        kb.setp(more, CmpOp::kGtU, stride, 0u);
        return more;
      },
      [&] {
        Pred lower = kb.pred();
        kb.setp(lower, CmpOp::kLtU, tid, isa::Operand(stride));
        kb.if_(lower, [&] {
          Reg other = kb.reg();
          kb.add(other, tid, isa::Operand(stride));
          kb.mul(other, other, 4u);
          Reg mine = kb.reg();
          Reg theirs = kb.reg();
          kb.ld_shared(mine, saddr);
          kb.ld_shared(theirs, other);
          kb.add(mine, mine, isa::Operand(theirs));
          kb.st_shared(saddr, mine);
        });
        kb.shr(stride, stride, 1u);
        maybe_barrier(kb, opts, 1);
      });

  Pred is0 = kb.pred();
  kb.setp(is0, CmpOp::kEq, tid, 0u);
  kb.if_(is0, [&] {
    Reg sum = kb.reg();
    Reg zero = kb.imm(0);
    kb.ld_shared(sum, zero);
    Reg dst = kb.addr(ppart, bid, 4);
    kb.st_global(dst, sum);
    maybe_fence(kb, opts, 0);

    Reg limit = kb.reg();
    kb.sub(limit, nblocks, 1u);
    Reg old = kb.reg();
    kb.atom_global(old, isa::AtomicOp::kInc, pcount, limit);
    Pred last = kb.pred();
    kb.setp(last, CmpOp::kEq, old, isa::Operand(limit));
    kb.if_(last, [&] {
      Reg final_sum = kb.imm(0);
      Reg b = kb.reg();
      kb.for_range(b, 0u, isa::Operand(nblocks), 1u, [&] {
        Reg p = kb.addr(ppart, b, 4);
        Reg pv = kb.reg();
        kb.ld_global(pv, p);
        kb.add(final_sum, final_sum, isa::Operand(pv));
      });
      kb.st_global(pres, final_sum);
    });
  });

  emit_rogue_cross_block(kb, opts, 0, kb.param(1), 1);

  PreparedKernel prep;
  prep.program = kb.build();
  prep.grid_dim = blocks;
  prep.block_dim = kBlockDim;
  prep.shared_mem_bytes = kBlockDim * 4;
  prep.params = {in, partials, counter, result};
  if (opts.injection.kind == InjectionKind::kNone) {
    prep.verify = [result, host_sum](const mem::DeviceMemory& memory, std::string* msg) {
      const u32 got = memory.read_u32(result);
      const u32 want = static_cast<u32>(host_sum);
      if (got != want) {
        if (msg) *msg = "psum: got " + std::to_string(got) + " want " + std::to_string(want);
        return false;
      }
      return true;
    };
  }
  return prep;
}

}  // namespace haccrg::kernels
