// Warp execution context: per-lane registers, predicate lane-masks, the
// structured-divergence mask stack, and the scheduling state the SM's
// round-robin scheduler drives.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "isa/instr.hpp"

namespace haccrg::sim {

enum class WarpState : u8 {
  kInvalid,    ///< slot not in use
  kReady,      ///< can issue
  kWaitMem,    ///< blocked on outstanding loads/atomics
  kAtBarrier,  ///< arrived at bar.sync, waiting for the block
  kWaitFence,  ///< draining stores for a memory fence
  kDone,       ///< executed exit
};

/// One divergence scope on the mask stack.
struct MaskScope {
  u32 saved = 0;  ///< active mask to restore at scope exit
  u32 taken = 0;  ///< then-branch mask (for kElse)
};

class WarpContext {
 public:
  void init(u32 warp_slot, u32 block_slot, u32 block_id, u32 warp_in_block, u32 lanes,
            u32 regs_used) {
    warp_slot_ = warp_slot;
    block_slot_ = block_slot;
    block_id_ = block_id;
    warp_in_block_ = warp_in_block;
    pc = 0;
    alive = lanes >= 32 ? ~0u : ((1u << lanes) - 1);
    active = alive;
    mask_stack.clear();
    regs.assign(static_cast<size_t>(regs_used) * 32, 0);
    preds.fill(0);
    state = WarpState::kReady;
    pending_responses = 0;
    outstanding_stores = 0;
    ready_at = 0;
  }

  void release() { state = WarpState::kInvalid; }

  u32 warp_slot() const { return warp_slot_; }
  u32 block_slot() const { return block_slot_; }
  u32 block_id() const { return block_id_; }
  u32 warp_in_block() const { return warp_in_block_; }

  u32& reg(u32 index, u32 lane) { return regs[static_cast<size_t>(index) * 32 + lane]; }
  u32 reg(u32 index, u32 lane) const { return regs[static_cast<size_t>(index) * 32 + lane]; }

  bool lane_active(u32 lane) const { return (active >> lane) & 1; }

  // Execution state (owned by the SM's executor).
  u32 pc = 0;
  u32 active = 0;  ///< current active-lane mask
  u32 alive = 0;   ///< lanes that exist and have not exited
  std::vector<MaskScope> mask_stack;
  std::vector<u32> regs;  ///< regs_used * 32, lane-major within a register
  std::array<u32, isa::kMaxPreds> preds{};  ///< one lane-mask per predicate

  WarpState state = WarpState::kInvalid;
  u32 pending_responses = 0;   ///< loads/atomics in flight
  u32 outstanding_stores = 0;  ///< stores not yet acknowledged (fence tracking)
  Cycle ready_at = 0;          ///< earliest issue cycle

 private:
  u32 warp_slot_ = 0;
  u32 block_slot_ = 0;
  u32 block_id_ = 0;
  u32 warp_in_block_ = 0;
};

/// Runtime state of a thread-block resident on an SM.
struct BlockContext {
  bool active = false;
  u32 block_id = 0;
  u32 num_warps = 0;
  u32 warps_done = 0;
  u32 warps_at_barrier = 0;
  u32 smem_base = 0;   ///< partition base within the SM scratchpad
  u32 smem_bytes = 0;
  u32 thread_base = 0; ///< first hardware thread slot
};

}  // namespace haccrg::sim
