// Host-side simulation settings (as opposed to the modelled GPU's
// arch::GpuConfig): how the simulator itself runs. `num_threads` selects
// the parallel epoch engine; results are bit-identical for any value
// because all cross-SM effects are committed at deterministic barriers.
#pragma once

#include <string>

#include "common/status.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"

namespace haccrg::sim {

struct SimConfig {
  /// Worker threads stepping SMs / memory partitions in parallel within
  /// each cycle epoch. 1 == fully sequential engine.
  u32 num_threads = 1;

  /// When non-empty, every launch records an access trace (src/trace
  /// format) to this file. Trace writes happen only in the engine's
  /// serial phases, so the recorded bytes are identical for any
  /// num_threads value.
  std::string trace_path;

  /// Record traces in format v2 with a seekable index section (see
  /// trace/index.hpp). Off by default: v1 output stays byte-identical,
  /// and index-less traces replay everywhere via the linear-scan
  /// fallback.
  bool trace_index = false;

  /// Address shards for the parallel commit phase (engine kCommitSharded).
  /// 0 == auto: one shard per engine worker. Any value yields bit-identical
  /// results — the merge phase re-establishes the serial effect order —
  /// so this is a performance knob, not a semantic one.
  u32 commit_shards = 0;

  /// Per-phase engine profiling (src/sim/profiler.hpp). When on, runs
  /// export "prof.*" wall-clock stats; off by default so golden stat
  /// sets stay free of host-time noise.
  bool profile = false;

  /// Fault-injection campaign (src/fault). Default is the empty plan:
  /// no site armed, zero overhead, output byte-identical to a build
  /// without the fault subsystem.
  fault::FaultPlan faults;

  static constexpr u32 kMaxThreads = 64;
  static constexpr u32 kMaxCommitShards = 256;

  /// Reads HACCRG_THREADS (clamped to [1, kMaxThreads]; defaults to 1),
  /// HACCRG_COMMIT_SHARDS (clamped to [0, kMaxCommitShards]; 0 = auto),
  /// HACCRG_TRACE (trace output path; defaults to no tracing),
  /// HACCRG_TRACE_INDEX (any non-empty value but "0" records indexed v2
  /// traces),
  /// HACCRG_PROFILE (any non-empty value but "0" enables the per-phase
  /// profiler), and HACCRG_FAULTS (FaultPlan::parse syntax; a malformed
  /// value is ignored with a one-line stderr warning — this lenient
  /// entry point is the Gpu constructor's default argument and must not
  /// fail). Environment knobs rather than per-call plumbing so existing
  /// tests and benchmarks can be forced parallel or profiled wholesale
  /// (the TSan gate, the perf smoke run).
  static SimConfig from_env();

  /// Strict variant for the CLI and other user-facing front doors: the
  /// same environment variables, but a malformed HACCRG_THREADS
  /// (non-numeric, zero, > kMaxThreads) or HACCRG_FAULTS value is a
  /// reported error instead of a silent clamp/skip. On error, `out` is
  /// untouched.
  static Status parse_env(SimConfig& out);
};

}  // namespace haccrg::sim
