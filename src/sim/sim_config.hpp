// Host-side simulation settings (as opposed to the modelled GPU's
// arch::GpuConfig): how the simulator itself runs. `num_threads` selects
// the parallel epoch engine; results are bit-identical for any value
// because all cross-SM effects are committed at deterministic barriers.
#pragma once

#include <cstdlib>
#include <string>

#include "common/types.hpp"

namespace haccrg::sim {

struct SimConfig {
  /// Worker threads stepping SMs / memory partitions in parallel within
  /// each cycle epoch. 1 == fully sequential engine.
  u32 num_threads = 1;

  /// When non-empty, every launch records an access trace (src/trace
  /// format) to this file. Trace writes happen only in the engine's
  /// serial phases, so the recorded bytes are identical for any
  /// num_threads value.
  std::string trace_path;

  /// Per-phase engine profiling (src/sim/profiler.hpp). When on, runs
  /// export "prof.*" wall-clock stats; off by default so golden stat
  /// sets stay free of host-time noise.
  bool profile = false;

  static constexpr u32 kMaxThreads = 64;

  /// Reads HACCRG_THREADS (clamped to [1, kMaxThreads]; defaults to 1),
  /// HACCRG_TRACE (trace output path; defaults to no tracing), and
  /// HACCRG_PROFILE (any non-empty value but "0" enables the per-phase
  /// profiler). Environment knobs rather than per-call plumbing so
  /// existing tests and benchmarks can be forced parallel or profiled
  /// wholesale (the TSan gate, the perf smoke run).
  static SimConfig from_env() {
    SimConfig cfg;
    if (const char* env = std::getenv("HACCRG_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) cfg.num_threads = v > long{kMaxThreads} ? kMaxThreads : static_cast<u32>(v);
    }
    if (const char* env = std::getenv("HACCRG_TRACE"); env != nullptr && env[0] != '\0')
      cfg.trace_path = env;
    if (const char* env = std::getenv("HACCRG_PROFILE");
        env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
      cfg.profile = true;
    return cfg;
  }
};

}  // namespace haccrg::sim
