// Host-side simulation settings (as opposed to the modelled GPU's
// arch::GpuConfig): how the simulator itself runs. `num_threads` selects
// the parallel epoch engine; results are bit-identical for any value
// because all cross-SM effects are committed at deterministic barriers.
#pragma once

#include <cstdlib>

#include "common/types.hpp"

namespace haccrg::sim {

struct SimConfig {
  /// Worker threads stepping SMs / memory partitions in parallel within
  /// each cycle epoch. 1 == fully sequential engine.
  u32 num_threads = 1;

  static constexpr u32 kMaxThreads = 64;

  /// Reads HACCRG_THREADS (clamped to [1, kMaxThreads]); defaults to 1.
  /// An environment knob rather than per-call plumbing so existing tests
  /// and benchmarks can be forced parallel wholesale (the TSan gate).
  static SimConfig from_env() {
    SimConfig cfg;
    if (const char* env = std::getenv("HACCRG_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) cfg.num_threads = v > long{kMaxThreads} ? kMaxThreads : static_cast<u32>(v);
    }
    return cfg;
  }
};

}  // namespace haccrg::sim
