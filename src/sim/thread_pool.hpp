// Fixed worker pool for the parallel epoch engine. The cycle loop runs
// millions of tiny fork/join regions, so the pool is built for latency,
// not throughput: jobs are published through one atomic epoch counter,
// workers spin briefly before yielding (the simulator is often run on
// machines with fewer cores than workers), and the caller participates
// as worker 0 instead of sleeping. Work is split into static contiguous
// index ranges so the assignment of SMs/partitions to workers — and
// therefore memory placement — is the same every cycle.
#pragma once

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace haccrg::sim {

class WorkerPool {
 public:
  /// `num_threads` counts the caller: the pool spawns num_threads - 1
  /// helpers. num_threads <= 1 spawns nothing and run() executes inline.
  explicit WorkerPool(u32 num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  u32 num_threads() const { return num_threads_; }

  /// Execute fn(ctx, begin, end) over [0, count), split into one
  /// contiguous chunk per worker. Returns after every chunk completes
  /// (full barrier). fn must only touch state disjoint across chunks.
  void run(void (*fn)(void*, u32 begin, u32 end), void* ctx, u32 count);

  /// Balanced contiguous split of [0, count) across `num_threads`
  /// workers: worker w owns [count*w/n, count*(w+1)/n). Chunk sizes
  /// differ by at most one — 10 jobs over 4 workers gives 3,3,2,2,
  /// where the old ceil-chunk split gave 3,3,3,1 and stalled the whole
  /// barrier on worker 0's oversized chunk. Static so the determinism
  /// tests can pin the assignment directly.
  static std::pair<u32, u32> chunk_bounds(u32 worker_id, u32 num_threads, u32 count) {
    const u32 begin = static_cast<u32>(static_cast<u64>(count) * worker_id / num_threads);
    const u32 end = static_cast<u32>(static_cast<u64>(count) * (worker_id + 1) / num_threads);
    return {begin, end};
  }

 private:
  void worker_loop(u32 worker_id);
  void run_chunk(u32 worker_id) const;

  u32 num_threads_;
  std::vector<std::thread> helpers_;

  // Job slot, published by a release increment of epoch_.
  void (*job_fn_)(void*, u32, u32) = nullptr;
  void* job_ctx_ = nullptr;
  u32 job_count_ = 0;

  // The epoch and done counters sit on separate cache lines: workers
  // spin on epoch_ while finishing workers write done_, and co-locating
  // them makes every completion invalidate every spinner's line.
  alignas(64) std::atomic<u64> epoch_{0};
  alignas(64) std::atomic<u32> done_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace haccrg::sim
