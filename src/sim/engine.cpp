#include "sim/engine.hpp"

#include <algorithm>

namespace haccrg::sim {

Engine::Engine(std::vector<std::unique_ptr<Sm>>& sms,
               std::vector<mem::MemoryPartition>& partitions, mem::Interconnect& icnt,
               const SimConfig& sim)
    : sms_(&sms), partitions_(&partitions), icnt_(&icnt),
      // More workers than work units would only add barrier traffic.
      pool_(std::min(sim.num_threads,
                     std::max(static_cast<u32>(sms.size()), static_cast<u32>(partitions.size())))),
      profiler_(sim.profile), tracing_(!sms.empty() && sms.front()->tracing()) {}

void Engine::sm_phase(void* ctx, u32 begin, u32 end) {
  Engine& self = *static_cast<Engine*>(ctx);
  for (u32 s = begin; s < end; ++s) {
    Sm& sm = *(*self.sms_)[s];
    // has_response() is a cheap pre-check; most SM-cycles have nothing
    // queued and skip the optional-returning pop entirely.
    while (self.icnt_->has_response(s, self.now_))
      sm.deliver(*self.icnt_->recv_response(s, self.now_), self.now_);
    sm.cycle(self.now_);
  }
}

void Engine::partition_phase(void* ctx, u32 begin, u32 end) {
  Engine& self = *static_cast<Engine*>(ctx);
  for (u32 p = begin; p < end; ++p) (*self.partitions_)[p].step(*self.icnt_, self.now_);
}

void Engine::step(Cycle now) {
  now_ = now;
  {
    PhaseProfiler::Scope scope = profiler_.scope(EnginePhase::kSmCycle);
    pool_.run(&Engine::sm_phase, this, static_cast<u32>(sms_->size()));
  }
  // Trace recording: write every SM's staged issue-phase events in SM-id
  // order before the commit loop appends the cycle's global-memory
  // events, so the file order equals the serial phases' execution order.
  // Skipped wholesale when no trace writer is attached.
  if (tracing_) {
    PhaseProfiler::Scope scope = profiler_.scope(EnginePhase::kTraceFlush);
    for (auto& sm : *sms_) sm->flush_trace();
  }
  {
    PhaseProfiler::Scope scope = profiler_.scope(EnginePhase::kCommit);
    for (auto& sm : *sms_) sm->commit_epoch(now);
    icnt_->commit_requests(now);
  }
  {
    PhaseProfiler::Scope scope = profiler_.scope(EnginePhase::kPartition);
    pool_.run(&Engine::partition_phase, this, static_cast<u32>(partitions_->size()));
  }
  {
    PhaseProfiler::Scope scope = profiler_.scope(EnginePhase::kResponse);
    icnt_->commit_responses(now);
  }
}

}  // namespace haccrg::sim
