#include "sim/engine.hpp"

#include <algorithm>

namespace haccrg::sim {

Engine::Engine(std::vector<std::unique_ptr<Sm>>& sms,
               std::vector<mem::MemoryPartition>& partitions, mem::Interconnect& icnt,
               const SimConfig& sim)
    : sms_(&sms), partitions_(&partitions), icnt_(&icnt),
      // More workers than work units would only add barrier traffic.
      pool_(std::min(sim.num_threads,
                     std::max(static_cast<u32>(sms.size()), static_cast<u32>(partitions.size())))),
      profiler_(sim.profile), tracing_(!sms.empty() && sms.front()->tracing()),
      // The global-shadow fault stream advances in strict cross-SM check
      // order, which only the serial commit preserves — fault campaigns
      // take the legacy path. Results are identical either way for
      // fault-free runs (the determinism suite sweeps both knobs).
      use_sharded_(!sim.faults.any()),
      shard_count_(sim.commit_shards != 0 ? sim.commit_shards : pool_.num_threads()) {
  shard_queues_.resize(shard_count_);
  ord_base_.resize(sms.size(), 0);
}

void Engine::sm_phase(void* ctx, u32 begin, u32 end) {
  Engine& self = *static_cast<Engine*>(ctx);
  for (u32 s = begin; s < end; ++s) {
    Sm& sm = *(*self.sms_)[s];
    // has_response() is a cheap pre-check; most SM-cycles have nothing
    // queued and skip the optional-returning pop entirely.
    while (self.icnt_->has_response(s, self.now_))
      sm.deliver(*self.icnt_->recv_response(s, self.now_), self.now_);
    sm.cycle(self.now_);
  }
}

void Engine::commit_shard_phase(void* ctx, u32 begin, u32 end) {
  Engine& self = *static_cast<Engine*>(ctx);
  for (u32 shard = begin; shard < end; ++shard) {
    rd::CommitEffects& fx = self.shard_queues_[shard];
    fx.clear();
    // Every shard walks all SMs in id order; within the shard's address
    // set this reproduces the serial sweep's access order exactly, and
    // op ordinals (ord_base + i) arrive strictly increasing, which the
    // merge cursors rely on. The queue sizes recorded after each SM
    // delimit that SM's slice for the parallel merge.
    for (size_t s = 0; s < self.sms_->size(); ++s) {
      (*self.sms_)[s]->commit_sharded(shard, self.shard_count_, self.ord_base_[s], fx);
      fx.sm_race_end.push_back(static_cast<u32>(fx.races.size()));
      fx.sm_shadow_end.push_back(static_cast<u32>(fx.shadow.size()));
    }
  }
}

void Engine::commit_merge_phase(void* ctx, u32 begin, u32 end) {
  Engine& self = *static_cast<Engine*>(ctx);
  for (u32 s = begin; s < end; ++s) {
    (*self.sms_)[s]->commit_merge(self.shard_queues_, self.ord_base_[s]);
  }
}

void Engine::partition_phase(void* ctx, u32 begin, u32 end) {
  Engine& self = *static_cast<Engine*>(ctx);
  for (u32 p = begin; p < end; ++p) (*self.partitions_)[p].step(*self.icnt_, self.now_);
}

void Engine::step(Cycle now) {
  now_ = now;
  {
    PhaseProfiler::Scope scope = profiler_.scope(EnginePhase::kSmCycle);
    pool_.run(&Engine::sm_phase, this, static_cast<u32>(sms_->size()));
  }
  // Trace recording: write every SM's staged issue-phase events in SM-id
  // order before the commit loop appends the cycle's global-memory
  // events, so the file order equals the serial phases' execution order.
  // Skipped wholesale when no trace writer is attached.
  if (tracing_) {
    PhaseProfiler::Scope scope = profiler_.scope(EnginePhase::kTraceFlush);
    for (auto& sm : *sms_) sm->flush_trace();
  }
  if (use_sharded_) {
    // Commit barrier, split three ways. The kCommitSharded scope runs
    // every cycle (it owns the ordinal prefix sum); the merge and serial
    // scopes open only on cycles with actual commit work, so idle cycles
    // do not charge the scope's clock floor to the serial residue. The
    // skip conditions — deferred-op count, staged race records, pending
    // interconnect packets — are simulation state, identical for every
    // worker/shard count, so the phase schedule stays deterministic.
    u32 total_ops = 0;
    {
      PhaseProfiler::Scope scope = profiler_.scope(EnginePhase::kCommitSharded);
      for (size_t s = 0; s < sms_->size(); ++s) {
        ord_base_[s] = total_ops;
        total_ops += (*sms_)[s]->deferred_count();
      }
      if (total_ops > 0) pool_.run(&Engine::commit_shard_phase, this, shard_count_);
    }
    if (total_ops > 0) {
      PhaseProfiler::Scope scope = profiler_.scope(EnginePhase::kCommitMerge);
      pool_.run(&Engine::commit_merge_phase, this, static_cast<u32>(sms_->size()));
    }
    bool serial_work = total_ops > 0 || icnt_->pending_requests() > 0;
    if (!serial_work) {
      for (auto& sm : *sms_) {
        if (sm->has_staged_races()) {
          serial_work = true;
          break;
        }
      }
    }
    if (serial_work) {
      PhaseProfiler::Scope scope = profiler_.scope(EnginePhase::kCommitSerial);
      if (total_ops > 0) {
        // Counter deltas are commutative sums; fold them once per cycle.
        u64 checks = 0, races = 0, shadow = 0;
        for (const rd::CommitEffects& fx : shard_queues_) {
          checks += fx.checks;
          races += fx.races_found;
          shadow += fx.shadow_writes;
        }
        if (checks != 0 || races != 0 || shadow != 0) {
          (*sms_)[0]->global_rdu()->add_commit_counters(checks, races, shadow);
        }
      }
      // Idle SMs (no deferred ops, no staged issue-time race records)
      // have nothing to commit; skipping the call keeps the serial
      // residue proportional to actual traffic, not machine width.
      for (auto& sm : *sms_) {
        if (sm->deferred_count() != 0 || sm->has_staged_races()) sm->commit_serial();
      }
      icnt_->commit_requests(now);
    }
  } else {
    PhaseProfiler::Scope scope = profiler_.scope(EnginePhase::kCommit);
    for (auto& sm : *sms_) sm->commit_epoch(now);
    icnt_->commit_requests(now);
  }
  {
    PhaseProfiler::Scope scope = profiler_.scope(EnginePhase::kPartition);
    pool_.run(&Engine::partition_phase, this, static_cast<u32>(partitions_->size()));
  }
  {
    PhaseProfiler::Scope scope = profiler_.scope(EnginePhase::kResponse);
    icnt_->commit_responses(now);
  }
}

}  // namespace haccrg::sim
