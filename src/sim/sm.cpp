#include "sim/sm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "haccrg/sharding.hpp"

namespace haccrg::sim {

using isa::AtomicOp;
using isa::CmpOp;
using isa::Instr;
using isa::Opcode;
using isa::SpecialReg;

namespace {

/// Map an opcode's trace class (src/isa) to the wire-format event kind.
trace::EventKind trace_kind_for(Opcode op) {
  switch (isa::trace_event_class(op)) {
    case isa::TraceEventClass::kSharedLoad: return trace::EventKind::kSharedLoad;
    case isa::TraceEventClass::kSharedStore: return trace::EventKind::kSharedStore;
    case isa::TraceEventClass::kSharedAtomic: return trace::EventKind::kSharedAtomic;
    case isa::TraceEventClass::kGlobalLoad: return trace::EventKind::kGlobalLoad;
    case isa::TraceEventClass::kGlobalStore: return trace::EventKind::kGlobalStore;
    case isa::TraceEventClass::kGlobalAtomic: return trace::EventKind::kGlobalAtomic;
    case isa::TraceEventClass::kBarrier: return trace::EventKind::kBarrierArrive;
    case isa::TraceEventClass::kFence: return trace::EventKind::kFence;
    case isa::TraceEventClass::kLockAcquire: return trace::EventKind::kLockAcquire;
    case isa::TraceEventClass::kLockRelease: return trace::EventKind::kLockRelease;
    case isa::TraceEventClass::kNone: break;
  }
  return trace::EventKind::kKernelEnd;  // unreachable for traced opcodes
}

}  // namespace

Sm::Sm(u32 sm_id, const SmEnv& env)
    : sm_id_(sm_id), env_(env), warps_(env.gpu->warps_per_sm()),
      blocks_(env.gpu->max_blocks_per_sm),
      smem_(env.gpu->shared_mem_per_sm, env.gpu->shared_mem_banks),
      l1_("l1", env.gpu->l1_size, env.gpu->l1_ways, env.gpu->l1_line,
          mem::WritePolicy::kWriteThroughNoAllocate),
      ids_(env.gpu->max_blocks_per_sm, env.gpu->warps_per_sm(), env.gpu->max_threads_per_sm) {
  if (env_.haccrg->enable_shared) {
    rd::DetectPolicy policy;
    policy.warp_size = env_.gpu->warp_size;
    policy.warp_regrouping = env_.haccrg->warp_regrouping;
    policy.fence_gating = !env_.haccrg->disable_fence_gate;
    policy.bloom = {env_.haccrg->bloom_bits, env_.haccrg->bloom_bins};
    shared_rdu_ = std::make_unique<rd::SharedRdu>(sm_id_, env_.gpu->shared_mem_per_sm,
                                                  *env_.haccrg, policy, race_staging_);
    if (env_.faults != nullptr) shared_rdu_->set_faults(env_.faults);
  }
}

bool Sm::try_launch_block(u32 block_id, Cycle now) {
  const LaunchConfig& launch = *env_.launch;
  const u32 warp_size = env_.gpu->warp_size;
  const u32 warps_needed = static_cast<u32>(ceil_div(launch.block_dim, warp_size));

  // Find a free block slot with enough contiguous warp slots and smem.
  u32 slot = ~0u;
  for (u32 b = 0; b < blocks_.size(); ++b) {
    if (!blocks_[b].active) {
      slot = b;
      break;
    }
  }
  if (slot == ~0u) return false;

  // Thread/warp slots are carved per block slot: slot s owns warps
  // [s*warps_per_block_slot, ...). Capacity check: total threads.
  const u32 max_warps = env_.gpu->warps_per_sm();
  const u32 warp_base = slot * warps_needed;
  u32 used_warps = 0;
  for (const auto& b : blocks_)
    if (b.active) used_warps += b.num_warps;
  if (used_warps + warps_needed > max_warps) return false;
  if (warp_base + warps_needed > max_warps) return false;

  // Shared memory partition: fixed region per block slot.
  const u32 smem_per_slot = launch.shared_mem_bytes;
  const u32 smem_base = slot * smem_per_slot;
  if (smem_per_slot > 0 && smem_base + smem_per_slot > smem_.size()) return false;

  BlockContext& block = blocks_[slot];
  block.active = true;
  block.block_id = block_id;
  block.num_warps = warps_needed;
  block.warps_done = 0;
  block.warps_at_barrier = 0;
  block.smem_base = smem_base;
  block.smem_bytes = smem_per_slot;
  block.thread_base = warp_base * warp_size;

  if (smem_per_slot > 0) smem_.clear(smem_base, smem_per_slot);

  u32 threads_left = launch.block_dim;
  for (u32 w = 0; w < warps_needed; ++w) {
    WarpContext& warp = warps_[warp_base + w];
    const u32 lanes = std::min(threads_left, warp_size);
    threads_left -= lanes;
    warp.init(warp_base + w, slot, block_id, w, lanes, env_.program->regs_used());
    ++num_ready_;  // init() puts the warp in kReady
  }

  // HAccRG bookkeeping for the fresh tenant of this slot.
  ids_.on_block_launch(slot);
  for (u32 t = 0; t < launch.block_dim; ++t) ids_.reset_thread(block.thread_base + t);
  if (shared_rdu_ && smem_per_slot > 0) {
    shared_rdu_->reset_region(smem_base, smem_per_slot, env_.gpu->shared_mem_banks);
  }

  // Block launches happen in the scheduler's serial context, so the trace
  // event goes straight to the writer (after all of this cycle's events).
  if (env_.trace != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kBlockLaunch;
    e.cycle = now;
    e.sm = sm_id_;
    e.block_slot = slot;
    e.block_id = block_id;
    e.warp_base = warp_base;
    e.num_warps = warps_needed;
    e.thread_base = block.thread_base;
    e.smem_base = smem_base;
    e.smem_bytes = smem_per_slot;
    env_.trace->write_event(e);
  }

  ++resident_blocks_;
  return true;
}

void Sm::flush_trace() {
  if (env_.trace == nullptr || trace_staged_.empty()) return;
  for (const trace::Event& e : trace_staged_) env_.trace->write_event(e);
  trace_staged_.clear();
}

void Sm::deliver(const mem::Response& rsp, Cycle now) {
  WarpContext& warp = warps_[rsp.warp_slot];
  if (rsp.kind == mem::PacketKind::kStore) {
    if (warp.outstanding_stores > 0) --warp.outstanding_stores;
    if (warp.state == WarpState::kWaitFence && warp.outstanding_stores == 0) {
      set_state(warp, WarpState::kReady);
      warp.ready_at = now + env_.gpu->fence_latency;
      ids_.on_fence(warp.warp_slot());
      if (env_.trace != nullptr) {
        trace::Event e;
        e.kind = trace::EventKind::kFenceCommit;
        e.cycle = now;
        e.sm = sm_id_;
        e.warp_slot = warp.warp_slot();
        stage_trace(std::move(e));
      }
    }
    return;
  }
  // Load or atomic response.
  if (warp.pending_responses > 0) --warp.pending_responses;
  if (warp.state == WarpState::kWaitMem && warp.pending_responses == 0) {
    set_state(warp, WarpState::kReady);
    warp.ready_at = now + 1;
  }
}

WarpContext* Sm::pick_ready_warp(Cycle now) {
  const u32 n = static_cast<u32>(warps_.size());
  for (u32 i = 0; i < n; ++i) {
    WarpContext& warp = warps_[(rr_cursor_ + i) % n];
    if (warp.state == WarpState::kReady && warp.ready_at <= now) {
      rr_cursor_ = (warp.warp_slot() + 1) % n;
      return &warp;
    }
  }
  return nullptr;
}

void Sm::cycle(Cycle now) {
  // Idle and memory-bound SMs leave without touching the warp array:
  // with nothing resident or no warp in kReady the scheduler scan is a
  // provable no-op (it neither issues nor moves the round-robin cursor).
  if (resident_blocks_ == 0 || num_ready_ == 0) return;
  if (now < issue_free_at_) return;
  // Severe backpressure (packets the interconnect refused to take at
  // the last commit): stall issue until the backlog drains.
  if (env_.icnt->staged_requests(sm_id_) > 64) return;
  WarpContext* warp = pick_ready_warp(now);
  if (warp == nullptr) return;
  if (env_.faults != nullptr) inject_id_faults();
  execute(*warp, now);
}

void Sm::inject_id_faults() {
  // One roll per site per issued instruction: the number of instructions
  // an SM issues is deterministic, so fault placement is too. All state
  // touched (ids_) is SM-local — safe in the parallel phase.
  u64 pick = 0;
  if (env_.faults->bloom_flip(sm_id_, pick)) {
    const u32 thread_slot = static_cast<u32>(pick % env_.gpu->max_threads_per_sm);
    ids_.corrupt_sig(thread_slot, static_cast<u32>((pick >> 32) % 32));
  }
  if (env_.faults->racereg_drop(sm_id_, pick)) {
    // Even picks lose a fence ID, odd picks a sync ID — both halves of
    // the race register file are exercised by one site.
    if ((pick & 1) == 0) {
      ids_.drop_fence_id(static_cast<u32>((pick >> 1) % warps_.size()));
    } else {
      ids_.drop_sync_id(static_cast<u32>((pick >> 1) % blocks_.size()));
    }
  }
}

void Sm::send_packet(mem::Packet pkt) {
  pkt.sm_id = sm_id_;
  pkt.token = token_counter_++;
  pkt.dest_partition = env_.gpu->partition_of(pkt.addr);
  env_.icnt->stage_request(sm_id_, std::move(pkt));
}

void Sm::commit_epoch(Cycle now) {
  // Race records first: within one SM-cycle the sequential engine logs
  // the issue-time records (intra-warp WAW, shared RDU) before any
  // global RDU check fires, and only one instruction issues per cycle,
  // so draining the staging buffer before the replay preserves its
  // exact record order.
  if (!race_staging_.empty()) race_staging_.drain_into(*env_.race_log);
  for (u32 i = 0; i < deferred_count_; ++i) replay(deferred_[i]);
  deferred_count_ = 0;
  // Staged packets are injected by the engine's single fair
  // icnt.commit_requests(now) sweep after every SM has committed —
  // per-SM greedy injection here would let low-id SMs starve high-id
  // ones under contention.
  (void)now;
}

void Sm::commit_sharded(u32 shard_index, u32 shard_count, u32 ord_base, rd::CommitEffects& out) {
  for (u32 i = 0; i < deferred_count_; ++i) {
    DeferredGlobalOp& op = deferred_[i];
    WarpContext& warp = warps_[op.warp_slot];
    // Functional lane effects for the addresses this shard owns, in lane
    // order. All accesses to one address land in one shard, and every
    // shard walks SMs/ops/lanes in the serial order, so the per-address
    // access order — and therefore the final memory and register state —
    // matches the sequential replay exactly. Register writes are safe in
    // parallel: one op per SM per cycle, distinct lanes, flat reg array.
    for (const DeferredGlobalOp::Lane& lane : op.lanes) {
      if (!rd::shard_owns(lane.addr, shard_count, shard_index)) continue;
      if (op.is_atomic) {
        const u32 old = env_.memory->read_u32(lane.addr);
        env_.memory->write_u32(lane.addr,
                               apply_atomic(op.atomic_op, old, lane.operand, lane.compare));
        warp.reg(op.dst, lane.lane) = old;
      } else if (op.is_store) {
        if (op.width == 1)
          env_.memory->write_u8(lane.addr, static_cast<u8>(lane.operand));
        else
          env_.memory->write_u32(lane.addr, lane.operand);
      } else {
        warp.reg(op.dst, lane.lane) =
            op.width == 1 ? env_.memory->read_u8(lane.addr) : env_.memory->read_u32(lane.addr);
      }
    }
    if (env_.global_rdu == nullptr) continue;
    for (u32 c = 0; c < op.checks.size(); ++c) {
      env_.global_rdu->check_sharded(op.checks[c], shard_count, shard_index, ord_base + i, c, out);
    }
  }
}

void Sm::commit_merge(const std::vector<rd::CommitEffects>& shards, u32 ord_base) {
  merged_races_.clear();
  if (deferred_count_ == 0 || env_.global_rdu == nullptr) return;
  const u32 num_shards = static_cast<u32>(shards.size());
  merge_race_cur_.resize(num_shards);
  merge_shadow_cur_.resize(num_shards);
  for (u32 s = 0; s < num_shards; ++s) {
    merge_race_cur_[s] = sm_id_ == 0 ? 0 : shards[s].sm_race_end[sm_id_ - 1];
    merge_shadow_cur_[s] = sm_id_ == 0 ? 0 : shards[s].sm_shadow_end[sm_id_ - 1];
  }
  for (u32 i = 0; i < deferred_count_; ++i) {
    DeferredGlobalOp& op = deferred_[i];
    if (op.checks.empty()) continue;
    const u32 ord = ord_base + i;
    scratch_shadow_.clear();
    const size_t race_begin = merged_races_.size();
    // Pull this op's entries from every shard queue. Each queue slice is
    // ordered by op ordinal (the shard sweep walks ops in order), so a
    // cursor per shard suffices.
    for (u32 s = 0; s < num_shards; ++s) {
      const rd::CommitEffects& fx = shards[s];
      u32& rc = merge_race_cur_[s];
      while (rc < fx.sm_race_end[sm_id_] && fx.races[rc].op_ord == ord) {
        merged_races_.push_back(&fx.races[rc]);
        ++rc;
      }
      u32& sc = merge_shadow_cur_[s];
      while (sc < fx.sm_shadow_end[sm_id_] && fx.shadow[sc].op_ord == ord) {
        scratch_shadow_.push_back(fx.shadow[sc].entry_addr);
        ++sc;
      }
    }
    if (merged_races_.size() > race_begin) {
      // Serial replay order: checks in issue order, granules ascending
      // within a check. Granule addresses are unique per (op, check)
      // across shards — each granule has one owner — so the key is total.
      std::sort(merged_races_.begin() + static_cast<ptrdiff_t>(race_begin), merged_races_.end(),
                [](const rd::CommitEffects::QueuedRace* a, const rd::CommitEffects::QueuedRace* b) {
                  if (a->check_idx != b->check_idx) return a->check_idx < b->check_idx;
                  return a->record.granule_addr < b->record.granule_addr;
                });
    }
    // Shadow traffic, identical to replay(): the per-op sort + line dedup
    // canonicalizes whatever order the shards queued the entry addresses
    // in, so the packet sequence (and token assignment) matches serial.
    if (scratch_shadow_.empty()) continue;
    std::sort(scratch_shadow_.begin(), scratch_shadow_.end());
    Addr last_line = ~Addr{0};
    for (Addr shadow_addr : scratch_shadow_) {
      const Addr line = shadow_addr & ~(env_.gpu->l2_line - 1);
      if (line == last_line) continue;
      last_line = line;
      mem::Packet pkt;
      pkt.kind = mem::PacketKind::kShadow;
      pkt.addr = line;
      pkt.bytes = env_.gpu->l2_line;
      pkt.warp_slot = op.warp_slot;
      pkt.shadow_write = true;
      send_packet(std::move(pkt));
    }
  }
}

void Sm::commit_serial() {
  // Issue-time records (intra-warp WAW, shared RDU) drain before this
  // SM's global-RDU records, exactly as commit_epoch orders them; the
  // merged records are already in serial per-op order.
  if (!race_staging_.empty()) race_staging_.drain_into(*env_.race_log);
  if (!merged_races_.empty()) {
    for (const rd::CommitEffects::QueuedRace* r : merged_races_) env_.race_log->record(r->record);
    merged_races_.clear();
  }
  if (env_.trace != nullptr || env_.global_trace != nullptr) {
    for (u32 i = 0; i < deferred_count_; ++i) {
      DeferredGlobalOp& op = deferred_[i];
      if (op.has_trace_event && env_.trace != nullptr) env_.trace->write_event(op.trace_event);
      if (env_.global_trace != nullptr)
        for (Addr addr : op.trace_addrs) env_.global_trace->push_back(addr);
    }
  }
  deferred_count_ = 0;
}

Sm::DeferredGlobalOp& Sm::acquire_deferred() {
  if (deferred_count_ == deferred_.size()) deferred_.emplace_back();
  DeferredGlobalOp& op = deferred_[deferred_count_++];
  op.lanes.clear();
  op.trace_addrs.clear();
  op.checks.clear();
  op.has_trace_event = false;
  return op;
}

void Sm::replay(DeferredGlobalOp& op) {
  WarpContext& warp = warps_[op.warp_slot];

  // Global-memory trace events are written here, in the serial commit
  // phase, so the file interleaves them in SM-id order after every SM's
  // issue-phase events for the cycle (the replay ordering contract).
  if (op.has_trace_event && env_.trace != nullptr) env_.trace->write_event(op.trace_event);

  // Functional effects, in the lane order the sequential engine used.
  for (const DeferredGlobalOp::Lane& lane : op.lanes) {
    if (op.is_atomic) {
      const u32 old = env_.memory->read_u32(lane.addr);
      env_.memory->write_u32(lane.addr, apply_atomic(op.atomic_op, old, lane.operand, lane.compare));
      warp.reg(op.dst, lane.lane) = old;
    } else if (op.is_store) {
      if (op.width == 1)
        env_.memory->write_u8(lane.addr, static_cast<u8>(lane.operand));
      else
        env_.memory->write_u32(lane.addr, lane.operand);
    } else {
      warp.reg(op.dst, lane.lane) =
          op.width == 1 ? env_.memory->read_u8(lane.addr) : env_.memory->read_u32(lane.addr);
    }
  }

  if (env_.global_trace != nullptr)
    for (Addr addr : op.trace_addrs) env_.global_trace->push_back(addr);

  if (op.checks.empty() || env_.global_rdu == nullptr) return;
  scratch_shadow_.clear();
  for (const rd::AccessInfo& info : op.checks) env_.global_rdu->check(info, scratch_shadow_);

  // Shadow traffic: one kShadow packet per distinct shadow line touched.
  if (!scratch_shadow_.empty()) {
    std::sort(scratch_shadow_.begin(), scratch_shadow_.end());
    Addr last_line = ~Addr{0};
    for (Addr shadow_addr : scratch_shadow_) {
      const Addr line = shadow_addr & ~(env_.gpu->l2_line - 1);
      if (line == last_line) continue;
      last_line = line;
      mem::Packet pkt;
      pkt.kind = mem::PacketKind::kShadow;
      pkt.addr = line;
      pkt.bytes = env_.gpu->l2_line;
      pkt.warp_slot = op.warp_slot;
      pkt.shadow_write = true;
      send_packet(std::move(pkt));
    }
  }
}

u32 Sm::special_value(const WarpContext& warp, SpecialReg which, u32 lane) const {
  const LaunchConfig& launch = *env_.launch;
  const u32 tid = warp.warp_in_block() * env_.gpu->warp_size + lane;
  switch (which) {
    case SpecialReg::kTid: return tid;
    case SpecialReg::kNTid: return launch.block_dim;
    case SpecialReg::kCtaId: return warp.block_id();
    case SpecialReg::kNCtaId: return launch.grid_dim;
    case SpecialReg::kGTid: return warp.block_id() * launch.block_dim + tid;
    case SpecialReg::kLane: return lane;
    case SpecialReg::kWarpId: return warp.warp_in_block();
    case SpecialReg::kSmId: return sm_id_;
  }
  return 0;
}

u32 Sm::operand_value(const WarpContext& warp, const Instr& ins, u32 lane) const {
  return ins.src1_is_imm ? ins.imm : warp.reg(ins.src1, lane);
}

u32 Sm::apply_atomic(AtomicOp op, u32 old, u32 operand, u32 compare) const {
  switch (op) {
    case AtomicOp::kAdd: return old + operand;
    case AtomicOp::kInc: return old >= operand ? 0 : old + 1;
    case AtomicOp::kExch: return operand;
    case AtomicOp::kCas: return old == compare ? operand : old;
    case AtomicOp::kMin: return std::min(old, operand);
    case AtomicOp::kMax: return std::max(old, operand);
    case AtomicOp::kAnd: return old & operand;
    case AtomicOp::kOr: return old | operand;
  }
  return old;
}

void Sm::exec_alu(WarpContext& warp, const Instr& ins) {
  for (u32 lane = 0; lane < env_.gpu->warp_size; ++lane) {
    if (!warp.lane_active(lane)) continue;
    ++lane_instructions_;
    const u32 a = warp.reg(ins.src0, lane);
    const u32 b = operand_value(warp, ins, lane);
    u32 result = 0;
    switch (ins.op) {
      case Opcode::kMov: result = ins.src1_is_imm ? ins.imm : a; break;
      case Opcode::kAdd: result = a + b; break;
      case Opcode::kSub: result = a - b; break;
      case Opcode::kMul: result = a * b; break;
      case Opcode::kMulHi: result = static_cast<u32>((u64(a) * u64(b)) >> 32); break;
      case Opcode::kDiv: result = b == 0 ? 0 : a / b; break;
      case Opcode::kRem: result = b == 0 ? 0 : a % b; break;
      case Opcode::kMin: result = std::min(a, b); break;
      case Opcode::kMax: result = std::max(a, b); break;
      case Opcode::kAnd: result = a & b; break;
      case Opcode::kOr: result = a | b; break;
      case Opcode::kXor: result = a ^ b; break;
      case Opcode::kNot: result = ~a; break;
      case Opcode::kShl: result = a << (b & 31); break;
      case Opcode::kShr: result = a >> (b & 31); break;
      case Opcode::kSra: result = static_cast<u32>(static_cast<i32>(a) >> (b & 31)); break;
      case Opcode::kFAdd: result = as_u32(as_f32(a) + as_f32(b)); break;
      case Opcode::kFSub: result = as_u32(as_f32(a) - as_f32(b)); break;
      case Opcode::kFMul: result = as_u32(as_f32(a) * as_f32(b)); break;
      case Opcode::kFDiv: result = as_u32(as_f32(a) / as_f32(b)); break;
      case Opcode::kFSqrt: result = as_u32(std::sqrt(as_f32(a))); break;
      case Opcode::kFMin: result = as_u32(std::min(as_f32(a), as_f32(b))); break;
      case Opcode::kFMax: result = as_u32(std::max(as_f32(a), as_f32(b))); break;
      case Opcode::kFAbs: result = as_u32(std::fabs(as_f32(a))); break;
      case Opcode::kFLog: result = as_u32(std::log(as_f32(a))); break;
      case Opcode::kFExp: result = as_u32(std::exp(as_f32(a))); break;
      case Opcode::kI2F: result = as_u32(static_cast<f32>(static_cast<i32>(a))); break;
      case Opcode::kF2I: result = static_cast<u32>(static_cast<i32>(as_f32(a))); break;
      case Opcode::kSpecial: result = special_value(warp, ins.special(), lane); break;
      case Opcode::kParam: result = env_.launch->params[ins.imm]; break;
      case Opcode::kSel:
        result = ((warp.preds[ins.aux] >> lane) & 1) ? warp.reg(ins.src0, lane)
                                                     : warp.reg(ins.src1, lane);
        break;
      default: break;
    }
    warp.reg(ins.dst, lane) = result;
  }
}

bool Sm::static_filtered(u32 pc) const {
  return env_.haccrg->static_filter && env_.launch != nullptr &&
         env_.launch->static_report != nullptr && env_.launch->static_report->is_safe(pc);
}

rd::AccessInfo Sm::make_access(const WarpContext& warp, u32 lane, Addr addr, u8 size,
                               bool is_write, u32 pc, Cycle now, bool l1_hit) const {
  rd::AccessInfo a;
  a.addr = addr;
  a.size = size;
  a.is_write = is_write;
  const BlockContext& block = blocks_[warp.block_slot()];
  const u32 tid_in_block = warp.warp_in_block() * env_.gpu->warp_size + lane;
  a.thread_slot = static_cast<u16>(block.thread_base + tid_in_block);
  a.warp_in_sm = warp.warp_slot();
  a.block_slot = warp.block_slot();
  a.sm_id = sm_id_;
  a.sync_id = ids_.sync_id(warp.block_slot());
  a.fence_id = ids_.fence_id(warp.warp_slot());
  a.sig = ids_.sig(a.thread_slot);
  a.in_cs = ids_.in_cs(a.thread_slot);
  a.l1_hit = l1_hit;
  a.pc = pc;
  a.cycle = now;
  return a;
}

u32 Sm::sw_shadow_traffic(WarpContext& warp, const std::vector<u32>& lane_addrs) {
  // Shadow lines are fetched through the L1 like local data (write-back:
  // updates stay cached; only misses and dirty evictions reach memory).
  u32 extra_cycles = 0;
  const std::vector<u32> lines = shared_rdu_->shadow_lines(lane_addrs, env_.gpu->l1_line);
  for (u32 line : lines) {
    const Addr shadow_addr = env_.sw_shared_shadow_base + line * env_.gpu->l1_line;
    // Reuse the L1 in write-back mode for shadow lines by doing a read
    // probe followed by a manual allocate-on-miss.
    if (l1_.probe(shadow_addr)) {
      l1_.access(shadow_addr, false);
      extra_cycles += env_.gpu->l1_latency;
    } else {
      l1_.access(shadow_addr, false);  // allocates the line
      mem::Packet pkt;
      pkt.kind = mem::PacketKind::kLoad;
      pkt.addr = shadow_addr;
      pkt.bytes = env_.gpu->l1_line;
      pkt.warp_slot = warp.warp_slot();
      send_packet(std::move(pkt));
      ++warp.pending_responses;
    }
  }
  return extra_cycles;
}

void Sm::exec_shared_mem(WarpContext& warp, const Instr& ins, Cycle now) {
  const BlockContext& block = blocks_[warp.block_slot()];
  const bool is_store = ins.op == Opcode::kStShared;
  const bool is_atomic = ins.op == Opcode::kAtomShared;
  const u32 width = is_atomic ? 4 : ins.width();

  scratch_accesses_.clear();
  scratch_smem_addrs_.clear();
  for (u32 lane = 0; lane < env_.gpu->warp_size; ++lane) {
    if (!warp.lane_active(lane)) continue;
    ++lane_instructions_;
    const u32 block_addr = warp.reg(ins.src0, lane) + ins.imm;
    const u32 local = block.smem_base + block_addr;
    if (block_addr + width > block.smem_bytes) continue;  // out of the block's region
    scratch_smem_addrs_.push_back(local);
    scratch_accesses_.push_back({lane, local, static_cast<u8>(width)});

    // Functional effect.
    if (is_atomic) {
      const u32 old = smem_.read_u32(local);
      const u32 operand = warp.reg(ins.src1, lane);
      const u32 compare = warp.reg(ins.src2, lane);
      smem_.write_u32(local, apply_atomic(ins.atomic(), old, operand, compare));
      warp.reg(ins.dst, lane) = old;
    } else if (is_store) {
      const u32 value = warp.reg(ins.src1, lane);
      if (width == 1)
        smem_.write_u8(local, static_cast<u8>(value));
      else
        smem_.write_u32(local, value);
    } else {
      warp.reg(ins.dst, lane) = width == 1 ? smem_.read_u8(local) : smem_.read_u32(local);
    }
  }

  if (is_atomic)
    ++shared_atomics_;
  else if (is_store)
    ++shared_writes_;
  else
    ++shared_reads_;

  // Timing: bank conflicts; atomics to the same word serialize fully.
  u32 cycles = env_.gpu->shared_mem_latency;
  if (!scratch_smem_addrs_.empty()) {
    cycles += is_atomic ? static_cast<u32>(scratch_smem_addrs_.size())
                        : smem_.conflict_cycles(scratch_smem_addrs_) - 1;
  }
  bank_conflict_cycles_ += cycles > env_.gpu->shared_mem_latency
                               ? cycles - env_.gpu->shared_mem_latency
                               : 0;

  // HAccRG shared-memory detection. Atomic operations are synchronization
  // accesses and are not themselves checked (they cannot race). The
  // static filter (opt-in) additionally skips accesses the compile-time
  // analysis proved race-free at the detector's granularity.
  const bool shared_static_skip = shared_rdu_ && !is_atomic && static_filtered(warp.pc);
  if (shared_static_skip) {
    static_filtered_ += scratch_accesses_.size();
    static_filtered_shared_ += scratch_accesses_.size();
  }
  if (env_.trace != nullptr && !scratch_accesses_.empty()) {
    trace::Event e;
    e.kind = trace_kind_for(ins.op);
    e.cycle = now;
    e.sm = sm_id_;
    e.block_slot = warp.block_slot();
    e.warp_slot = warp.warp_slot();
    e.warp_in_block = warp.warp_in_block();
    e.pc = warp.pc;
    e.width = static_cast<u8>(width);
    e.checked = shared_rdu_ != nullptr && !is_atomic && !shared_static_skip;
    for (const auto& acc : scratch_accesses_)
      e.lanes.push_back({static_cast<u8>(acc.lane), acc.addr, false, 0});
    stage_trace(std::move(e));
  }
  if (shared_rdu_ && !is_atomic && !shared_static_skip) {
    if (is_store) {
      // The pre-issue intra-warp WAW check compares exact addresses at
      // the access width (not the tracking granularity): warp lanes
      // writing *different* locations of one shadow granule are SIMD-
      // synchronized and must not be reported (Section III-A/Table III).
      waw_buf_.build(scratch_accesses_, width);
      for (const auto& c : waw_buf_.conflicts()) {
        rd::RaceRecord race;
        race.type = rd::RaceType::kWaw;
        race.mechanism = rd::RaceMechanism::kIntraWarpWaw;
        race.space = rd::MemSpace::kShared;
        race.granule_addr = c.granule_addr;
        race.sm_id = sm_id_;
        race.first_thread = static_cast<u16>(block.thread_base +
                                             warp.warp_in_block() * env_.gpu->warp_size +
                                             c.lane_a);
        race.second_thread = static_cast<u16>(block.thread_base +
                                              warp.warp_in_block() * env_.gpu->warp_size +
                                              c.lane_b);
        race.pc = warp.pc;
        race.cycle = now;
        race_staging_.record(race);
      }
    }
    for (const auto& acc : scratch_accesses_) {
      shared_rdu_->check(
          make_access(warp, acc.lane, acc.addr, acc.size, is_store, warp.pc, now, false));
    }
    if (env_.haccrg->shared_shadow == rd::SharedShadowPlacement::kGlobalMemory) {
      cycles += sw_shadow_traffic(warp, scratch_smem_addrs_);
    }
  }

  issue_free_at_ = now + std::max(env_.gpu->warp_issue_cycles(), cycles);
  if (warp.pending_responses > 0) {
    set_state(warp, WarpState::kWaitMem);  // sw shadow miss outstanding
  } else {
    warp.ready_at = now + cycles;
  }
  ++warp.pc;
}

void Sm::exec_global_mem(WarpContext& warp, const Instr& ins, Cycle now) {
  const bool is_store = ins.op == Opcode::kStGlobal;
  const bool is_atomic = ins.op == Opcode::kAtomGlobal;
  const u32 width = is_atomic ? 4 : ins.width();
  const bool detect_cfg = env_.haccrg->enable_global && env_.global_rdu != nullptr;
  const bool global_static_skip = detect_cfg && static_filtered(warp.pc);
  const bool detect = detect_cfg && !global_static_skip;

  // Device memory and the global RDU are shared across SMs, so their
  // effects are captured here and replayed at the epoch barrier. Source
  // operands are read now (issue-time register values); destination
  // registers are written at replay, which nothing can observe earlier
  // because this warp issues again next cycle at the soonest.
  DeferredGlobalOp& op = acquire_deferred();
  op.warp_slot = warp.warp_slot();
  op.is_store = is_store;
  op.is_atomic = is_atomic;
  op.width = static_cast<u8>(width);
  op.dst = ins.dst;
  if (is_atomic) op.atomic_op = ins.atomic();

  scratch_accesses_.clear();
  for (u32 lane = 0; lane < env_.gpu->warp_size; ++lane) {
    if (!warp.lane_active(lane)) continue;
    ++lane_instructions_;
    const Addr addr = warp.reg(ins.src0, lane) + ins.imm;
    scratch_accesses_.push_back({lane, addr, static_cast<u8>(width)});

    DeferredGlobalOp::Lane dl;
    dl.lane = lane;
    dl.addr = addr;
    dl.operand = (is_store || is_atomic) ? warp.reg(ins.src1, lane) : 0;
    dl.compare = is_atomic ? warp.reg(ins.src2, lane) : 0;
    op.lanes.push_back(dl);
  }

  if (is_atomic)
    ++global_atomics_;
  else if (is_store)
    ++global_writes_;
  else
    ++global_reads_;

  // The ID registers must see every global access even when the shadow
  // check is statically filtered: they drive sync-ID ordering for the
  // *other* accesses' checks.
  if (detect_cfg && !scratch_accesses_.empty()) ids_.note_global_access(warp.block_slot());
  if (global_static_skip) {
    static_filtered_ += scratch_accesses_.size();
    static_filtered_global_ += scratch_accesses_.size();
  }

  if (env_.trace != nullptr && !scratch_accesses_.empty()) {
    op.has_trace_event = true;
    trace::Event& e = op.trace_event;
    // The slot may be reused: reset the event to defaults while keeping
    // the lane vector's capacity.
    auto lanes = std::move(e.lanes);
    lanes.clear();
    e = trace::Event{};
    e.lanes = std::move(lanes);
    e.kind = trace_kind_for(ins.op);
    e.cycle = now;
    e.sm = sm_id_;
    e.block_slot = warp.block_slot();
    e.warp_slot = warp.warp_slot();
    e.warp_in_block = warp.warp_in_block();
    e.pc = warp.pc;
    e.width = static_cast<u8>(width);
    e.checked = detect && !is_atomic;
    for (const auto& acc : scratch_accesses_)
      e.lanes.push_back({static_cast<u8>(acc.lane), acc.addr, false, 0});
  }

  u32 transactions = 0;

  if (is_atomic) {
    transactions = static_cast<u32>(scratch_accesses_.size());
    // One transaction per active lane; atomics are not race-checked.
    for (const auto& acc : scratch_accesses_) {
      mem::Packet pkt;
      pkt.kind = mem::PacketKind::kAtomic;
      pkt.addr = acc.addr & ~(env_.gpu->l1_line - 1);
      pkt.bytes = 4;
      pkt.warp_slot = warp.warp_slot();
      send_packet(std::move(pkt));
      ++warp.pending_responses;
    }
  } else {
    // Intra-warp WAW detection before the request is issued (Sec. III-A).
    if (detect && is_store) {
      const BlockContext& block = blocks_[warp.block_slot()];
      // Exact-address comparison at access width; see the shared path.
      waw_buf_.build(scratch_accesses_, width);
      for (const auto& c : waw_buf_.conflicts()) {
        rd::RaceRecord race;
        race.type = rd::RaceType::kWaw;
        race.mechanism = rd::RaceMechanism::kIntraWarpWaw;
        race.space = rd::MemSpace::kGlobal;
        race.granule_addr = c.granule_addr;
        race.sm_id = sm_id_;
        race.first_thread = static_cast<u16>(block.thread_base +
                                             warp.warp_in_block() * env_.gpu->warp_size +
                                             c.lane_a);
        race.second_thread = static_cast<u16>(block.thread_base +
                                              warp.warp_in_block() * env_.gpu->warp_size +
                                              c.lane_b);
        race.pc = warp.pc;
        race.cycle = now;
        race_staging_.record(race);
      }
    }

    // Coalesce into line transactions and run them through the L1. The
    // L1 is SM-local, so lookups happen at issue and the hit/fill facts
    // ride along with the deferred RDU checks. The buffer's segments
    // index straight into scratch_accesses_, so no per-lane search is
    // needed to recover the full access.
    coalesce_buf_.build(scratch_accesses_, env_.gpu->l1_line);
    transactions = coalesce_buf_.size();
    for (u32 s = 0; s < coalesce_buf_.size(); ++s) {
      const mem::CoalesceBuffer::Segment& seg = coalesce_buf_[s];
      op.trace_addrs.push_back(seg.addr);
      const Cycle line_fill = l1_.fill_time(seg.addr);
      const bool l1_hit = l1_.access(seg.addr, is_store, now).hit;
      if (op.has_trace_event && !is_store && l1_hit) {
        // Stamp the stale-L1 rule's inputs onto this segment's lanes.
        for (u32 idx : seg.access_indices)
          for (trace::TraceLane& tl : op.trace_event.lanes)
            if (tl.lane == scratch_accesses_[idx].lane) {
              tl.l1_hit = true;
              tl.l1_fill = line_fill;
            }
      }
      if (is_store) {
        mem::Packet pkt;  // write-through
        pkt.kind = mem::PacketKind::kStore;
        pkt.addr = seg.addr;
        pkt.bytes = env_.gpu->l1_line;
        pkt.warp_slot = warp.warp_slot();
        send_packet(std::move(pkt));
        ++warp.outstanding_stores;
      } else if (!l1_hit) {
        mem::Packet pkt;
        pkt.kind = mem::PacketKind::kLoad;
        pkt.addr = seg.addr;
        pkt.bytes = env_.gpu->l1_line;
        pkt.warp_slot = warp.warp_slot();
        send_packet(std::move(pkt));
        ++warp.pending_responses;
      }
      // Race checks for the lanes of this segment, carrying the L1-hit
      // flag loads need for the stale-data rule.
      if (detect) {
        for (u32 idx : seg.access_indices) {
          const mem::LaneAccess& acc = scratch_accesses_[idx];
          rd::AccessInfo info = make_access(warp, acc.lane, acc.addr, acc.size, is_store,
                                            warp.pc, now, !is_store && l1_hit);
          info.l1_fill_cycle = line_fill;
          op.checks.push_back(info);
        }
      }
    }
  }

  // The load/store unit issues one transaction per cycle: poorly
  // coalesced accesses occupy the issue port longer.
  issue_free_at_ =
      now + std::max(env_.gpu->warp_issue_cycles(), std::max(transactions, 1u));
  if (warp.pending_responses > 0)
    set_state(warp, WarpState::kWaitMem);
  else
    warp.ready_at = now + 1;
  ++warp.pc;
}

void Sm::exec_barrier(WarpContext& warp, Cycle now) {
  ++barriers_;
  BlockContext& block = blocks_[warp.block_slot()];
  set_state(warp, WarpState::kAtBarrier);
  ++warp.pc;
  ++block.warps_at_barrier;

  if (env_.trace != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kBarrierArrive;
    e.cycle = now;
    e.sm = sm_id_;
    e.block_slot = warp.block_slot();
    e.warp_slot = warp.warp_slot();
    stage_trace(std::move(e));
  }

  const u32 expected = block.num_warps - block.warps_done;
  if (block.warps_at_barrier < expected) return;

  // Release the whole block.
  block.warps_at_barrier = 0;
  for (auto& w : warps_) {
    if (w.state == WarpState::kAtBarrier && w.block_slot() == warp.block_slot()) {
      set_state(w, WarpState::kReady);
      w.ready_at = now + 1;
    }
  }

  // HAccRG barrier work: invalidate shared shadow entries (costing issue
  // cycles) and advance the block's sync ID if global memory was touched.
  if (shared_rdu_ && block.smem_bytes > 0) {
    const u32 cost =
        shared_rdu_->reset_region(block.smem_base, block.smem_bytes, env_.gpu->shared_mem_banks);
    barrier_reset_cycles_ += cost;
    issue_free_at_ = std::max(issue_free_at_, now + cost);
  }
  if (env_.haccrg->enable_global) ids_.on_barrier(warp.block_slot());
  if (env_.trace != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kBarrierRelease;
    e.cycle = now;
    e.sm = sm_id_;
    e.block_slot = warp.block_slot();
    e.smem_base = block.smem_base;
    e.smem_bytes = block.smem_bytes;
    stage_trace(std::move(e));
  }
}

void Sm::exec_fence(WarpContext& warp, Cycle now) {
  ++fences_;
  ++warp.pc;
  if (env_.trace != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kFence;
    e.cycle = now;
    e.sm = sm_id_;
    e.warp_slot = warp.warp_slot();
    stage_trace(std::move(e));
  }
  if (warp.outstanding_stores == 0) {
    warp.ready_at = now + env_.gpu->fence_latency;
    ids_.on_fence(warp.warp_slot());
    if (env_.trace != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kFenceCommit;
      e.cycle = now;
      e.sm = sm_id_;
      e.warp_slot = warp.warp_slot();
      stage_trace(std::move(e));
    }
  } else {
    set_state(warp, WarpState::kWaitFence);  // fence ID bumps when stores drain
  }
}

void Sm::exec_exit(WarpContext& warp, Cycle now) {
  warp.alive &= ~warp.active;
  if (warp.alive != 0 && !warp.mask_stack.empty()) {
    // Divergent exit: surviving lanes continue.
    warp.active = warp.alive & warp.active;
    ++warp.pc;
    return;
  }
  set_state(warp, WarpState::kDone);
  BlockContext& block = blocks_[warp.block_slot()];
  ++block.warps_done;

  // A warp exiting may release warps waiting at a barrier it will never
  // reach (CUDA forbids this; we resolve rather than hang, as hardware
  // effectively does).
  const u32 expected = block.num_warps - block.warps_done;
  if (expected > 0 && block.warps_at_barrier >= expected) {
    block.warps_at_barrier = 0;
    for (auto& w : warps_) {
      if (w.state == WarpState::kAtBarrier && w.block_slot() == warp.block_slot()) {
        set_state(w, WarpState::kReady);
        w.ready_at = now + 1;
      }
    }
  }

  if (block.warps_done == block.num_warps) block_finished(warp.block_slot(), now);
}

void Sm::block_finished(u32 block_slot, Cycle now) {
  BlockContext& block = blocks_[block_slot];
  if (env_.trace != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kBlockFinish;
    e.cycle = now;
    e.sm = sm_id_;
    e.block_slot = block_slot;
    e.smem_base = block.smem_base;
    e.smem_bytes = block.smem_bytes;
    stage_trace(std::move(e));
  }
  for (auto& w : warps_) {
    if (w.state == WarpState::kDone && w.block_slot() == block_slot) w.release();
  }
  if (shared_rdu_ && block.smem_bytes > 0) {
    shared_rdu_->reset_region(block.smem_base, block.smem_bytes, env_.gpu->shared_mem_banks);
  }
  block.active = false;
  --resident_blocks_;
  ++blocks_completed_;
}

void Sm::execute(WarpContext& warp, Cycle now) {
  const Instr& ins = env_.program->at(warp.pc);
  ++warp_instructions_;

  switch (ins.op) {
    case Opcode::kLdShared:
    case Opcode::kStShared:
    case Opcode::kAtomShared:
      exec_shared_mem(warp, ins, now);
      return;
    case Opcode::kLdGlobal:
    case Opcode::kStGlobal:
    case Opcode::kAtomGlobal:
      exec_global_mem(warp, ins, now);
      return;
    case Opcode::kBar:
      issue_free_at_ = std::max(issue_free_at_, now + env_.gpu->warp_issue_cycles());
      exec_barrier(warp, now);
      return;
    case Opcode::kMemBar:
    case Opcode::kMemBarBlock:
      issue_free_at_ = now + env_.gpu->warp_issue_cycles();
      exec_fence(warp, now);
      return;
    case Opcode::kExit:
      issue_free_at_ = now + env_.gpu->warp_issue_cycles();
      exec_exit(warp, now);
      return;
    default:
      break;
  }

  // Non-memory, non-sync instructions.
  issue_free_at_ = now + env_.gpu->warp_issue_cycles();
  warp.ready_at = now + 1;

  switch (ins.op) {
    case Opcode::kSetp: {
      for (u32 lane = 0; lane < env_.gpu->warp_size; ++lane) {
        if (!warp.lane_active(lane)) continue;
        ++lane_instructions_;
        const u32 a = warp.reg(ins.src0, lane);
        const u32 b = operand_value(warp, ins, lane);
        bool hold = false;
        switch (ins.cmp()) {
          case CmpOp::kEq: hold = a == b; break;
          case CmpOp::kNe: hold = a != b; break;
          case CmpOp::kLtU: hold = a < b; break;
          case CmpOp::kLeU: hold = a <= b; break;
          case CmpOp::kGtU: hold = a > b; break;
          case CmpOp::kGeU: hold = a >= b; break;
          case CmpOp::kLtS: hold = static_cast<i32>(a) < static_cast<i32>(b); break;
          case CmpOp::kLeS: hold = static_cast<i32>(a) <= static_cast<i32>(b); break;
          case CmpOp::kGtS: hold = static_cast<i32>(a) > static_cast<i32>(b); break;
          case CmpOp::kGeS: hold = static_cast<i32>(a) >= static_cast<i32>(b); break;
          case CmpOp::kLtF: hold = as_f32(a) < as_f32(b); break;
          case CmpOp::kLeF: hold = as_f32(a) <= as_f32(b); break;
          case CmpOp::kGtF: hold = as_f32(a) > as_f32(b); break;
          case CmpOp::kGeF: hold = as_f32(a) >= as_f32(b); break;
          case CmpOp::kEqF: hold = as_f32(a) == as_f32(b); break;
          case CmpOp::kNeF: hold = as_f32(a) != as_f32(b); break;
        }
        if (hold)
          warp.preds[ins.dst] |= 1u << lane;
        else
          warp.preds[ins.dst] &= ~(1u << lane);
      }
      ++warp.pc;
      return;
    }
    case Opcode::kIf: {
      const u32 taken = warp.active & warp.preds[ins.aux];
      warp.mask_stack.push_back({warp.active, taken});
      warp.active = taken;
      ++warp.pc;
      return;
    }
    case Opcode::kElse: {
      const MaskScope& scope = warp.mask_stack.back();
      warp.active = scope.saved & ~scope.taken;
      ++warp.pc;
      return;
    }
    case Opcode::kEndIf:
    case Opcode::kLoopEnd: {
      warp.active = warp.mask_stack.back().saved;
      warp.mask_stack.pop_back();
      ++warp.pc;
      return;
    }
    case Opcode::kLoopBegin: {
      warp.mask_stack.push_back({warp.active, warp.active});
      ++warp.pc;
      return;
    }
    case Opcode::kBreakIfNot: {
      warp.active &= warp.preds[ins.aux];
      warp.pc = warp.active == 0 ? ins.imm : warp.pc + 1;
      return;
    }
    case Opcode::kBreakIf: {
      warp.active &= ~warp.preds[ins.aux];
      warp.pc = warp.active == 0 ? ins.imm : warp.pc + 1;
      return;
    }
    case Opcode::kJump: {
      warp.pc = ins.imm;
      return;
    }
    case Opcode::kLockAcqMark:
    case Opcode::kLockRelMark: {
      const bool acquire = ins.op == Opcode::kLockAcqMark;
      const BlockContext& block = blocks_[warp.block_slot()];
      const rd::BloomGeometry geom{env_.haccrg->bloom_bits, env_.haccrg->bloom_bins};
      trace::Event e;
      if (env_.trace != nullptr) {
        e.kind = trace_kind_for(ins.op);
        e.cycle = now;
        e.sm = sm_id_;
        e.block_slot = warp.block_slot();
        e.warp_slot = warp.warp_slot();
        e.warp_in_block = warp.warp_in_block();
        e.pc = warp.pc;
      }
      for (u32 lane = 0; lane < env_.gpu->warp_size; ++lane) {
        if (!warp.lane_active(lane)) continue;
        const u32 slot =
            block.thread_base + warp.warp_in_block() * env_.gpu->warp_size + lane;
        if (acquire)
          ids_.on_lock_acquired(slot, warp.reg(ins.src0, lane), geom);
        else
          ids_.on_lock_releasing(slot);
        if (env_.trace != nullptr)
          e.lanes.push_back(
              {static_cast<u8>(lane), acquire ? warp.reg(ins.src0, lane) : 0, false, 0});
      }
      if (env_.trace != nullptr) stage_trace(std::move(e));
      ++warp.pc;
      return;
    }
    case Opcode::kNop:
      ++warp.pc;
      return;
    default:
      exec_alu(warp, ins);
      ++warp.pc;
      return;
  }
}

void Sm::append_hang_summary(std::string& out) const {
  static constexpr const char* kStateNames[] = {"Invalid", "Ready",     "WaitMem",
                                                "Barrier", "WaitFence", "Done"};
  for (const WarpContext& w : warps_) {
    if (w.state == WarpState::kInvalid || w.state == WarpState::kDone) continue;
    out += "\n  sm" + std::to_string(sm_id_) + ".w" + std::to_string(w.warp_slot()) +
           " pc=" + std::to_string(w.pc) +
           " state=" + kStateNames[static_cast<u8>(w.state)] +
           " active=" + std::to_string(w.active) +
           " pend=" + std::to_string(w.pending_responses) +
           " stores=" + std::to_string(w.outstanding_stores) +
           " ready_at=" + std::to_string(w.ready_at) +
           " staged=" + std::to_string(env_.icnt->staged_requests(sm_id_));
  }
}

void Sm::export_stats(StatSet& stats) const {
  l1_.export_stats(stats);
  if (shared_rdu_) shared_rdu_->export_stats(stats);
  stats.add("sm.bank_conflict_cycles", bank_conflict_cycles_);
  stats.add("rd.static_filtered", static_filtered_);
  // Per-space shares, only when the filter fired (keeps unfiltered
  // golden stat sets byte-identical).
  if (static_filtered_shared_ != 0) stats.add("rd.static_filtered_shared", static_filtered_shared_);
  if (static_filtered_global_ != 0) stats.add("rd.static_filtered_global", static_filtered_global_);
  stats.add("sm.barrier_reset_cycles", barrier_reset_cycles_);
  stats.add("ids.barrier_events", ids_.barrier_events());
  stats.add("ids.sync_increments", ids_.sync_increments());
}

}  // namespace haccrg::sim
