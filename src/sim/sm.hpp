// Streaming multiprocessor: warp contexts, a round-robin scheduler, the
// functional executor for the mini-PTX ISA, banked shared memory, a
// non-coherent L1, and the HAccRG hooks (shared RDU, ID registers, and
// race-check dispatch to the global RDU).
//
// Functional/timing split: an instruction's architectural effects are
// applied when it issues; the memory system then moves data-less packets
// whose completions wake the warp.
//
// Parallel epochs: cycle() may run concurrently with other SMs' cycles,
// so it only touches SM-local state plus thread-confined staging (the
// per-SM interconnect queue, race_staging_, deferred_). Every effect
// that crosses the SM boundary — device-memory functional ops, global
// RDU checks, race-log records, packet injection — is replayed by
// commit_epoch(), which the engine calls serially in SM-id order at the
// end of the cycle. That order matches the sequential engine's SM loop,
// so results are bit-identical for any thread count. Deferring the
// functional effects to the same cycle's barrier is invisible to the
// program: an SM issues at most one instruction per cycle, so nothing
// can read a deferred register or memory value before it lands.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "arch/config.hpp"
#include "fault/fault.hpp"
#include "haccrg/global_rdu.hpp"
#include "haccrg/id_regs.hpp"
#include "haccrg/options.hpp"
#include "haccrg/shared_rdu.hpp"
#include "isa/program.hpp"
#include "mem/cache.hpp"
#include "mem/coalescer.hpp"
#include "mem/device_memory.hpp"
#include "mem/interconnect.hpp"
#include "mem/packets.hpp"
#include "mem/shared_memory.hpp"
#include "sim/launch.hpp"
#include "sim/warp.hpp"
#include "trace/writer.hpp"

namespace haccrg::sim {

/// Per-SM view of the shared run infrastructure, owned by Gpu.
struct SmEnv {
  const arch::GpuConfig* gpu = nullptr;
  const rd::HaccrgConfig* haccrg = nullptr;
  mem::DeviceMemory* memory = nullptr;
  mem::Interconnect* icnt = nullptr;
  rd::GlobalRdu* global_rdu = nullptr;  ///< null unless global detection on
  rd::RaceLog* race_log = nullptr;
  const isa::Program* program = nullptr;
  const LaunchConfig* launch = nullptr;
  Addr sw_shared_shadow_base = 0;  ///< device base of this SM's sw shadow
  /// Optional sink recording every coalesced global transaction address
  /// (used by the virtual-memory TLB study).
  std::vector<Addr>* global_trace = nullptr;
  /// Optional access-trace recorder (SimConfig::trace_path). Issue-phase
  /// events are staged per SM and flushed serially in SM-id order by the
  /// engine; global-memory events are written during commit_epoch.
  trace::TraceWriter* trace = nullptr;
  /// Optional fault injector (SimConfig::faults); null = no faults. The
  /// SM only draws from its own per-SM streams during cycle(), keeping
  /// the parallel phase thread-confined.
  fault::FaultInjector* faults = nullptr;
};

class Sm {
 public:
  Sm(u32 sm_id, const SmEnv& env);

  /// Try to start `block_id`; returns false if no capacity. Runs in the
  /// serial scheduler context (its trace event is written directly).
  bool try_launch_block(u32 block_id, Cycle now);

  /// Advance one core cycle. Safe to call concurrently with other SMs'
  /// cycle()/deliver(); cross-SM effects are staged until commit_epoch.
  void cycle(Cycle now);

  /// End-of-cycle barrier (serial, engine calls SMs in id order): drain
  /// staged race records, replay deferred global-memory work, and push
  /// this SM's staged packets into the interconnect. This is the legacy
  /// single-phase commit; the engine uses it only for fault campaigns,
  /// whose global-shadow fault stream must advance in strict cross-SM
  /// check order. Everything else goes through the three-way split below.
  void commit_epoch(Cycle now);

  // --- Sharded commit (engine kCommit* sub-phases) --------------------------
  //
  // The serial commit_epoch is split into three calls whose combined
  // effect is byte-identical to it:
  //
  //   commit_sharded  (parallel, one call per shard) — functional lane
  //                   effects and global-RDU granule checks for the
  //                   addresses shard `shard_index` of `shard_count`
  //                   owns (haccrg/sharding.hpp). Safe to run
  //                   concurrently for distinct shards: a granule and
  //                   every byte a functional access touches live in one
  //                   4 KiB block, so two shards never write the same
  //                   memory, shadow entry, or warp register. Races and
  //                   shadow-entry addresses queue into `out` tagged with
  //                   (op_ord, check_idx) instead of touching the log.
  //   commit_merge    (parallel, one call per SM) — gather this SM's
  //                   slice of every shard queue: re-sort each op's race
  //                   records into the serial log order (buffered in
  //                   merged_races_, the log itself is untouched) and
  //                   send the op's deduped kShadow packets. Touches only
  //                   SM-local state (scratch buffers, token counter, the
  //                   per-SM interconnect staging queue), so SMs merge
  //                   concurrently.
  //   commit_serial   (serial, SM-id order) — the residue: drain
  //                   issue-time race staging, append the buffered race
  //                   records to the log, trace-event append and
  //                   global-trace pushes, release the deferred-op pool.
  //
  /// Deferred ops staged this cycle (the engine's op-ordinal prefix sum).
  u32 deferred_count() const { return deferred_count_; }
  /// Issue-time race records awaiting the serial drain (lets the engine
  /// skip the commit_serial call for fully idle SMs).
  bool has_staged_races() const { return !race_staging_.empty(); }
  rd::GlobalRdu* global_rdu() const { return env_.global_rdu; }
  void commit_sharded(u32 shard_index, u32 shard_count, u32 ord_base, rd::CommitEffects& out);
  void commit_merge(const std::vector<rd::CommitEffects>& shards, u32 ord_base);
  void commit_serial();

  /// Write this SM's staged issue-phase trace events. Called serially in
  /// SM-id order between the parallel SM phase and the commit loop, so
  /// the file order matches the engine's deterministic phase order.
  void flush_trace();

  bool busy() const { return resident_blocks_ > 0; }
  u32 resident_blocks() const { return resident_blocks_; }
  u32 blocks_completed() const { return blocks_completed_; }
  /// Is this SM recording an access trace? (All SMs share the answer;
  /// the engine caches it to skip the per-cycle flush sweep.)
  bool tracing() const { return env_.trace != nullptr; }

  /// Deliver a memory response routed back by the GPU.
  void deliver(const mem::Response& rsp, Cycle now);

  // Statistics the GPU aggregates at the end of the run.
  void export_stats(StatSet& stats) const;
  u64 warp_instructions() const { return warp_instructions_; }
  u64 lane_instructions() const { return lane_instructions_; }
  u64 shared_reads() const { return shared_reads_; }
  u64 shared_writes() const { return shared_writes_; }
  u64 shared_atomics() const { return shared_atomics_; }
  u64 global_reads() const { return global_reads_; }
  u64 global_writes() const { return global_writes_; }
  u64 global_atomics() const { return global_atomics_; }
  u64 barriers() const { return barriers_; }
  u64 fences() const { return fences_; }

  const rd::SmIdRegisters& ids() const { return ids_; }
  rd::SmIdRegisters& ids() { return ids_; }
  const mem::Cache& l1() const { return l1_; }

  /// One line per live warp ("sm0.w1 pc=33 state=WaitMem pend=1 stores=0"),
  /// appended to `out`. The watchdog calls this so a hung kernel reports
  /// where every warp was stuck instead of just "exceeded max cycles".
  void append_hang_summary(std::string& out) const;

 private:
  // --- Scheduling -----------------------------------------------------------
  WarpContext* pick_ready_warp(Cycle now);
  void execute(WarpContext& warp, Cycle now);

  // --- Execution helpers ------------------------------------------------------
  u32 operand_value(const WarpContext& warp, const isa::Instr& ins, u32 lane) const;
  u32 special_value(const WarpContext& warp, isa::SpecialReg which, u32 lane) const;
  void exec_alu(WarpContext& warp, const isa::Instr& ins);
  void exec_shared_mem(WarpContext& warp, const isa::Instr& ins, Cycle now);
  void exec_global_mem(WarpContext& warp, const isa::Instr& ins, Cycle now);
  void exec_barrier(WarpContext& warp, Cycle now);
  void exec_fence(WarpContext& warp, Cycle now);
  void exec_exit(WarpContext& warp, Cycle now);

  u32 apply_atomic(isa::AtomicOp op, u32 old, u32 operand, u32 compare) const;

  /// Build the HAccRG access descriptor for one lane.
  rd::AccessInfo make_access(const WarpContext& warp, u32 lane, Addr addr, u8 size, bool is_write,
                             u32 pc, Cycle now, bool l1_hit) const;

  /// True when the opt-in static filter suppresses the RDU check at `pc`.
  bool static_filtered(u32 pc) const;

  /// Roll the ID-register fault sites once per issued instruction
  /// (Bloom signature flips, fence/sync ID drops).
  void inject_id_faults();

  /// Stage a packet on this SM's interconnect queue (sent at commit).
  void send_packet(mem::Packet pkt);

  /// Software-placed shared shadow: model the L1 fetch of each shadow
  /// line; returns extra issue-port cycles and may add pending responses.
  u32 sw_shadow_traffic(WarpContext& warp, const std::vector<u32>& lane_addrs);

  void block_finished(u32 block_slot, Cycle now);

  /// A global-memory instruction whose shared-state effects (device
  /// memory, global trace, global RDU) wait for the epoch barrier. The
  /// SM-local side — coalescing, L1 state, wait/wakeup bookkeeping, and
  /// the application packets — already happened at issue; only what the
  /// replay needs is captured here.
  struct DeferredGlobalOp {
    u32 warp_slot = 0;
    bool is_store = false;
    bool is_atomic = false;
    u8 width = 4;
    u8 dst = 0;
    isa::AtomicOp atomic_op = isa::AtomicOp::kAdd;
    struct Lane {
      u32 lane;
      Addr addr;
      u32 operand;  ///< store value or atomic operand (captured at issue)
      u32 compare;  ///< atomic CAS comparand
    };
    std::vector<Lane> lanes;
    std::vector<Addr> trace_addrs;       ///< coalesced segments, issue order
    std::vector<rd::AccessInfo> checks;  ///< global RDU inputs, issue order
    trace::Event trace_event;            ///< written at commit when recording
    bool has_trace_event = false;
  };
  void replay(DeferredGlobalOp& op);

  /// Next pooled deferred-op slot: inner vectors are cleared, not freed,
  /// so steady-state global-memory issue performs no heap allocation.
  DeferredGlobalOp& acquire_deferred();

  /// Single mutation point for warp scheduling state; keeps the ready
  /// count the scheduler's early-out relies on exact.
  void set_state(WarpContext& warp, WarpState s) {
    if (warp.state == WarpState::kReady) --num_ready_;
    if (s == WarpState::kReady) ++num_ready_;
    warp.state = s;
  }

  /// Stage one issue-phase trace event (no-op unless recording).
  void stage_trace(trace::Event event) {
    if (env_.trace != nullptr) trace_staged_.push_back(std::move(event));
  }

  u32 sm_id_;
  SmEnv env_;
  std::vector<WarpContext> warps_;
  std::vector<BlockContext> blocks_;
  mem::SharedMemory smem_;
  mem::Cache l1_;
  rd::SmIdRegisters ids_;
  std::unique_ptr<rd::SharedRdu> shared_rdu_;

  u32 resident_blocks_ = 0;
  u32 blocks_completed_ = 0;
  u32 rr_cursor_ = 0;
  u32 num_ready_ = 0;  ///< warps in WarpState::kReady (scheduler early-out)
  Cycle issue_free_at_ = 0;
  u64 token_counter_ = 0;

  // Thread-confined epoch staging, replayed by commit_epoch(). The
  // deferred-op arena is slot-pooled: commit resets the count, capacity
  // (including each op's inner vectors) persists across cycles.
  rd::RaceStaging race_staging_;
  std::vector<DeferredGlobalOp> deferred_;
  u32 deferred_count_ = 0;
  // Sharded-commit merge state: per-shard slice cursors and the cycle's
  // race records in serial log order, buffered between commit_merge
  // (parallel) and commit_serial (which appends them to the log). The
  // pointers target shard-queue entries, which are stable between the
  // two phases.
  std::vector<u32> merge_race_cur_;
  std::vector<u32> merge_shadow_cur_;
  std::vector<const rd::CommitEffects::QueuedRace*> merged_races_;
  std::vector<trace::Event> trace_staged_;  ///< issue-phase events this cycle

  // Scratch buffers reused across instructions to avoid per-issue churn.
  std::vector<mem::LaneAccess> scratch_accesses_;
  std::vector<Addr> scratch_shadow_;
  std::vector<u32> scratch_smem_addrs_;  ///< shared-mem lane addresses
  mem::CoalesceBuffer coalesce_buf_;
  mem::WawBuffer waw_buf_;

  // Counters.
  u64 warp_instructions_ = 0;
  u64 lane_instructions_ = 0;
  u64 shared_reads_ = 0;
  u64 shared_writes_ = 0;
  u64 shared_atomics_ = 0;
  u64 global_reads_ = 0;
  u64 global_writes_ = 0;
  u64 global_atomics_ = 0;
  u64 barriers_ = 0;
  u64 fences_ = 0;
  u64 bank_conflict_cycles_ = 0;
  u64 barrier_reset_cycles_ = 0;
  u64 static_filtered_ = 0;  ///< lane accesses whose RDU check was filtered
  u64 static_filtered_shared_ = 0;  ///< the shared-space share of the above
  u64 static_filtered_global_ = 0;  ///< the global-space share
};

}  // namespace haccrg::sim
