// Lightweight cycle-budget profiler for the epoch engine: wall-clock
// time and invocation counts per engine phase, gated behind
// SimConfig::profile (HACCRG_PROFILE=1) so the disabled path costs one
// predictable branch per phase. Results export as "prof.*" stats —
// host-time measurements, deliberately kept out of the default stat set
// so golden fingerprints never see them.
#pragma once

#include <array>
#include <chrono>
#include <string_view>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace haccrg::sim {

/// The epoch phases plus the end-of-cycle scheduler work. The commit
/// barrier is attributed at sub-phase granularity: kCommitSharded is the
/// parallel detection/functional sweep, kCommitMerge the parallel
/// per-SM gather/packet phase, kCommitSerial the ordered residue (log
/// append, trace events, interconnect injection). kCommit is the legacy single-bucket
/// serial commit, used only when fault injection forces the serial path;
/// export_stats folds all four into the historical "prof.commit" total.
enum class EnginePhase : u8 {
  kSmCycle = 0,    ///< parallel SM phase (deliver + core cycle)
  kTraceFlush,     ///< serial issue-event flush (tracing runs only)
  kCommit,         ///< serial commit_epoch sweep (fault-campaign fallback)
  kCommitSharded,  ///< parallel sharded detection + functional replay
  kCommitMerge,    ///< parallel per-SM queue gather + kShadow packets
  kCommitSerial,   ///< serial residue: log/trace append, interconnect commit
  kPartition,      ///< parallel partition phase
  kResponse,       ///< serial response commit
  kCount,
};

class PhaseProfiler {
 public:
  PhaseProfiler() = default;
  explicit PhaseProfiler(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// RAII scope: accumulates the elapsed wall time into one phase.
  class Scope {
   public:
    Scope(PhaseProfiler& prof, EnginePhase phase) : prof_(prof), phase_(phase) {
      if (prof_.enabled_) start_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (!prof_.enabled_) return;
      const auto end = std::chrono::steady_clock::now();
      auto& bucket = prof_.buckets_[static_cast<size_t>(phase_)];
      bucket.ns += static_cast<u64>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_).count());
      ++bucket.calls;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseProfiler& prof_;
    EnginePhase phase_;
    std::chrono::steady_clock::time_point start_;
  };

  Scope scope(EnginePhase phase) { return Scope(*this, phase); }

  u64 ns(EnginePhase phase) const { return buckets_[static_cast<size_t>(phase)].ns; }
  u64 calls(EnginePhase phase) const { return buckets_[static_cast<size_t>(phase)].calls; }

  /// Total commit-barrier time: the legacy serial bucket plus the three
  /// sharded sub-phases. This IS the "prof.commit.ns" stat, so the old
  /// kCommit total equals the sub-phase sum by construction — the
  /// invariant test_commit_phases pins.
  u64 commit_total_ns() const {
    return ns(EnginePhase::kCommit) + ns(EnginePhase::kCommitSharded) +
           ns(EnginePhase::kCommitMerge) + ns(EnginePhase::kCommitSerial);
  }

  /// Export "prof.<phase>.ns" / "prof.<phase>.calls". Only meaningful
  /// when enabled; callers gate on enabled() to keep default stat sets
  /// byte-identical to profiler-free builds. "prof.commit.*" stays the
  /// whole-barrier total (legacy bucket + sub-phases) so dashboards keyed
  /// on the old name keep reading the same quantity.
  void export_stats(StatSet& stats) const {
    static constexpr std::array<std::string_view, static_cast<size_t>(EnginePhase::kCount)>
        kNames{"sm_cycle",     "trace_flush",  "commit",        "commit_sharded",
               "commit_merge", "commit_serial", "partition",    "response"};
    for (size_t p = 0; p < kNames.size(); ++p) {
      const bool is_commit = p == static_cast<size_t>(EnginePhase::kCommit);
      stats.add(std::string("prof.") + std::string(kNames[p]) + ".ns",
                is_commit ? commit_total_ns() : buckets_[p].ns);
      stats.add(std::string("prof.") + std::string(kNames[p]) + ".calls",
                is_commit ? buckets_[p].calls +
                                buckets_[static_cast<size_t>(EnginePhase::kCommitSharded)].calls
                          : buckets_[p].calls);
    }
  }

 private:
  struct Bucket {
    u64 ns = 0;
    u64 calls = 0;
  };
  bool enabled_ = false;
  std::array<Bucket, static_cast<size_t>(EnginePhase::kCount)> buckets_{};
};

}  // namespace haccrg::sim
