// Top-level GPU: owns device memory, SMs, interconnect, memory
// partitions, and the HAccRG global RDU; schedules thread-blocks onto SMs
// and runs the cycle loop until the kernel drains.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "arch/config.hpp"
#include "haccrg/global_rdu.hpp"
#include "haccrg/options.hpp"
#include "mem/device_memory.hpp"
#include "mem/interconnect.hpp"
#include "mem/partition.hpp"
#include "sim/launch.hpp"
#include "sim/sim_config.hpp"
#include "sim/sm.hpp"
#include "trace/writer.hpp"

namespace haccrg::sim {

class Gpu {
 public:
  Gpu(const arch::GpuConfig& gpu_config, const rd::HaccrgConfig& haccrg_config,
      const SimConfig& sim_config = SimConfig::from_env());
  ~Gpu();

  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  mem::DeviceMemory& memory() { return memory_; }
  const mem::DeviceMemory& memory() const { return memory_; }
  mem::DeviceAllocator& allocator() { return allocator_; }
  const arch::GpuConfig& config() const { return gpu_config_; }
  const rd::HaccrgConfig& haccrg() const { return haccrg_config_; }
  const SimConfig& sim_config() const { return sim_config_; }

  /// Run one kernel to completion; returns timing, stats, and races.
  SimResult launch(const LaunchConfig& launch);

  /// Watchdog limit (cycles) for runaway kernels.
  void set_max_cycles(Cycle limit) { max_cycles_ = limit; }

  /// Record every coalesced global transaction address into `sink`
  /// during subsequent launches (pass nullptr to stop).
  void set_global_trace(std::vector<Addr>* sink) { global_trace_ = sink; }

  /// Label stamped into the next launch's kernel-begin trace record
  /// (benchmark name; empty by default). No-op unless tracing.
  void set_trace_label(const std::string& label) { trace_label_ = label; }

  /// The access-trace writer, or null when SimConfig::trace_path is
  /// empty. Exposed so callers can check ok()/error() after a run.
  trace::TraceWriter* trace_writer() { return trace_writer_.get(); }

 private:
  arch::GpuConfig gpu_config_;
  rd::HaccrgConfig haccrg_config_;
  SimConfig sim_config_;
  mem::DeviceMemory memory_;
  mem::DeviceAllocator allocator_;
  Cycle max_cycles_ = 2'000'000'000ULL;
  std::vector<Addr>* global_trace_ = nullptr;
  std::unique_ptr<trace::TraceWriter> trace_writer_;
  std::string trace_label_;
};

}  // namespace haccrg::sim

namespace haccrg::sim {

/// Convenience: build a GPU, run one kernel, return the result. `setup`
/// receives the GPU before launch to allocate and fill buffers.
template <typename SetupFn>
SimResult run_kernel(const arch::GpuConfig& gpu_config, const rd::HaccrgConfig& haccrg_config,
                     SetupFn&& setup) {
  Gpu gpu(gpu_config, haccrg_config);
  LaunchConfig launch = setup(gpu);
  return gpu.launch(launch);
}

}  // namespace haccrg::sim
