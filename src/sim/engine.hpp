// Cycle-epoch engine: advances every SM and memory partition by one
// cycle using a four-phase epoch so the simulation parallelizes without
// losing determinism.
//
//   Phase 1 (parallel over SMs):        deliver responses, SM core cycle.
//                                       All cross-SM effects are staged
//                                       thread-confined inside the SM.
//   Phase 2 (serial, SM-id order):      Sm::commit_epoch — drain race
//                                       records, replay deferred global
//                                       memory / RDU work, inject packets.
//   Phase 3 (parallel over partitions): MemoryPartition::step — service
//                                       requests, advance L2/DRAM, stage
//                                       responses.
//   Phase 4 (serial, partition order):  commit staged responses.
//
// The serial phases run in the same order the sequential engine's loops
// used, so the interleaving of every shared-state mutation is identical
// for any worker count — results are bit-identical by construction, and
// the determinism test suite holds the engine to that.
#pragma once

#include <memory>
#include <vector>

#include "mem/interconnect.hpp"
#include "mem/partition.hpp"
#include "sim/profiler.hpp"
#include "sim/sim_config.hpp"
#include "sim/sm.hpp"
#include "sim/thread_pool.hpp"

namespace haccrg::sim {

class Engine {
 public:
  Engine(std::vector<std::unique_ptr<Sm>>& sms, std::vector<mem::MemoryPartition>& partitions,
         mem::Interconnect& icnt, const SimConfig& sim);

  /// Advance the whole machine by one cycle (all four phases).
  void step(Cycle now);

  u32 num_threads() const { return pool_.num_threads(); }

  /// Per-phase wall-clock accounting (no-ops unless SimConfig::profile).
  const PhaseProfiler& profiler() const { return profiler_; }

 private:
  static void sm_phase(void* ctx, u32 begin, u32 end);
  static void partition_phase(void* ctx, u32 begin, u32 end);

  std::vector<std::unique_ptr<Sm>>* sms_;
  std::vector<mem::MemoryPartition>* partitions_;
  mem::Interconnect* icnt_;
  WorkerPool pool_;
  PhaseProfiler profiler_;
  bool tracing_ = false;  ///< cached: skip the flush sweep when not recording
  Cycle now_ = 0;
};

}  // namespace haccrg::sim
