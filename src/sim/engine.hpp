// Cycle-epoch engine: advances every SM and memory partition by one
// cycle using a phased epoch so the simulation parallelizes without
// losing determinism.
//
//   Phase 1 (parallel over SMs):        deliver responses, SM core cycle.
//                                       All cross-SM effects are staged
//                                       thread-confined inside the SM.
//   Phase 2 (commit barrier):           split three ways —
//     2a (parallel over address shards): Sm::commit_sharded — each shard
//        worker sweeps every SM's deferred ops in SM-id order, executing
//        only the functional effects and global-RDU granule checks its
//        4 KiB-block shard owns, queuing races/shadow/counters into the
//        shard's CommitEffects.
//     2b (parallel over SMs):            Sm::commit_merge — each SM walks
//        its own slice of every shard queue (delimited by the sm_*_end
//        offsets the sweep recorded), gathers its race records back into
//        serial order, and sends its kShadow packets. Packet staging,
//        token counters, and scratch buffers are all SM-local, so this
//        phase touches no shared state.
//     2c (serial, SM-id order):          Sm::commit_serial — RaceLog
//        appends (staged issue-time records first, then the merged
//        global-RDU records), trace-event append, global-trace pushes;
//        then the counter fold and one interconnect injection sweep.
//        Fault campaigns fall back to the legacy single-phase
//        Sm::commit_epoch (the global-shadow fault stream is order-
//        dependent across SMs).
//   Phase 3 (parallel over partitions): MemoryPartition::step — service
//                                       requests, advance L2/DRAM, stage
//                                       responses.
//   Phase 4 (serial, partition order):  commit staged responses.
//
// The serial phases run in the same order the sequential engine's loops
// used, and the sharded sub-phase partitions work by address (one owner
// per 4 KiB block, per-address order preserved inside each shard), so
// the interleaving of every shared-state mutation is identical for any
// worker count AND any shard count — results are bit-identical by
// construction, and the determinism test suite holds the engine to that.
#pragma once

#include <memory>
#include <vector>

#include "haccrg/commit_effects.hpp"
#include "mem/interconnect.hpp"
#include "mem/partition.hpp"
#include "sim/profiler.hpp"
#include "sim/sim_config.hpp"
#include "sim/sm.hpp"
#include "sim/thread_pool.hpp"

namespace haccrg::sim {

class Engine {
 public:
  Engine(std::vector<std::unique_ptr<Sm>>& sms, std::vector<mem::MemoryPartition>& partitions,
         mem::Interconnect& icnt, const SimConfig& sim);

  /// Advance the whole machine by one cycle (all phases).
  void step(Cycle now);

  u32 num_threads() const { return pool_.num_threads(); }
  /// Address shards the commit barrier is split into (== worker count
  /// unless SimConfig::commit_shards pins it).
  u32 commit_shards() const { return shard_count_; }

  /// Per-phase wall-clock accounting (no-ops unless SimConfig::profile).
  const PhaseProfiler& profiler() const { return profiler_; }

 private:
  static void sm_phase(void* ctx, u32 begin, u32 end);
  static void commit_shard_phase(void* ctx, u32 begin, u32 end);
  static void commit_merge_phase(void* ctx, u32 begin, u32 end);
  static void partition_phase(void* ctx, u32 begin, u32 end);

  std::vector<std::unique_ptr<Sm>>* sms_;
  std::vector<mem::MemoryPartition>* partitions_;
  mem::Interconnect* icnt_;
  WorkerPool pool_;
  PhaseProfiler profiler_;
  bool tracing_ = false;  ///< cached: skip the flush sweep when not recording
  bool use_sharded_ = true;  ///< false for fault campaigns (serial fallback)
  u32 shard_count_ = 1;
  std::vector<rd::CommitEffects> shard_queues_;  ///< one per shard, reused
  std::vector<u32> ord_base_;  ///< per-SM global op-ordinal prefix sum
  Cycle now_ = 0;
};

}  // namespace haccrg::sim
