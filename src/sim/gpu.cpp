#include "sim/gpu.hpp"

#include "sim/engine.hpp"

namespace haccrg::sim {

Gpu::Gpu(const arch::GpuConfig& gpu_config, const rd::HaccrgConfig& haccrg_config,
         const SimConfig& sim_config)
    : gpu_config_(gpu_config), haccrg_config_(haccrg_config), sim_config_(sim_config),
      memory_(gpu_config.device_mem_bytes), allocator_(memory_) {
  if (!sim_config_.trace_path.empty()) {
    trace_writer_ = std::make_unique<trace::TraceWriter>(sim_config_.trace_path);
    if (sim_config_.trace_index) trace_writer_->enable_index();
    trace::TraceHeader header;
    header.num_sms = gpu_config_.num_sms;
    header.warp_size = gpu_config_.warp_size;
    header.max_blocks_per_sm = gpu_config_.max_blocks_per_sm;
    header.max_threads_per_sm = gpu_config_.max_threads_per_sm;
    header.shared_mem_per_sm = gpu_config_.shared_mem_per_sm;
    header.shared_mem_banks = gpu_config_.shared_mem_banks;
    header.l1_line = gpu_config_.l1_line;
    header.device_mem_bytes = gpu_config_.device_mem_bytes;
    header.enable_shared = haccrg_config_.enable_shared;
    header.enable_global = haccrg_config_.enable_global;
    header.warp_regrouping = haccrg_config_.warp_regrouping;
    header.disable_fence_gate = haccrg_config_.disable_fence_gate;
    header.static_filter = haccrg_config_.static_filter;
    header.shared_shadow = static_cast<u8>(haccrg_config_.shared_shadow);
    header.shared_granularity = haccrg_config_.shared_granularity;
    header.global_granularity = haccrg_config_.global_granularity;
    header.bloom_bits = haccrg_config_.bloom_bits;
    header.bloom_bins = haccrg_config_.bloom_bins;
    header.max_recorded_races = haccrg_config_.max_recorded_races;
    trace_writer_->write_header(header);
  }
}

Gpu::~Gpu() = default;

SimResult Gpu::launch(const LaunchConfig& launch) {
  SimResult result;
  if (launch.program == nullptr) {
    result.error = "no program";
    return result;
  }
  if (const std::string err = launch.program->validate(); !err.empty()) {
    result.error = "invalid program: " + err;
    return result;
  }
  if (const std::string err = gpu_config_.validate(); !err.empty()) {
    result.error = "invalid gpu config: " + err;
    return result;
  }
  if (const Status st = haccrg_config_.validate(); !st.ok()) {
    result.error = "invalid haccrg config: " + st.to_string();
    return result;
  }
  if (launch.block_dim == 0 || launch.block_dim > gpu_config_.max_threads_per_sm) {
    result.error = "block_dim out of range";
    return result;
  }
  if (launch.shared_mem_bytes > gpu_config_.shared_mem_per_sm) {
    result.error = "shared memory request exceeds capacity";
    return result;
  }
  if (haccrg_config_.static_filter && launch.static_report != nullptr) {
    // A report built for the wrong granularity (or warp grouping, or
    // geometry) silently skips checks the detector needed — reject the
    // launch instead of running unsound.
    if (const Status st = analysis::filter_compatible(launch.static_report->options,
                                                      haccrg_config_, launch.block_dim,
                                                      launch.grid_dim);
        !st.ok()) {
      result.error = "incompatible static report: " + st.message();
      return result;
    }
  }

  rd::RaceLog race_log(haccrg_config_.max_recorded_races);
  race_log.set_max_unique(haccrg_config_.max_unique_races);

  // Fault-injection campaign (SimConfig::faults / HACCRG_FAULTS). The
  // injector lives for one launch; every hook below is a null pointer
  // when no site is armed, so the zero-fault path is unchanged.
  std::unique_ptr<fault::FaultInjector> faults;
  if (sim_config_.faults.any()) {
    faults = std::make_unique<fault::FaultInjector>(sim_config_.faults, gpu_config_.num_sms,
                                                    gpu_config_.num_mem_partitions);
  }

  // Race register file: the global RDU reads the current fence ID of any
  // warp on any SM. SMs are created below; the reader indirects through
  // this vector so construction order is a non-issue.
  std::vector<std::unique_ptr<Sm>> sms;
  rd::FenceIdReader fence_reader = [&sms](u32 sm_id, u32 warp_slot) -> u8 {
    return sms[sm_id]->ids().fence_id(warp_slot);
  };

  // Global shadow region: allocated at launch over the application heap
  // (the paper's cudaMalloc step), invalidated (zeroed) here.
  std::unique_ptr<rd::GlobalRdu> global_rdu;
  u32 shadow_bytes = 0;
  const u32 app_bytes = allocator_.heap_top();
  if (haccrg_config_.enable_global) {
    rd::DetectPolicy policy;
    policy.warp_size = gpu_config_.warp_size;
    policy.warp_regrouping = haccrg_config_.warp_regrouping;
    policy.fence_gating = !haccrg_config_.disable_fence_gate;
    policy.bloom = {haccrg_config_.bloom_bits, haccrg_config_.bloom_bins};
    global_rdu = std::make_unique<rd::GlobalRdu>(memory_, haccrg_config_, policy, race_log,
                                                 fence_reader);
    shadow_bytes = rd::GlobalRdu::shadow_bytes_for(app_bytes, haccrg_config_.global_granularity);
    const Addr shadow_base = static_cast<Addr>(align_up(app_bytes, 256));
    if (static_cast<u64>(shadow_base) + shadow_bytes > memory_.size()) {
      result.error = "device memory too small for the global shadow region";
      return result;
    }
    global_rdu->init_shadow(shadow_base, app_bytes);
    if (faults != nullptr) {
      global_rdu->set_faults(faults.get());
      faults->set_shadow_region(shadow_base, shadow_bytes);
    }
  }

  // Software-placed shared shadow (Figure 8): a per-SM region of device
  // memory mirrors the scratchpad's shadow entries.
  Addr sw_shadow_base = 0;
  u32 sw_shadow_per_sm = 0;
  if (haccrg_config_.enable_shared &&
      haccrg_config_.shared_shadow == rd::SharedShadowPlacement::kGlobalMemory) {
    sw_shadow_per_sm = static_cast<u32>(
        align_up(ceil_div(gpu_config_.shared_mem_per_sm, haccrg_config_.shared_granularity) * 2,
                 gpu_config_.l1_line));
    u64 need = static_cast<u64>(sw_shadow_per_sm) * gpu_config_.num_sms;
    Addr base = static_cast<Addr>(
        align_up(app_bytes + (global_rdu ? static_cast<u64>(shadow_bytes) + 256 : 0), 256));
    if (base + need > memory_.size()) {
      result.error = "device memory too small for the software shared shadow";
      return result;
    }
    sw_shadow_base = base;
  }

  mem::Interconnect icnt(gpu_config_.num_sms, gpu_config_.num_mem_partitions,
                         gpu_config_.icnt_latency, gpu_config_.icnt_flits_per_cycle);
  std::vector<mem::MemoryPartition> partitions;
  partitions.reserve(gpu_config_.num_mem_partitions);
  for (u32 p = 0; p < gpu_config_.num_mem_partitions; ++p) partitions.emplace_back(p, gpu_config_);
  if (faults != nullptr) {
    icnt.set_faults(faults.get());
    for (auto& part : partitions) part.set_faults(faults.get());
    if (trace_writer_ != nullptr) trace_writer_->set_faults(faults.get());
  }

  SmEnv env;
  env.gpu = &gpu_config_;
  env.haccrg = &haccrg_config_;
  env.memory = &memory_;
  env.icnt = &icnt;
  env.global_rdu = global_rdu.get();
  env.race_log = &race_log;
  env.program = launch.program;
  env.launch = &launch;
  env.global_trace = global_trace_;
  env.trace = trace_writer_.get();
  env.faults = faults.get();
  sms.reserve(gpu_config_.num_sms);
  for (u32 s = 0; s < gpu_config_.num_sms; ++s) {
    SmEnv sm_env = env;
    sm_env.sw_shared_shadow_base = sw_shadow_base + s * sw_shadow_per_sm;
    sms.push_back(std::make_unique<Sm>(s, sm_env));
  }

  // Access-trace recording: a kernel-begin record pins the launch
  // geometry and heap layout before any block-launch events are written.
  if (trace_writer_ != nullptr) {
    trace::Event begin;
    begin.kind = trace::EventKind::kKernelBegin;
    begin.grid_dim = launch.grid_dim;
    begin.block_dim = launch.block_dim;
    begin.shared_mem_bytes = launch.shared_mem_bytes;
    begin.app_heap_bytes = app_bytes;
    begin.shadow_base = global_rdu != nullptr ? global_rdu->shadow_base() : 0;
    begin.label = trace_label_;
    trace_writer_->write_event(begin);
  }

  // CTA scheduler: hand out blocks round-robin, refilling as SMs drain.
  std::deque<u32> pending_blocks;
  for (u32 b = 0; b < launch.grid_dim; ++b) pending_blocks.push_back(b);
  auto refill = [&](Cycle at) {
    bool progress = true;
    while (progress && !pending_blocks.empty()) {
      progress = false;
      for (u32 s = 0; s < gpu_config_.num_sms && !pending_blocks.empty(); ++s) {
        if (sms[s]->try_launch_block(pending_blocks.front(), at)) {
          pending_blocks.pop_front();
          progress = true;
        }
      }
    }
  };
  refill(0);
  if (pending_blocks.size() == launch.grid_dim) {
    result.error = "no SM can fit a block (check block_dim / shared memory)";
    return result;
  }

  // --- Cycle loop -------------------------------------------------------------
  // The engine steps SMs and partitions (in parallel when
  // sim_config_.num_threads > 1) through the four epoch phases; see
  // engine.hpp for why the result is identical for any thread count.
  Engine engine(sms, partitions, icnt, sim_config_);
  Cycle now = 0;
  u32 completed_last = 0;
  std::vector<fault::DramFlip> dram_flips;
  for (;; ++now) {
    if (now > max_cycles_) {
      result.error = "watchdog: kernel exceeded max cycles";
      for (const auto& sm : sms) sm->append_hang_summary(result.error);
      break;
    }

    engine.step(now);

    // Apply DRAM shadow flips the partitions staged during their
    // (possibly parallel) step — serially, in partition-id order, the
    // same barrier discipline as every other cross-unit effect.
    if (faults != nullptr && faults->drain_dram_flips(dram_flips)) {
      for (const fault::DramFlip& flip : dram_flips) {
        memory_.write_u64(flip.addr, memory_.read_u64(flip.addr) ^ (u64{1} << flip.bit));
      }
      dram_flips.clear();
    }

    // Launch more blocks as slots free up.
    u32 completed = 0;
    for (const auto& sm : sms) completed += sm->blocks_completed();
    if (completed != completed_last) {
      completed_last = completed;
      refill(now);
    }

    // Done?
    bool busy = !pending_blocks.empty();
    if (!busy)
      for (const auto& sm : sms)
        if (sm->busy()) {
          busy = true;
          break;
        }
    if (!busy) busy = !icnt.idle();
    if (!busy)
      for (const auto& part : partitions)
        if (!part.idle()) {
          busy = true;
          break;
        }
    if (!busy) break;
  }

  if (trace_writer_ != nullptr) {
    trace::Event end;
    end.kind = trace::EventKind::kKernelEnd;
    end.cycle = now;
    trace_writer_->write_event(end);
    if (!trace_writer_->ok() && result.error.empty())
      result.error = trace_writer_->error();
    // The injector dies with this launch; the writer may outlive it.
    trace_writer_->set_faults(nullptr);
  }

  // --- Collect results ---------------------------------------------------------
  result.completed = result.error.empty();
  result.cycles = now;
  for (const auto& sm : sms) {
    result.warp_instructions += sm->warp_instructions();
    result.lane_instructions += sm->lane_instructions();
    result.shared_reads += sm->shared_reads();
    result.shared_writes += sm->shared_writes();
    result.shared_atomics += sm->shared_atomics();
    result.global_reads += sm->global_reads();
    result.global_writes += sm->global_writes();
    result.global_atomics += sm->global_atomics();
    result.barriers += sm->barriers();
    result.fences += sm->fences();
    sm->export_stats(result.stats);
  }
  icnt.export_stats(result.stats);
  f64 util_sum = 0.0;
  for (const auto& part : partitions) {
    part.export_stats(result.stats);
    util_sum += part.dram().utilization(now);
  }
  result.avg_dram_utilization = util_sum / static_cast<f64>(partitions.size());
  result.shadow_bytes = shadow_bytes;
  // Opt-in phase timing: never part of the default stat set, so golden
  // fingerprints are unaffected.
  if (sim_config_.profile) engine.profiler().export_stats(result.stats);
  if (global_rdu) global_rdu->export_stats(result.stats);

  // Coverage accounting: every event that can silently cost a detection
  // — shadow-table evictions, race-log saturation, detector-state fault
  // injections — is summed into one stat so a campaign can always
  // explain its gap to the zero-fault baseline. Exported only when
  // non-zero to keep zero-fault golden stat sets byte-identical.
  if (race_log.saturated() != 0)
    result.stats.add("rd.race_log_saturated", race_log.saturated());
  // Static-filter accounting: how many pcs the report proved safe. Only
  // when the filter is actually driving skips, so unfiltered golden stat
  // sets are unchanged.
  if (haccrg_config_.static_filter && launch.static_report != nullptr)
    result.stats.add("rd.static_safe_pcs",
                     launch.static_report->count(analysis::AccessClass::kProvablySafe));
  u64 coverage_lost = race_log.saturated();
  if (result.stats.has("rd.evictions")) coverage_lost += result.stats.get("rd.evictions");
  if (faults != nullptr) {
    coverage_lost += faults->detector_state_injections();
    faults->export_stats(result.stats);
  }
  if (coverage_lost != 0) result.stats.set("rd.coverage_lost", coverage_lost);

  result.races = race_log;
  return result;
}

}  // namespace haccrg::sim
