#include "sim/sim_config.hpp"

#include <cstdio>
#include <cstdlib>

namespace haccrg::sim {

namespace {

/// Strict HACCRG_THREADS parse: all-digit decimal in [1, kMaxThreads].
Status parse_threads(const char* env, u32& out) {
  u64 value = 0;
  const char* p = env;
  if (*p == '\0') return Status::invalid_argument("HACCRG_THREADS is empty");
  for (; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return Status::invalid_argument(
          std::string("HACCRG_THREADS is not a number: '") + env + "'");
    }
    value = value * 10 + static_cast<u64>(*p - '0');
    if (value > SimConfig::kMaxThreads) break;
  }
  if (value == 0 || value > SimConfig::kMaxThreads) {
    return Status::invalid_argument(
        std::string("HACCRG_THREADS must be in [1, ") +
        std::to_string(SimConfig::kMaxThreads) + "], got '" + env + "'");
  }
  out = static_cast<u32>(value);
  return Status();
}

/// Strict HACCRG_COMMIT_SHARDS parse: all-digit decimal in
/// [0, kMaxCommitShards] (0 = auto, one shard per worker).
Status parse_commit_shards(const char* env, u32& out) {
  u64 value = 0;
  const char* p = env;
  if (*p == '\0') return Status::invalid_argument("HACCRG_COMMIT_SHARDS is empty");
  for (; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return Status::invalid_argument(
          std::string("HACCRG_COMMIT_SHARDS is not a number: '") + env + "'");
    }
    value = value * 10 + static_cast<u64>(*p - '0');
    if (value > SimConfig::kMaxCommitShards) break;
  }
  if (value > SimConfig::kMaxCommitShards) {
    return Status::invalid_argument(
        std::string("HACCRG_COMMIT_SHARDS must be in [0, ") +
        std::to_string(SimConfig::kMaxCommitShards) + "], got '" + env + "'");
  }
  out = static_cast<u32>(value);
  return Status();
}

}  // namespace

SimConfig SimConfig::from_env() {
  SimConfig cfg;
  if (const char* env = std::getenv("HACCRG_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) cfg.num_threads = v > long{kMaxThreads} ? kMaxThreads : static_cast<u32>(v);
  }
  if (const char* env = std::getenv("HACCRG_COMMIT_SHARDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0)
      cfg.commit_shards = v > long{kMaxCommitShards} ? kMaxCommitShards : static_cast<u32>(v);
  }
  if (const char* env = std::getenv("HACCRG_TRACE"); env != nullptr && env[0] != '\0')
    cfg.trace_path = env;
  if (const char* env = std::getenv("HACCRG_TRACE_INDEX");
      env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
    cfg.trace_index = true;
  if (const char* env = std::getenv("HACCRG_PROFILE");
      env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
    cfg.profile = true;
  if (const char* env = std::getenv("HACCRG_FAULTS"); env != nullptr && env[0] != '\0') {
    if (Status st = fault::FaultPlan::parse(env, cfg.faults); !st.ok()) {
      std::fprintf(stderr, "warning: ignoring HACCRG_FAULTS (%s)\n",
                   st.to_string().c_str());
    }
  }
  return cfg;
}

Status SimConfig::parse_env(SimConfig& out) {
  SimConfig cfg;
  if (const char* env = std::getenv("HACCRG_THREADS")) {
    if (Status st = parse_threads(env, cfg.num_threads); !st.ok()) return st;
  }
  if (const char* env = std::getenv("HACCRG_COMMIT_SHARDS")) {
    if (Status st = parse_commit_shards(env, cfg.commit_shards); !st.ok()) return st;
  }
  if (const char* env = std::getenv("HACCRG_TRACE"); env != nullptr && env[0] != '\0')
    cfg.trace_path = env;
  if (const char* env = std::getenv("HACCRG_TRACE_INDEX");
      env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
    cfg.trace_index = true;
  if (const char* env = std::getenv("HACCRG_PROFILE");
      env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
    cfg.profile = true;
  if (const char* env = std::getenv("HACCRG_FAULTS"); env != nullptr && env[0] != '\0') {
    if (Status st = fault::FaultPlan::parse(env, cfg.faults); !st.ok()) return st;
  }
  out = cfg;
  return Status();
}

}  // namespace haccrg::sim
