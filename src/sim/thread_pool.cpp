#include "sim/thread_pool.hpp"

#include <algorithm>

namespace haccrg::sim {

namespace {
// Spin this many times before yielding the core. Yielding matters: when
// the host has fewer cores than workers a pure spin barrier can wait a
// whole scheduling quantum for the worker holding the last chunk.
constexpr u32 kSpinsBeforeYield = 256;
}  // namespace

WorkerPool::WorkerPool(u32 num_threads) : num_threads_(num_threads == 0 ? 1 : num_threads) {
  helpers_.reserve(num_threads_ - 1);
  for (u32 w = 1; w < num_threads_; ++w) {
    helpers_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  stop_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  for (auto& helper : helpers_) helper.join();
}

void WorkerPool::run_chunk(u32 worker_id) const {
  const auto [begin, end] = chunk_bounds(worker_id, num_threads_, job_count_);
  if (begin < end) job_fn_(job_ctx_, begin, end);
}

void WorkerPool::run(void (*fn)(void*, u32, u32), void* ctx, u32 count) {
  if (count == 0) return;
  if (helpers_.empty() || count == 1) {
    fn(ctx, 0, count);
    return;
  }

  job_fn_ = fn;
  job_ctx_ = ctx;
  job_count_ = count;
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);  // publish

  run_chunk(0);

  const u32 expected = static_cast<u32>(helpers_.size());
  u32 spins = 0;
  while (done_.load(std::memory_order_acquire) != expected) {
    if (++spins >= kSpinsBeforeYield) {
      spins = 0;
      std::this_thread::yield();
    }
  }
}

void WorkerPool::worker_loop(u32 worker_id) {
  u64 seen = 0;
  for (;;) {
    u32 spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen) {
      if (++spins >= kSpinsBeforeYield) {
        spins = 0;
        std::this_thread::yield();
      }
    }
    ++seen;
    if (stop_.load(std::memory_order_acquire)) return;
    run_chunk(worker_id);
    done_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace haccrg::sim
