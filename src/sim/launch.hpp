// Kernel launch descriptor and simulation result.
#pragma once

#include <array>
#include <string>

#include "analysis/static_race.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "haccrg/race.hpp"
#include "isa/program.hpp"

namespace haccrg::sim {

/// One kernel launch (<<<grid, block, smem>>> plus scalar parameters).
struct LaunchConfig {
  const isa::Program* program = nullptr;
  u32 grid_dim = 1;            ///< blocks in the grid
  u32 block_dim = 32;          ///< threads per block
  u32 shared_mem_bytes = 0;    ///< scratchpad per block
  std::array<u32, isa::kMaxParams> params{};
  /// Static race report for `program` (per-pc classification). Consulted
  /// only when HaccrgConfig::static_filter is on; must have been computed
  /// with AnalyzeOptions granularities matching the detector config.
  const analysis::StaticRaceReport* static_report = nullptr;
};

/// Everything a harness needs from one simulated kernel run.
struct SimResult {
  bool completed = false;      ///< false if the watchdog fired
  std::string error;
  Cycle cycles = 0;

  // Instruction mix (Table II characterization).
  u64 warp_instructions = 0;
  u64 lane_instructions = 0;
  u64 shared_reads = 0;
  u64 shared_writes = 0;
  u64 shared_atomics = 0;
  u64 global_reads = 0;
  u64 global_writes = 0;
  u64 global_atomics = 0;
  u64 barriers = 0;
  u64 fences = 0;

  // Memory system.
  f64 avg_dram_utilization = 0.0;  ///< mean busy fraction across channels (Fig. 9)
  u32 shadow_bytes = 0;            ///< global shadow footprint (Table IV)

  rd::RaceLog races;
  StatSet stats;

  u64 memory_instructions() const {
    return shared_reads + shared_writes + shared_atomics + global_reads + global_writes +
           global_atomics;
  }
};

}  // namespace haccrg::sim
