#include "haccrg/bloom.hpp"

namespace haccrg::rd {

void BloomSignature::insert(Addr lock_addr, const BloomGeometry& geom) {
  const u32 word = lock_addr >> 2;  // locks are word-aligned variables
  const u32 per_bin = geom.bits_per_bin();
  for (u32 bin = 0; bin < geom.bins; ++bin) {
    // Direct indexing by the low-order word bits (Section VI-A2). Every
    // bin indexes with the same bits, so extra bins add redundancy, not
    // capacity — which is exactly why the paper finds 2 bins strictly
    // better than 4 at equal total signature size.
    const u32 bit = word & (per_bin - 1);
    bits_ |= 1u << (bin * per_bin + bit);
  }
}

bool BloomSignature::intersection_null(BloomSignature a, BloomSignature b,
                                       const BloomGeometry& geom) {
  const u32 both = a.bits_ & b.bits_;
  if (both == 0) return true;  // no overlapping bit in any bin
  const u32 per_bin = geom.bits_per_bin();
  for (u32 bin = 0; bin < geom.bins; ++bin) {
    const u32 mask = ((per_bin == 32) ? ~0u : ((1u << per_bin) - 1)) << (bin * per_bin);
    if ((both & mask) == 0) return true;  // provably no common lock
  }
  return false;
}

}  // namespace haccrg::rd
