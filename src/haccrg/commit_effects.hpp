// Per-shard effect queues for the live engine's sharded commit phase.
//
// During kCommitSharded every shard sweeps the cycle's deferred global
// ops (all SMs, SM-id order) but executes only the granule checks and
// functional effects its address blocks own (see sharding.hpp). The
// shared-state outcomes that must land in cross-SM order — race-log
// records, shadow-line traffic, detector counters — cannot be applied
// from a shard worker, so they accumulate here, tagged with the op's
// global ordinal and the check's index within the op.
//
// The queues are consumed in two steps. kCommitMerge runs parallel over
// SMs: because the shard sweep visits SMs in id order, each SM's entries
// form one contiguous slice of every queue (bounds in sm_race_end /
// sm_shadow_end), so SM s can gather its own ops' effects — sorting race
// records into the serial engine's (check index, granule) order and
// turning shadow entries into the op's deduped kShadow packets — touching
// only SM-local state. The serial kCommitSerial residue then just appends
// each SM's pre-ordered records to the RaceLog in SM-id order.
//
// The result reproduces the serial engine's exact RaceLog insertion
// order, not merely its record set: dedup decisions, recording-cap
// behavior, and the races() vector are byte-identical to a serial commit
// for ANY shard count, which is what lets the shard count float with the
// worker count without perturbing goldens.
#pragma once

#include <vector>

#include "haccrg/race.hpp"

namespace haccrg::rd {

/// Everything one shard accumulated while sweeping one cycle's deferred
/// ops. Vectors are cleared, not freed, across cycles (arena reuse).
struct CommitEffects {
  struct QueuedRace {
    u32 op_ord = 0;     ///< global deferred-op ordinal (SM-major)
    u32 check_idx = 0;  ///< index into the op's check list
    RaceRecord record;
  };
  struct QueuedShadow {
    u32 op_ord = 0;
    Addr entry_addr = 0;  ///< device address of the shadow entry touched
  };

  std::vector<QueuedRace> races;
  std::vector<QueuedShadow> shadow;
  /// Queue sizes at the end of each SM's sweep: SM s owns the slice
  /// [sm_*_end[s-1], sm_*_end[s]) of the corresponding queue. Appended by
  /// the engine's shard worker after each SM so the parallel merge can
  /// address its slice without scanning.
  std::vector<u32> sm_race_end;
  std::vector<u32> sm_shadow_end;
  // GlobalRdu counter deltas (summed into the unit at the serial phase).
  u64 checks = 0;
  u64 races_found = 0;
  u64 shadow_writes = 0;

  void clear() {
    races.clear();
    shadow.clear();
    sm_race_end.clear();
    sm_shadow_end.clear();
    checks = 0;
    races_found = 0;
    shadow_writes = 0;
  }

  bool empty() const { return races.empty() && shadow.empty() && checks == 0; }
};

}  // namespace haccrg::rd
