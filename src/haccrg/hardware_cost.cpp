#include "haccrg/hardware_cost.hpp"

#include <sstream>

namespace haccrg::rd {

HardwareCost compute_hardware_cost(const arch::GpuConfig& gpu, const HaccrgConfig& config) {
  HardwareCost cost;

  // A full warp shared access touches warp_size*4 bytes; one comparator
  // per granule lets the whole access check in parallel with the banks.
  cost.shared_comparators_per_sm = gpu.warp_size * 4 / config.shared_granularity;
  cost.shared_comparator_bits = kSharedEntryBits;

  // Global RDU checks one L2 line of shadow-covered data associatively.
  cost.global_comparators_per_slice = gpu.l2_line / config.global_granularity;
  cost.global_comparator_bits = kGlobalEntryBits;
  cost.global_id_comparators_per_slice = cost.global_comparators_per_slice / 2;
  cost.global_id_comparator_bits = kGlobalIdBits;

  // Storage.
  const u32 shared_entries = gpu.shared_mem_per_sm / config.shared_granularity;
  cost.shared_shadow_bytes_per_sm =
      static_cast<u32>(ceil_div(static_cast<u64>(shared_entries) * kSharedEntryBits, 8));

  const u32 sync_bits = gpu.max_blocks_per_sm * 8;
  const u32 fence_bits = gpu.warps_per_sm() * 8;
  const u32 atomic_bits = gpu.max_threads_per_sm * config.bloom_bits;
  cost.id_register_bytes_per_sm =
      static_cast<u32>(ceil_div(sync_bits + fence_bits + atomic_bits, 8));

  cost.race_register_file_bytes =
      static_cast<u32>(ceil_div(static_cast<u64>(gpu.num_sms) * gpu.warps_per_sm() * 8, 8));

  return cost;
}

std::string HardwareCost::describe() const {
  std::ostringstream out;
  out << "Control logic:\n"
      << "  shared RDU:  " << shared_comparators_per_sm << " x " << shared_comparator_bits
      << "-bit comparators per SM\n"
      << "  global RDU:  " << global_comparators_per_slice << " x " << global_comparator_bits
      << "-bit + " << global_id_comparators_per_slice << " x " << global_id_comparator_bits
      << "-bit comparators per memory slice\n"
      << "Storage:\n"
      << "  shared shadow entries: " << shared_shadow_bytes_per_sm / 1024.0 << " KB per SM\n"
      << "  ID registers:          " << id_register_bytes_per_sm / 1024.0 << " KB per SM\n"
      << "  race register file:    " << race_register_file_bytes / 1024.0
      << " KB per memory slice\n";
  return out.str();
}

}  // namespace haccrg::rd
