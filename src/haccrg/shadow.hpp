// Shadow-memory entries and the HAccRG detection state machine.
//
// Every tracked granule of application memory has a shadow entry holding
// {modified (M), shared (S), first-accessor tid} plus, for global memory,
// {bid, sid, sync ID, fence ID, atomic ID, cs-seen}. The Figure-3 state
// machine interprets {M,S} as:
//   state 1: M=1,S=1  no access since the last barrier (initial)
//   state 2: M=0,S=0  read-only, single thread (tid)
//   state 3: M=1,S=0  written by tid
//   state 4: M=0,S=1  read by multiple warps
//
// The functions here are pure on the entry + access descriptor, which
// keeps the state machine exhaustively unit-testable; the RDUs own the
// surrounding storage, timing, and traffic generation.
#pragma once

#include <functional>
#include <optional>

#include "common/types.hpp"
#include "haccrg/bloom.hpp"
#include "haccrg/race.hpp"

namespace haccrg::rd {

/// Identity and metadata of one lane access, as delivered to an RDU.
struct AccessInfo {
  Addr addr = 0;       ///< byte address (SM-local for shared space)
  u8 size = 4;         ///< bytes
  bool is_write = false;
  u16 thread_slot = 0; ///< hardware thread slot within the SM (the tid field)
  u32 warp_in_sm = 0;  ///< hardware warp slot within the SM
  u32 block_slot = 0;  ///< hardware block slot within the SM (the bid field)
  u32 sm_id = 0;       ///< SM of the access (the sid field)
  u8 sync_id = 0;      ///< issuing block's sync ID (global only)
  u8 fence_id = 0;     ///< issuing warp's fence ID (global only)
  BloomSignature sig;  ///< locks held (zero when unprotected)
  bool in_cs = false;  ///< between acquire/release markers
  bool l1_hit = false; ///< global loads: the data came from the local L1
  Cycle l1_fill_cycle = 0;  ///< when the hit L1 line was filled
  u32 pc = 0;
  Cycle cycle = 0;
};

/// Shared-memory shadow entry: 12 bits of architectural state (M, S,
/// 10-bit tid). Packed so that an all-zero word encodes the initial
/// {M=1,S=1} state — barrier-time invalidation is then a memset.
struct SharedShadowEntry {
  bool m = true;
  bool s = true;
  u16 tid = 0;

  static SharedShadowEntry unpack(u16 raw);
  u16 pack() const;
};

/// Global-memory shadow entry (Section IV-B): adds bid/sid/sync/fence/
/// atomic-ID fields. Packs into a u64 stored in the device-memory shadow
/// region; all-zero again encodes the initial state.
struct GlobalShadowEntry {
  bool m = true;
  bool s = true;
  u16 tid = 0;     ///< 10-bit thread slot
  u8 bid = 0;      ///< 3-bit block slot
  u8 sid = 0;      ///< 5-bit SM id
  u8 sync_id = 0;  ///< 8-bit block logical barrier clock
  u8 fence_id = 0; ///< 8-bit writer-warp fence clock
  u16 sig = 0;     ///< 16-bit atomic-ID intersection so far
  bool cs_seen = false;  ///< some recorded access was inside a critical section

  static GlobalShadowEntry unpack(u64 raw);
  u64 pack() const;
};

/// Result of one shadow check: the (possibly) updated entry plus an
/// optional race. `entry_changed` lets RDUs decide whether the shadow
/// write-back consumes bandwidth.
struct CheckOutcome {
  std::optional<RaceRecord> race;
  bool entry_changed = false;
};

/// Knobs shared by both state machines.
struct DetectPolicy {
  u32 warp_size = 32;
  bool warp_regrouping = false;  ///< report even intra-warp pairs
  bool fence_gating = true;      ///< ablation: false reports every RAW
  BloomGeometry bloom;
};

/// Shared-memory check (Section III-A, warp-aware). Mutates `entry` in
/// place and reports at most one race.
CheckOutcome check_shared_access(SharedShadowEntry& entry, const AccessInfo& access,
                                 const DetectPolicy& policy);

/// Reads the *current* fence ID of a warp (race register file lookup):
/// args are (sm_id, warp_in_sm).
using FenceIdReader = std::function<u8(u32, u32)>;

/// Global-memory check (Sections III-B/III-C/IV-B): sync-ID ordering,
/// lockset priority inside critical sections, fence-gated RAW reporting,
/// and the stale-L1 cross-SM rule.
CheckOutcome check_global_access(GlobalShadowEntry& entry, const AccessInfo& access,
                                 const DetectPolicy& policy, const FenceIdReader& fence_reader);

}  // namespace haccrg::rd
