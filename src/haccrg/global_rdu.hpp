// Global-memory Race Detection Unit (Section IV-B). The shadow entries
// live in a reserved region of device memory (one packed u64 per tracked
// granule of the application heap), so every shadow read/modify/write has
// a device address. The functional check runs synchronously at issue —
// the simulator's functional/timing split — while the shadow lines the
// check touched are returned to the caller, which injects them into the
// memory system as kShadow packets so they pollute the L2 and consume
// DRAM bandwidth exactly as the paper's global RDU traffic does.
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "fault/fault.hpp"
#include "haccrg/commit_effects.hpp"
#include "haccrg/options.hpp"
#include "haccrg/race.hpp"
#include "haccrg/shadow.hpp"
#include "mem/device_memory.hpp"

namespace haccrg::rd {

class GlobalRdu {
 public:
  GlobalRdu(mem::DeviceMemory& memory, const HaccrgConfig& config, const DetectPolicy& policy,
            RaceLog& log, FenceIdReader fence_reader);

  /// Arm fault injection (null = off). Checks run only in the serial
  /// commit phase, so the injector's single global-shadow stream is
  /// advanced in a deterministic cross-SM order.
  void set_faults(fault::FaultInjector* faults) { faults_ = faults; }

  /// Reserve + zero the shadow region covering `app_bytes` of heap,
  /// starting at `shadow_base` (called at kernel launch, the paper's
  /// cudaMalloc/cudaMemset step).
  void init_shadow(Addr shadow_base, u32 app_bytes);

  /// Bytes of shadow storage needed for `app_bytes` of application heap
  /// at granularity `granularity` (Table IV accounting).
  static u32 shadow_bytes_for(u32 app_bytes, u32 granularity);

  /// Bytes per packed shadow entry (public so trace replay can bound a
  /// damaged kernel-begin event's footprint in 64-bit arithmetic before
  /// allocating).
  static constexpr u32 kEntryBytes = 8;

  /// Address-sharded replay (trace/replay.hpp): execute only granule
  /// checks owned by shard `index` of `count` (see shard_of_addr).
  /// Skipped granules are untouched — no shadow read/write, no
  /// last_write_ update, no counters, no log record.
  void set_shard(u32 count, u32 index) {
    shard_count_ = count;
    shard_index_ = index;
  }

  /// Check one lane's global access. Shadow line addresses (device
  /// addresses within the shadow region) touched by the check are
  /// appended to `shadow_lines_out` for traffic injection.
  void check(const AccessInfo& access, std::vector<Addr>& shadow_lines_out);

  /// Sharded-commit entry point (engine kCommitSharded phase): run the
  /// granule checks of `access` that shard `shard_index` of `shard_count`
  /// owns, appending race records, shadow entry addresses, and counter
  /// deltas to `out` instead of touching the RaceLog or this unit's
  /// counters. Concurrent calls are safe when their shard indices differ:
  /// every mutation (shadow entry, last-write cycle) is confined to the
  /// calling shard's granules, and `out` is per-shard. Not valid while
  /// fault injection is armed — the global-shadow fault stream advances
  /// in cross-SM check order, which only the serial path preserves (the
  /// engine falls back to Sm::commit_epoch for fault campaigns).
  void check_sharded(const AccessInfo& access, u32 shard_count, u32 shard_index, u32 op_ord,
                     u32 check_idx, CommitEffects& out);

  /// Fold one cycle's merged per-shard counter deltas back into this
  /// unit's stats (serial kCommitMerge phase).
  void add_commit_counters(u64 checks, u64 races, u64 shadow_writes) {
    checks_ += checks;
    races_ += races;
    shadow_writes_ += shadow_writes;
  }

  Addr shadow_base() const { return shadow_base_; }
  u32 shadow_bytes() const { return shadow_bytes_; }
  u64 checks() const { return checks_; }
  u64 races_found() const { return races_; }
  void export_stats(StatSet& stats) const;

  /// Direct shadow inspection for tests.
  GlobalShadowEntry entry_at(Addr app_addr) const;

 private:
  /// One granule's state-machine step, shared by the serial and sharded
  /// entry points: shadow read (optionally fault-flipped), stale-L1
  /// qualification, last-write update, state machine, shadow write-back.
  /// Counter/record sinks are the caller's.
  CheckOutcome check_granule(u32 g, const AccessInfo& access, bool allow_faults,
                             Addr& entry_addr_out);

  mem::DeviceMemory* memory_;
  u32 granularity_;
  u32 shard_count_ = 1;
  u32 shard_index_ = 0;
  DetectPolicy policy_;
  RaceLog* log_;
  FenceIdReader fence_reader_;
  fault::FaultInjector* faults_ = nullptr;
  Addr shadow_base_ = 0;
  u32 app_bytes_ = 0;
  u32 shadow_bytes_ = 0;
  u64 checks_ = 0;
  u64 races_ = 0;
  u64 shadow_writes_ = 0;

  /// Simulation-side qualification for the stale-L1 rule: the cycle of
  /// the last write per granule. An L1 hit on a line filled *after* the
  /// last write saw fresh data and must not be reported stale (this is
  /// what keeps the legitimate threadfence pattern quiet, matching the
  /// paper's observed behavior on REDUCE/PSUM).
  std::vector<Cycle> last_write_;
};

}  // namespace haccrg::rd
