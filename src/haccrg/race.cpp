#include "haccrg/race.hpp"

#include <cstdio>
#include <sstream>

namespace haccrg::rd {

std::string_view race_type_name(RaceType t) {
  switch (t) {
    case RaceType::kWaw: return "WAW";
    case RaceType::kWar: return "WAR";
    case RaceType::kRaw: return "RAW";
  }
  return "?";
}

std::string_view race_mechanism_name(RaceMechanism m) {
  switch (m) {
    case RaceMechanism::kBarrier: return "barrier";
    case RaceMechanism::kLockset: return "lockset";
    case RaceMechanism::kFence: return "fence";
    case RaceMechanism::kL1Stale: return "l1-stale";
    case RaceMechanism::kIntraWarpWaw: return "intra-warp-waw";
  }
  return "?";
}

std::string RaceRecord::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s race (%s) in %s memory at 0x%x: threads %u and %u on SM%u, pc %u, cycle %llu",
                std::string(race_type_name(type)).c_str(),
                std::string(race_mechanism_name(mechanism)).c_str(),
                space == MemSpace::kShared ? "shared" : "global", granule_addr, first_thread,
                second_thread, sm_id, pc, static_cast<unsigned long long>(cycle));
  return buf;
}

void RaceStaging::drain_into(RaceLog& log) {
  for (const RaceRecord& race : records_) log.record(race);
  records_.clear();
}

bool RaceLog::record(const RaceRecord& race) {
  ++total_;
  Key key{static_cast<u8>(race.space), static_cast<u8>(race.type),
          static_cast<u8>(race.mechanism), race.granule_addr, race.pc};
  auto [it, inserted] = seen_.emplace(key, 1);
  if (!inserted) {
    ++it->second;
    return false;
  }
  if (races_.size() < max_recorded_) races_.push_back(race);
  return true;
}

u64 RaceLog::count(RaceMechanism m) const {
  u64 n = 0;
  for (const auto& r : races_)
    if (r.mechanism == m) ++n;
  return n;
}

u64 RaceLog::count(RaceType t) const {
  u64 n = 0;
  for (const auto& r : races_)
    if (r.type == t) ++n;
  return n;
}

u64 RaceLog::count(MemSpace s) const {
  u64 n = 0;
  for (const auto& r : races_)
    if (r.space == s) ++n;
  return n;
}

void RaceLog::clear() {
  total_ = 0;
  seen_.clear();
  races_.clear();
}

std::string RaceLog::summary() const {
  std::ostringstream out;
  out << unique() << " unique races (" << total_ << " dynamic):";
  if (races_.empty()) {
    out << " none";
  } else {
    out << "\n";
    for (const auto& r : races_) out << "  " << r.describe() << "\n";
  }
  return out.str();
}

}  // namespace haccrg::rd
