#include "haccrg/race.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace haccrg::rd {

std::string_view race_type_name(RaceType t) {
  switch (t) {
    case RaceType::kWaw: return "WAW";
    case RaceType::kWar: return "WAR";
    case RaceType::kRaw: return "RAW";
  }
  return "?";
}

std::string_view race_mechanism_name(RaceMechanism m) {
  switch (m) {
    case RaceMechanism::kBarrier: return "barrier";
    case RaceMechanism::kLockset: return "lockset";
    case RaceMechanism::kFence: return "fence";
    case RaceMechanism::kL1Stale: return "l1-stale";
    case RaceMechanism::kIntraWarpWaw: return "intra-warp-waw";
  }
  return "?";
}

std::string RaceRecord::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s race (%s) in %s memory at 0x%x: threads %u and %u on SM%u, pc %u, cycle %llu",
                std::string(race_type_name(type)).c_str(),
                std::string(race_mechanism_name(mechanism)).c_str(),
                space == MemSpace::kShared ? "shared" : "global", granule_addr, first_thread,
                second_thread, sm_id, pc, static_cast<unsigned long long>(cycle));
  return buf;
}

void RaceStaging::drain_into(RaceLog& log) {
  for (const RaceRecord& race : records_) log.record(race);
  records_.clear();
}

bool RaceLog::record(const RaceRecord& race) {
  ++total_;
  const u64 key_lo = static_cast<u64>(race.granule_addr) | (static_cast<u64>(race.pc) << 32);
  const u32 key_hi = static_cast<u32>(race.space) | (static_cast<u32>(race.type) << 8) |
                     (static_cast<u32>(race.mechanism) << 16);
  // Grow before probing so the table never saturates (keeps the probe
  // loop guaranteed to find an empty slot).
  if (occupied_ * 10 >= seen_.size() * 7) grow();
  const u64 mask = seen_.size() - 1;
  // FNV-1a style mix of the 96-bit key into a table index.
  u64 h = 1469598103934665603ull;
  h = (h ^ key_lo) * 1099511628211ull;
  h = (h ^ key_hi) * 1099511628211ull;
  for (u64 i = h & mask;; i = (i + 1) & mask) {
    Slot& slot = seen_[i];
    if (slot.count == 0) {
      if (max_unique_ != 0 && occupied_ >= max_unique_) {
        // Saturated: the key is new but the table is full. Dropping it is
        // a counted degradation, not silent loss — saturated() feeds the
        // run's rd.coverage_lost accounting.
        ++saturated_;
        return false;
      }
      slot.key_lo = key_lo;
      slot.key_hi = key_hi;
      slot.count = 1;
      ++occupied_;
      if (races_.size() < max_recorded_) races_.push_back(race);
      return true;
    }
    if (slot.key_lo == key_lo && slot.key_hi == key_hi) {
      ++slot.count;
      return false;
    }
  }
}

void RaceLog::grow() {
  std::vector<Slot> old = std::move(seen_);
  seen_.assign(old.size() * 2, Slot{});
  const u64 mask = seen_.size() - 1;
  for (const Slot& s : old) {
    if (s.count == 0) continue;
    u64 h = 1469598103934665603ull;
    h = (h ^ s.key_lo) * 1099511628211ull;
    h = (h ^ s.key_hi) * 1099511628211ull;
    for (u64 i = h & mask;; i = (i + 1) & mask) {
      if (seen_[i].count == 0) {
        seen_[i] = s;
        break;
      }
    }
  }
}

u64 RaceLog::count(RaceMechanism m) const {
  u64 n = 0;
  for (const auto& r : races_)
    if (r.mechanism == m) ++n;
  return n;
}

u64 RaceLog::count(RaceType t) const {
  u64 n = 0;
  for (const auto& r : races_)
    if (r.type == t) ++n;
  return n;
}

u64 RaceLog::count(MemSpace s) const {
  u64 n = 0;
  for (const auto& r : races_)
    if (r.space == s) ++n;
  return n;
}

void RaceLog::clear() {
  total_ = 0;
  saturated_ = 0;
  occupied_ = 0;
  // Keep capacity: clearing between kernels must not reallocate.
  std::fill(seen_.begin(), seen_.end(), Slot{});
  races_.clear();
}

std::string RaceLog::summary() const {
  std::ostringstream out;
  out << unique() << " unique races (" << total_ << " dynamic):";
  if (races_.empty()) {
    out << " none";
  } else {
    out << "\n";
    for (const auto& r : races_) out << "  " << r.describe() << "\n";
  }
  return out.str();
}

}  // namespace haccrg::rd
