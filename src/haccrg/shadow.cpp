#include "haccrg/shadow.hpp"

namespace haccrg::rd {

namespace {

constexpr u16 kTidMask = 0x3ff;  // 10 bits

/// Two accesses count as "same warp" (and therefore ordered by SIMD
/// lockstep) only within the same SM, block slot, and warp slot.
bool same_warp(u16 stored_tid, const AccessInfo& a, const DetectPolicy& policy) {
  return (stored_tid / policy.warp_size) == a.warp_in_sm;
}

RaceRecord make_race(RaceType type, RaceMechanism mech, MemSpace space, u16 first,
                     const AccessInfo& a) {
  RaceRecord r;
  r.type = type;
  r.mechanism = mech;
  r.space = space;
  r.granule_addr = a.addr;
  r.sm_id = a.sm_id;
  r.first_thread = first;
  r.second_thread = a.thread_slot;
  r.pc = a.pc;
  r.cycle = a.cycle;
  return r;
}

}  // namespace

// --- Packing -----------------------------------------------------------------
// M and S are stored inverted so the initial {M=1,S=1} state is all-zero:
// barrier resets and cudaMemset-style initialization are plain memsets.

SharedShadowEntry SharedShadowEntry::unpack(u16 raw) {
  SharedShadowEntry e;
  e.m = (raw & 0x1) == 0;
  e.s = (raw & 0x2) == 0;
  e.tid = (raw >> 2) & kTidMask;
  return e;
}

u16 SharedShadowEntry::pack() const {
  u16 raw = 0;
  if (!m) raw |= 0x1;
  if (!s) raw |= 0x2;
  raw |= static_cast<u16>((tid & kTidMask) << 2);
  return raw;
}

GlobalShadowEntry GlobalShadowEntry::unpack(u64 raw) {
  GlobalShadowEntry e;
  e.m = (raw & 0x1) == 0;
  e.s = (raw & 0x2) == 0;
  e.tid = static_cast<u16>((raw >> 2) & kTidMask);
  e.bid = static_cast<u8>((raw >> 12) & 0x7);
  e.sid = static_cast<u8>((raw >> 15) & 0x1f);
  e.sync_id = static_cast<u8>((raw >> 20) & 0xff);
  e.fence_id = static_cast<u8>((raw >> 28) & 0xff);
  e.sig = static_cast<u16>((raw >> 36) & 0xffff);
  e.cs_seen = ((raw >> 52) & 0x1) != 0;
  return e;
}

u64 GlobalShadowEntry::pack() const {
  u64 raw = 0;
  if (!m) raw |= 0x1;
  if (!s) raw |= 0x2;
  raw |= static_cast<u64>(tid & kTidMask) << 2;
  raw |= static_cast<u64>(bid & 0x7) << 12;
  raw |= static_cast<u64>(sid & 0x1f) << 15;
  raw |= static_cast<u64>(sync_id) << 20;
  raw |= static_cast<u64>(fence_id) << 28;
  raw |= static_cast<u64>(sig) << 36;
  raw |= static_cast<u64>(cs_seen ? 1 : 0) << 52;
  return raw;
}

// --- Shared-memory state machine (Section III-A) ------------------------------

CheckOutcome check_shared_access(SharedShadowEntry& entry, const AccessInfo& access,
                                 const DetectPolicy& policy) {
  CheckOutcome out;
  const u16 t = access.thread_slot & kTidMask;

  // State 1: no access since the last barrier — claim the entry.
  if (entry.m && entry.s) {
    entry.s = false;
    entry.m = access.is_write;
    entry.tid = t;
    out.entry_changed = true;
    return out;
  }

  const bool same_thread = entry.tid == t;
  const bool ordered_by_warp =
      !policy.warp_regrouping && same_warp(entry.tid, access, policy);

  if (!entry.m && !entry.s) {
    // State 2: read-only by tid.
    if (!access.is_write) {
      if (!same_thread && !ordered_by_warp) {
        entry.s = true;  // a second *warp* is reading
        out.entry_changed = true;
      }
      return out;
    }
    if (same_thread || ordered_by_warp) {
      entry.m = true;
      entry.tid = t;  // warp-ordered writer becomes the owner
      out.entry_changed = true;
      return out;
    }
    out.race = make_race(RaceType::kWar, RaceMechanism::kBarrier, MemSpace::kShared, entry.tid,
                         access);
  } else if (entry.m && !entry.s) {
    // State 3: written by tid.
    if (same_thread || ordered_by_warp) {
      if (!same_thread) {
        entry.tid = t;
        out.entry_changed = true;
      }
      return out;
    }
    out.race = make_race(access.is_write ? RaceType::kWaw : RaceType::kRaw,
                         RaceMechanism::kBarrier, MemSpace::kShared, entry.tid, access);
  } else {
    // State 4: read by multiple warps. Any write races with some reader.
    if (!access.is_write) return out;
    out.race = make_race(RaceType::kWar, RaceMechanism::kBarrier, MemSpace::kShared, entry.tid,
                         access);
  }

  // After reporting, re-own the entry with the racing access so one buggy
  // location does not flood the log with the same pair forever.
  entry.m = access.is_write;
  entry.s = false;
  entry.tid = t;
  out.entry_changed = true;
  return out;
}

// --- Global-memory state machine (Sections III-B, III-C, IV-B) ----------------

namespace {

/// Overwrite the entry with the current access (used for the first access,
/// for barrier-ordered epochs, and after a reported race).
void claim_global(GlobalShadowEntry& entry, const AccessInfo& access) {
  entry.m = access.is_write;
  entry.s = false;
  entry.tid = access.thread_slot & kTidMask;
  entry.bid = static_cast<u8>(access.block_slot & 0x7);
  entry.sid = static_cast<u8>(access.sm_id & 0x1f);
  entry.sync_id = access.sync_id;
  entry.fence_id = access.fence_id;
  entry.sig = static_cast<u16>(access.sig.bits() & 0xffff);
  entry.cs_seen = access.in_cs;
}

}  // namespace

CheckOutcome check_global_access(GlobalShadowEntry& entry, const AccessInfo& access,
                                 const DetectPolicy& policy, const FenceIdReader& fence_reader) {
  CheckOutcome out;
  const u16 t = access.thread_slot & kTidMask;

  // State 1: first access since shadow initialization.
  if (entry.m && entry.s) {
    claim_global(entry, access);
    out.entry_changed = true;
    return out;
  }

  const bool same_block =
      entry.bid == (access.block_slot & 0x7) && entry.sid == (access.sm_id & 0x1f);
  const bool same_thread = same_block && entry.tid == t;
  const bool ordered_by_warp = !policy.warp_regrouping && same_block &&
                               same_warp(entry.tid, access, policy);

  // Sync-ID ordering (Section IV-B): within one block, accesses from
  // different barrier epochs are ordered — refresh the entry, no race.
  // Barriers do not order accesses across blocks, so the check is skipped
  // for cross-block pairs.
  if (same_block && entry.sync_id != access.sync_id) {
    claim_global(entry, access);
    out.entry_changed = true;
    return out;
  }

  // Lockset detection has priority inside critical sections (Sec. III-B).
  if (access.in_cs || entry.cs_seen) {
    const bool entry_protected = entry.sig != 0;
    const bool access_protected = !access.sig.empty();
    const BloomSignature stored(entry.sig);
    const bool anyone_wrote = entry.m || access.is_write;

    if (!same_thread && !ordered_by_warp && anyone_wrote) {
      if (entry_protected && access_protected) {
        if (BloomSignature::intersection_null(stored, access.sig, policy.bloom)) {
          out.race = make_race(access.is_write ? (entry.m ? RaceType::kWaw : RaceType::kWar)
                                               : RaceType::kRaw,
                               RaceMechanism::kLockset, MemSpace::kGlobal, entry.tid, access);
        }
      } else if (entry_protected != access_protected) {
        // Protected/unprotected mix on a written location.
        out.race = make_race(access.is_write ? (entry.m ? RaceType::kWaw : RaceType::kWar)
                                             : RaceType::kRaw,
                             RaceMechanism::kLockset, MemSpace::kGlobal, entry.tid, access);
      }
    }
    if (out.race) {
      claim_global(entry, access);
      out.entry_changed = true;
      return out;
    }
    // No lockset race: fold the access into the entry — keep the running
    // lock intersection and let M/S evolve below.
    if (entry_protected && access_protected) {
      const u16 inter =
          static_cast<u16>(BloomSignature::intersect(stored, access.sig).bits() & 0xffff);
      if (inter != entry.sig) {
        entry.sig = inter;
        out.entry_changed = true;
      }
    }
    if (access.in_cs && !entry.cs_seen) {
      entry.cs_seen = true;
      out.entry_changed = true;
    }
    // Properly locked accesses are mutually ordered; update ownership and
    // stop — the happens-before rules below must not re-flag them.
    if (entry_protected && access_protected) {
      const u16 keep_sig = entry.sig;
      const bool keep_cs = entry.cs_seen;
      claim_global(entry, access);
      entry.sig = keep_sig;
      entry.cs_seen = keep_cs;
      out.entry_changed = true;
      return out;
    }
  }

  // Happens-before rules (Figure 3), extended with the fence and stale-L1
  // checks for global memory.
  if (!entry.m && !entry.s) {
    // State 2: read-only by tid.
    if (!access.is_write) {
      if (!same_thread && !ordered_by_warp) {
        entry.s = true;
        out.entry_changed = true;
      }
      return out;
    }
    if (same_thread || ordered_by_warp) {
      entry.m = true;
      entry.tid = t;
      entry.fence_id = access.fence_id;
      out.entry_changed = true;
      return out;
    }
    out.race =
        make_race(RaceType::kWar, RaceMechanism::kBarrier, MemSpace::kGlobal, entry.tid, access);
  } else if (entry.m && !entry.s) {
    // State 3: written by tid.
    if (same_thread || ordered_by_warp) {
      if (access.is_write) entry.fence_id = access.fence_id;
      if (!same_thread) entry.tid = t;
      out.entry_changed = true;
      return out;
    }
    if (!access.is_write) {
      // Cross-SM read that hit in the reader's non-coherent L1: the
      // reader may consume stale data regardless of fences (Sec. IV-B).
      const bool cross_sm = entry.sid != (access.sm_id & 0x1f);
      if (cross_sm && access.l1_hit) {
        out.race = make_race(RaceType::kRaw, RaceMechanism::kL1Stale, MemSpace::kGlobal,
                             entry.tid, access);
      } else {
        // Fence gate (Section III-C): compare the stored fence ID with
        // the writer warp's current fence ID. A match means the writer
        // has not fenced since the write — report; a mismatch means the
        // update was published and may be consumed safely.
        const u32 writer_warp = entry.tid / policy.warp_size;
        const u8 current = (policy.fence_gating && fence_reader)
                               ? fence_reader(entry.sid, writer_warp)
                               : entry.fence_id;
        if (current == entry.fence_id) {
          out.race = make_race(RaceType::kRaw, RaceMechanism::kFence, MemSpace::kGlobal,
                               entry.tid, access);
        } else {
          // Safe consumption starts a fresh epoch owned by the reader.
          claim_global(entry, access);
          out.entry_changed = true;
          return out;
        }
      }
    } else {
      out.race = make_race(RaceType::kWaw, RaceMechanism::kBarrier, MemSpace::kGlobal, entry.tid,
                           access);
    }
  } else {
    // State 4: read by multiple warps/blocks.
    if (!access.is_write) return out;
    out.race =
        make_race(RaceType::kWar, RaceMechanism::kBarrier, MemSpace::kGlobal, entry.tid, access);
  }

  claim_global(entry, access);
  out.entry_changed = true;
  return out;
}

}  // namespace haccrg::rd
