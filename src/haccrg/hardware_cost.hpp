// Analytic hardware-overhead model (Section VI-C2): comparator counts and
// storage requirements of the RDUs as a function of the GPU configuration
// and HAccRG parameters. Used by the bench_hw_overhead harness.
#pragma once

#include <string>

#include "arch/config.hpp"
#include "haccrg/options.hpp"

namespace haccrg::rd {

struct HardwareCost {
  // Control logic.
  u32 shared_comparators_per_sm = 0;  ///< one per granule a warp access covers
  u32 shared_comparator_bits = 0;     ///< width of each (M + S + tid)
  u32 global_comparators_per_slice = 0;  ///< granules per L2 line
  u32 global_comparator_bits = 0;        ///< basic entry width
  u32 global_id_comparators_per_slice = 0;  ///< fence + atomic ID comparators
  u32 global_id_comparator_bits = 0;

  // Storage (bytes).
  u32 shared_shadow_bytes_per_sm = 0;
  u32 id_register_bytes_per_sm = 0;     ///< sync + fence + atomic IDs
  u32 race_register_file_bytes = 0;     ///< per-slice replica of all fence IDs

  std::string describe() const;
};

/// Shared shadow entry width in bits (M + S + 10-bit tid).
constexpr u32 kSharedEntryBits = 12;
/// Basic global shadow entry width in bits (M,S,tid,bid,sid,sync).
constexpr u32 kGlobalEntryBits = 28;
/// Fence (8) + atomic (16) extension bits.
constexpr u32 kGlobalIdBits = 24;

HardwareCost compute_hardware_cost(const arch::GpuConfig& gpu, const HaccrgConfig& config);

}  // namespace haccrg::rd
