#include "haccrg/options.hpp"

#include <sstream>

namespace haccrg::rd {

std::string HaccrgConfig::describe() const {
  std::ostringstream out;
  out << "HAccRG{shared=" << (enable_shared ? "on" : "off")
      << ", global=" << (enable_global ? "on" : "off") << ", gran=" << shared_granularity << "B/"
      << global_granularity << "B, bloom=" << bloom_bits << "b/" << bloom_bins << "bins"
      << ", shared_shadow="
      << (shared_shadow == SharedShadowPlacement::kHardware ? "hw" : "global-mem")
      << (warp_regrouping ? ", warp-regroup" : "")
      << (static_filter ? ", static-filter" : "") << "}";
  return out.str();
}

}  // namespace haccrg::rd
