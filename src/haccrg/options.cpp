#include "haccrg/options.hpp"

#include <sstream>

#include "haccrg/bloom.hpp"

namespace haccrg::rd {

Status HaccrgConfig::validate() const {
  const auto check_granularity = [](u32 g, const char* which) {
    if (g == 0 || g > 4096 || !is_pow2(g)) {
      return Status::invalid_argument(
          std::string(which) + " granularity must be a power of two in [1, 4096], got " +
          std::to_string(g));
    }
    return Status();
  };
  if (Status st = check_granularity(shared_granularity, "shared"); !st.ok()) return st;
  if (Status st = check_granularity(global_granularity, "global"); !st.ok()) return st;

  const BloomGeometry geom{bloom_bits, bloom_bins};
  if (bloom_bits == 0 || bloom_bins == 0 || !geom.valid()) {
    return Status::invalid_argument(
        "invalid bloom geometry: " + std::to_string(bloom_bits) + " bits / " +
        std::to_string(bloom_bins) +
        " bins (need bins > 0, bits a multiple of bins, power-of-two bits per bin, <= 32 total)");
  }

  if (max_recorded_races == 0) {
    return Status::invalid_argument("max_recorded_races must be at least 1");
  }
  if (max_unique_races != 0 && max_unique_races < max_recorded_races) {
    return Status::invalid_argument(
        "max_unique_races (" + std::to_string(max_unique_races) +
        ") must be 0 (unbounded) or >= max_recorded_races (" +
        std::to_string(max_recorded_races) + ")");
  }

  if (static_filter && warp_regrouping) {
    return Status::invalid_argument(
        "static_filter cannot be combined with warp_regrouping: the static "
        "analysis assumes the fixed warp grouping its proofs were built on");
  }

  return Status();
}

std::string HaccrgConfig::describe() const {
  std::ostringstream out;
  out << "HAccRG{shared=" << (enable_shared ? "on" : "off")
      << ", global=" << (enable_global ? "on" : "off") << ", gran=" << shared_granularity << "B/"
      << global_granularity << "B, bloom=" << bloom_bits << "b/" << bloom_bins << "bins"
      << ", shared_shadow="
      << (shared_shadow == SharedShadowPlacement::kHardware ? "hw" : "global-mem")
      << (warp_regrouping ? ", warp-regroup" : "")
      << (static_filter ? ", static-filter" : "") << "}";
  return out.str();
}

}  // namespace haccrg::rd
