#include "haccrg/shared_rdu.hpp"

#include <algorithm>

namespace haccrg::rd {

SharedRdu::SharedRdu(u32 sm_id, u32 smem_bytes, const HaccrgConfig& config,
                     const DetectPolicy& policy, RaceStaging& staging)
    : sm_id_(sm_id), granularity_(config.shared_granularity), policy_(policy),
      staging_(&staging), shadow_(ceil_div(smem_bytes, config.shared_granularity), 0) {}

void SharedRdu::check(const AccessInfo& access) {
  const u32 first = access.addr / granularity_;
  const u32 last = (access.addr + access.size - 1) / granularity_;
  for (u32 g = first; g <= last && g < shadow_.size(); ++g) {
    ++checks_;
    SharedShadowEntry entry = SharedShadowEntry::unpack(shadow_[g]);
    AccessInfo granule_access = access;
    granule_access.addr = g * granularity_;
    CheckOutcome out = check_shared_access(entry, granule_access, policy_);
    if (out.entry_changed) shadow_[g] = entry.pack();
    if (out.race) {
      out.race->sm_id = sm_id_;
      ++races_;
      staging_->record(*out.race);
    }
  }
}

std::vector<u32> SharedRdu::shadow_lines(const std::vector<u32>& lane_addrs,
                                         u32 line_bytes) const {
  // Each granule's software shadow entry is 2 bytes; entries are packed
  // densely in the per-SM shadow array mirrored to global memory.
  std::vector<u32> lines;
  for (u32 addr : lane_addrs) {
    const u32 entry_offset = (addr / granularity_) * 2;
    const u32 line = entry_offset / line_bytes;
    if (std::find(lines.begin(), lines.end(), line) == lines.end()) lines.push_back(line);
  }
  return lines;
}

u32 SharedRdu::reset_region(u32 base, u32 bytes, u32 banks) {
  const u32 first = base / granularity_;
  const u32 last = std::min<u32>(static_cast<u32>(shadow_.size()),
                                 static_cast<u32>(ceil_div(base + bytes, granularity_)));
  for (u32 g = first; g < last; ++g) shadow_[g] = 0;
  ++resets_;
  const u32 entries = last > first ? last - first : 0;
  return static_cast<u32>(ceil_div(entries, std::max(banks, 1u)));
}

void SharedRdu::export_stats(StatSet& stats) const {
  stats.add("shared_rdu.checks", checks_);
  stats.add("shared_rdu.races", races_);
  stats.add("shared_rdu.barrier_resets", resets_);
}

}  // namespace haccrg::rd
