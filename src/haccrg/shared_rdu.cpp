#include "haccrg/shared_rdu.hpp"

#include <algorithm>

namespace haccrg::rd {

SharedRdu::SharedRdu(u32 sm_id, u32 smem_bytes, const HaccrgConfig& config,
                     const DetectPolicy& policy, RaceStaging& staging)
    : sm_id_(sm_id), granularity_(config.shared_granularity), policy_(policy),
      staging_(&staging), shadow_(ceil_div(smem_bytes, config.shared_granularity), 0) {}

void SharedRdu::check(const AccessInfo& access) {
  const u32 first = access.addr / granularity_;
  const u32 last = (access.addr + access.size - 1) / granularity_;
  const u16 t = access.thread_slot & 0x3ff;
  for (u32 g = first; g <= last && g < shadow_.size(); ++g) {
    ++checks_;
    // Word-level fast path on the packed entry: the state-machine cases
    // that provably neither mutate the entry nor report a race skip the
    // unpack/dispatch/pack round-trip. Packing is bit0 = !M, bit1 = !S,
    // tid << 2 (see SharedShadowEntry), so raw & 3 identifies the state:
    //   3 -> state 2 (read-only): a same-thread/same-warp read is a no-op;
    //   2 -> state 3 (written):   any same-thread access is a no-op;
    //   1 -> state 4 (multi-read): any read is a no-op.
    const u16 raw = shadow_[g];
    const u16 stored_tid = static_cast<u16>(raw >> 2);
    const bool same_thread = stored_tid == t;
    const bool warp_ordered =
        !policy_.warp_regrouping && (stored_tid / policy_.warp_size) == access.warp_in_sm;
    switch (raw & 3) {
      case 3:
        if (!access.is_write && (same_thread || warp_ordered)) continue;
        break;
      case 2:
        if (same_thread) continue;
        break;
      case 1:
        if (!access.is_write) continue;
        break;
      default:
        break;  // state 1 always claims the entry
    }
    SharedShadowEntry entry = SharedShadowEntry::unpack(raw);
    AccessInfo granule_access = access;
    granule_access.addr = g * granularity_;
    CheckOutcome out = check_shared_access(entry, granule_access, policy_);
    if (out.entry_changed) shadow_[g] = entry.pack();
    if (out.race) {
      out.race->sm_id = sm_id_;
      ++races_;
      staging_->record(*out.race);
    }
  }
}

std::vector<u32> SharedRdu::shadow_lines(const std::vector<u32>& lane_addrs,
                                         u32 line_bytes) const {
  // Each granule's software shadow entry is 2 bytes; entries are packed
  // densely in the per-SM shadow array mirrored to global memory.
  std::vector<u32> lines;
  for (u32 addr : lane_addrs) {
    const u32 entry_offset = (addr / granularity_) * 2;
    const u32 line = entry_offset / line_bytes;
    if (std::find(lines.begin(), lines.end(), line) == lines.end()) lines.push_back(line);
  }
  return lines;
}

u32 SharedRdu::reset_region(u32 base, u32 bytes, u32 banks) {
  const u32 first = base / granularity_;
  const u32 last = std::min<u32>(static_cast<u32>(shadow_.size()),
                                 static_cast<u32>(ceil_div(base + bytes, granularity_)));
  for (u32 g = first; g < last; ++g) shadow_[g] = 0;
  ++resets_;
  const u32 entries = last > first ? last - first : 0;
  return static_cast<u32>(ceil_div(entries, std::max(banks, 1u)));
}

void SharedRdu::export_stats(StatSet& stats) const {
  stats.add("shared_rdu.checks", checks_);
  stats.add("shared_rdu.races", races_);
  stats.add("shared_rdu.barrier_resets", resets_);
}

}  // namespace haccrg::rd
