#include "haccrg/shared_rdu.hpp"

#include <algorithm>

namespace haccrg::rd {

namespace {
constexpr u32 kNoTag = ~0u;  // slot has never held a granule
}

SharedRdu::SharedRdu(u32 sm_id, u32 smem_bytes, const HaccrgConfig& config,
                     const DetectPolicy& policy, RaceStaging& staging)
    : sm_id_(sm_id), granularity_(config.shared_granularity),
      num_granules_(static_cast<u32>(ceil_div(smem_bytes, config.shared_granularity))),
      capacity_(config.shared_shadow_capacity != 0 &&
                        config.shared_shadow_capacity < num_granules_
                    ? config.shared_shadow_capacity
                    : 0),
      policy_(policy), staging_(&staging),
      shadow_(capacity_ != 0 ? capacity_ : num_granules_, 0) {
  if (capacity_ != 0) tags_.assign(capacity_, kNoTag);
}

void SharedRdu::check(const AccessInfo& access) {
  const u32 first = access.addr / granularity_;
  const u32 last = (access.addr + access.size - 1) / granularity_;
  const u16 t = access.thread_slot & 0x3ff;
  for (u32 g = first; g <= last && g < num_granules_; ++g) {
    if (!shard_owns(static_cast<Addr>(g) * granularity_, shard_count_, shard_index_)) continue;
    ++checks_;
    u32 slot = g;
    if (capacity_ != 0) {
      // Direct-mapped finite table: a conflicting granule displaces the
      // current owner. Resetting to the initial state can hide a race
      // the full table would have caught, so occupied displacements are
      // counted — they feed rd.evictions / rd.coverage_lost.
      slot = g % capacity_;
      if (tags_[slot] != g) {
        if (shadow_[slot] != 0) {
          ++evictions_;
          shadow_[slot] = 0;
        }
        tags_[slot] = g;
      }
    }
    if (faults_ != nullptr) {
      u32 bit = 0;
      if (faults_->shared_shadow_flip(sm_id_, bit))
        shadow_[slot] = static_cast<u16>(shadow_[slot] ^ (1u << bit));
    }
    // Word-level fast path on the packed entry: the state-machine cases
    // that provably neither mutate the entry nor report a race skip the
    // unpack/dispatch/pack round-trip. Packing is bit0 = !M, bit1 = !S,
    // tid << 2 (see SharedShadowEntry), so raw & 3 identifies the state:
    //   3 -> state 2 (read-only): a same-thread/same-warp read is a no-op;
    //   2 -> state 3 (written):   any same-thread access is a no-op;
    //   1 -> state 4 (multi-read): any read is a no-op.
    const u16 raw = shadow_[slot];
    const u16 stored_tid = static_cast<u16>(raw >> 2);
    const bool same_thread = stored_tid == t;
    const bool warp_ordered =
        !policy_.warp_regrouping && (stored_tid / policy_.warp_size) == access.warp_in_sm;
    switch (raw & 3) {
      case 3:
        if (!access.is_write && (same_thread || warp_ordered)) continue;
        break;
      case 2:
        if (same_thread) continue;
        break;
      case 1:
        if (!access.is_write) continue;
        break;
      default:
        break;  // state 1 always claims the entry
    }
    SharedShadowEntry entry = SharedShadowEntry::unpack(raw);
    AccessInfo granule_access = access;
    granule_access.addr = g * granularity_;
    CheckOutcome out = check_shared_access(entry, granule_access, policy_);
    if (out.entry_changed) shadow_[slot] = entry.pack();
    if (out.race) {
      out.race->sm_id = sm_id_;
      ++races_;
      staging_->record(*out.race);
    }
  }
}

std::vector<u32> SharedRdu::shadow_lines(const std::vector<u32>& lane_addrs,
                                         u32 line_bytes) const {
  // Each granule's software shadow entry is 2 bytes; entries are packed
  // densely in the per-SM shadow array mirrored to global memory.
  std::vector<u32> lines;
  for (u32 addr : lane_addrs) {
    const u32 entry_offset = (addr / granularity_) * 2;
    const u32 line = entry_offset / line_bytes;
    if (std::find(lines.begin(), lines.end(), line) == lines.end()) lines.push_back(line);
  }
  return lines;
}

u32 SharedRdu::reset_region(u32 base, u32 bytes, u32 banks) {
  const u32 first = base / granularity_;
  const u32 last = std::min<u32>(num_granules_,
                                 static_cast<u32>(ceil_div(base + bytes, granularity_)));
  if (capacity_ == 0) {
    for (u32 g = first; g < last; ++g) shadow_[g] = 0;
  } else {
    // Only slots still owned by a granule in the region are reset; a
    // slot stolen by a conflicting granule belongs to that granule now.
    for (u32 g = first; g < last; ++g) {
      const u32 slot = g % capacity_;
      if (tags_[slot] == g) shadow_[slot] = 0;
    }
  }
  ++resets_;
  // The invalidation hardware sweeps the region's address range either
  // way, so the cycle cost does not depend on the table's capacity.
  const u32 entries = last > first ? last - first : 0;
  return static_cast<u32>(ceil_div(entries, std::max(banks, 1u)));
}

void SharedRdu::export_stats(StatSet& stats) const {
  stats.add("shared_rdu.checks", checks_);
  stats.add("shared_rdu.races", races_);
  stats.add("shared_rdu.barrier_resets", resets_);
  if (evictions_ != 0) stats.add("rd.evictions", evictions_);
}

}  // namespace haccrg::rd
