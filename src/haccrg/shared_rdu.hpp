// Shared-memory Race Detection Unit (Section IV-A). One per SM. In the
// default hardware placement the shadow entries are dedicated per-SM
// storage checked in parallel with the banks (no per-access cycle cost;
// the visible overhead is the barrier-time invalidation). In the
// global-memory placement (Figure 8) the entries live in device memory
// and are fetched through the L1 — the RDU then reports which shadow
// lines each warp access touches so the SM can model that traffic.
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "haccrg/id_regs.hpp"
#include "haccrg/options.hpp"
#include "haccrg/race.hpp"
#include "haccrg/shadow.hpp"

namespace haccrg::rd {

class SharedRdu {
 public:
  /// Races are appended to `staging`, which the owning SM drains into the
  /// run's RaceLog at the epoch barrier (keeps the RDU thread-confined
  /// when SMs step in parallel).
  SharedRdu(u32 sm_id, u32 smem_bytes, const HaccrgConfig& config, const DetectPolicy& policy,
            RaceStaging& staging);

  /// Check one lane's shared-memory access and update the shadow state.
  void check(const AccessInfo& access);

  /// Shadow lines (global shadow-region offsets) covering the granules of
  /// the given lane addresses — only meaningful in the kGlobalMemory
  /// placement, where each line must be fetched through the L1.
  std::vector<u32> shadow_lines(const std::vector<u32>& lane_addrs, u32 line_bytes) const;

  /// Barrier reached: invalidate the shadow entries of the block's shared
  /// region. Returns the invalidation cost in cycles (entries reset
  /// `banks` at a time, matching the parallel comparators).
  u32 reset_region(u32 base, u32 bytes, u32 banks);

  u64 checks() const { return checks_; }
  u64 races_found() const { return races_; }
  void export_stats(StatSet& stats) const;

  /// Direct shadow inspection for tests.
  SharedShadowEntry entry_at(u32 addr) const {
    return SharedShadowEntry::unpack(shadow_[addr / granularity_]);
  }

 private:
  u32 sm_id_;
  u32 granularity_;
  DetectPolicy policy_;
  RaceStaging* staging_;
  std::vector<u16> shadow_;  // one packed entry per granule; 0 == initial
  u64 checks_ = 0;
  u64 races_ = 0;
  u64 resets_ = 0;
};

}  // namespace haccrg::rd
