// Shared-memory Race Detection Unit (Section IV-A). One per SM. In the
// default hardware placement the shadow entries are dedicated per-SM
// storage checked in parallel with the banks (no per-access cycle cost;
// the visible overhead is the barrier-time invalidation). In the
// global-memory placement (Figure 8) the entries live in device memory
// and are fetched through the L1 — the RDU then reports which shadow
// lines each warp access touches so the SM can model that traffic.
//
// The table is fully provisioned (one entry per granule) by default.
// `HaccrgConfig::shared_shadow_capacity` models a cost-reduced table:
// a direct-mapped slot array where conflicting granules evict each
// other. An eviction resets the displaced entry to its initial state —
// a potential false negative — and is therefore counted in
// "rd.evictions"; degradation is always counted, never silent.
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "fault/fault.hpp"
#include "haccrg/id_regs.hpp"
#include "haccrg/options.hpp"
#include "haccrg/race.hpp"
#include "haccrg/shadow.hpp"

namespace haccrg::rd {

class SharedRdu {
 public:
  /// Races are appended to `staging`, which the owning SM drains into the
  /// run's RaceLog at the epoch barrier (keeps the RDU thread-confined
  /// when SMs step in parallel).
  SharedRdu(u32 sm_id, u32 smem_bytes, const HaccrgConfig& config, const DetectPolicy& policy,
            RaceStaging& staging);

  /// Arm fault injection (null = off). The injector's shared-shadow
  /// stream for this RDU's SM id is rolled once per granule check, so
  /// placement is thread-confined and deterministic.
  void set_faults(fault::FaultInjector* faults) { faults_ = faults; }

  /// Address-sharded replay (trace/replay.hpp): execute only granule
  /// checks owned by shard `index` of `count` (see shard_of_addr).
  /// Skipped granules are untouched — no state read/write, no counters —
  /// so the owning shard reproduces the serial sequence exactly.
  void set_shard(u32 count, u32 index) {
    shard_count_ = count;
    shard_index_ = index;
  }

  /// Check one lane's shared-memory access and update the shadow state.
  void check(const AccessInfo& access);

  /// Shadow lines (global shadow-region offsets) covering the granules of
  /// the given lane addresses — only meaningful in the kGlobalMemory
  /// placement, where each line must be fetched through the L1.
  std::vector<u32> shadow_lines(const std::vector<u32>& lane_addrs, u32 line_bytes) const;

  /// Barrier reached: invalidate the shadow entries of the block's shared
  /// region. Returns the invalidation cost in cycles (entries reset
  /// `banks` at a time, matching the parallel comparators).
  u32 reset_region(u32 base, u32 bytes, u32 banks);

  u64 checks() const { return checks_; }
  u64 races_found() const { return races_; }
  u64 evictions() const { return evictions_; }
  void export_stats(StatSet& stats) const;

  /// Direct shadow inspection for tests.
  SharedShadowEntry entry_at(u32 addr) const {
    const u32 g = addr / granularity_;
    if (capacity_ != 0) {
      const u32 slot = g % capacity_;
      return SharedShadowEntry::unpack(tags_[slot] == g ? shadow_[slot] : u16{0});
    }
    return SharedShadowEntry::unpack(shadow_[g]);
  }

 private:
  u32 sm_id_;
  u32 granularity_;
  u32 num_granules_;
  u32 capacity_;  // 0 = fully provisioned (shadow_[g] addressed directly)
  u32 shard_count_ = 1;
  u32 shard_index_ = 0;
  DetectPolicy policy_;
  RaceStaging* staging_;
  fault::FaultInjector* faults_ = nullptr;
  std::vector<u16> shadow_;  // one packed entry per granule (or per slot); 0 == initial
  std::vector<u32> tags_;    // granule owning each slot (finite mode only)
  u64 checks_ = 0;
  u64 races_ = 0;
  u64 resets_ = 0;
  u64 evictions_ = 0;
};

}  // namespace haccrg::rd
