// Bloom-filter "atomic ID" signatures tracking the set of locks a thread
// holds (Section III-B). A signature is a bit vector split into bins; an
// inserted lock address sets one bit per bin by direct indexing of its
// low-order word bits, mirroring the paper's design (and prior CPU work
// it cites). Signatures are cleared when a thread releases its last lock.
#pragma once

#include "common/types.hpp"

namespace haccrg::rd {

/// Geometry of a signature. total_bits must be divisible by bins and each
/// bin must hold a power-of-two number of bits.
struct BloomGeometry {
  u32 total_bits = 16;
  u32 bins = 2;

  u32 bits_per_bin() const { return total_bits / bins; }
  bool valid() const {
    return bins > 0 && total_bits % bins == 0 && is_pow2(bits_per_bin()) &&
           total_bits <= 32;
  }
};

/// A signature value (up to 32 bits, matching the paper's largest sweep).
class BloomSignature {
 public:
  BloomSignature() = default;
  explicit BloomSignature(u32 bits) : bits_(bits) {}

  /// Insert a lock-variable address.
  void insert(Addr lock_addr, const BloomGeometry& geom);

  /// Clear all entries (thread released its last lock).
  void clear() { bits_ = 0; }

  bool empty() const { return bits_ == 0; }
  u32 bits() const { return bits_; }

  /// Bitwise AND of two signatures (the lockset intersection).
  static BloomSignature intersect(BloomSignature a, BloomSignature b) {
    return BloomSignature(a.bits_ & b.bits_);
  }

  /// True when the intersection can be proven empty: some bin has no
  /// common bit, so no lock can be in both signatures.
  static bool intersection_null(BloomSignature a, BloomSignature b, const BloomGeometry& geom);

  bool operator==(const BloomSignature&) const = default;

 private:
  u32 bits_ = 0;
};

}  // namespace haccrg::rd
