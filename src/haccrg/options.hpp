// Configuration of the HAccRG race-detection hardware (Sections III-IV).
#pragma once

#include <string>

#include "common/types.hpp"

namespace haccrg::rd {

/// Where the shared-memory shadow entries live (Figure 8 experiment).
enum class SharedShadowPlacement {
  kHardware,      ///< dedicated per-SM storage, checks run beside the banks
  kGlobalMemory,  ///< entries in device memory, fetched through the L1
};

struct HaccrgConfig {
  bool enable_shared = false;  ///< shared-memory race detection
  bool enable_global = false;  ///< global-memory race detection

  /// Tracking granularity (bytes per shadow entry), Section IV-C.
  /// The paper settles on 16 B shared / 4 B global.
  u32 shared_granularity = 16;
  u32 global_granularity = 4;

  /// Bloom-filter atomic ID geometry (Section VI-A2; paper picks 16/2).
  u32 bloom_bits = 16;
  u32 bloom_bins = 2;

  SharedShadowPlacement shared_shadow = SharedShadowPlacement::kHardware;

  /// When warps are dynamically re-grouped the intra-warp filter is
  /// unsound, so races are reported regardless of warp (Section III-A).
  bool warp_regrouping = false;

  /// Ablation switch: disable the Section III-C fence gate so every
  /// cross-thread read-after-write between barriers is reported.
  bool disable_fence_gate = false;

  /// Opt-in: suppress RDU shadow checks for accesses the static race
  /// analysis proved safe (LaunchConfig::static_report must be set with
  /// a report computed at this config's granularities). Detection
  /// results are unchanged; shadow traffic and check work drop.
  bool static_filter = false;

  /// Stop recording after this many unique races (reporting only; checks
  /// continue so timing is unaffected).
  u32 max_recorded_races = 4096;

  bool any_enabled() const { return enable_shared || enable_global; }

  std::string describe() const;
};

}  // namespace haccrg::rd
