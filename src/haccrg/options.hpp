// Configuration of the HAccRG race-detection hardware (Sections III-IV).
#pragma once

#include <string>

#include "common/status.hpp"
#include "common/types.hpp"
// Granule shard ownership (shard_of_addr and friends) lives in its own
// header so trace replay and the live engine's sharded commit share one
// definition; re-included here because every sharding call site already
// pulls in the detector options.
#include "haccrg/sharding.hpp"

namespace haccrg::rd {

/// Where the shared-memory shadow entries live (Figure 8 experiment).
enum class SharedShadowPlacement {
  kHardware,      ///< dedicated per-SM storage, checks run beside the banks
  kGlobalMemory,  ///< entries in device memory, fetched through the L1
};

struct HaccrgConfig {
  bool enable_shared = false;  ///< shared-memory race detection
  bool enable_global = false;  ///< global-memory race detection

  /// Tracking granularity (bytes per shadow entry), Section IV-C.
  /// The paper settles on 16 B shared / 4 B global.
  u32 shared_granularity = 16;
  u32 global_granularity = 4;

  /// Bloom-filter atomic ID geometry (Section VI-A2; paper picks 16/2).
  u32 bloom_bits = 16;
  u32 bloom_bins = 2;

  SharedShadowPlacement shared_shadow = SharedShadowPlacement::kHardware;

  /// When warps are dynamically re-grouped the intra-warp filter is
  /// unsound, so races are reported regardless of warp (Section III-A).
  bool warp_regrouping = false;

  /// Ablation switch: disable the Section III-C fence gate so every
  /// cross-thread read-after-write between barriers is reported.
  bool disable_fence_gate = false;

  /// Opt-in: suppress RDU shadow checks for accesses the static race
  /// analysis proved safe (LaunchConfig::static_report must be set with
  /// a report computed at this config's granularities). Detection
  /// results are unchanged; shadow traffic and check work drop.
  bool static_filter = false;

  /// Stop recording after this many unique races (reporting only; checks
  /// continue so timing is unaffected).
  u32 max_recorded_races = 4096;

  /// Finite shared shadow table: number of direct-mapped entry slots per
  /// SM. 0 = fully provisioned (one slot per granule, today's behavior).
  /// With a finite table, conflicting granules evict each other; every
  /// eviction is counted in "rd.evictions" / "rd.coverage_lost", never
  /// silent.
  u32 shared_shadow_capacity = 0;

  /// Unique-race dedup-table saturation bound: once this many distinct
  /// race keys are tracked, further *new* keys are dropped and counted
  /// in "rd.race_log_saturated". 0 = unbounded. The default is far above
  /// anything the bundled kernels produce, so goldens are unaffected,
  /// while a pathological (or fault-injected) run can no longer grow the
  /// table without bound.
  u32 max_unique_races = 1u << 20;

  bool any_enabled() const { return enable_shared || enable_global; }

  /// Rejects configurations that would previously hit UB, silent
  /// clamping, or an assert deep inside the detectors: non-power-of-two
  /// or absurd granularities, invalid Bloom geometry, zero log bounds,
  /// and flag combinations whose semantics conflict.
  Status validate() const;

  std::string describe() const;
};

}  // namespace haccrg::rd
