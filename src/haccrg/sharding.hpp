// Granule shard ownership — the single home for the address-sharding
// math shared by trace replay (src/trace/replay.cpp), the serving
// workers (src/serve), and the live engine's sharded commit phase
// (src/sim/engine.cpp). Detector state is confined per granule, so work
// partitions cleanly by aligned 4 KiB address blocks: a granule never
// spans a block (granularities are powers of two <= 4096), every
// functional memory access lies inside one block (u8 always; u32/u64
// accessors require natural alignment), and therefore the shard that
// owns a block executes exactly the serial engine's effect sequence for
// every address in it. Per-shard race sets and memory effects are
// disjoint by construction, which is what makes both the sharded replay
// and the sharded live commit byte-identical to serial for any shard
// count. Shared addresses are SM-local and global addresses are heap
// offsets; the two live in separate detector state, so one ownership
// function serves both.
#pragma once

#include "common/types.hpp"

namespace haccrg::rd {

/// Ownership block size: aligned 4 KiB address blocks.
inline constexpr u32 kShardBlockShift = 12;

/// Which shard of `shard_count` owns the block containing `addr`.
inline u32 shard_of_addr(Addr addr, u32 shard_count) {
  return shard_count <= 1 ? 0 : static_cast<u32>((addr >> kShardBlockShift) % shard_count);
}

/// Does shard `shard_index` of `shard_count` own `addr`'s block?
inline bool shard_owns(Addr addr, u32 shard_count, u32 shard_index) {
  return shard_count <= 1 || shard_of_addr(addr, shard_count) == shard_index;
}

}  // namespace haccrg::rd
