// Per-SM HAccRG identifier registers (Section IV-B "Storage"):
//  * per-block-slot 8-bit sync IDs (logical barrier clocks), incremented
//    at a barrier only if the block touched global memory since its last
//    barrier — the paper's optimization to bound increments;
//  * per-warp-slot 8-bit fence IDs (logical fence clocks);
//  * per-thread-slot Bloom-filter atomic IDs with critical-section depth.
//
// The collection of fence-ID tables across all SMs is the "race register
// file" the global RDUs read; in hardware it is replicated per memory
// slice, here a single authoritative copy is shared (timing for the
// replica reads is folded into the RDU's fixed check cost).
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"
#include "haccrg/bloom.hpp"

namespace haccrg::rd {

class SmIdRegisters {
 public:
  SmIdRegisters(u32 max_blocks, u32 max_warps, u32 max_threads)
      : sync_ids_(max_blocks, 0), global_touched_(max_blocks, false), fence_ids_(max_warps, 0),
        sigs_(max_threads), cs_depth_(max_threads, 0) {}

  // --- Sync IDs (per block slot) ---
  u8 sync_id(u32 block_slot) const { return sync_ids_[block_slot]; }

  /// Mark that the block touched global memory since its last barrier.
  void note_global_access(u32 block_slot) { global_touched_[block_slot] = true; }

  /// Called when the block passes a barrier; bumps the sync ID only if
  /// global memory was accessed since the previous barrier (the paper's
  /// increment-suppression optimization). `force` disables the
  /// optimization for the ablation study.
  void on_barrier(u32 block_slot, bool force = false) {
    ++barrier_events_;
    if (force || global_touched_[block_slot]) {
      ++sync_ids_[block_slot];  // 8-bit wrap is intentional (Sec. VI-A2)
      ++sync_increments_;
      global_touched_[block_slot] = false;
    }
  }

  /// Ablation counters: barriers seen vs sync-ID increments actually
  /// performed (Section VI-A2 notes at most 5 increments in practice).
  u64 barrier_events() const { return barrier_events_; }
  u64 sync_increments() const { return sync_increments_; }

  /// A new block launched into this slot. Hardware does not reset the
  /// counter — stale shadow entries from the previous tenant then fail
  /// the sync-ID match and are treated as ordered, which is the paper's
  /// implicit slot-reuse behavior. We bump to guarantee a fresh epoch.
  void on_block_launch(u32 block_slot) {
    ++sync_ids_[block_slot];
    global_touched_[block_slot] = false;
  }

  // --- Fence IDs (per warp slot) ---
  u8 fence_id(u32 warp_slot) const { return fence_ids_[warp_slot]; }
  void on_fence(u32 warp_slot) { ++fence_ids_[warp_slot]; }

  // --- Atomic IDs (per thread slot) ---
  const BloomSignature& sig(u32 thread_slot) const { return sigs_[thread_slot]; }
  bool in_cs(u32 thread_slot) const { return cs_depth_[thread_slot] > 0; }

  void on_lock_acquired(u32 thread_slot, Addr lock_addr, const BloomGeometry& geom) {
    sigs_[thread_slot].insert(lock_addr, geom);
    ++cs_depth_[thread_slot];
  }

  void on_lock_releasing(u32 thread_slot) {
    if (cs_depth_[thread_slot] > 0 && --cs_depth_[thread_slot] == 0) {
      // Clearing on release of the last lock is the paper's low-overhead
      // removal mechanism (nesting levels are tiny in practice).
      sigs_[thread_slot].clear();
    }
  }

  /// Reset a thread slot when a new block launches over it.
  void reset_thread(u32 thread_slot) {
    sigs_[thread_slot].clear();
    cs_depth_[thread_slot] = 0;
  }

  /// Reset every register to its construction state without touching
  /// vector capacity — the replay arena's clear-don't-free path between
  /// kernels.
  void reset() {
    barrier_events_ = 0;
    sync_increments_ = 0;
    std::fill(sync_ids_.begin(), sync_ids_.end(), u8{0});
    std::fill(global_touched_.begin(), global_touched_.end(), false);
    std::fill(fence_ids_.begin(), fence_ids_.end(), u8{0});
    for (BloomSignature& sig : sigs_) sig.clear();
    std::fill(cs_depth_.begin(), cs_depth_.end(), u8{0});
  }

  // --- Fault-injection mutators (src/fault) ---
  // Model storage-cell loss in the identifier registers: a dropped ID
  // falls back to the reset value, which can order accesses that were
  // racing (a counted false-negative source) or split an epoch (extra
  // reports). Only the injector calls these.
  void drop_sync_id(u32 block_slot) {
    sync_ids_[block_slot] = 0;
    global_touched_[block_slot] = false;
  }
  void drop_fence_id(u32 warp_slot) { fence_ids_[warp_slot] = 0; }
  void corrupt_sig(u32 thread_slot, u32 bit) {
    sigs_[thread_slot] = BloomSignature(sigs_[thread_slot].bits() ^ (1u << (bit % 32)));
  }

 private:
  u64 barrier_events_ = 0;
  u64 sync_increments_ = 0;
  std::vector<u8> sync_ids_;
  std::vector<bool> global_touched_;
  std::vector<u8> fence_ids_;
  std::vector<BloomSignature> sigs_;
  std::vector<u8> cs_depth_;
};

}  // namespace haccrg::rd
