// Race records and the deduplicating race log.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace haccrg::rd {

/// Dependence flavor of the race (Figure 3).
enum class RaceType : u8 { kWaw, kWar, kRaw };

/// Which detection mechanism fired.
enum class RaceMechanism : u8 {
  kBarrier,       ///< happens-before between barriers (Section III-A)
  kLockset,       ///< critical-section lockset (Section III-B)
  kFence,         ///< missing memory fence (Section III-C)
  kL1Stale,       ///< cross-SM RAW observed through a stale L1 hit (Sec. IV-B)
  kIntraWarpWaw,  ///< same-warp same-granule WAW caught before issue
};

/// Memory space the racy granule lives in.
enum class MemSpace : u8 { kShared, kGlobal };

std::string_view race_type_name(RaceType t);
std::string_view race_mechanism_name(RaceMechanism m);

/// One detected race.
struct RaceRecord {
  RaceType type = RaceType::kWaw;
  RaceMechanism mechanism = RaceMechanism::kBarrier;
  MemSpace space = MemSpace::kGlobal;
  Addr granule_addr = 0;  ///< granule base address (SM-local for shared)
  u32 sm_id = 0;
  u16 first_thread = 0;   ///< thread slot recorded in the shadow entry
  u16 second_thread = 0;  ///< thread slot of the access that triggered it
  u32 pc = 0;             ///< pc of the triggering access
  Cycle cycle = 0;

  std::string describe() const;
};

class RaceLog;

/// Thread-confined staging buffer for race records. Detection code that
/// runs inside a parallel epoch phase (per-SM shared RDUs, the intra-warp
/// WAW filter) appends here instead of touching the run's RaceLog, and
/// the engine replays the records into the log at the epoch barrier in
/// deterministic SM-id order, so dedup counts and the recording cap
/// behave exactly as in a sequential run.
class RaceStaging {
 public:
  void record(const RaceRecord& race) { records_.push_back(race); }
  bool empty() const { return records_.empty(); }
  const std::vector<RaceRecord>& records() const { return records_; }

  /// Drop staged records, keeping capacity (arena reuse between kernels).
  void clear() { records_.clear(); }

  /// Replay every staged record into `log` (in staging order) and clear.
  void drain_into(RaceLog& log);

 private:
  std::vector<RaceRecord> records_;
};

/// Collects races, deduplicating by (space, granule, type, mechanism, pc).
///
/// Dedup lookups sit on the detection hot path (every dynamic race of a
/// buggy or injected kernel lands here), so the seen-set is a flat
/// open-addressing hash table rather than a node-based map: one pow2
/// array of 16-byte slots, linear probing, no per-insert allocation.
class RaceLog {
 public:
  explicit RaceLog(u32 max_recorded = 4096) : max_recorded_(max_recorded) {
    seen_.resize(kInitialSlots);
  }

  /// Saturation bound on the dedup table itself: once `max_unique`
  /// distinct keys are tracked, further *new* keys are dropped (counted
  /// in `saturated()`) instead of growing the table without bound.
  /// 0 = unbounded. Existing keys still deduplicate normally.
  void set_max_unique(u32 max_unique) { max_unique_ = max_unique; }

  /// Record a race; returns true if it was new (not a duplicate).
  bool record(const RaceRecord& race);

  u64 total() const { return total_; }
  /// New race keys dropped because the dedup table was saturated — each
  /// is a distinct race location the log could not account for, so it
  /// feeds rd.coverage_lost.
  u64 saturated() const { return saturated_; }
  u64 unique() const { return static_cast<u64>(races_.size()); }
  u64 count(RaceMechanism m) const;
  u64 count(RaceType t) const;
  u64 count(MemSpace s) const;
  const std::vector<RaceRecord>& races() const { return races_; }
  bool empty() const { return races_.empty(); }
  void clear();

  std::string summary() const;

 private:
  /// One dedup slot. `count` doubles as the occupancy flag (0 == empty;
  /// a recorded key always has count >= 1), so the table needs no
  /// separate metadata array and clear() is a plain fill.
  struct Slot {
    u64 key_lo = 0;  ///< granule | pc << 32
    u32 key_hi = 0;  ///< space | type << 8 | mechanism << 16
    u32 count = 0;
  };
  static constexpr u32 kInitialSlots = 1024;  // pow2; grown at 70% load

  void grow();

  u32 max_recorded_;
  u32 max_unique_ = 0;  ///< 0 = unbounded
  u64 total_ = 0;
  u64 saturated_ = 0;
  u64 occupied_ = 0;  ///< live slots in seen_ (load-factor bookkeeping)
  std::vector<Slot> seen_;
  std::vector<RaceRecord> races_;
};

}  // namespace haccrg::rd
