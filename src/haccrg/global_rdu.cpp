#include "haccrg/global_rdu.hpp"

namespace haccrg::rd {

GlobalRdu::GlobalRdu(mem::DeviceMemory& memory, const HaccrgConfig& config,
                     const DetectPolicy& policy, RaceLog& log, FenceIdReader fence_reader)
    : memory_(&memory), granularity_(config.global_granularity), policy_(policy), log_(&log),
      fence_reader_(std::move(fence_reader)) {}

u32 GlobalRdu::shadow_bytes_for(u32 app_bytes, u32 granularity) {
  return static_cast<u32>(ceil_div(app_bytes, granularity)) * kEntryBytes;
}

void GlobalRdu::init_shadow(Addr shadow_base, u32 app_bytes) {
  shadow_base_ = shadow_base;
  app_bytes_ = app_bytes;
  shadow_bytes_ = shadow_bytes_for(app_bytes, granularity_);
  memory_->fill(shadow_base_, shadow_bytes_, 0);  // all-zero == initial state
  last_write_.assign(ceil_div(app_bytes, granularity_), 0);
}

GlobalShadowEntry GlobalRdu::entry_at(Addr app_addr) const {
  const u32 granule = app_addr / granularity_;
  return GlobalShadowEntry::unpack(memory_->read_u64(shadow_base_ + granule * kEntryBytes));
}

CheckOutcome GlobalRdu::check_granule(u32 g, const AccessInfo& access, bool allow_faults,
                                      Addr& entry_addr_out) {
  entry_addr_out = shadow_base_ + g * kEntryBytes;
  u64 raw = memory_->read_u64(entry_addr_out);
  if (allow_faults && faults_ != nullptr) {
    // Transient read-path flip: the corrupted word feeds this check,
    // and persists only if the state machine writes the entry back.
    u32 bit = 0;
    if (faults_->global_shadow_flip(bit)) raw ^= u64{1} << bit;
  }
  GlobalShadowEntry entry = GlobalShadowEntry::unpack(raw);
  AccessInfo granule_access = access;
  granule_access.addr = g * granularity_;
  // Stale-L1 qualification: only an L1 line filled before the granule's
  // last write can serve stale data.
  if (granule_access.l1_hit && granule_access.l1_fill_cycle >= last_write_[g]) {
    granule_access.l1_hit = false;
  }
  if (granule_access.is_write) last_write_[g] = granule_access.cycle;
  CheckOutcome out = check_global_access(entry, granule_access, policy_, fence_reader_);
  if (out.entry_changed) memory_->write_u64(entry_addr_out, entry.pack());
  return out;
}

void GlobalRdu::check(const AccessInfo& access, std::vector<Addr>& shadow_lines_out) {
  if (access.addr >= app_bytes_) return;  // outside the tracked heap
  const u32 first = access.addr / granularity_;
  const u32 last = (access.addr + access.size - 1) / granularity_;
  for (u32 g = first; g <= last; ++g) {
    if (static_cast<u64>(g) * granularity_ >= app_bytes_) break;
    if (!shard_owns(static_cast<Addr>(g) * granularity_, shard_count_, shard_index_)) continue;
    ++checks_;
    Addr entry_addr = 0;
    CheckOutcome out = check_granule(g, access, /*allow_faults=*/true, entry_addr);
    if (out.entry_changed) ++shadow_writes_;
    if (out.race) {
      ++races_;
      log_->record(*out.race);
    }
    shadow_lines_out.push_back(entry_addr);
  }
}

void GlobalRdu::check_sharded(const AccessInfo& access, u32 shard_count, u32 shard_index,
                              u32 op_ord, u32 check_idx, CommitEffects& out) {
  if (access.addr >= app_bytes_) return;
  const u32 first = access.addr / granularity_;
  const u32 last = (access.addr + access.size - 1) / granularity_;
  for (u32 g = first; g <= last; ++g) {
    if (static_cast<u64>(g) * granularity_ >= app_bytes_) break;
    if (!shard_owns(static_cast<Addr>(g) * granularity_, shard_count, shard_index)) continue;
    ++out.checks;
    Addr entry_addr = 0;
    // Faults are never rolled here: the engine routes fault campaigns
    // through the serial commit path (see check_sharded's contract).
    CheckOutcome res = check_granule(g, access, /*allow_faults=*/false, entry_addr);
    if (res.entry_changed) ++out.shadow_writes;
    if (res.race) {
      ++out.races_found;
      out.races.push_back({op_ord, check_idx, *res.race});
    }
    out.shadow.push_back({op_ord, entry_addr});
  }
}

void GlobalRdu::export_stats(StatSet& stats) const {
  stats.add("global_rdu.checks", checks_);
  stats.add("global_rdu.races", races_);
  stats.add("global_rdu.shadow_writes", shadow_writes_);
  stats.set("global_rdu.shadow_bytes", shadow_bytes_);
}

}  // namespace haccrg::rd
