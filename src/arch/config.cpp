#include "arch/config.hpp"

#include <sstream>

namespace haccrg::arch {

std::string GpuConfig::validate() const {
  auto fail = [](const char* msg) { return std::string(msg); };
  if (!is_pow2(warp_size)) return fail("warp_size must be a power of two");
  if (simd_width == 0 || warp_size % simd_width != 0)
    return fail("warp_size must be a multiple of simd_width");
  if (max_threads_per_sm % warp_size != 0)
    return fail("max_threads_per_sm must be a multiple of warp_size");
  if (!is_pow2(shared_mem_banks)) return fail("shared_mem_banks must be a power of two");
  if (!is_pow2(l1_line) || !is_pow2(l2_line)) return fail("cache lines must be powers of two");
  if (l1_size % (l1_ways * l1_line) != 0) return fail("l1 size/ways/line mismatch");
  if (l2_slice_size % (l2_ways * l2_line) != 0) return fail("l2 size/ways/line mismatch");
  if (num_mem_partitions == 0 || num_sms == 0) return fail("need at least one SM and partition");
  if (max_blocks_per_sm == 0) return fail("max_blocks_per_sm must be positive");
  return {};
}

std::string GpuConfig::describe() const {
  std::ostringstream out;
  out << "# SMs / GPU Clusters          : " << num_sms << " / " << num_clusters << "\n"
      << "SIMD Pipeline Width / Warp    : " << simd_width << " / " << warp_size << "\n"
      << "# Threads / Registers per SM  : " << max_threads_per_sm << " / " << registers_per_sm
      << "\n"
      << "Warp Scheduling               : Round Robin\n"
      << "Shared Memory per SM          : " << shared_mem_per_sm / 1024 << "KB, "
      << shared_mem_banks << " banks\n"
      << "L1 Data Cache per SM          : " << l1_size / 1024 << "KB / " << l1_ways << " way / "
      << l1_line << "B line (non-coherent, global write-through)\n"
      << "Unified L2 Cache              : " << l2_slice_size / 1024 << "KB per slice / " << l2_ways
      << " way / " << l2_line << "B line\n"
      << "# Memory Slices               : " << num_mem_partitions << "\n"
      << "DRAM Request Queue Size       : " << dram_queue_size << "\n"
      << "DRAM Latency / Burst          : " << dram_latency << " / " << dram_burst_cycles
      << " cycles\n"
      << "Interconnect Latency          : " << icnt_latency << " cycles\n"
      << "Device Memory                 : " << device_mem_bytes / (1024 * 1024) << "MB\n";
  return out.str();
}

}  // namespace haccrg::arch
