// GPU hardware configuration, mirroring the paper's Table I (GPGPU-Sim
// 3.0.2 modelling an NVIDIA Quadro FX5800 with Fermi-style L1/L2 caches).
#pragma once

#include <string>

#include "common/types.hpp"

namespace haccrg::arch {

/// All timing/capacity parameters of the simulated GPU. Defaults follow
/// Table I of the paper; every field is overridable for experiments.
struct GpuConfig {
  // --- Compute ---
  u32 num_sms = 30;              ///< streaming multiprocessors
  u32 num_clusters = 10;         ///< SM clusters (3 SMs per cluster)
  u32 simd_width = 8;            ///< SPs per SM: a 32-thread warp issues over 4 cycles
  u32 warp_size = 32;            ///< threads per warp
  u32 max_threads_per_sm = 1024; ///< concurrent thread contexts per SM
  u32 max_blocks_per_sm = 8;     ///< concurrent thread-block slots per SM
  u32 registers_per_sm = 16384;  ///< register file entries per SM

  // --- Shared memory ---
  u32 shared_mem_per_sm = 16 * 1024;  ///< bytes of scratchpad per SM
  u32 shared_mem_banks = 16;          ///< banks; conflicts serialize
  u32 shared_mem_latency = 4;         ///< cycles for a conflict-free access

  // --- L1 data cache (per SM, non-coherent; global stores write through) ---
  u32 l1_size = 48 * 1024;
  u32 l1_ways = 6;
  u32 l1_line = 128;
  u32 l1_latency = 4;  ///< hit latency in cycles

  // --- Unified L2 cache (one slice per memory partition, coherent) ---
  u32 l2_slice_size = 64 * 1024;
  u32 l2_ways = 8;
  u32 l2_line = 128;
  u32 l2_latency = 20;  ///< hit latency in cycles

  // --- Memory system ---
  u32 num_mem_partitions = 8;    ///< memory slices (L2 slice + DRAM channel each)
  u32 dram_queue_size = 32;      ///< per-channel request queue entries
  u32 dram_latency = 100;        ///< cycles from issue to first data
  /// Channel busy cycles per 128B transfer: FX5800-class GDDR3 delivers
  /// ~102 GB/s over 8 slices at a ~1.3 GHz core clock, i.e. ~10 B per
  /// core cycle per slice -> ~12 cycles per 128 B line.
  u32 dram_burst_cycles = 12;
  u32 icnt_latency = 8;          ///< interconnect traversal latency (cycles)
  u32 icnt_flits_per_cycle = 1;  ///< accepted packets per direction per cycle

  // --- Execution timing ---
  u32 alu_initiation = 4;  ///< cycles a warp occupies issue for an ALU op (warp/simd)
  u32 atomic_latency = 24; ///< extra latency of an atomic at the L2 slice
  u32 fence_latency = 8;   ///< fixed cycles to drain a memory fence

  /// Device memory capacity in bytes (flat address space).
  u32 device_mem_bytes = 64u * 1024u * 1024u;

  /// Warps per SM at full occupancy.
  u32 warps_per_sm() const { return max_threads_per_sm / warp_size; }

  /// Cycles for a full warp to issue through the SIMD pipeline.
  u32 warp_issue_cycles() const { return warp_size / simd_width; }

  /// Memory partition that owns address `addr` (line-interleaved).
  u32 partition_of(Addr addr) const { return (addr / l2_line) % num_mem_partitions; }

  /// Validate invariants (pow2 sizes, divisibility); returns error or empty.
  std::string validate() const;

  /// Multi-line human-readable dump, in the shape of the paper's Table I.
  std::string describe() const;
};

}  // namespace haccrg::arch
