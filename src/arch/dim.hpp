// Grid/block dimensions and thread coordinate math. The simulator models
// one-dimensional grids and blocks (all the paper's kernels are 1-D or
// trivially linearized), so Dim3 keeps y/z for API familiarity but the
// launch path uses the linear extent.
#pragma once

#include "common/types.hpp"

namespace haccrg::arch {

/// CUDA-style dimension triple; linear extent is x*y*z.
struct Dim3 {
  u32 x = 1;
  u32 y = 1;
  u32 z = 1;

  constexpr u32 count() const { return x * y * z; }
};

/// Identity of one logical thread inside a launched grid.
struct ThreadCoord {
  u32 block = 0;   ///< linear block index within the grid
  u32 thread = 0;  ///< linear thread index within the block
};

/// Warp index of a thread within its block.
constexpr u32 warp_of(u32 thread_in_block, u32 warp_size) { return thread_in_block / warp_size; }

/// SIMD lane of a thread within its warp.
constexpr u32 lane_of(u32 thread_in_block, u32 warp_size) { return thread_in_block % warp_size; }

}  // namespace haccrg::arch
