#include "trace/writer.hpp"

#include <cerrno>
#include <cstring>

namespace haccrg::trace {

namespace {
constexpr size_t kFlushThreshold = 1u << 20;  // 1 MiB
}

TraceWriter::TraceWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr)
    error_ = "trace: cannot open '" + path + "' for writing: " + std::strerror(errno);
}

TraceWriter::~TraceWriter() { finish(); }

bool TraceWriter::write_header(const TraceHeader& header) {
  if (!ok() || file_ == nullptr) return false;
  encode_header(header, buffer_);
  return true;
}

bool TraceWriter::write_event(const Event& event) {
  if (!ok() || file_ == nullptr) return false;
  encode_event(event, last_cycle_, buffer_);
  ++events_;
  if (buffer_.size() >= kFlushThreshold) flush_buffer();
  return ok();
}

void TraceWriter::flush_buffer() {
  if (buffer_.empty() || file_ == nullptr || !ok()) return;
  if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) != buffer_.size())
    error_ = "trace: short write to '" + path_ + "': " + std::strerror(errno);
  bytes_ += buffer_.size();
  buffer_.clear();
}

bool TraceWriter::finish() {
  if (file_ == nullptr) return ok();
  flush_buffer();
  if (std::fclose(file_) != 0 && ok())
    error_ = "trace: close of '" + path_ + "' failed: " + std::strerror(errno);
  file_ = nullptr;
  return ok();
}

}  // namespace haccrg::trace
