#include "trace/writer.hpp"

#include <cerrno>
#include <cstring>

namespace haccrg::trace {

namespace {
constexpr size_t kFlushThreshold = 1u << 20;  // 1 MiB
}

TraceWriter::TraceWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr)
    error_ = "trace: cannot open '" + path + "' for writing: " + std::strerror(errno);
}

TraceWriter::~TraceWriter() { finish(); }

bool TraceWriter::write_header(const TraceHeader& header) {
  if (!ok() || file_ == nullptr) return false;
  if (index_enabled_) {
    TraceHeader indexed = header;
    indexed.version = kIndexedFormatVersion;
    encode_header(indexed, buffer_);
    return true;
  }
  encode_header(header, buffer_);
  return true;
}

bool TraceWriter::write_event(const Event& event) {
  if (!ok() || file_ == nullptr) return false;
  if (index_enabled_) {
    const u64 offset = current_offset();
    if (event.kind == EventKind::kKernelBegin) {
      if (!index_.kernels.empty()) {
        index_.kernels.back().end_offset = offset;
        index_.kernels.back().events = in_kernel_events_;
      }
      TraceIndexKernel kernel;
      kernel.begin_offset = offset;
      kernel.label = event.label;
      index_.kernels.push_back(std::move(kernel));
      in_kernel_events_ = 0;
    } else if (!index_.kernels.empty()) {
      if (in_kernel_events_ != 0 && in_kernel_events_ % kIndexChunkEvents == 0)
        index_.kernels.back().chunks.push_back({offset, last_cycle_, in_kernel_events_});
      ++in_kernel_events_;
    }
  }
  const size_t record_start = buffer_.size();
  encode_event(event, last_cycle_, buffer_);
  if (faults_ != nullptr && buffer_.size() > record_start) {
    // Damage this record in place: one byte XOR'd with a non-zero mask.
    // write_event runs only in serial engine phases, so the draw order
    // (and therefore the corrupted byte stream) is thread-count
    // invariant like the rest of the trace.
    u64 pick = 0;
    if (faults_->trace_corrupt(pick)) {
      const size_t record_len = buffer_.size() - record_start;
      const size_t offset = record_start + static_cast<size_t>(pick % record_len);
      const u8 mask = static_cast<u8>((pick >> 32) % 255 + 1);
      buffer_[offset] ^= mask;
    }
  }
  ++events_;
  if (buffer_.size() >= kFlushThreshold) flush_buffer();
  return ok();
}

void TraceWriter::flush_buffer() {
  if (buffer_.empty() || file_ == nullptr || !ok()) return;
  if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) != buffer_.size())
    error_ = "trace: short write to '" + path_ + "': " + std::strerror(errno);
  bytes_ += buffer_.size();
  buffer_.clear();
}

bool TraceWriter::finish() {
  if (file_ == nullptr) return ok();
  if (index_enabled_ && !index_written_ && ok()) {
    index_written_ = true;
    if (!index_.kernels.empty()) {
      index_.kernels.back().end_offset = current_offset();
      index_.kernels.back().events = in_kernel_events_;
    }
    encode_index(index_, current_offset(), buffer_);
  }
  flush_buffer();
  if (std::fclose(file_) != 0 && ok())
    error_ = "trace: close of '" + path_ + "' failed: " + std::strerror(errno);
  file_ = nullptr;
  return ok();
}

}  // namespace haccrg::trace
