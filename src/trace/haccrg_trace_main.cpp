// haccrg-trace: record, inspect, replay, and diff access traces.
//
// Exit codes (all subcommands): 0 success; 2 usage error or other
// failure; and for unreadable traces, a code per failure class so
// scripts can tell them apart: 3 missing/unreadable file, 4 bad magic
// (not a trace), 5 unsupported format version, 6 corrupt or truncated
// stream. `diff` additionally exits 1 when both inputs are readable but
// their race sets differ — "detectors disagree" (1) is distinct from
// "could not compare" (2..6). No input, however damaged, aborts or
// throws: every failure is a diagnosed exit code.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "kernels/common.hpp"
#include "sim/gpu.hpp"
#include "trace/index.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"

namespace {

using namespace haccrg;

/// Exit code for an unreadable trace (see the header comment).
int trace_exit_code(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
    case StatusCode::kIoError: return 3;
    case StatusCode::kBadMagic: return 4;
    case StatusCode::kVersionMismatch: return 5;
    case StatusCode::kCorrupt: return 6;
    default: return 2;
  }
}

int usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "haccrg-trace: %s\n\n", error);
  std::fprintf(stderr, "%s",
               "usage: haccrg-trace <command> [args]\n"
               "\n"
               "commands:\n"
               "  record --kernel NAME --out FILE.trc [options]\n"
               "      Run a registry kernel with tracing enabled.\n"
               "      --det combined|word|shared|off   detector config (default combined)\n"
               "      --scale N      workload scale multiplier (default 1)\n"
               "      --seed N       workload data seed (default 0)\n"
               "      --single-block run SCAN/KMEANS as designed (one block)\n"
               "      --inject KIND:SITE  inject a race; KIND is barrier, cross,\n"
               "                     fence, or critical\n"
               "      --threads N    simulator worker threads (default HACCRG_THREADS)\n"
               "      --races FILE   also write the live run's race set\n"
               "      --label STR    kernel label stored in the trace (default NAME)\n"
               "      --index        write a format-v2 trace with a seekable index\n"
               "  info FILE.trc\n"
               "      Print the header and per-kernel event/cycle counts.\n"
               "  dump FILE.trc [--limit N] [--kind NAME] [--resync]\n"
               "      Print decoded events (optionally only events of one kind).\n"
               "      --resync skips damaged records and resumes at the next\n"
               "      decodable boundary, reporting how much was lost.\n"
               "  replay FILE.trc [--races FILE] [--sw] [--grace] [--repeat N]\n"
               "      Stream the trace through the recorded hardware detectors\n"
               "      (--sw / --grace add the software emulators; --repeat for\n"
               "      timing). Prints per-kernel race totals.\n"
               "  diff A B\n"
               "      Compare race sets. Each input is either a trace (replayed\n"
               "      with the hardware detectors) or a race-set file written by\n"
               "      record/replay --races. Exits 0 when the sets are identical,\n"
               "      1 when they differ, 2 when an input cannot be read — so a\n"
               "      CI step can assert replay-vs-live equivalence directly.\n");
  return 2;
}

bool next_arg(int argc, char** argv, int& i, const char* flag, std::string& out) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "haccrg-trace: %s needs a value\n", flag);
    return false;
  }
  out = argv[++i];
  return true;
}

bool parse_u32(const std::string& text, u32& out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v > 0xffffffffUL) return false;
  out = static_cast<u32>(v);
  return true;
}

bool detection_config(const std::string& name, rd::HaccrgConfig& out) {
  out = rd::HaccrgConfig{};
  if (name == "off") return true;
  if (name == "shared") {
    out.enable_shared = true;
    out.shared_granularity = 16;
    return true;
  }
  if (name == "combined") {
    out.enable_shared = true;
    out.enable_global = true;
    out.shared_granularity = 16;
    out.global_granularity = 4;
    return true;
  }
  if (name == "word") {
    out.enable_shared = true;
    out.enable_global = true;
    out.shared_granularity = 4;
    out.global_granularity = 4;
    return true;
  }
  return false;
}

bool parse_injection(const std::string& text, kernels::Injection& out) {
  const size_t colon = text.find(':');
  if (colon == std::string::npos) return false;
  const std::string kind = text.substr(0, colon);
  if (!parse_u32(text.substr(colon + 1), out.site)) return false;
  if (kind == "barrier")
    out.kind = kernels::InjectionKind::kRemoveBarrier;
  else if (kind == "cross")
    out.kind = kernels::InjectionKind::kRogueCrossBlock;
  else if (kind == "fence")
    out.kind = kernels::InjectionKind::kRemoveFence;
  else if (kind == "critical")
    out.kind = kernels::InjectionKind::kRogueCritical;
  else
    return false;
  return true;
}

bool write_race_file(const std::string& path, const std::vector<std::string>& lines,
                     const std::string& origin) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "haccrg-trace: cannot write '%s'\n", path.c_str());
    return false;
  }
  out << "# haccrg race set: " << origin << "\n";
  for (const std::string& line : lines) out << line << "\n";
  return out.good();
}

int cmd_record(int argc, char** argv) {
  std::string kernel;
  std::string out_path;
  std::string det_name = "combined";
  std::string races_path;
  std::string label;
  kernels::BenchOptions opts;
  sim::SimConfig sim_cfg;
  if (const Status env_status = sim::SimConfig::parse_env(sim_cfg); !env_status.ok()) {
    std::fprintf(stderr, "haccrg-trace: %s\n", env_status.to_string().c_str());
    return 2;
  }
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--kernel") {
      if (!next_arg(argc, argv, i, "--kernel", kernel)) return 2;
    } else if (arg == "--out") {
      if (!next_arg(argc, argv, i, "--out", out_path)) return 2;
    } else if (arg == "--det") {
      if (!next_arg(argc, argv, i, "--det", det_name)) return 2;
    } else if (arg == "--races") {
      if (!next_arg(argc, argv, i, "--races", races_path)) return 2;
    } else if (arg == "--label") {
      if (!next_arg(argc, argv, i, "--label", label)) return 2;
    } else if (arg == "--scale") {
      if (!next_arg(argc, argv, i, "--scale", value) || !parse_u32(value, opts.scale)) return 2;
    } else if (arg == "--seed") {
      if (!next_arg(argc, argv, i, "--seed", value) || !parse_u32(value, opts.seed)) return 2;
    } else if (arg == "--single-block") {
      opts.single_block = true;
    } else if (arg == "--index") {
      sim_cfg.trace_index = true;
    } else if (arg == "--inject") {
      if (!next_arg(argc, argv, i, "--inject", value) || !parse_injection(value, opts.injection))
        return usage("--inject expects KIND:SITE (e.g. barrier:0)");
    } else if (arg == "--threads") {
      if (!next_arg(argc, argv, i, "--threads", value) ||
          !parse_u32(value, sim_cfg.num_threads) || sim_cfg.num_threads == 0)
        return 2;
    } else {
      return usage(("unknown record option " + arg).c_str());
    }
  }
  if (kernel.empty() || out_path.empty()) return usage("record needs --kernel and --out");
  const kernels::BenchmarkInfo* info = kernels::find_benchmark(kernel);
  if (info == nullptr) return usage(("unknown benchmark " + kernel).c_str());
  rd::HaccrgConfig det;
  if (!detection_config(det_name, det)) return usage("--det must be combined|word|shared|off");

  arch::GpuConfig gpu_cfg;  // Table I defaults
  gpu_cfg.device_mem_bytes = 64u * 1024u * 1024u;
  sim_cfg.trace_path = out_path;
  sim::Gpu gpu(gpu_cfg, det, sim_cfg);
  gpu.set_trace_label(label.empty() ? kernel : label);
  kernels::PreparedKernel prep = info->prepare(gpu, opts);
  sim::SimResult result = gpu.launch(prep.launch());
  if (!result.completed) {
    std::fprintf(stderr, "haccrg-trace: %s failed: %s\n", kernel.c_str(), result.error.c_str());
    return 2;
  }
  if (gpu.trace_writer() != nullptr && !gpu.trace_writer()->finish()) {
    std::fprintf(stderr, "haccrg-trace: %s\n", gpu.trace_writer()->error().c_str());
    return 2;
  }
  std::printf("recorded %s: %llu cycles, %llu events, %llu bytes -> %s\n", kernel.c_str(),
              static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(gpu.trace_writer()->events_written()),
              static_cast<unsigned long long>(gpu.trace_writer()->bytes_written()),
              out_path.c_str());
  std::printf("live races: %llu unique (%llu raw)\n",
              static_cast<unsigned long long>(result.races.unique()),
              static_cast<unsigned long long>(result.races.total()));
  if (!races_path.empty() &&
      !write_race_file(races_path, trace::race_set_lines(result.races), "live " + kernel))
    return 2;
  return 0;
}

int cmd_info(const std::string& path) {
  trace::TraceReader reader(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "haccrg-trace: %s\n", reader.error().c_str());
    return trace_exit_code(reader.status());
  }
  const trace::TraceHeader& h = reader.header();
  std::printf("trace: %s (%llu bytes, format v%u)\n", path.c_str(),
              static_cast<unsigned long long>(reader.bytes_total()), h.version);
  std::printf("machine: %u SMs x %u warps (warp size %u), %u KiB smem/SM, L1 line %u\n",
              h.num_sms, h.warps_per_sm(), h.warp_size, h.shared_mem_per_sm / 1024, h.l1_line);
  std::printf("detection: shared=%s(gran %u) global=%s(gran %u)%s%s%s\n",
              h.enable_shared ? "on" : "off", h.shared_granularity,
              h.enable_global ? "on" : "off", h.global_granularity,
              h.warp_regrouping ? " regrouping" : "", h.disable_fence_gate ? " no-fence-gate" : "",
              h.static_filter ? " static-filter" : "");
  if (reader.has_index()) {
    trace::TraceIndex index;
    if (const Status st = trace::load_or_build_index(reader, index); !st.ok()) {
      std::fprintf(stderr, "haccrg-trace: %s\n", st.to_string().c_str());
      return trace_exit_code(st);
    }
    std::printf("index: %llu kernels, %llu chunks (%llu bytes of index)\n",
                static_cast<unsigned long long>(index.kernels.size()),
                static_cast<unsigned long long>(index.total_chunks()),
                static_cast<unsigned long long>(reader.bytes_total() - reader.index_offset()));
  } else {
    std::printf("index: none (consumers fall back to a linear scan)\n");
  }
  trace::Event event;
  u64 kernels_seen = 0;
  u64 events = 0;
  u64 accesses = 0;
  Cycle cycles = 0;
  std::string label;
  while (reader.next(event)) {
    ++events;
    if (event.kind == trace::EventKind::kKernelBegin) {
      ++kernels_seen;
      label = event.label;
    } else if (event.kind == trace::EventKind::kKernelEnd) {
      cycles = event.cycle;
      std::printf("kernel '%s': %llu cycles\n", label.c_str(),
                  static_cast<unsigned long long>(cycles));
    } else if (trace::is_access_kind(event.kind)) {
      ++accesses;
    }
  }
  if (!reader.error().empty()) {
    std::fprintf(stderr, "haccrg-trace: %s\n", reader.error().c_str());
    return trace_exit_code(reader.status());
  }
  std::printf("%llu kernels, %llu events (%llu memory accesses)\n",
              static_cast<unsigned long long>(kernels_seen),
              static_cast<unsigned long long>(events), static_cast<unsigned long long>(accesses));
  return 0;
}

int cmd_dump(const std::string& path, u64 limit, const std::string& kind_filter,
             bool allow_resync) {
  trace::TraceReader reader(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "haccrg-trace: %s\n", reader.error().c_str());
    return trace_exit_code(reader.status());
  }
  trace::Event event;
  u64 printed = 0;
  while (printed < limit) {
    if (!reader.next(event)) {
      if (reader.error().empty()) break;  // clean end of trace
      if (!allow_resync) break;
      std::fprintf(stderr, "haccrg-trace: %s (resyncing)\n", reader.error().c_str());
      if (!reader.resync()) break;  // no decodable boundary remains
      continue;
    }
    const std::string_view name = trace::event_kind_name(event.kind);
    if (!kind_filter.empty() && name != kind_filter) continue;
    ++printed;
    std::printf("%10llu %-15.*s", static_cast<unsigned long long>(event.cycle),
                static_cast<int>(name.size()), name.data());
    if (event.kind == trace::EventKind::kKernelBegin) {
      std::printf(" grid=%u block=%u smem=%u heap=%u shadow=0x%x label='%s'", event.grid_dim,
                  event.block_dim, event.shared_mem_bytes, event.app_heap_bytes,
                  event.shadow_base, event.label.c_str());
    } else if (event.kind == trace::EventKind::kBlockLaunch) {
      std::printf(" sm=%u slot=%u block=%u warps=%u threads@%u smem@%u+%u", event.sm,
                  event.block_slot, event.block_id, event.num_warps, event.thread_base,
                  event.smem_base, event.smem_bytes);
    } else if (trace::is_access_kind(event.kind) ||
               event.kind == trace::EventKind::kLockAcquire ||
               event.kind == trace::EventKind::kLockRelease) {
      std::printf(" sm=%u slot=%u warp=%u pc=%u width=%u%s lanes=[", event.sm, event.block_slot,
                  event.warp_slot, event.pc, event.width, event.checked ? " checked" : "");
      for (size_t i = 0; i < event.lanes.size(); ++i) {
        const trace::TraceLane& lane = event.lanes[i];
        std::printf("%s%u:0x%x", i == 0 ? "" : " ", lane.lane, lane.addr);
        if (lane.l1_hit) std::printf("@hit%llu", static_cast<unsigned long long>(lane.l1_fill));
      }
      std::printf("]");
    } else if (event.kind != trace::EventKind::kKernelEnd) {
      std::printf(" sm=%u slot=%u warp=%u", event.sm, event.block_slot, event.warp_slot);
    }
    std::printf("\n");
  }
  if (!reader.error().empty()) {
    std::fprintf(stderr, "haccrg-trace: %s\n", reader.error().c_str());
    return trace_exit_code(reader.status());
  }
  if (reader.resyncs() != 0)
    std::fprintf(stderr, "haccrg-trace: recovered after %llu damaged region(s), %llu bytes lost\n",
                 static_cast<unsigned long long>(reader.resyncs()),
                 static_cast<unsigned long long>(reader.bytes_skipped()));
  return 0;
}

int cmd_replay(const std::string& path, const std::string& races_path, bool sw, bool grace,
               u32 repeat) {
  trace::ReplayOptions opts;
  opts.sw_haccrg = sw;
  opts.grace = grace;
  trace::ReplayResult result;
  for (u32 r = 0; r < repeat; ++r) {
    result = trace::replay_trace(path, opts);
    if (!result.ok) {
      std::fprintf(stderr, "haccrg-trace: %s\n", result.error.c_str());
      return trace_exit_code(result.status());
    }
  }
  std::vector<std::string> lines;
  for (const trace::KernelReplay& k : result.kernels) {
    std::printf("kernel '%s': %llu cycles, %llu events, hw races %llu unique (%llu raw)",
                k.label.c_str(), static_cast<unsigned long long>(k.cycles),
                static_cast<unsigned long long>(k.events),
                static_cast<unsigned long long>(k.races.unique()),
                static_cast<unsigned long long>(k.races.total()));
    if (sw) std::printf(", sw-haccrg %llu", static_cast<unsigned long long>(k.sw_haccrg_races));
    if (grace) std::printf(", grace %llu", static_cast<unsigned long long>(k.grace_races));
    std::printf("\n");
    for (const std::string& line : trace::race_set_lines(k.races)) lines.push_back(line);
  }
  if (!races_path.empty() && !write_race_file(races_path, lines, "replay " + path)) return 2;
  return 0;
}

/// Load a diff input: a trace file is replayed (hardware detectors); a
/// text race-set file is read line by line ('#' comments skipped).
bool load_race_set(const std::string& path, std::set<std::string>& out) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) {
    std::fprintf(stderr, "haccrg-trace: cannot open '%s'\n", path.c_str());
    return false;
  }
  char magic[8] = {};
  probe.read(magic, sizeof(magic));
  if (probe.gcount() == 8 && std::memcmp(magic, trace::kMagic, 8) == 0) {
    const trace::ReplayResult result = trace::replay_trace(path, trace::ReplayOptions{});
    if (!result.ok) {
      std::fprintf(stderr, "haccrg-trace: %s: %s\n", path.c_str(), result.error.c_str());
      return false;
    }
    for (const trace::RaceKey& key : result.race_set()) out.insert(trace::race_key_line(key));
    return true;
  }
  probe.clear();
  probe.seekg(0);
  std::string line;
  while (std::getline(probe, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    out.insert(line);
  }
  return true;
}

int cmd_diff(const std::string& a_path, const std::string& b_path) {
  std::set<std::string> a;
  std::set<std::string> b;
  if (!load_race_set(a_path, a) || !load_race_set(b_path, b)) return 2;
  u64 missing = 0;
  u64 extra = 0;
  for (const std::string& line : a)
    if (!b.count(line)) {
      std::printf("- %s\n", line.c_str());
      ++missing;
    }
  for (const std::string& line : b)
    if (!a.count(line)) {
      std::printf("+ %s\n", line.c_str());
      ++extra;
    }
  if (missing == 0 && extra == 0) {
    std::printf("race sets match (%llu races)\n", static_cast<unsigned long long>(a.size()));
    return 0;
  }
  std::printf("race sets differ: %llu only in %s, %llu only in %s\n",
              static_cast<unsigned long long>(missing), a_path.c_str(),
              static_cast<unsigned long long>(extra), b_path.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    usage();
    return 0;
  }
  if (cmd == "record") return cmd_record(argc - 2, argv + 2);
  if (cmd == "info") {
    if (argc != 3) return usage("info needs a trace file");
    return cmd_info(argv[2]);
  }
  if (cmd == "dump") {
    if (argc < 3) return usage("dump needs a trace file");
    u64 limit = ~0ULL;
    std::string kind;
    bool allow_resync = false;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      std::string value;
      if (arg == "--limit") {
        u32 parsed = 0;
        if (!next_arg(argc, argv, i, "--limit", value) || !parse_u32(value, parsed)) return 2;
        limit = parsed;
      } else if (arg == "--kind") {
        if (!next_arg(argc, argv, i, "--kind", kind)) return 2;
      } else if (arg == "--resync") {
        allow_resync = true;
      } else {
        return usage(("unknown dump option " + arg).c_str());
      }
    }
    return cmd_dump(argv[2], limit, kind, allow_resync);
  }
  if (cmd == "replay") {
    if (argc < 3) return usage("replay needs a trace file");
    std::string races;
    bool sw = false;
    bool grace = false;
    u32 repeat = 1;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      std::string value;
      if (arg == "--races") {
        if (!next_arg(argc, argv, i, "--races", races)) return 2;
      } else if (arg == "--sw") {
        sw = true;
      } else if (arg == "--grace") {
        grace = true;
      } else if (arg == "--repeat") {
        if (!next_arg(argc, argv, i, "--repeat", value) || !parse_u32(value, repeat) ||
            repeat == 0)
          return 2;
      } else {
        return usage(("unknown replay option " + arg).c_str());
      }
    }
    return cmd_replay(argv[2], races, sw, grace, repeat);
  }
  if (cmd == "diff") {
    if (argc != 4) return usage("diff needs exactly two inputs");
    return cmd_diff(argv[2], argv[3]);
  }
  return usage(("unknown command " + cmd).c_str());
}
