// Trace-driven emulation of the two instrumentation-based detectors —
// the software HAccRG tag scheme (swrace/sw_haccrg) and the GRace-add
// bitmap baseline (swrace/grace) — run directly over a recorded access
// stream instead of rewriting and re-simulating the kernel.
//
// Fidelity contract: both emulators execute the instrumented code's
// *algorithm* verbatim (tag layout, epoch arithmetic, bitmap indexing,
// the GRace own-bit-before-scan artifact) on the same accesses the live
// kernel makes, in trace order. Two things are approximations, both
// documented in DESIGN.md: (1) the per-thread epoch register becomes a
// per-block counter bumped at the barrier-release event — equivalent for
// tagging, because a warp that bumped its epoch cannot touch memory until
// the block releases; (2) cross-SM interleaving of shadow exchanges
// follows trace order, not the instrumented run's (perturbed) timing. So
// an emulated run is deterministic and verdict-faithful (races vs none),
// while exact counter values can differ from a live instrumented run the
// same way two live instrumented runs under different timing would.
#pragma once

#include <functional>
#include <set>
#include <tuple>
#include <vector>

#include "common/types.hpp"
#include "trace/format.hpp"

namespace haccrg::trace {

/// (space, block_id, word-granule byte address) of an emulated race —
/// block-relative for shared space, device address for global. block_id
/// is 0 for global locations (the global shadow is grid-wide).
using SwLocation = std::tuple<int, u32, Addr>;

/// Software HAccRG tag scheme: a shadow word per 4-byte granule holding
/// [gtid:20 | epoch:10 | rw:2], claimed with an exchange; a race is a
/// same-epoch claim by a different thread with a write involved.
class SwHaccrgReplay {
 public:
  /// `is_safe` mirrors InstrumentOptions::static_prune: accesses at a pc
  /// the static analysis proved safe carry no instrumentation. Pass
  /// nullptr to instrument every access.
  SwHaccrgReplay(u32 app_heap_bytes, u32 grid_dim, u32 block_dim,
                 std::function<bool(u32)> is_safe = nullptr);

  /// Feed one shared/global load/store event (atomics are never
  /// instrumented and must not be fed). `block_id`/`smem_base` come from
  /// the replay engine's block-slot table.
  void on_access(const Event& event, u32 block_id, u32 smem_base);

  /// The block passed a barrier: its threads' epoch registers advance.
  void on_barrier_release(u32 block_id);

  u64 races() const { return races_; }
  const std::set<SwLocation>& locations() const { return locations_; }

 private:
  void check_word(bool shared_space, u32 block_id, Addr word_addr, u32 gtid, bool is_write);

  u32 block_dim_;
  std::function<bool(u32)> is_safe_;
  std::vector<u32> global_shadow_;               ///< word tags over the app heap
  std::vector<std::vector<u32>> shared_shadow_;  ///< per-block 16 KB regions
  std::vector<u32> epochs_;                      ///< per-block barrier count
  u64 races_ = 0;
  std::set<SwLocation> locations_;
};

/// GRace-add baseline: per-block read/write bitmaps in device memory,
/// own-bit atomicOr then a full scan of the write table. Reproduces the
/// live instrumentation exactly, including the artifact that a write
/// always sees its own just-set bit (the pinned over-reporting the
/// differential tests document).
class GraceReplay {
 public:
  GraceReplay(u32 grid_dim, u32 block_dim, std::function<bool(u32)> is_safe = nullptr);

  /// Feed one *shared* load/store event (GRace only instruments shared
  /// accesses; atomics are skipped by the caller).
  void on_access(const Event& event, u32 block_id, u32 smem_base);

  void on_barrier_release(u32 block_id);

  u64 races() const { return races_; }
  const std::set<SwLocation>& locations() const { return locations_; }

 private:
  static constexpr u32 kBitmapWords = 128;  ///< GraceLayout::kBitmapWords

  u32 block_dim_;
  std::function<bool(u32)> is_safe_;
  /// Per block: write table then read table, kBitmapWords words each.
  std::vector<std::vector<u32>> bitmaps_;
  u64 races_ = 0;
  std::set<SwLocation> locations_;
};

}  // namespace haccrg::trace
