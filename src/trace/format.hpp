// Access-trace binary format (the src/trace subsystem's wire layer).
//
// A trace file is:
//
//   magic "HACCRGTR" (8 bytes) | version (u16 LE) | header | event*
//
// The header pins everything the detectors need to be reconstructed
// exactly — the modelled machine's geometry and the HaccrgConfig the
// recording run used — so a replay is a closed computation over the file.
// Events are varint-packed (LEB128) records; per-warp lane addresses are
// zigzag-delta encoded against the previous lane and event cycles are
// delta encoded against the previous event (file order is non-decreasing
// in cycle; a kKernelBegin resets the base). Encoding is canonical: the
// same event sequence always produces the same bytes, which the
// round-trip tests assert.
//
// Ordering contract (what replay relies on): within one simulated cycle
// the recorder emits every SM's issue-phase events in SM-id order first,
// then every SM's global-memory events in SM-id order — mirroring the
// engine's parallel-phase/commit-phase split. Any state a global RDU
// check reads across SMs (fence IDs) is therefore updated by earlier
// events in the file, exactly as the live commit phase observes it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "haccrg/options.hpp"

namespace haccrg::trace {

inline constexpr char kMagic[8] = {'H', 'A', 'C', 'C', 'R', 'G', 'T', 'R'};
inline constexpr u16 kFormatVersion = 1;

// Version 2 appends a seekable index section after the last event:
//
//   event* | 0x00 "IDX0" index-payload | index_offset (u64 LE) "HACCRGIX"
//
// The section starts with byte 0 — not a valid event kind, so a decoder
// that overruns the event stream fails structurally instead of
// misparsing the index — and the fixed 16-byte footer lets a reader find
// the section without decoding anything. Version-1 files (the default;
// golden traces stay byte-identical) simply lack the section, and every
// index consumer falls back to a linear scan (see trace/index.hpp).
inline constexpr u16 kIndexedFormatVersion = 2;
inline constexpr u16 kMaxFormatVersion = kIndexedFormatVersion;
inline constexpr char kIndexTailMagic[8] = {'H', 'A', 'C', 'C', 'R', 'G', 'I', 'X'};
inline constexpr char kIndexSectionTag[4] = {'I', 'D', 'X', '0'};
inline constexpr size_t kIndexFooterBytes = 16;  // u64 offset + tail magic

/// Every record class a trace can contain. Memory events carry the full
/// active-lane address vector; sync events carry the identifiers the
/// HAccRG ID registers key on.
enum class EventKind : u8 {
  kKernelBegin = 1,   ///< launch geometry + heap layout; resets the cycle base
  kKernelEnd,         ///< kernel drained; cycle = total simulated cycles
  kBlockLaunch,       ///< a block became resident in an SM slot
  kBlockFinish,       ///< the slot's tenant retired
  kSharedLoad,
  kSharedStore,
  kSharedAtomic,
  kGlobalLoad,
  kGlobalStore,
  kGlobalAtomic,
  kBarrierArrive,     ///< one warp reached bar.sync
  kBarrierRelease,    ///< the whole block passed it (shadow reset + sync-ID bump)
  kFence,             ///< a warp issued membar
  kFenceCommit,       ///< the warp's stores drained; its fence ID bumped
  kLockAcquire,       ///< critical-section enter (per-lane lock addresses)
  kLockRelease,       ///< critical-section exit
};

inline constexpr u8 kMinEventKind = 1;
inline constexpr u8 kMaxEventKind = static_cast<u8>(EventKind::kLockRelease);

std::string_view event_kind_name(EventKind kind);

/// True for the six per-warp memory-access kinds.
inline bool is_access_kind(EventKind kind) {
  return kind >= EventKind::kSharedLoad && kind <= EventKind::kGlobalAtomic;
}

inline bool is_shared_access(EventKind kind) {
  return kind >= EventKind::kSharedLoad && kind <= EventKind::kSharedAtomic;
}

inline bool is_global_access(EventKind kind) {
  return kind >= EventKind::kGlobalLoad && kind <= EventKind::kGlobalAtomic;
}

/// One active lane of a memory event. `addr` is SM-local for shared
/// events, a device address for global ones. The L1 fields are only
/// meaningful on kGlobalLoad (the stale-hit rule's inputs).
struct TraceLane {
  u8 lane = 0;
  Addr addr = 0;
  bool l1_hit = false;
  Cycle l1_fill = 0;  ///< fill cycle of the hit line (0 unless l1_hit)

  bool operator==(const TraceLane&) const = default;
};

/// A decoded trace record. One struct covers every kind; fields a kind
/// does not encode decode as their defaults, so value equality against a
/// freshly-built event is exact (the round-trip tests depend on it).
struct Event {
  EventKind kind = EventKind::kKernelBegin;
  Cycle cycle = 0;

  // Issuing context (access, sync, lock, block events).
  u32 sm = 0;
  u32 block_slot = 0;
  u32 warp_slot = 0;      ///< hardware warp slot within the SM
  u32 warp_in_block = 0;
  u32 pc = 0;
  u8 width = 0;           ///< access bytes (memory events)
  bool checked = false;   ///< the live run ran RDU checks for this access

  // kKernelBegin.
  u32 grid_dim = 0;
  u32 block_dim = 0;
  u32 shared_mem_bytes = 0;
  u32 app_heap_bytes = 0;  ///< allocator heap top at launch
  Addr shadow_base = 0;    ///< global shadow region base (0 if global det. off)
  std::string label;

  // kBlockLaunch / kBlockFinish / kBarrierRelease.
  u32 block_id = 0;
  u32 warp_base = 0;
  u32 num_warps = 0;
  u32 thread_base = 0;
  u32 smem_base = 0;
  u32 smem_bytes = 0;

  // Memory events: active lanes in lane-index order (canonical; replay
  // re-derives the live run's coalesced check order with mem::coalesce,
  // which is deterministic on this vector). kLockAcquire reuses the
  // vector for per-lane lock addresses, kLockRelease for bare lanes.
  std::vector<TraceLane> lanes;

  bool operator==(const Event&) const = default;
};

/// Trace header: the machine and detector the recording run modelled.
/// Enough to rebuild SharedRdu/GlobalRdu/SmIdRegisters byte-exactly.
struct TraceHeader {
  u16 version = kFormatVersion;

  // Modelled machine (the arch::GpuConfig fields detection depends on).
  u32 num_sms = 0;
  u32 warp_size = 0;
  u32 max_blocks_per_sm = 0;
  u32 max_threads_per_sm = 0;
  u32 shared_mem_per_sm = 0;
  u32 shared_mem_banks = 0;
  u32 l1_line = 0;
  u64 device_mem_bytes = 0;

  // Detector configuration of the recording run.
  bool enable_shared = false;
  bool enable_global = false;
  bool warp_regrouping = false;
  bool disable_fence_gate = false;
  bool static_filter = false;
  u8 shared_shadow = 0;  ///< rd::SharedShadowPlacement as an integer
  u32 shared_granularity = 0;
  u32 global_granularity = 0;
  u32 bloom_bits = 0;
  u32 bloom_bins = 0;
  u32 max_recorded_races = 0;

  u32 warps_per_sm() const { return max_threads_per_sm / warp_size; }

  /// Rebuild the recording run's detector config.
  rd::HaccrgConfig haccrg_config() const;

  bool operator==(const TraceHeader&) const = default;
};

// --- Varint primitives (shared by writer, reader, and tests) -----------------

void put_varint(std::vector<u8>& out, u64 value);

inline u64 zigzag_encode(i64 value) {
  return (static_cast<u64>(value) << 1) ^ static_cast<u64>(value >> 63);
}

inline i64 zigzag_decode(u64 value) {
  return static_cast<i64>((value >> 1) ^ (~(value & 1) + 1));
}

// --- Canonical encode / decode ----------------------------------------------

/// Append magic + version + header fields to `out`.
void encode_header(const TraceHeader& header, std::vector<u8>& out);

/// Append one event. `last_cycle` is the running delta base: the caller
/// threads it through consecutive calls (kKernelBegin resets it to 0).
/// Event cycles must be non-decreasing between kernel begins.
void encode_event(const Event& event, Cycle& last_cycle, std::vector<u8>& out);

/// Bounded cursor over an encoded byte range; decode helpers fail softly
/// (set `error`, return false) on truncation or malformed varints so a
/// corrupt trace is a diagnosis, never UB.
struct DecodeCursor {
  const u8* data = nullptr;
  size_t size = 0;
  size_t pos = 0;
  std::string error;
  /// Failure class of `error` (kCorrupt for plain fail(); bad magic and
  /// version mismatches are tagged so callers — the CLI's exit codes,
  /// the reader's Status — can distinguish "wrong file" from "damaged
  /// file" without string matching.
  StatusCode code = StatusCode::kOk;

  bool failed() const { return !error.empty(); }
  bool at_end() const { return pos >= size; }
  bool fail(std::string_view what, StatusCode why = StatusCode::kCorrupt);
  bool get_u8(u8& out);
  bool get_varint(u64& out);
  bool get_varint_u32(u32& out);
};

/// Parse magic + version + header at the cursor. False on mismatch or
/// truncation (cursor.error says why).
bool decode_header(DecodeCursor& cursor, TraceHeader& out);

/// Decode one event at the cursor; mirrors encode_event's `last_cycle`
/// protocol. False on truncation/corruption.
bool decode_event(DecodeCursor& cursor, Cycle& last_cycle, Event& out);

}  // namespace haccrg::trace
