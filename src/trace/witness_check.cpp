#include "trace/witness_check.hpp"

#include <algorithm>

#include "trace/replay.hpp"
#include "trace/writer.hpp"

namespace haccrg::trace {

namespace {

u64 round_up(u64 v, u64 to) { return (v + to - 1) / to * to; }

}  // namespace

Status check_witness(const WitnessSpec& spec, const std::string& scratch_path,
                     WitnessCheckResult& out) {
  out = WitnessCheckResult{};
  const u32 W = spec.warp_size;
  if (W == 0 || (W & (W - 1)) != 0 || W > 64)
    return Status::invalid_argument("witness: warp_size must be a power of two <= 64");
  if (spec.block_dim == 0)
    return Status::invalid_argument("witness: block_dim must be positive");
  if (spec.width1 == 0 || spec.width2 == 0)
    return Status::invalid_argument("witness: access widths must be positive");
  if (spec.tid1 >= spec.block_dim || spec.tid2 >= spec.block_dim)
    return Status::invalid_argument("witness: tid outside the block");
  if (spec.shared_space && spec.cta1 != spec.cta2)
    return Status::invalid_argument("witness: shared-space pair must share a block");
  if (spec.tid1 == spec.tid2 && spec.cta1 == spec.cta2)
    return Status::invalid_argument("witness: the two accesses name one thread");

  // Host geometry: one SM, the pair's block(s) resident side by side.
  const bool two_blocks = spec.cta1 != spec.cta2;
  const u32 padded = static_cast<u32>(round_up(spec.block_dim, W));
  const u32 warps_per_block = padded / W;
  const u64 max_end = std::max(spec.addr1 + spec.width1, spec.addr2 + spec.width2);
  constexpr u64 kMaxHostedBytes = u64{1} << 28;  // far under replay's 1 GiB cap
  if (max_end > kMaxHostedBytes)
    return Status::invalid_argument("witness: addresses exceed the hosted-memory cap");
  const u32 smem = spec.shared_space ? static_cast<u32>(round_up(max_end, 256)) : 0;
  const u32 heap = spec.shared_space ? 256 : static_cast<u32>(round_up(max_end, 256));

  TraceHeader h;
  h.num_sms = 1;
  h.warp_size = W;
  h.max_blocks_per_sm = two_blocks ? 2 : 1;
  h.max_threads_per_sm = padded * (two_blocks ? 2 : 1);
  h.shared_mem_per_sm = std::max<u32>(smem, 256);
  h.shared_mem_banks = 32;
  h.l1_line = 128;
  h.device_mem_bytes = u64{heap} + (u64{heap} / spec.granularity + 2) * 16;
  h.enable_shared = spec.shared_space;
  h.enable_global = !spec.shared_space;
  h.warp_regrouping = false;
  h.disable_fence_gate = false;
  h.static_filter = false;
  h.shared_shadow = 0;  // rd::SharedShadowPlacement::kHardware
  h.shared_granularity = spec.shared_space ? spec.granularity : 16;
  h.global_granularity = spec.shared_space ? 4 : spec.granularity;
  h.bloom_bits = 16;
  h.bloom_bins = 2;
  h.max_recorded_races = 64;

  TraceWriter writer(scratch_path);
  if (!writer.write_header(h))
    return Status::io_error("witness: cannot write scratch trace '" + scratch_path +
                            "': " + writer.error());

  Event begin;
  begin.kind = EventKind::kKernelBegin;
  begin.cycle = 0;
  begin.grid_dim = std::max(spec.cta1, spec.cta2) + 1;
  begin.block_dim = spec.block_dim;
  begin.shared_mem_bytes = smem;
  begin.app_heap_bytes = heap;
  begin.shadow_base = round_up(heap, 8);
  begin.label = "witness-check";
  writer.write_event(begin);

  // Map the pair's blocks onto slots 0 (cta1) and, if distinct, 1 (cta2).
  auto launch = [&](u32 slot, u32 block_id) {
    Event e;
    e.kind = EventKind::kBlockLaunch;
    e.cycle = 1;
    e.sm = 0;
    e.block_slot = slot;
    e.block_id = block_id;
    e.thread_base = slot * padded;
    e.num_warps = warps_per_block;
    e.smem_base = 0;  // both hosted blocks share the window; the pair's
                      // addresses are block-1-local and block 2 never
                      // touches shared memory in a valid witness.
    e.smem_bytes = smem;
    writer.write_event(e);
  };
  launch(0, spec.cta1);
  if (two_blocks) launch(1, spec.cta2);

  auto access_kind = [&](bool store) {
    if (spec.shared_space) return store ? EventKind::kSharedStore : EventKind::kSharedLoad;
    return store ? EventKind::kGlobalStore : EventKind::kGlobalLoad;
  };
  auto make_access = [&](u32 pc, bool store, u32 width, u32 tid, u32 cta, u64 addr,
                         Cycle cycle) {
    Event e;
    e.kind = access_kind(store);
    e.cycle = cycle;
    e.sm = 0;
    e.block_slot = (two_blocks && cta == spec.cta2) ? 1 : 0;
    e.warp_in_block = tid / W;
    e.warp_slot = e.block_slot * warps_per_block + e.warp_in_block;
    e.pc = pc;
    e.width = static_cast<u8>(std::min<u32>(width, 255));
    e.checked = true;
    e.lanes.push_back({static_cast<u8>(tid % W), static_cast<Addr>(addr), false, 0});
    return e;
  };

  // An intra-warp same-pc store pair is one lockstep issue: emit a single
  // two-lane event so replay's intra-warp WAW staging sees it the way the
  // hardware does.
  const bool lockstep = spec.cta1 == spec.cta2 && spec.tid1 / W == spec.tid2 / W &&
                        spec.pc1 == spec.pc2 && spec.store1 && spec.store2 &&
                        spec.width1 == spec.width2;
  if (lockstep) {
    Event e = make_access(spec.pc1, true, spec.width1, spec.tid1, spec.cta1, spec.addr1, 2);
    e.lanes.push_back({static_cast<u8>(spec.tid2 % W), static_cast<Addr>(spec.addr2), false, 0});
    std::sort(e.lanes.begin(), e.lanes.end(),
              [](const TraceLane& x, const TraceLane& y) { return x.lane < y.lane; });
    writer.write_event(e);
  } else {
    writer.write_event(
        make_access(spec.pc1, spec.store1, spec.width1, spec.tid1, spec.cta1, spec.addr1, 2));
    writer.write_event(
        make_access(spec.pc2, spec.store2, spec.width2, spec.tid2, spec.cta2, spec.addr2, 3));
  }

  Event end;
  end.kind = EventKind::kKernelEnd;
  end.cycle = 4;
  writer.write_event(end);
  if (!writer.finish())
    return Status::io_error("witness: scratch trace write failed: " + writer.error());

  ReplayOptions ropts;
  ropts.hw = true;
  ReplayResult rr = replay_trace(scratch_path, ropts);
  if (!rr.ok) return Status(rr.code, "witness: replay failed: " + rr.error);

  for (const KernelReplay& k : rr.kernels) {
    for (const rd::RaceRecord& r : k.races.races()) {
      ++out.races;
      if (r.pc == spec.pc1 || r.pc == spec.pc2) {
        if (!out.reproduced) out.detail = race_key_line(race_key(r));
        out.reproduced = true;
      }
    }
  }
  if (!out.reproduced && out.detail.empty())
    out.detail = out.races == 0 ? "detectors stayed silent"
                                : "races fired but none at the witness pcs";
  return {};
}

}  // namespace haccrg::trace
