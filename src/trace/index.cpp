#include "trace/index.hpp"

#include <atomic>
#include <cstring>

namespace haccrg::trace {

namespace {

std::atomic<u64> g_index_missing{0};

constexpr size_t kMaxIndexKernels = 1u << 20;
constexpr size_t kMaxIndexChunks = 1u << 24;
constexpr size_t kMaxIndexLabel = 4096;

}  // namespace

u64 index_missing_count() { return g_index_missing.load(std::memory_order_relaxed); }

void encode_index(const TraceIndex& index, u64 index_offset, std::vector<u8>& out) {
  out.push_back(0);  // marker: invalid event kind
  out.insert(out.end(), kIndexSectionTag, kIndexSectionTag + sizeof(kIndexSectionTag));
  put_varint(out, index.kernels.size());
  for (const TraceIndexKernel& kernel : index.kernels) {
    put_varint(out, kernel.begin_offset);
    put_varint(out, kernel.end_offset);
    put_varint(out, kernel.events);
    put_varint(out, kernel.label.size());
    out.insert(out.end(), kernel.label.begin(), kernel.label.end());
    put_varint(out, kernel.chunks.size());
    for (const TraceIndexChunk& chunk : kernel.chunks) {
      put_varint(out, chunk.offset);
      put_varint(out, chunk.start_cycle);
      put_varint(out, chunk.event_index);
    }
  }
  for (u32 i = 0; i < 8; ++i) out.push_back(static_cast<u8>(index_offset >> (8 * i)));
  out.insert(out.end(), kIndexTailMagic, kIndexTailMagic + sizeof(kIndexTailMagic));
}

Status decode_index(const u8* data, size_t size, u64 index_offset, TraceIndex& out) {
  if (data == nullptr || index_offset + kIndexFooterBytes > size ||
      index_offset + 1 + sizeof(kIndexSectionTag) > size)
    return Status::corrupt("trace index: section offset outside the file");
  DecodeCursor cursor{data, size - kIndexFooterBytes, static_cast<size_t>(index_offset), {},
                      StatusCode::kOk};
  u8 marker = 0xff;
  if (!cursor.get_u8(marker) || marker != 0)
    return Status::corrupt("trace index: missing section marker");
  if (std::memcmp(data + cursor.pos, kIndexSectionTag, sizeof(kIndexSectionTag)) != 0)
    return Status::corrupt("trace index: bad section tag");
  cursor.pos += sizeof(kIndexSectionTag);

  TraceIndex parsed;
  u64 kernel_count = 0;
  if (!cursor.get_varint(kernel_count))
    return Status::corrupt("trace index: " + cursor.error);
  if (kernel_count > kMaxIndexKernels)
    return Status::corrupt("trace index: implausible kernel count");
  parsed.kernels.resize(static_cast<size_t>(kernel_count));
  for (TraceIndexKernel& kernel : parsed.kernels) {
    u64 label_len = 0;
    u64 chunk_count = 0;
    if (!cursor.get_varint(kernel.begin_offset) || !cursor.get_varint(kernel.end_offset) ||
        !cursor.get_varint(kernel.events) || !cursor.get_varint(label_len))
      return Status::corrupt("trace index: " + cursor.error);
    if (label_len > kMaxIndexLabel)
      return Status::corrupt("trace index: oversized kernel label");
    if (cursor.size - cursor.pos < label_len)
      return Status::corrupt("trace index: truncated kernel label");
    kernel.label.assign(reinterpret_cast<const char*>(data + cursor.pos),
                        static_cast<size_t>(label_len));
    cursor.pos += static_cast<size_t>(label_len);
    if (!cursor.get_varint(chunk_count)) return Status::corrupt("trace index: " + cursor.error);
    if (chunk_count > kMaxIndexChunks)
      return Status::corrupt("trace index: implausible chunk count");
    // Every offset the section hands back is later fed to seek(); bound
    // them here so a damaged index is a diagnosis up front.
    if (kernel.begin_offset >= index_offset || kernel.end_offset > index_offset ||
        kernel.end_offset < kernel.begin_offset)
      return Status::corrupt("trace index: kernel record range outside the event stream");
    kernel.chunks.resize(static_cast<size_t>(chunk_count));
    for (TraceIndexChunk& chunk : kernel.chunks) {
      u64 cycle = 0;
      if (!cursor.get_varint(chunk.offset) || !cursor.get_varint(cycle) ||
          !cursor.get_varint(chunk.event_index))
        return Status::corrupt("trace index: " + cursor.error);
      chunk.start_cycle = cycle;
      if (chunk.offset <= kernel.begin_offset || chunk.offset >= kernel.end_offset)
        return Status::corrupt("trace index: chunk offset outside its kernel");
    }
  }
  out = std::move(parsed);
  return Status();
}

Status build_index_by_scan(TraceReader& reader, TraceIndex& out) {
  if (!reader.ok()) return reader.status();
  reader.rewind();
  TraceIndex built;
  built.from_scan = true;
  // The scan needs each record's start offset, which the reader's public
  // next() hides, so it decodes through a scratch cursor over the raw
  // image — the same bytes and bounds the reader itself uses.
  Event event;
  u64 in_kernel = 0;
  Cycle cycle_base = 0;
  auto close_kernel = [&](u64 end) {
    if (built.kernels.empty()) return;
    built.kernels.back().end_offset = end;
    built.kernels.back().events = in_kernel;
  };
  DecodeCursor cursor{reader.data(), static_cast<size_t>(reader.events_end()),
                      static_cast<size_t>(reader.first_event_offset()), {}, StatusCode::kOk};
  Cycle last_cycle = 0;
  while (!cursor.at_end()) {
    const u64 record_start = cursor.pos;
    if (!decode_event(cursor, last_cycle, event))
      return Status(StatusCode::kCorrupt, "trace index scan: " + cursor.error);
    if (event.kind == EventKind::kKernelBegin) {
      close_kernel(record_start);
      TraceIndexKernel kernel;
      kernel.begin_offset = record_start;
      kernel.label = event.label;
      built.kernels.push_back(std::move(kernel));
      in_kernel = 0;
      continue;
    }
    if (!built.kernels.empty()) {
      if (in_kernel != 0 && in_kernel % kIndexChunkEvents == 0)
        built.kernels.back().chunks.push_back({record_start, cycle_base, in_kernel});
      ++in_kernel;
    }
    cycle_base = event.cycle;
  }
  close_kernel(cursor.pos);
  out = std::move(built);
  return Status();
}

Status load_or_build_index(TraceReader& reader, TraceIndex& out) {
  if (!reader.ok()) return reader.status();
  if (reader.has_index()) {
    TraceIndex parsed;
    Status st = decode_index(reader.data(), static_cast<size_t>(reader.bytes_total()),
                             reader.index_offset(), parsed);
    if (!st.ok()) return st;
    out = std::move(parsed);
    return Status();
  }
  TraceIndex built;
  Status st = build_index_by_scan(reader, built);
  if (!st.ok()) return st;
  g_index_missing.fetch_add(1, std::memory_order_relaxed);
  out = std::move(built);
  return Status();
}

}  // namespace haccrg::trace
