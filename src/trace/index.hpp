// Seekable trace index (format v2). The index section maps every kernel
// launch in the file to its record range and splits each kernel's event
// stream into chunks at known record boundaries, so a consumer can
// replay one kernel — or resume mid-kernel — without decoding the whole
// stream. Each chunk pins everything decoding needs to restart at its
// offset: the cycle-delta base in force there and the count of events
// already consumed (see TraceReader::seek).
//
// Layout (appended after the last event; see format.hpp for the framing):
//
//   0x00                       marker: not a valid event kind
//   "IDX0"                     section tag
//   varint kernel_count
//   per kernel:
//     varint begin_offset      absolute offset of the kKernelBegin record
//     varint end_offset        one past the kernel's last record
//     varint events            events after the begin record (kKernelEnd incl.)
//     varint label_len, label
//     varint chunk_count
//     per chunk: varint offset, varint start_cycle, varint event_index
//   u64 LE index_offset        fixed footer: locates the marker byte...
//   "HACCRGIX"                 ...and identifies an indexed file from the tail
//
// A version-1 file has no index. That is never an error: every consumer
// goes through load_or_build_index(), which falls back to one linear
// scan and counts the fallback in a process-wide `index_missing` stat so
// services can report how often they paid for the scan.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "trace/reader.hpp"

namespace haccrg::trace {

struct TraceIndexChunk {
  u64 offset = 0;       ///< absolute file offset of the chunk's first event
  Cycle start_cycle = 0;  ///< cycle-delta base in force at `offset`
  u64 event_index = 0;  ///< events after the kernel begin preceding `offset`

  bool operator==(const TraceIndexChunk&) const = default;
};

struct TraceIndexKernel {
  u64 begin_offset = 0;  ///< absolute offset of the kKernelBegin record
  u64 end_offset = 0;    ///< one past the kernel's last record
  u64 events = 0;        ///< events after the begin record (kKernelEnd inclusive)
  std::string label;
  std::vector<TraceIndexChunk> chunks;  ///< intra-kernel resume points

  bool operator==(const TraceIndexKernel&) const = default;
};

struct TraceIndex {
  std::vector<TraceIndexKernel> kernels;
  bool from_scan = false;  ///< built by linear scan (file had no index section)

  u64 total_chunks() const {
    u64 n = 0;
    for (const TraceIndexKernel& k : kernels) n += k.chunks.size();
    return n;
  }

  bool operator==(const TraceIndex& other) const { return kernels == other.kernels; }
};

/// Writer-side chunk cadence: one resume point per this many events.
inline constexpr u32 kIndexChunkEvents = 4096;

/// Append the marker + section + footer for a payload that ends at
/// `index_offset` (the marker byte's absolute offset).
void encode_index(const TraceIndex& index, u64 index_offset, std::vector<u8>& out);

/// Decode the index section out of a whole-file image whose footer says
/// the section starts at `index_offset`. kCorrupt on structural damage.
Status decode_index(const u8* data, size_t size, u64 index_offset, TraceIndex& out);

/// Build an index by linearly scanning `reader`'s events (rewinds the
/// reader before and after). Fails if the stream fails to decode.
Status build_index_by_scan(TraceReader& reader, TraceIndex& out);

/// The file's own index when present, else a linear-scan fallback —
/// never an error for a well-formed index-less (v1) trace. Each fallback
/// bumps the process-wide index_missing counter. A present-but-corrupt
/// index is reported, not silently rescanned. On failure `out` is
/// untouched.
Status load_or_build_index(TraceReader& reader, TraceIndex& out);

/// Process-wide count of linear-scan fallbacks taken because a trace
/// carried no index (the serve stats report this as `index_missing`).
u64 index_missing_count();

}  // namespace haccrg::trace
