#include "trace/replay.hpp"

#include <cstdio>
#include <memory>

#include "haccrg/global_rdu.hpp"
#include "haccrg/id_regs.hpp"
#include "haccrg/shared_rdu.hpp"
#include "mem/device_memory.hpp"

namespace haccrg::trace {

RaceKey race_key(const rd::RaceRecord& r) {
  return {static_cast<u8>(r.space), static_cast<u8>(r.type), static_cast<u8>(r.mechanism),
          r.granule_addr, r.sm_id, r.first_thread, r.second_thread, r.pc, r.cycle};
}

std::set<RaceKey> race_identity_set(const rd::RaceLog& log) {
  std::set<RaceKey> keys;
  for (const rd::RaceRecord& r : log.races()) keys.insert(race_key(r));
  return keys;
}

std::string race_key_line(const RaceKey& key) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "space=%u type=%u mech=%u granule=0x%x sm=%u first=%u second=%u pc=%u cycle=%llu",
                static_cast<unsigned>(std::get<0>(key)), static_cast<unsigned>(std::get<1>(key)),
                static_cast<unsigned>(std::get<2>(key)),
                static_cast<unsigned>(std::get<3>(key)), std::get<4>(key),
                static_cast<unsigned>(std::get<5>(key)), static_cast<unsigned>(std::get<6>(key)),
                std::get<7>(key), static_cast<unsigned long long>(std::get<8>(key)));
  return buf;
}

std::vector<std::string> race_set_lines(const rd::RaceLog& log) {
  std::vector<std::string> lines;
  for (const RaceKey& key : race_identity_set(log)) lines.push_back(race_key_line(key));
  return lines;  // std::set iteration is already sorted
}

std::set<RaceKey> ReplayResult::race_set() const {
  std::set<RaceKey> all;
  for (const KernelReplay& k : kernels)
    for (const rd::RaceRecord& r : k.races.races()) all.insert(race_key(r));
  return all;
}

namespace {

/// Replica of the SM's BlockContext fields replay needs.
struct SlotState {
  bool active = false;
  u32 block_id = 0;
  u32 thread_base = 0;
  u32 num_warps = 0;
  u32 smem_base = 0;
  u32 smem_bytes = 0;
};

/// Per-SM detection state, heap-pinned: the SharedRdu keeps a pointer to
/// `staging` and the global fence reader indexes into the SmState array,
/// so neither may move after construction.
struct SmState {
  rd::RaceStaging staging;
  rd::SmIdRegisters ids;
  std::unique_ptr<rd::SharedRdu> shared_rdu;
  std::vector<SlotState> slots;

  SmState(u32 sm_id, const TraceHeader& h, const rd::HaccrgConfig& cfg,
          const rd::DetectPolicy& policy)
      : ids(h.max_blocks_per_sm, h.warps_per_sm(), h.max_threads_per_sm),
        slots(h.max_blocks_per_sm) {
    if (cfg.enable_shared)
      shared_rdu = std::make_unique<rd::SharedRdu>(sm_id, h.shared_mem_per_sm, cfg, policy,
                                                   staging);
  }
};

/// All state for one kernel launch, torn down and rebuilt at every
/// kKernelBegin exactly as the live Gpu rebuilds its detectors.
struct KernelState {
  rd::HaccrgConfig cfg;
  rd::DetectPolicy policy;
  std::vector<std::unique_ptr<SmState>> sms;
  std::unique_ptr<mem::DeviceMemory> memory;  ///< shadow region only
  std::unique_ptr<rd::RaceLog> log;
  std::unique_ptr<rd::GlobalRdu> global_rdu;
  std::unique_ptr<SwHaccrgReplay> sw;
  std::unique_ptr<GraceReplay> grace;

  KernelState(const TraceHeader& header, const Event& begin, const ReplayOptions& opts)
      : cfg(header.haccrg_config()) {
    policy.warp_size = header.warp_size;
    policy.warp_regrouping = header.warp_regrouping;
    policy.fence_gating = !header.disable_fence_gate;
    policy.bloom = {header.bloom_bits, header.bloom_bins};
    log = std::make_unique<rd::RaceLog>(header.max_recorded_races);
    for (u32 s = 0; s < header.num_sms; ++s)
      sms.push_back(std::make_unique<SmState>(s, header, cfg, policy));
    if (opts.hw && cfg.enable_global) {
      // Device memory here backs only the shadow region; application data
      // is functional state the detectors never read.
      const u32 shadow_bytes =
          rd::GlobalRdu::shadow_bytes_for(begin.app_heap_bytes, cfg.global_granularity);
      memory = std::make_unique<mem::DeviceMemory>(begin.shadow_base + shadow_bytes + 8);
      auto* sm_array = &sms;
      rd::FenceIdReader fence_reader = [sm_array](u32 sm_id, u32 warp_in_sm) -> u8 {
        return (*sm_array)[sm_id]->ids.fence_id(warp_in_sm);
      };
      global_rdu = std::make_unique<rd::GlobalRdu>(*memory, cfg, policy, *log,
                                                   std::move(fence_reader));
      global_rdu->init_shadow(begin.shadow_base, begin.app_heap_bytes);
    }
    if (opts.sw_haccrg)
      sw = std::make_unique<SwHaccrgReplay>(begin.app_heap_bytes, begin.grid_dim,
                                            begin.block_dim, opts.sw_is_safe);
    if (opts.grace)
      grace = std::make_unique<GraceReplay>(begin.grid_dim, begin.block_dim, opts.sw_is_safe);
  }
};

class ReplayEngine {
 public:
  ReplayEngine(TraceReader& reader, const ReplayOptions& opts)
      : reader_(reader), opts_(opts) {}

  ReplayResult run() {
    result_.header = reader_.header();
    Event event;
    while (reader_.next(event)) {
      ++result_.total_events;
      if (!handle(event)) return std::move(result_);
    }
    if (!reader_.error().empty()) {
      fail(reader_.error(), reader_.status().code());
      return std::move(result_);
    }
    finish_kernel();
    result_.ok = true;
    return std::move(result_);
  }

 private:
  bool fail(const std::string& what, StatusCode why = StatusCode::kCorrupt) {
    if (result_.error.empty()) {
      result_.error = what;
      result_.code = why;
    }
    result_.ok = false;
    return false;
  }

  void finish_kernel() {
    if (state_ == nullptr) return;
    current_.races = std::move(*state_->log);
    if (state_->sw != nullptr) {
      current_.sw_haccrg_races = state_->sw->races();
      current_.sw_haccrg_locations = state_->sw->locations();
    }
    if (state_->grace != nullptr) {
      current_.grace_races = state_->grace->races();
      current_.grace_locations = state_->grace->locations();
    }
    result_.kernels.push_back(std::move(current_));
    current_ = KernelReplay();
    state_.reset();
  }

  bool begin_kernel(const Event& event) {
    finish_kernel();
    const TraceHeader& h = reader_.header();
    if (event.block_dim == 0 || event.block_dim > h.max_threads_per_sm)
      return fail("replay: kernel block_dim outside the machine's limits");
    // The event's heap and shadow fields size real allocations below; a
    // bit-flipped kKernelBegin must become a structured failure, not an
    // out-of-memory crash. Computed in 64 bits: the u32 fields can sum
    // past 4 GiB. Legitimate traces use tens of MiB.
    constexpr u64 kMaxReplayFootprint = u64{1} << 30;  // 1 GiB
    const u32 gran = h.global_granularity;
    const u64 shadow_bytes =
        (u64{event.app_heap_bytes} + gran - 1) / gran * rd::GlobalRdu::kEntryBytes;
    if (event.app_heap_bytes > kMaxReplayFootprint ||
        u64{event.shadow_base} + shadow_bytes + 8 > kMaxReplayFootprint)
      return fail("replay: kernel memory footprint exceeds the replay cap");
    state_ = std::make_unique<KernelState>(h, event, opts_);
    current_.label = event.label;
    current_.grid_dim = event.grid_dim;
    current_.block_dim = event.block_dim;
    current_.shared_mem_bytes = event.shared_mem_bytes;
    current_.app_heap_bytes = event.app_heap_bytes;
    current_.shadow_base = event.shadow_base;
    return true;
  }

  /// Bounds-check the identifiers a decoded event carries before they
  /// index replay state (a bit-flipped trace must fail, not corrupt).
  bool check_context(const Event& event, bool need_slot) {
    const TraceHeader& h = reader_.header();
    if (event.sm >= h.num_sms) return fail("replay: event SM id out of range");
    if (need_slot && event.block_slot >= h.max_blocks_per_sm)
      return fail("replay: event block slot out of range");
    if (event.warp_slot >= h.warps_per_sm())
      return fail("replay: event warp slot out of range");
    return true;
  }

  u32 thread_slot(const SlotState& slot, const Event& event, u8 lane) const {
    return slot.thread_base + event.warp_in_block * reader_.header().warp_size + lane;
  }

  rd::AccessInfo make_access(const SmState& sm, const SlotState& slot, const Event& event,
                             const TraceLane& lane, bool is_write) const {
    rd::AccessInfo a;
    a.addr = lane.addr;
    a.size = event.width;
    a.is_write = is_write;
    a.thread_slot = static_cast<u16>(thread_slot(slot, event, lane.lane));
    a.warp_in_sm = event.warp_slot;
    a.block_slot = event.block_slot;
    a.sm_id = event.sm;
    a.sync_id = sm.ids.sync_id(event.block_slot);
    a.fence_id = sm.ids.fence_id(event.warp_slot);
    a.sig = sm.ids.sig(a.thread_slot);
    a.in_cs = sm.ids.in_cs(a.thread_slot);
    a.l1_hit = lane.l1_hit;
    a.l1_fill_cycle = lane.l1_fill;
    a.pc = event.pc;
    a.cycle = event.cycle;
    return a;
  }

  void stage_waw(SmState& sm, const SlotState& slot, const Event& event, rd::MemSpace space) {
    // Allocation-free mirror of mem::intra_warp_waw: same granule
    // first-writer rule, same one-report-per-granule order (replay runs
    // this per store event, so the map the live helper builds would churn
    // the heap).
    const u32 width = event.width;
    waw_scratch_.clear();
    for (const TraceLane& lane : event.lanes) {
      const Addr granule = lane.addr & ~static_cast<Addr>(width - 1);
      WawGranule* found = nullptr;
      for (WawGranule& g : waw_scratch_)
        if (g.addr == granule) {
          found = &g;
          break;
        }
      if (found == nullptr) {
        waw_scratch_.push_back({granule, lane.lane, false});
        continue;
      }
      if (found->first_lane == lane.lane || found->reported) continue;
      found->reported = true;
      rd::RaceRecord race;
      race.type = rd::RaceType::kWaw;
      race.mechanism = rd::RaceMechanism::kIntraWarpWaw;
      race.space = space;
      race.granule_addr = granule;
      race.sm_id = event.sm;
      race.first_thread = static_cast<u16>(thread_slot(slot, event, found->first_lane));
      race.second_thread = static_cast<u16>(thread_slot(slot, event, lane.lane));
      race.pc = event.pc;
      race.cycle = event.cycle;
      sm.staging.record(race);
    }
  }

  bool handle_shared(const Event& event) {
    SmState& sm = *state_->sms[event.sm];
    const SlotState& slot = sm.slots[event.block_slot];
    const bool is_atomic = event.kind == EventKind::kSharedAtomic;
    const bool is_store = event.kind == EventKind::kSharedStore;
    for (const TraceLane& lane : event.lanes)
      if (thread_slot(slot, event, lane.lane) >= reader_.header().max_threads_per_sm)
        return fail("replay: shared-access thread slot out of range");

    if (opts_.hw && event.checked && sm.shared_rdu != nullptr) {
      if (is_store) stage_waw(sm, slot, event, rd::MemSpace::kShared);
      for (const TraceLane& lane : event.lanes)
        sm.shared_rdu->check(make_access(sm, slot, event, lane, is_store));
      current_.shared_checks += event.lanes.size();
      if (!sm.staging.empty()) sm.staging.drain_into(*state_->log);
    }
    if (!is_atomic) {
      if (state_->sw != nullptr) state_->sw->on_access(event, slot.block_id, slot.smem_base);
      if (state_->grace != nullptr)
        state_->grace->on_access(event, slot.block_id, slot.smem_base);
    }
    return true;
  }

  bool handle_global(const Event& event) {
    SmState& sm = *state_->sms[event.sm];
    const SlotState& slot = sm.slots[event.block_slot];
    const bool is_atomic = event.kind == EventKind::kGlobalAtomic;
    const bool is_store = event.kind == EventKind::kGlobalStore;
    for (const TraceLane& lane : event.lanes)
      if (thread_slot(slot, event, lane.lane) >= reader_.header().max_threads_per_sm)
        return fail("replay: global-access thread slot out of range");

    // The ID registers see every global access even when the shadow check
    // was statically filtered (mirrors Sm::exec_global_mem).
    if (opts_.hw && state_->cfg.enable_global && !event.lanes.empty())
      sm.ids.note_global_access(event.block_slot);

    if (opts_.hw && event.checked && state_->global_rdu != nullptr && !is_atomic) {
      if (is_store) stage_waw(sm, slot, event, rd::MemSpace::kGlobal);
      // The live engine drains the issue-time staging (intra-warp WAW)
      // before replaying deferred checks; same order here.
      if (!sm.staging.empty()) sm.staging.drain_into(*state_->log);
      // Allocation-free mirror of mem::coalesce: the live check order is
      // segments in first-touch order, lanes in touch order within each
      // segment. Record (segment index, lane index) pairs in touch
      // order, then walk them segment by segment.
      const u32 line = reader_.header().l1_line;
      seg_scratch_.clear();
      order_scratch_.clear();
      for (u32 i = 0; i < event.lanes.size(); ++i) {
        const Addr addr = event.lanes[i].addr;
        const Addr first = addr & ~static_cast<Addr>(line - 1);
        const Addr last =
            (addr + (event.width != 0 ? event.width - 1 : 0)) & ~static_cast<Addr>(line - 1);
        for (Addr seg = first; seg <= last; seg += line) {
          u32 idx = static_cast<u32>(seg_scratch_.size());
          for (u32 s = 0; s < seg_scratch_.size(); ++s)
            if (seg_scratch_[s] == seg) {
              idx = s;
              break;
            }
          if (idx == seg_scratch_.size()) seg_scratch_.push_back(seg);
          order_scratch_.push_back({idx, i});
          if (seg > last - line && seg == last) break;  // avoid overflow wrap
        }
      }
      shadow_scratch_.clear();
      for (u32 s = 0; s < seg_scratch_.size(); ++s) {
        for (const auto& [seg_idx, lane_idx] : order_scratch_) {
          if (seg_idx != s) continue;
          state_->global_rdu->check(
              make_access(sm, slot, event, event.lanes[lane_idx], is_store), shadow_scratch_);
          ++current_.global_checks;
        }
      }
    }
    if (!is_atomic && state_->sw != nullptr)
      state_->sw->on_access(event, slot.block_id, slot.smem_base);
    return true;
  }

  bool handle(const Event& event) {
    if (event.kind == EventKind::kKernelBegin) return begin_kernel(event);
    if (state_ == nullptr) return fail("replay: event before any kernel begin");
    ++current_.events;

    switch (event.kind) {
      case EventKind::kKernelEnd:
        current_.cycles = event.cycle;
        return true;
      case EventKind::kBlockLaunch: {
        if (!check_context(event, /*need_slot=*/true)) return false;
        SmState& sm = *state_->sms[event.sm];
        SlotState& slot = sm.slots[event.block_slot];
        slot = {true,          event.block_id, event.thread_base,
                event.num_warps, event.smem_base, event.smem_bytes};
        if (slot.thread_base + current_.block_dim > reader_.header().max_threads_per_sm)
          return fail("replay: block launch thread range out of bounds");
        sm.ids.on_block_launch(event.block_slot);
        for (u32 t = 0; t < current_.block_dim; ++t) sm.ids.reset_thread(slot.thread_base + t);
        if (sm.shared_rdu != nullptr && slot.smem_bytes > 0)
          sm.shared_rdu->reset_region(slot.smem_base, slot.smem_bytes,
                                      reader_.header().shared_mem_banks);
        return true;
      }
      case EventKind::kBlockFinish: {
        if (!check_context(event, /*need_slot=*/true)) return false;
        SmState& sm = *state_->sms[event.sm];
        if (sm.shared_rdu != nullptr && event.smem_bytes > 0)
          sm.shared_rdu->reset_region(event.smem_base, event.smem_bytes,
                                      reader_.header().shared_mem_banks);
        sm.slots[event.block_slot].active = false;
        return true;
      }
      case EventKind::kBarrierArrive:
        return check_context(event, /*need_slot=*/true);
      case EventKind::kBarrierRelease: {
        if (!check_context(event, /*need_slot=*/true)) return false;
        SmState& sm = *state_->sms[event.sm];
        if (sm.shared_rdu != nullptr && event.smem_bytes > 0)
          sm.shared_rdu->reset_region(event.smem_base, event.smem_bytes,
                                      reader_.header().shared_mem_banks);
        if (state_->cfg.enable_global) sm.ids.on_barrier(event.block_slot);
        const u32 block_id = sm.slots[event.block_slot].block_id;
        if (state_->sw != nullptr) state_->sw->on_barrier_release(block_id);
        if (state_->grace != nullptr) state_->grace->on_barrier_release(block_id);
        return true;
      }
      case EventKind::kFence:
        return check_context(event, /*need_slot=*/false);
      case EventKind::kFenceCommit:
        if (!check_context(event, /*need_slot=*/false)) return false;
        state_->sms[event.sm]->ids.on_fence(event.warp_slot);
        return true;
      case EventKind::kLockAcquire:
      case EventKind::kLockRelease: {
        if (!check_context(event, /*need_slot=*/true)) return false;
        SmState& sm = *state_->sms[event.sm];
        const SlotState& slot = sm.slots[event.block_slot];
        const rd::BloomGeometry geom{state_->cfg.bloom_bits, state_->cfg.bloom_bins};
        for (const TraceLane& lane : event.lanes) {
          const u32 thread = thread_slot(slot, event, lane.lane);
          if (thread >= reader_.header().max_threads_per_sm)
            return fail("replay: lock-event thread slot out of range");
          if (event.kind == EventKind::kLockAcquire)
            sm.ids.on_lock_acquired(thread, lane.addr, geom);
          else
            sm.ids.on_lock_releasing(thread);
        }
        return true;
      }
      default:
        break;
    }

    if (!check_context(event, /*need_slot=*/true)) return false;
    if (is_shared_access(event.kind)) return handle_shared(event);
    return handle_global(event);
  }

  TraceReader& reader_;
  const ReplayOptions& opts_;
  ReplayResult result_;
  KernelReplay current_;
  std::unique_ptr<KernelState> state_;
  std::vector<Addr> shadow_scratch_;

  // Per-event scratch (see stage_waw / handle_global): reused across
  // millions of events so the steady-state replay loop never allocates.
  struct WawGranule {
    Addr addr = 0;
    u8 first_lane = 0;
    bool reported = false;
  };
  std::vector<WawGranule> waw_scratch_;
  std::vector<Addr> seg_scratch_;
  std::vector<std::pair<u32, u32>> order_scratch_;  ///< (segment idx, lane idx)
};

}  // namespace

ReplayResult replay_events(TraceReader& reader, const ReplayOptions& opts) {
  if (!reader.ok()) {
    ReplayResult result;
    result.error = reader.error();
    result.code = reader.status().code();
    return result;
  }
  return ReplayEngine(reader, opts).run();
}

ReplayResult replay_trace(const std::string& path, const ReplayOptions& opts) {
  TraceReader reader(path);
  return replay_events(reader, opts);
}

}  // namespace haccrg::trace
