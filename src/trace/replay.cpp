#include "trace/replay.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "haccrg/global_rdu.hpp"
#include "haccrg/id_regs.hpp"
#include "haccrg/sharding.hpp"
#include "haccrg/shared_rdu.hpp"
#include "mem/device_memory.hpp"

namespace haccrg::trace {

RaceKey race_key(const rd::RaceRecord& r) {
  return {static_cast<u8>(r.space), static_cast<u8>(r.type), static_cast<u8>(r.mechanism),
          r.granule_addr, r.sm_id, r.first_thread, r.second_thread, r.pc, r.cycle};
}

std::set<RaceKey> race_identity_set(const rd::RaceLog& log) {
  std::set<RaceKey> keys;
  for (const rd::RaceRecord& r : log.races()) keys.insert(race_key(r));
  return keys;
}

std::string race_key_line(const RaceKey& key) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "space=%u type=%u mech=%u granule=0x%x sm=%u first=%u second=%u pc=%u cycle=%llu",
                static_cast<unsigned>(std::get<0>(key)), static_cast<unsigned>(std::get<1>(key)),
                static_cast<unsigned>(std::get<2>(key)),
                static_cast<unsigned>(std::get<3>(key)), std::get<4>(key),
                static_cast<unsigned>(std::get<5>(key)), static_cast<unsigned>(std::get<6>(key)),
                std::get<7>(key), static_cast<unsigned long long>(std::get<8>(key)));
  return buf;
}

std::vector<std::string> race_set_lines(const rd::RaceLog& log) {
  std::vector<std::string> lines;
  for (const RaceKey& key : race_identity_set(log)) lines.push_back(race_key_line(key));
  return lines;  // std::set iteration is already sorted
}

std::set<RaceKey> ReplayResult::race_set() const {
  std::set<RaceKey> all;
  for (const KernelReplay& k : kernels)
    for (const rd::RaceRecord& r : k.races.races()) all.insert(race_key(r));
  return all;
}

namespace {

/// Replica of the SM's BlockContext fields replay needs.
struct SlotState {
  bool active = false;
  u32 block_id = 0;
  u32 thread_base = 0;
  u32 num_warps = 0;
  u32 smem_base = 0;
  u32 smem_bytes = 0;
};

/// Per-SM detection state, heap-pinned: the SharedRdu keeps a pointer to
/// `staging` and the global fence reader indexes into the SmState array,
/// so neither may move after construction.
struct SmState {
  rd::RaceStaging staging;
  rd::SmIdRegisters ids;
  std::unique_ptr<rd::SharedRdu> shared_rdu;
  std::vector<SlotState> slots;

  SmState(u32 sm_id, const TraceHeader& h, const rd::HaccrgConfig& cfg,
          const rd::DetectPolicy& policy)
      : ids(h.max_blocks_per_sm, h.warps_per_sm(), h.max_threads_per_sm),
        slots(h.max_blocks_per_sm) {
    if (cfg.enable_shared)
      shared_rdu = std::make_unique<rd::SharedRdu>(sm_id, h.shared_mem_per_sm, cfg, policy,
                                                   staging);
  }
};

/// All state for one kernel launch, torn down and rebuilt at every
/// kKernelBegin exactly as the live Gpu rebuilds its detectors — or,
/// when a ReplayArena is in play, cleared and reused (reset_for).
struct KernelState {
  rd::HaccrgConfig cfg;
  rd::DetectPolicy policy;
  TraceHeader built_for;  ///< header the state was sized by (arena matching)
  std::vector<std::unique_ptr<SmState>> sms;
  std::unique_ptr<mem::DeviceMemory> memory;  ///< shadow region only
  std::unique_ptr<rd::RaceLog> log;
  std::unique_ptr<rd::GlobalRdu> global_rdu;
  std::unique_ptr<SwHaccrgReplay> sw;
  std::unique_ptr<GraceReplay> grace;

  KernelState(const TraceHeader& header, const Event& begin, const ReplayOptions& opts)
      : cfg(header.haccrg_config()), built_for(header) {
    policy.warp_size = header.warp_size;
    policy.warp_regrouping = header.warp_regrouping;
    policy.fence_gating = !header.disable_fence_gate;
    policy.bloom = {header.bloom_bits, header.bloom_bins};
    log = std::make_unique<rd::RaceLog>(header.max_recorded_races);
    for (u32 s = 0; s < header.num_sms; ++s)
      sms.push_back(std::make_unique<SmState>(s, header, cfg, policy));
    if (opts.hw && cfg.enable_global) {
      // Device memory here backs only the shadow region; application data
      // is functional state the detectors never read.
      const u32 shadow_bytes =
          rd::GlobalRdu::shadow_bytes_for(begin.app_heap_bytes, cfg.global_granularity);
      memory = std::make_unique<mem::DeviceMemory>(begin.shadow_base + shadow_bytes + 8);
      make_global_rdu();
      global_rdu->init_shadow(begin.shadow_base, begin.app_heap_bytes);
    }
    if (opts.sw_haccrg)
      sw = std::make_unique<SwHaccrgReplay>(begin.app_heap_bytes, begin.grid_dim,
                                            begin.block_dim, opts.sw_is_safe);
    if (opts.grace)
      grace = std::make_unique<GraceReplay>(begin.grid_dim, begin.block_dim, opts.sw_is_safe);
    set_shard(opts);
  }

  void make_global_rdu() {
    auto* sm_array = &sms;
    rd::FenceIdReader fence_reader = [sm_array](u32 sm_id, u32 warp_in_sm) -> u8 {
      return (*sm_array)[sm_id]->ids.fence_id(warp_in_sm);
    };
    global_rdu =
        std::make_unique<rd::GlobalRdu>(*memory, cfg, policy, *log, std::move(fence_reader));
  }

  void set_shard(const ReplayOptions& opts) {
    for (auto& sm : sms)
      if (sm->shared_rdu != nullptr) sm->shared_rdu->set_shard(opts.shard_count, opts.shard_index);
    if (global_rdu != nullptr) global_rdu->set_shard(opts.shard_count, opts.shard_index);
  }

  /// Clear-don't-free reuse: reset every piece of detector state to its
  /// construction value for a new kernel, keeping all heap allocations.
  /// False when the cached state cannot serve this kernel (different
  /// machine/detector header, software emulators requested) — the
  /// caller builds fresh. Only the shadow memory is rebuilt when a
  /// larger heap shows up.
  bool reset_for(const TraceHeader& header, const Event& begin, const ReplayOptions& opts) {
    TraceHeader a = built_for;
    TraceHeader b = header;
    // v1 and v2 recordings of the same machine are interchangeable here:
    // the version picks the file framing, not the detector state.
    a.version = b.version = 0;
    if (!(a == b)) return false;
    if (sw != nullptr || grace != nullptr || opts.sw_haccrg || opts.grace) return false;
    const bool want_global = opts.hw && cfg.enable_global;
    if (want_global != (global_rdu != nullptr)) return false;
    log->clear();
    for (auto& sm : sms) {
      sm->staging.clear();
      sm->ids.reset();
      std::fill(sm->slots.begin(), sm->slots.end(), SlotState{});
      if (sm->shared_rdu != nullptr)
        sm->shared_rdu->reset_region(0, header.shared_mem_per_sm, header.shared_mem_banks);
    }
    if (want_global) {
      const u32 shadow_bytes =
          rd::GlobalRdu::shadow_bytes_for(begin.app_heap_bytes, cfg.global_granularity);
      const u64 need = u64{begin.shadow_base} + shadow_bytes + 8;
      if (memory == nullptr || memory->size() < need) {
        memory = std::make_unique<mem::DeviceMemory>(static_cast<u32>(need));
        make_global_rdu();
      }
      global_rdu->init_shadow(begin.shadow_base, begin.app_heap_bytes);
    }
    set_shard(opts);
    return true;
  }
};

}  // namespace

/// Arena internals: cached KernelStates keyed by shard assignment, so
/// concurrent shard engines sharing one arena never contend for the
/// same slot. The mutex guards only acquire/release (per kernel, not
/// per event).
struct ReplayArena::Impl {
  struct Slot {
    std::unique_ptr<KernelState> state;
  };
  std::mutex mu;
  std::map<std::pair<u32, u32>, Slot> slots;
  u64 reuses = 0;
  u64 builds = 0;
};

ReplayArena::ReplayArena() : impl_(std::make_unique<Impl>()) {}
ReplayArena::~ReplayArena() = default;

u64 ReplayArena::reuses() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->reuses;
}

u64 ReplayArena::builds() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->builds;
}

namespace {

class ReplayEngine {
 public:
  ReplayEngine(const TraceHeader& header, const ReplayOptions& opts)
      : header_(header), opts_(opts) {}

  /// Streaming replay: decode events from the reader one at a time.
  ReplayResult run(TraceReader& reader) {
    result_.header = header_;
    Event event;
    while (reader.next(event)) {
      if (check_cancel()) return std::move(result_);
      ++result_.total_events;
      if (!handle(event)) return std::move(result_);
    }
    if (!reader.error().empty()) {
      fail(reader.error(), reader.status().code());
      return std::move(result_);
    }
    finish_kernel();
    result_.ok = true;
    return std::move(result_);
  }

  /// Pre-decoded replay: the varint layer was paid once by decode_trace.
  ReplayResult run(const Event* events, size_t count) {
    result_.header = header_;
    for (size_t i = 0; i < count; ++i) {
      if (check_cancel()) return std::move(result_);
      ++result_.total_events;
      if (!handle(events[i])) return std::move(result_);
    }
    finish_kernel();
    result_.ok = true;
    return std::move(result_);
  }

 private:
  /// Cooperative cancellation poll, once per kCancelCheckInterval events
  /// (cheap: one predictable branch on the polled cycles). True when the
  /// replay must stop — the result is already marked failed.
  bool check_cancel() {
    if (opts_.cancel == nullptr || result_.total_events % kCancelCheckInterval != 0)
      return false;
    if (!opts_.cancel->cancelled()) return false;
    fail("replay: cancelled (deadline exceeded)", StatusCode::kDeadlineExceeded);
    return true;
  }

  bool fail(const std::string& what, StatusCode why = StatusCode::kCorrupt) {
    if (result_.error.empty()) {
      result_.error = what;
      result_.code = why;
    }
    result_.ok = false;
    return false;
  }

  void finish_kernel() {
    if (state_ == nullptr) return;
    if (opts_.arena != nullptr) {
      // The state goes back to the arena for the next kernel, so copy
      // the log out instead of gutting it.
      current_.races = *state_->log;
    } else {
      current_.races = std::move(*state_->log);
    }
    if (state_->sw != nullptr) {
      current_.sw_haccrg_races = state_->sw->races();
      current_.sw_haccrg_locations = state_->sw->locations();
    }
    if (state_->grace != nullptr) {
      current_.grace_races = state_->grace->races();
      current_.grace_locations = state_->grace->locations();
    }
    result_.kernels.push_back(std::move(current_));
    current_ = KernelReplay();
    if (opts_.arena != nullptr) {
      ReplayArena::Impl& arena = opts_.arena->impl();
      std::lock_guard<std::mutex> lock(arena.mu);
      arena.slots[{opts_.shard_count, opts_.shard_index}].state = std::move(state_);
    }
    state_.reset();
  }

  bool begin_kernel(const Event& event) {
    finish_kernel();
    const TraceHeader& h = header_;
    if (event.block_dim == 0 || event.block_dim > h.max_threads_per_sm)
      return fail("replay: kernel block_dim outside the machine's limits");
    // The event's heap and shadow fields size real allocations below; a
    // bit-flipped kKernelBegin must become a structured failure, not an
    // out-of-memory crash. Computed in 64 bits: the u32 fields can sum
    // past 4 GiB. Legitimate traces use tens of MiB.
    constexpr u64 kMaxReplayFootprint = u64{1} << 30;  // 1 GiB
    const u32 gran = h.global_granularity;
    const u64 shadow_bytes =
        (u64{event.app_heap_bytes} + gran - 1) / gran * rd::GlobalRdu::kEntryBytes;
    if (event.app_heap_bytes > kMaxReplayFootprint ||
        u64{event.shadow_base} + shadow_bytes + 8 > kMaxReplayFootprint)
      return fail("replay: kernel memory footprint exceeds the replay cap");
    if (opts_.arena != nullptr) {
      ReplayArena::Impl& arena = opts_.arena->impl();
      std::unique_ptr<KernelState> cached;
      {
        std::lock_guard<std::mutex> lock(arena.mu);
        auto it = arena.slots.find({opts_.shard_count, opts_.shard_index});
        if (it != arena.slots.end()) cached = std::move(it->second.state);
      }
      const bool reused = cached != nullptr && cached->reset_for(h, event, opts_);
      if (reused) {
        state_ = std::move(cached);
      } else {
        // An incompatible cached state is simply dropped; the fresh
        // build replaces it in the slot at the next finish_kernel.
        state_ = std::make_unique<KernelState>(h, event, opts_);
      }
      std::lock_guard<std::mutex> lock(arena.mu);
      reused ? ++arena.reuses : ++arena.builds;
    } else {
      state_ = std::make_unique<KernelState>(h, event, opts_);
    }
    current_.label = event.label;
    current_.grid_dim = event.grid_dim;
    current_.block_dim = event.block_dim;
    current_.shared_mem_bytes = event.shared_mem_bytes;
    current_.app_heap_bytes = event.app_heap_bytes;
    current_.shadow_base = event.shadow_base;
    return true;
  }

  /// Bounds-check the identifiers a decoded event carries before they
  /// index replay state (a bit-flipped trace must fail, not corrupt).
  bool check_context(const Event& event, bool need_slot) {
    const TraceHeader& h = header_;
    if (event.sm >= h.num_sms) return fail("replay: event SM id out of range");
    if (need_slot && event.block_slot >= h.max_blocks_per_sm)
      return fail("replay: event block slot out of range");
    if (event.warp_slot >= h.warps_per_sm())
      return fail("replay: event warp slot out of range");
    return true;
  }

  u32 thread_slot(const SlotState& slot, const Event& event, u8 lane) const {
    return slot.thread_base + event.warp_in_block * header_.warp_size + lane;
  }

  rd::AccessInfo make_access(const SmState& sm, const SlotState& slot, const Event& event,
                             const TraceLane& lane, bool is_write) const {
    rd::AccessInfo a;
    a.addr = lane.addr;
    a.size = event.width;
    a.is_write = is_write;
    a.thread_slot = static_cast<u16>(thread_slot(slot, event, lane.lane));
    a.warp_in_sm = event.warp_slot;
    a.block_slot = event.block_slot;
    a.sm_id = event.sm;
    a.sync_id = sm.ids.sync_id(event.block_slot);
    a.fence_id = sm.ids.fence_id(event.warp_slot);
    a.sig = sm.ids.sig(a.thread_slot);
    a.in_cs = sm.ids.in_cs(a.thread_slot);
    a.l1_hit = lane.l1_hit;
    a.l1_fill_cycle = lane.l1_fill;
    a.pc = event.pc;
    a.cycle = event.cycle;
    return a;
  }

  void stage_waw(SmState& sm, const SlotState& slot, const Event& event, rd::MemSpace space) {
    // Allocation-free mirror of mem::intra_warp_waw: same granule
    // first-writer rule, same one-report-per-granule order (replay runs
    // this per store event, so the map the live helper builds would churn
    // the heap).
    const u32 width = event.width;
    waw_scratch_.clear();
    for (const TraceLane& lane : event.lanes) {
      const Addr granule = lane.addr & ~static_cast<Addr>(width - 1);
      // Sharded replay: the granule's owner reports its intra-warp WAWs
      // (same ownership rule as the RDU shadow checks, so per-shard race
      // sets stay disjoint).
      if (!rd::shard_owns(granule, opts_.shard_count, opts_.shard_index)) continue;
      WawGranule* found = nullptr;
      for (WawGranule& g : waw_scratch_)
        if (g.addr == granule) {
          found = &g;
          break;
        }
      if (found == nullptr) {
        waw_scratch_.push_back({granule, lane.lane, false});
        continue;
      }
      if (found->first_lane == lane.lane || found->reported) continue;
      found->reported = true;
      rd::RaceRecord race;
      race.type = rd::RaceType::kWaw;
      race.mechanism = rd::RaceMechanism::kIntraWarpWaw;
      race.space = space;
      race.granule_addr = granule;
      race.sm_id = event.sm;
      race.first_thread = static_cast<u16>(thread_slot(slot, event, found->first_lane));
      race.second_thread = static_cast<u16>(thread_slot(slot, event, lane.lane));
      race.pc = event.pc;
      race.cycle = event.cycle;
      sm.staging.record(race);
    }
  }

  bool handle_shared(const Event& event) {
    SmState& sm = *state_->sms[event.sm];
    const SlotState& slot = sm.slots[event.block_slot];
    const bool is_atomic = event.kind == EventKind::kSharedAtomic;
    const bool is_store = event.kind == EventKind::kSharedStore;
    for (const TraceLane& lane : event.lanes)
      if (thread_slot(slot, event, lane.lane) >= header_.max_threads_per_sm)
        return fail("replay: shared-access thread slot out of range");

    if (opts_.hw && event.checked && sm.shared_rdu != nullptr) {
      if (is_store) stage_waw(sm, slot, event, rd::MemSpace::kShared);
      // Count granule checks via the RDU's own (shard-filtered) counter
      // so per-shard counts partition the serial count exactly.
      const u64 before = sm.shared_rdu->checks();
      for (const TraceLane& lane : event.lanes)
        sm.shared_rdu->check(make_access(sm, slot, event, lane, is_store));
      current_.shared_checks += sm.shared_rdu->checks() - before;
      if (!sm.staging.empty()) sm.staging.drain_into(*state_->log);
    }
    if (!is_atomic) {
      if (state_->sw != nullptr) state_->sw->on_access(event, slot.block_id, slot.smem_base);
      if (state_->grace != nullptr)
        state_->grace->on_access(event, slot.block_id, slot.smem_base);
    }
    return true;
  }

  bool handle_global(const Event& event) {
    SmState& sm = *state_->sms[event.sm];
    const SlotState& slot = sm.slots[event.block_slot];
    const bool is_atomic = event.kind == EventKind::kGlobalAtomic;
    const bool is_store = event.kind == EventKind::kGlobalStore;
    for (const TraceLane& lane : event.lanes)
      if (thread_slot(slot, event, lane.lane) >= header_.max_threads_per_sm)
        return fail("replay: global-access thread slot out of range");

    // The ID registers see every global access even when the shadow check
    // was statically filtered (mirrors Sm::exec_global_mem).
    if (opts_.hw && state_->cfg.enable_global && !event.lanes.empty())
      sm.ids.note_global_access(event.block_slot);

    if (opts_.hw && event.checked && state_->global_rdu != nullptr && !is_atomic) {
      if (is_store) stage_waw(sm, slot, event, rd::MemSpace::kGlobal);
      // The live engine drains the issue-time staging (intra-warp WAW)
      // before replaying deferred checks; same order here.
      if (!sm.staging.empty()) sm.staging.drain_into(*state_->log);
      // Allocation-free mirror of mem::coalesce: the live check order is
      // segments in first-touch order, lanes in touch order within each
      // segment. Record (segment index, lane index) pairs in touch
      // order, then walk them segment by segment.
      const u32 line = header_.l1_line;
      seg_scratch_.clear();
      order_scratch_.clear();
      for (u32 i = 0; i < event.lanes.size(); ++i) {
        const Addr addr = event.lanes[i].addr;
        const Addr first = addr & ~static_cast<Addr>(line - 1);
        const Addr last =
            (addr + (event.width != 0 ? event.width - 1 : 0)) & ~static_cast<Addr>(line - 1);
        for (Addr seg = first; seg <= last; seg += line) {
          u32 idx = static_cast<u32>(seg_scratch_.size());
          for (u32 s = 0; s < seg_scratch_.size(); ++s)
            if (seg_scratch_[s] == seg) {
              idx = s;
              break;
            }
          if (idx == seg_scratch_.size()) seg_scratch_.push_back(seg);
          order_scratch_.push_back({idx, i});
          if (seg > last - line && seg == last) break;  // avoid overflow wrap
        }
      }
      shadow_scratch_.clear();
      // As with shared checks: the RDU's counter is shard-filtered, so
      // per-shard counts sum exactly to the serial count.
      const u64 before = state_->global_rdu->checks();
      for (u32 s = 0; s < seg_scratch_.size(); ++s) {
        for (const auto& [seg_idx, lane_idx] : order_scratch_) {
          if (seg_idx != s) continue;
          state_->global_rdu->check(
              make_access(sm, slot, event, event.lanes[lane_idx], is_store), shadow_scratch_);
        }
      }
      current_.global_checks += state_->global_rdu->checks() - before;
    }
    if (!is_atomic && state_->sw != nullptr)
      state_->sw->on_access(event, slot.block_id, slot.smem_base);
    return true;
  }

  bool handle(const Event& event) {
    if (event.kind == EventKind::kKernelBegin) return begin_kernel(event);
    if (state_ == nullptr) return fail("replay: event before any kernel begin");
    ++current_.events;

    switch (event.kind) {
      case EventKind::kKernelEnd:
        current_.cycles = event.cycle;
        return true;
      case EventKind::kBlockLaunch: {
        if (!check_context(event, /*need_slot=*/true)) return false;
        SmState& sm = *state_->sms[event.sm];
        SlotState& slot = sm.slots[event.block_slot];
        slot = {true,          event.block_id, event.thread_base,
                event.num_warps, event.smem_base, event.smem_bytes};
        if (slot.thread_base + current_.block_dim > header_.max_threads_per_sm)
          return fail("replay: block launch thread range out of bounds");
        sm.ids.on_block_launch(event.block_slot);
        for (u32 t = 0; t < current_.block_dim; ++t) sm.ids.reset_thread(slot.thread_base + t);
        if (sm.shared_rdu != nullptr && slot.smem_bytes > 0)
          sm.shared_rdu->reset_region(slot.smem_base, slot.smem_bytes,
                                      header_.shared_mem_banks);
        return true;
      }
      case EventKind::kBlockFinish: {
        if (!check_context(event, /*need_slot=*/true)) return false;
        SmState& sm = *state_->sms[event.sm];
        if (sm.shared_rdu != nullptr && event.smem_bytes > 0)
          sm.shared_rdu->reset_region(event.smem_base, event.smem_bytes,
                                      header_.shared_mem_banks);
        sm.slots[event.block_slot].active = false;
        return true;
      }
      case EventKind::kBarrierArrive:
        return check_context(event, /*need_slot=*/true);
      case EventKind::kBarrierRelease: {
        if (!check_context(event, /*need_slot=*/true)) return false;
        SmState& sm = *state_->sms[event.sm];
        if (sm.shared_rdu != nullptr && event.smem_bytes > 0)
          sm.shared_rdu->reset_region(event.smem_base, event.smem_bytes,
                                      header_.shared_mem_banks);
        if (state_->cfg.enable_global) sm.ids.on_barrier(event.block_slot);
        const u32 block_id = sm.slots[event.block_slot].block_id;
        if (state_->sw != nullptr) state_->sw->on_barrier_release(block_id);
        if (state_->grace != nullptr) state_->grace->on_barrier_release(block_id);
        return true;
      }
      case EventKind::kFence:
        return check_context(event, /*need_slot=*/false);
      case EventKind::kFenceCommit:
        if (!check_context(event, /*need_slot=*/false)) return false;
        state_->sms[event.sm]->ids.on_fence(event.warp_slot);
        return true;
      case EventKind::kLockAcquire:
      case EventKind::kLockRelease: {
        if (!check_context(event, /*need_slot=*/true)) return false;
        SmState& sm = *state_->sms[event.sm];
        const SlotState& slot = sm.slots[event.block_slot];
        const rd::BloomGeometry geom{state_->cfg.bloom_bits, state_->cfg.bloom_bins};
        for (const TraceLane& lane : event.lanes) {
          const u32 thread = thread_slot(slot, event, lane.lane);
          if (thread >= header_.max_threads_per_sm)
            return fail("replay: lock-event thread slot out of range");
          if (event.kind == EventKind::kLockAcquire)
            sm.ids.on_lock_acquired(thread, lane.addr, geom);
          else
            sm.ids.on_lock_releasing(thread);
        }
        return true;
      }
      default:
        break;
    }

    if (!check_context(event, /*need_slot=*/true)) return false;
    if (is_shared_access(event.kind)) return handle_shared(event);
    return handle_global(event);
  }

  const TraceHeader& header_;
  const ReplayOptions& opts_;
  ReplayResult result_;
  KernelReplay current_;
  std::unique_ptr<KernelState> state_;
  std::vector<Addr> shadow_scratch_;

  // Per-event scratch (see stage_waw / handle_global): reused across
  // millions of events so the steady-state replay loop never allocates.
  struct WawGranule {
    Addr addr = 0;
    u8 first_lane = 0;
    bool reported = false;
  };
  std::vector<WawGranule> waw_scratch_;
  std::vector<Addr> seg_scratch_;
  std::vector<std::pair<u32, u32>> order_scratch_;  ///< (segment idx, lane idx)
};

}  // namespace

ReplayResult replay_events(TraceReader& reader, const ReplayOptions& opts) {
  if (!reader.ok()) {
    ReplayResult result;
    result.error = reader.error();
    result.code = reader.status().code();
    return result;
  }
  return ReplayEngine(reader.header(), opts).run(reader);
}

ReplayResult replay_trace(const std::string& path, const ReplayOptions& opts) {
  TraceReader reader(path);
  return replay_events(reader, opts);
}

Status decode_trace(TraceReader& reader, DecodedTrace& out) {
  if (!reader.ok()) return reader.status();
  reader.rewind();
  DecodedTrace decoded;
  decoded.header = reader.header();
  decoded.bytes = reader.bytes_total();
  Event event;
  while (reader.next(event)) decoded.events.push_back(event);
  if (!reader.error().empty()) return reader.status();
  out = std::move(decoded);
  return Status();
}

Status decode_trace_kernel(TraceReader& reader, const TraceIndexKernel& kernel,
                           DecodedTrace& out) {
  if (!reader.ok()) return reader.status();
  // A kernel-begin record resets the cycle delta base to 0 (format.hpp),
  // so seeking to one needs no carried decode state.
  if (Status seek = reader.seek(kernel.begin_offset, /*cycle=*/0, /*events_before=*/0);
      !seek.ok())
    return seek;
  DecodedTrace decoded;
  decoded.header = reader.header();
  decoded.bytes = kernel.end_offset - kernel.begin_offset;
  Event event;
  if (!reader.next(event) || event.kind != EventKind::kKernelBegin)
    return reader.error().empty()
               ? Status::corrupt("trace index: kernel offset does not start a kernel")
               : reader.status();
  decoded.events.push_back(event);
  for (u64 i = 0; i < kernel.events; ++i) {
    if (!reader.next(event))
      return reader.error().empty() ? Status::corrupt("trace index: kernel shorter than indexed")
                                    : reader.status();
    decoded.events.push_back(event);
  }
  out = std::move(decoded);
  return Status();
}

ReplayResult replay_decoded(const DecodedTrace& trace, const ReplayOptions& opts) {
  return ReplayEngine(trace.header, opts).run(trace.events.data(), trace.events.size());
}

ReplayResult replay_sharded(const DecodedTrace& trace, u32 workers, const ReplayOptions& opts) {
  if (workers <= 1) {
    ReplayOptions serial = opts;
    serial.shard_count = 1;
    serial.shard_index = 0;
    return replay_decoded(trace, serial);
  }
  std::vector<ReplayResult> parts(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (u32 w = 0; w < workers; ++w) {
    threads.emplace_back([&trace, &parts, &opts, workers, w] {
      ReplayOptions shard = opts;
      shard.shard_count = workers;
      shard.shard_index = w;
      parts[w] = replay_decoded(trace, shard);
    });
  }
  for (std::thread& t : threads) t.join();
  for (u32 w = 0; w < workers; ++w)
    if (!parts[w].ok) return std::move(parts[w]);
  // Deterministic merge: shard race sets are disjoint (each granule has
  // exactly one owner), so union-in-shard-order rebuilds the serial
  // result independent of thread scheduling.
  ReplayResult merged = std::move(parts[0]);
  for (u32 w = 1; w < workers; ++w) {
    ReplayResult& part = parts[w];
    if (part.kernels.size() != merged.kernels.size()) {
      merged.ok = false;
      merged.error = "sharded replay: shard kernel counts diverge";
      merged.code = StatusCode::kCorrupt;
      return merged;
    }
    for (size_t k = 0; k < merged.kernels.size(); ++k) {
      KernelReplay& into = merged.kernels[k];
      const KernelReplay& from = part.kernels[k];
      for (const rd::RaceRecord& race : from.races.races()) into.races.record(race);
      into.shared_checks += from.shared_checks;
      into.global_checks += from.global_checks;
    }
  }
  return merged;
}

}  // namespace haccrg::trace
