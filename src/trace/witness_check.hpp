// Witness validation: turn a solver-produced race witness (two concrete
// accesses — thread ids, block ids, byte addresses) into a minimal
// synthetic access trace and replay the hardware detectors over it. A
// witness is *reproduced* when the two-access trace makes an RDU report
// a race between the pair's pcs — closing the loop between the static
// verifier's claim ("these two accesses can collide") and the dynamic
// machinery that defines what a race is in this codebase.
//
// The synthetic kernel is the smallest machine state that can host the
// pair: one SM, one or two resident blocks, the two access events (one
// combined two-lane event when the witness is an intra-warp same-pc
// store pair, which is how the hardware sees a lockstep WAW), no
// barriers or fences. Addresses are witness addresses verbatim: shared
// offsets are SM-local (block 1's smem window starts at 0), global
// addresses are heap offsets with parameter bases at 0 — the same
// normalization the dependence solver enumerates under.
#pragma once

#include <string>

#include "common/status.hpp"
#include "common/types.hpp"

namespace haccrg::trace {

/// One concrete access pair to validate. Self-contained (no dependency
/// on the analysis layer); callers map a RaceWitness + its two
/// StaticAccesses onto these fields.
struct WitnessSpec {
  bool shared_space = false;
  u32 pc1 = 0, pc2 = 0;
  bool store1 = true, store2 = true;
  u32 width1 = 4, width2 = 4;
  u32 tid1 = 0, cta1 = 0;  ///< first access: thread id + block id
  u32 tid2 = 0, cta2 = 0;
  u64 addr1 = 0, addr2 = 0;  ///< byte addresses (space-local, see above)
  u32 block_dim = 32;
  u32 warp_size = 32;
  u32 granularity = 4;  ///< detector granularity for the pair's space
};

struct WitnessCheckResult {
  bool reproduced = false;  ///< the replayed detectors flagged the pair
  u32 races = 0;            ///< total race records the replay produced
  std::string detail;       ///< first race line, or why nothing fired
};

/// Synthesize the two-access trace at `scratch_path` (overwritten; the
/// caller owns cleanup), replay the hardware detectors over it, and
/// report whether the pair races. Returns non-OK only for structural
/// failures (unwritable scratch file, spec that cannot be hosted —
/// tid >= block_dim, zero widths); "the detectors stayed silent" is a
/// successful check with reproduced=false.
Status check_witness(const WitnessSpec& spec, const std::string& scratch_path,
                     WitnessCheckResult& out);

}  // namespace haccrg::trace
