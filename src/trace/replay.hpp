// Trace-driven detection replay: stream a recorded access trace straight
// into the race detectors — the hardware SharedRdu/GlobalRdu pair, the
// software-HAccRG tag emulator, and the GRace-add baseline — without the
// timing simulator. The file's event order is the engine's deterministic
// phase order (see format.hpp), so replay reconstructs every ID-register
// and shadow-state read exactly as the live run performed it and produces
// the same set of race records; the equivalence tests and the
// `haccrg-trace diff` command assert this.
//
// One known divergence window: the RaceLog stops recording new unique
// races at max_recorded_races. Live and replay log identical record
// *sets* below the cap; if the cap binds mid-cycle the two may keep a
// different subset (insertion order within a cycle differs — shared
// events of all SMs replay before global ones). DESIGN.md discusses this;
// none of the registry kernels comes near the cap.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "haccrg/race.hpp"
#include "trace/index.hpp"
#include "trace/reader.hpp"
#include "trace/sw_replay.hpp"

namespace haccrg::trace {

/// Full identity of a recorded race: every RaceRecord field, so replay-
/// vs-live comparison is bit-exact, not merely dedup-key-exact.
/// (space, type, mechanism, granule, sm, first, second, pc, cycle)
using RaceKey = std::tuple<u8, u8, u8, Addr, u32, u16, u16, u32, Cycle>;

RaceKey race_key(const rd::RaceRecord& record);

std::set<RaceKey> race_identity_set(const rd::RaceLog& log);

/// Canonical one-line rendering of a race identity — what `haccrg-trace`
/// writes to race-set files and what `diff` compares. Lines sort to a
/// deterministic order; '#' lines in a race-set file are comments.
std::string race_key_line(const RaceKey& key);

/// Sorted canonical lines for a whole log.
std::vector<std::string> race_set_lines(const rd::RaceLog& log);

class ReplayArena;

/// Granule-batch size of the cooperative cancellation poll: the replay
/// engine checks its CancelToken every this many events (and at kernel
/// boundaries), so a cancelled replay overruns by at most one batch.
inline constexpr u64 kCancelCheckInterval = 512;

/// Cooperative cancellation flag for long replays. The owner (the
/// serving watchdog, a deadline) sets it from any thread; every shard
/// engine polling it aborts with StatusCode::kDeadlineExceeded at the
/// next batch boundary. Reusable after reset().
class CancelToken {
 public:
  void cancel() { flag_.store(1, std::memory_order_relaxed); }
  void reset() { flag_.store(0, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed) != 0; }

 private:
  std::atomic<u32> flag_{0};
};

/// Which detectors to run over the trace.
struct ReplayOptions {
  bool hw = true;         ///< SharedRdu/GlobalRdu (per the recorded config)
  bool sw_haccrg = false; ///< software-HAccRG tag emulator
  bool grace = false;     ///< GRace-add bitmap emulator
  /// Static-prune predicate for the software emulators (the live runs
  /// pass InstrumentOptions::static_prune); null = instrument everything.
  std::function<bool(u32)> sw_is_safe;

  /// Address-sharded hardware replay (see shard_of_addr in
  /// haccrg/options.hpp): this engine executes only granule checks owned
  /// by shard `shard_index` of `shard_count`. Every shard still replays
  /// all events — ID registers are cheap and globally read — so the
  /// owner shard's state for its granules evolves exactly as serial
  /// replay's, and per-shard race sets are disjoint (replay_sharded
  /// merges them). Sharding applies to the hardware detectors only; the
  /// software emulators ignore it and should be left off when
  /// shard_count > 1.
  u32 shard_count = 1;
  u32 shard_index = 0;

  /// Pre-warmed replay context (clear-don't-free): when set, per-kernel
  /// detector state is reset and reused across kernels and across
  /// replay calls instead of rebuilt, as long as the trace header
  /// matches. Thread-safe; serving workers share a pool of these.
  ReplayArena* arena = nullptr;

  /// Cooperative cancellation: polled every kCancelCheckInterval events.
  /// replay_sharded passes the same token to every shard engine.
  const CancelToken* cancel = nullptr;
};

/// Cache of built per-kernel detector state keyed by shard assignment.
/// acquire/release are internal to the replay engine; callers just keep
/// the arena alive across replays and read the reuse counters.
class ReplayArena {
 public:
  ReplayArena();
  ~ReplayArena();
  ReplayArena(const ReplayArena&) = delete;
  ReplayArena& operator=(const ReplayArena&) = delete;

  /// Kernels that reused a cached context / built one from scratch.
  u64 reuses() const;
  u64 builds() const;

  struct Impl;
  Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// Replay outcome for one kernel launch found in the trace.
struct KernelReplay {
  std::string label;
  u32 grid_dim = 0;
  u32 block_dim = 0;
  u32 shared_mem_bytes = 0;
  u32 app_heap_bytes = 0;
  Addr shadow_base = 0;
  Cycle cycles = 0;  ///< recorded run's total cycles (from kKernelEnd)
  u64 events = 0;

  // Hardware detection (ReplayOptions::hw).
  rd::RaceLog races;
  u64 shared_checks = 0;
  u64 global_checks = 0;

  // Software emulators.
  u64 sw_haccrg_races = 0;
  u64 grace_races = 0;
  std::set<SwLocation> sw_haccrg_locations;
  std::set<SwLocation> grace_locations;
};

struct ReplayResult {
  bool ok = false;
  std::string error;
  /// Structured form of error(): the reader's code for decode failures
  /// (kNotFound/kIoError/kBadMagic/kVersionMismatch/kCorrupt), kCorrupt
  /// for events that decoded but carry impossible state. kOk on success.
  StatusCode code = StatusCode::kOk;
  Status status() const { return ok ? Status() : Status(code, error); }
  TraceHeader header;
  std::vector<KernelReplay> kernels;
  u64 total_events = 0;

  /// Union of every kernel's hardware race identities.
  std::set<RaceKey> race_set() const;
};

/// Open `path` and replay every kernel in it.
ReplayResult replay_trace(const std::string& path, const ReplayOptions& opts = {});

/// Replay from an already-open reader (positioned at the first event).
ReplayResult replay_events(TraceReader& reader, const ReplayOptions& opts = {});

// --- Decode-once, replay-many ------------------------------------------------

/// A fully decoded trace: header plus every event, validated during the
/// decode. Replaying from this skips the varint layer entirely — the
/// serving path decodes a trace once and replays it for every job (and
/// every shard) that references it.
struct DecodedTrace {
  TraceHeader header;
  std::vector<Event> events;
  u64 bytes = 0;  ///< encoded size (throughput accounting)
};

/// Decode every event of `reader` into `out` (reader is rewound first).
/// On failure `out` is untouched.
Status decode_trace(TraceReader& reader, DecodedTrace& out);

/// Decode a single kernel's event range using its index entry — the
/// seek path, so nothing before the kernel is touched. Works with both
/// file-carried and scan-built indexes. On failure `out` is untouched.
Status decode_trace_kernel(TraceReader& reader, const TraceIndexKernel& kernel,
                           DecodedTrace& out);

/// Replay a pre-decoded trace.
ReplayResult replay_decoded(const DecodedTrace& trace, const ReplayOptions& opts = {});

/// Address-sharded parallel replay: run `workers` shard engines (one
/// thread each) over the same decoded trace and merge the disjoint
/// per-shard race sets in shard order — a deterministic reduction whose
/// race identity sets are exactly serial replay's for any worker count.
/// (The only caveat is the documented RaceLog recording cap: each shard
/// gets the full cap, so a trace that saturates the serial log can keep
/// more races sharded.) `opts.shard_count/shard_index` are overridden.
ReplayResult replay_sharded(const DecodedTrace& trace, u32 workers,
                            const ReplayOptions& opts = {});

}  // namespace haccrg::trace
