#include "trace/sw_replay.hpp"

namespace haccrg::trace {

namespace {

/// Per-block shared region the instrumentation assumes (16 KB -> 4096
/// words); must match the stride baked into sw_haccrg's preamble.
constexpr u32 kSharedRegionWords = 4096;

constexpr u32 kWarpSizeForGtid = 32;  // SpecialReg::kTid = warp_in_block*32 + lane

}  // namespace

SwHaccrgReplay::SwHaccrgReplay(u32 app_heap_bytes, u32 grid_dim, u32 block_dim,
                               std::function<bool(u32)> is_safe)
    : block_dim_(block_dim), is_safe_(std::move(is_safe)),
      global_shadow_(app_heap_bytes / 4 + 1, 0), shared_shadow_(grid_dim),
      epochs_(grid_dim, 0) {}

void SwHaccrgReplay::check_word(bool shared_space, u32 block_id, Addr word_addr, u32 gtid,
                                bool is_write) {
  u32* slot = nullptr;
  if (shared_space) {
    std::vector<u32>& region = shared_shadow_[block_id];
    if (region.empty()) region.assign(kSharedRegionWords, 0);
    const u32 word = word_addr / 4;
    if (word >= kSharedRegionWords) return;
    slot = &region[word];
  } else {
    const u32 word = word_addr / 4;
    if (word >= global_shadow_.size()) return;
    slot = &global_shadow_[word];
  }

  // The instrumented sequence, in 32-bit register arithmetic:
  //   tag = gtid<<12 | (epoch & 0x3ff)<<2 | (write ? 2 : 1)
  //   old = atomicExch(shadow, tag)
  //   race = old != 0 && same-epoch && other-thread && a write involved
  const u32 epoch = epochs_[block_id];
  const u32 tag = (gtid << 12) | ((epoch & 0x3ffu) << 2) | (is_write ? 2u : 1u);
  const u32 old = *slot;
  *slot = tag;
  if (old != 0 && (((old ^ tag) >> 2) & 0x3ffu) == 0 && (old >> 12) != gtid &&
      ((old | tag) & 2u) != 0) {
    ++races_;
    locations_.insert({shared_space ? 0 : 1, shared_space ? block_id : 0, word_addr & ~3u});
  }
}

void SwHaccrgReplay::on_access(const Event& event, u32 block_id, u32 smem_base) {
  if (is_safe_ && is_safe_(event.pc)) return;  // statically pruned site
  const bool shared_space = is_shared_access(event.kind);
  const bool is_write =
      event.kind == EventKind::kSharedStore || event.kind == EventKind::kGlobalStore;
  for (const TraceLane& lane : event.lanes) {
    const u32 gtid =
        block_id * block_dim_ + event.warp_in_block * kWarpSizeForGtid + lane.lane;
    const Addr addr = shared_space ? lane.addr - smem_base : lane.addr;
    check_word(shared_space, block_id, addr, gtid, is_write);
  }
}

void SwHaccrgReplay::on_barrier_release(u32 block_id) { ++epochs_[block_id]; }

GraceReplay::GraceReplay(u32 grid_dim, u32 block_dim, std::function<bool(u32)> is_safe)
    : block_dim_(block_dim), is_safe_(std::move(is_safe)), bitmaps_(grid_dim) {}

void GraceReplay::on_access(const Event& event, u32 block_id, u32 smem_base) {
  if (is_safe_ && is_safe_(event.pc)) return;
  std::vector<u32>& tables = bitmaps_[block_id];
  if (tables.empty()) tables.assign(kBitmapWords * 2, 0);
  const bool is_write = event.kind == EventKind::kSharedStore;
  for (const TraceLane& lane : event.lanes) {
    const u32 word = (lane.addr - smem_base) / 4;
    const u32 bitmap_word = (word >> 5) % kBitmapWords;
    const u32 mask = 1u << (word & 31u);
    // Own bit first (write table at +0, read table at +kBitmapWords)...
    tables[(is_write ? 0 : kBitmapWords) + bitmap_word] |= mask;
    // ...then the diagnosis scan ORs the whole write table. A write's own
    // just-set bit always survives the AND — the live instrumentation
    // behaves identically, which is why GRace-add over-reports.
    u32 acc = 0;
    for (u32 j = 0; j < kBitmapWords; ++j) acc |= tables[j];
    if (is_write && (acc & mask) != 0) {
      ++races_;
      locations_.insert({0, block_id, (word * 4) & ~3u});
    }
  }
}

void GraceReplay::on_barrier_release(u32 block_id) {
  std::vector<u32>& tables = bitmaps_[block_id];
  if (tables.empty()) return;
  // Each thread tid clears word tid % kBitmapWords in both tables; a
  // block smaller than 128 threads leaves the tail words set, exactly as
  // the live barrier-clear slice does.
  for (u32 t = 0; t < block_dim_ && t < kBitmapWords; ++t) {
    tables[t % kBitmapWords] = 0;
    tables[kBitmapWords + t % kBitmapWords] = 0;
  }
}

}  // namespace haccrg::trace
