#include "trace/format.hpp"

#include <cassert>
#include <cstring>

#include "haccrg/bloom.hpp"

namespace haccrg::trace {

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kKernelBegin: return "kernel.begin";
    case EventKind::kKernelEnd: return "kernel.end";
    case EventKind::kBlockLaunch: return "block.launch";
    case EventKind::kBlockFinish: return "block.finish";
    case EventKind::kSharedLoad: return "shared.load";
    case EventKind::kSharedStore: return "shared.store";
    case EventKind::kSharedAtomic: return "shared.atom";
    case EventKind::kGlobalLoad: return "global.load";
    case EventKind::kGlobalStore: return "global.store";
    case EventKind::kGlobalAtomic: return "global.atom";
    case EventKind::kBarrierArrive: return "barrier.arrive";
    case EventKind::kBarrierRelease: return "barrier.release";
    case EventKind::kFence: return "fence";
    case EventKind::kFenceCommit: return "fence.commit";
    case EventKind::kLockAcquire: return "lock.acq";
    case EventKind::kLockRelease: return "lock.rel";
  }
  return "?";
}

rd::HaccrgConfig TraceHeader::haccrg_config() const {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = enable_shared;
  cfg.enable_global = enable_global;
  cfg.shared_granularity = shared_granularity;
  cfg.global_granularity = global_granularity;
  cfg.bloom_bits = bloom_bits;
  cfg.bloom_bins = bloom_bins;
  cfg.shared_shadow = static_cast<rd::SharedShadowPlacement>(shared_shadow);
  cfg.warp_regrouping = warp_regrouping;
  cfg.disable_fence_gate = disable_fence_gate;
  cfg.static_filter = static_filter;
  cfg.max_recorded_races = max_recorded_races;
  return cfg;
}

void put_varint(std::vector<u8>& out, u64 value) {
  while (value >= 0x80) {
    out.push_back(static_cast<u8>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<u8>(value));
}

bool DecodeCursor::fail(std::string_view what, StatusCode why) {
  if (error.empty()) {
    error = std::string(what);
    code = why;
  }
  return false;
}

bool DecodeCursor::get_u8(u8& out) {
  if (pos >= size) return fail("truncated: expected byte past end of data");
  out = data[pos++];
  return true;
}

bool DecodeCursor::get_varint(u64& out) {
  out = 0;
  u32 shift = 0;
  for (u32 i = 0; i < 10; ++i) {
    if (pos >= size) return fail("truncated: varint runs past end of data");
    const u8 byte = data[pos++];
    out |= static_cast<u64>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return fail("corrupt: varint longer than 10 bytes");
}

bool DecodeCursor::get_varint_u32(u32& out) {
  u64 wide = 0;
  if (!get_varint(wide)) return false;
  if (wide > 0xffffffffULL) return fail("corrupt: varint exceeds 32-bit field");
  out = static_cast<u32>(wide);
  return true;
}

// --- Header -----------------------------------------------------------------

namespace {

u8 header_flags(const TraceHeader& h) {
  return static_cast<u8>((h.enable_shared ? 1u : 0u) | (h.enable_global ? 2u : 0u) |
                         (h.warp_regrouping ? 4u : 0u) | (h.disable_fence_gate ? 8u : 0u) |
                         (h.static_filter ? 16u : 0u));
}

}  // namespace

void encode_header(const TraceHeader& header, std::vector<u8>& out) {
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  out.push_back(static_cast<u8>(header.version & 0xff));
  out.push_back(static_cast<u8>(header.version >> 8));
  put_varint(out, header.num_sms);
  put_varint(out, header.warp_size);
  put_varint(out, header.max_blocks_per_sm);
  put_varint(out, header.max_threads_per_sm);
  put_varint(out, header.shared_mem_per_sm);
  put_varint(out, header.shared_mem_banks);
  put_varint(out, header.l1_line);
  put_varint(out, header.device_mem_bytes);
  out.push_back(header_flags(header));
  out.push_back(header.shared_shadow);
  put_varint(out, header.shared_granularity);
  put_varint(out, header.global_granularity);
  put_varint(out, header.bloom_bits);
  put_varint(out, header.bloom_bins);
  put_varint(out, header.max_recorded_races);
}

bool decode_header(DecodeCursor& cursor, TraceHeader& out) {
  if (cursor.size - cursor.pos < sizeof(kMagic) + 2)
    return cursor.fail("truncated: file shorter than the trace header");
  if (std::memcmp(cursor.data + cursor.pos, kMagic, sizeof(kMagic)) != 0)
    return cursor.fail("bad magic: not a HAccRG access trace", StatusCode::kBadMagic);
  cursor.pos += sizeof(kMagic);
  u8 lo = 0;
  u8 hi = 0;
  if (!cursor.get_u8(lo) || !cursor.get_u8(hi)) return false;
  out.version = static_cast<u16>(lo | (hi << 8));
  if (out.version < kFormatVersion || out.version > kMaxFormatVersion)
    return cursor.fail("unsupported trace version", StatusCode::kVersionMismatch);
  u64 device_mem = 0;
  u8 flags = 0;
  if (!cursor.get_varint_u32(out.num_sms) || !cursor.get_varint_u32(out.warp_size) ||
      !cursor.get_varint_u32(out.max_blocks_per_sm) ||
      !cursor.get_varint_u32(out.max_threads_per_sm) ||
      !cursor.get_varint_u32(out.shared_mem_per_sm) ||
      !cursor.get_varint_u32(out.shared_mem_banks) || !cursor.get_varint_u32(out.l1_line) ||
      !cursor.get_varint(device_mem) || !cursor.get_u8(flags) ||
      !cursor.get_u8(out.shared_shadow) || !cursor.get_varint_u32(out.shared_granularity) ||
      !cursor.get_varint_u32(out.global_granularity) || !cursor.get_varint_u32(out.bloom_bits) ||
      !cursor.get_varint_u32(out.bloom_bins) || !cursor.get_varint_u32(out.max_recorded_races))
    return false;
  out.device_mem_bytes = device_mem;
  out.enable_shared = (flags & 1) != 0;
  out.enable_global = (flags & 2) != 0;
  out.warp_regrouping = (flags & 4) != 0;
  out.disable_fence_gate = (flags & 8) != 0;
  out.static_filter = (flags & 16) != 0;
  if (out.num_sms == 0 || out.warp_size == 0 || out.warp_size > 32)
    return cursor.fail("corrupt header: implausible machine geometry");
  if (out.max_threads_per_sm == 0 || out.max_threads_per_sm % out.warp_size != 0)
    return cursor.fail("corrupt header: max_threads_per_sm not a warp multiple");
  // Bound everything replay sizes allocations by. A bit-flipped varint can
  // otherwise inflate a field to ~4G and turn a damaged trace into an OOM
  // instead of a structured decode error. The caps are an order of
  // magnitude past any machine the simulator models.
  if (out.num_sms > 1024 || out.max_blocks_per_sm == 0 || out.max_blocks_per_sm > 256 ||
      out.max_threads_per_sm > 16384 || out.shared_mem_per_sm > (64u << 20) ||
      out.l1_line == 0 || out.l1_line > 4096)
    return cursor.fail("corrupt header: implausible machine geometry");
  if (out.shared_granularity == 0 || out.shared_granularity > 4096 ||
      !is_pow2(out.shared_granularity) || out.global_granularity == 0 ||
      out.global_granularity > 4096 || !is_pow2(out.global_granularity))
    return cursor.fail("corrupt header: implausible detector granularity");
  if (!rd::BloomGeometry{out.bloom_bits, out.bloom_bins}.valid())
    return cursor.fail("corrupt header: invalid bloom signature geometry");
  if (out.max_recorded_races == 0 || out.max_recorded_races > (1u << 24))
    return cursor.fail("corrupt header: implausible race log capacity");
  return true;
}

// --- Events -----------------------------------------------------------------

namespace {

constexpr size_t kMaxLabelBytes = 4096;

void put_lanes(const Event& event, std::vector<u8>& out, bool with_addrs) {
  put_varint(out, event.lanes.size());
  Addr prev = 0;
  for (const TraceLane& lane : event.lanes) {
    out.push_back(lane.lane);
    if (with_addrs) {
      put_varint(out, zigzag_encode(static_cast<i64>(lane.addr) - static_cast<i64>(prev)));
      prev = lane.addr;
    }
  }
}

bool get_lanes(DecodeCursor& cursor, Event& out, bool with_addrs) {
  u64 count = 0;
  if (!cursor.get_varint(count)) return false;
  if (count > 32) return cursor.fail("corrupt event: more than 32 lanes");
  out.lanes.resize(static_cast<size_t>(count));
  Addr prev = 0;
  for (TraceLane& lane : out.lanes) {
    if (!cursor.get_u8(lane.lane)) return false;
    if (with_addrs) {
      u64 raw = 0;
      if (!cursor.get_varint(raw)) return false;
      lane.addr = static_cast<Addr>(static_cast<i64>(prev) + zigzag_decode(raw));
      prev = lane.addr;
    }
  }
  return true;
}

}  // namespace

void encode_event(const Event& event, Cycle& last_cycle, std::vector<u8>& out) {
  out.push_back(static_cast<u8>(event.kind));
  if (event.kind == EventKind::kKernelBegin) {
    // A kernel begin is the cycle-delta base: its own cycle is 0.
    last_cycle = 0;
  } else {
    assert(event.cycle >= last_cycle && "trace events must be cycle-ordered");
    put_varint(out, event.cycle - last_cycle);
    last_cycle = event.cycle;
  }

  switch (event.kind) {
    case EventKind::kKernelBegin:
      put_varint(out, event.grid_dim);
      put_varint(out, event.block_dim);
      put_varint(out, event.shared_mem_bytes);
      put_varint(out, event.app_heap_bytes);
      put_varint(out, event.shadow_base);
      put_varint(out, event.label.size());
      out.insert(out.end(), event.label.begin(), event.label.end());
      return;
    case EventKind::kKernelEnd:
      return;
    case EventKind::kBlockLaunch:
      put_varint(out, event.sm);
      put_varint(out, event.block_slot);
      put_varint(out, event.block_id);
      put_varint(out, event.warp_base);
      put_varint(out, event.num_warps);
      put_varint(out, event.thread_base);
      put_varint(out, event.smem_base);
      put_varint(out, event.smem_bytes);
      return;
    case EventKind::kBlockFinish:
      put_varint(out, event.sm);
      put_varint(out, event.block_slot);
      put_varint(out, event.smem_base);
      put_varint(out, event.smem_bytes);
      return;
    case EventKind::kBarrierArrive:
      put_varint(out, event.sm);
      put_varint(out, event.block_slot);
      put_varint(out, event.warp_slot);
      return;
    case EventKind::kBarrierRelease:
      put_varint(out, event.sm);
      put_varint(out, event.block_slot);
      put_varint(out, event.smem_base);
      put_varint(out, event.smem_bytes);
      return;
    case EventKind::kFence:
    case EventKind::kFenceCommit:
      put_varint(out, event.sm);
      put_varint(out, event.warp_slot);
      return;
    case EventKind::kLockAcquire:
    case EventKind::kLockRelease:
      put_varint(out, event.sm);
      put_varint(out, event.block_slot);
      put_varint(out, event.warp_slot);
      put_varint(out, event.warp_in_block);
      put_varint(out, event.pc);
      put_lanes(event, out, /*with_addrs=*/event.kind == EventKind::kLockAcquire);
      return;
    default:
      break;
  }

  // Memory access kinds.
  put_varint(out, event.sm);
  put_varint(out, event.block_slot);
  put_varint(out, event.warp_slot);
  put_varint(out, event.warp_in_block);
  put_varint(out, event.pc);
  out.push_back(event.width);
  out.push_back(event.checked ? 1 : 0);
  put_lanes(event, out, /*with_addrs=*/true);
  if (event.kind == EventKind::kGlobalLoad) {
    u64 hit_mask = 0;
    for (size_t i = 0; i < event.lanes.size(); ++i)
      if (event.lanes[i].l1_hit) hit_mask |= u64{1} << i;
    put_varint(out, hit_mask);
    for (const TraceLane& lane : event.lanes) {
      if (!lane.l1_hit) continue;
      assert(lane.l1_fill <= event.cycle && "L1 fill cannot postdate the access");
      put_varint(out, event.cycle - lane.l1_fill);
    }
  }
}

namespace {

/// Reset an event to its default-constructed value while keeping the
/// lane vector's (and label's) heap capacity — decode_event runs once
/// per record, and replay feeds it the same Event object millions of
/// times.
void reset_event(Event& out) {
  out.kind = EventKind::kKernelBegin;
  out.cycle = 0;
  out.sm = 0;
  out.block_slot = 0;
  out.warp_slot = 0;
  out.warp_in_block = 0;
  out.pc = 0;
  out.width = 0;
  out.checked = false;
  out.grid_dim = 0;
  out.block_dim = 0;
  out.shared_mem_bytes = 0;
  out.app_heap_bytes = 0;
  out.shadow_base = 0;
  out.label.clear();
  out.block_id = 0;
  out.warp_base = 0;
  out.num_warps = 0;
  out.thread_base = 0;
  out.smem_base = 0;
  out.smem_bytes = 0;
  out.lanes.clear();
}

}  // namespace

bool decode_event(DecodeCursor& cursor, Cycle& last_cycle, Event& out) {
  reset_event(out);
  u8 kind_byte = 0;
  if (!cursor.get_u8(kind_byte)) return false;
  if (kind_byte < kMinEventKind || kind_byte > kMaxEventKind)
    return cursor.fail("corrupt event: unknown kind byte");
  out.kind = static_cast<EventKind>(kind_byte);
  if (out.kind == EventKind::kKernelBegin) {
    last_cycle = 0;
    out.cycle = 0;
  } else {
    u64 delta = 0;
    if (!cursor.get_varint(delta)) return false;
    out.cycle = last_cycle + delta;
    last_cycle = out.cycle;
  }

  switch (out.kind) {
    case EventKind::kKernelBegin: {
      u64 label_len = 0;
      if (!cursor.get_varint_u32(out.grid_dim) || !cursor.get_varint_u32(out.block_dim) ||
          !cursor.get_varint_u32(out.shared_mem_bytes) ||
          !cursor.get_varint_u32(out.app_heap_bytes) || !cursor.get_varint_u32(out.shadow_base) ||
          !cursor.get_varint(label_len))
        return false;
      if (label_len > kMaxLabelBytes) return cursor.fail("corrupt event: oversized kernel label");
      if (cursor.size - cursor.pos < label_len)
        return cursor.fail("truncated: kernel label runs past end of data");
      out.label.assign(reinterpret_cast<const char*>(cursor.data + cursor.pos),
                       static_cast<size_t>(label_len));
      cursor.pos += static_cast<size_t>(label_len);
      return true;
    }
    case EventKind::kKernelEnd:
      return true;
    case EventKind::kBlockLaunch:
      return cursor.get_varint_u32(out.sm) && cursor.get_varint_u32(out.block_slot) &&
             cursor.get_varint_u32(out.block_id) && cursor.get_varint_u32(out.warp_base) &&
             cursor.get_varint_u32(out.num_warps) && cursor.get_varint_u32(out.thread_base) &&
             cursor.get_varint_u32(out.smem_base) && cursor.get_varint_u32(out.smem_bytes);
    case EventKind::kBlockFinish:
      return cursor.get_varint_u32(out.sm) && cursor.get_varint_u32(out.block_slot) &&
             cursor.get_varint_u32(out.smem_base) && cursor.get_varint_u32(out.smem_bytes);
    case EventKind::kBarrierArrive:
      return cursor.get_varint_u32(out.sm) && cursor.get_varint_u32(out.block_slot) &&
             cursor.get_varint_u32(out.warp_slot);
    case EventKind::kBarrierRelease:
      return cursor.get_varint_u32(out.sm) && cursor.get_varint_u32(out.block_slot) &&
             cursor.get_varint_u32(out.smem_base) && cursor.get_varint_u32(out.smem_bytes);
    case EventKind::kFence:
    case EventKind::kFenceCommit:
      return cursor.get_varint_u32(out.sm) && cursor.get_varint_u32(out.warp_slot);
    case EventKind::kLockAcquire:
    case EventKind::kLockRelease:
      if (!cursor.get_varint_u32(out.sm) || !cursor.get_varint_u32(out.block_slot) ||
          !cursor.get_varint_u32(out.warp_slot) || !cursor.get_varint_u32(out.warp_in_block) ||
          !cursor.get_varint_u32(out.pc))
        return false;
      return get_lanes(cursor, out, /*with_addrs=*/out.kind == EventKind::kLockAcquire);
    default:
      break;
  }

  // Memory access kinds.
  u8 checked = 0;
  if (!cursor.get_varint_u32(out.sm) || !cursor.get_varint_u32(out.block_slot) ||
      !cursor.get_varint_u32(out.warp_slot) || !cursor.get_varint_u32(out.warp_in_block) ||
      !cursor.get_varint_u32(out.pc) || !cursor.get_u8(out.width) || !cursor.get_u8(checked))
    return false;
  if (checked > 1) return cursor.fail("corrupt event: bad checked flag");
  out.checked = checked != 0;
  if (!get_lanes(cursor, out, /*with_addrs=*/true)) return false;
  if (out.kind == EventKind::kGlobalLoad) {
    u64 hit_mask = 0;
    if (!cursor.get_varint(hit_mask)) return false;
    if (out.lanes.size() < 64 && (hit_mask >> out.lanes.size()) != 0)
      return cursor.fail("corrupt event: L1 hit mask wider than the lane list");
    for (size_t i = 0; i < out.lanes.size(); ++i) {
      if ((hit_mask & (u64{1} << i)) == 0) continue;
      out.lanes[i].l1_hit = true;
      u64 age = 0;
      if (!cursor.get_varint(age)) return false;
      if (age > out.cycle) return cursor.fail("corrupt event: L1 fill postdates the access");
      out.lanes[i].l1_fill = out.cycle - age;
    }
  }
  return true;
}

}  // namespace haccrg::trace
