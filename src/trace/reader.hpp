// Trace file reader: loads the file, validates magic/version/header up
// front, then decodes events one at a time. All failure modes — missing
// file, bad magic, wrong version, a truncated or bit-flipped event — are
// reported through error() rather than thrown or crashed on, so the CLI
// and replay engine can turn them into exit codes.
#pragma once

#include <string>

#include "trace/format.hpp"

namespace haccrg::trace {

class TraceReader {
 public:
  /// Loads `path` and parses the header; check ok() before use.
  explicit TraceReader(const std::string& path);

  /// Parse an in-memory image (tests; the property/corruption suites).
  explicit TraceReader(std::vector<u8> bytes);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const TraceHeader& header() const { return header_; }

  /// Decode the next event into `out`. Returns false at clean end-of-
  /// trace or on a malformed event; the two are distinguished by error()
  /// being empty or not.
  bool next(Event& out);

  bool at_end() const { return cursor_.at_end(); }
  u64 events_read() const { return events_; }
  u64 bytes_total() const { return static_cast<u64>(bytes_.size()); }

  /// Rewind to the first event (after the header).
  void rewind();

 private:
  void parse_header();

  std::vector<u8> bytes_;
  DecodeCursor cursor_;
  TraceHeader header_;
  std::string error_;
  size_t first_event_pos_ = 0;
  Cycle last_cycle_ = 0;
  u64 events_ = 0;
};

}  // namespace haccrg::trace
