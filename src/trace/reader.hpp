// Trace file reader: loads the file, validates magic/version/header up
// front, then decodes events one at a time. All failure modes — missing
// file, bad magic, wrong version, a truncated or bit-flipped event — are
// reported through error()/status() rather than thrown or crashed on, so
// the CLI and replay engine can turn them into exit codes.
//
// Damaged streams are recoverable: after next() fails mid-stream,
// resync() scans forward for the next plausible record boundary and
// resumes decoding there. Skipped bytes and resync count are reported —
// a recovered trace is usable but its losses are never silent.
#pragma once

#include <string>

#include "common/status.hpp"
#include "trace/format.hpp"

namespace haccrg::trace {

class TraceReader {
 public:
  /// Loads `path` and parses the header; check ok() before use.
  explicit TraceReader(const std::string& path);

  /// Parse an in-memory image (tests; the property/corruption suites).
  explicit TraceReader(std::vector<u8> bytes);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  /// Structured form of error(): kNotFound / kIoError for file problems,
  /// kBadMagic / kVersionMismatch / kCorrupt from the decoder.
  Status status() const { return ok() ? Status() : Status(code_, error_); }
  const TraceHeader& header() const { return header_; }

  /// Decode the next event into `out`. Returns false at clean end-of-
  /// trace or on a malformed event; the two are distinguished by error()
  /// being empty or not.
  bool next(Event& out);

  /// After next() failed on a damaged mid-stream record: scan forward
  /// for the next position where decoding yields several consecutive
  /// well-formed events (or a clean tail), clear the error, and resume
  /// there. Returns false when no plausible boundary exists (or the
  /// failure was in the file/header, which has nothing to skip past).
  /// Every skipped byte is counted in bytes_skipped(); each successful
  /// call bumps resyncs(). At least one whole record is lost per resync.
  bool resync();

  bool at_end() const { return cursor_.at_end(); }
  u64 events_read() const { return events_; }
  u64 bytes_total() const { return static_cast<u64>(bytes_.size()); }
  u64 resyncs() const { return resyncs_; }
  u64 bytes_skipped() const { return bytes_skipped_; }

  /// Rewind to the first event (after the header).
  void rewind();

  // --- Index support (format v2; see trace/index.hpp) ----------------------
  /// True when the file carries an index section (v2 footer present).
  bool has_index() const { return index_offset_ != 0; }
  /// Absolute offset of the index section (0 when absent).
  u64 index_offset() const { return index_offset_; }
  /// Offset one past the last event record (== index_offset() on an
  /// indexed file, file size otherwise).
  u64 events_end() const { return static_cast<u64>(events_end_); }
  u64 first_event_offset() const { return static_cast<u64>(first_event_pos_); }
  /// Raw file image (index decoding; read-only).
  const u8* data() const { return bytes_.data(); }

  /// Reposition decoding at a record boundary taken from an index chunk:
  /// `offset` must be the start of an event, `cycle` the delta base in
  /// force there, `events_before` the number of events preceding it
  /// (keeps events_read() meaningful). Only bounds are validated — a
  /// lying index surfaces as a decode error on the next next().
  Status seek(u64 offset, Cycle cycle, u64 events_before);

 private:
  void parse_header();

  std::vector<u8> bytes_;
  DecodeCursor cursor_;
  TraceHeader header_;
  std::string error_;
  StatusCode code_ = StatusCode::kOk;
  size_t first_event_pos_ = 0;
  size_t events_end_ = 0;   ///< end of the event stream (excludes index/footer)
  u64 index_offset_ = 0;    ///< index section offset (0 = no index)
  size_t last_event_start_ = 0;  ///< file offset of the record next() last tried
  Cycle last_cycle_ = 0;
  u64 events_ = 0;
  u64 resyncs_ = 0;
  u64 bytes_skipped_ = 0;
};

}  // namespace haccrg::trace
