// Buffered trace file writer. The simulator's recording hooks call
// write_event from the engine's serial phases only (SM-id-ordered flush
// and commit), so the writer needs no locking and the byte stream is
// identical for any HACCRG_THREADS value. I/O errors latch: the first
// failure is kept and every later call becomes a no-op, so a full disk
// surfaces as one diagnosis at the end of the run instead of a crash.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "trace/format.hpp"
#include "trace/index.hpp"

namespace haccrg::trace {

class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Opt into format v2: collect a seekable index while events stream
  /// through and append the section + footer at finish(). Must be called
  /// before write_header (the header's version becomes 2). The default
  /// (v1, no index) keeps existing traces byte-identical.
  void enable_index() { index_enabled_ = true; }
  bool index_enabled() const { return index_enabled_; }

  /// Must be the first write. False if the file could not be opened.
  bool write_header(const TraceHeader& header);
  bool write_event(const Event& event);

  /// Arm trace-stream fault injection (null = off): each written record
  /// may get one byte XOR-corrupted after encoding. Models a damaged
  /// capture channel; the reader's resync path is the counterpart. The
  /// injector outlives one launch only, so the Gpu clears this at the
  /// end of every launch.
  void set_faults(fault::FaultInjector* faults) { faults_ = faults; }

  /// Flush and close; returns ok(). Idempotent (the dtor calls it too).
  bool finish();

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const std::string& path() const { return path_; }
  u64 events_written() const { return events_; }
  u64 bytes_written() const { return bytes_; }

 private:
  void flush_buffer();

  /// Absolute file offset the next encoded byte will land at.
  u64 current_offset() const { return bytes_ + buffer_.size(); }

  std::string path_;
  std::FILE* file_ = nullptr;
  fault::FaultInjector* faults_ = nullptr;
  std::vector<u8> buffer_;
  std::string error_;
  Cycle last_cycle_ = 0;
  u64 events_ = 0;
  u64 bytes_ = 0;

  // Index collection (enable_index). `in_kernel_events_` counts events
  // after the current kernel's begin record, mirroring the scan builder
  // so a written index equals a scanned one exactly.
  bool index_enabled_ = false;
  bool index_written_ = false;
  TraceIndex index_;
  u64 in_kernel_events_ = 0;
};

}  // namespace haccrg::trace
