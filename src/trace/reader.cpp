#include "trace/reader.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace haccrg::trace {

TraceReader::TraceReader(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    error_ = "trace: cannot open '" + path + "': " + std::strerror(errno);
    return;
  }
  char chunk[1u << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0)
    bytes_.insert(bytes_.end(), chunk, chunk + got);
  if (std::ferror(file) != 0)
    error_ = "trace: read error on '" + path + "': " + std::strerror(errno);
  std::fclose(file);
  if (error_.empty()) parse_header();
}

TraceReader::TraceReader(std::vector<u8> bytes) : bytes_(std::move(bytes)) { parse_header(); }

void TraceReader::parse_header() {
  cursor_ = DecodeCursor{bytes_.data(), bytes_.size(), 0, {}};
  if (!decode_header(cursor_, header_)) {
    error_ = cursor_.error;
    return;
  }
  first_event_pos_ = cursor_.pos;
}

bool TraceReader::next(Event& out) {
  if (!ok() || cursor_.at_end()) return false;
  if (!decode_event(cursor_, last_cycle_, out)) {
    error_ = cursor_.error;
    return false;
  }
  ++events_;
  return true;
}

void TraceReader::rewind() {
  if (!ok() && first_event_pos_ == 0) return;  // header never parsed
  cursor_.pos = first_event_pos_;
  cursor_.error.clear();
  error_.clear();
  last_cycle_ = 0;
  events_ = 0;
}

}  // namespace haccrg::trace
