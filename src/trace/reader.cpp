#include "trace/reader.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace haccrg::trace {

TraceReader::TraceReader(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    error_ = "trace: cannot open '" + path + "': " + std::strerror(errno);
    code_ = StatusCode::kNotFound;
    return;
  }
  char chunk[1u << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0)
    bytes_.insert(bytes_.end(), chunk, chunk + got);
  if (std::ferror(file) != 0) {
    error_ = "trace: read error on '" + path + "': " + std::strerror(errno);
    code_ = StatusCode::kIoError;
  }
  std::fclose(file);
  if (error_.empty()) parse_header();
}

TraceReader::TraceReader(std::vector<u8> bytes) : bytes_(std::move(bytes)) { parse_header(); }

void TraceReader::parse_header() {
  cursor_ = DecodeCursor{bytes_.data(), bytes_.size(), 0, {}, StatusCode::kOk};
  if (!decode_header(cursor_, header_)) {
    error_ = cursor_.error;
    code_ = cursor_.code;
    return;
  }
  first_event_pos_ = cursor_.pos;
  last_event_start_ = cursor_.pos;
  events_end_ = bytes_.size();
  // Format v2: the fixed footer locates the index section, and the event
  // stream ends where the section begins. A v2 file without the footer is
  // tolerated (reads like v1); a footer pointing outside the payload or
  // at a non-marker byte is structural damage.
  if (header_.version >= kIndexedFormatVersion &&
      bytes_.size() >= first_event_pos_ + kIndexFooterBytes &&
      std::memcmp(bytes_.data() + bytes_.size() - sizeof(kIndexTailMagic), kIndexTailMagic,
                  sizeof(kIndexTailMagic)) == 0) {
    u64 offset = 0;
    const u8* p = bytes_.data() + bytes_.size() - kIndexFooterBytes;
    for (u32 i = 0; i < 8; ++i) offset |= static_cast<u64>(p[i]) << (8 * i);
    if (offset < first_event_pos_ || offset > bytes_.size() - kIndexFooterBytes ||
        bytes_[static_cast<size_t>(offset)] != 0) {
      error_ = "trace: corrupt index footer";
      code_ = StatusCode::kCorrupt;
      return;
    }
    index_offset_ = offset;
    events_end_ = static_cast<size_t>(offset);
  }
  cursor_.size = events_end_;
}

bool TraceReader::next(Event& out) {
  if (!ok() || cursor_.at_end()) return false;
  last_event_start_ = cursor_.pos;
  if (!decode_event(cursor_, last_cycle_, out)) {
    error_ = cursor_.error;
    code_ = cursor_.code;
    return false;
  }
  ++events_;
  return true;
}

bool TraceReader::resync() {
  // Only an event-level failure leaves something to skip past: a missing
  // file or unreadable header has no known record boundary to resume at.
  if (ok() || first_event_pos_ == 0) return false;

  for (size_t pos = last_event_start_ + 1; pos < events_end_; ++pos) {
    // Probe: a candidate boundary is accepted when several consecutive
    // records decode cleanly from it (or the remaining bytes decode
    // cleanly to the end). A scratch cursor keeps the probe side-effect
    // free; decode correctness checks make random garbage very unlikely
    // to pass three records in a row.
    DecodeCursor probe{bytes_.data(), events_end_, pos, {}, StatusCode::kOk};
    Cycle probe_cycle = last_cycle_;
    Event scratch;
    u32 good = 0;
    while (good < 3 && !probe.at_end() && decode_event(probe, probe_cycle, scratch)) ++good;
    if (good >= 3 || (good > 0 && !probe.failed() && probe.at_end())) {
      bytes_skipped_ += pos - last_event_start_;
      ++resyncs_;
      cursor_.pos = pos;
      cursor_.error.clear();
      cursor_.code = StatusCode::kOk;
      error_.clear();
      code_ = StatusCode::kOk;
      last_event_start_ = pos;
      return true;
    }
  }
  return false;
}

Status TraceReader::seek(u64 offset, Cycle cycle, u64 events_before) {
  if (!ok() && first_event_pos_ == 0)
    return Status::corrupt("trace: cannot seek, header never parsed");
  if (offset < first_event_pos_ || offset > events_end_)
    return Status::invalid_argument("trace: seek offset outside the event stream");
  cursor_.pos = static_cast<size_t>(offset);
  cursor_.error.clear();
  cursor_.code = StatusCode::kOk;
  error_.clear();
  code_ = StatusCode::kOk;
  last_event_start_ = static_cast<size_t>(offset);
  last_cycle_ = cycle;
  events_ = events_before;
  return Status();
}

void TraceReader::rewind() {
  if (!ok() && first_event_pos_ == 0) return;  // header never parsed
  cursor_.pos = first_event_pos_;
  cursor_.error.clear();
  cursor_.code = StatusCode::kOk;
  error_.clear();
  code_ = StatusCode::kOk;
  last_event_start_ = first_event_pos_;
  last_cycle_ = 0;
  events_ = 0;
  resyncs_ = 0;
  bytes_skipped_ = 0;
}

}  // namespace haccrg::trace
