#include "trace/reader.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace haccrg::trace {

TraceReader::TraceReader(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    error_ = "trace: cannot open '" + path + "': " + std::strerror(errno);
    code_ = StatusCode::kNotFound;
    return;
  }
  char chunk[1u << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0)
    bytes_.insert(bytes_.end(), chunk, chunk + got);
  if (std::ferror(file) != 0) {
    error_ = "trace: read error on '" + path + "': " + std::strerror(errno);
    code_ = StatusCode::kIoError;
  }
  std::fclose(file);
  if (error_.empty()) parse_header();
}

TraceReader::TraceReader(std::vector<u8> bytes) : bytes_(std::move(bytes)) { parse_header(); }

void TraceReader::parse_header() {
  cursor_ = DecodeCursor{bytes_.data(), bytes_.size(), 0, {}, StatusCode::kOk};
  if (!decode_header(cursor_, header_)) {
    error_ = cursor_.error;
    code_ = cursor_.code;
    return;
  }
  first_event_pos_ = cursor_.pos;
  last_event_start_ = cursor_.pos;
}

bool TraceReader::next(Event& out) {
  if (!ok() || cursor_.at_end()) return false;
  last_event_start_ = cursor_.pos;
  if (!decode_event(cursor_, last_cycle_, out)) {
    error_ = cursor_.error;
    code_ = cursor_.code;
    return false;
  }
  ++events_;
  return true;
}

bool TraceReader::resync() {
  // Only an event-level failure leaves something to skip past: a missing
  // file or unreadable header has no known record boundary to resume at.
  if (ok() || first_event_pos_ == 0) return false;

  for (size_t pos = last_event_start_ + 1; pos < bytes_.size(); ++pos) {
    // Probe: a candidate boundary is accepted when several consecutive
    // records decode cleanly from it (or the remaining bytes decode
    // cleanly to the end). A scratch cursor keeps the probe side-effect
    // free; decode correctness checks make random garbage very unlikely
    // to pass three records in a row.
    DecodeCursor probe{bytes_.data(), bytes_.size(), pos, {}, StatusCode::kOk};
    Cycle probe_cycle = last_cycle_;
    Event scratch;
    u32 good = 0;
    while (good < 3 && !probe.at_end() && decode_event(probe, probe_cycle, scratch)) ++good;
    if (good >= 3 || (good > 0 && !probe.failed() && probe.at_end())) {
      bytes_skipped_ += pos - last_event_start_;
      ++resyncs_;
      cursor_.pos = pos;
      cursor_.error.clear();
      cursor_.code = StatusCode::kOk;
      error_.clear();
      code_ = StatusCode::kOk;
      last_event_start_ = pos;
      return true;
    }
  }
  return false;
}

void TraceReader::rewind() {
  if (!ok() && first_event_pos_ == 0) return;  // header never parsed
  cursor_.pos = first_event_pos_;
  cursor_.error.clear();
  cursor_.code = StatusCode::kOk;
  error_.clear();
  code_ = StatusCode::kOk;
  last_event_start_ = first_event_pos_;
  last_cycle_ = 0;
  events_ = 0;
  resyncs_ = 0;
  bytes_skipped_ = 0;
}

}  // namespace haccrg::trace
