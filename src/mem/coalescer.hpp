// Global-memory access coalescer: merges the active lanes' addresses of a
// warp memory instruction into line-sized transactions, as CUDA hardware
// does. Also reports lanes whose accesses fall into the same
// race-detection granule — the intra-warp write-after-write check HAccRG
// performs before a request is issued (Section III-A).
//
// The SM issue path runs one coalesce per global-memory instruction, so
// both operations come in an allocation-free flavor (CoalesceBuffer /
// WawBuffer) that reuses caller-owned scratch across instructions; the
// vector-returning forms below are convenience wrappers for tests and
// microbenchmarks.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace haccrg::mem {

/// One lane's memory access within a warp instruction.
struct LaneAccess {
  u32 lane = 0;
  Addr addr = 0;
  u8 size = 4;
};

/// A coalesced transaction: the segment-aligned address plus the lanes it
/// serves.
struct CoalescedSegment {
  Addr addr = 0;  ///< aligned to segment_bytes
  std::vector<u32> lanes;
};

/// Reusable coalescer scratch: segments store *indices into the access
/// array* (so callers can reach the full LaneAccess without a search).
/// Slots and their index vectors are pooled across calls — steady-state
/// coalescing performs no heap allocation.
class CoalesceBuffer {
 public:
  struct Segment {
    Addr addr = 0;
    std::vector<u32> access_indices;  ///< first-touch order, deduped like lanes
  };

  /// Recompute segments for `accesses`; previous contents are discarded.
  /// Segment order is first-touch order and, within a segment, indices
  /// follow access order — identical to the vector-returning coalesce().
  void build(const std::vector<LaneAccess>& accesses, u32 segment_bytes);

  u32 size() const { return count_; }
  const Segment& operator[](u32 i) const { return slots_[i]; }

 private:
  Segment& acquire(Addr addr);

  std::vector<Segment> slots_;
  u32 count_ = 0;
};

/// Merge lane accesses into `segment_bytes`-sized transactions.
std::vector<CoalescedSegment> coalesce(const std::vector<LaneAccess>& accesses,
                                       u32 segment_bytes);

/// Pairs of lanes writing to the same granule within one warp store
/// (intra-warp WAW). Returns one representative pair per granule.
struct IntraWarpConflict {
  u32 lane_a = 0;
  u32 lane_b = 0;
  Addr granule_addr = 0;
};

/// Reusable intra-warp WAW scratch (flat arrays, no per-call allocation
/// in steady state). Conflicts are reported in the same order as
/// intra_warp_waw(): the order each granule's second writer is seen.
class WawBuffer {
 public:
  void build(const std::vector<LaneAccess>& accesses, u32 granule_bytes);

  const std::vector<IntraWarpConflict>& conflicts() const { return conflicts_; }

 private:
  std::vector<Addr> granules_;    ///< first-touch granule bases
  std::vector<u32> first_lane_;   ///< first writer lane per granule
  std::vector<IntraWarpConflict> conflicts_;
};

std::vector<IntraWarpConflict> intra_warp_waw(const std::vector<LaneAccess>& accesses,
                                              u32 granule_bytes);

}  // namespace haccrg::mem
