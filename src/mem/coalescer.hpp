// Global-memory access coalescer: merges the active lanes' addresses of a
// warp memory instruction into line-sized transactions, as CUDA hardware
// does. Also reports lanes whose accesses fall into the same
// race-detection granule — the intra-warp write-after-write check HAccRG
// performs before a request is issued (Section III-A).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace haccrg::mem {

/// One lane's memory access within a warp instruction.
struct LaneAccess {
  u32 lane = 0;
  Addr addr = 0;
  u8 size = 4;
};

/// A coalesced transaction: the segment-aligned address plus the lanes it
/// serves.
struct CoalescedSegment {
  Addr addr = 0;  ///< aligned to segment_bytes
  std::vector<u32> lanes;
};

/// Merge lane accesses into `segment_bytes`-sized transactions.
std::vector<CoalescedSegment> coalesce(const std::vector<LaneAccess>& accesses,
                                       u32 segment_bytes);

/// Pairs of lanes writing to the same granule within one warp store
/// (intra-warp WAW). Returns one representative pair per granule.
struct IntraWarpConflict {
  u32 lane_a = 0;
  u32 lane_b = 0;
  Addr granule_addr = 0;
};

std::vector<IntraWarpConflict> intra_warp_waw(const std::vector<LaneAccess>& accesses,
                                              u32 granule_bytes);

}  // namespace haccrg::mem
