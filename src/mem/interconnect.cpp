#include "mem/interconnect.hpp"

namespace haccrg::mem {

Interconnect::Interconnect(u32 num_sms, u32 num_partitions, u32 latency, u32 per_cycle) {
  to_partition_.reserve(num_partitions);
  for (u32 p = 0; p < num_partitions; ++p) to_partition_.emplace_back(latency, per_cycle);
  to_sm_.reserve(num_sms);
  for (u32 s = 0; s < num_sms; ++s) to_sm_.emplace_back(latency, per_cycle);
  request_staging_.resize(num_sms);
  response_staging_.resize(num_partitions);
}

void Interconnect::stage_request(u32 sm, Packet pkt) {
  request_staging_[sm].push_back(std::move(pkt));
}

void Interconnect::commit_requests(u32 sm, Cycle now) {
  auto& queue = request_staging_[sm];
  while (!queue.empty()) {
    const u32 partition = queue.front().dest_partition;
    if (!to_partition_[partition].can_push(now)) break;
    ++request_packets_;
    to_partition_[partition].push(now, std::move(queue.front()));
    queue.pop_front();
  }
}

void Interconnect::stage_response(u32 partition, Response rsp) {
  response_staging_[partition].push_back(rsp);
}

void Interconnect::commit_responses(Cycle now) {
  for (auto& staged : response_staging_) {
    for (const Response& rsp : staged) send_response(rsp.sm_id, now, rsp);
    staged.clear();
  }
}

bool Interconnect::can_send_request(u32 partition, Cycle now) const {
  return to_partition_[partition].can_push(now);
}

void Interconnect::send_request(u32 partition, Cycle now, Packet pkt) {
  ++request_packets_;
  to_partition_[partition].push(now, std::move(pkt));
}

bool Interconnect::has_request(u32 partition, Cycle now) const {
  return to_partition_[partition].has_ready(now);
}

std::optional<Packet> Interconnect::recv_request(u32 partition, Cycle now) {
  return to_partition_[partition].pop_ready(now);
}

bool Interconnect::can_send_response(u32 sm, Cycle now) const {
  return to_sm_[sm].can_push(now);
}

void Interconnect::send_response(u32 sm, Cycle now, Response rsp) {
  ++response_packets_;
  to_sm_[sm].push(now, rsp);
}

std::optional<Response> Interconnect::recv_response(u32 sm, Cycle now) {
  return to_sm_[sm].pop_ready(now);
}

bool Interconnect::idle() const {
  for (const auto& pipe : to_partition_)
    if (!pipe.empty()) return false;
  for (const auto& pipe : to_sm_)
    if (!pipe.empty()) return false;
  for (const auto& queue : request_staging_)
    if (!queue.empty()) return false;
  for (const auto& staged : response_staging_)
    if (!staged.empty()) return false;
  return true;
}

void Interconnect::export_stats(StatSet& stats) const {
  stats.add("icnt.request_packets", request_packets_);
  stats.add("icnt.response_packets", response_packets_);
}

}  // namespace haccrg::mem
