#include "mem/interconnect.hpp"

namespace haccrg::mem {

Interconnect::Interconnect(u32 num_sms, u32 num_partitions, u32 latency, u32 per_cycle) {
  to_partition_.reserve(num_partitions);
  for (u32 p = 0; p < num_partitions; ++p) to_partition_.emplace_back(latency, per_cycle);
  to_sm_.reserve(num_sms);
  for (u32 s = 0; s < num_sms; ++s) to_sm_.emplace_back(latency, per_cycle);
  request_staging_.resize(num_sms);
  response_staging_.resize(num_partitions);
}

bool Interconnect::inject_request(u32 sm, Cycle now, Packet pkt, u32 tries) {
  const u32 partition = pkt.dest_partition;
  auto fate = faults_->icnt_fault(sm);
  if ((fate == fault::IcntFaultKind::kDrop || fate == fault::IcntFaultKind::kDelay) &&
      tries >= faults_->plan().max_retries) {
    // Retries exhausted: force the packet through so a 100% drop rate
    // cannot livelock the simulation. The roll still happens (streams
    // advance once per injection attempt regardless of outcome).
    ++fault_forced_;
    fate = fault::IcntFaultKind::kNone;
  }
  switch (fate) {
    case fault::IcntFaultKind::kDrop:
    case fault::IcntFaultKind::kDelay: {
      if (fate == fault::IcntFaultKind::kDrop) ++fault_drops_; else ++fault_delays_;
      const u32 timeout = faults_->plan().retry_timeout;
      retry_cycles_ += timeout;
      retry_[sm].push_back(RetryEntry{now + timeout, tries + 1, std::move(pkt)});
      return false;
    }
    case fault::IcntFaultKind::kDup:
      ++fault_dups_;
      ++request_packets_;
      to_partition_[partition].push(now, pkt);
      break;
    case fault::IcntFaultKind::kNone:
      break;
  }
  ++request_packets_;
  to_partition_[partition].push(now, std::move(pkt));
  return true;
}

bool Interconnect::inject_one(u32 sm, Cycle now) {
  // Ripe retried packets re-inject before fresh traffic (they are the
  // oldest in flight). Entries are appended with monotonically increasing
  // ready cycles, so the deque front is always the ripest. A ripe retry
  // whose pipe is rate-limited blocks this SM's fresh traffic too
  // (head-of-line, like a real injection port).
  if (!retry_.empty()) {
    auto& retries = retry_[sm];
    if (!retries.empty() && retries.front().ready <= now) {
      if (!to_partition_[retries.front().pkt.dest_partition].can_push(now)) return false;
      RetryEntry entry = std::move(retries.front());
      retries.pop_front();
      inject_request(sm, now, std::move(entry.pkt), entry.tries);
      return true;
    }
  }
  auto& queue = request_staging_[sm];
  if (queue.empty()) return false;
  if (!to_partition_[queue.front().dest_partition].can_push(now)) return false;
  Packet pkt = std::move(queue.front());
  queue.pop_front();
  if (faults_ == nullptr) {
    ++request_packets_;
    to_partition_[pkt.dest_partition].push(now, std::move(pkt));
  } else {
    inject_request(sm, now, std::move(pkt), 0);
  }
  return true;
}

void Interconnect::commit_requests(Cycle now) {
  // Fair injection grant: one packet per SM per arbitration round, with
  // the round's starting SM rotating by cycle, rounds until nothing
  // moves. Both halves matter: a greedy per-SM drain in fixed id order
  // lets earlier SMs consume a pipe's entire per-cycle budget every
  // cycle, and with a budget of one packet even a per-round grant always
  // hands it to the same first SM — either way the last SM starves and
  // spin-lock contention livelocks (its CAS packets never leave the
  // staging queue). Rotating on `now` keeps the grant deterministic and
  // identical for any engine thread count.
  const u32 n = static_cast<u32>(request_staging_.size());
  if (n == 0) return;
  // Pending census before arbitrating. Most cycles nothing is staged and
  // this used to cost a full all-SM round of inject_one calls; now it is
  // n empty() checks and an immediate return. The census also bounds the
  // rounds below: once every initially-pending packet has been granted,
  // the only entries left are freshly re-parked retries (ripe strictly
  // after `now`), so the closing no-progress round is skipped too.
  // inject_one has no side effects on its false paths, so both cuts are
  // behavior-identical to the unbounded loop.
  const u64 pending = pending_requests();
  if (pending == 0) return;
  // Active-list arbitration. An SM is dropped the first time inject_one
  // returns false: the false paths have no side effects, and every false
  // condition is sticky for the rest of the cycle (a rate-limited pipe's
  // per-cycle budget only fills, the blocked head packet stays at the
  // head, an unripe retry front stays unripe, an empty queue stays
  // empty), so re-polling the SM in later rounds could only return false
  // again. The grant sequence — and thus every pipe's packet order — is
  // identical to polling all SMs every round.
  const u32 start = static_cast<u32>(now % n);
  arb_active_.clear();
  for (u32 i = 0; i < n; ++i) {
    const u32 sm = (start + i) % n;
    if (has_pending(sm)) arb_active_.push_back(sm);
  }
  u64 granted = 0;
  while (!arb_active_.empty() && granted < pending) {
    size_t kept = 0;
    for (size_t i = 0; i < arb_active_.size() && granted < pending; ++i) {
      if (inject_one(arb_active_[i], now)) {
        ++granted;
        arb_active_[kept++] = arb_active_[i];
      }
    }
    arb_active_.resize(kept);
  }
}

void Interconnect::commit_responses(Cycle now) {
  for (auto& staged : response_staging_) {
    for (const Response& rsp : staged) send_response(rsp.sm_id, now, rsp);
    staged.clear();
  }
}

bool Interconnect::idle() const {
  for (const auto& pipe : to_partition_)
    if (!pipe.empty()) return false;
  for (const auto& pipe : to_sm_)
    if (!pipe.empty()) return false;
  for (const auto& queue : request_staging_)
    if (!queue.empty()) return false;
  for (const auto& staged : response_staging_)
    if (!staged.empty()) return false;
  for (const auto& retries : retry_)
    if (!retries.empty()) return false;
  return true;
}

void Interconnect::export_stats(StatSet& stats) const {
  stats.add("icnt.request_packets", request_packets_);
  stats.add("icnt.response_packets", response_packets_);
  // Fault accounting is exported only when it fired so zero-fault golden
  // stat sets stay byte-identical.
  if (fault_drops_ != 0) stats.add("icnt.fault_drops", fault_drops_);
  if (fault_dups_ != 0) stats.add("icnt.fault_dups", fault_dups_);
  if (fault_delays_ != 0) stats.add("icnt.fault_delays", fault_delays_);
  if (fault_forced_ != 0) stats.add("icnt.fault_forced", fault_forced_);
  if (retry_cycles_ != 0) stats.add("icnt.retry_cycles", retry_cycles_);
}

}  // namespace haccrg::mem
