#include "mem/interconnect.hpp"

namespace haccrg::mem {

Interconnect::Interconnect(u32 num_sms, u32 num_partitions, u32 latency, u32 per_cycle) {
  to_partition_.reserve(num_partitions);
  for (u32 p = 0; p < num_partitions; ++p) to_partition_.emplace_back(latency, per_cycle);
  to_sm_.reserve(num_sms);
  for (u32 s = 0; s < num_sms; ++s) to_sm_.emplace_back(latency, per_cycle);
  request_staging_.resize(num_sms);
  response_staging_.resize(num_partitions);
}

void Interconnect::commit_requests(u32 sm, Cycle now) {
  auto& queue = request_staging_[sm];
  while (!queue.empty()) {
    const u32 partition = queue.front().dest_partition;
    if (!to_partition_[partition].can_push(now)) break;
    ++request_packets_;
    to_partition_[partition].push(now, std::move(queue.front()));
    queue.pop_front();
  }
}

void Interconnect::commit_responses(Cycle now) {
  for (auto& staged : response_staging_) {
    for (const Response& rsp : staged) send_response(rsp.sm_id, now, rsp);
    staged.clear();
  }
}

bool Interconnect::idle() const {
  for (const auto& pipe : to_partition_)
    if (!pipe.empty()) return false;
  for (const auto& pipe : to_sm_)
    if (!pipe.empty()) return false;
  for (const auto& queue : request_staging_)
    if (!queue.empty()) return false;
  for (const auto& staged : response_staging_)
    if (!staged.empty()) return false;
  return true;
}

void Interconnect::export_stats(StatSet& stats) const {
  stats.add("icnt.request_packets", request_packets_);
  stats.add("icnt.response_packets", response_packets_);
}

}  // namespace haccrg::mem
