// Set-associative cache tag model with LRU replacement. Only tags are
// modelled — functional data lives in DeviceMemory — so the same class
// serves the per-SM non-coherent L1s and the banked unified L2 slices.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace haccrg::mem {

enum class WritePolicy {
  kWriteThroughNoAllocate,  ///< L1 for global stores (Fermi-style)
  kWriteBackAllocate,       ///< L2 slices
};

/// Result of a cache probe-with-update.
struct CacheAccessResult {
  bool hit = false;
  bool writeback = false;  ///< a dirty victim must be written to DRAM
  Addr victim_addr = 0;    ///< line address of the dirty victim
};

class Cache {
 public:
  Cache(std::string name, u32 size_bytes, u32 ways, u32 line_bytes, WritePolicy policy);

  /// Probe and update state for an access to `addr` at time `now`.
  /// Reads allocate on miss; writes follow the policy. `now` stamps the
  /// fill time of allocated lines (see fill_time).
  CacheAccessResult access(Addr addr, bool is_write, Cycle now = 0);

  /// Probe without side effects (used for the L1-hit race flag).
  bool probe(Addr addr) const;

  /// Cycle at which the line containing `addr` was filled; 0 when the
  /// line is absent. Lets the race detector qualify stale-L1-hit reads:
  /// a hit on a line filled *after* the racing write observed fresh data.
  Cycle fill_time(Addr addr) const;

  /// Invalidate the line containing `addr` if present.
  void invalidate(Addr addr);
  /// Invalidate everything (kernel boundary).
  void invalidate_all();

  u32 line_bytes() const { return line_; }
  u64 accesses() const { return accesses_; }
  u64 hits() const { return hits_; }
  f64 miss_rate() const {
    return accesses_ == 0 ? 0.0 : 1.0 - static_cast<f64>(hits_) / static_cast<f64>(accesses_);
  }

  void export_stats(StatSet& stats) const;

 private:
  struct Line {
    u64 tag = 0;
    bool valid = false;
    bool dirty = false;
    u64 lru = 0;
    Cycle filled_at = 0;
  };

  u64 tag_of(Addr addr) const { return addr / line_ / sets_; }
  u32 set_of(Addr addr) const { return (addr / line_) % sets_; }
  Line* find(Addr addr);
  const Line* find(Addr addr) const;
  Line& victim(u32 set);

  std::string name_;
  u32 line_;
  u32 ways_;
  u32 sets_;
  WritePolicy policy_;
  std::vector<Line> lines_;  // sets_ * ways_, row-major by set
  u64 tick_ = 0;
  u64 accesses_ = 0;
  u64 hits_ = 0;
  u64 writebacks_ = 0;
};

}  // namespace haccrg::mem
