// Per-SM banked shared memory (scratchpad). Storage is functional; the
// bank-conflict calculator provides the access timing the SM charges.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace haccrg::mem {

/// Shared-memory scratchpad of one SM. Addresses are SM-local byte
/// offsets; the SM adds each block's partition base before calling in.
class SharedMemory {
 public:
  SharedMemory(u32 bytes, u32 banks) : data_(bytes, 0), banks_(banks) {}

  u32 size() const { return static_cast<u32>(data_.size()); }
  u32 banks() const { return banks_; }

  u8 read_u8(u32 addr) const { return data_.at(addr); }
  void write_u8(u32 addr, u8 v) { data_.at(addr) = v; }
  u32 read_u32(u32 addr) const;
  void write_u32(u32 addr, u32 v);

  void clear(u32 addr, u32 bytes);

  /// Bank of a byte address: successive 32-bit words map to successive
  /// banks, as in NVIDIA hardware.
  u32 bank_of(u32 addr) const { return (addr / 4) % banks_; }

  /// Cycles needed to serve a warp's shared accesses: the maximum number
  /// of *distinct words* any single bank must deliver (same-word accesses
  /// broadcast and do not conflict).
  u32 conflict_cycles(const std::vector<u32>& lane_addrs) const;

 private:
  std::vector<u8> data_;
  u32 banks_;
  /// Per-bank distinct-word counters reused across conflict_cycles calls
  /// (the SM calls once per shared instruction — keep it allocation-free).
  mutable std::vector<u32> bank_load_;
};

}  // namespace haccrg::mem
