// TLB models for HAccRG's virtual-memory support (Section IV-B,
// "Supporting Virtual Memory"). With paged GPU memory every global
// access needs two translations: the application page and its on-demand
// shadow page. The paper proposes two mechanisms:
//
//  1. kAppendedBit — one unified TLB whose tags grow by one bit marking
//     shadow entries; shadow translations share (and reduce) the
//     effective capacity available to application pages.
//  2. kSeparateShadowTlb — a second, smaller TLB dedicated to shadow
//     pages, leaving the main TLB untouched and the lookup faster.
//
// These models measure the hit-rate consequences of each choice on an
// address trace; bench_tlb_virtual_memory drives them with traces
// captured from the benchmark suite.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace haccrg::mem {

enum class TlbMode {
  kAppendedBit,        ///< unified TLB, 1 tag bit distinguishes shadow pages
  kSeparateShadowTlb,  ///< dedicated (smaller) shadow TLB
};

struct TlbStats {
  u64 app_accesses = 0;
  u64 app_hits = 0;
  u64 shadow_accesses = 0;
  u64 shadow_hits = 0;

  f64 app_hit_rate() const {
    return app_accesses == 0 ? 0.0 : static_cast<f64>(app_hits) / app_accesses;
  }
  f64 shadow_hit_rate() const {
    return shadow_accesses == 0 ? 0.0 : static_cast<f64>(shadow_hits) / shadow_accesses;
  }
};

/// A set-associative TLB over virtual page numbers, with the dual
/// app/shadow translation scheme selected by TlbMode.
class DualTlb {
 public:
  /// `entries`/`ways` size the main TLB; `shadow_entries` sizes the
  /// dedicated shadow TLB (used only in kSeparateShadowTlb mode).
  DualTlb(TlbMode mode, u32 entries, u32 ways, u32 shadow_entries, u32 page_bytes = 4096);

  /// One global-memory access: translate the application page and (when
  /// `with_shadow`) its shadow page.
  void access(Addr app_addr, Addr shadow_addr, bool with_shadow);

  const TlbStats& stats() const { return stats_; }
  TlbMode mode() const { return mode_; }

  std::string describe() const;

 private:
  struct Entry {
    u64 tag = 0;
    bool valid = false;
    u64 lru = 0;
  };

  /// Probe-and-fill in the given array; returns hit.
  bool lookup(std::vector<Entry>& entries, u32 ways, u64 key);

  TlbMode mode_;
  u32 ways_;
  u32 sets_;
  u32 shadow_sets_;
  u32 page_shift_;
  std::vector<Entry> main_;
  std::vector<Entry> shadow_;
  u64 tick_ = 0;
  TlbStats stats_;
};

}  // namespace haccrg::mem
