// SM <-> memory-partition interconnect: per-partition request queues and
// per-SM response queues, each modelled as a fixed-latency pipe with a
// bounded per-cycle acceptance rate.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"
#include "mem/packets.hpp"

namespace haccrg::mem {

/// Fixed-latency, rate-limited pipe of T.
template <typename T>
class LatencyPipe {
 public:
  LatencyPipe(u32 latency, u32 per_cycle) : latency_(latency), per_cycle_(per_cycle) {}

  /// Can another item be accepted at `now`?
  bool can_push(Cycle now) const {
    return last_push_cycle_ != now || pushed_this_cycle_ < per_cycle_;
  }

  void push(Cycle now, T item) {
    if (last_push_cycle_ != now) {
      last_push_cycle_ = now;
      pushed_this_cycle_ = 0;
    }
    ++pushed_this_cycle_;
    queue_.push_back({now + latency_, std::move(item)});
  }

  /// Is an item ready to pop at `now`?
  bool has_ready(Cycle now) const { return !queue_.empty() && queue_.front().ready <= now; }

  /// Pop the next item whose latency has elapsed, if any.
  std::optional<T> pop_ready(Cycle now) {
    if (!has_ready(now)) return std::nullopt;
    T item = std::move(queue_.front().item);
    queue_.pop_front();
    return item;
  }

  bool empty() const { return queue_.empty(); }
  size_t depth() const { return queue_.size(); }

 private:
  struct Entry {
    Cycle ready;
    T item;
  };
  u32 latency_;
  u32 per_cycle_;
  std::deque<Entry> queue_;
  Cycle last_push_cycle_ = ~Cycle{0};
  u32 pushed_this_cycle_ = 0;
};

/// The on-chip network: one request pipe per memory partition and one
/// response pipe per SM, plus the per-worker staging queues the parallel
/// engine uses. During a parallel epoch phase each SM appends requests to
/// its own staging queue (and each partition to its own response slot);
/// at the epoch barrier the engine commits them into the shared pipes in
/// SM-id / partition-id order, so packet arrival order — and therefore
/// every downstream timing decision — is identical for any thread count.
class Interconnect {
 public:
  Interconnect(u32 num_sms, u32 num_partitions, u32 latency, u32 per_cycle);

  /// Arm fault injection on the request path (null = off). Faults are
  /// rolled in commit_requests — a serial phase — using the injector's
  /// per-SM interconnect streams, so placement depends only on each SM's
  /// own packet sequence. A dropped or delayed packet
  /// parks in a per-SM retry buffer and is re-injected after the plan's
  /// retry_timeout; after max_retries failed attempts it is forced
  /// through so a 100% fault rate still terminates.
  void set_faults(fault::FaultInjector* faults) {
    faults_ = faults;
    if (faults_ != nullptr && retry_.size() != request_staging_.size())
      retry_.resize(request_staging_.size());
  }

  // The per-cycle queries below run once per SM (or partition) per cycle
  // in the engine's hot loop, so they are defined inline.
  bool can_send_request(u32 partition, Cycle now) const {
    return to_partition_[partition].can_push(now);
  }
  void send_request(u32 partition, Cycle now, Packet pkt) {
    ++request_packets_;
    to_partition_[partition].push(now, std::move(pkt));
  }
  bool has_request(u32 partition, Cycle now) const {
    return to_partition_[partition].has_ready(now);
  }
  std::optional<Packet> recv_request(u32 partition, Cycle now) {
    return to_partition_[partition].pop_ready(now);
  }

  bool can_send_response(u32 sm, Cycle now) const { return to_sm_[sm].can_push(now); }
  void send_response(u32 sm, Cycle now, Response rsp) {
    ++response_packets_;
    to_sm_[sm].push(now, rsp);
  }
  std::optional<Response> recv_response(u32 sm, Cycle now) {
    return to_sm_[sm].pop_ready(now);
  }
  /// True when SM `sm` has a response ready this cycle (cheap pre-check
  /// that saves the optional machinery on the common empty path).
  bool has_response(u32 sm, Cycle now) const { return to_sm_[sm].has_ready(now); }

  // --- Epoch staging (thread-confined per SM / per partition) ---------------
  /// Append a request to SM `sm`'s staging queue (pkt.dest_partition must
  /// be set). Safe to call concurrently for distinct `sm`.
  void stage_request(u32 sm, Packet pkt) { request_staging_[sm].push_back(std::move(pkt)); }
  /// Requests still staged (or back-pressured) for SM `sm`.
  size_t staged_requests(u32 sm) const { return request_staging_[sm].size(); }
  /// Anything left to commit for SM `sm` — staged or awaiting retry.
  bool has_pending(u32 sm) const {
    return !request_staging_[sm].empty() || (!retry_.empty() && !retry_[sm].empty());
  }
  /// Total packets awaiting injection across all SMs (staged + parked
  /// retries, ripe or not). The engine uses this to skip the serial
  /// commit sub-phase on idle cycles; it is a pure census, so calling it
  /// does not perturb arbitration.
  u64 pending_requests() const {
    u64 pending = 0;
    for (const auto& queue : request_staging_) pending += queue.size();
    for (const auto& retries : retry_) pending += retries.size();
    return pending;
  }
  /// Push every SM's staged requests into the partition pipes with a
  /// round-robin grant (one packet per SM per round; within an SM oldest
  /// first, stalling at the first rate-limited packet — head-of-line
  /// blocking, like a real injection port). Serial phase only; the engine
  /// calls this once per cycle after the SM commit loop.
  void commit_requests(Cycle now);

  /// Stage a response produced by partition `partition` this cycle.
  /// Safe to call concurrently for distinct `partition`.
  void stage_response(u32 partition, Response rsp) {
    response_staging_[partition].push_back(rsp);
  }
  /// Push all staged responses into the SM pipes in partition-id order.
  /// Serial phase only.
  void commit_responses(Cycle now);

  u32 num_sms() const { return static_cast<u32>(to_sm_.size()); }

  bool idle() const;
  u64 request_packets() const { return request_packets_; }

  void export_stats(StatSet& stats) const;

 private:
  /// A dropped/delayed request waiting out its retry window.
  struct RetryEntry {
    Cycle ready = 0;  ///< earliest re-injection cycle
    u32 tries = 0;    ///< failed injection attempts so far
    Packet pkt;
  };

  /// Try to inject one packet, rolling the fault sites unless the packet
  /// has exhausted its retries. Returns false if the packet was parked
  /// in the retry buffer instead of entering the pipe.
  bool inject_request(u32 sm, Cycle now, Packet pkt, u32 tries);

  /// One arbitration-round step for SM `sm`: move its oldest pending
  /// packet (ripe retry, else staged) into its partition pipe. Returns
  /// false when the SM has nothing ripe or its head packet's pipe is
  /// rate-limited this cycle.
  bool inject_one(u32 sm, Cycle now);

  std::vector<LatencyPipe<Packet>> to_partition_;
  std::vector<LatencyPipe<Response>> to_sm_;
  std::vector<std::deque<Packet>> request_staging_;    ///< one queue per SM
  std::vector<std::vector<Response>> response_staging_;  ///< one slot per partition
  std::vector<std::deque<RetryEntry>> retry_;  ///< per SM; allocated when faults arm
  std::vector<u32> arb_active_;  ///< commit_requests scratch: SMs still in arbitration
  fault::FaultInjector* faults_ = nullptr;
  u64 request_packets_ = 0;
  u64 response_packets_ = 0;
  u64 fault_drops_ = 0;
  u64 fault_dups_ = 0;
  u64 fault_delays_ = 0;
  u64 fault_forced_ = 0;
  u64 retry_cycles_ = 0;  ///< total cycles packets spent parked for retry
};

}  // namespace haccrg::mem
