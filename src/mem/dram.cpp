#include "mem/dram.hpp"

namespace haccrg::mem {

void DramChannel::push(Cycle now, Packet pkt) {
  queue_.push_back({now + latency_, std::move(pkt)});
}

std::optional<Packet> DramChannel::cycle(Cycle now) {
  if (queue_.empty()) return std::nullopt;
  if (now < busy_until_) return std::nullopt;
  Pending& head = queue_.front();
  if (head.ready > now) return std::nullopt;

  // Start (and account) the burst; the request completes when the burst
  // finishes, which we approximate by returning it now and blocking the
  // bus for burst_cycles.
  busy_until_ = now + burst_cycles_;
  busy_cycles_ += burst_cycles_;
  ++serviced_;
  Packet done = std::move(head.pkt);
  queue_.pop_front();
  return done;
}

void DramChannel::export_stats(StatSet& stats, const std::string& prefix) const {
  stats.add(prefix + ".requests", serviced_);
  stats.add(prefix + ".busy_cycles", busy_cycles_);
}

}  // namespace haccrg::mem
