#include "mem/partition.hpp"

#include "mem/interconnect.hpp"

namespace haccrg::mem {

MemoryPartition::MemoryPartition(u32 id, const arch::GpuConfig& config)
    : atomic_latency_(config.atomic_latency), l2_latency_(config.l2_latency), id_(id),
      l2_("l2", config.l2_slice_size, config.l2_ways, config.l2_line,
          WritePolicy::kWriteBackAllocate),
      dram_(config.dram_queue_size, config.dram_latency, config.dram_burst_cycles) {}

bool MemoryPartition::accept(Packet pkt) {
  if (input_.size() >= kInputDepth) return false;
  if (pkt.kind == PacketKind::kShadow) {
    ++shadow_packets_;
    if (faults_ != nullptr) faults_->note_shadow_packet(id_, pkt.addr, pkt.bytes);
  } else {
    ++data_packets_;
  }
  input_.push_back(std::move(pkt));
  return true;
}

std::optional<PartitionCompletion> MemoryPartition::cycle(Cycle now) {
  // 1. Start at most one new L2 access per cycle.
  if (!input_.empty() && dram_.can_accept()) {
    Packet pkt = std::move(input_.front());
    input_.pop_front();

    const bool is_write = pkt.kind == PacketKind::kStore ||
                          (pkt.kind == PacketKind::kShadow && pkt.shadow_write);
    CacheAccessResult r = l2_.access(pkt.addr, is_write);
    if (r.writeback) {
      // Dirty victim goes to DRAM as a write the SM never sees.
      Packet wb;
      wb.kind = PacketKind::kStore;
      wb.addr = r.victim_addr;
      wb.bytes = l2_.line_bytes();
      wb.sm_id = ~0u;  // no response
      dram_.push(now, wb);
    }

    u32 extra = pkt.kind == PacketKind::kAtomic ? atomic_latency_ : 0;
    if (r.hit) {
      done_queue_.push_back({now + l2_latency_ + extra, std::move(pkt)});
    } else {
      // Miss: fetch through DRAM; the packet completes when DRAM services
      // it (the L2 line was already allocated above).
      dram_.push(now, std::move(pkt));
    }
  }

  // 2. Advance DRAM; completed fetches join the done queue after the L2
  //    fill latency.
  if (auto done = dram_.cycle(now)) {
    if (done->sm_id != ~0u || done->kind == PacketKind::kShadow) {
      const u32 extra = done->kind == PacketKind::kAtomic ? atomic_latency_ : 0;
      done_queue_.push_back({now + l2_latency_ + extra, std::move(*done)});
    }
  }

  // 3. Emit one ripe completion.
  if (!done_queue_.empty() && done_queue_.front().ready <= now) {
    Packet pkt = std::move(done_queue_.front().pkt);
    done_queue_.pop_front();
    return PartitionCompletion{std::move(pkt)};
  }
  return std::nullopt;
}

void MemoryPartition::step(Interconnect& icnt, Cycle now) {
  // Only pop a request the partition can actually take (back-pressure
  // stays in the interconnect queue).
  if (can_accept() && icnt.has_request(id_, now)) {
    auto pkt = icnt.recv_request(id_, now);
    accept(std::move(*pkt));
  }
  if (auto completion = cycle(now)) {
    const Packet& pkt = completion->pkt;
    if (pkt.kind != PacketKind::kShadow && pkt.sm_id < icnt.num_sms()) {
      icnt.stage_response(id_, Response{pkt.kind, pkt.sm_id, pkt.warp_slot});
    }
  }
}

bool MemoryPartition::idle() const {
  return input_.empty() && done_queue_.empty() && dram_.idle();
}

void MemoryPartition::export_stats(StatSet& stats) const {
  l2_.export_stats(stats);
  dram_.export_stats(stats, "dram." + std::to_string(id_));
  stats.add("partition.shadow_packets", shadow_packets_);
  stats.add("partition.data_packets", data_packets_);
}

}  // namespace haccrg::mem
