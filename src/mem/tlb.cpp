#include "mem/tlb.hpp"

#include <cassert>
#include <sstream>

namespace haccrg::mem {

DualTlb::DualTlb(TlbMode mode, u32 entries, u32 ways, u32 shadow_entries, u32 page_bytes)
    : mode_(mode), ways_(ways), sets_(entries / ways),
      shadow_sets_(shadow_entries / ways == 0 ? 1 : shadow_entries / ways),
      page_shift_(log2_pow2(page_bytes)), main_(entries),
      shadow_(mode == TlbMode::kSeparateShadowTlb ? shadow_sets_ * ways : 0) {
  assert(is_pow2(page_bytes));
  assert(sets_ > 0);
}

bool DualTlb::lookup(std::vector<Entry>& entries, u32 ways, u64 key) {
  ++tick_;
  const u32 num_sets = static_cast<u32>(entries.size()) / ways;
  const u32 set = static_cast<u32>(key % num_sets);
  Entry* line = &entries[set * ways];
  Entry* victim = line;
  for (u32 w = 0; w < ways; ++w) {
    Entry& e = line[w];
    if (e.valid && e.tag == key) {
      e.lru = tick_;
      return true;
    }
    if (!e.valid || e.lru < victim->lru) victim = &e;
  }
  victim->valid = true;
  victim->tag = key;
  victim->lru = tick_;
  return false;
}

void DualTlb::access(Addr app_addr, Addr shadow_addr, bool with_shadow) {
  const u64 app_page = app_addr >> page_shift_;
  ++stats_.app_accesses;
  // In the appended-bit scheme, app and shadow pages share the main TLB
  // but have disjoint tags (the appended bit is the key's top bit).
  if (lookup(main_, ways_, app_page << 1)) ++stats_.app_hits;

  if (!with_shadow) return;
  const u64 shadow_page = shadow_addr >> page_shift_;
  ++stats_.shadow_accesses;
  const bool hit = mode_ == TlbMode::kAppendedBit
                       ? lookup(main_, ways_, (shadow_page << 1) | 1)
                       : lookup(shadow_, ways_, shadow_page);
  if (hit) ++stats_.shadow_hits;
}

std::string DualTlb::describe() const {
  std::ostringstream out;
  out << (mode_ == TlbMode::kAppendedBit ? "appended-bit unified TLB" : "separate shadow TLB")
      << " (" << sets_ * ways_ << " entries, " << ways_ << "-way";
  if (mode_ == TlbMode::kSeparateShadowTlb)
    out << ", +" << shadow_sets_ * ways_ << "-entry shadow TLB";
  out << ")";
  return out.str();
}

}  // namespace haccrg::mem
