// DRAM channel model: a bounded request queue, fixed access latency, and
// a data bus that is busy for a burst period per transaction. Busy-cycle
// accounting feeds the Figure-9 bandwidth-utilization experiment.
#pragma once

#include <deque>
#include <optional>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/packets.hpp"

namespace haccrg::mem {

class DramChannel {
 public:
  DramChannel(u32 queue_size, u32 latency, u32 burst_cycles)
      : queue_size_(queue_size), latency_(latency), burst_cycles_(burst_cycles) {}

  bool can_accept() const { return queue_.size() < queue_size_; }

  /// Enqueue a request at cycle `now`. Caller must check can_accept().
  void push(Cycle now, Packet pkt);

  /// Advance the channel; returns a completed packet if one finished this
  /// cycle (at most one per call).
  std::optional<Packet> cycle(Cycle now);

  bool idle() const { return queue_.empty(); }

  u64 serviced() const { return serviced_; }
  u64 busy_cycles() const { return busy_cycles_; }
  /// Fraction of cycles the data bus was transferring, over `total`.
  f64 utilization(Cycle total) const {
    return total == 0 ? 0.0 : static_cast<f64>(busy_cycles_) / static_cast<f64>(total);
  }

  void export_stats(StatSet& stats, const std::string& prefix) const;

 private:
  struct Pending {
    Cycle ready;  ///< earliest cycle the access may start its burst
    Packet pkt;
  };

  u32 queue_size_;
  u32 latency_;
  u32 burst_cycles_;
  std::deque<Pending> queue_;
  Cycle busy_until_ = 0;
  u64 serviced_ = 0;
  u64 busy_cycles_ = 0;
};

}  // namespace haccrg::mem
