#include "mem/coalescer.hpp"

#include <algorithm>
#include <map>

namespace haccrg::mem {

std::vector<CoalescedSegment> coalesce(const std::vector<LaneAccess>& accesses,
                                       u32 segment_bytes) {
  // Map segment base -> lanes, preserving lane order within a segment and
  // first-touch order across segments (deterministic issue order).
  std::vector<CoalescedSegment> segments;
  for (const LaneAccess& a : accesses) {
    const Addr first = a.addr & ~(segment_bytes - 1);
    const Addr last = (a.addr + a.size - 1) & ~(segment_bytes - 1);
    for (Addr seg = first; seg <= last; seg += segment_bytes) {
      auto it = std::find_if(segments.begin(), segments.end(),
                             [&](const CoalescedSegment& s) { return s.addr == seg; });
      if (it == segments.end()) {
        segments.push_back({seg, {a.lane}});
      } else if (it->lanes.empty() || it->lanes.back() != a.lane) {
        it->lanes.push_back(a.lane);
      }
      if (seg > last - segment_bytes && seg == last) break;  // avoid overflow wrap
    }
  }
  return segments;
}

std::vector<IntraWarpConflict> intra_warp_waw(const std::vector<LaneAccess>& accesses,
                                              u32 granule_bytes) {
  std::map<Addr, u32> first_writer;  // granule base -> first lane
  std::vector<IntraWarpConflict> conflicts;
  for (const LaneAccess& a : accesses) {
    const Addr granule = a.addr & ~(granule_bytes - 1);
    auto [it, inserted] = first_writer.emplace(granule, a.lane);
    if (!inserted && it->second != a.lane) {
      // Report each granule once.
      const bool already = std::any_of(conflicts.begin(), conflicts.end(),
                                       [&](const IntraWarpConflict& c) {
                                         return c.granule_addr == granule;
                                       });
      if (!already) conflicts.push_back({it->second, a.lane, granule});
    }
  }
  return conflicts;
}

}  // namespace haccrg::mem
