#include "mem/coalescer.hpp"

namespace haccrg::mem {

CoalesceBuffer::Segment& CoalesceBuffer::acquire(Addr addr) {
  if (count_ == slots_.size()) slots_.emplace_back();
  Segment& seg = slots_[count_++];
  seg.addr = addr;
  seg.access_indices.clear();
  return seg;
}

void CoalesceBuffer::build(const std::vector<LaneAccess>& accesses, u32 segment_bytes) {
  count_ = 0;
  for (u32 i = 0; i < static_cast<u32>(accesses.size()); ++i) {
    const LaneAccess& a = accesses[i];
    const Addr first = a.addr & ~(segment_bytes - 1);
    const Addr last = (a.addr + a.size - 1) & ~(segment_bytes - 1);
    for (Addr seg_addr = first; seg_addr <= last; seg_addr += segment_bytes) {
      Segment* seg = nullptr;
      for (u32 s = 0; s < count_; ++s) {
        if (slots_[s].addr == seg_addr) {
          seg = &slots_[s];
          break;
        }
      }
      if (seg == nullptr) {
        acquire(seg_addr).access_indices.push_back(i);
      } else if (seg->access_indices.empty() ||
                 accesses[seg->access_indices.back()].lane != a.lane) {
        seg->access_indices.push_back(i);
      }
      if (seg_addr > last - segment_bytes && seg_addr == last) break;  // avoid overflow wrap
    }
  }
}

std::vector<CoalescedSegment> coalesce(const std::vector<LaneAccess>& accesses,
                                       u32 segment_bytes) {
  CoalesceBuffer buffer;
  buffer.build(accesses, segment_bytes);
  std::vector<CoalescedSegment> segments(buffer.size());
  for (u32 s = 0; s < buffer.size(); ++s) {
    segments[s].addr = buffer[s].addr;
    segments[s].lanes.reserve(buffer[s].access_indices.size());
    for (u32 idx : buffer[s].access_indices) segments[s].lanes.push_back(accesses[idx].lane);
  }
  return segments;
}

void WawBuffer::build(const std::vector<LaneAccess>& accesses, u32 granule_bytes) {
  granules_.clear();
  first_lane_.clear();
  conflicts_.clear();
  for (const LaneAccess& a : accesses) {
    const Addr granule = a.addr & ~(granule_bytes - 1);
    u32 g = 0;
    const u32 n = static_cast<u32>(granules_.size());
    while (g < n && granules_[g] != granule) ++g;
    if (g == n) {
      granules_.push_back(granule);
      first_lane_.push_back(a.lane);
      continue;
    }
    if (first_lane_[g] == a.lane) continue;
    bool already = false;
    for (const IntraWarpConflict& c : conflicts_) {
      if (c.granule_addr == granule) {
        already = true;
        break;
      }
    }
    if (!already) conflicts_.push_back({first_lane_[g], a.lane, granule});
  }
}

std::vector<IntraWarpConflict> intra_warp_waw(const std::vector<LaneAccess>& accesses,
                                              u32 granule_bytes) {
  WawBuffer buffer;
  buffer.build(accesses, granule_bytes);
  return buffer.conflicts();
}

}  // namespace haccrg::mem
