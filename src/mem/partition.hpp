// Memory partition (the paper's "memory slice"): one L2 cache slice plus
// one DRAM channel. The partition services application packets and the
// HAccRG global RDU's shadow packets through the same L2/DRAM resources,
// so shadow traffic pollutes the L2 and consumes DRAM bandwidth exactly
// as Section IV-B describes.
#pragma once

#include <deque>
#include <optional>

#include "arch/config.hpp"
#include "common/stats.hpp"
#include "fault/fault.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/packets.hpp"

namespace haccrg::mem {

class Interconnect;

/// A completed packet leaving the partition (needs a response to its SM
/// unless it is shadow traffic).
struct PartitionCompletion {
  Packet pkt;
};

class MemoryPartition {
 public:
  MemoryPartition(u32 id, const arch::GpuConfig& config);

  /// Arm fault injection (null = off). Accepting a shadow packet may
  /// stage a DRAM bit flip in the injector; the draw is thread-confined
  /// (per-partition stream) and the flip is applied by the Gpu in the
  /// serial post-step phase, confined to the shadow region.
  void set_faults(fault::FaultInjector* faults) { faults_ = faults; }

  /// Room for another incoming packet this cycle?
  bool can_accept() const { return input_.size() < kInputDepth; }

  /// Offer a packet arriving from the interconnect. Returns false when the
  /// input queue is full (caller should leave it queued upstream).
  bool accept(Packet pkt);

  /// Advance one cycle; may emit at most one completion.
  std::optional<PartitionCompletion> cycle(Cycle now);

  /// One epoch-phase step: pop at most one ready request from this
  /// partition's interconnect pipe, advance a cycle, and stage any
  /// completion's response back into the interconnect. Touches only
  /// this partition's pipe and staging slot, so distinct partitions may
  /// step concurrently; responses reach the SM pipes when the engine
  /// commits them at the epoch barrier.
  void step(Interconnect& icnt, Cycle now);

  bool idle() const;

  const Cache& l2() const { return l2_; }
  const DramChannel& dram() const { return dram_; }
  u32 id() const { return id_; }

  void export_stats(StatSet& stats) const;

 private:
  /// Extra cycles an atomic occupies the slice's RMW unit.
  u32 atomic_latency_;
  u32 l2_latency_;

  u32 id_;
  fault::FaultInjector* faults_ = nullptr;
  Cache l2_;
  DramChannel dram_;
  std::deque<Packet> input_;
  static constexpr size_t kInputDepth = 64;

  // Packets waiting out the L2 hit latency (or post-DRAM fill delay).
  struct Delayed {
    Cycle ready;
    Packet pkt;
  };
  std::deque<Delayed> done_queue_;

  u64 shadow_packets_ = 0;
  u64 data_packets_ = 0;
};

}  // namespace haccrg::mem
