// Flat simulated device (global) memory plus a cudaMalloc-style bump
// allocator. Functional state lives here and is updated synchronously at
// instruction issue; the timing model moves data-less packets (see
// packets.hpp) so functional and timing concerns stay separated, the same
// split GPGPU-Sim uses.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace haccrg::mem {

/// Byte-addressable device memory with bounds-checked accessors.
class DeviceMemory {
 public:
  explicit DeviceMemory(u32 bytes) : data_(bytes, 0) {}

  u32 size() const { return static_cast<u32>(data_.size()); }

  u8 read_u8(Addr addr) const;
  void write_u8(Addr addr, u8 value);
  u32 read_u32(Addr addr) const;          ///< addr must be 4-byte aligned
  void write_u32(Addr addr, u32 value);   ///< addr must be 4-byte aligned
  u64 read_u64(Addr addr) const;
  void write_u64(Addr addr, u64 value);

  f32 read_f32(Addr addr) const { return as_f32(read_u32(addr)); }
  void write_f32(Addr addr, f32 value) { write_u32(addr, as_u32(value)); }

  /// memset-style fill.
  void fill(Addr addr, u32 bytes, u8 value);

  /// Bulk host<->device style copies for workload setup / verification.
  void copy_in(Addr dst, const void* src, u32 bytes);
  void copy_out(void* dst, Addr src, u32 bytes) const;

 private:
  void check(Addr addr, u32 bytes) const;
  std::vector<u8> data_;
};

/// One named allocation made through the allocator (Table IV accounting).
struct Allocation {
  std::string name;
  Addr addr = 0;
  u32 bytes = 0;
};

/// Bump allocator over a DeviceMemory, cudaMalloc-equivalent. The HAccRG
/// global shadow region is reserved from the top of the heap at kernel
/// launch; `heap_top()` tells the shadow mapper how much application
/// memory needs shadowing.
class DeviceAllocator {
 public:
  explicit DeviceAllocator(DeviceMemory& memory) : memory_(&memory) {}

  /// Allocate `bytes` aligned to 256 (CUDA's cudaMalloc alignment).
  Addr alloc(u32 bytes, const std::string& name = "");

  /// Total bytes of application allocations so far.
  u32 heap_top() const { return top_; }

  const std::vector<Allocation>& allocations() const { return allocations_; }

  /// Reset the heap (between kernel launches in tests).
  void reset();

 private:
  DeviceMemory* memory_;
  Addr top_ = 0;
  std::vector<Allocation> allocations_;
};

}  // namespace haccrg::mem
