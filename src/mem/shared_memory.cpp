#include "mem/shared_memory.hpp"

#include <algorithm>
#include <cstring>

namespace haccrg::mem {

u32 SharedMemory::read_u32(u32 addr) const {
  addr &= ~3u;
  u32 v;
  std::memcpy(&v, data_.data() + addr, 4);
  return v;
}

void SharedMemory::write_u32(u32 addr, u32 v) {
  addr &= ~3u;
  std::memcpy(data_.data() + addr, &v, 4);
}

void SharedMemory::clear(u32 addr, u32 bytes) {
  std::memset(data_.data() + addr, 0, std::min<size_t>(bytes, data_.size() - addr));
}

u32 SharedMemory::conflict_cycles(const std::vector<u32>& lane_addrs) const {
  // Count distinct word addresses per bank in one pass over the lanes
  // (a warp is at most 32 accesses, so the duplicate scan is a short
  // backward walk). Broadcast (same word from many lanes) costs one
  // cycle; the answer is the most-loaded bank.
  bank_load_.assign(banks_, 0);
  u32 worst = 0;
  for (size_t i = 0; i < lane_addrs.size(); ++i) {
    const u32 word = lane_addrs[i] / 4;
    bool seen = false;
    for (size_t j = 0; j < i; ++j) {
      if (lane_addrs[j] / 4 == word) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    const u32 load = ++bank_load_[word % banks_];
    worst = std::max(worst, load);
  }
  return std::max(worst, 1u);
}

}  // namespace haccrg::mem
