#include "mem/cache.hpp"

#include <cassert>

namespace haccrg::mem {

Cache::Cache(std::string name, u32 size_bytes, u32 ways, u32 line_bytes, WritePolicy policy)
    : name_(std::move(name)), line_(line_bytes), ways_(ways),
      sets_(size_bytes / (ways * line_bytes)), policy_(policy), lines_(sets_ * ways_) {
  assert(sets_ > 0 && is_pow2(line_));
}

Cache::Line* Cache::find(Addr addr) {
  const u64 tag = tag_of(addr);
  const u32 set = set_of(addr);
  for (u32 w = 0; w < ways_; ++w) {
    Line& line = lines_[set * ways_ + w];
    if (line.valid && line.tag == tag) return &line;
  }
  return nullptr;
}

const Cache::Line* Cache::find(Addr addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

Cache::Line& Cache::victim(u32 set) {
  Line* best = &lines_[set * ways_];
  for (u32 w = 0; w < ways_; ++w) {
    Line& line = lines_[set * ways_ + w];
    if (!line.valid) return line;
    if (line.lru < best->lru) best = &line;
  }
  return *best;
}

CacheAccessResult Cache::access(Addr addr, bool is_write, Cycle now) {
  ++accesses_;
  ++tick_;
  CacheAccessResult result;

  if (Line* line = find(addr)) {
    ++hits_;
    result.hit = true;
    line->lru = tick_;
    if (is_write) {
      // Write-through keeps the line clean (data goes downstream anyway);
      // write-back marks it dirty.
      line->dirty = policy_ == WritePolicy::kWriteBackAllocate;
    }
    return result;
  }

  // Miss.
  if (is_write && policy_ == WritePolicy::kWriteThroughNoAllocate) {
    return result;  // no allocation; the store continues downstream
  }

  const u32 set = set_of(addr);
  Line& v = victim(set);
  if (v.valid && v.dirty) {
    result.writeback = true;
    ++writebacks_;
    result.victim_addr = static_cast<Addr>((v.tag * sets_ + set) * line_);
  }
  v.valid = true;
  v.dirty = is_write && policy_ == WritePolicy::kWriteBackAllocate;
  v.tag = tag_of(addr);
  v.lru = tick_;
  v.filled_at = now;
  return result;
}

bool Cache::probe(Addr addr) const { return find(addr) != nullptr; }

Cycle Cache::fill_time(Addr addr) const {
  const Line* line = find(addr);
  return line != nullptr ? line->filled_at : 0;
}

void Cache::invalidate(Addr addr) {
  if (Line* line = find(addr)) {
    line->valid = false;
    line->dirty = false;
  }
}

void Cache::invalidate_all() {
  for (Line& line : lines_) {
    line.valid = false;
    line.dirty = false;
  }
}

void Cache::export_stats(StatSet& stats) const {
  stats.add(name_ + ".accesses", accesses_);
  stats.add(name_ + ".hits", hits_);
  stats.add(name_ + ".writebacks", writebacks_);
}

}  // namespace haccrg::mem
