#include "mem/device_memory.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace haccrg::mem {

void DeviceMemory::check(Addr addr, u32 bytes) const {
  if (static_cast<u64>(addr) + bytes > data_.size()) {
    std::fprintf(stderr, "DeviceMemory: out-of-bounds access at 0x%x (+%u), size 0x%zx\n", addr,
                 bytes, data_.size());
    std::abort();
  }
}

u8 DeviceMemory::read_u8(Addr addr) const {
  check(addr, 1);
  return data_[addr];
}

void DeviceMemory::write_u8(Addr addr, u8 value) {
  check(addr, 1);
  data_[addr] = value;
}

u32 DeviceMemory::read_u32(Addr addr) const {
  check(addr & ~3u, 4);
  u32 v;
  std::memcpy(&v, data_.data() + (addr & ~3u), 4);
  return v;
}

void DeviceMemory::write_u32(Addr addr, u32 value) {
  check(addr & ~3u, 4);
  std::memcpy(data_.data() + (addr & ~3u), &value, 4);
}

u64 DeviceMemory::read_u64(Addr addr) const {
  check(addr & ~7u, 8);
  u64 v;
  std::memcpy(&v, data_.data() + (addr & ~7u), 8);
  return v;
}

void DeviceMemory::write_u64(Addr addr, u64 value) {
  check(addr & ~7u, 8);
  std::memcpy(data_.data() + (addr & ~7u), &value, 8);
}

void DeviceMemory::fill(Addr addr, u32 bytes, u8 value) {
  check(addr, bytes);
  std::memset(data_.data() + addr, value, bytes);
}

void DeviceMemory::copy_in(Addr dst, const void* src, u32 bytes) {
  check(dst, bytes);
  std::memcpy(data_.data() + dst, src, bytes);
}

void DeviceMemory::copy_out(void* dst, Addr src, u32 bytes) const {
  check(src, bytes);
  std::memcpy(dst, data_.data() + src, bytes);
}

Addr DeviceAllocator::alloc(u32 bytes, const std::string& name) {
  const Addr addr = static_cast<Addr>(align_up(top_, 256));
  if (static_cast<u64>(addr) + bytes > memory_->size()) {
    std::fprintf(stderr, "DeviceAllocator: out of device memory allocating %u bytes for '%s'\n",
                 bytes, name.c_str());
    std::abort();
  }
  top_ = addr + bytes;
  allocations_.push_back({name, addr, bytes});
  return addr;
}

void DeviceAllocator::reset() {
  top_ = 0;
  allocations_.clear();
}

}  // namespace haccrg::mem
