#include "fuzz/spec.hpp"

#include <sstream>

#include "common/rng.hpp"

namespace haccrg::fuzz {

namespace {

struct KindRow {
  std::string_view name;
  FragmentTraits traits;
};

// Budgets are worst-case counts the emitters may allocate (block_dim
// 128, grid 4); test_fuzz_generator pins them against the builder so a
// drifting emitter fails loudly instead of overflowing the register
// file under instrumentation.
constexpr u32 kArenaSlotStride = 32;  // one L1 line, see generator.cpp

const KindRow kKinds[kNumFragmentKinds] = {
    {"global_affine", {4, 0, 0, 512, false, false, false}},
    {"shared_xor", {3, 0, 128, 0, false, false, true}},
    {"reduce_tree", {10, 2, 128, 0, false, false, true}},
    {"warp_reduce", {9, 2, 128, 0, false, true, true}},
    {"atomic_counter", {4, 0, 1, 1, false, false, false}},
    {"locked_rmw", {12, 3, 0, 2, false, true, false}},
    // The publish fragments stay sw-silent either way: the software tag
    // scheme's per-block barrier epochs order the producer store before
    // the post-barrier consume loads, fenced or not.
    {"fence_publish", {14, 3, 1, 5 * kArenaSlotStride, false, false, true}},
    {"divergent_halves", {5, 1, 128, 512, false, false, true}},
    {"uniform_if_barrier", {6, 1, 128, 0, false, false, true}},
    {"loop_nest_affine", {9, 2, 0, 4096, false, false, false}},
    {"broadcast_read", {4, 1, 1, 0, false, false, true}},
    {"lane_mask_barrier", {2, 1, 0, 0, false, false, false}},
    {"shared_waw", {3, 0, 32, 0, true, true, true}},
    {"missing_barrier", {6, 0, 128, 0, true, true, true}},
    {"cross_block_waw", {6, 1, 0, 4, true, true, false}},
    {"missing_fence", {14, 3, 1, 5 * kArenaSlotStride, true, false, true}},
    {"rogue_unlocked", {24, 8, 0, 3, true, true, false}},
    {"loop_carried_waw", {7, 1, 128, 0, true, true, true}},
    {"warp_collision", {3, 0, 64, 0, true, true, true}},
    {"atomic_plain_mix", {5, 1, 0, 1, true, false, false}},
};

}  // namespace

std::string_view fragment_kind_name(FragmentKind kind) {
  return kKinds[static_cast<u32>(kind)].name;
}

bool fragment_kind_from_name(std::string_view name, FragmentKind& out) {
  for (u32 i = 0; i < kNumFragmentKinds; ++i) {
    if (kKinds[i].name == name) {
      out = static_cast<FragmentKind>(i);
      return true;
    }
  }
  return false;
}

const FragmentTraits& fragment_traits(FragmentKind kind) {
  return kKinds[static_cast<u32>(kind)].traits;
}

Status KernelSpec::validate() const {
  if (grid_dim != 2 && grid_dim != 4)
    return Status::invalid_argument("spec: grid_dim must be 2 or 4");
  if (block_dim != 64 && block_dim != 128)
    return Status::invalid_argument("spec: block_dim must be 64 or 128");
  if (fragments.empty()) return Status::invalid_argument("spec: no fragments");
  if (fragments.size() > kMaxFragmentsPerKernel)
    return Status::invalid_argument("spec: more than " + std::to_string(kMaxFragmentsPerKernel) +
                                    " fragments");
  u32 regs = 0;
  u32 preds = 0;
  for (const FragmentSpec& f : fragments) {
    if (static_cast<u32>(f.kind) >= kNumFragmentKinds)
      return Status::invalid_argument("spec: unknown fragment kind");
    const FragmentTraits& t = fragment_traits(f.kind);
    regs += t.regs;
    preds += t.preds;
  }
  if (regs > kRegBudget)
    return Status::invalid_argument("spec: fragment register budget exceeded (" +
                                    std::to_string(regs) + " > " + std::to_string(kRegBudget) +
                                    ")");
  if (preds > kPredBudget)
    return Status::invalid_argument("spec: fragment predicate budget exceeded (" +
                                    std::to_string(preds) + " > " + std::to_string(kPredBudget) +
                                    ")");
  return Status();
}

std::string KernelSpec::serialize() const {
  std::ostringstream out;
  out << "haccrg-fuzz-spec v1\n";
  out << "name " << name << "\n";
  out << "grid " << grid_dim << "\n";
  out << "block " << block_dim << "\n";
  for (const FragmentSpec& f : fragments)
    out << "fragment " << fragment_kind_name(f.kind) << " " << f.arg[0] << " " << f.arg[1] << "\n";
  out << "end\n";
  return out.str();
}

Status KernelSpec::parse(const std::string& text, KernelSpec& out) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "haccrg-fuzz-spec v1")
    return Status::invalid_argument("spec: missing 'haccrg-fuzz-spec v1' header");

  KernelSpec spec;
  spec.fragments.clear();
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
      break;
    }
    if (key == "name") {
      if (!(fields >> spec.name)) return Status::invalid_argument("spec: name needs a value");
    } else if (key == "grid") {
      if (!(fields >> spec.grid_dim)) return Status::invalid_argument("spec: bad grid line");
    } else if (key == "block") {
      if (!(fields >> spec.block_dim)) return Status::invalid_argument("spec: bad block line");
    } else if (key == "fragment") {
      std::string kind_name;
      FragmentSpec frag;
      if (!(fields >> kind_name >> frag.arg[0] >> frag.arg[1]))
        return Status::invalid_argument("spec: bad fragment line: " + line);
      if (!fragment_kind_from_name(kind_name, frag.kind))
        return Status::invalid_argument("spec: unknown fragment kind: " + kind_name);
      spec.fragments.push_back(frag);
    } else {
      return Status::invalid_argument("spec: unknown directive: " + key);
    }
  }
  if (!saw_end) return Status::invalid_argument("spec: missing 'end' line");
  Status valid = spec.validate();
  if (!valid.ok()) return valid;
  out = std::move(spec);
  return Status();
}

KernelSpec spec_from_seed(u64 seed, const FuzzConfig& config) {
  SplitMix64 rng(seed ^ 0x66757a7aULL);  // stream-split from other seed users
  KernelSpec spec;
  spec.name = "fuzz-" + std::to_string(seed);
  spec.grid_dim = (rng.next() & 1) ? 4 : 2;
  spec.block_dim = (rng.next() & 1) ? 128 : 64;

  std::vector<FragmentKind> pool;
  for (u32 i = 0; i < kNumFragmentKinds; ++i) {
    const auto kind = static_cast<FragmentKind>(i);
    const bool racy = fragment_traits(kind).racy;
    if ((racy && config.racy_fragments) || (!racy && config.safe_fragments))
      pool.push_back(kind);
  }
  if (pool.empty()) pool.push_back(FragmentKind::kGlobalAffine);

  const u32 max_fragments =
      std::min(std::max<u32>(config.max_fragments, 1), kMaxFragmentsPerKernel);
  const u32 want = 1 + static_cast<u32>(rng.next_below(max_fragments));
  u32 regs = 0;
  u32 preds = 0;
  for (u32 i = 0; i < want; ++i) {
    // Draw until a kind fits the remaining budget; give up after a few
    // tries so a near-full kernel stays a function of the seed alone.
    for (u32 attempt = 0; attempt < 8; ++attempt) {
      const FragmentKind kind = pool[rng.next_below(pool.size())];
      const FragmentTraits& t = fragment_traits(kind);
      if (regs + t.regs > kRegBudget || preds + t.preds > kPredBudget) continue;
      FragmentSpec frag;
      frag.kind = kind;
      frag.arg[0] = static_cast<u32>(rng.next() & 0xff);
      frag.arg[1] = static_cast<u32>(rng.next() & 0xff);
      spec.fragments.push_back(frag);
      regs += t.regs;
      preds += t.preds;
      break;
    }
  }
  if (spec.fragments.empty()) {
    FragmentSpec frag;
    frag.kind = pool[0];
    spec.fragments.push_back(frag);
  }
  return spec;
}

}  // namespace haccrg::fuzz
