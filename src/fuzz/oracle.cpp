#include "fuzz/oracle.hpp"

#include <algorithm>
#include <sstream>

namespace haccrg::fuzz {

namespace {

const std::string_view kClassNames[kNumOracleClasses] = {
    "shared-epoch", "global-epoch", "fence", "lockset", "intra-warp-waw", "atomic-blind",
};

bool contains(const std::vector<u32>& pcs, u32 pc) {
  return std::find(pcs.begin(), pcs.end(), pc) != pcs.end();
}

std::string describe(const OraclePair& pair) {
  std::ostringstream out;
  out << oracle_class_name(pair.cls) << " ["
      << (pair.space == rd::MemSpace::kShared ? "shared" : "global") << " pcs";
  for (u32 pc : pair.pcs) out << " " << pc;
  out << "] (" << pair.note << ")";
  return out.str();
}

}  // namespace

std::string_view oracle_class_name(OracleClass cls) {
  return kClassNames[static_cast<u32>(cls)];
}

bool mechanism_matches(OracleClass cls, rd::RaceMechanism mechanism) {
  switch (cls) {
    case OracleClass::kSharedEpoch:
    case OracleClass::kGlobalEpoch:
      return mechanism == rd::RaceMechanism::kBarrier;
    case OracleClass::kFence:
      return mechanism == rd::RaceMechanism::kFence || mechanism == rd::RaceMechanism::kL1Stale;
    case OracleClass::kLockset:
      return mechanism == rd::RaceMechanism::kLockset;
    case OracleClass::kIntraWarpWaw:
      return mechanism == rd::RaceMechanism::kIntraWarpWaw;
    case OracleClass::kAtomicBlind:
      return false;  // nothing may witness it
  }
  return false;
}

bool RaceOracle::any_hw_visible() const {
  for (const OraclePair& p : pairs)
    if (p.hw_visible) return true;
  return false;
}

std::vector<u32> RaceOracle::hw_racy_pcs() const {
  std::vector<u32> out;
  for (const OraclePair& p : pairs)
    if (p.hw_visible)
      for (u32 pc : p.pcs)
        if (!contains(out, pc)) out.push_back(pc);
  return out;
}

std::vector<u32> RaceOracle::racy_pcs() const {
  std::vector<u32> out;
  for (const OraclePair& p : pairs)
    for (u32 pc : p.pcs)
      if (!contains(out, pc)) out.push_back(pc);
  return out;
}

std::vector<std::string> RaceOracle::check_hw_complete(const rd::RaceLog& log) const {
  std::vector<std::string> violations;
  for (const OraclePair& pair : pairs) {
    if (!pair.hw_visible) continue;
    bool found = false;
    for (const rd::RaceRecord& race : log.races()) {
      if (race.space != pair.space) continue;
      if (!mechanism_matches(pair.cls, race.mechanism)) continue;
      if (!contains(pair.pcs, race.pc)) continue;
      found = true;
      break;
    }
    if (!found)
      violations.push_back("hw missed oracle race: " + describe(pair));
  }
  return violations;
}

std::vector<std::string> RaceOracle::check_hw_precise(const rd::RaceLog& log) const {
  std::vector<std::string> violations;
  for (const rd::RaceRecord& race : log.races()) {
    bool explained = false;
    for (const OraclePair& pair : pairs) {
      if (!pair.hw_visible) continue;
      if (race.space != pair.space) continue;
      if (!mechanism_matches(pair.cls, race.mechanism)) continue;
      if (!contains(pair.pcs, race.pc)) continue;
      explained = true;
      break;
    }
    if (!explained) {
      std::ostringstream out;
      out << "hw false positive: unexplained race pc=" << race.pc << " space="
          << (race.space == rd::MemSpace::kShared ? "shared" : "global")
          << " mechanism=" << rd::race_mechanism_name(race.mechanism) << " granule=0x" << std::hex
          << race.granule_addr;
      violations.push_back(out.str());
    }
  }
  return violations;
}

}  // namespace haccrg::fuzz
