// Expands a KernelSpec into a runnable program plus its ground-truth
// RaceOracle. Generation is a pure function of the spec: no RNG, no
// host state — so corpus repros and shrinker steps always rebuild the
// exact same program and oracle.
//
// Layout contract the oracle's correctness rests on:
//  - Every fragment gets a private shared-memory window (word-aligned)
//    and a private global arena window aligned to one L1 line (32
//    words), so fragments can never alias each other's granules or pull
//    each other's lines into a stale L1 state.
//  - A uniform barrier separates consecutive fragments, so shared-RDU
//    epochs never span fragments.
//  - The whole arena is a single launch parameter (slot 0), leaving the
//    instrumentation slots (12..14) and the sw/GRace register scratch
//    untouched; KernelSpec's packing budget guarantees instrumented
//    rebuilds always fit the register file.
#pragma once

#include "fuzz/oracle.hpp"
#include "fuzz/spec.hpp"
#include "isa/program.hpp"
#include "kernels/common.hpp"

namespace haccrg::fuzz {

struct GeneratedKernel {
  isa::Program program;
  RaceOracle oracle;
  u32 grid_dim = 2;
  u32 block_dim = 64;
  u32 shared_mem_bytes = 0;
  u32 arena_words = 0;  ///< global words to allocate behind param 0
};

/// Build program + oracle from a spec. The spec must be valid
/// (KernelSpec::validate) — generation aborts on a malformed spec, the
/// same contract as KernelBuilder::build.
GeneratedKernel generate(const KernelSpec& spec);

/// Allocate the arena on `gpu` and wrap the generated kernel in the
/// benchmark framework's launch type (verify stays empty: fuzz kernels
/// assert detector behaviour, not output values).
kernels::PreparedKernel prepare_generated(sim::Gpu& gpu, const GeneratedKernel& kernel);

}  // namespace haccrg::fuzz
