// Spec-level shrinking: given a spec whose generated kernel exhibits
// some property (a campaign violation, a specific detected race class),
// find a smaller spec that still exhibits it. All passes operate on the
// KernelSpec — every candidate is re-expanded through generate(), so
// the oracle is rebuilt and re-validated at each step; a shrink can
// never drift away from the ground truth the way instruction-level
// splicing could.
#pragma once

#include <functional>

#include "fuzz/spec.hpp"

namespace haccrg::fuzz {

/// Returns true while the (valid) candidate still exhibits the property
/// being minimized.
using SpecPredicate = std::function<bool(const KernelSpec&)>;

struct ShrinkResult {
  KernelSpec spec;      ///< smallest spec still satisfying the predicate
  u32 steps = 0;        ///< accepted shrink steps
  u32 evaluations = 0;  ///< predicate evaluations spent
};

/// Greedy fixpoint over three passes, re-run until none makes progress:
///  1. delete-fragment (the delete-instruction analog: drop one
///     fragment, front to back),
///  2. simplify-expression (zero a fragment's tuning args: xor masks
///     become affine, loop trips collapse),
///  3. shrink geometry (grid 4 -> 2, block 128 -> 64).
/// `start` must satisfy the predicate; the result always does.
ShrinkResult shrink(const KernelSpec& start, const SpecPredicate& still_interesting);

}  // namespace haccrg::fuzz
