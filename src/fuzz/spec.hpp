// Kernel-spec layer of the fuzzer: a KernelSpec is the small, fully
// deterministic description a seed expands into — launch geometry plus a
// list of fragments drawn from a fixed library. Every fragment kind has
// known register/predicate/memory budgets and a known race oracle, so
// generation can pack fragments against the instrumentation headroom
// (sw-HAccRG and GRace both claim scratch registers) and the oracle can
// be rebuilt from the spec alone. Specs serialize to a line-oriented
// text format; the shrinker and the checked-in corpus repros operate on
// specs, never on raw programs, so every transformation is re-validated
// through the same generator + oracle path.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace haccrg::fuzz {

/// Every kernel shape the generator can emit. Kinds marked "racy" carry
/// a by-construction race the oracle records; the rest are safe by
/// construction (some deliberately beyond the static verifier's proof
/// power, some deliberately in the software schemes' known-over-report
/// envelope). The order pins the serialized names — append-only.
enum class FragmentKind : u8 {
  // --- safe by construction -------------------------------------------------
  kGlobalAffine = 0,   ///< per-thread global read-modify-write, affine index
  kSharedXor,          ///< shared store at tid^mask (bijective, non-affine)
  kReduceTree,         ///< barrier-per-level shared tree reduction
  kWarpReduce,         ///< barrier-free final-warp reduction (sw over-reports)
  kAtomicCounter,      ///< shared + global atomic adds (atomics never checked)
  kLockedRmw,          ///< with_lock critical section RMW (sw over-reports)
  kFencePublish,       ///< store / fence / atomic gate / cross-block consume
  kDivergentHalves,    ///< if/else halves write disjoint shared/global slots
  kUniformIfBarrier,   ///< barrier inside uniformly-true if
  kLoopNestAffine,     ///< nested affine loops, per-thread disjoint stores
  kBroadcastRead,      ///< one writer, barrier, block-wide read sharing
  kLaneMaskBarrier,    ///< barrier under a lane<32 predicate (lint bait)
  // --- racy by construction -------------------------------------------------
  kSharedWaw,          ///< cross-warp shared WAW (tid mod warp_size)
  kMissingBarrier,     ///< neighbour exchange with the barrier removed
  kCrossBlockWaw,      ///< rogue store into the next block's global slot
  kMissingFence,       ///< kFencePublish with the fence removed
  kRogueUnlocked,      ///< unprotected store onto lock-protected data
  kLoopCarriedWaw,     ///< loop-carried cross-warp shared WAW (mod index)
  kWarpCollision,      ///< same-instruction intra-warp WAW (tid/2)
  kAtomicPlainMix,     ///< atomic writers vs plain reader: detector blind spot
};

inline constexpr u32 kNumFragmentKinds = 20;

/// Serialized name ("shared_waw") — also the corpus-file vocabulary.
std::string_view fragment_kind_name(FragmentKind kind);

/// Inverse of fragment_kind_name; false if `name` is unknown.
bool fragment_kind_from_name(std::string_view name, FragmentKind& out);

/// Static budgets and oracle facts for one fragment kind. Worst-case
/// register/predicate costs are validated against the builder by the
/// generator tests, so packing can trust them.
struct FragmentTraits {
  u32 regs = 0;            ///< worst-case registers the emitter allocates
  u32 preds = 0;           ///< worst-case predicate registers
  u32 shared_words = 0;    ///< shared words used at block_dim 128
  u32 arena_words = 0;     ///< arena words used at grid 4, block 128
  bool racy = false;       ///< carries an oracle race pair
  bool sw_flags = false;   ///< the sw-HAccRG tag scheme reports races
  bool shared_store = false;  ///< executes a plain shared store (GRace fires)
};

const FragmentTraits& fragment_traits(FragmentKind kind);

struct FragmentSpec {
  FragmentKind kind = FragmentKind::kGlobalAffine;
  /// Kind-specific tuning knobs (xor mask, loop trip counts, ...).
  /// Always reduced modulo the legal range by the emitter, so any value
  /// is valid — the shrinker drives them toward zero.
  std::array<u32, 2> arg{};
};

/// One fuzz kernel: geometry plus fragments, nothing else. Everything
/// the generator emits is a deterministic function of this struct.
struct KernelSpec {
  std::string name = "fuzz";
  u32 grid_dim = 2;    ///< 2 or 4 (power of two: index masks, one SM each)
  u32 block_dim = 64;  ///< 64 or 128 (>= 2 warps so cross-warp races exist)
  std::vector<FragmentSpec> fragments;

  /// Structural validity: legal geometry, >= 1 fragment, and the
  /// register/predicate packing budget respected.
  Status validate() const;

  /// Canonical text form (parse() round-trips it bit-exactly).
  std::string serialize() const;

  /// Parse the serialized form. On error `out` is untouched.
  static Status parse(const std::string& text, KernelSpec& out);
};

/// Packing budgets: the builder's register file minus the larger of the
/// two instrumentation scratch claims, with margin for the prologue.
inline constexpr u32 kMaxFragmentsPerKernel = 6;
inline constexpr u32 kRegBudget = 48;   ///< fragment registers, prologue excluded
inline constexpr u32 kPredBudget = 10;  ///< fragment predicates

/// Knobs for seed-driven spec construction.
struct FuzzConfig {
  u32 max_fragments = 4;        ///< clamped to kMaxFragmentsPerKernel
  bool racy_fragments = true;   ///< allow the racy half of the library
  bool safe_fragments = true;   ///< allow the safe half
};

/// Expand a seed into a spec: geometry and a budget-respecting fragment
/// list drawn from the library. Same seed + config => identical spec.
KernelSpec spec_from_seed(u64 seed, const FuzzConfig& config = {});

}  // namespace haccrg::fuzz
