#include "fuzz/generator.hpp"

#include <cstdio>
#include <cstdlib>

#include "isa/builder.hpp"

namespace haccrg::fuzz {

namespace {

using isa::AtomicOp;
using isa::CmpOp;
using isa::KernelBuilder;
using isa::Operand;
using isa::Pred;
using isa::Reg;
using isa::SpecialReg;

/// One L1 line: global windows are aligned to this so a load in one
/// fragment can never pull another fragment's words into a reader's L1
/// and manufacture a spurious stale-line race.
constexpr u32 kArenaSlotStride = 32;

/// Per-emission state shared by the fragment emitters. The cached
/// specials/constants MUST all be materialized in the uniform prelude
/// (see generate()): a first use inside divergent control flow would
/// emit the materializing instruction under a partial active mask,
/// leaving the cached register zero for the threads that took the
/// other path — every later fragment then computes garbage addresses.
struct EmitCtx {
  KernelBuilder& kb;
  u32 grid_dim;
  u32 block_dim;

  Reg arena_reg{};
  bool have_arena = false;
  Reg arena() {
    if (!have_arena) {
      arena_reg = kb.param(0);
      have_arena = true;
    }
    return arena_reg;
  }

  Reg cached[4]{};
  bool have[4] = {false, false, false, false};
  Reg special(int slot, SpecialReg which) {
    if (!have[slot]) {
      cached[slot] = kb.special(which);
      have[slot] = true;
    }
    return cached[slot];
  }
  Reg tid() { return special(0, SpecialReg::kTid); }
  Reg bid() { return special(1, SpecialReg::kCtaId); }
  Reg gtid() { return special(2, SpecialReg::kGTid); }
  Reg lane() { return special(3, SpecialReg::kLane); }

  Reg const_reg[2]{};
  bool have_const[2] = {false, false};
  Reg zero() {
    if (!have_const[0]) {
      const_reg[0] = kb.imm(0);
      have_const[0] = true;
    }
    return const_reg[0];
  }
  Reg one() {
    if (!have_const[1]) {
      const_reg[1] = kb.imm(1);
      have_const[1] = true;
    }
    return const_reg[1];
  }

  /// Byte address of shared/global word `index` (base carried by the
  /// ld/st offset immediates).
  Reg word_bytes(Reg index) {
    Reg r = kb.reg();
    kb.shl(r, index, 2);
    return r;
  }
};

void note_pair(RaceOracle& oracle, OracleClass cls, rd::MemSpace space, std::vector<u32> pcs,
               bool hw_visible, const std::string& note) {
  OraclePair pair;
  pair.cls = cls;
  pair.space = space;
  pair.pcs = std::move(pcs);
  pair.hw_visible = hw_visible;
  pair.note = note;
  oracle.pairs.push_back(pair);
}

// --- Safe fragments ---------------------------------------------------------

void emit_global_affine(EmitCtx& ctx, u32 /*s_off*/, u32 g_off, RaceOracle&) {
  KernelBuilder& kb = ctx.kb;
  Reg a = kb.addr(ctx.arena(), ctx.gtid(), 4);
  Reg v = kb.reg();
  kb.ld_global(v, a, g_off * 4);
  kb.add(v, v, 1);
  kb.st_global(a, v, g_off * 4);
}

void emit_shared_xor(EmitCtx& ctx, const FragmentSpec& frag, u32 s_off, RaceOracle&) {
  KernelBuilder& kb = ctx.kb;
  // tid ^ mask is a bijection on [0, block_dim): per-thread disjoint,
  // but the xor defeats the affine analysis — dynamic-precision bait.
  const u32 mask = frag.arg[0] & (ctx.block_dim - 1);
  Reg x = kb.reg();
  kb.xor_(x, ctx.tid(), mask);
  Reg sa = ctx.word_bytes(x);
  kb.st_shared(sa, ctx.tid(), s_off * 4);
}

void emit_reduce_tree(EmitCtx& ctx, u32 s_off, RaceOracle&) {
  KernelBuilder& kb = ctx.kb;
  Reg sa = ctx.word_bytes(ctx.tid());
  kb.st_shared(sa, ctx.tid(), s_off * 4);
  Reg s = kb.imm(ctx.block_dim / 2);
  kb.while_(
      [&] {
        Pred p = kb.pred();
        kb.setp(p, CmpOp::kNe, s, 0);
        return p;
      },
      [&] {
        kb.barrier();  // uniform trip count: every thread sees the same s
        Pred active = kb.pred();
        kb.setp(active, CmpOp::kLtU, ctx.tid(), s);
        kb.if_(active, [&] {
          Reg t2 = kb.reg();
          kb.add(t2, ctx.tid(), s);
          Reg sa2 = ctx.word_bytes(t2);
          Reg v = kb.reg();
          kb.ld_shared(v, sa2, s_off * 4);
          Reg v2 = kb.reg();
          kb.ld_shared(v2, sa, s_off * 4);
          kb.add(v2, v2, v);
          kb.st_shared(sa, v2, s_off * 4);
        });
        kb.shr(s, s, 1);
      });
}

void emit_warp_reduce(EmitCtx& ctx, u32 s_off, RaceOracle&) {
  KernelBuilder& kb = ctx.kb;
  // The classic unrolled-last-warp idiom: no barriers once only warp 0
  // is live. SIMD lockstep orders the accesses, so the hardware RDUs
  // stay silent; the per-thread sw tags flag the same-epoch sharing —
  // the pinned HIST/REDUCE/PSUM/HASH divergence, in miniature.
  Reg sa = ctx.word_bytes(ctx.tid());
  kb.st_shared(sa, ctx.tid(), s_off * 4);
  kb.barrier();
  Pred warp0 = kb.pred();
  kb.setp(warp0, CmpOp::kLtU, ctx.tid(), 32);
  kb.if_(warp0, [&] {
    Reg s = kb.imm(16);
    kb.while_(
        [&] {
          Pred p = kb.pred();
          kb.setp(p, CmpOp::kNe, s, 0);
          return p;
        },
        [&] {
          Reg t2 = kb.reg();
          kb.add(t2, ctx.tid(), s);
          Reg sa2 = ctx.word_bytes(t2);
          Reg v = kb.reg();
          kb.ld_shared(v, sa2, s_off * 4);
          Reg v2 = kb.reg();
          kb.ld_shared(v2, sa, s_off * 4);
          kb.add(v2, v2, v);
          kb.st_shared(sa, v2, s_off * 4);
          kb.shr(s, s, 1);
        });
  });
}

void emit_atomic_counter(EmitCtx& ctx, u32 s_off, u32 g_off, RaceOracle&) {
  KernelBuilder& kb = ctx.kb;
  Reg d = kb.reg();
  kb.atom_shared(d, AtomicOp::kAdd, ctx.zero(), ctx.one(), s_off * 4);
  kb.atom_global(d, AtomicOp::kAdd, ctx.arena(), ctx.one(), g_off * 4);
}

void emit_locked_rmw(EmitCtx& ctx, u32 g_off, RaceOracle&) {
  KernelBuilder& kb = ctx.kb;
  Reg la = kb.reg();
  kb.add(la, ctx.arena(), g_off * 4);
  kb.with_lock(la, [&] {
    Reg da = kb.reg();
    kb.add(da, ctx.arena(), (g_off + 1) * 4);
    Reg v = kb.reg();
    kb.ld_global(v, da);
    kb.add(v, v, 1);
    kb.st_global(da, v);
  });
}

/// Store / (fence) / atomic arrival counter / last block consumes every
/// slot. Slots are one L1 line apart so each consume load misses and
/// the verdict is carried purely by the fence gate.
void emit_publish(EmitCtx& ctx, u32 s_off, u32 g_off, bool fenced, RaceOracle& oracle) {
  KernelBuilder& kb = ctx.kb;
  const u32 counter_off = g_off + ctx.grid_dim * kArenaSlotStride;
  Reg k0 = kb.reg();
  kb.shl(k0, ctx.bid(), 5);
  Reg a = kb.addr(ctx.arena(), k0, 4);
  Pred t0 = kb.pred();
  kb.setp(t0, CmpOp::kEq, ctx.tid(), 0);
  Reg flag = kb.reg();
  kb.mov(flag, 0u);
  u32 pc_store = 0;
  kb.if_(t0, [&] {
    pc_store = kb.here();
    kb.st_global(a, ctx.bid(), g_off * 4);
    if (fenced) kb.memfence();
    Reg d = kb.reg();
    kb.atom_global(d, AtomicOp::kAdd, ctx.arena(), ctx.one(), counter_off * 4);
    Pred last = kb.pred();
    kb.setp(last, CmpOp::kEq, d, ctx.grid_dim - 1);
    kb.sel(flag, last, ctx.one(), ctx.zero());
    kb.st_shared(ctx.zero(), flag, s_off * 4);
  });
  kb.barrier();
  Reg f2 = kb.reg();
  kb.ld_shared(f2, ctx.zero(), s_off * 4);
  Pred consume = kb.pred();
  kb.setp(consume, CmpOp::kNe, f2, 0);
  u32 pc_load = 0;
  kb.if_(consume, [&] {
    Reg i = kb.reg();
    kb.for_range(i, 0u, ctx.grid_dim, 1u, [&] {
      Reg k = kb.reg();
      kb.shl(k, i, 5);
      Reg a2 = kb.addr(ctx.arena(), k, 4);
      pc_load = kb.here();
      Reg v = kb.reg();
      kb.ld_global(v, a2, g_off * 4);
    });
  });
  if (!fenced)
    note_pair(oracle, OracleClass::kFence, rd::MemSpace::kGlobal, {pc_store, pc_load}, true,
              "missing_fence: unfenced cross-block publish/consume");
}

void emit_divergent_halves(EmitCtx& ctx, u32 s_off, u32 g_off, RaceOracle&) {
  KernelBuilder& kb = ctx.kb;
  Pred lower = kb.pred();
  kb.setp(lower, CmpOp::kLtU, ctx.tid(), ctx.block_dim / 2);
  kb.if_else(
      lower,
      [&] {
        Reg sa = ctx.word_bytes(ctx.tid());
        kb.st_shared(sa, ctx.tid(), s_off * 4);
      },
      [&] {
        // Index by gtid: a tid index would collide across blocks.
        Reg a = kb.addr(ctx.arena(), ctx.gtid(), 4);
        kb.st_global(a, ctx.tid(), g_off * 4);
      });
}

void emit_uniform_if_barrier(EmitCtx& ctx, u32 s_off, RaceOracle&) {
  KernelBuilder& kb = ctx.kb;
  Pred always = kb.pred();
  kb.setp(always, CmpOp::kLtU, ctx.zero(), 1);  // uniformly true
  kb.if_(always, [&] {
    Reg sa = ctx.word_bytes(ctx.tid());
    kb.st_shared(sa, ctx.tid(), s_off * 4);
    kb.barrier();
    Reg r = kb.reg();
    kb.add(r, ctx.tid(), 1);
    kb.and_(r, r, ctx.block_dim - 1);
    Reg sa2 = ctx.word_bytes(r);
    Reg v = kb.reg();
    kb.ld_shared(v, sa2, s_off * 4);
  });
}

void emit_loop_nest_affine(EmitCtx& ctx, const FragmentSpec& frag, u32 g_off, RaceOracle&) {
  KernelBuilder& kb = ctx.kb;
  const u32 ti = 1 + (frag.arg[0] & 3);
  const u32 tj = 2;
  Reg i = kb.reg();
  kb.for_range(i, 0u, ti, 1u, [&] {
    Reg j = kb.reg();
    kb.for_range(j, 0u, tj, 1u, [&] {
      Reg k = kb.reg();
      kb.mul(k, ctx.gtid(), ti);
      kb.add(k, k, i);
      kb.mul(k, k, tj);
      kb.add(k, k, j);
      Reg a = kb.addr(ctx.arena(), k, 4);
      kb.st_global(a, k, g_off * 4);
    });
  });
}

void emit_broadcast_read(EmitCtx& ctx, u32 s_off, RaceOracle&) {
  KernelBuilder& kb = ctx.kb;
  Pred t0 = kb.pred();
  kb.setp(t0, CmpOp::kEq, ctx.tid(), 0);
  kb.if_(t0, [&] { kb.st_shared(ctx.zero(), ctx.one(), s_off * 4); });
  kb.barrier();
  Reg v = kb.reg();
  kb.ld_shared(v, ctx.zero(), s_off * 4);
}

void emit_lane_mask_barrier(EmitCtx& ctx, RaceOracle&) {
  KernelBuilder& kb = ctx.kb;
  // Statically divergence-shaped (the predicate reads the lane id) but
  // uniformly true at runtime: every warp arrives with a full mask, so
  // the barrier is dynamically safe. Lint bait for the static verifier.
  Pred p = kb.pred();
  kb.setp(p, CmpOp::kLtU, ctx.lane(), 32);
  kb.if_(p, [&] { kb.barrier(); });
}

// --- Racy fragments ---------------------------------------------------------

void emit_shared_waw(EmitCtx& ctx, u32 s_off, RaceOracle& oracle) {
  KernelBuilder& kb = ctx.kb;
  // tid mod 32: lane l of every warp writes the same word. Same-warp
  // lanes write distinct words (no intra-warp collision); warps collide
  // pairwise in the same epoch -> shared WAW through the RDU.
  Reg w = kb.reg();
  kb.and_(w, ctx.tid(), 31);
  Reg sa = ctx.word_bytes(w);
  const u32 pc = kb.here();
  kb.st_shared(sa, ctx.tid(), s_off * 4);
  note_pair(oracle, OracleClass::kSharedEpoch, rd::MemSpace::kShared, {pc}, true,
            "shared_waw: cross-warp same-word stores");
}

void emit_missing_barrier(EmitCtx& ctx, u32 s_off, RaceOracle& oracle) {
  KernelBuilder& kb = ctx.kb;
  Reg sa = ctx.word_bytes(ctx.tid());
  const u32 pc_st = kb.here();
  kb.st_shared(sa, ctx.tid(), s_off * 4);
  // no barrier: the neighbour exchange races at every warp boundary
  Reg r = kb.reg();
  kb.add(r, ctx.tid(), 1);
  kb.and_(r, r, ctx.block_dim - 1);
  Reg sa2 = ctx.word_bytes(r);
  const u32 pc_ld = kb.here();
  Reg v = kb.reg();
  kb.ld_shared(v, sa2, s_off * 4);
  note_pair(oracle, OracleClass::kSharedEpoch, rd::MemSpace::kShared, {pc_st, pc_ld}, true,
            "missing_barrier: neighbour exchange without a barrier");
}

void emit_cross_block_waw(EmitCtx& ctx, u32 g_off, RaceOracle& oracle) {
  KernelBuilder& kb = ctx.kb;
  Pred t0 = kb.pred();
  kb.setp(t0, CmpOp::kEq, ctx.tid(), 0);
  u32 pc_own = 0;
  u32 pc_rogue = 0;
  kb.if_(t0, [&] {
    Reg a = kb.addr(ctx.arena(), ctx.bid(), 4);
    pc_own = kb.here();
    kb.st_global(a, ctx.bid(), g_off * 4);
    Reg nb = kb.reg();
    kb.add(nb, ctx.bid(), 1);
    kb.and_(nb, nb, ctx.grid_dim - 1);
    Reg a2 = kb.addr(ctx.arena(), nb, 4);
    pc_rogue = kb.here();
    kb.st_global(a2, ctx.tid(), g_off * 4);
  });
  note_pair(oracle, OracleClass::kGlobalEpoch, rd::MemSpace::kGlobal, {pc_own, pc_rogue}, true,
            "cross_block_waw: rogue store into the neighbour block's slot");
}

void emit_rogue_unlocked(EmitCtx& ctx, u32 g_off, RaceOracle& oracle) {
  KernelBuilder& kb = ctx.kb;
  Reg la = kb.reg();
  kb.add(la, ctx.arena(), g_off * 4);
  u32 pc_cs_ld = 0;
  u32 pc_cs_st = 0;
  // The rogue thread's whole warp sits out the locked round: a CS store
  // by a warp-mate just before the rogue store would transfer granule
  // ownership warp-internally and keep the protected sig, erasing the
  // mixed-protection evidence (shadow.cpp state 3, ordered_by_warp).
  // With only cross-warp lockers, whichever side accesses the counter
  // second reports the lockset race.
  Pred locker = kb.pred();
  kb.setp(locker, CmpOp::kGeU, ctx.gtid(), 32);
  kb.if_(locker, [&] {
    kb.with_lock(la, [&] {
      Reg da = kb.reg();
      kb.add(da, ctx.arena(), (g_off + 1) * 4);
      pc_cs_ld = kb.here();
      Reg v = kb.reg();
      kb.ld_global(v, da);
      kb.add(v, v, 1);
      pc_cs_st = kb.here();
      kb.st_global(da, v);
    });
  });
  // Shadow detection only flags the SECOND access of a conflicting
  // pair: if thread 0 wins the lock last, its rogue store is the final
  // access to the counter granule and nothing ever observes the mixed
  // protection. Hand off through a flag (atomics are invisible to the
  // detector) so an observer in another block is ordered after the
  // rogue store and its locked access witnesses the race every time.
  Reg fa = kb.reg();
  kb.add(fa, ctx.arena(), (g_off + 2) * 4);
  Pred rogue = kb.pred();
  kb.setp(rogue, CmpOp::kEq, ctx.gtid(), 0);
  u32 pc_rogue = 0;
  kb.if_(rogue, [&] {
    Reg da2 = kb.reg();
    kb.add(da2, ctx.arena(), (g_off + 1) * 4);
    Reg val = ctx.tid();  // materialize before the pc capture
    pc_rogue = kb.here();
    kb.st_global(da2, val);
    Reg d = kb.reg();
    kb.atom_global(d, AtomicOp::kExch, fa, ctx.one());
  });
  Pred obs = kb.pred();
  kb.setp(obs, CmpOp::kEq, ctx.gtid(), ctx.block_dim);  // thread 0 of block 1
  u32 pc_obs_ld = 0;
  u32 pc_obs_st = 0;
  kb.if_(obs, [&] {
    Reg seen = kb.reg();
    Pred wait = kb.pred();
    kb.while_(
        [&] {
          kb.atom_global(seen, AtomicOp::kAdd, fa, ctx.zero());
          kb.setp(wait, CmpOp::kEq, seen, 0);
          return wait;
        },
        [&] {});
    kb.with_lock(la, [&] {
      Reg da3 = kb.reg();
      kb.add(da3, ctx.arena(), (g_off + 1) * 4);
      pc_obs_ld = kb.here();
      Reg v2 = kb.reg();
      kb.ld_global(v2, da3);
      kb.add(v2, v2, 1);
      pc_obs_st = kb.here();
      kb.st_global(da3, v2);
    });
  });
  note_pair(oracle, OracleClass::kLockset, rd::MemSpace::kGlobal,
            {pc_cs_ld, pc_cs_st, pc_rogue, pc_obs_ld, pc_obs_st}, true,
            "rogue_unlocked: unprotected store onto lock-protected data");
}

void emit_loop_carried_waw(EmitCtx& ctx, u32 s_off, RaceOracle& oracle) {
  KernelBuilder& kb = ctx.kb;
  u32 pc_st = 0;
  Reg i = kb.reg();
  kb.for_range(i, 0u, 3u, 1u, [&] {
    Reg t = kb.reg();
    kb.shl(t, i, 3);
    kb.add(t, t, ctx.tid());
    kb.and_(t, t, ctx.block_dim - 1);
    Reg sa = ctx.word_bytes(t);
    pc_st = kb.here();
    kb.st_shared(sa, i, s_off * 4);
  });
  note_pair(oracle, OracleClass::kSharedEpoch, rd::MemSpace::kShared, {pc_st}, true,
            "loop_carried_waw: (tid + 8i) mod block_dim collides across warps");
}

void emit_warp_collision(EmitCtx& ctx, u32 s_off, RaceOracle& oracle) {
  KernelBuilder& kb = ctx.kb;
  // Lanes 2k and 2k+1 of one warp write the same word in the same
  // instruction: the pre-issue exact-address check fires (Sec. III-A).
  Reg h = kb.reg();
  kb.shr(h, ctx.tid(), 1);
  Reg sa = ctx.word_bytes(h);
  const u32 pc = kb.here();
  kb.st_shared(sa, ctx.tid(), s_off * 4);
  note_pair(oracle, OracleClass::kIntraWarpWaw, rd::MemSpace::kShared, {pc}, true,
            "warp_collision: paired lanes store the same word");
}

void emit_atomic_plain_mix(EmitCtx& ctx, u32 g_off, RaceOracle& oracle) {
  KernelBuilder& kb = ctx.kb;
  Reg aa = kb.reg();
  kb.add(aa, ctx.arena(), g_off * 4);
  const u32 pc_atom = kb.here();
  Reg d = kb.reg();
  kb.atom_global(d, AtomicOp::kAdd, aa, ctx.one());
  Pred t0 = kb.pred();
  kb.setp(t0, CmpOp::kEq, ctx.gtid(), 0);
  u32 pc_ld = 0;
  kb.if_(t0, [&] {
    pc_ld = kb.here();
    Reg v = kb.reg();
    kb.ld_global(v, aa);
  });
  note_pair(oracle, OracleClass::kAtomicBlind, rd::MemSpace::kGlobal, {pc_atom, pc_ld}, false,
            "atomic_plain_mix: atomic writers vs plain reader (atomics are "
            "treated as synchronization by every detector)");
}

/// Shared/global words one fragment instance consumes at this geometry.
struct FragmentFootprint {
  u32 shared_words = 0;
  u32 arena_words = 0;
};

FragmentFootprint footprint(FragmentKind kind, u32 grid_dim, u32 block_dim) {
  switch (kind) {
    case FragmentKind::kGlobalAffine: return {0, grid_dim * block_dim};
    case FragmentKind::kSharedXor: return {block_dim, 0};
    case FragmentKind::kReduceTree: return {block_dim, 0};
    case FragmentKind::kWarpReduce: return {block_dim, 0};
    case FragmentKind::kAtomicCounter: return {1, 1};
    case FragmentKind::kLockedRmw: return {0, 2};
    case FragmentKind::kFencePublish:
    case FragmentKind::kMissingFence:
      return {1, (grid_dim + 1) * kArenaSlotStride};
    case FragmentKind::kDivergentHalves: return {block_dim, grid_dim * block_dim};
    case FragmentKind::kUniformIfBarrier: return {block_dim, 0};
    case FragmentKind::kLoopNestAffine: return {0, grid_dim * block_dim * 4 * 2};
    case FragmentKind::kBroadcastRead: return {1, 0};
    case FragmentKind::kLaneMaskBarrier: return {0, 0};
    case FragmentKind::kSharedWaw: return {32, 0};
    case FragmentKind::kMissingBarrier: return {block_dim, 0};
    case FragmentKind::kCrossBlockWaw: return {0, grid_dim};
    case FragmentKind::kRogueUnlocked: return {0, 3};
    case FragmentKind::kLoopCarriedWaw: return {block_dim, 0};
    case FragmentKind::kWarpCollision: return {block_dim / 2, 0};
    case FragmentKind::kAtomicPlainMix: return {0, 1};
  }
  return {0, 0};
}

u32 align_up(u32 v, u32 a) { return (v + a - 1) / a * a; }

}  // namespace

GeneratedKernel generate(const KernelSpec& spec) {
  const Status valid = spec.validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "fuzz::generate: %s\n", valid.message().c_str());
    std::abort();
  }

  GeneratedKernel out;
  out.grid_dim = spec.grid_dim;
  out.block_dim = spec.block_dim;

  KernelBuilder kb(spec.name);
  EmitCtx ctx{kb, spec.grid_dim, spec.block_dim};
  // Uniform prelude: force every cached register into existence while
  // all threads are active (see the EmitCtx hazard note above).
  ctx.arena();
  ctx.tid();
  ctx.bid();
  ctx.gtid();
  ctx.lane();
  ctx.zero();
  ctx.one();

  u32 s_off = 0;
  u32 g_off = 0;
  for (size_t fi = 0; fi < spec.fragments.size(); ++fi) {
    const FragmentSpec& frag = spec.fragments[fi];
    const FragmentFootprint fp = footprint(frag.kind, spec.grid_dim, spec.block_dim);
    switch (frag.kind) {
      case FragmentKind::kGlobalAffine: emit_global_affine(ctx, s_off, g_off, out.oracle); break;
      case FragmentKind::kSharedXor: emit_shared_xor(ctx, frag, s_off, out.oracle); break;
      case FragmentKind::kReduceTree: emit_reduce_tree(ctx, s_off, out.oracle); break;
      case FragmentKind::kWarpReduce: emit_warp_reduce(ctx, s_off, out.oracle); break;
      case FragmentKind::kAtomicCounter: emit_atomic_counter(ctx, s_off, g_off, out.oracle); break;
      case FragmentKind::kLockedRmw: emit_locked_rmw(ctx, g_off, out.oracle); break;
      case FragmentKind::kFencePublish: emit_publish(ctx, s_off, g_off, true, out.oracle); break;
      case FragmentKind::kMissingFence: emit_publish(ctx, s_off, g_off, false, out.oracle); break;
      case FragmentKind::kDivergentHalves:
        emit_divergent_halves(ctx, s_off, g_off, out.oracle);
        break;
      case FragmentKind::kUniformIfBarrier: emit_uniform_if_barrier(ctx, s_off, out.oracle); break;
      case FragmentKind::kLoopNestAffine: emit_loop_nest_affine(ctx, frag, g_off, out.oracle); break;
      case FragmentKind::kBroadcastRead: emit_broadcast_read(ctx, s_off, out.oracle); break;
      case FragmentKind::kLaneMaskBarrier: emit_lane_mask_barrier(ctx, out.oracle); break;
      case FragmentKind::kSharedWaw: emit_shared_waw(ctx, s_off, out.oracle); break;
      case FragmentKind::kMissingBarrier: emit_missing_barrier(ctx, s_off, out.oracle); break;
      case FragmentKind::kCrossBlockWaw: emit_cross_block_waw(ctx, g_off, out.oracle); break;
      case FragmentKind::kRogueUnlocked: emit_rogue_unlocked(ctx, g_off, out.oracle); break;
      case FragmentKind::kLoopCarriedWaw: emit_loop_carried_waw(ctx, s_off, out.oracle); break;
      case FragmentKind::kWarpCollision: emit_warp_collision(ctx, s_off, out.oracle); break;
      case FragmentKind::kAtomicPlainMix: emit_atomic_plain_mix(ctx, g_off, out.oracle); break;
    }
    s_off += fp.shared_words;
    g_off = align_up(g_off + fp.arena_words, kArenaSlotStride);
    // Epoch hygiene: shared-RDU state never crosses a fragment boundary.
    if (fi + 1 < spec.fragments.size()) kb.barrier();

    const FragmentTraits& traits = fragment_traits(frag.kind);
    out.oracle.sw_expected = out.oracle.sw_expected || traits.sw_flags;
    out.oracle.grace_expected = out.oracle.grace_expected || traits.shared_store;
  }

  out.program = kb.build();
  out.shared_mem_bytes = std::max<u32>(s_off, 1) * 4;
  out.arena_words = std::max<u32>(g_off, 1);
  return out;
}

kernels::PreparedKernel prepare_generated(sim::Gpu& gpu, const GeneratedKernel& kernel) {
  kernels::PreparedKernel prep;
  prep.program = kernel.program;
  prep.grid_dim = kernel.grid_dim;
  prep.block_dim = kernel.block_dim;
  prep.shared_mem_bytes = kernel.shared_mem_bytes;
  const Addr arena = gpu.allocator().alloc(kernel.arena_words * 4, "fuzz.arena");
  prep.params[0] = arena;
  return prep;
}

}  // namespace haccrg::fuzz
