#include "fuzz/campaign.hpp"

#include <cstdio>
#include <memory>
#include <set>
#include <tuple>

#include "analysis/static_race.hpp"
#include "swrace/grace.hpp"
#include "swrace/sw_haccrg.hpp"
#include "trace/replay.hpp"

namespace haccrg::fuzz {

namespace {

/// Same geometry as test_hw_sw_differential: grids of <= 4 blocks land
/// one block per SM, so cross-block fragments are also cross-SM.
arch::GpuConfig fuzz_gpu() {
  arch::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.device_mem_bytes = 32 * 1024 * 1024;
  return cfg;
}

/// Word granularity in both spaces — the configuration whose envelope
/// the differential tests pin.
rd::HaccrgConfig detection_word(bool static_filter) {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  cfg.shared_granularity = 4;
  cfg.global_granularity = 4;
  cfg.static_filter = static_filter;
  return cfg;
}

/// (space, sm, granule) location identity, as in the differential suite
/// (shared granules are SM-local, so the SM id disambiguates them).
using LocationSet = std::set<std::tuple<int, u32, Addr>>;

LocationSet locations(const rd::RaceLog& log) {
  LocationSet out;
  for (const rd::RaceRecord& race : log.races()) {
    const u32 sm = race.space == rd::MemSpace::kShared ? race.sm_id : 0;
    out.insert({static_cast<int>(race.space), sm, race.granule_addr});
  }
  return out;
}

struct HwRun {
  bool completed = false;
  std::string error;
  rd::RaceLog races;
  StatSet stats;
  u64 cycles = 0;
};

HwRun run_hw(const GeneratedKernel& kernel, const rd::HaccrgConfig& det, u32 num_threads,
             u64 max_cycles, const std::string& trace_path, const fault::FaultPlan* faults,
             bool with_static_report) {
  sim::SimConfig sc;
  sc.num_threads = num_threads;
  sc.trace_path = trace_path;
  if (faults) sc.faults = *faults;
  sim::Gpu gpu(fuzz_gpu(), det, sc);
  gpu.set_max_cycles(max_cycles);
  gpu.set_trace_label("FUZZ");
  kernels::PreparedKernel prep = prepare_generated(gpu, kernel);
  if (with_static_report) {
    const analysis::AnalyzeOptions aopts =
        analysis::options_for(det, prep.block_dim, prep.grid_dim);
    prep.static_report = std::make_shared<analysis::StaticRaceReport>(
        analysis::analyze(prep.program, aopts));
  }
  sim::SimResult r = gpu.launch(prep.launch());
  HwRun run;
  run.completed = r.completed;
  run.error = r.error;
  run.races = r.races;
  run.stats = r.stats;
  run.cycles = r.cycles;
  return run;
}

struct SwRun {
  bool completed = false;
  bool fits = false;
  u64 races = 0;
  std::string error;
};

SwRun run_instrumented(const GeneratedKernel& kernel, u64 max_cycles, bool grace) {
  SwRun run;
  sim::SimConfig sc;
  sc.num_threads = 1;
  sim::Gpu gpu(fuzz_gpu(), rd::HaccrgConfig{}, sc);
  gpu.set_max_cycles(max_cycles);
  kernels::PreparedKernel prep = prepare_generated(gpu, kernel);
  run.fits = grace ? swrace::grace_fits(prep.program) : swrace::sw_haccrg_fits(prep.program);
  if (!run.fits) return run;
  swrace::InstrumentOptions opts;
  opts.static_prune = false;  // instrument everything: the envelope is exact
  if (grace)
    swrace::attach_grace(gpu, prep, opts);
  else
    swrace::attach_sw_haccrg(gpu, prep, opts);
  sim::SimResult r = gpu.launch(prep.launch());
  run.completed = r.completed;
  run.error = r.error;
  run.races = grace ? swrace::grace_race_count(gpu, prep) : swrace::sw_haccrg_race_count(gpu, prep);
  return run;
}

fault::FaultPlan armed_plan(u32 case_index) {
  fault::FaultPlan plan;
  const Status parsed = fault::FaultPlan::parse(
      "seed=" + std::to_string(1000 + case_index) +
          ",shared_flip=5000,global_flip=5000,racereg_drop=2000",
      plan);
  (void)parsed;  // the literal is well-formed by construction
  return plan;
}

}  // namespace

SpecPredicate violation_predicate(const CampaignConfig& config) {
  return [config](const KernelSpec& spec) { return !run_case(spec, config).ok(); };
}

SpecPredicate detects_class_predicate(OracleClass cls) {
  return [cls](const KernelSpec& spec) {
    const GeneratedKernel kernel = generate(spec);
    const HwRun run =
        run_hw(kernel, detection_word(false), 1, 20'000'000, "", nullptr, false);
    if (!run.completed) return false;
    for (const rd::RaceRecord& race : run.races.races()) {
      // Both epoch classes surface as kBarrier; the memory space is what
      // distinguishes a shared-epoch witness from a global-epoch one.
      if (cls == OracleClass::kSharedEpoch && race.space != rd::MemSpace::kShared) continue;
      if (cls == OracleClass::kGlobalEpoch && race.space != rd::MemSpace::kGlobal) continue;
      if (mechanism_matches(cls, race.mechanism)) return true;
    }
    return false;
  };
}

CaseResult run_case(const KernelSpec& spec, const CampaignConfig& config, u32 case_index) {
  CaseResult result;
  result.name = spec.name;

  const Status valid = spec.validate();
  if (!valid.ok()) {
    result.violations.push_back("invalid spec: " + valid.message());
    return result;
  }

  const GeneratedKernel kernel = generate(spec);
  for (const OraclePair& pair : kernel.oracle.pairs)
    ++result.class_pairs[static_cast<u32>(pair.cls)];

  auto fail = [&](const std::string& what) { result.violations.push_back(what); };

  // --- Hardware live, determinism sweep, trace recording --------------------
  const std::string trace_path =
      (config.check_replay && !config.scratch_dir.empty())
          ? config.scratch_dir + "/" + spec.name + ".trc"
          : "";
  const HwRun base =
      run_hw(kernel, detection_word(false), 1, config.max_cycles, trace_path, nullptr, false);
  if (!base.completed) {
    fail("hw run (1 thread) did not complete: " + base.error);
    return result;
  }
  result.hw_races = base.races.unique();
  result.cycles = base.cycles;
  const std::vector<std::string> base_lines = trace::race_set_lines(base.races);

  if (config.check_determinism) {
    for (u32 threads : {2u, 8u}) {
      const HwRun run =
          run_hw(kernel, detection_word(false), threads, config.max_cycles, "", nullptr, false);
      if (!run.completed) {
        fail("hw run (" + std::to_string(threads) + " threads) did not complete: " + run.error);
        continue;
      }
      if (trace::race_set_lines(run.races) != base_lines)
        fail("determinism: race set differs between 1 and " + std::to_string(threads) +
             " engine threads");
      if (run.cycles != base.cycles)
        fail("determinism: cycle count differs between 1 and " + std::to_string(threads) +
             " engine threads");
    }
  }

  // --- Oracle completeness + precision ---------------------------------------
  const std::vector<std::string> missed = kernel.oracle.check_hw_complete(base.races);
  for (const std::string& v : missed) fail(v);
  for (const std::string& v : kernel.oracle.check_hw_precise(base.races)) fail(v);
  if (!missed.empty()) {
    // Dump what the detector did report: the shrunk repro plus this list
    // is usually enough to localize an oracle/schedule disagreement.
    for (const std::string& line : base_lines) fail("  hw saw: " + line);
    if (base_lines.empty()) fail("  hw saw: (no races)");
  }

  // --- Static verifier: soundness + filter ablation --------------------------
  if (config.check_static) {
    const analysis::AnalyzeOptions aopts =
        analysis::options_for(detection_word(false), kernel.block_dim, kernel.grid_dim);
    const analysis::StaticRaceReport report = analysis::analyze(kernel.program, aopts);
    for (const OraclePair& pair : kernel.oracle.pairs) {
      if (pair.cls == OracleClass::kAtomicBlind) continue;  // atomics-as-sync, by design
      for (u32 pc : pair.pcs)
        if (report.is_safe(pc))
          fail("static soundness: oracle-racy pc " + std::to_string(pc) +
               " classified provably safe (" + pair.note + ")");
    }
    const HwRun filtered =
        run_hw(kernel, detection_word(true), 1, config.max_cycles, "", nullptr, true);
    if (!filtered.completed)
      fail("hw run (static filter) did not complete: " + filtered.error);
    else if (locations(filtered.races) != locations(base.races))
      fail("static filter ablation changed the racy location set");
  }

  // --- Trace replay: hw identity + software emulators ------------------------
  bool have_emulators = false;
  bool sw_emulator_verdict = false;
  bool grace_emulator_verdict = false;
  if (!trace_path.empty()) {
    trace::ReplayOptions ropts;
    ropts.hw = true;
    ropts.sw_haccrg = true;
    ropts.grace = true;
    const trace::ReplayResult replay = trace::replay_trace(trace_path, ropts);
    if (!replay.ok) {
      fail("trace replay failed: " + replay.error);
    } else if (replay.kernels.size() != 1) {
      fail("trace replay: expected 1 kernel, got " + std::to_string(replay.kernels.size()));
    } else {
      const trace::KernelReplay& rep = replay.kernels[0];
      if (trace::race_identity_set(rep.races) != trace::race_identity_set(base.races))
        fail("trace replay race set differs from the live run");
      have_emulators = true;
      sw_emulator_verdict = rep.sw_haccrg_races > 0;
      grace_emulator_verdict = rep.grace_races > 0;
    }
    std::remove(trace_path.c_str());
  }

  // --- Software detectors live ------------------------------------------------
  if (config.check_sw) {
    const SwRun sw = run_instrumented(kernel, config.max_cycles, /*grace=*/false);
    if (!sw.fits) {
      fail("sw-HAccRG instrumentation does not fit (packing budget bug)");
    } else if (!sw.completed) {
      fail("sw-HAccRG instrumented run did not complete: " + sw.error);
    } else {
      result.sw_races = sw.races;
      if ((sw.races > 0) != kernel.oracle.sw_expected)
        fail(std::string("sw-HAccRG envelope: expected ") +
             (kernel.oracle.sw_expected ? "races" : "silence") + ", counter = " +
             std::to_string(sw.races));
      if (have_emulators && sw_emulator_verdict != (sw.races > 0))
        fail("sw-HAccRG emulator verdict differs from the instrumented run");
    }
  }
  if (config.check_grace) {
    const SwRun grace = run_instrumented(kernel, config.max_cycles, /*grace=*/true);
    if (!grace.fits) {
      fail("GRace instrumentation does not fit (packing budget bug)");
    } else if (!grace.completed) {
      fail("GRace instrumented run did not complete: " + grace.error);
    } else {
      result.grace_races = grace.races;
      if ((grace.races > 0) != kernel.oracle.grace_expected)
        fail(std::string("GRace envelope: expected ") +
             (kernel.oracle.grace_expected ? "races" : "silence") + ", counter = " +
             std::to_string(grace.races));
      if (have_emulators && grace_emulator_verdict != (grace.races > 0))
        fail("GRace emulator verdict differs from the instrumented run");
    }
  }

  // --- Fault-injection feed (sampled) ----------------------------------------
  if (config.fault_every != 0 && case_index % config.fault_every == 0) {
    fault::FaultPlan zero;
    zero.seed = 7;  // armed seed, all rates zero: must be a no-op
    const HwRun quiet =
        run_hw(kernel, detection_word(false), 1, config.max_cycles, "", &zero, false);
    if (!quiet.completed)
      fail("zero-rate fault run did not complete: " + quiet.error);
    else if (trace::race_set_lines(quiet.races) != base_lines || quiet.cycles != base.cycles)
      fail("zero-rate fault plan perturbed the baseline");

    const fault::FaultPlan plan = armed_plan(case_index);
    const HwRun faulty =
        run_hw(kernel, detection_word(false), 1, config.max_cycles, "", &plan, false);
    if (!faulty.completed) {
      fail("armed fault run did not complete: " + faulty.error);
    } else {
      const u64 lost = faulty.stats.has("rd.coverage_lost") ? faulty.stats.get("rd.coverage_lost")
                                                            : 0;
      if (!kernel.oracle.check_hw_complete(faulty.races).empty() && lost == 0)
        fail("fault run missed an oracle race without reporting rd.coverage_lost");
      const u64 state_faults = faulty.stats.get("fault.shared_flip") +
                               faulty.stats.get("fault.global_flip") +
                               faulty.stats.get("fault.racereg_drop");
      if (lost < state_faults)
        fail("fault accounting: rd.coverage_lost below the state-site injection count");
    }
  }

  return result;
}

CampaignSummary run_campaign(u64 base_seed, u32 count, const FuzzConfig& fuzz_config,
                             const CampaignConfig& config, u32 progress_every) {
  CampaignSummary summary;
  for (u32 i = 0; i < count; ++i) {
    const KernelSpec spec = spec_from_seed(base_seed + i, fuzz_config);
    const CaseResult result = run_case(spec, config, i);
    ++summary.cases;
    for (u32 c = 0; c < kNumOracleClasses; ++c) summary.class_pairs[c] += result.class_pairs[c];
    if (!result.ok()) {
      ++summary.failures;
      FailedCase failed;
      failed.spec = spec;
      failed.violations = result.violations;
      failed.shrunk = shrink(spec, violation_predicate(config)).spec;
      summary.failed.push_back(std::move(failed));
    }
    if (progress_every != 0 && (i + 1) % progress_every == 0)
      std::fprintf(stderr, "fuzz: %u/%u kernels, %u failing\n", i + 1, count, summary.failures);
  }
  return summary;
}

}  // namespace haccrg::fuzz
