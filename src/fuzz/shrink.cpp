#include "fuzz/shrink.hpp"

namespace haccrg::fuzz {

namespace {

bool accept(const KernelSpec& candidate, const SpecPredicate& pred, ShrinkResult& state) {
  if (!candidate.validate().ok()) return false;
  ++state.evaluations;
  if (!pred(candidate)) return false;
  state.spec = candidate;
  ++state.steps;
  return true;
}

}  // namespace

ShrinkResult shrink(const KernelSpec& start, const SpecPredicate& still_interesting) {
  ShrinkResult state;
  state.spec = start;

  bool progress = true;
  while (progress) {
    progress = false;

    // Pass 1: drop one fragment at a time.
    for (size_t i = 0; i < state.spec.fragments.size() && state.spec.fragments.size() > 1;) {
      KernelSpec candidate = state.spec;
      candidate.fragments.erase(candidate.fragments.begin() + static_cast<long>(i));
      if (accept(candidate, still_interesting, state)) {
        progress = true;  // same index now names the next fragment
      } else {
        ++i;
      }
    }

    // Pass 2: zero the tuning args (simplify-expression).
    for (size_t i = 0; i < state.spec.fragments.size(); ++i) {
      for (int a = 0; a < 2; ++a) {
        if (state.spec.fragments[i].arg[a] == 0) continue;
        KernelSpec candidate = state.spec;
        candidate.fragments[i].arg[a] = 0;
        if (accept(candidate, still_interesting, state)) progress = true;
      }
    }

    // Pass 3: shrink the geometry.
    if (state.spec.grid_dim > 2) {
      KernelSpec candidate = state.spec;
      candidate.grid_dim = 2;
      if (accept(candidate, still_interesting, state)) progress = true;
    }
    if (state.spec.block_dim > 64) {
      KernelSpec candidate = state.spec;
      candidate.block_dim = 64;
      if (accept(candidate, still_interesting, state)) progress = true;
    }
  }
  return state;
}

}  // namespace haccrg::fuzz
