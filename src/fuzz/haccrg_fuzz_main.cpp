// haccrg-fuzz: front door of the seeded kernel fuzzer.
//
//   generate  expand seeds into kernel specs (print or save them)
//   run       full campaign: every generated kernel through every
//             detector, violations auto-shrunk to minimal specs
//   shrink    minimize one failing (or class-detecting) spec file
//   corpus    replay checked-in spec repros as ordinary test cases
//
// Exit codes: 0 clean; 1 at least one campaign violation; 2 usage
// error; 3 I/O or internal failure. Append-only — scripts branch on it.
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/spec.hpp"
#include "swrace/grace.hpp"

namespace {

using namespace haccrg;

int usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "haccrg-fuzz: %s\n\n", error);
  std::fprintf(
      stderr, "%s",
      "usage: haccrg-fuzz <command> [args]\n"
      "\n"
      "commands:\n"
      "  generate --seed N [--count N] [--out DIR]\n"
      "      Expand seeds N..N+count-1 into kernel specs. Prints each\n"
      "      spec (with its oracle summary) or writes DIR/<name>.spec.\n"
      "  run --seed N [--count N] [--scratch DIR] [--progress N]\n"
      "      Campaign: every generated kernel through the hardware RDUs\n"
      "      (1/2/8 engine threads), trace replay, both software\n"
      "      detectors, the static verifier, and sampled fault plans,\n"
      "      asserting the ground-truth oracle each way. Failures are\n"
      "      auto-shrunk; --save-failures DIR writes the minimal specs.\n"
      "  shrink --spec FILE [--out FILE]\n"
      "      Minimize FILE while it still produces a campaign violation\n"
      "      (or, with --class NAME, still detects that race class).\n"
      "  corpus --dir DIR [--scratch DIR]\n"
      "      Run every .spec file in DIR as a full campaign case.\n"
      "  disasm --spec FILE [--grace]\n"
      "      Print the generated program's disassembly and oracle pairs.\n"
      "\n"
      "options:\n"
      "  --seed N             base seed (default 1)\n"
      "  --count N            kernels to generate/run (default 200 for run)\n"
      "  --scratch DIR        trace scratch dir (default /tmp, per-pid)\n"
      "  --save-failures DIR  write shrunk failing specs into DIR\n"
      "  --class NAME         shrink target: a race class, not a violation\n"
      "                       (shared-epoch, global-epoch, fence, lockset,\n"
      "                       intra-warp-waw)\n"
      "  --fault-every N      fault-feed every Nth case (default 8, 0=off)\n"
      "  --max-cycles N       per-run watchdog (default 20000000)\n"
      "  --no-determinism / --no-replay / --no-sw / --no-grace /\n"
      "  --no-static          skip one check family\n"
      "  --racy-only / --safe-only   restrict the fragment library\n"
      "  --progress N         heartbeat line every N kernels\n");
  return 2;
}

bool parse_u32(const std::string& s, u32& out) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) return false;
  out = static_cast<u32>(std::stoul(s));
  return true;
}

bool parse_u64(const std::string& s, u64& out) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) return false;
  out = std::stoull(s);
  return true;
}

struct Cli {
  std::string command;
  u64 seed = 1;
  u32 count = 0;  // 0 = command default
  std::string out;
  std::string scratch;
  std::string spec_path;
  std::string dir;
  std::string save_failures;
  std::string shrink_class;
  u32 progress = 0;
  bool disasm_grace = false;
  fuzz::FuzzConfig fuzz_config;
  fuzz::CampaignConfig campaign;
};

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return out.good();
}

/// Scratch directory for trace files; empty string on failure.
std::string make_scratch(const Cli& cli) {
  if (!cli.scratch.empty()) return cli.scratch;
  const std::string dir =
      "/tmp/haccrg-fuzz-" + std::to_string(static_cast<unsigned>(getpid()));
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) return "";
  return dir;
}

void print_violations(const std::string& name, const std::vector<std::string>& violations) {
  std::printf("FAIL %s\n", name.c_str());
  for (const std::string& v : violations) std::printf("  %s\n", v.c_str());
}

void print_summary(const fuzz::CampaignSummary& summary) {
  std::printf("fuzz: %u kernels, %u failing\n", summary.cases, summary.failures);
  std::printf("oracle pairs by class:");
  for (u32 c = 0; c < fuzz::kNumOracleClasses; ++c)
    std::printf(" %s=%llu", std::string(fuzz::oracle_class_name(static_cast<fuzz::OracleClass>(c))).c_str(),
                static_cast<unsigned long long>(summary.class_pairs[c]));
  std::printf("\n");
}

int cmd_generate(const Cli& cli) {
  const u32 count = cli.count == 0 ? 1 : cli.count;
  for (u32 i = 0; i < count; ++i) {
    const fuzz::KernelSpec spec = fuzz::spec_from_seed(cli.seed + i, cli.fuzz_config);
    const fuzz::GeneratedKernel kernel = fuzz::generate(spec);
    if (!cli.out.empty()) {
      const std::string path = cli.out + "/" + spec.name + ".spec";
      if (!write_file(path, spec.serialize())) {
        std::fprintf(stderr, "haccrg-fuzz: cannot write %s\n", path.c_str());
        return 3;
      }
      std::printf("%s: %zu fragments, %zu oracle pairs -> %s\n", spec.name.c_str(),
                  spec.fragments.size(), kernel.oracle.pairs.size(), path.c_str());
    } else {
      std::printf("%s", spec.serialize().c_str());
      for (const fuzz::OraclePair& pair : kernel.oracle.pairs) {
        std::printf("# oracle %s %s pcs", std::string(fuzz::oracle_class_name(pair.cls)).c_str(),
                    pair.space == rd::MemSpace::kShared ? "shared" : "global");
        for (u32 pc : pair.pcs) std::printf(" %u", pc);
        std::printf(" (%s)\n", pair.note.c_str());
      }
    }
  }
  return 0;
}

int cmd_run(const Cli& cli) {
  Cli local = cli;
  local.campaign.scratch_dir = local.campaign.check_replay ? make_scratch(cli) : "";
  if (local.campaign.check_replay && local.campaign.scratch_dir.empty()) {
    std::fprintf(stderr, "haccrg-fuzz: cannot create scratch directory\n");
    return 3;
  }
  const u32 count = cli.count == 0 ? 200 : cli.count;
  const fuzz::CampaignSummary summary =
      fuzz::run_campaign(cli.seed, count, cli.fuzz_config, local.campaign, cli.progress);
  for (const fuzz::FailedCase& failed : summary.failed) {
    print_violations(failed.spec.name, failed.violations);
    std::printf("  shrunk repro:\n%s", failed.shrunk.serialize().c_str());
    if (!cli.save_failures.empty()) {
      const std::string path = cli.save_failures + "/" + failed.spec.name + ".spec";
      if (!write_file(path, failed.shrunk.serialize()))
        std::fprintf(stderr, "haccrg-fuzz: cannot write %s\n", path.c_str());
      else
        std::printf("  saved: %s\n", path.c_str());
    }
  }
  print_summary(summary);
  return summary.ok() ? 0 : 1;
}

int cmd_shrink(const Cli& cli) {
  std::string text;
  if (!read_file(cli.spec_path, text)) {
    std::fprintf(stderr, "haccrg-fuzz: cannot read %s\n", cli.spec_path.c_str());
    return 3;
  }
  fuzz::KernelSpec spec;
  const Status parsed = fuzz::KernelSpec::parse(text, spec);
  if (!parsed.ok()) {
    std::fprintf(stderr, "haccrg-fuzz: %s: %s\n", cli.spec_path.c_str(),
                 parsed.to_string().c_str());
    return 3;
  }

  fuzz::SpecPredicate pred;
  if (!cli.shrink_class.empty()) {
    bool found = false;
    for (u32 c = 0; c < fuzz::kNumOracleClasses; ++c) {
      const auto cls = static_cast<fuzz::OracleClass>(c);
      if (fuzz::oracle_class_name(cls) == cli.shrink_class) {
        pred = fuzz::detects_class_predicate(cls);
        found = true;
        break;
      }
    }
    if (!found) return usage(("unknown race class '" + cli.shrink_class + "'").c_str());
  } else {
    Cli local = cli;
    local.campaign.scratch_dir = local.campaign.check_replay ? make_scratch(cli) : "";
    pred = fuzz::violation_predicate(local.campaign);
  }

  if (!pred(spec)) {
    std::fprintf(stderr, "haccrg-fuzz: %s does not exhibit the target property\n",
                 cli.spec_path.c_str());
    return 1;
  }
  const fuzz::ShrinkResult result = fuzz::shrink(spec, pred);
  std::fprintf(stderr, "shrink: %u steps, %u evaluations\n", result.steps, result.evaluations);
  if (!cli.out.empty()) {
    if (!write_file(cli.out, result.spec.serialize())) {
      std::fprintf(stderr, "haccrg-fuzz: cannot write %s\n", cli.out.c_str());
      return 3;
    }
  } else {
    std::printf("%s", result.spec.serialize().c_str());
  }
  return 0;
}

int cmd_disasm(const Cli& cli) {
  std::string text;
  if (!read_file(cli.spec_path, text)) {
    std::fprintf(stderr, "haccrg-fuzz: cannot read %s\n", cli.spec_path.c_str());
    return 3;
  }
  fuzz::KernelSpec spec;
  const Status parsed = fuzz::KernelSpec::parse(text, spec);
  if (!parsed.ok()) {
    std::fprintf(stderr, "haccrg-fuzz: %s: %s\n", cli.spec_path.c_str(),
                 parsed.to_string().c_str());
    return 3;
  }
  fuzz::GeneratedKernel kernel = fuzz::generate(spec);
  if (cli.disasm_grace) {
    // Show what the detectors actually execute, not what the generator
    // emitted — instrumented control flow is where rewriter bugs live.
    kernel.program = swrace::instrument_grace(kernel.program, {}, nullptr);
  }
  std::printf("%s", kernel.program.disassemble().c_str());
  for (const fuzz::OraclePair& pair : kernel.oracle.pairs) {
    std::printf("# oracle %s %s pcs", std::string(fuzz::oracle_class_name(pair.cls)).c_str(),
                pair.space == rd::MemSpace::kShared ? "shared" : "global");
    for (u32 pc : pair.pcs) std::printf(" %u", pc);
    std::printf(" (%s)\n", pair.note.c_str());
  }
  return 0;
}

int cmd_corpus(const Cli& cli) {
  DIR* dir = opendir(cli.dir.c_str());
  if (dir == nullptr) {
    std::fprintf(stderr, "haccrg-fuzz: cannot open %s\n", cli.dir.c_str());
    return 3;
  }
  std::vector<std::string> files;
  while (dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() > 5 && name.substr(name.size() - 5) == ".spec")
      files.push_back(cli.dir + "/" + name);
  }
  closedir(dir);
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "haccrg-fuzz: no .spec files in %s\n", cli.dir.c_str());
    return 3;
  }

  Cli local = cli;
  local.campaign.scratch_dir = local.campaign.check_replay ? make_scratch(cli) : "";
  u32 failures = 0;
  u32 index = 0;
  for (const std::string& path : files) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "haccrg-fuzz: cannot read %s\n", path.c_str());
      return 3;
    }
    fuzz::KernelSpec spec;
    const Status parsed = fuzz::KernelSpec::parse(text, spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "haccrg-fuzz: %s: %s\n", path.c_str(), parsed.to_string().c_str());
      return 3;
    }
    const fuzz::CaseResult result = fuzz::run_case(spec, local.campaign, index++);
    if (result.ok()) {
      std::printf("ok %s (%llu hw races)\n", path.c_str(),
                  static_cast<unsigned long long>(result.hw_races));
    } else {
      print_violations(path, result.violations);
      ++failures;
    }
  }
  std::printf("corpus: %zu repros, %u failing\n", files.size(), failures);
  return failures > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Cli cli;
  cli.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag, std::string& out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "haccrg-fuzz: %s needs a value\n", flag);
        return false;
      }
      out = argv[++i];
      return true;
    };
    auto bad = [](const char* flag) {
      std::fprintf(stderr, "haccrg-fuzz: bad value for %s\n", flag);
      return 2;
    };
    std::string v;
    if (arg == "--seed") {
      if (!value("--seed", v)) return 2;
      if (!parse_u64(v, cli.seed)) return bad("--seed");
    } else if (arg == "--count") {
      if (!value("--count", v)) return 2;
      if (!parse_u32(v, cli.count) || cli.count == 0) return bad("--count");
    } else if (arg == "--out") {
      if (!value("--out", cli.out)) return 2;
    } else if (arg == "--scratch") {
      if (!value("--scratch", cli.scratch)) return 2;
    } else if (arg == "--spec") {
      if (!value("--spec", cli.spec_path)) return 2;
    } else if (arg == "--dir") {
      if (!value("--dir", cli.dir)) return 2;
    } else if (arg == "--save-failures") {
      if (!value("--save-failures", cli.save_failures)) return 2;
    } else if (arg == "--class") {
      if (!value("--class", cli.shrink_class)) return 2;
    } else if (arg == "--fault-every") {
      if (!value("--fault-every", v)) return 2;
      if (!parse_u32(v, cli.campaign.fault_every)) return bad("--fault-every");
    } else if (arg == "--progress") {
      if (!value("--progress", v)) return 2;
      if (!parse_u32(v, cli.progress)) return bad("--progress");
    } else if (arg == "--max-cycles") {
      if (!value("--max-cycles", v)) return 2;
      if (!parse_u64(v, cli.campaign.max_cycles)) return bad("--max-cycles");
    } else if (arg == "--no-determinism") {
      cli.campaign.check_determinism = false;
    } else if (arg == "--no-replay") {
      cli.campaign.check_replay = false;
    } else if (arg == "--no-sw") {
      cli.campaign.check_sw = false;
    } else if (arg == "--no-grace") {
      cli.campaign.check_grace = false;
    } else if (arg == "--no-static") {
      cli.campaign.check_static = false;
    } else if (arg == "--grace") {
      cli.disasm_grace = true;
    } else if (arg == "--racy-only") {
      cli.fuzz_config.safe_fragments = false;
    } else if (arg == "--safe-only") {
      cli.fuzz_config.racy_fragments = false;
    } else {
      return usage(("unknown option '" + arg + "'").c_str());
    }
  }

  if (cli.command == "generate") return cmd_generate(cli);
  if (cli.command == "run") return cmd_run(cli);
  if (cli.command == "shrink") {
    if (cli.spec_path.empty()) return usage("shrink needs --spec");
    return cmd_shrink(cli);
  }
  if (cli.command == "disasm") {
    if (cli.spec_path.empty()) return usage("disasm needs --spec");
    return cmd_disasm(cli);
  }
  if (cli.command == "corpus") {
    if (cli.dir.empty()) return usage("corpus needs --dir");
    return cmd_corpus(cli);
  }
  return usage(("unknown command '" + cli.command + "'").c_str());
}
