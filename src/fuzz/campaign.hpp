// Campaign runner: one generated kernel through every detector in the
// repo, asserting the oracle both ways. Per case it runs
//  - hardware HAccRG live at HACCRG_THREADS 1/2/8 (byte-identical race
//    sets required), the first run recording an access trace,
//  - the static filter ablation (filter on must preserve the unfiltered
//    racy location set),
//  - trace replay through the hardware RDUs and both software emulators
//    (replay race identities must equal the live run's),
//  - sw-HAccRG and GRace-add live instrumentation (boolean verdicts
//    must match both the oracle envelope and their trace emulators),
//  - the static verifier (no oracle-racy pc may be provably safe),
//  - on sampled cases, the PR-5 fault layer: a zero-rate plan must be
//    byte-identical to baseline, and an armed plan may only miss oracle
//    races while reporting rd.coverage_lost.
// Any deviation is a violation string; zero strings means the case
// passed every check.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/spec.hpp"

namespace haccrg::fuzz {

struct CampaignConfig {
  /// Directory for scratch traces. Empty disables the replay checks
  /// (the only checks that need a filesystem).
  std::string scratch_dir;
  bool check_determinism = true;
  bool check_replay = true;
  bool check_sw = true;
  bool check_grace = true;
  bool check_static = true;
  /// Feed every Nth case through the fault-injection layer (0 = never).
  u32 fault_every = 8;
  /// Watchdog for generated kernels; generously above any legal kernel,
  /// far below the engine's 2e9-cycle default.
  u64 max_cycles = 20'000'000;
};

struct CaseResult {
  std::string name;
  std::vector<std::string> violations;
  u64 hw_races = 0;
  u64 sw_races = 0;
  u64 grace_races = 0;
  u64 cycles = 0;
  /// Oracle pairs contributed per OracleClass (coverage accounting).
  std::array<u32, kNumOracleClasses> class_pairs{};
  bool ok() const { return violations.empty(); }
};

/// Run every check on one spec. `case_index` drives fault sampling and
/// the fault plan seed.
CaseResult run_case(const KernelSpec& spec, const CampaignConfig& config, u32 case_index = 0);

struct FailedCase {
  KernelSpec spec;
  KernelSpec shrunk;
  std::vector<std::string> violations;
};

struct CampaignSummary {
  u32 cases = 0;
  u32 failures = 0;
  std::array<u64, kNumOracleClasses> class_pairs{};
  std::vector<FailedCase> failed;
  bool ok() const { return failures == 0; }
};

/// Seeded campaign: `count` specs from `base_seed`, each through
/// run_case; failures are auto-shrunk against "still violates" before
/// being reported. `progress_every` > 0 prints a one-line heartbeat.
CampaignSummary run_campaign(u64 base_seed, u32 count, const FuzzConfig& fuzz_config,
                             const CampaignConfig& config, u32 progress_every = 0);

/// Shrink predicate used for failure minimization: the candidate still
/// produces at least one violation under `config`.
SpecPredicate violation_predicate(const CampaignConfig& config);

/// Shrink predicate for corpus construction: the hardware detector
/// still reports at least one race of `cls` on a live run.
SpecPredicate detects_class_predicate(OracleClass cls);

}  // namespace haccrg::fuzz
