// Ground-truth race oracle for generated kernels. The generator knows,
// by construction, exactly which program counters can conflict and
// through which HAccRG mechanism, so each emitted fragment contributes
// OraclePairs: the pc set involved, the memory space, the expected race
// class, and whether the hardware RDUs can see it at all (atomics are
// treated as synchronization by every detector in the repo — a
// documented blind spot the oracle records rather than hides). The
// campaign asserts both directions against a run's RaceLog:
// completeness (every hw-visible pair produces a matching record) and
// precision (no record lands outside the oracle's racy pc set).
#pragma once

#include <string>
#include <vector>

#include "haccrg/race.hpp"

namespace haccrg::fuzz {

/// Expected race class of an oracle pair, mapped onto the detector
/// mechanisms that may legally report it.
enum class OracleClass : u8 {
  kSharedEpoch = 0,  ///< same-epoch shared conflict (RaceMechanism::kBarrier)
  kGlobalEpoch,      ///< cross-block global conflict (kBarrier)
  kFence,            ///< unfenced cross-block publish (kFence or kL1Stale)
  kLockset,          ///< lock-protection violation (kLockset)
  kIntraWarpWaw,     ///< same-instruction lane collision (kIntraWarpWaw)
  kAtomicBlind,      ///< real race through atomics: invisible to all detectors
};

inline constexpr u32 kNumOracleClasses = 6;

std::string_view oracle_class_name(OracleClass cls);

/// One by-construction conflicting access pair (or clique: locksets and
/// rogue stores involve up to three pcs).
struct OraclePair {
  OracleClass cls = OracleClass::kSharedEpoch;
  rd::MemSpace space = rd::MemSpace::kShared;
  std::vector<u32> pcs;     ///< every pc a matching record may carry
  bool hw_visible = true;   ///< false only for kAtomicBlind
  std::string note;         ///< fragment provenance for failure messages
};

/// Does `mechanism` legally witness `cls`?
bool mechanism_matches(OracleClass cls, rd::RaceMechanism mechanism);

struct RaceOracle {
  std::vector<OraclePair> pairs;
  /// The sw-HAccRG per-thread tag scheme reports >= 1 race (true for
  /// every sw-visible racy fragment and for the pinned over-report
  /// patterns from test_hw_sw_differential).
  bool sw_expected = false;
  /// >= 1 plain shared store executes, so the GRace-add emulator's
  /// own-bit artifact reports >= 1 race.
  bool grace_expected = false;

  bool any_hw_visible() const;

  /// Union of pcs over hw-visible pairs — the only pcs a hardware race
  /// record may carry.
  std::vector<u32> hw_racy_pcs() const;

  /// Union of pcs over all pairs (static soundness: none of these may
  /// be classified provably safe, except the kAtomicBlind pcs, which
  /// the static verifier excludes by the same atomics-as-sync rule).
  std::vector<u32> racy_pcs() const;

  /// Completeness: every hw-visible pair has >= 1 record in `log` with
  /// matching space, a legal mechanism, and a pc from the pair. Returns
  /// violation messages (empty == pass).
  std::vector<std::string> check_hw_complete(const rd::RaceLog& log) const;

  /// Precision: every record in `log` is explained by some hw-visible
  /// pair (pc + space + mechanism). Returns violation messages.
  std::vector<std::string> check_hw_precise(const rd::RaceLog& log) const;
};

}  // namespace haccrg::fuzz
