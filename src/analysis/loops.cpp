#include "analysis/loops.hpp"

#include <algorithm>
#include <array>

namespace haccrg::analysis {

using isa::CmpOp;
using isa::Instr;
using isa::Opcode;

bool LoopNest::writes_reg(const Instr& ins) {
  switch (ins.op) {
    case Opcode::kSetp:       // writes a predicate, not a register
    case Opcode::kStGlobal:
    case Opcode::kStShared:
    case Opcode::kBar:
    case Opcode::kMemBar:
    case Opcode::kMemBarBlock:
    case Opcode::kLockAcqMark:
    case Opcode::kLockRelMark:
    case Opcode::kIf:
    case Opcode::kElse:
    case Opcode::kEndIf:
    case Opcode::kLoopBegin:
    case Opcode::kLoopEnd:
    case Opcode::kBreakIf:
    case Opcode::kBreakIfNot:
    case Opcode::kJump:
    case Opcode::kExit:
    case Opcode::kNop:
      return false;
    default:
      return true;  // ALU, moves, special/param reads, sel, loads, atomics
  }
}

LoopNest::LoopNest(const isa::Program& program) {
  const u32 n = program.size();
  innermost_.assign(n, -1);

  // Pass 1: match begin/end pairs and nesting off a scope stack.
  std::vector<u32> stack;  // loop indices
  for (u32 pc = 0; pc < n; ++pc) {
    const Instr& ins = program.at(pc);
    if (ins.op == Opcode::kLoopBegin) {
      Loop l;
      l.begin_pc = pc;
      l.parent = stack.empty() ? -1 : static_cast<int>(stack.back());
      l.depth = static_cast<u32>(stack.size());
      stack.push_back(static_cast<u32>(loops_.size()));
      loops_.push_back(l);
    } else if (ins.op == Opcode::kLoopEnd && !stack.empty()) {
      loops_[stack.back()].end_pc = pc;
      stack.pop_back();
    }
    if (!stack.empty()) innermost_[pc] = static_cast<int>(stack.back());
  }

  for (Loop& l : loops_) {
    if (l.end_pc <= l.begin_pc) continue;  // malformed; leave empty facts

    // Written registers (whole body, nested loops included) and IV
    // candidates. An IV must be updated by exactly one instruction in
    // the body, a top-level `add/sub r, r, #imm` — top-level meaning not
    // inside a nested loop or a kIf scope of this loop, so the step is
    // applied unconditionally once per iteration.
    struct Cand {
      u32 writes = 0;
      bool top_level_step = false;
      i64 step = 0;
      u32 add_pc = 0;
    };
    std::array<Cand, isa::kMaxRegs> cands{};
    u32 inner_depth = 0;  // nested loop / if depth relative to this loop
    for (u32 pc = l.begin_pc + 1; pc < l.end_pc; ++pc) {
      const Instr& ins = program.at(pc);
      switch (ins.op) {
        case Opcode::kLoopBegin:
        case Opcode::kIf:
          ++inner_depth;
          break;
        case Opcode::kLoopEnd:
        case Opcode::kEndIf:
          if (inner_depth > 0) --inner_depth;
          break;
        default:
          break;
      }
      if (!writes_reg(ins)) continue;
      if (std::find(l.written.begin(), l.written.end(), ins.dst) == l.written.end())
        l.written.push_back(ins.dst);
      Cand& c = cands[ins.dst];
      ++c.writes;
      const bool is_step = (ins.op == Opcode::kAdd || ins.op == Opcode::kSub) &&
                           ins.src1_is_imm && ins.src0 == ins.dst;
      if (is_step && inner_depth == 0) {
        c.top_level_step = true;
        c.step = ins.op == Opcode::kAdd ? static_cast<i64>(static_cast<i32>(ins.imm))
                                        : -static_cast<i64>(static_cast<i32>(ins.imm));
        c.add_pc = pc;
      }
    }
    std::sort(l.written.begin(), l.written.end());
    for (u32 r = 0; r < isa::kMaxRegs; ++r) {
      const Cand& c = cands[r];
      if (c.writes == 1 && c.top_level_step)
        l.ivs.push_back({static_cast<u8>(r), c.step, c.add_pc});
    }

    // Header guard (for_range shape): `setp p, ltu, iv, bound` right
    // after kLoopBegin, then `breakifnot p`.
    if (l.begin_pc + 2 < l.end_pc) {
      const Instr& setp = program.at(l.begin_pc + 1);
      const Instr& brk = program.at(l.begin_pc + 2);
      if (setp.op == Opcode::kSetp && setp.cmp() == CmpOp::kLtU &&
          brk.op == Opcode::kBreakIfNot && brk.aux == setp.dst &&
          l.iv_of(setp.src0) != nullptr) {
        l.has_guard = true;
        l.guard_iv = setp.src0;
        l.guard_bound_is_imm = setp.src1_is_imm;
        l.guard_bound_imm = setp.imm;
        l.guard_bound_reg = setp.src1;
      }
    }
  }
}

}  // namespace haccrg::analysis
