// Symbolic affine value analysis over the mini-PTX registers. Each
// register is tracked as
//
//     value = base + c_tid*tid + c_cta*ctaid + c_gtid*gtid [+ param[slot]] [+ U]
//
// where U is an unknown but grid-invariant term (parameters, block/grid
// dimensions, loop-carried uniform state). The analysis is a forward
// fixpoint over the Cfg; the racing-pair test in static_race.cpp compares
// two accesses' affine forms to prove address disjointness across
// threads (e.g. out[tid] / out[gtid] patterns).
//
// Predicate registers carry two facts used for divergence and
// single-thread reasoning: `uniform` (every thread of a block computes
// the same value) and `unique_thread` (at most one thread per block can
// hold the predicate true, e.g. `tid == 0`).
#pragma once

#include <array>
#include <vector>

#include "analysis/cfg.hpp"
#include "isa/program.hpp"

namespace haccrg::analysis {

struct AffineVal {
  bool top = false;             ///< unknown, possibly thread-varying
  bool uniform_unknown = false; ///< adds an unknown grid-invariant term
  i64 base = 0;
  i64 c_tid = 0;
  i64 c_cta = 0;
  i64 c_gtid = 0;
  int param_slot = -1;          ///< symbolic kernel-parameter base, or -1

  static AffineVal constant(i64 v) {
    AffineVal a;
    a.base = v;
    return a;
  }
  static AffineVal make_top() {
    AffineVal a;
    a.top = true;
    return a;
  }
  static AffineVal uniform() {
    AffineVal a;
    a.uniform_unknown = true;
    return a;
  }

  bool is_const() const {
    return !top && !uniform_unknown && c_tid == 0 && c_cta == 0 && c_gtid == 0 &&
           param_slot < 0;
  }
  /// Same value for every thread of the grid (parameters and launch
  /// dimensions included).
  bool grid_invariant() const { return !top && c_tid == 0 && c_cta == 0 && c_gtid == 0; }
  /// Thread-varying coefficient within one thread-block (ctaid and the
  /// block-uniform part of gtid drop out).
  i64 block_coeff() const { return c_tid + c_gtid; }

  bool operator==(const AffineVal& o) const {
    if (top != o.top) return false;
    if (top) return true;
    return uniform_unknown == o.uniform_unknown && base == o.base && c_tid == o.c_tid &&
           c_cta == o.c_cta && c_gtid == o.c_gtid && param_slot == o.param_slot;
  }
  bool operator!=(const AffineVal& o) const { return !(*this == o); }

  AffineVal operator+(const AffineVal& o) const;
  AffineVal operator-(const AffineVal& o) const;
  AffineVal scaled(i64 k) const;

  /// Lattice join at control-flow merges.
  static AffineVal join(const AffineVal& a, const AffineVal& b);
};

struct PredFact {
  bool uniform = true;        ///< same truth value across the block's threads
  bool unique_thread = false; ///< at most one thread per block holds it true

  bool operator==(const PredFact& o) const {
    return uniform == o.uniform && unique_thread == o.unique_thread;
  }
  static PredFact join(const PredFact& a, const PredFact& b) {
    return {a.uniform && b.uniform, a.unique_thread && b.unique_thread};
  }
};

struct AffineState {
  std::array<AffineVal, isa::kMaxRegs> regs{};   // registers start at 0
  std::array<PredFact, isa::kMaxPreds> preds{};  // predicates start false

  AffineState() {
    for (auto& p : preds) p = {true, true};  // all-false: uniform, vacuously unique
  }
  bool operator==(const AffineState& o) const { return regs == o.regs && preds == o.preds; }

  static AffineState join(const AffineState& a, const AffineState& b);
};

class AffineAnalysis {
 public:
  AffineAnalysis(const isa::Program& program, const Cfg& cfg);

  /// Abstract value of the address computed by the memory instruction at
  /// `pc` (reg[src0] + imm). Only valid for memory/atomic opcodes.
  const AffineVal& address_of(u32 pc) const { return addresses_[pc]; }

  /// Predicate fact in effect when pc executes (the state just before
  /// the instruction).
  PredFact pred_at(u32 pc, u32 pred_idx) const;

  /// The fixpoint state at block entry (exposed for tests).
  const AffineState& entry_state(u32 block) const { return entry_[block]; }

  /// The fixpoint state just before `pc` executes. Used by the
  /// loop-aware symbolic walk as the sound widening value for registers
  /// a loop mutates in ways it cannot track.
  const AffineState& state_at(u32 pc) const { return at_[pc]; }

  /// One instruction's transfer function (exposed for tests).
  static void transfer(const isa::Instr& ins, AffineState& state);

 private:
  const isa::Program* program_;
  const Cfg* cfg_;
  std::vector<AffineState> entry_;
  std::vector<AffineVal> addresses_;    // per pc; meaningful for memory ops
  std::vector<AffineState> at_;         // state before each pc
};

}  // namespace haccrg::analysis
