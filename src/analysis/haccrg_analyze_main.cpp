// haccrg-analyze: the static race verifier's front door. Runs the
// loop-aware analysis over registry kernels, renders reports (text,
// annotated disassembly, stable JSON), applies suppression files, diffs
// static verdicts against a dynamic detection run, and drives the
// static-soundness gate CI relies on.
//
// Exit codes: 0 clean; 1 findings remain after suppressions, a static/
// dynamic soundness violation, or a witness that fails to reproduce;
// 2 usage error; 3 I/O failure; 4 malformed suppression file; 5 unknown
// kernel name. The code space is append-only — scripts branch on it.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/static_race.hpp"
#include "kernels/common.hpp"
#include "kernels/injection.hpp"
#include "sim/gpu.hpp"
#include "trace/witness_check.hpp"

namespace {

using namespace haccrg;

int usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "haccrg-analyze: %s\n\n", error);
  std::fprintf(
      stderr, "%s",
      "usage: haccrg-analyze <command> [args]\n"
      "\n"
      "commands:\n"
      "  analyze [--kernel NAME] [--json] [--suppressions FILE] [options]\n"
      "      Verify a registry kernel (all kernels when --kernel is\n"
      "      omitted). Exits 1 when unsuppressed findings remain.\n"
      "  annotate --kernel NAME [options]\n"
      "      Print the kernel's disassembly annotated with per-access\n"
      "      verdicts and witnesses.\n"
      "  diff --kernel NAME [options]\n"
      "      Compare static verdicts against a dynamic detection run.\n"
      "      Exits 1 if a dynamic race fires at a provably-safe pc.\n"
      "  soundness [--seeds N] [options]\n"
      "      The full gate: every registry kernel plus all 41 injection\n"
      "      cases, N workload seeds each. Asserts (a) no provably-safe\n"
      "      access appears in any dynamic race set and (b) every\n"
      "      hardware-visible witness reproduces under trace replay.\n"
      "\n"
      "options:\n"
      "  --word | --hw        granularity preset: software word (4/4,\n"
      "                       default) or hardware RDU (16/4)\n"
      "  --shared-gran N, --global-gran N   explicit granularities\n"
      "  --block-dim N, --grid-dim N        override launch geometry\n"
      "  --no-geometry        analyze with unknown launch geometry\n"
      "  --no-loop-aware      straight-line pair test only\n"
      "  --warp-sync          hardware warp-synchronous classification\n"
      "  --seeds N            workload seeds for diff/soundness (default 1)\n");
  return 2;
}

bool parse_u32(const std::string& s, u32& out) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) return false;
  out = static_cast<u32>(std::stoul(s));
  return true;
}

struct Cli {
  std::string command;
  std::string kernel;
  std::string suppressions_path;
  analysis::AnalyzeOptions opts;  // block_dim/grid_dim 0 = take registry geometry
  bool geometry = true;
  bool json = false;
  u32 seeds = 1;
};

/// Build one registry kernel (no detection; prepare only allocates and
/// assembles). The Gpu must outlive nothing — the program is copied out.
kernels::PreparedKernel prepare(const kernels::BenchmarkInfo& info,
                                const kernels::BenchOptions& bopts) {
  arch::GpuConfig gc;
  rd::HaccrgConfig hc;
  sim::Gpu gpu(gc, hc);
  return info.prepare(gpu, bopts);
}

analysis::AnalyzeOptions options_for_kernel(const Cli& cli, const kernels::PreparedKernel& prep) {
  analysis::AnalyzeOptions o = cli.opts;
  if (cli.geometry) {
    if (o.block_dim == 0) o.block_dim = prep.block_dim;
    if (o.grid_dim == 0) o.grid_dim = prep.grid_dim;
  } else {
    o.block_dim = 0;
    o.grid_dim = 0;
  }
  return o;
}

void print_report(const analysis::StaticRaceReport& report, const analysis::ErrorReport& er) {
  std::printf("%s: %s\n", report.kernel.c_str(), report.summary().c_str());
  for (const analysis::Issue& issue : er.issues) {
    std::printf("  [%s] pc %u", issue.kind.c_str(), issue.pc);
    if (issue.other_pc >= 0) std::printf(" <-> pc %d", issue.other_pc);
    std::printf(" (%s): %s", issue.shared_space ? "shared" : "global", issue.message.c_str());
    if (issue.suppressed) std::printf("  [suppressed by %s]", issue.suppressed_by.c_str());
    std::printf("\n");
    if (issue.witness.found) std::printf("      witness: %s\n", issue.witness.describe().c_str());
  }
  if (er.num_suppressed > 0)
    std::printf("  %u issue(s) suppressed, %u active\n", er.num_suppressed, er.active());
}

/// Detector configuration matching the analysis options (both spaces on,
/// no filtering — the gate compares raw dynamic behavior).
rd::HaccrgConfig detector_for(const analysis::AnalyzeOptions& opts) {
  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.enable_global = true;
  det.shared_granularity = opts.shared_granularity;
  det.global_granularity = opts.global_granularity;
  return det;
}

/// Dynamic pcs that raced, from one live run.
std::set<u32> dynamic_race_pcs(const sim::SimResult& result) {
  std::set<u32> pcs;
  for (const rd::RaceRecord& r : result.races.races()) pcs.insert(r.pc);
  return pcs;
}

/// Validate every hardware-visible witness in `report` by synthesizing
/// its two-access trace and replaying the detectors. Returns failures.
u32 check_witnesses(const std::string& label, const analysis::StaticRaceReport& report,
                    const analysis::AnalyzeOptions& opts, bool verbose, u32* checked = nullptr) {
  u32 failures = 0;
  const std::string scratch =
      "/tmp/haccrg-witness-" + std::to_string(static_cast<unsigned>(getpid())) + ".trace";
  for (const analysis::StaticAccess& a : report.accesses) {
    if (!a.witness.found || !a.witness.rdu_visible || a.is_atomic) continue;
    const analysis::StaticAccess* other = report.access_at(a.witness.other_pc);
    trace::WitnessSpec spec;
    spec.shared_space = a.shared_space;
    spec.pc1 = a.witness.pc;
    spec.pc2 = a.witness.other_pc;
    spec.store1 = a.is_store;
    spec.store2 = other != nullptr ? other->is_store : a.is_store;
    if (other != nullptr && other->is_atomic) continue;
    spec.width1 = a.width;
    spec.width2 = other != nullptr ? other->width : a.width;
    spec.tid1 = a.witness.tid1;
    spec.cta1 = a.witness.cta1;
    spec.tid2 = a.witness.tid2;
    spec.cta2 = a.witness.cta2;
    spec.addr1 = static_cast<u64>(a.witness.addr1);
    spec.addr2 = static_cast<u64>(a.witness.addr2);
    spec.block_dim = opts.block_dim != 0 ? opts.block_dim : 2 * opts.warp_size;
    spec.warp_size = opts.warp_size;
    spec.granularity =
        a.shared_space ? opts.shared_granularity : opts.global_granularity;
    if (spec.tid1 >= spec.block_dim || spec.tid2 >= spec.block_dim)
      spec.block_dim = std::max(spec.tid1, spec.tid2) + 1;
    trace::WitnessCheckResult wr;
    if (checked != nullptr) ++*checked;
    const Status st = trace::check_witness(spec, scratch, wr);
    if (!st.ok()) {
      std::printf("WITNESS ERROR %s pc %u: %s\n", label.c_str(), a.pc, st.to_string().c_str());
      ++failures;
      continue;
    }
    if (!wr.reproduced) {
      std::printf("WITNESS FAILED %s pc %u<->%u: %s (%s)\n", label.c_str(), spec.pc1, spec.pc2,
                  a.witness.describe().c_str(), wr.detail.c_str());
      ++failures;
    } else if (verbose) {
      std::printf("  witness ok %s pc %u<->%u: %s\n", label.c_str(), spec.pc1, spec.pc2,
                  wr.detail.c_str());
    }
  }
  std::remove(scratch.c_str());
  return failures;
}

int cmd_analyze(const Cli& cli) {
  std::vector<analysis::Suppression> sups;
  if (!cli.suppressions_path.empty()) {
    const Status st = analysis::load_suppressions(cli.suppressions_path, sups);
    if (!st.ok()) {
      std::fprintf(stderr, "haccrg-analyze: %s\n", st.to_string().c_str());
      return st.code() == StatusCode::kNotFound ? 3 : 4;
    }
  }
  u32 active = 0;
  bool first = true;
  if (cli.json) std::printf("[");
  for (const kernels::BenchmarkInfo& info : kernels::all_benchmarks()) {
    if (!cli.kernel.empty() && info.name != cli.kernel) continue;
    kernels::PreparedKernel prep = prepare(info, kernels::BenchOptions{});
    const analysis::AnalyzeOptions opts = options_for_kernel(cli, prep);
    const analysis::StaticRaceReport report = analysis::analyze(prep.program, opts);
    analysis::ErrorReport er = analysis::build_error_report(report);
    analysis::apply_suppressions(er, sups, report.kernel);
    if (cli.json) {
      std::printf("%s%s", first ? "" : ",\n", analysis::to_json(report, er).c_str());
    } else {
      print_report(report, er);
    }
    first = false;
    active += er.active();
  }
  if (cli.json) std::printf("]\n");
  if (first) {
    std::fprintf(stderr, "haccrg-analyze: unknown kernel '%s'\n", cli.kernel.c_str());
    return 5;
  }
  return active > 0 ? 1 : 0;
}

int cmd_annotate(const Cli& cli) {
  const kernels::BenchmarkInfo* info = kernels::find_benchmark(cli.kernel);
  if (info == nullptr) {
    std::fprintf(stderr, "haccrg-analyze: unknown kernel '%s'\n", cli.kernel.c_str());
    return 5;
  }
  kernels::PreparedKernel prep = prepare(*info, kernels::BenchOptions{});
  const analysis::AnalyzeOptions opts = options_for_kernel(cli, prep);
  const analysis::StaticRaceReport report = analysis::analyze(prep.program, opts);
  std::printf("%s", report.annotate(prep.program).c_str());
  return 0;
}

int cmd_diff(const Cli& cli) {
  const kernels::BenchmarkInfo* info = kernels::find_benchmark(cli.kernel);
  if (info == nullptr) {
    std::fprintf(stderr, "haccrg-analyze: unknown kernel '%s'\n", cli.kernel.c_str());
    return 5;
  }
  u32 violations = 0;
  for (u32 seed = 0; seed < cli.seeds; ++seed) {
    kernels::BenchOptions bopts;
    bopts.seed = seed;
    arch::GpuConfig gc;
    rd::HaccrgConfig det;
    sim::Gpu analysis_gpu(gc, det);
    kernels::PreparedKernel prep = info->prepare(analysis_gpu, bopts);
    const analysis::AnalyzeOptions opts = options_for_kernel(cli, prep);
    const analysis::StaticRaceReport report = analysis::analyze(prep.program, opts);

    sim::Gpu gpu(gc, detector_for(opts));
    kernels::PreparedKernel run_prep = info->prepare(gpu, bopts);
    sim::SimResult result = gpu.launch(run_prep.launch());
    if (!result.completed) {
      std::fprintf(stderr, "haccrg-analyze: run failed: %s\n", result.error.c_str());
      return 3;
    }
    const std::set<u32> dynamic = dynamic_race_pcs(result);
    std::printf("%s seed %u: %s; dynamic races at %zu pc(s)\n", cli.kernel.c_str(), seed,
                report.summary().c_str(), dynamic.size());
    for (const u32 pc : dynamic) {
      const analysis::StaticAccess* a = report.access_at(pc);
      const char* verdict = report.is_safe(pc)          ? "PROVABLY-SAFE (VIOLATION)"
                            : a == nullptr              ? "unclassified"
                            : a->cls == analysis::AccessClass::kDefiniteRace ? "definite-race"
                                                                             : "may-race";
      std::printf("  dynamic pc %u: static verdict %s\n", pc, verdict);
      if (report.is_safe(pc)) ++violations;
    }
    for (const analysis::StaticAccess& a : report.accesses) {
      if (a.cls != analysis::AccessClass::kProvablySafe && dynamic.count(a.pc) == 0)
        std::printf("  static-only pc %u: %s (no dynamic race this run)\n", a.pc,
                    a.reason.c_str());
    }
  }
  return violations > 0 ? 1 : 0;
}

int cmd_soundness(const Cli& cli) {
  u32 violations = 0, witness_failures = 0, witnesses_checked = 0, runs = 0;
  auto gate_one = [&](const std::string& label, const kernels::BenchmarkInfo& info,
                      const kernels::BenchOptions& bopts) {
    arch::GpuConfig gc;
    kernels::PreparedKernel prep;
    analysis::AnalyzeOptions opts;
    analysis::StaticRaceReport report;
    {
      rd::HaccrgConfig plain;
      sim::Gpu gpu(gc, plain);
      prep = info.prepare(gpu, bopts);
      opts = options_for_kernel(cli, prep);
      report = analysis::analyze(prep.program, opts);
    }
    // Dynamic leg: fresh Gpu so the workload lives in its memory.
    {
      sim::Gpu gpu(gc, detector_for(opts));
      kernels::PreparedKernel run_prep = info.prepare(gpu, bopts);
      sim::SimResult result = gpu.launch(run_prep.launch());
      if (!result.completed) {
        std::fprintf(stderr, "haccrg-analyze: %s: run failed: %s\n", label.c_str(),
                     result.error.c_str());
        ++violations;
        return;
      }
      for (const u32 pc : dynamic_race_pcs(result)) {
        if (report.is_safe(pc)) {
          std::printf("SOUNDNESS VIOLATION %s: dynamic race at pc %u classified provably-safe\n",
                      label.c_str(), pc);
          ++violations;
        }
      }
    }
    witness_failures += check_witnesses(label, report, opts, /*verbose=*/false,
                                        &witnesses_checked);
    ++runs;
  };

  for (u32 seed = 0; seed < cli.seeds; ++seed) {
    kernels::BenchOptions bopts;
    bopts.seed = seed;
    for (const kernels::BenchmarkInfo& info : kernels::all_benchmarks())
      gate_one(info.name + " seed " + std::to_string(seed), info, bopts);
    for (const kernels::InjectionCase& test : kernels::all_injection_cases()) {
      const kernels::BenchmarkInfo* info = kernels::find_benchmark(test.benchmark);
      kernels::BenchOptions bopts_inj = bopts;
      bopts_inj.injection = test.injection;
      gate_one(test.label() + " seed " + std::to_string(seed), *info, bopts_inj);
    }
  }
  std::printf("soundness: %u runs, %u violations, %u/%u witnesses failed to reproduce\n", runs,
              violations, witness_failures, witnesses_checked);
  return (violations > 0 || witness_failures > 0) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Cli cli;
  cli.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag, std::string& out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "haccrg-analyze: %s needs a value\n", flag);
        return false;
      }
      out = argv[++i];
      return true;
    };
    auto bad = [](const char* flag) {
      std::fprintf(stderr, "haccrg-analyze: bad value for %s\n", flag);
      return 2;
    };
    std::string v;
    if (arg == "--kernel") {
      if (!value("--kernel", cli.kernel)) return 2;
    } else if (arg == "--suppressions") {
      if (!value("--suppressions", cli.suppressions_path)) return 2;
    } else if (arg == "--word") {
      cli.opts.shared_granularity = 4;
      cli.opts.global_granularity = 4;
    } else if (arg == "--hw") {
      const rd::HaccrgConfig hw;
      cli.opts = analysis::options_for(hw, cli.opts.block_dim, cli.opts.grid_dim);
    } else if (arg == "--shared-gran") {
      if (!value("--shared-gran", v)) return 2;
      if (!parse_u32(v, cli.opts.shared_granularity)) return bad("--shared-gran");
    } else if (arg == "--global-gran") {
      if (!value("--global-gran", v)) return 2;
      if (!parse_u32(v, cli.opts.global_granularity)) return bad("--global-gran");
    } else if (arg == "--block-dim") {
      if (!value("--block-dim", v)) return 2;
      if (!parse_u32(v, cli.opts.block_dim)) return bad("--block-dim");
    } else if (arg == "--grid-dim") {
      if (!value("--grid-dim", v)) return 2;
      if (!parse_u32(v, cli.opts.grid_dim)) return bad("--grid-dim");
    } else if (arg == "--no-geometry") {
      cli.geometry = false;
    } else if (arg == "--no-loop-aware") {
      cli.opts.loop_aware = false;
    } else if (arg == "--warp-sync") {
      cli.opts.warp_synchronous = true;
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--seeds") {
      if (!value("--seeds", v)) return 2;
      if (!parse_u32(v, cli.seeds) || cli.seeds == 0) return bad("--seeds");
    } else {
      return usage(("unknown option '" + arg + "'").c_str());
    }
  }

  if (cli.command == "analyze") return cmd_analyze(cli);
  if (cli.command == "annotate") {
    if (cli.kernel.empty()) return usage("annotate needs --kernel");
    return cmd_annotate(cli);
  }
  if (cli.command == "diff") {
    if (cli.kernel.empty()) return usage("diff needs --kernel");
    return cmd_diff(cli);
  }
  if (cli.command == "soundness") return cmd_soundness(cli);
  return usage(("unknown command '" + cli.command + "'").c_str());
}
