#include "analysis/static_race.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace haccrg::analysis {

using isa::Instr;
using isa::Opcode;

std::string to_string(const AffineVal& v) {
  if (v.top) return "top";
  std::ostringstream out;
  bool first = true;
  auto term = [&](i64 c, const char* name) {
    if (c == 0) return;
    if (!first) out << (c > 0 ? "+" : "");
    if (c == 1)
      out << name;
    else if (c == -1)
      out << "-" << name;
    else
      out << c << "*" << name;
    first = false;
  };
  if (v.param_slot >= 0) {
    out << "param" << v.param_slot;
    first = false;
  }
  term(v.c_tid, "tid");
  term(v.c_cta, "ctaid");
  term(v.c_gtid, "gtid");
  if (v.uniform_unknown) {
    out << (first ? "U" : "+U");
    first = false;
  }
  if (v.base != 0 || first) {
    if (!first && v.base > 0) out << "+";
    out << v.base;
  }
  return out.str();
}

namespace {

i64 floor_div(i64 a, i64 b) {
  i64 q = a / b;
  i64 r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

i64 ceil_div_i(i64 a, i64 b) { return -floor_div(-a, b); }

i64 mod_floor(i64 a, i64 g) {
  i64 r = a % g;
  return r < 0 ? r + g : r;
}

/// Is there an integer k (k != 0 when `exclude_zero`) with
/// lo <= d0 + step*k <= hi?
bool window_has_step(i64 d0, i64 step, i64 lo, i64 hi, bool exclude_zero) {
  if (lo > hi) return false;
  if (step == 0) return d0 >= lo && d0 <= hi;  // every k gives d0
  i64 s = step, l = lo - d0, h = hi - d0;
  if (s < 0) {
    s = -s;
    const i64 nl = -h;
    h = -l;
    l = nl;
  }
  const i64 klo = ceil_div_i(l, s);
  const i64 khi = floor_div(h, s);
  if (klo > khi) return false;
  if (exclude_zero && klo == 0 && khi == 0) return false;
  return true;
}

/// Per-access context beyond the affine address form.
struct Ctx {
  bool exec_uniform = false;        ///< all threads of a block reach this together
  bool repeatable = false;          ///< on a barrier-free CFG cycle
  std::vector<u32> unique_scopes;   ///< kIf pcs of enclosing unique then-branches
};

bool shares_unique_scope(const Ctx& a, const Ctx& b) {
  for (u32 s : a.unique_scopes)
    if (std::find(b.unique_scopes.begin(), b.unique_scopes.end(), s) != b.unique_scopes.end())
      return true;
  return false;
}

/// Can the base residue of `v` modulo the granule be computed exactly?
/// `extra` carries pattern-specific coefficient constraints (terms that
/// must vanish modulo g for the residue to be launch-independent).
bool residue_known(const AffineVal& v, bool extra, const AnalyzeOptions& opts) {
  if (v.uniform_unknown) return false;
  if (v.param_slot >= 0 && !opts.assume_aligned_params) return false;
  return extra;
}

/// Granule-overlap test for the pair (A at d = d0 + step*k bytes from B).
/// Exact residues tighten the window to the true granule boundaries;
/// otherwise the window is widened by g-1 bytes on each side (sound for
/// any alignment).
bool step_conflict(const StaticAccess& A, const StaticAccess& B, i64 d0, i64 step,
                   bool exclude_zero, i64 g, bool exact_ok, bool extra_mult_ok,
                   const AnalyzeOptions& opts) {
  const i64 wa = A.width;
  const i64 wb = B.width;
  const bool exact = exact_ok && step % g == 0 && residue_known(B.addr, extra_mult_ok, opts) &&
                     residue_known(A.addr, extra_mult_ok, opts);
  if (exact) {
    const i64 r = mod_floor(B.addr.base, g);
    const i64 f = (r + wb - 1) / g;  // granules B spans beyond its first
    return window_has_step(d0, step, 1 - wa - r, g * (f + 1) - 1 - r, exclude_zero);
  }
  return window_has_step(d0, step, -(wa + g - 2), wb + g - 2, exclude_zero);
}

/// Could accesses A and B (same address space, already known to share a
/// barrier interval) touch the same shadow granule from two *different*
/// threads? Sound under AnalyzeOptions' documented assumptions.
bool may_conflict(const StaticAccess& A, const StaticAccess& B, const Ctx& ca, const Ctx& cb,
                  const AnalyzeOptions& opts) {
  const AffineVal& a = A.addr;
  const AffineVal& b = B.addr;
  const i64 g = A.shared_space ? opts.shared_granularity : opts.global_granularity;
  if (a.top || b.top) return true;

  if (a.param_slot != b.param_slot) {
    // Distinct slots: disjoint allocations under the noalias assumption.
    // A parameter base vs. an absolute address is incomparable.
    if (a.param_slot >= 0 && b.param_slot >= 0) return !opts.assume_noalias_params;
    return true;
  }

  const bool self = A.pc == B.pc;
  bool exact_ok = true;
  if (a.uniform_unknown || b.uniform_unknown) {
    // Unknown grid-invariant terms can differ between two dynamic
    // executions (loop-carried state) — except for a non-repeatable
    // access that every thread executes once along the same path: both
    // sides then carry the *same* unknown and it cancels in the delta.
    if (!(self && !ca.repeatable && ca.exec_uniform)) return true;
    exact_ok = false;  // absolute alignment still unknown
  }
  const i64 d0 = self ? 0 : a.base - b.base;

  if (A.shared_space) {
    // Shared memory is per-block, so both threads live in one block and
    // the block-level terms must match for the delta to be computable.
    if (a.c_cta != b.c_cta || a.c_gtid != b.c_gtid) return true;
    const i64 e = a.block_coeff();
    if (e != b.block_coeff()) return true;
    if (shares_unique_scope(ca, cb)) return false;  // one thread per block runs both
    const bool extra = mod_floor(a.c_cta, g) == 0 && mod_floor(a.c_gtid, g) == 0;
    return step_conflict(A, B, d0, e, /*exclude_zero=*/true, g, exact_ok, extra, opts);
  }

  // Global: pure gtid-linear forms — gtid is globally unique, so the
  // distinct-thread quantifier is k = gtid_1 - gtid_2 != 0.
  if (a.c_tid == 0 && a.c_cta == 0 && b.c_tid == 0 && b.c_cta == 0) {
    if (a.c_gtid != b.c_gtid) return true;
    return step_conflict(A, B, d0, a.c_gtid, /*exclude_zero=*/true, g, exact_ok, true, opts);
  }

  // Global: block-indexed forms (no per-thread term). Within a block
  // every thread computes the same address; across blocks the address
  // steps by c_cta.
  if (a.c_tid == 0 && a.c_gtid == 0 && b.c_tid == 0 && b.c_gtid == 0) {
    if (a.c_cta != b.c_cta) return true;
    if (!shares_unique_scope(ca, cb)) {
      // Two different threads of the same block (delta = d0 exactly).
      if (step_conflict(A, B, d0, 0, /*exclude_zero=*/false, g, exact_ok, true, opts))
        return true;
    }
    return step_conflict(A, B, d0, a.c_cta, /*exclude_zero=*/true, g, exact_ok, true, opts);
  }

  // Mixed tid/block forms: cross-block thread pairs make the delta
  // depend on the (unknown) block size — give up.
  return true;
}

/// Structured-scope walk: per-pc execution-context facts derived from
/// the enclosing kIf/kLoopBegin scopes and their predicate facts.
struct ScopeFacts {
  std::vector<u8> exec_uniform;             // per pc
  std::vector<std::vector<u32>> unique;     // per pc: enclosing unique then-scope ids (kIf pcs)
  std::vector<u8> atomic_in_cs;             // per pc (atomics only)
};

ScopeFacts scan_scopes(const isa::Program& program, const AffineAnalysis& affine) {
  struct Scope {
    bool is_loop = false;
    u32 open_pc = 0;
    bool pred_uniform = true;
    bool pred_unique = false;
    bool in_then = true;
    bool divergent_break = false;
  };
  const u32 n = program.size();
  ScopeFacts facts;
  facts.exec_uniform.assign(n, 1);
  facts.unique.assign(n, {});
  facts.atomic_in_cs.assign(n, 0);

  // Pass 1: find loops that contain a divergent break (divergence then
  // taints the whole loop body, including pcs before the break).
  std::vector<u32> divergent_loops;  // open pcs
  {
    std::vector<u32> loop_stack;
    for (u32 pc = 0; pc < n; ++pc) {
      const Instr& ins = program.at(pc);
      if (ins.op == Opcode::kLoopBegin) loop_stack.push_back(pc);
      if (ins.op == Opcode::kLoopEnd && !loop_stack.empty()) loop_stack.pop_back();
      if ((ins.op == Opcode::kBreakIf || ins.op == Opcode::kBreakIfNot) &&
          !loop_stack.empty() && !affine.pred_at(pc, ins.aux).uniform) {
        divergent_loops.push_back(loop_stack.back());
      }
    }
  }

  std::vector<Scope> stack;
  int cs_depth = 0;
  for (u32 pc = 0; pc < n; ++pc) {
    const Instr& ins = program.at(pc);
    switch (ins.op) {
      case Opcode::kIf: {
        Scope s;
        s.open_pc = pc;
        const PredFact f = affine.pred_at(pc, ins.aux);
        s.pred_uniform = f.uniform;
        s.pred_unique = f.unique_thread;
        stack.push_back(s);
        break;
      }
      case Opcode::kElse:
        if (!stack.empty()) stack.back().in_then = false;
        break;
      case Opcode::kEndIf:
        if (!stack.empty()) stack.pop_back();
        break;
      case Opcode::kLoopBegin: {
        Scope s;
        s.is_loop = true;
        s.open_pc = pc;
        s.divergent_break = std::find(divergent_loops.begin(), divergent_loops.end(), pc) !=
                            divergent_loops.end();
        stack.push_back(s);
        break;
      }
      case Opcode::kLoopEnd:
        if (!stack.empty()) stack.pop_back();
        break;
      case Opcode::kLockAcqMark:
        ++cs_depth;
        break;
      case Opcode::kLockRelMark:
        if (cs_depth > 0) --cs_depth;
        break;
      default:
        break;
    }
    bool uniform = true;
    for (const Scope& s : stack) {
      if (s.is_loop ? s.divergent_break : !s.pred_uniform) uniform = false;
      if (!s.is_loop && s.pred_unique && s.in_then) facts.unique[pc].push_back(s.open_pc);
    }
    facts.exec_uniform[pc] = uniform ? 1 : 0;
    facts.atomic_in_cs[pc] = cs_depth > 0 ? 1 : 0;
  }
  return facts;
}

}  // namespace

const StaticAccess* StaticRaceReport::access_at(u32 pc) const {
  for (const StaticAccess& a : accesses)
    if (a.pc == pc) return &a;
  return nullptr;
}

u32 StaticRaceReport::count(AccessClass cls) const {
  u32 n = 0;
  for (const StaticAccess& a : accesses)
    if (a.cls == cls) ++n;
  return n;
}

std::string StaticRaceReport::summary() const {
  std::ostringstream out;
  out << accesses.size() << " accesses: " << count(AccessClass::kProvablySafe) << " safe, "
      << count(AccessClass::kMayRace) << " may-race, " << count(AccessClass::kDefiniteRace)
      << " definite; " << num_barriers << " barriers (" << num_divergent_barriers
      << " divergent), " << lints.size() << " lints";
  return out.str();
}

std::string StaticRaceReport::annotate(const isa::Program& program) const {
  std::ostringstream out;
  out << "; static race analysis of '" << program.name() << "': " << summary() << "\n";
  std::istringstream in(program.disassemble());
  std::string line;
  for (u32 pc = 0; std::getline(in, line); ++pc) {
    out << line;
    if (const StaticAccess* a = access_at(pc)) {
      out << "\t; ";
      if (a->is_atomic) {
        out << "atomic (excluded from race checks)";
      } else {
        switch (a->cls) {
          case AccessClass::kProvablySafe: out << "SAFE"; break;
          case AccessClass::kMayRace: out << "MAY-RACE"; break;
          case AccessClass::kDefiniteRace: out << "DEFINITE-RACE"; break;
        }
        out << " addr=" << to_string(a->addr);
        if (!a->reason.empty()) out << " (" << a->reason << ")";
      }
    }
    out << "\n";
  }
  for (const Lint& l : lints) out << "; lint pc " << l.pc << ": " << l.message << "\n";
  return out.str();
}

StaticRaceReport analyze(const isa::Program& program, const AnalyzeOptions& opts) {
  StaticRaceReport report;
  report.kernel = program.name();
  report.options = opts;
  const u32 n = program.size();
  report.classes.assign(n, AccessClass::kProvablySafe);
  if (n == 0) return report;

  const Cfg cfg(program);
  const AffineAnalysis affine(program, cfg);
  const ScopeFacts facts = scan_scopes(program, affine);

  // Loop-aware symbolic address forms (falls back to the affine form
  // per access when the walk loses more than the fixpoint did).
  const LoopNest nest(program);
  const SymbolicAddresses symaddrs(program, nest, affine);

  // Barriers: only block-uniform ones separate intervals.
  std::vector<u8> separating(n, 0);
  for (u32 pc = 0; pc < n; ++pc) {
    if (program.at(pc).op != Opcode::kBar) continue;
    ++report.num_barriers;
    if (facts.exec_uniform[pc]) {
      separating[pc] = 1;
    } else {
      ++report.num_divergent_barriers;
      report.lints.push_back(
          {pc, LintKind::kDivergentBarrier,
           "barrier under a divergent predicate (deadlock risk; treated as non-separating)"});
    }
  }

  // Collect the accesses.
  std::vector<Ctx> ctxs;
  for (u32 pc = 0; pc < n; ++pc) {
    const Instr& ins = program.at(pc);
    if (!isa::is_memory_op(ins.op)) continue;
    StaticAccess a;
    a.pc = pc;
    a.shared_space = isa::is_shared_op(ins.op);
    a.is_atomic = isa::is_atomic_op(ins.op);
    a.is_store = ins.op == Opcode::kStGlobal || ins.op == Opcode::kStShared;
    a.width = a.is_atomic ? 4 : ins.width();
    a.addr = affine.address_of(pc);
    a.sym = SymAddr::from_affine(a.addr);
    if (opts.loop_aware) {
      const SymAddr& s = symaddrs.address_of(pc);
      if (!s.top) a.sym = s;
    }
    Ctx c;
    c.exec_uniform = facts.exec_uniform[pc] != 0;
    c.unique_scopes = facts.unique[pc];
    report.accesses.push_back(a);
    ctxs.push_back(c);
    if (a.is_atomic && !facts.atomic_in_cs[pc]) {
      report.lints.push_back({pc, LintKind::kAtomicOutsideCritical,
                              "atomic outside any critical section (no lock signature; pairs "
                              "with non-atomic accesses are not race-checked)"});
    }
  }

  // Forward reachability from each access: `reach[i][pc]` means pc can
  // execute after access i. For shared accesses the walk stops at uniform
  // barriers (the shared RDU resets there, so a barrier bounds the racing
  // window); global shadow state persists across barriers — and blocks
  // reach their barriers independently — so global walks run to the end.
  const u32 na = static_cast<u32>(report.accesses.size());
  std::vector<std::vector<u8>> reach(na, std::vector<u8>(n, 0));
  {
    std::vector<u32> succs;
    for (u32 i = 0; i < na; ++i) {
      const bool stop_at_barriers = report.accesses[i].shared_space;
      std::deque<u32> work;
      Cfg::instr_succs(program, report.accesses[i].pc, succs);
      for (u32 s : succs) work.push_back(s);
      while (!work.empty()) {
        const u32 pc = work.front();
        work.pop_front();
        if (reach[i][pc]) continue;
        reach[i][pc] = 1;
        if (stop_at_barriers && separating[pc]) continue;  // interval boundary
        Cfg::instr_succs(program, pc, succs);
        for (u32 s : succs)
          if (!reach[i][s]) work.push_back(s);
      }
      ctxs[i].repeatable = reach[i][report.accesses[i].pc] != 0;
    }
  }

  // Pairwise classification. Two executions of the same pc by different
  // threads always share an interval (a uniform barrier is crossed by
  // all threads together), so self-pairs are always compared.
  for (u32 i = 0; i < na; ++i) {
    StaticAccess& A = report.accesses[i];
    if (A.is_atomic) {
      A.cls = AccessClass::kProvablySafe;
      A.reason = "atomic";
      report.classes[A.pc] = A.cls;
      continue;
    }

    // Definite race: a store every thread of a block performs together
    // at a block-invariant address.
    const bool definite = A.is_store && ctxs[i].exec_uniform && !A.addr.top &&
                          A.addr.block_coeff() == 0 && ctxs[i].unique_scopes.empty();

    bool conflict = false;
    int witness_pc = -1;
    RaceWitness found_witness;
    for (u32 j = 0; j < na; ++j) {
      if (conflict && (!opts.loop_aware || found_witness.rdu_visible)) break;
      const StaticAccess& B = report.accesses[j];
      if (B.shared_space != A.shared_space) continue;
      if (B.is_atomic) continue;  // detectors treat atomics as synchronization
      if (!A.is_store && !B.is_store) continue;  // read-read never races
      // A uniform barrier resets the shared RDU, so barrier-separated
      // shared accesses cannot race. Global pairs are always live: the
      // global shadow persists, and different blocks cross their
      // barriers at unrelated times.
      if (A.shared_space) {
        const bool same_interval =
            i == j || reach[i][B.pc] != 0 || reach[j][A.pc] != 0;
        if (!same_interval) continue;
      }
      if (opts.loop_aware) {
        DepAccess da{A.pc, A.is_store, A.width, A.sym, ctxs[i].exec_uniform,
                     ctxs[i].repeatable};
        DepAccess db{B.pc, B.is_store, B.width, B.sym, ctxs[j].exec_uniform,
                     ctxs[j].repeatable};
        DependenceOptions dop;
        dop.granularity = A.shared_space ? opts.shared_granularity : opts.global_granularity;
        dop.block_dim = opts.block_dim;
        dop.grid_dim = opts.grid_dim;
        dop.warp_size = opts.warp_size;
        dop.assume_noalias_params = opts.assume_noalias_params;
        dop.assume_aligned_params = opts.assume_aligned_params;
        dop.warp_synchronous = opts.warp_synchronous;
        PairVerdict v = test_pair(da, db, /*self=*/i == j,
                                  shares_unique_scope(ctxs[i], ctxs[j]), A.shared_space, dop);
        if (v.conflict && !v.warp_confined) {
          if (!conflict) {
            conflict = true;
            witness_pc = static_cast<int>(B.pc);
          }
          // Keep scanning for a better (RDU-visible) witness.
          if (v.witness.found && (!found_witness.found ||
                                  (v.witness.rdu_visible && !found_witness.rdu_visible))) {
            found_witness = v.witness;
            witness_pc = static_cast<int>(B.pc);
          }
        }
      } else if (may_conflict(A, B, ctxs[i], ctxs[j], opts)) {
        conflict = true;
        witness_pc = static_cast<int>(B.pc);
      }
    }

    if (definite) {
      A.cls = AccessClass::kDefiniteRace;
      A.reason = "all threads of a block store " + to_string(A.addr);
      report.lints.push_back({A.pc, LintKind::kDefiniteRace, A.reason});
      // Trivial witness: every thread of one block stores the granule;
      // pick thread 0 against one in another warp when the block holds
      // one (the same-pc exact-address store pair is RDU-visible either
      // way through the intra-warp WAW check).
      if (!A.sym.top) {
        const u32 bd = opts.block_dim ? opts.block_dim : 2 * opts.warp_size;
        const i64 addr = A.sym.base;  // params/U read as 0, iterations at 0
        if (addr >= 0 && bd >= 2) {
          RaceWitness w;
          w.found = true;
          w.rdu_visible = true;
          w.pc = A.pc;
          w.other_pc = A.pc;
          w.tid1 = 0;
          w.tid2 = bd > opts.warp_size ? opts.warp_size : bd - 1;
          for (const IterTerm& t : A.sym.iters) {
            w.iters1.emplace_back(t.begin_pc, 0);
            w.iters2.emplace_back(t.begin_pc, 0);
          }
          w.addr1 = w.addr2 = static_cast<u64>(addr);
          const i64 g = A.shared_space ? opts.shared_granularity : opts.global_granularity;
          w.granule = static_cast<u64>(addr / g * g);
          A.witness = std::move(w);
        }
      }
    } else if (conflict) {
      A.cls = AccessClass::kMayRace;
      A.conflict_pc = witness_pc;
      A.witness = std::move(found_witness);
      A.reason = A.addr.top ? "address not statically known"
                            : "conflicts with pc " + std::to_string(witness_pc);
    } else {
      A.cls = AccessClass::kProvablySafe;
      if (A.addr.top) {
        A.reason = "no conflicting access in its barrier interval";
      } else {
        A.reason = report.num_barriers > 0
                       ? "granule-disjoint across threads in its barrier interval"
                       : "granule-disjoint across threads";
      }
    }
    report.classes[A.pc] = A.cls;
  }

  return report;
}

AnalyzeOptions options_for(const rd::HaccrgConfig& cfg, u32 block_dim, u32 grid_dim) {
  AnalyzeOptions opts;
  opts.shared_granularity = cfg.shared_granularity;
  opts.global_granularity = cfg.global_granularity;
  opts.block_dim = block_dim;
  opts.grid_dim = grid_dim;
  return opts;
}

Status filter_compatible(const AnalyzeOptions& opts, const rd::HaccrgConfig& cfg,
                         u32 block_dim, u32 grid_dim) {
  if (cfg.enable_shared && opts.shared_granularity != cfg.shared_granularity)
    return Status::invalid_argument(
        "static report computed at shared granularity " +
        std::to_string(opts.shared_granularity) + " cannot filter a detector tracking " +
        std::to_string(cfg.shared_granularity) + "-byte shared granules");
  if (cfg.enable_global && opts.global_granularity != cfg.global_granularity)
    return Status::invalid_argument(
        "static report computed at global granularity " +
        std::to_string(opts.global_granularity) + " cannot filter a detector tracking " +
        std::to_string(cfg.global_granularity) + "-byte global granules");
  if (opts.warp_synchronous && cfg.warp_regrouping)
    return Status::invalid_argument(
        "warp-synchronous pruning assumes the fixed warp grouping; it cannot filter a "
        "detector running with warp regrouping");
  if (opts.block_dim != 0 && block_dim != 0 && opts.block_dim != block_dim)
    return Status::invalid_argument("static report assumed block_dim " +
                                    std::to_string(opts.block_dim) + " but the launch uses " +
                                    std::to_string(block_dim));
  if (opts.grid_dim != 0 && grid_dim != 0 && opts.grid_dim != grid_dim)
    return Status::invalid_argument("static report assumed grid_dim " +
                                    std::to_string(opts.grid_dim) + " but the launch uses " +
                                    std::to_string(grid_dim));
  return {};
}

}  // namespace haccrg::analysis
