// Loop-aware symbolic addresses and the dependence tests over them.
//
// SymAddr extends the affine domain of affine.hpp with per-loop
// iteration terms:
//
//     value = base + c_tid*tid + c_cta*ctaid + c_gtid*gtid
//             [+ param[slot]] [+ U] + sum_k coeff_k * iter_k
//
// where iter_k counts executed iterations of loop k (0-based) and is
// bounded by the loop's trip count when the for_range header guard pins
// it. SymbolicAddresses computes one SymAddr per memory pc by a
// structural walk of the program: induction variables (LoopNest) become
// `init + step*iter`, every other register a loop writes is widened to
// the plain affine fixpoint value at the loop header — so the walk is
// never less precise than AffineAnalysis alone.
//
// test_pair is the dependence test: could two accesses touch the same
// shadow granule from two distinct threads, for ANY pair of iteration
// vectors? Iteration variables of the two sides are quantified
// independently (warps progress at different rates between barriers, so
// thread 1 at iteration i and thread 2 at iteration j can be concurrent
// — assuming lockstep iterations would be unsound). The conflict system
// is a small integer-linear feasibility problem solved with interval
// (Banerjee-style) bounds plus a GCD divisibility test; the distinct-
// thread constraint is a case split on the sign of the thread delta.
// Pruning happens only on a proof of infeasibility, so every `no
// conflict` answer is sound; `conflict` answers carry a concrete
// enumerated witness when one exists within the search budget.
//
// Warp-synchronous mode (DependenceOptions::warp_synchronous) classifies
// pairs the way the hardware RDUs order them: intra-warp accesses are
// SIMD-ordered and never reported by the shared-RDU state machine, and
// the pre-issue intra-warp WAW check compares exact addresses at the
// access width. A pair whose every colliding thread pair provably falls
// inside one warp (and can never byte-overlap within one issue) is
// therefore invisible to hw-HAccRG and may be filtered for it — but NOT
// for the software detectors, which do report intra-warp pairs.
#pragma once

#include <string>
#include <vector>

#include "analysis/affine.hpp"
#include "analysis/loops.hpp"

namespace haccrg::analysis {

/// One loop-iteration term of a SymAddr.
struct IterTerm {
  u32 loop = 0;      ///< loop index in the LoopNest
  u32 begin_pc = 0;  ///< the loop's kLoopBegin pc (for reports)
  i64 coeff = 0;     ///< bytes per iteration
  i64 trip = -1;     ///< iter in [0, trip); -1 = unbounded

  bool operator==(const IterTerm& o) const {
    return loop == o.loop && coeff == o.coeff && trip == o.trip;
  }
};

/// Affine address form extended with loop-iteration terms.
struct SymAddr {
  bool top = false;
  bool uniform_unknown = false;
  i64 base = 0;
  i64 c_tid = 0;
  i64 c_cta = 0;
  i64 c_gtid = 0;
  int param_slot = -1;
  std::vector<IterTerm> iters;  ///< sorted by loop index, coeff != 0

  static SymAddr make_top() {
    SymAddr s;
    s.top = true;
    return s;
  }
  static SymAddr uniform() {
    SymAddr s;
    s.uniform_unknown = true;
    return s;
  }
  static SymAddr constant(i64 v) {
    SymAddr s;
    s.base = v;
    return s;
  }
  static SymAddr from_affine(const AffineVal& v);
  /// Projection back onto the plain affine domain (iteration terms
  /// widen to an unknown thread-varying contribution -> top, unless
  /// absent).
  AffineVal to_affine() const;

  bool is_const() const {
    return !top && !uniform_unknown && c_tid == 0 && c_cta == 0 && c_gtid == 0 &&
           param_slot < 0 && iters.empty();
  }
  bool grid_invariant() const {
    return !top && c_tid == 0 && c_cta == 0 && c_gtid == 0 && iters.empty();
  }

  bool operator==(const SymAddr& o) const;
  SymAddr operator+(const SymAddr& o) const;
  SymAddr operator-(const SymAddr& o) const;
  SymAddr scaled(i64 k) const;
  static SymAddr join(const SymAddr& a, const SymAddr& b);
};

/// Render for reports/tests, e.g. "4*tid+256*iter@3+16".
std::string to_string(const SymAddr& v);

/// Loop-aware per-pc address forms (one structural walk, no fixpoint —
/// the only joins are the if/else merges and the pre-widened loop
/// entries).
class SymbolicAddresses {
 public:
  SymbolicAddresses(const isa::Program& program, const LoopNest& nest,
                    const AffineAnalysis& affine);

  /// Address form of the memory instruction at `pc` (top elsewhere).
  const SymAddr& address_of(u32 pc) const { return addresses_[pc]; }

 private:
  std::vector<SymAddr> addresses_;
};

/// A concrete racing candidate produced by the dependence solver:
/// two block-local thread ids (with block ids for global pairs), one
/// iteration vector per side, and the byte addresses / shared granule
/// they collide on. Addresses treat parameter bases and unknown
/// grid-invariant terms as 0 (the documented alignment assumption).
struct RaceWitness {
  bool found = false;
  /// True when the pair is visible to the hardware RDUs as written:
  /// the threads sit in different warps (or different blocks), or the
  /// pair is a same-instruction exact-address store collision (the
  /// intra-warp WAW check catches those). Witnesses with this flag are
  /// expected to reproduce under trace replay.
  bool rdu_visible = false;
  u32 pc = 0;
  u32 other_pc = 0;
  u32 tid1 = 0, tid2 = 0;
  u32 cta1 = 0, cta2 = 0;
  std::vector<std::pair<u32, i64>> iters1;  ///< (loop begin pc, iteration)
  std::vector<std::pair<u32, i64>> iters2;
  u64 addr1 = 0, addr2 = 0;
  u64 granule = 0;

  /// e.g. "t5@cta0 pc 7 addr 0x14 x t9@cta0 pc 12 addr 0x16 granule 0x10"
  std::string describe() const;
};

/// Knobs of one dependence query (a projection of AnalyzeOptions onto
/// one address space).
struct DependenceOptions {
  i64 granularity = 4;
  u32 block_dim = 0;  ///< threads per block; 0 = unknown
  u32 grid_dim = 0;   ///< blocks; 0 = unknown
  u32 warp_size = 32;
  bool assume_noalias_params = true;
  bool assume_aligned_params = true;
  bool warp_synchronous = false;
};

/// One side of a dependence query.
struct DepAccess {
  u32 pc = 0;
  bool is_store = false;
  u32 width = 4;
  SymAddr sym;
  bool exec_uniform = false;
  bool repeatable = false;
};

struct PairVerdict {
  /// Two distinct threads could touch one granule (for some iteration
  /// pair). False only on a proof of infeasibility.
  bool conflict = true;
  /// All colliding thread pairs provably sit inside one warp and can
  /// never byte-overlap within one issue: invisible to the hardware
  /// RDUs (meaningful only when warp_synchronous was requested).
  bool warp_confined = false;
  RaceWitness witness;
};

/// The dependence test. `self` = same pc on both sides; `shares_unique`
/// = both accesses sit under one `tid == c` unique-thread scope.
PairVerdict test_pair(const DepAccess& A, const DepAccess& B, bool self, bool shares_unique,
                      bool shared_space, const DependenceOptions& opts);

}  // namespace haccrg::analysis
