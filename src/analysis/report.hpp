// Valgrind-grade error management over a StaticRaceReport: findings are
// deduplicated into stable Issues keyed by (pc-pair, address space,
// class), a Valgrind-style suppression file can mute known ones, and the
// whole report serializes to a stable machine-readable JSON document —
// the shape `haccrg-analyze` emits and CI diffs against.
//
// Suppression file format ('#' starts a comment, blocks in braces):
//
//     # histogram's intentional benign race
//     {
//       hist-merge-benign
//       kernel:histogram*
//       kind:may-race
//       pc:17
//     }
//
// The first non-directive line of a block is the suppression's name;
// `kernel:` and `kind:` take globs ('*' and '?'), `pc:` takes a decimal
// pc or '*' (the default for all three). `kind` matches an Issue's kind
// string: "may-race", "definite-race", "lint:divergent-barrier",
// "lint:atomic-outside-critical".
#pragma once

#include <string>
#include <vector>

#include "analysis/static_race.hpp"
#include "common/status.hpp"

namespace haccrg::analysis {

/// One deduplicated finding (a racing pair, a definite race, or a lint).
struct Issue {
  std::string kind;       ///< "may-race" | "definite-race" | "lint:..."
  u32 pc = 0;             ///< primary pc (lower of the pair)
  int other_pc = -1;      ///< conflict partner, -1 when not a pair
  bool shared_space = false;
  std::string message;
  RaceWitness witness;
  bool suppressed = false;
  std::string suppressed_by;  ///< name of the matching suppression
};

struct Suppression {
  std::string name;
  std::string kernel_glob = "*";
  std::string kind_glob = "*";
  std::string pc = "*";  ///< "*" or a decimal pc (matches either side)
};

/// Deduplicated, suppression-aware view of one kernel's findings.
struct ErrorReport {
  std::string kernel;
  std::vector<Issue> issues;  ///< stable order: by pc, then kind
  u32 num_suppressed = 0;

  /// Unsuppressed findings remaining (the CLI's exit-code signal).
  u32 active() const {
    u32 n = 0;
    for (const Issue& i : issues)
      if (!i.suppressed) ++n;
    return n;
  }
};

/// Dedup a StaticRaceReport's findings by (pc-pair, space, class).
ErrorReport build_error_report(const StaticRaceReport& report);

/// '*'/'?' glob match (full-string).
bool glob_match(const std::string& pattern, const std::string& text);

/// Parse suppression text / load a suppression file. On error the out
/// vector is left untouched.
Status parse_suppressions(const std::string& text, std::vector<Suppression>& out);
Status load_suppressions(const std::string& path, std::vector<Suppression>& out);

/// Mark matching issues suppressed (first matching suppression wins).
/// Returns the number of newly suppressed issues.
u32 apply_suppressions(ErrorReport& report, const std::vector<Suppression>& sups,
                       const std::string& kernel_name);

/// Stable machine-readable JSON of the full analysis: options, per-pc
/// access table (with witnesses), and the deduplicated issue list. Key
/// order is fixed; no timestamps or absolute paths, so output is
/// byte-reproducible.
std::string to_json(const StaticRaceReport& report, const ErrorReport& errors);

}  // namespace haccrg::analysis
